// Ablation benchmarks for the design choices behind the reproduction:
// the run-time optimization strategies against each storage class, the
// SSA channel count of the local-disk model, the tape library's drive
// count, asynchronous write-behind and prefetch, and the superfile's
// sensitivity to the number of small files.  Each reports the simulated
// cost as virt-s, so the trade-offs read directly off `go test -bench
// Ablation`.
package msra_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/aio"
	"repro/internal/collective"
	"repro/internal/device"
	"repro/internal/ioopt"
	"repro/internal/localdisk"
	"repro/internal/memfs"
	"repro/internal/model"
	"repro/internal/pattern"
	"repro/internal/remotedisk"
	"repro/internal/sieve"
	"repro/internal/srb"
	"repro/internal/srbnet"
	"repro/internal/storage"
	"repro/internal/subfile"
	"repro/internal/superfile"
	"repro/internal/tape"
	"repro/internal/vtime"
)

// writeOnce performs one parallel dataset write with the given
// optimization against the backend and returns the simulated cost.
func writeOnce(b *testing.B, be storage.Backend, opt ioopt.Kind) time.Duration {
	b.Helper()
	dims := []int{32, 32, 32}
	etype := 4
	pat, err := pattern.Parse("**B")
	if err != nil {
		b.Fatal(err)
	}
	grid := pattern.Grid{1, 1, 8}
	sim := vtime.NewVirtual()
	procs := sim.NewProcs("r", 8)
	sess, err := be.Connect(procs[0])
	if err != nil {
		b.Fatal(err)
	}
	vtime.Barrier(procs...)
	bufs := make([][]byte, 8)
	runs := make([][]pattern.Run, 8)
	for r := range bufs {
		sets, err := pattern.IndexSets(dims, pat, grid, r)
		if err != nil {
			b.Fatal(err)
		}
		runs[r] = pattern.FileRuns(dims, etype, sets)
		var n int64
		for _, run := range runs[r] {
			n += run.Len
		}
		bufs[r] = make([]byte, n)
	}
	op := collective.Op{Dims: dims, Etype: etype, Pat: pat, Grid: grid}
	switch opt {
	case ioopt.Collective, ioopt.Naive, ioopt.DataSieving:
		h, err := sess.Open(procs[0], "ds", storage.ModeCreate)
		if err != nil {
			b.Fatal(err)
		}
		vtime.Barrier(procs...)
		hs := make([]storage.Handle, 8)
		for i := range hs {
			hs[i] = h
		}
		switch opt {
		case ioopt.Collective:
			err = collective.Write(op, procs, hs, bufs)
		case ioopt.Naive:
			err = collective.WriteNaive(op, procs, hs, bufs)
		case ioopt.DataSieving:
			for r := range procs {
				if err = sieve.Write(procs[r], h, runs[r], bufs[r]); err != nil {
					break
				}
			}
			vtime.Barrier(procs...)
		}
		if err != nil {
			b.Fatal(err)
		}
		if err := h.Close(procs[0]); err != nil {
			b.Fatal(err)
		}
	case ioopt.Subfile:
		if err := subfile.Write(sess, "ds", dims, etype, pat, grid, procs, bufs); err != nil {
			b.Fatal(err)
		}
	}
	vtime.Barrier(procs...)
	return vtime.MaxNow(procs...)
}

// BenchmarkAblationOptimizations compares the run-time library
// strategies on the local-disk and remote-disk models.
func BenchmarkAblationOptimizations(b *testing.B) {
	for _, backend := range []string{"localdisk", "remotedisk"} {
		for _, opt := range []ioopt.Kind{ioopt.Collective, ioopt.Naive, ioopt.DataSieving, ioopt.Subfile} {
			b.Run(fmt.Sprintf("%s/%s", backend, opt), func(b *testing.B) {
				var cost time.Duration
				for i := 0; i < b.N; i++ {
					var be storage.Backend
					var err error
					if backend == "localdisk" {
						be, err = localdisk.New("l", memfs.New())
					} else {
						be, err = remotedisk.New("r", memfs.New())
					}
					if err != nil {
						b.Fatal(err)
					}
					cost = writeOnce(b, be, opt)
				}
				b.ReportMetric(cost.Seconds(), "virt-s")
			})
		}
	}
}

// BenchmarkAblationLocalDiskChannels varies the SSA channel count: the
// SP2 node's four disks overlap file transfers; one channel serializes.
func BenchmarkAblationLocalDiskChannels(b *testing.B) {
	for _, channels := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("channels%d", channels), func(b *testing.B) {
			var cost time.Duration
			for i := 0; i < b.N; i++ {
				be, err := localdisk.New("l", memfs.New(), localdisk.WithChannels(channels))
				if err != nil {
					b.Fatal(err)
				}
				sim := vtime.NewVirtual()
				procs := sim.NewProcs("r", 8)
				sess, err := be.Connect(procs[0])
				if err != nil {
					b.Fatal(err)
				}
				done := make(chan struct{})
				for r := 0; r < 8; r++ {
					go func(r int) {
						defer func() { done <- struct{}{} }()
						h, err := sess.Open(procs[r], fmt.Sprintf("f%d", r), storage.ModeCreate)
						if err != nil {
							b.Error(err)
							return
						}
						h.WriteAt(procs[r], make([]byte, 4<<20), 0)
						h.Close(procs[r])
					}(r)
				}
				for r := 0; r < 8; r++ {
					<-done
				}
				cost = vtime.MaxNow(procs...)
			}
			b.ReportMetric(cost.Seconds(), "virt-s")
		})
	}
}

// BenchmarkAblationTapeDrives varies the tape library's drive count for
// a workload alternating between two cartridges.
func BenchmarkAblationTapeDrives(b *testing.B) {
	for _, drives := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("drives%d", drives), func(b *testing.B) {
			var cost time.Duration
			for i := 0; i < b.N; i++ {
				lib, err := tape.New(tape.Config{
					Name: "t", Params: model.RemoteTape2000(), Store: memfs.New(),
					Drives: drives, CartridgeCapacity: 2 << 20,
				})
				if err != nil {
					b.Fatal(err)
				}
				sim := vtime.NewVirtual()
				w := sim.NewProc("w")
				sess, _ := lib.Connect(w)
				// Two files forced onto two cartridges.
				for f := 0; f < 2; f++ {
					h, err := sess.Open(w, fmt.Sprintf("f%d", f), storage.ModeCreate)
					if err != nil {
						b.Fatal(err)
					}
					h.WriteAt(w, make([]byte, 2<<20), 0)
					h.Close(w)
				}
				lib.ResetClocks()
				// Two readers each hammer one cartridge.
				ps := sim.NewProcs("r", 2)
				done := make(chan struct{})
				for r := 0; r < 2; r++ {
					go func(r int) {
						defer func() { done <- struct{}{} }()
						s2, _ := lib.Connect(ps[r])
						h, err := s2.Open(ps[r], fmt.Sprintf("f%d", r), storage.ModeRead)
						if err != nil {
							b.Error(err)
							return
						}
						buf := make([]byte, 1<<20)
						h.ReadAt(ps[r], buf, 0)
						h.ReadAt(ps[r], buf, 1<<20)
						h.Close(ps[r])
					}(r)
				}
				<-done
				<-done
				cost = vtime.MaxNow(ps...)
			}
			b.ReportMetric(cost.Seconds(), "virt-s")
		})
	}
}

// BenchmarkAblationWriteBehind contrasts synchronous dumps with the
// aio write-behind queue overlapping a compute phase.
func BenchmarkAblationWriteBehind(b *testing.B) {
	for _, async := range []bool{false, true} {
		name := "sync"
		if async {
			name = "writebehind"
		}
		b.Run(name, func(b *testing.B) {
			var cost time.Duration
			for i := 0; i < b.N; i++ {
				be, err := remotedisk.New("r", memfs.New())
				if err != nil {
					b.Fatal(err)
				}
				sim := vtime.NewVirtual()
				p := sim.NewProc("compute")
				sess, _ := be.Connect(p)
				h, _ := sess.Open(p, "f", storage.ModeCreate)
				data := make([]byte, 1<<20)
				if async {
					w := aio.NewWriter(sim, h, 8)
					for step := 0; step < 4; step++ {
						if err := w.WriteAt(p, data, int64(step)<<20); err != nil {
							b.Fatal(err)
						}
						p.Advance(2 * time.Second) // overlapped compute
					}
					if err := w.Close(p); err != nil {
						b.Fatal(err)
					}
				} else {
					for step := 0; step < 4; step++ {
						if _, err := h.WriteAt(p, data, int64(step)<<20); err != nil {
							b.Fatal(err)
						}
						p.Advance(2 * time.Second)
					}
				}
				cost = p.Now()
			}
			b.ReportMetric(cost.Seconds(), "virt-s")
		})
	}
}

// BenchmarkAblationPrefetch contrasts blocking timestep reads with
// read-ahead of the next timestep.
func BenchmarkAblationPrefetch(b *testing.B) {
	for _, ahead := range []bool{false, true} {
		name := "blocking"
		if ahead {
			name = "prefetch"
		}
		b.Run(name, func(b *testing.B) {
			var cost time.Duration
			for i := 0; i < b.N; i++ {
				be, err := remotedisk.New("r", memfs.New())
				if err != nil {
					b.Fatal(err)
				}
				sim := vtime.NewVirtual()
				w := sim.NewProc("w")
				sess, _ := be.Connect(w)
				const steps = 6
				for s := 0; s < steps; s++ {
					h, _ := sess.Open(w, fmt.Sprintf("iter%04d", s), storage.ModeCreate)
					h.WriteAt(w, make([]byte, 1<<20), 0)
					h.Close(w)
				}
				be.ResetClocks()
				p := sim.NewProc("consumer")
				sess2, _ := be.Connect(p)
				pf := aio.NewPrefetcher(sim, sess2)
				for s := 0; s < steps; s++ {
					next := ""
					if ahead && s+1 < steps {
						next = fmt.Sprintf("iter%04d", s+1)
					}
					if _, err := pf.Read(p, fmt.Sprintf("iter%04d", s), next); err != nil {
						b.Fatal(err)
					}
					p.Advance(4 * time.Second) // compute per timestep
				}
				cost = p.Now()
			}
			b.ReportMetric(cost.Seconds(), "virt-s")
		})
	}
}

// BenchmarkAblationSuperfileFiles sweeps the number of small files:
// the superfile advantage grows linearly with the file count.
func BenchmarkAblationSuperfileFiles(b *testing.B) {
	for _, files := range []int{8, 32, 128} {
		for _, packed := range []bool{false, true} {
			name := fmt.Sprintf("files%d/perfile", files)
			if packed {
				name = fmt.Sprintf("files%d/superfile", files)
			}
			b.Run(name, func(b *testing.B) {
				var cost time.Duration
				for i := 0; i < b.N; i++ {
					be, err := remotedisk.New("r", memfs.New())
					if err != nil {
						b.Fatal(err)
					}
					sim := vtime.NewVirtual()
					w := sim.NewProc("w")
					sess, _ := be.Connect(w)
					payload := make([]byte, 16<<10)
					if packed {
						c, err := superfile.Create(w, sess, "images.sf")
						if err != nil {
							b.Fatal(err)
						}
						for f := 0; f < files; f++ {
							if err := c.Put(w, fmt.Sprintf("im%04d", f), payload); err != nil {
								b.Fatal(err)
							}
						}
						c.Close(w)
						be.ResetClocks()
						p := sim.NewProc("reader")
						sess2, _ := be.Connect(p)
						rc, err := superfile.Open(p, sess2, "images.sf")
						if err != nil {
							b.Fatal(err)
						}
						for f := 0; f < files; f++ {
							if _, err := rc.Get(p, fmt.Sprintf("im%04d", f)); err != nil {
								b.Fatal(err)
							}
						}
						rc.Close(p)
						cost = p.Now()
					} else {
						for f := 0; f < files; f++ {
							h, _ := sess.Open(w, fmt.Sprintf("im%04d", f), storage.ModeCreate)
							h.WriteAt(w, payload, 0)
							h.Close(w)
						}
						be.ResetClocks()
						p := sim.NewProc("reader")
						sess2, _ := be.Connect(p)
						buf := make([]byte, len(payload))
						for f := 0; f < files; f++ {
							h, err := sess2.Open(p, fmt.Sprintf("im%04d", f), storage.ModeRead)
							if err != nil {
								b.Fatal(err)
							}
							h.ReadAt(p, buf, 0)
							h.Close(p)
						}
						cost = p.Now()
					}
				}
				b.ReportMetric(cost.Seconds(), "virt-s")
			})
		}
	}
}

// benchSRBNet measures the WALL-clock cost of 8 ranks doing chunked
// writes and reads through one shared wire session — the core.Run
// arrangement over TCP.  Virtual-time results are identical between the
// serialized and pipelined wire disciplines (the Now/AdvanceTo
// handshake replays every op at its logical instant either way); what
// the pair of benchmarks exposes is the real-time concurrency win of
// the multiplexed protocol.
//
// The sim runs in scaled mode, so the eq. (1) costs of the served disk
// array become real wall-clock waits — the regime the wire layer
// actually operates in.  The array has many independent channels: with
// one request in flight the channels idle while ranks take turns on the
// wire; multiplexed, the ranks' operations overlap across them.
func benchSRBNet(b *testing.B, opts ...srbnet.Option) {
	// 1 virtual second = 1 wall millisecond: a 4 KiB remote call
	// (~45 ms virtual) waits ~45 µs of real time.
	sim := vtime.NewScaled(1e-3)
	broker := srb.NewBroker()
	be, err := device.New(device.Config{
		Name: "sdsc-array", Kind: storage.KindRemoteDisk,
		Params: model.RemoteDisk2000(), Store: memfs.New(), Channels: 64,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := broker.Register(be); err != nil {
		b.Fatal(err)
	}
	broker.AddUser("shen", "nwu")
	srv, err := srbnet.Serve("127.0.0.1:0", broker, sim)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	srv.SetLogf(func(string, ...any) {})
	client := srbnet.NewClient(srv.Addr(), "shen", "nwu", "sdsc-array", storage.KindRemoteDisk, opts...)
	defer client.Close()

	const ranks = 8
	const chunk = 4096
	const chunksPerRank = 8
	p0 := sim.NewProc("rank0")
	sess, err := client.Connect(p0)
	if err != nil {
		b.Fatal(err)
	}
	procs := make([]*vtime.Proc, ranks)
	handles := make([]storage.Handle, ranks)
	payloads := make([][]byte, ranks)
	for r := 0; r < ranks; r++ {
		procs[r] = sim.NewProc(fmt.Sprintf("rank%d-io", r))
		h, err := sess.Open(procs[r], fmt.Sprintf("bench/rank%d", r), storage.ModeCreate)
		if err != nil {
			b.Fatal(err)
		}
		handles[r] = h
		payloads[r] = make([]byte, chunk)
		for i := range payloads[r] {
			payloads[r][i] = byte(r + i)
		}
	}
	b.SetBytes(2 * ranks * chunksPerRank * chunk) // written + read back
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		errs := make([]error, ranks)
		for r := 0; r < ranks; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				got := make([]byte, chunk)
				for k := 0; k < chunksPerRank; k++ {
					off := int64(k * chunk)
					if _, err := handles[r].WriteAt(procs[r], payloads[r], off); err != nil {
						errs[r] = err
						return
					}
					if _, err := handles[r].ReadAt(procs[r], got, off); err != nil {
						errs[r] = err
						return
					}
				}
			}(r)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	for r := 0; r < ranks; r++ {
		if err := handles[r].Close(procs[r]); err != nil {
			b.Fatal(err)
		}
	}
	if err := sess.Close(p0); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSRBNetSerialized is the wire-protocol-v1 baseline: one
// private connection with one request in flight, so the 8 ranks take
// turns on the wire.
func BenchmarkSRBNetSerialized(b *testing.B) {
	benchSRBNet(b, srbnet.WithSerialized())
}

// BenchmarkSRBNetPipelinedV2 is the gob ablation: tagged multiplexing
// with the v2 gob codec instead of v3 binary frames, so the delta to
// BenchmarkSRBNetPipelined is the codec alone.
func BenchmarkSRBNetPipelinedV2(b *testing.B) {
	benchSRBNet(b, srbnet.WithWireV2())
}

// BenchmarkSRBNetPipelined is the default wire: tagged frames from all
// 8 ranks multiplexed over the pooled connections simultaneously,
// encoded with the v3 zero-copy binary codec (pooled frame buffers,
// writev-coalesced small frames).  CI gates allocs/op on this
// benchmark — see .github/workflows/ci.yml.
func BenchmarkSRBNetPipelined(b *testing.B) {
	benchSRBNet(b)
}
