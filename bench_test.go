// Benchmarks regenerating every table and figure of the paper's
// evaluation.  Each benchmark runs the corresponding experiment and
// reports the simulated quantities as custom metrics:
//
//	virt-s       measured I/O time in simulated seconds
//	pred-s       the eq. (2) prediction for the same workload
//	MiB/s        effective device bandwidth (figures 6–8)
//
// Benchmarks run at a reduced problem scale (32³, N=24) so the full
// suite completes in seconds; `go run ./cmd/benchreport -scale paper`
// reproduces the paper's Table 2 scale (128³, N=120).
package msra_test

import (
	"fmt"
	"testing"

	"repro/internal/experiments"
	"repro/internal/localdisk"
	"repro/internal/memfs"
	"repro/internal/metadb"
	"repro/internal/model"
	"repro/internal/ptool"
	"repro/internal/remotedisk"
	"repro/internal/storage"
	"repro/internal/tape"
	"repro/internal/vtime"
)

// benchScale keeps the paper's frequencies and rank count with a
// reduced grid so wall time stays interactive.
func benchScale() experiments.Scale {
	return experiments.Scale{N: 32, MaxIter: 24, Freq: 6, Procs: 8}
}

func newBackend(b *testing.B, kind storage.Kind) storage.Backend {
	b.Helper()
	var be storage.Backend
	var err error
	switch kind {
	case storage.KindLocalDisk:
		be, err = localdisk.New("argonne-ssa", memfs.New())
	case storage.KindRemoteDisk:
		be, err = remotedisk.New("sdsc-disk", memfs.New())
	case storage.KindRemoteTape:
		be, err = tape.New(tape.Config{Name: "sdsc-hpss", Params: model.RemoteTape2000(), Store: memfs.New()})
	}
	if err != nil {
		b.Fatal(err)
	}
	return be
}

// sweep runs one PTool size sweep and reports the largest-size read and
// write bandwidths — the content of figures 6, 7 and 8.
func sweep(b *testing.B, kind storage.Kind) {
	b.Helper()
	var lastRep ptool.Report
	for i := 0; i < b.N; i++ {
		meta := metadb.New()
		rep, err := ptool.Measure(vtime.NewVirtual(), newBackend(b, kind), meta, ptool.Config{Repeats: 1})
		if err != nil {
			b.Fatal(err)
		}
		lastRep = rep
	}
	b.ReportMetric(lastRep.EffectiveBW(model.Write)/model.MiB, "write-MiB/s")
	b.ReportMetric(lastRep.EffectiveBW(model.Read)/model.MiB, "read-MiB/s")
}

// BenchmarkFig6LocalDisk regenerates figure 6 (local-disk read/write
// time vs transfer size).
func BenchmarkFig6LocalDisk(b *testing.B) { sweep(b, storage.KindLocalDisk) }

// BenchmarkFig7RemoteDisk regenerates figure 7 (remote disks via SRB).
func BenchmarkFig7RemoteDisk(b *testing.B) { sweep(b, storage.KindRemoteDisk) }

// BenchmarkFig8RemoteTape regenerates figure 8 (HPSS tapes).
func BenchmarkFig8RemoteTape(b *testing.B) { sweep(b, storage.KindRemoteTape) }

// BenchmarkTable1Constants regenerates Table 1: the eq. (1) constants
// of all three resources, reported for the remote-disk row.
func BenchmarkTable1Constants(b *testing.B) {
	var meta *metadb.DB
	for i := 0; i < b.N; i++ {
		meta = metadb.New()
		_, err := ptool.MeasureAll(vtime.NewVirtual(), meta, ptool.Config{Sizes: []int64{1 << 20}, Repeats: 1},
			newBackend(b, storage.KindLocalDisk),
			newBackend(b, storage.KindRemoteDisk),
			newBackend(b, storage.KindRemoteTape))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(meta.Constant(nil, "remotedisk", "read", metadb.CompConn), "rdisk-conn-s")
	b.ReportMetric(meta.Constant(nil, "remotetape", "read", metadb.CompOpen), "tape-open-s")
	b.ReportMetric(meta.Constant(nil, "localdisk", "write", metadb.CompOpen), "ldisk-open-s")
}

// BenchmarkFig9Scenarios regenerates figure 9: the five placement
// scenarios of the Astro3D run, measured and predicted.
func BenchmarkFig9Scenarios(b *testing.B) {
	for s := 1; s <= 5; s++ {
		b.Run(fmt.Sprintf("scenario%d", s), func(b *testing.B) {
			var row experiments.Fig9Row
			for i := 0; i < b.N; i++ {
				var err error
				row, err = experiments.Fig9One(benchScale(), s)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(row.Measured.Seconds(), "virt-s")
			b.ReportMetric(row.Predicted.Seconds(), "pred-s")
		})
	}
}

// BenchmarkFig10aAnalysis regenerates figure 10(a): MSE data analysis
// reading temp from tape vs remote disk.
func BenchmarkFig10aAnalysis(b *testing.B) {
	benchFig10(b, experiments.Fig10a)
}

// BenchmarkFig10bVisualization regenerates figure 10(b): Volren reading
// vr_temp from tape vs local disk.
func BenchmarkFig10bVisualization(b *testing.B) {
	benchFig10(b, experiments.Fig10b)
}

// BenchmarkFig10cSuperfile regenerates figure 10(c): per-file vs
// superfile access to the rendered images.
func BenchmarkFig10cSuperfile(b *testing.B) {
	benchFig10(b, experiments.Fig10c)
}

func benchFig10(b *testing.B, fn func(experiments.Scale) ([]experiments.Fig10Row, error)) {
	b.Helper()
	var rows []experiments.Fig10Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = fn(benchScale())
		if err != nil {
			b.Fatal(err)
		}
	}
	for i, row := range rows {
		b.ReportMetric(row.Measured.Seconds(), fmt.Sprintf("cfg%d-virt-s", i+1))
	}
}

// BenchmarkFig11Prediction regenerates figure 11 at the paper's full
// Table 2 scale: the per-dataset prediction table with temp on remote
// disks and everything else on tape.
func BenchmarkFig11Prediction(b *testing.B) {
	env, err := experiments.NewEnv()
	if err != nil {
		b.Fatal(err)
	}
	var total float64
	for i := 0; i < b.N; i++ {
		rp, err := experiments.Fig11(env, experiments.PaperScale())
		if err != nil {
			b.Fatal(err)
		}
		total = rp.Total.Seconds()
	}
	b.ReportMetric(total, "pred-s")
}

// BenchmarkWorkedExample regenerates the §4.2 worked example: measured
// vs predicted I/O time for vr-temp→local, vr-press→remote disk.
func BenchmarkWorkedExample(b *testing.B) {
	var pred, meas float64
	for i := 0; i < b.N; i++ {
		p, m, err := experiments.WorkedExample(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		pred, meas = p.Seconds(), m.Seconds()
	}
	b.ReportMetric(meas, "virt-s")
	b.ReportMetric(pred, "pred-s")
}

// BenchmarkFailover regenerates the final §5 experiment: the tape
// system is down and the run proceeds on the remaining resources.
func BenchmarkFailover(b *testing.B) {
	var res experiments.FailoverResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Failover(benchScale())
		if err != nil || res.WriteError != nil {
			b.Fatalf("%v / %v", err, res.WriteError)
		}
	}
	b.ReportMetric(res.IOTime.Seconds(), "virt-s")
}
