// Restart: the checkpoint dataset group in action.  A run is killed by
// the batch system halfway; a new run restores from the restart_*
// datasets (wherever they were archived) and continues — reaching
// exactly the same final state as an uninterrupted run, even at a
// different process count.
//
//	go run ./examples/restart
package main

import (
	"fmt"
	"log"

	"repro/internal/apps/astro3d"
	"repro/internal/core"
	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)

	base := astro3d.Params{
		Nx: 32, Ny: 32, Nz: 32,
		CheckpointFreq: 6, Procs: 8,
		Locations:       map[string]core.Location{},
		DefaultLocation: core.LocRemoteDisk, // checkpoints archived remotely
	}

	// Reference: 12 uninterrupted iterations.
	ref := base
	ref.MaxIter = 12
	refEnv, err := experiments.NewEnv()
	if err != nil {
		log.Fatal(err)
	}
	refRep, err := astro3d.Run(refEnv.Sys, "uninterrupted", ref)
	if err != nil {
		log.Fatal(err)
	}

	// The "killed" run: only 6 iterations complete.
	env, err := experiments.NewEnv()
	if err != nil {
		log.Fatal(err)
	}
	killed := base
	killed.MaxIter = 6
	if _, err := astro3d.Run(env.Sys, "killed-run", killed); err != nil {
		log.Fatal(err)
	}
	fmt.Println("run killed after 6 of 12 iterations; checkpoint lives on remote disks")

	// Resume from the checkpoint, at a different process count.
	resume := base
	resume.Procs = 4
	env.ResetClocks()
	rep, err := astro3d.ContinueRun(env.Sys, "killed-run", "resumed-run", 6, resume)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resumed at %d procs for the remaining 6 iterations (I/O %.1f s)\n",
		resume.Procs, rep.IOTime.Seconds())

	if rep.Checksum == refRep.Checksum {
		fmt.Printf("final state hash %016x — identical to the uninterrupted run\n", rep.Checksum)
	} else {
		log.Fatalf("state diverged: %016x vs %016x", rep.Checksum, refRep.Checksum)
	}
}
