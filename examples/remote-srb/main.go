// Remote SRB: reach storage resources across a real TCP connection
// through the SRB-like middleware — the paper's native interface to
// SDSC's remote disks and HPSS.  The server runs in scaled time, so
// simulated device costs are slept at 1/2000 of real time and the demo
// finishes quickly while still exhibiting the cost ordering.
//
//	go run ./examples/remote-srb
package main

import (
	"fmt"
	"log"

	msra "repro"
	"repro/internal/storage"
)

func main() {
	log.SetFlags(0)

	// Server side: a broker with a remote disk and a tape library,
	// served on a loopback TCP port.
	sim := msra.NewScaledTime(1.0 / 2000)
	broker := msra.NewBroker()
	rdisk, err := msra.NewRemoteDisk("sdsc-disk", msra.NewMemStore())
	check(err)
	rtape, err := msra.NewTapeLibrary(msra.TapeConfig{Name: "sdsc-hpss", Store: msra.NewMemStore()})
	check(err)
	check(broker.Register(rdisk))
	check(broker.Register(rtape))
	broker.AddUser("shen", "nwu")

	srv, err := msra.ServeSRB("127.0.0.1:0", broker, sim)
	check(err)
	defer srv.Close()
	fmt.Printf("srb server on %s serving %v\n", srv.Addr(), broker.Resources())

	// Client side: the same storage.Backend interface, over the wire.
	for _, resource := range []string{"sdsc-disk", "sdsc-hpss"} {
		client := msra.NewSRBClient(srv.Addr(), "shen", "nwu", resource, storage.KindRemoteDisk)
		p := sim.NewProc("client-" + resource)
		sess, err := client.Connect(p)
		check(err)
		h, err := sess.Open(p, "demo/data", msra.ModeCreate)
		check(err)
		payload := make([]byte, 256<<10)
		for i := range payload {
			payload[i] = byte(i)
		}
		_, err = h.WriteAt(p, payload, 0)
		check(err)
		check(h.Close(p))

		r, err := sess.Open(p, "demo/data", msra.ModeRead)
		check(err)
		got := make([]byte, len(payload))
		_, err = r.ReadAt(p, got, 0)
		check(err)
		for i := range got {
			if got[i] != payload[i] {
				log.Fatalf("%s: byte %d corrupted over the wire", resource, i)
			}
		}
		check(r.Close(p))
		check(sess.Close(p))
		fmt.Printf("  %-10s 256 KiB round trip, simulated cost %7.2f s\n", resource, p.Now().Seconds())
	}
	fmt.Println("tape cost ≫ disk cost, as Table 1 dictates")
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
