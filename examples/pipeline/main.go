// Pipeline: the paper's full simulation environment end to end —
// Astro3D produces datasets with per-dataset placement hints, the MSE
// analysis consumes temp from remote disks, and Volren renders vr_temp
// from local disks into a superfile of images.  This is the paper's
// motivating scenario: "the application can speculatively store the
// datasets to the 'best' storage medium which is most favorable for the
// desired post-processing".
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"log"

	"repro/internal/apps/astro3d"
	"repro/internal/apps/mse"
	"repro/internal/apps/volren"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/imageio"
	"repro/internal/ioopt"
)

func main() {
	log.SetFlags(0)
	env, err := experiments.NewEnv()
	if err != nil {
		log.Fatal(err)
	}

	// The producer: temp close to the analysis (remote disks), vr_temp
	// close to the visualization (local disks), everything else archived
	// on tape.
	prm := astro3d.Params{
		Nx: 32, Ny: 32, Nz: 32, MaxIter: 24,
		AnalysisFreq: 6, VizFreq: 6, CheckpointFreq: 6, Procs: 8,
		Locations: map[string]core.Location{
			"temp":    core.LocRemoteDisk,
			"vr_temp": core.LocLocalDisk,
		},
		DefaultLocation: core.LocRemoteTape,
	}
	rep, err := astro3d.Run(env.Sys, "sim", prm)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("astro3d: %d dumps, %.1f MiB, write I/O %.1f s\n",
		rep.Dumps, float64(rep.BytesOut)/(1<<20), rep.IOTime.Seconds())

	// Post-processing starts after the simulation: devices are idle.
	env.ResetClocks()

	analysis, err := mse.Run(env.Sys, "mse", mse.Params{
		ProducerRun: "sim", Dataset: "temp", Iterations: 24, Procs: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("analysis: read I/O %.1f s; MSE series:", analysis.IOTime.Seconds())
	for i := range analysis.Steps {
		fmt.Printf(" %.3g", analysis.MSE[i])
	}
	fmt.Println()

	env.ResetClocks()
	render, err := volren.Run(env.Sys, "volren", volren.Params{
		ProducerRun: "sim", Dataset: "vr_temp", Iterations: 24, Procs: 8,
		ImageLocation: core.LocRemoteDisk, ImageOpt: ioopt.Superfile,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("volren: rendered %d images, I/O %.1f s\n", len(render.Images), render.IOTime.Seconds())
	for iter, im := range render.Images {
		if iter == 12 {
			min, max, mean := imageio.Stats(im)
			fmt.Printf("  image @ iter 12: %dx%d min=%d max=%d mean=%.1f\n", im.W, im.H, min, max, mean)
		}
	}

	// The archived datasets remain on tape for later retrieval.
	mounts, carts, wasted := env.RTape.Stats()
	fmt.Printf("tape library: %d mounts, %d cartridges, %d dead bytes\n", mounts, carts, wasted)
}
