// Staging: home a dataset on the tape archive, then let the
// prediction-driven staging engine pay the tape latency once.  The
// first read pass copies each dump onto the local disks (because the
// predictor says the residual accesses will amortize the copy); the
// second pass is served from the cache at local-disk speed.
//
//	go run ./examples/staging
package main

import (
	"fmt"
	"log"

	msra "repro"
	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)

	// An environment with the PTool sweep already run: the predictor
	// knows what a byte costs on each storage class.
	env, err := experiments.NewEnv()
	check(err)

	// The staging engine: cache on the local disks, budget sized for
	// three dumps, decisions driven by the predictor.
	mgr, err := msra.NewStageManager(msra.StageConfig{
		Sim:           env.Sim,
		Cache:         env.Local,
		Budget:        3 * 32 * 32 * 32 * 4,
		PDB:           env.PDB,
		ExpectedReads: 2,
		PrefetchDepth: 2,
	})
	check(err)
	defer mgr.Close()

	// The producer writes temp straight to the tapes — archival
	// capacity, no staging involved.
	run, err := env.Sys.Initialize(msra.RunConfig{
		ID: "producer", App: "demo", Iterations: 12, Procs: 4,
	})
	check(err)
	ds, err := run.OpenDataset(msra.DatasetSpec{
		Name: "temp", AMode: msra.ModeCreate,
		Dims: []int{32, 32, 32}, Etype: 4,
		Location: msra.RemoteTape, Frequency: 6,
	})
	check(err)
	bufs := make([][]byte, 4)
	for r := range bufs {
		n, err := ds.LocalSize(r)
		check(err)
		bufs[r] = make([]byte, n)
	}
	for iter := 0; iter <= 12; iter++ {
		if ds.Due(iter) {
			check(ds.WriteIter(iter, bufs))
		}
	}
	check(run.Finalize())
	fmt.Printf("producer archived temp on %s (%s)\n", ds.Backend().Name(), ds.Backend().Kind())

	// The consumer reads through a system wired to the staging engine:
	// same resources, same clocks, dataset I/O redirected via the cache.
	consumer, err := msra.NewSystem(msra.SystemConfig{
		Sim: env.Sim, Meta: env.Meta,
		LocalDisk: env.Local, RemoteDisk: env.RDisk, RemoteTape: env.RTape,
		Stager: mgr,
	})
	check(err)
	for pass := 1; pass <= 2; pass++ {
		env.ResetClocks()
		mgr.WaitPrefetch()
		mgr.ResetClocks()
		view, err := consumer.Initialize(msra.RunConfig{
			ID: fmt.Sprintf("viewer-%d", pass), App: "viewer", Iterations: 1, Procs: 1,
		})
		check(err)
		d, err := view.AttachDataset("producer", "temp")
		check(err)
		p := env.Sim.NewProc(fmt.Sprintf("viewer-%d", pass))
		before := p.Now()
		for iter := 0; iter <= 12; iter += 6 {
			_, err := d.ReadGlobal(p, iter)
			check(err)
		}
		fmt.Printf("pass %d read 3 dumps in %8.2f s (simulated)\n", pass, (p.Now() - before).Seconds())
		check(view.Finalize())
	}

	st := mgr.Stats()
	fmt.Printf("cache: %d staged in, %d hits (%.0f%% hit rate), %d B moved, peak %d/%d B\n",
		st.StagedIn, st.Hits, 100*st.HitRate(), st.BytesStagedIn+st.BytesWrittenBack,
		st.PeakUsed, st.Budget)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
