// Failover: the paper's final experiment — "suppose that the remote
// tape system is down for maintenance … we can still satisfy large
// storage space requirements for simulations by aggregating all the
// space of remote disks, local disks and other storage resources".
//
//	go run ./examples/failover
package main

import (
	"fmt"
	"log"

	"repro/internal/apps/astro3d"
	"repro/internal/core"
	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	env, err := experiments.NewEnv()
	if err != nil {
		log.Fatal(err)
	}

	// The tape archive goes down for maintenance.
	env.RTape.SetDown(true)
	fmt.Println("sdsc-hpss: DOWN for maintenance")

	// The user runs anyway: AUTO datasets fail over to the aggregated
	// remaining resources instead of aborting.
	prm := astro3d.Params{
		Nx: 32, Ny: 32, Nz: 32, MaxIter: 24,
		AnalysisFreq: 6, VizFreq: 6, Procs: 8,
		DefaultLocation: core.LocAuto,
	}
	rep, err := astro3d.Run(env.Sys, "outage-run", prm)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("run completed despite the outage: %d dumps, I/O %.1f s\n",
		rep.Dumps, rep.IOTime.Seconds())
	for _, name := range []string{"temp", "vr_temp"} {
		row, err := env.Meta.GetDataset(nil, "outage-run", name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s → %s\n", name, row.Resource)
	}

	// Maintenance over: new runs archive to tape again.
	env.RTape.SetDown(false)
	env.ResetClocks()
	rep2, err := astro3d.Run(env.Sys, "after-repair", astro3d.Params{
		Nx: 32, Ny: 32, Nz: 32, MaxIter: 12, AnalysisFreq: 6, Procs: 8,
		DefaultLocation: core.LocAuto,
	})
	if err != nil {
		log.Fatal(err)
	}
	row, _ := env.Meta.GetDataset(nil, "after-repair", "temp")
	fmt.Printf("after repair: temp → %s (I/O %.1f s)\n", row.Resource, rep2.IOTime.Seconds())
}
