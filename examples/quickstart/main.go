// Quickstart: assemble a multi-storage resource system, write a dataset
// through the user API with a location hint, and read it back.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	msra "repro"
)

func main() {
	log.SetFlags(0)

	// A time domain: virtual clocks make year-2000 device costs free to
	// simulate.
	sim := msra.NewVirtualTime()

	// The three storage resources of the paper's environment, over
	// in-memory byte stores (use msra.NewDirStore for real directories).
	local, err := msra.NewLocalDisk("argonne-ssa", msra.NewMemStore())
	check(err)
	rdisk, err := msra.NewRemoteDisk("sdsc-disk", msra.NewMemStore())
	check(err)
	rtape, err := msra.NewTapeLibrary(msra.TapeConfig{Name: "sdsc-hpss", Store: msra.NewMemStore()})
	check(err)

	sys, err := msra.NewSystem(msra.SystemConfig{
		Sim: sim, Meta: msra.NewMetaDB(),
		LocalDisk: local, RemoteDisk: rdisk, RemoteTape: rtape,
	})
	check(err)

	// An application run with 4 parallel processes.
	run, err := sys.Initialize(msra.RunConfig{
		ID: "quickstart", App: "demo", User: "you",
		Iterations: 12, Procs: 4,
	})
	check(err)

	// A 3-D float dataset dumped every 6 iterations, hinted to local
	// disks because we plan to visualize it right away.
	pat, err := msra.ParsePattern("B**")
	check(err)
	ds, err := run.OpenDataset(msra.DatasetSpec{
		Name: "temp", AMode: msra.ModeCreate,
		Dims: []int{32, 32, 32}, Etype: 4,
		Pattern: pat, Location: msra.LocalDisk, Frequency: 6,
	})
	check(err)
	fmt.Printf("dataset %q placed on %s (%s)\n",
		ds.Spec().Name, ds.Backend().Name(), ds.Backend().Kind())

	// Each rank supplies its packed subarray; collective I/O merges them
	// into one native write per dump.
	bufs := make([][]byte, 4)
	for r := range bufs {
		n, err := ds.LocalSize(r)
		check(err)
		bufs[r] = make([]byte, n)
		for i := range bufs[r] {
			bufs[r][i] = byte(r + i)
		}
	}
	for iter := 0; iter <= 12; iter++ {
		if ds.Due(iter) {
			check(ds.WriteIter(iter, bufs))
		}
	}

	// Read one dump back as a whole array (the post-processing path).
	viewer := sim.NewProc("viewer")
	global, err := ds.ReadGlobal(viewer, 6)
	check(err)
	fmt.Printf("read %d bytes back; run I/O time %.3f s (simulated)\n",
		len(global), run.IOTime().Seconds())
	check(run.Finalize())
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
