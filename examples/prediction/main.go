// Prediction: use PTool and the eq. (2) predictor to choose a
// placement *before* running, then verify the prediction against the
// measured run — the paper's "lower bound for the maximum run time"
// use case, plus the future-work requirement-driven AUTO placement.
//
//	go run ./examples/prediction
package main

import (
	"fmt"
	"log"
	"time"

	msra "repro"
	"repro/internal/apps/astro3d"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/predict"
)

func main() {
	log.SetFlags(0)
	env, err := experiments.NewEnv()
	if err != nil {
		log.Fatal(err)
	}

	// 1. Ask the predictor what each placement of an 8 MiB-per-dump
	// dataset would cost over the run.
	fmt.Println("predicted I/O time for 21 dumps of one 8 MiB dataset:")
	for _, resource := range []string{"localdisk", "remotedisk", "remotetape"} {
		row, err := env.PDB.PredictDataset(predict.DatasetReq{
			Name: "temp", AMode: "create", Dims: []int{128, 128, 128}, Etype: 4,
			Pattern: "B**", Location: resource, Frequency: 6, Procs: 8,
		}, 120)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s %10.1f s\n", resource, row.VirtualTime.Seconds())
	}

	// 2. Let the requirement-driven placer decide: "finish this
	// dataset's I/O within 1500 s" → remote disk (tape misses the
	// deadline, local disk is kept free).
	placer := msra.PredictivePlacer(env.PDB, 120, 8, msra.WithRequirement(1500*time.Second))
	sys, err := msra.NewSystem(msra.SystemConfig{
		Sim: env.Sim, Meta: env.Meta,
		LocalDisk: env.Local, RemoteDisk: env.RDisk, RemoteTape: env.RTape,
		Placer: placer,
	})
	if err != nil {
		log.Fatal(err)
	}
	run, err := sys.Initialize(msra.RunConfig{ID: "plan", App: "astro3d", Iterations: 120, Procs: 8})
	if err != nil {
		log.Fatal(err)
	}
	ds, err := run.OpenDataset(msra.DatasetSpec{
		Name: "temp", AMode: msra.ModeCreate, Dims: []int{128, 128, 128},
		Etype: 4, Location: msra.Auto, Frequency: 6,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nAUTO with a 1500 s requirement placed temp on: %s\n", ds.Backend().Kind())
	if err := run.Finalize(); err != nil {
		log.Fatal(err)
	}

	// 3. Verify prediction against measurement at a reduced scale.
	scale := experiments.Scale{N: 32, MaxIter: 24, Freq: 6, Procs: 8}
	pred, err := experiments.PredictAstro3D(env.PDB, scale,
		map[string]core.Location{"temp": core.LocRemoteDisk}, core.LocDisable)
	if err != nil {
		log.Fatal(err)
	}
	env2, err := experiments.NewEnv()
	if err != nil {
		log.Fatal(err)
	}
	rep, err := astro3d.Run(env2.Sys, "verify", astro3d.Params{
		Nx: 32, Ny: 32, Nz: 32, MaxIter: 24, AnalysisFreq: 6, Procs: 8,
		Locations:       map[string]core.Location{"temp": core.LocRemoteDisk},
		DefaultLocation: core.LocDisable,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nscaled run: predicted %.2f s, measured %.2f s (%.1f%% apart)\n",
		pred.Total.Seconds(), rep.IOTime.Seconds(),
		100*(rep.IOTime.Seconds()-pred.Total.Seconds())/pred.Total.Seconds())
}
