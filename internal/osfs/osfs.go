// Package osfs implements the raw storage.Store byte layer on top of a
// real directory tree.  The local-disk backend and the srbd server use it
// so data genuinely round-trips through the operating system's
// filesystem, matching the paper's "native interface to local disks is
// the general UNIX file system".
package osfs

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/storage"
)

// FS stores files under a root directory.  Storage paths map to
// filesystem paths beneath the root; parent directories are created on
// demand.
type FS struct {
	root string
}

// New returns a store rooted at dir, creating it if necessary.
func New(dir string) (*FS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("osfs: %w", err)
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, fmt.Errorf("osfs: %w", err)
	}
	return &FS{root: abs}, nil
}

// Root returns the root directory.
func (f *FS) Root() string { return f.root }

var _ storage.Store = (*FS)(nil)

func (f *FS) realPath(name string) (string, error) {
	c, err := storage.CleanPath(name)
	if err != nil {
		return "", err
	}
	return filepath.Join(f.root, filepath.FromSlash(c)), nil
}

// Open implements storage.Store.
func (f *FS) Open(name string, create, trunc bool) (storage.File, error) {
	rp, err := f.realPath(name)
	if err != nil {
		return nil, err
	}
	flags := os.O_RDWR
	if create {
		flags |= os.O_CREATE
		if err := os.MkdirAll(filepath.Dir(rp), 0o755); err != nil {
			return nil, fmt.Errorf("osfs open %q: %w", name, err)
		}
	}
	if trunc {
		flags |= os.O_TRUNC
	}
	fh, err := os.OpenFile(rp, flags, 0o644)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("osfs open %q: %w", name, storage.ErrNotExist)
		}
		return nil, fmt.Errorf("osfs open %q: %w", name, err)
	}
	return &file{f: fh}, nil
}

// Remove implements storage.Store.
func (f *FS) Remove(name string) error {
	rp, err := f.realPath(name)
	if err != nil {
		return err
	}
	if err := os.Remove(rp); err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return fmt.Errorf("osfs remove %q: %w", name, storage.ErrNotExist)
		}
		return fmt.Errorf("osfs remove %q: %w", name, err)
	}
	return nil
}

// Stat implements storage.Store.
func (f *FS) Stat(name string) (storage.FileInfo, error) {
	rp, err := f.realPath(name)
	if err != nil {
		return storage.FileInfo{}, err
	}
	fi, err := os.Stat(rp)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return storage.FileInfo{}, fmt.Errorf("osfs stat %q: %w", name, storage.ErrNotExist)
		}
		return storage.FileInfo{}, fmt.Errorf("osfs stat %q: %w", name, err)
	}
	c, _ := storage.CleanPath(name)
	return storage.FileInfo{Path: c, Size: fi.Size()}, nil
}

// List implements storage.Store.
func (f *FS) List(prefix string) ([]storage.FileInfo, error) {
	var out []storage.FileInfo
	err := filepath.WalkDir(f.root, func(p string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		rel, err := filepath.Rel(f.root, p)
		if err != nil {
			return err
		}
		name := filepath.ToSlash(rel)
		if !strings.HasPrefix(name, prefix) {
			return nil
		}
		fi, err := d.Info()
		if err != nil {
			return err
		}
		out = append(out, storage.FileInfo{Path: name, Size: fi.Size()})
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("osfs list %q: %w", prefix, err)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// UsedBytes implements storage.Store by walking the tree.
func (f *FS) UsedBytes() int64 {
	var total int64
	_ = filepath.WalkDir(f.root, func(p string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		if fi, err := d.Info(); err == nil {
			total += fi.Size()
		}
		return nil
	})
	return total
}

type file struct {
	f *os.File
}

func (fl *file) ReadAt(b []byte, off int64) (int, error)  { return fl.f.ReadAt(b, off) }
func (fl *file) WriteAt(b []byte, off int64) (int, error) { return fl.f.WriteAt(b, off) }
func (fl *file) Truncate(size int64) error                { return fl.f.Truncate(size) }
func (fl *file) Close() error                             { return fl.f.Close() }

func (fl *file) Size() int64 {
	fi, err := fl.f.Stat()
	if err != nil {
		return 0
	}
	return fi.Size()
}
