package osfs

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/storage"
)

func newFS(t *testing.T) *FS {
	t.Helper()
	fs, err := New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestRoundTrip(t *testing.T) {
	fs := newFS(t)
	f, err := fs.Open("a/b/c.dat", true, false)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.WriteAt([]byte("payload"), 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 7)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "payload" {
		t.Fatalf("read %q", buf)
	}
	if f.Size() != 7 {
		t.Fatalf("size = %d", f.Size())
	}
}

func TestMissingFile(t *testing.T) {
	fs := newFS(t)
	if _, err := fs.Open("nope", false, false); !errors.Is(err, storage.ErrNotExist) {
		t.Fatalf("open missing err = %v", err)
	}
	if _, err := fs.Stat("nope"); !errors.Is(err, storage.ErrNotExist) {
		t.Fatalf("stat missing err = %v", err)
	}
	if err := fs.Remove("nope"); !errors.Is(err, storage.ErrNotExist) {
		t.Fatalf("remove missing err = %v", err)
	}
}

func TestPathEscapeRejected(t *testing.T) {
	fs := newFS(t)
	for _, p := range []string{"../x", "a/../../x", ""} {
		if _, err := fs.Open(p, true, false); !errors.Is(err, storage.ErrBadPath) {
			t.Errorf("Open(%q) err = %v, want ErrBadPath", p, err)
		}
	}
}

func TestStatListUsed(t *testing.T) {
	fs := newFS(t)
	for _, name := range []string{"r/a", "r/b", "s/c"} {
		f, err := fs.Open(name, true, false)
		if err != nil {
			t.Fatal(err)
		}
		f.WriteAt(bytes.Repeat([]byte{1}, 10), 0)
		f.Close()
	}
	fi, err := fs.Stat("r/a")
	if err != nil || fi.Size != 10 || fi.Path != "r/a" {
		t.Fatalf("Stat = %+v, %v", fi, err)
	}
	ls, err := fs.List("r/")
	if err != nil || len(ls) != 2 {
		t.Fatalf("List = %v, %v", ls, err)
	}
	if ls[0].Path != "r/a" || ls[1].Path != "r/b" {
		t.Fatalf("List order = %v", ls)
	}
	if used := fs.UsedBytes(); used != 30 {
		t.Fatalf("UsedBytes = %d, want 30", used)
	}
}

func TestTruncateOnOpen(t *testing.T) {
	fs := newFS(t)
	f, _ := fs.Open("x", true, false)
	f.WriteAt([]byte("0123456789"), 0)
	f.Close()
	g, err := fs.Open("x", true, true)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if g.Size() != 0 {
		t.Fatalf("size after trunc = %d", g.Size())
	}
}

func TestRemove(t *testing.T) {
	fs := newFS(t)
	f, _ := fs.Open("x", true, false)
	f.WriteAt([]byte{1}, 0)
	f.Close()
	if err := fs.Remove("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat("x"); !errors.Is(err, storage.ErrNotExist) {
		t.Fatalf("stat after remove = %v", err)
	}
}
