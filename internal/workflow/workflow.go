// Package workflow predicts and provisions whole pipelines.
//
// Eq. (2) prices a single application run; the repo's real consumers
// are DAGs (astro3d → MSE → volren → viewer in internal/apps).
// Following Costa et al., "Predicting Intermediate Storage Performance
// for Workflow Applications", per-stage predictions from the calibrated
// performance database compose into an end-to-end makespan under a
// configurable producer/consumer overlap, and the same graph drives
// provisioning: stage-cache budgets sized from predicted working sets,
// prefetch scheduled along DAG edges, and lifetime-aware placement for
// intermediates that only exist between two stages.
package workflow

import (
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/predict"
)

// Stage is one node of the workflow: an application run described by
// the datasets it reads and writes, in the same shape eq. (2) prices.
type Stage struct {
	Name       string
	Iterations int // the run's maximum iteration count N
	Datasets   []predict.DatasetReq
}

// Edge is a producer→consumer dependency.  Datasets names the data
// flowing along the edge; each must be written by From and read by To.
type Edge struct {
	From, To string
	Datasets []string
}

// DAG is a workflow graph.  Build it with AddStage/AddEdge (or Parse)
// and check it with Validate before predicting or provisioning.
type DAG struct {
	stages []Stage
	index  map[string]int
	edges  []Edge
}

// New returns an empty DAG.
func New() *DAG { return &DAG{index: make(map[string]int)} }

// AddStage appends a stage.  Names must be unique.
func (g *DAG) AddStage(s Stage) error {
	if strings.TrimSpace(s.Name) == "" {
		return fmt.Errorf("workflow: stage needs a name")
	}
	if _, dup := g.index[s.Name]; dup {
		return fmt.Errorf("workflow: duplicate stage %q", s.Name)
	}
	if s.Iterations < 0 {
		return fmt.Errorf("workflow: stage %q: negative iterations", s.Name)
	}
	g.index[s.Name] = len(g.stages)
	g.stages = append(g.stages, s)
	return nil
}

// AddEdge appends a dependency.  Both stages must already exist;
// self-loops and duplicate (from, to) pairs are rejected.
func (g *DAG) AddEdge(from, to string, datasets ...string) error {
	if from == to {
		return fmt.Errorf("workflow: self edge on stage %q", from)
	}
	if _, ok := g.index[from]; !ok {
		return fmt.Errorf("workflow: edge from unknown stage %q", from)
	}
	if _, ok := g.index[to]; !ok {
		return fmt.Errorf("workflow: edge to unknown stage %q", to)
	}
	for _, e := range g.edges {
		if e.From == from && e.To == to {
			return fmt.Errorf("workflow: duplicate edge %s -> %s", from, to)
		}
	}
	g.edges = append(g.edges, Edge{From: from, To: to, Datasets: append([]string(nil), datasets...)})
	return nil
}

// Stages returns the stages in insertion order.
func (g *DAG) Stages() []Stage { return append([]Stage(nil), g.stages...) }

// Edges returns the edges in insertion order.
func (g *DAG) Edges() []Edge { return append([]Edge(nil), g.edges...) }

// Stage looks a stage up by name.
func (g *DAG) Stage(name string) (Stage, bool) {
	i, ok := g.index[name]
	if !ok {
		return Stage{}, false
	}
	return g.stages[i], true
}

// stageDataset finds a named dataset request within a stage.
func stageDataset(s Stage, name string) (predict.DatasetReq, bool) {
	for _, d := range s.Datasets {
		if d.Name == name {
			return d, true
		}
	}
	return predict.DatasetReq{}, false
}

// disabled mirrors the predictor's zero-cost rule for unplaced data.
func disabled(d predict.DatasetReq) bool {
	return d.Location == "" || strings.EqualFold(d.Location, "DISABLE")
}

// instanceBytes is the whole-instance size of one dump.
func instanceBytes(d predict.DatasetReq) int64 {
	n := int64(1)
	for _, dim := range d.Dims {
		n *= int64(dim)
	}
	etype := int64(d.Etype)
	if etype <= 0 {
		etype = 1
	}
	return n * etype
}

// dumps is the paper's instance count N/freq + 1 for a dataset of the
// given stage.
func dumps(d predict.DatasetReq, iterations int) int {
	freq := d.Frequency
	if freq <= 0 {
		freq = 1
	}
	return iterations/freq + 1
}

// TopoOrder returns the stages in a deterministic topological order
// (insertion order among ready stages), or an error naming a stage on a
// cycle.
func (g *DAG) TopoOrder() ([]string, error) {
	indeg := make(map[string]int, len(g.stages))
	for _, s := range g.stages {
		indeg[s.Name] = 0
	}
	for _, e := range g.edges {
		indeg[e.To]++
	}
	order := make([]string, 0, len(g.stages))
	done := make(map[string]bool, len(g.stages))
	for len(order) < len(g.stages) {
		progressed := false
		for _, s := range g.stages {
			if done[s.Name] || indeg[s.Name] != 0 {
				continue
			}
			done[s.Name] = true
			order = append(order, s.Name)
			for _, e := range g.edges {
				if e.From == s.Name {
					indeg[e.To]--
				}
			}
			progressed = true
		}
		if !progressed {
			for _, s := range g.stages {
				if !done[s.Name] {
					return nil, fmt.Errorf("workflow: cycle through stage %q", s.Name)
				}
			}
		}
	}
	return order, nil
}

// Validate checks the graph: non-empty, acyclic, every dataset's access
// mode well-formed, and every edge dataset written by its producer,
// read by its consumer, and geometrically identical on both ends.
func (g *DAG) Validate() error {
	if len(g.stages) == 0 {
		return fmt.Errorf("workflow: empty DAG")
	}
	if _, err := g.TopoOrder(); err != nil {
		return err
	}
	for _, s := range g.stages {
		for _, d := range s.Datasets {
			if disabled(d) {
				continue
			}
			if _, err := predict.NormalizeAMode(d.AMode); err != nil {
				return fmt.Errorf("workflow: stage %q dataset %q: %w", s.Name, d.Name, err)
			}
		}
	}
	for _, e := range g.edges {
		from, _ := g.Stage(e.From)
		to, _ := g.Stage(e.To)
		for _, name := range e.Datasets {
			wd, ok := stageDataset(from, name)
			if !ok {
				return fmt.Errorf("workflow: edge %s -> %s: stage %q does not declare dataset %q", e.From, e.To, e.From, name)
			}
			if op, err := predict.NormalizeAMode(wd.AMode); err != nil || op != "write" {
				return fmt.Errorf("workflow: edge %s -> %s: dataset %q is not written by its producer", e.From, e.To, name)
			}
			rd, ok := stageDataset(to, name)
			if !ok {
				return fmt.Errorf("workflow: edge %s -> %s: stage %q does not declare dataset %q", e.From, e.To, e.To, name)
			}
			if op, err := predict.NormalizeAMode(rd.AMode); err != nil || op != "read" {
				return fmt.Errorf("workflow: edge %s -> %s: dataset %q is not read by its consumer", e.From, e.To, name)
			}
			if instanceBytes(wd) != instanceBytes(rd) {
				return fmt.Errorf("workflow: edge %s -> %s: dataset %q geometry differs between producer (%d B) and consumer (%d B)",
					e.From, e.To, name, instanceBytes(wd), instanceBytes(rd))
			}
		}
	}
	return nil
}

// StageSchedule is one stage placed on the composed timeline.
type StageSchedule struct {
	Name     string
	Start    time.Duration
	Duration time.Duration
	Critical bool
}

// Finish is the stage's completion time.
func (s StageSchedule) Finish() time.Duration { return s.Start + s.Duration }

// MakespanResult is a composed schedule under one overlap level.
type MakespanResult struct {
	Overlap float64
	// Stages is the schedule in topological order.
	Stages       []StageSchedule
	Makespan     time.Duration
	CriticalPath []string // producer-first chain of binding dependencies
}

// Compose schedules the DAG given per-stage durations under the overlap
// model: a consumer may start once (1−overlap) of each producer has
// run, i.e.
//
//	start(c) = max over edges (p, c) of start(p) + (1−overlap)·dur(p)
//
// overlap 0 is strictly staged execution (the consumer waits for the
// whole producer); overlap 1 is fully pipelined (every stage streams,
// makespan = the longest stage).  The critical path backtracks the
// binding predecessor from the stage that finishes last.
func (g *DAG) Compose(dur map[string]time.Duration, overlap float64) (MakespanResult, error) {
	if math.IsNaN(overlap) || overlap < 0 || overlap > 1 {
		return MakespanResult{}, fmt.Errorf("workflow: overlap %v outside [0, 1]", overlap)
	}
	order, err := g.TopoOrder()
	if err != nil {
		return MakespanResult{}, err
	}
	for _, name := range order {
		if _, ok := dur[name]; !ok {
			return MakespanResult{}, fmt.Errorf("workflow: no duration for stage %q", name)
		}
	}
	start := make(map[string]time.Duration, len(order))
	binding := make(map[string]string, len(order))
	for _, name := range order {
		var st time.Duration
		var bind string
		for _, e := range g.edges {
			if e.To != name {
				continue
			}
			c := start[e.From] + time.Duration((1-overlap)*float64(dur[e.From]))
			if c > st {
				st, bind = c, e.From
			}
		}
		start[name], binding[name] = st, bind
	}
	res := MakespanResult{Overlap: overlap}
	last := ""
	for _, name := range order {
		fin := start[name] + dur[name]
		if fin > res.Makespan || last == "" {
			res.Makespan, last = fin, name
		}
	}
	onPath := make(map[string]bool)
	for at := last; at != ""; at = binding[at] {
		res.CriticalPath = append([]string{at}, res.CriticalPath...)
		onPath[at] = true
	}
	for _, name := range order {
		res.Stages = append(res.Stages, StageSchedule{
			Name: name, Start: start[name], Duration: dur[name], Critical: onPath[name],
		})
	}
	return res, nil
}

// Prediction is a composed schedule whose durations came from the
// predictor, with the per-stage eq. (2) tables attached.
type Prediction struct {
	MakespanResult
	// Runs holds each stage's figure-11 prediction table.
	Runs map[string]predict.RunPrediction
}

// Durations extracts the per-stage durations of a composed schedule.
func (m MakespanResult) Durations() map[string]time.Duration {
	out := make(map[string]time.Duration, len(m.Stages))
	for _, s := range m.Stages {
		out[s.Name] = s.Duration
	}
	return out
}

// PredictMakespan prices every stage with eq. (2) and composes the
// schedule at the given overlap.
func (g *DAG) PredictMakespan(pdb *predict.DB, overlap float64) (Prediction, error) {
	if err := g.Validate(); err != nil {
		return Prediction{}, err
	}
	dur := make(map[string]time.Duration, len(g.stages))
	runs := make(map[string]predict.RunPrediction, len(g.stages))
	for _, s := range g.stages {
		rp, err := pdb.Predict(predict.RunReq{Iterations: s.Iterations, Datasets: s.Datasets})
		if err != nil {
			return Prediction{}, fmt.Errorf("workflow: stage %q: %w", s.Name, err)
		}
		dur[s.Name] = rp.Total
		runs[s.Name] = rp
	}
	ms, err := g.Compose(dur, overlap)
	if err != nil {
		return Prediction{}, err
	}
	return Prediction{MakespanResult: ms, Runs: runs}, nil
}

// TableString renders a composed schedule: one row per stage in
// topological order, the critical path marked.
func (m MakespanResult) TableString() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %12s %12s %12s %s\n", "STAGE", "START(s)", "DUR(s)", "FINISH(s)", "CRIT")
	for _, s := range m.Stages {
		mark := ""
		if s.Critical {
			mark = "*"
		}
		fmt.Fprintf(&b, "%-12s %12.3f %12.3f %12.3f %4s\n",
			s.Name, s.Start.Seconds(), s.Duration.Seconds(), s.Finish().Seconds(), mark)
	}
	fmt.Fprintf(&b, "makespan %.3f s at overlap %.2f (critical path: %s)\n",
		m.Makespan.Seconds(), m.Overlap, strings.Join(m.CriticalPath, " -> "))
	return b.String()
}

// Pipeline builds the repo's canonical four-stage chain — astro3d
// produces temp (float32) and vr_temp (u8) on the tapes; MSE analyzes
// temp; volren renders vr_temp into a per-dump image; a viewer replays
// the images next to the temp field — with the given grid edge,
// iteration count, dump frequency and rank count.
func Pipeline(n, maxIter, freq, procs int) *DAG {
	g := New()
	vol := func(name, amode string, etype, p int) predict.DatasetReq {
		return predict.DatasetReq{
			Name: name, AMode: amode, Dims: []int{n, n, n}, Etype: etype,
			Pattern: "B**", Location: "remotetape", Frequency: freq, Procs: p,
		}
	}
	img := func(amode string, p int) predict.DatasetReq {
		return predict.DatasetReq{
			Name: "image", AMode: amode, Dims: []int{n, n}, Etype: 1,
			Pattern: "B*", Location: "remotetape", Frequency: freq, Procs: p,
		}
	}
	// Errors are impossible by construction; Validate guards regardless.
	_ = g.AddStage(Stage{Name: "astro3d", Iterations: maxIter, Datasets: []predict.DatasetReq{
		vol("temp", "create", 4, procs), vol("vr_temp", "create", 1, procs),
	}})
	_ = g.AddStage(Stage{Name: "mse", Iterations: maxIter, Datasets: []predict.DatasetReq{
		vol("temp", "read", 4, procs),
	}})
	_ = g.AddStage(Stage{Name: "volren", Iterations: maxIter, Datasets: []predict.DatasetReq{
		vol("vr_temp", "read", 1, procs), img("create", procs),
	}})
	// The viewer is an interactive single process replaying the rendered
	// images next to the temp field (whole-instance reads).
	viewTemp := vol("temp", "read", 4, 1)
	_ = g.AddStage(Stage{Name: "viewer", Iterations: maxIter, Datasets: []predict.DatasetReq{
		viewTemp, img("read", 1),
	}})
	_ = g.AddEdge("astro3d", "mse", "temp")
	_ = g.AddEdge("astro3d", "volren", "vr_temp")
	_ = g.AddEdge("volren", "viewer", "image")
	_ = g.AddEdge("astro3d", "viewer", "temp")
	return g
}
