package workflow

import (
	"testing"
	"time"
)

// FuzzParse throws hostile DAG text at the parser: it must never
// panic, every accepted graph must validate (acyclic, duplicate-free,
// mode-consistent), survive scheduling, and round-trip through Format.
func FuzzParse(f *testing.F) {
	f.Add(Pipeline(16, 12, 6, 4).Format())
	f.Add("stage a iters=1\nstage b iters=1\nedge a b\nedge b a\n")
	f.Add("stage a iters=1\nstage b iters=1\nedge a b\nedge a b\n")
	f.Add("stage a iters=1\nedge a a\n")
	f.Add("dataset ghost x mode=read dims=4 etype=1 pat=B loc=localdisk\n")
	f.Add("stage a iters=1\ndataset a x mode=create dims=4x4 etype=4 pat=BB loc=remotetape freq=2 procs=8\n")
	f.Add("# comment only\n\n\n")
	f.Add("stage \x00 iters=1\n")
	f.Fuzz(func(t *testing.T, text string) {
		g, err := Parse(text)
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("Parse accepted an invalid DAG: %v\n%s", err, text)
		}
		order, err := g.TopoOrder()
		if err != nil {
			t.Fatalf("accepted DAG has no topological order: %v", err)
		}
		dur := make(map[string]time.Duration, len(order))
		for _, name := range order {
			dur[name] = time.Second
		}
		if _, err := g.Compose(dur, 0.5); err != nil {
			t.Fatalf("accepted DAG does not compose: %v", err)
		}
		if _, err := Parse(g.Format()); err != nil {
			t.Fatalf("Format does not round-trip: %v\n%s", err, g.Format())
		}
	})
}
