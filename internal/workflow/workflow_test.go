package workflow

import (
	"strings"
	"testing"
	"time"

	"repro/internal/localdisk"
	"repro/internal/memfs"
	"repro/internal/metadb"
	"repro/internal/model"
	"repro/internal/predict"
	"repro/internal/ptool"
	"repro/internal/remotedisk"
	"repro/internal/tape"
	"repro/internal/vtime"
)

// measuredDB builds a performance database by running PTool against all
// three resource classes.
func measuredDB(t *testing.T) *predict.DB {
	t.Helper()
	meta := metadb.New()
	local, err := localdisk.New("ssa", memfs.New())
	if err != nil {
		t.Fatal(err)
	}
	rdisk, err := remotedisk.New("sdsc-disk", memfs.New())
	if err != nil {
		t.Fatal(err)
	}
	rtape, err := tape.New(tape.Config{Name: "hpss", Params: model.RemoteTape2000(), Store: memfs.New()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ptool.MeasureAll(vtime.NewVirtual(), meta, ptool.Config{Repeats: 1}, local, rdisk, rtape); err != nil {
		t.Fatal(err)
	}
	return predict.NewDB(meta)
}

func ds(name, amode string, dims []int, etype int, pat, loc string) predict.DatasetReq {
	return predict.DatasetReq{Name: name, AMode: amode, Dims: dims, Etype: etype,
		Pattern: pat, Location: loc, Frequency: 1, Procs: 1}
}

func TestDAGConstruction(t *testing.T) {
	g := New()
	if err := g.AddStage(Stage{Name: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddStage(Stage{Name: "a"}); err == nil {
		t.Fatal("duplicate stage accepted")
	}
	if err := g.AddStage(Stage{Name: ""}); err == nil {
		t.Fatal("unnamed stage accepted")
	}
	if err := g.AddEdge("a", "a"); err == nil {
		t.Fatal("self loop accepted")
	}
	if err := g.AddEdge("a", "nope"); err == nil {
		t.Fatal("edge to unknown stage accepted")
	}
	if err := g.AddStage(Stage{Name: "b"}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge("a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge("a", "b"); err == nil {
		t.Fatal("duplicate edge accepted")
	}
}

func TestValidateCycleAndModes(t *testing.T) {
	g := New()
	d := []int{4}
	mustStage := func(s Stage) {
		t.Helper()
		if err := g.AddStage(s); err != nil {
			t.Fatal(err)
		}
	}
	mustStage(Stage{Name: "a", Datasets: []predict.DatasetReq{ds("x", "create", d, 1, "B", "localdisk")}})
	mustStage(Stage{Name: "b", Datasets: []predict.DatasetReq{
		ds("x", "read", d, 1, "B", "localdisk"), ds("y", "create", d, 1, "B", "localdisk")}})
	if err := g.AddEdge("a", "b", "x"); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("valid DAG rejected: %v", err)
	}
	if err := g.AddEdge("b", "a", "y"); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("cycle not rejected: %v", err)
	}

	// Consumer opens the edge dataset for write: rejected.
	g2 := New()
	if err := g2.AddStage(Stage{Name: "a", Datasets: []predict.DatasetReq{ds("x", "create", d, 1, "B", "localdisk")}}); err != nil {
		t.Fatal(err)
	}
	if err := g2.AddStage(Stage{Name: "b", Datasets: []predict.DatasetReq{ds("x", "create", d, 1, "B", "localdisk")}}); err != nil {
		t.Fatal(err)
	}
	if err := g2.AddEdge("a", "b", "x"); err != nil {
		t.Fatal(err)
	}
	if err := g2.Validate(); err == nil || !strings.Contains(err.Error(), "not read") {
		t.Fatalf("consumer write mode not rejected: %v", err)
	}

	// Geometry mismatch between ends.
	g3 := New()
	if err := g3.AddStage(Stage{Name: "a", Datasets: []predict.DatasetReq{ds("x", "create", []int{8}, 1, "B", "localdisk")}}); err != nil {
		t.Fatal(err)
	}
	if err := g3.AddStage(Stage{Name: "b", Datasets: []predict.DatasetReq{ds("x", "read", []int{4}, 1, "B", "localdisk")}}); err != nil {
		t.Fatal(err)
	}
	if err := g3.AddEdge("a", "b", "x"); err != nil {
		t.Fatal(err)
	}
	if err := g3.Validate(); err == nil || !strings.Contains(err.Error(), "geometry") {
		t.Fatalf("geometry mismatch not rejected: %v", err)
	}

	// Unknown access mode anywhere in the graph.
	g4 := New()
	if err := g4.AddStage(Stage{Name: "a", Datasets: []predict.DatasetReq{ds("x", "append", []int{4}, 1, "B", "localdisk")}}); err != nil {
		t.Fatal(err)
	}
	if err := g4.Validate(); err == nil || !strings.Contains(err.Error(), "access mode") {
		t.Fatalf("unknown mode not rejected: %v", err)
	}
}

// diamond is A → {B, C} → D with fixed durations.
func diamond(t *testing.T) (*DAG, map[string]time.Duration) {
	t.Helper()
	g := New()
	for _, name := range []string{"A", "B", "C", "D"} {
		if err := g.AddStage(Stage{Name: name}); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range [][2]string{{"A", "B"}, {"A", "C"}, {"B", "D"}, {"C", "D"}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return g, map[string]time.Duration{
		"A": 10 * time.Second, "B": 4 * time.Second,
		"C": 2 * time.Second, "D": 6 * time.Second,
	}
}

func TestComposeOverlap(t *testing.T) {
	g, dur := diamond(t)
	cases := []struct {
		overlap  float64
		makespan time.Duration
		critical string
	}{
		{0, 20 * time.Second, "A -> B -> D"},
		{0.5, 13 * time.Second, "A -> B -> D"},
		{1, 10 * time.Second, "A"},
	}
	for _, c := range cases {
		res, err := g.Compose(dur, c.overlap)
		if err != nil {
			t.Fatal(err)
		}
		if res.Makespan != c.makespan {
			t.Errorf("overlap %v: makespan = %v, want %v", c.overlap, res.Makespan, c.makespan)
		}
		if got := strings.Join(res.CriticalPath, " -> "); got != c.critical {
			t.Errorf("overlap %v: critical path = %q, want %q", c.overlap, got, c.critical)
		}
	}
	// Start-time recurrence at overlap 0.5: B and C start at 5 s, D at 7 s.
	res, err := g.Compose(dur, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	starts := map[string]time.Duration{}
	for _, s := range res.Stages {
		starts[s.Name] = s.Start
	}
	if starts["B"] != 5*time.Second || starts["C"] != 5*time.Second || starts["D"] != 7*time.Second {
		t.Fatalf("starts = %v", starts)
	}
	if _, err := g.Compose(dur, -0.1); err == nil {
		t.Fatal("negative overlap accepted")
	}
	if _, err := g.Compose(dur, 1.1); err == nil {
		t.Fatal("overlap > 1 accepted")
	}
	delete(dur, "C")
	if _, err := g.Compose(dur, 0); err == nil {
		t.Fatal("missing duration accepted")
	}
}

func TestPredictMakespanPipeline(t *testing.T) {
	pdb := measuredDB(t)
	g := Pipeline(16, 12, 6, 4)
	prev := time.Duration(-1)
	for _, overlap := range []float64{1, 0.5, 0} {
		pred, err := g.PredictMakespan(pdb, overlap)
		if err != nil {
			t.Fatal(err)
		}
		if pred.Makespan <= prev {
			t.Fatalf("makespan must grow as overlap shrinks: %v (overlap %v) after %v", pred.Makespan, overlap, prev)
		}
		prev = pred.Makespan
		if len(pred.CriticalPath) == 0 {
			t.Fatal("no critical path")
		}
		if len(pred.Runs) != 4 {
			t.Fatalf("runs = %d", len(pred.Runs))
		}
	}
	// Serial composition sums every stage duration.
	pred, err := g.PredictMakespan(pdb, 0)
	if err != nil {
		t.Fatal(err)
	}
	var sum time.Duration
	onPath := map[string]bool{}
	for _, name := range pred.CriticalPath {
		onPath[name] = true
	}
	for _, s := range pred.Stages {
		if s.Duration <= 0 {
			t.Fatalf("stage %s predicted %v", s.Name, s.Duration)
		}
		if onPath[s.Name] {
			sum += s.Duration
		}
	}
	if sum != pred.Makespan {
		t.Fatalf("overlap-0 critical path sums to %v, makespan %v", sum, pred.Makespan)
	}
	if s := pred.TableString(); !strings.Contains(s, "makespan") {
		t.Fatalf("table: %s", s)
	}
}

func TestProvisionPipeline(t *testing.T) {
	pdb := measuredDB(t)
	g := Pipeline(16, 12, 6, 4)
	tiers := []Tier{{Class: "localdisk", Free: 1 << 30}, {Class: "remotedisk", Free: 1 << 30}}
	plan, err := g.Provision(pdb, "localdisk", tiers)
	if err != nil {
		t.Fatal(err)
	}
	// temp is read by two stages from the tapes: staged, prefetched
	// before MSE (its topologically first reader).
	sd, ok := plan.StagedFor("astro3d", "temp")
	if !ok {
		t.Fatalf("temp not staged; plan:\n%s", plan.PlanString())
	}
	if sd.Readers != 2 || sd.FirstConsumer != "mse" {
		t.Fatalf("temp staged as %+v", sd)
	}
	wantInstance := int64(16 * 16 * 16 * 4)
	wantDumps := 12/6 + 1
	if sd.InstanceBytes != wantInstance || sd.Dumps != wantDumps {
		t.Fatalf("temp working set %+v", sd)
	}
	if plan.CacheBudget < sd.WorkingSet {
		t.Fatalf("cache budget %d below temp working set %d", plan.CacheBudget, sd.WorkingSet)
	}
	if plan.ExpectedReads != 2 {
		t.Fatalf("expected reads = %d", plan.ExpectedReads)
	}
	items := plan.ItemsFor("mse")
	if len(items) != wantDumps {
		t.Fatalf("prefetch items = %d, want %d", len(items), wantDumps)
	}
	if plan.PrefetchP95 <= 0 {
		t.Fatal("no prefetch p95")
	}
	// Single-reader intermediates move off the archive to the
	// lifetime-optimal tier.
	if ip, ok := plan.Placed("volren", "image"); !ok || ip.From != "remotetape" {
		t.Fatalf("image not placed: %+v (ok=%v)", ip, ok)
	} else if ip.Cost >= ip.DefaultCost {
		t.Fatalf("placement did not improve lifetime cost: %+v", ip)
	}
	if _, ok := plan.Placed("astro3d", "vr_temp"); !ok {
		t.Fatal("vr_temp (single reader) not placed")
	}
	// temp has two readers: never treated as a stage-private
	// intermediate.
	if _, ok := plan.Placed("astro3d", "temp"); ok {
		t.Fatal("shared dataset temp placed as an intermediate")
	}

	// The provisioned schedule beats the unprovisioned one end to end.
	for _, overlap := range []float64{0, 0.5, 1} {
		base, err := g.PredictMakespan(pdb, overlap)
		if err != nil {
			t.Fatal(err)
		}
		prov, err := g.PredictMakespanProvisioned(pdb, plan, overlap)
		if err != nil {
			t.Fatal(err)
		}
		if prov.Makespan >= base.Makespan {
			t.Fatalf("overlap %v: provisioned %v not below unprovisioned %v",
				overlap, prov.Makespan, base.Makespan)
		}
	}
}

func TestProvisionNoTiers(t *testing.T) {
	pdb := measuredDB(t)
	g := Pipeline(16, 12, 6, 4)
	plan, err := g.Provision(pdb, "localdisk", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Intermediates) != 0 {
		t.Fatalf("placements without tiers: %+v", plan.Intermediates)
	}
	if _, ok := plan.StagedFor("astro3d", "temp"); !ok {
		t.Fatal("staging must not require placement tiers")
	}
}

func TestParseRoundTrip(t *testing.T) {
	g := Pipeline(16, 12, 6, 4)
	text := g.Format()
	g2, err := Parse(text)
	if err != nil {
		t.Fatalf("round trip: %v\n%s", err, text)
	}
	if g2.Format() != text {
		t.Fatalf("round trip drifted:\n%s\nvs\n%s", g2.Format(), text)
	}
	if len(g2.Stages()) != 4 || len(g2.Edges()) != 4 {
		t.Fatalf("round trip lost structure: %d stages, %d edges", len(g2.Stages()), len(g2.Edges()))
	}
}

func TestParseRejects(t *testing.T) {
	cases := map[string]string{
		"cycle":               "stage a iters=1\nstage b iters=1\nedge a b\nedge b a",
		"dup edge":            "stage a iters=1\nstage b iters=1\nedge a b\nedge a b",
		"self loop":           "stage a iters=1\nedge a a",
		"unknown stage":       "stage a iters=1\nedge a b",
		"unknown directive":   "stages a",
		"bad iters":           "stage a iters=zz",
		"huge dim":            "stage a iters=1\ndataset a x mode=read dims=99999 etype=1 pat=B loc=localdisk",
		"bad mode":            "stage a iters=1\ndataset a x mode=append dims=4 etype=1 pat=B loc=localdisk",
		"pattern mismatch":    "stage a iters=1\ndataset a x mode=read dims=4x4 etype=1 pat=B loc=localdisk",
		"dup dataset":         "stage a iters=1\ndataset a x mode=read dims=4 etype=1 pat=B loc=localdisk\ndataset a x mode=read dims=4 etype=1 pat=B loc=localdisk",
		"edge ds not written": "stage a iters=1\nstage b iters=1\ndataset a x mode=read dims=4 etype=1 pat=B loc=localdisk\ndataset b x mode=read dims=4 etype=1 pat=B loc=localdisk\nedge a b x",
	}
	for name, text := range cases {
		if _, err := Parse(text); err == nil {
			t.Errorf("%s: accepted:\n%s", name, text)
		}
	}
	// Comments and blank lines are fine.
	ok := "# a tiny chain\nstage a iters=6\n\ndataset a x mode=create dims=4 etype=1 pat=B loc=localdisk # trailing\nstage b iters=6\ndataset b x mode=read dims=4 etype=1 pat=B loc=localdisk\nedge a b x\n"
	g, err := Parse(ok)
	if err != nil {
		t.Fatalf("commented input rejected: %v", err)
	}
	if len(g.Stages()) != 2 {
		t.Fatalf("stages = %d", len(g.Stages()))
	}
}
