package workflow

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/hsm"
	"repro/internal/predict"
)

// Tier is one candidate storage class for provisioning, with the bytes
// the provisioner may claim on it.
type Tier struct {
	Class string
	Free  int64
}

// StagedDataset is one edge dataset the plan routes through the stage
// cache.
type StagedDataset struct {
	Producer, Dataset string
	// Home is the effective class the data is staged from (after any
	// intermediate placement).
	Home string
	// FirstConsumer is the topologically first reading stage; prefetch
	// is issued before it starts.
	FirstConsumer string
	Readers       int
	InstanceBytes int64
	Dumps         int
	WorkingSet    int64 // Dumps × InstanceBytes
	// CopyPerDump is the predicted whole-file stage-in time of one
	// instance (home read + cache write).
	CopyPerDump time.Duration
	// ConnSetup is the predicted session-setup cost of the staging
	// pipeline (home read connection + cache write connection), paid
	// once by the first copy wave.
	ConnSetup time.Duration
	// XferPerDump is the device-occupancy portion of one stage-in copy
	// — the size-dependent transfer term that concurrent copies
	// serialize on the home device (a tape cartridge lives in one
	// drive at a time), while the per-call constants overlap.
	XferPerDump time.Duration
}

// PrefetchItem is one instance to stage in before a consumer starts.
type PrefetchItem struct {
	Consumer string // stage the hint is issued for
	Producer string
	Dataset  string
	Iter     int
	Bytes    int64
	Copy     time.Duration
}

// StageBudget sizes one consumer stage's cache budget from its
// predicted working set.
type StageBudget struct {
	Stage      string
	WorkingSet int64
	Datasets   []string
}

// IntermediatePlacement relocates a stage-private dataset — one that
// only lives between two stages — from its declared steady-state
// location to the tier that minimizes eq. (1) cost over its remaining
// lifetime (one write pass plus one read pass, not archival residency).
type IntermediatePlacement struct {
	Dataset  string
	Producer string
	Consumer string
	From, To string
	Bytes    int64 // lifetime footprint: dumps × instance bytes
	// Cost/DefaultCost are the predicted lifetime I/O times on To and
	// on the declared location.
	Cost, DefaultCost time.Duration
}

// Plan is a provisioning decision for one DAG.
type Plan struct {
	CacheClass string
	// CacheBudget is the union working set of every staged dataset —
	// the byte budget a shared stage.Manager needs so the plan's hits
	// never thrash.
	CacheBudget int64
	// ExpectedReads is the largest per-instance read count the plan
	// anticipates, for stage.Config.ExpectedReads.
	ExpectedReads int

	Staged        []StagedDataset
	Budgets       []StageBudget
	Prefetch      []PrefetchItem
	Intermediates []IntermediatePlacement

	// PrefetchP95 is the 95th-percentile predicted per-instance
	// stage-in time across the prefetch schedule (hsm.Percentile).
	PrefetchP95 time.Duration
}

// Placed returns the placement for a (producer, dataset) pair, if any.
func (pl *Plan) Placed(producer, dataset string) (IntermediatePlacement, bool) {
	for _, ip := range pl.Intermediates {
		if ip.Producer == producer && ip.Dataset == dataset {
			return ip, true
		}
	}
	return IntermediatePlacement{}, false
}

// StagedFor returns the staged dataset entry, if any.
func (pl *Plan) StagedFor(producer, dataset string) (StagedDataset, bool) {
	for _, sd := range pl.Staged {
		if sd.Producer == producer && sd.Dataset == dataset {
			return sd, true
		}
	}
	return StagedDataset{}, false
}

// ItemsFor returns the prefetch items to issue before the stage starts.
func (pl *Plan) ItemsFor(stage string) []PrefetchItem {
	var out []PrefetchItem
	for _, it := range pl.Prefetch {
		if it.Consumer == stage {
			out = append(out, it)
		}
	}
	return out
}

// Provision derives a plan from the DAG and the calibrated predictor:
//
//  1. Stage-private intermediates (datasets on exactly one edge) are
//     placed on the tier minimizing predicted write+read cost over
//     their lifetime, capacity permitting.
//  2. Each remaining edge dataset is staged through the cache tier when
//     eq. (1) holds across its readers: the summed per-dump read
//     savings must exceed the per-dump stage-in copy.
//  3. Staged datasets become per-stage budgets (predicted working
//     sets) and a prefetch schedule issued before their first consumer.
func (g *DAG) Provision(pdb *predict.DB, cacheClass string, tiers []Tier) (*Plan, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if pdb == nil {
		return nil, fmt.Errorf("workflow: provisioning needs a predictor")
	}
	if strings.TrimSpace(cacheClass) == "" {
		return nil, fmt.Errorf("workflow: provisioning needs a cache class")
	}
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	topoPos := make(map[string]int, len(order))
	for i, name := range order {
		topoPos[name] = i
	}
	plan := &Plan{CacheClass: cacheClass, ExpectedReads: 1}

	// Edges carrying each (producer, dataset) pair, consumers sorted by
	// topological position.
	type flow struct {
		producer, dataset string
		consumers         []string
	}
	var flows []flow
	flowIdx := make(map[string]int)
	for _, e := range g.edges {
		for _, name := range e.Datasets {
			key := e.From + "/" + name
			i, ok := flowIdx[key]
			if !ok {
				i = len(flows)
				flowIdx[key] = i
				flows = append(flows, flow{producer: e.From, dataset: name})
			}
			flows[i].consumers = append(flows[i].consumers, e.To)
		}
	}
	for i := range flows {
		cs := flows[i].consumers
		for a := 1; a < len(cs); a++ {
			for b := a; b > 0 && topoPos[cs[b]] < topoPos[cs[b-1]]; b-- {
				cs[b], cs[b-1] = cs[b-1], cs[b]
			}
		}
	}

	free := make(map[string]int64, len(tiers))
	tierOrder := make([]string, 0, len(tiers))
	for _, t := range tiers {
		if _, dup := free[t.Class]; !dup {
			tierOrder = append(tierOrder, t.Class)
		}
		free[t.Class] += t.Free
	}

	// 1. Lifetime-aware placement for stage-private intermediates.
	lifetimeCost := func(wd, rd predict.DatasetReq, prodIters, consIters int, class string) (time.Duration, error) {
		w := wd
		w.Location = class
		r := rd
		r.Location = class
		wp, err := pdb.PredictDataset(w, prodIters)
		if err != nil {
			return 0, err
		}
		rp, err := pdb.PredictDataset(r, consIters)
		if err != nil {
			return 0, err
		}
		return wp.VirtualTime + rp.VirtualTime, nil
	}
	for _, f := range flows {
		if len(f.consumers) != 1 {
			continue // lives beyond a single stage pair
		}
		prod, _ := g.Stage(f.producer)
		cons, _ := g.Stage(f.consumers[0])
		wd, _ := stageDataset(prod, f.dataset)
		rd, _ := stageDataset(cons, f.dataset)
		footprint := int64(dumps(wd, prod.Iterations)) * instanceBytes(wd)
		def, err := lifetimeCost(wd, rd, prod.Iterations, cons.Iterations, wd.Location)
		if err != nil {
			return nil, err
		}
		best, bestCost := "", def
		for _, class := range tierOrder {
			if class == wd.Location || free[class] < footprint {
				continue
			}
			c, err := lifetimeCost(wd, rd, prod.Iterations, cons.Iterations, class)
			if err != nil {
				return nil, err
			}
			if c < bestCost {
				best, bestCost = class, c
			}
		}
		if best == "" {
			continue
		}
		free[best] -= footprint
		plan.Intermediates = append(plan.Intermediates, IntermediatePlacement{
			Dataset: f.dataset, Producer: f.producer, Consumer: f.consumers[0],
			From: wd.Location, To: best, Bytes: footprint,
			Cost: bestCost, DefaultCost: def,
		})
	}

	// 2. Eq. (1) staging decision per remaining flow, against the
	// effective (post-placement) home.
	budgets := make(map[string]*StageBudget)
	var copies []time.Duration
	for _, f := range flows {
		prod, _ := g.Stage(f.producer)
		wd, _ := stageDataset(prod, f.dataset)
		home := wd.Location
		if ip, ok := plan.Placed(f.producer, f.dataset); ok {
			home = ip.To
		}
		if strings.EqualFold(home, cacheClass) || disabled(wd) {
			continue
		}
		size := instanceBytes(wd)
		tGet, err := pdb.WholeFile(home, "read", size)
		if err != nil {
			return nil, err
		}
		tPut, err := pdb.WholeFile(cacheClass, "write", size)
		if err != nil {
			return nil, err
		}
		tCopy := tGet + tPut
		// Device-occupancy estimate: the size-dependent part of one
		// native read on home (Unit is per-call constants plus the
		// bandwidth term; subtracting a 1-byte call isolates the
		// latter).
		uFull, err := pdb.Unit(home, "read", size)
		if err != nil {
			return nil, err
		}
		uOne, err := pdb.Unit(home, "read", 1)
		if err != nil {
			return nil, err
		}
		tXfer := uFull - uOne
		if tXfer < 0 {
			tXfer = 0
		}
		var benefit float64
		for _, c := range f.consumers {
			cons, _ := g.Stage(c)
			rd, _ := stageDataset(cons, f.dataset)
			homeReq := rd
			homeReq.Location = home
			cacheReq := rd
			cacheReq.Location = cacheClass
			hp, err := pdb.PredictDataset(homeReq, 0) // one dump
			if err != nil {
				return nil, err
			}
			cp, err := pdb.PredictDataset(cacheReq, 0)
			if err != nil {
				return nil, err
			}
			benefit += (hp.VirtualTime - cp.VirtualTime).Seconds()
		}
		if benefit <= tCopy {
			continue
		}
		nd := dumps(wd, prod.Iterations)
		sd := StagedDataset{
			Producer: f.producer, Dataset: f.dataset, Home: home,
			FirstConsumer: f.consumers[0], Readers: len(f.consumers),
			InstanceBytes: size, Dumps: nd, WorkingSet: int64(nd) * size,
			CopyPerDump: time.Duration(tCopy * float64(time.Second)),
			ConnSetup: time.Duration((pdb.ConnCost(home, "read") +
				pdb.ConnCost(cacheClass, "write")) * float64(time.Second)),
			XferPerDump: time.Duration(tXfer * float64(time.Second)),
		}
		plan.Staged = append(plan.Staged, sd)
		plan.CacheBudget += sd.WorkingSet
		if sd.Readers > plan.ExpectedReads {
			plan.ExpectedReads = sd.Readers
		}
		freq := wd.Frequency
		if freq <= 0 {
			freq = 1
		}
		for iter := 0; iter <= prod.Iterations; iter += freq {
			plan.Prefetch = append(plan.Prefetch, PrefetchItem{
				Consumer: sd.FirstConsumer, Producer: f.producer, Dataset: f.dataset,
				Iter: iter, Bytes: size, Copy: sd.CopyPerDump,
			})
			copies = append(copies, sd.CopyPerDump)
		}
		for _, c := range f.consumers {
			b := budgets[c]
			if b == nil {
				b = &StageBudget{Stage: c}
				budgets[c] = b
			}
			b.WorkingSet += sd.WorkingSet
			b.Datasets = append(b.Datasets, f.dataset)
		}
	}
	for _, name := range order {
		if b := budgets[name]; b != nil {
			plan.Budgets = append(plan.Budgets, *b)
		}
	}
	plan.PrefetchP95 = hsm.Percentile(copies, 95)
	return plan, nil
}

// PredictMakespanProvisioned prices every stage under the plan — staged
// reads at cache speed plus the stage-in copies charged to the first
// consumer, placed intermediates at their lifetime-optimal tier — and
// composes the schedule at the given overlap.  Comparable with
// PredictMakespan of the unprovisioned DAG.
func (g *DAG) PredictMakespanProvisioned(pdb *predict.DB, plan *Plan, overlap float64) (Prediction, error) {
	if plan == nil {
		return Prediction{}, fmt.Errorf("workflow: nil plan")
	}
	if err := g.Validate(); err != nil {
		return Prediction{}, err
	}
	order, err := g.TopoOrder()
	if err != nil {
		return Prediction{}, err
	}
	// producerOf maps dataset name → producing stage along each edge
	// into a given consumer.
	producerOf := func(consumer, dataset string) (string, bool) {
		for _, e := range g.edges {
			if e.To != consumer {
				continue
			}
			for _, n := range e.Datasets {
				if n == dataset {
					return e.From, true
				}
			}
		}
		return "", false
	}
	dur := make(map[string]time.Duration, len(order))
	runs := make(map[string]predict.RunPrediction, len(order))
	for _, name := range order {
		s, _ := g.Stage(name)
		reqs := make([]predict.DatasetReq, 0, len(s.Datasets))
		var extra time.Duration
		for _, d := range s.Datasets {
			req := d
			if disabled(d) {
				reqs = append(reqs, req)
				continue
			}
			op, err := predict.NormalizeAMode(d.AMode)
			if err != nil {
				return Prediction{}, fmt.Errorf("workflow: stage %q dataset %q: %w", name, d.Name, err)
			}
			if op == "write" {
				if ip, ok := plan.Placed(name, d.Name); ok {
					req.Location = ip.To
				}
			} else if prod, ok := producerOf(name, d.Name); ok {
				if sd, staged := plan.StagedFor(prod, d.Name); staged {
					req.Location = plan.CacheClass
					if sd.FirstConsumer == name {
						// Prefetch hints for every dump are issued
						// together when the consumer starts and run on
						// parallel prefetch ranks, so the per-call
						// constants of the copies overlap — but their
						// transfer terms still serialize on the home
						// device (one cartridge, one drive).  The last
						// copy of the wave therefore lands after one
						// full copy latency, the session setup, and
						// the remaining dumps' device occupancy.
						extra += sd.ConnSetup + sd.CopyPerDump +
							time.Duration(sd.Dumps-1)*sd.XferPerDump
					}
				} else if ip, placed := plan.Placed(prod, d.Name); placed {
					req.Location = ip.To
				}
			}
			reqs = append(reqs, req)
		}
		rp, err := pdb.Predict(predict.RunReq{Iterations: s.Iterations, Datasets: reqs})
		if err != nil {
			return Prediction{}, fmt.Errorf("workflow: stage %q: %w", name, err)
		}
		dur[name] = rp.Total + extra
		runs[name] = rp
	}
	ms, err := g.Compose(dur, overlap)
	if err != nil {
		return Prediction{}, err
	}
	return Prediction{MakespanResult: ms, Runs: runs}, nil
}

// PlanString renders the plan for the CLI.
func (pl *Plan) PlanString() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cache %s: budget %d B, expected reads %d, prefetch items %d (p95 copy %.3f s)\n",
		pl.CacheClass, pl.CacheBudget, pl.ExpectedReads, len(pl.Prefetch), pl.PrefetchP95.Seconds())
	for _, sd := range pl.Staged {
		fmt.Fprintf(&b, "  stage-in %s/%s from %s before %q: %d dumps x %d B (%d readers)\n",
			sd.Producer, sd.Dataset, sd.Home, sd.FirstConsumer, sd.Dumps, sd.InstanceBytes, sd.Readers)
	}
	for _, bd := range pl.Budgets {
		fmt.Fprintf(&b, "  budget %-10s %d B (%s)\n", bd.Stage, bd.WorkingSet, strings.Join(bd.Datasets, ", "))
	}
	for _, ip := range pl.Intermediates {
		fmt.Fprintf(&b, "  place %s/%s on %s instead of %s (lifetime %.3f s vs %.3f s, %d B)\n",
			ip.Producer, ip.Dataset, ip.To, ip.From, ip.Cost.Seconds(), ip.DefaultCost.Seconds(), ip.Bytes)
	}
	return b.String()
}
