package workflow

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/ioopt"
	"repro/internal/predict"
)

// Parse limits — hostile inputs must not allocate unboundedly.
const (
	maxStages           = 1024
	maxEdges            = 4096
	maxDatasetsPerStage = 256
	maxDims             = 4
	maxDim              = 1 << 12
	maxIters            = 1 << 20
	maxProcs            = 1 << 12
)

// Parse reads a workflow DAG from its text form and validates it.
//
// The format is line-oriented; '#' starts a comment:
//
//	stage <name> iters=<n>
//	dataset <stage> <name> mode=<amode> dims=<d1>x<d2>[x<d3>...] etype=<n> pat=<pattern> loc=<class> [freq=<n>] [procs=<n>] [opt=<kind>]
//	edge <from> <to> [<dataset> ...]
//
// Stages must be declared before datasets or edges reference them.
// Cycles, duplicate edges, self-loops and producer/consumer mode
// mismatches are rejected by Validate.
func Parse(text string) (*DAG, error) {
	g := New()
	lineNo := 0
	for _, raw := range strings.Split(text, "\n") {
		lineNo++
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "stage":
			if len(g.stages) >= maxStages {
				return nil, fmt.Errorf("workflow: line %d: too many stages", lineNo)
			}
			if len(fields) < 2 {
				return nil, fmt.Errorf("workflow: line %d: stage needs a name", lineNo)
			}
			iters, err := intKV(fields[2:], "iters", 0, maxIters, 0)
			if err != nil {
				return nil, fmt.Errorf("workflow: line %d: %w", lineNo, err)
			}
			if err := g.AddStage(Stage{Name: fields[1], Iterations: iters}); err != nil {
				return nil, fmt.Errorf("workflow: line %d: %w", lineNo, err)
			}
		case "dataset":
			if len(fields) < 3 {
				return nil, fmt.Errorf("workflow: line %d: dataset needs a stage and a name", lineNo)
			}
			i, ok := g.index[fields[1]]
			if !ok {
				return nil, fmt.Errorf("workflow: line %d: dataset for unknown stage %q", lineNo, fields[1])
			}
			if len(g.stages[i].Datasets) >= maxDatasetsPerStage {
				return nil, fmt.Errorf("workflow: line %d: too many datasets in stage %q", lineNo, fields[1])
			}
			if _, dup := stageDataset(g.stages[i], fields[2]); dup {
				return nil, fmt.Errorf("workflow: line %d: duplicate dataset %q in stage %q", lineNo, fields[2], fields[1])
			}
			d, err := parseDataset(fields[2], fields[3:])
			if err != nil {
				return nil, fmt.Errorf("workflow: line %d: %w", lineNo, err)
			}
			g.stages[i].Datasets = append(g.stages[i].Datasets, d)
		case "edge":
			if len(g.edges) >= maxEdges {
				return nil, fmt.Errorf("workflow: line %d: too many edges", lineNo)
			}
			if len(fields) < 3 {
				return nil, fmt.Errorf("workflow: line %d: edge needs a producer and a consumer", lineNo)
			}
			if err := g.AddEdge(fields[1], fields[2], fields[3:]...); err != nil {
				return nil, fmt.Errorf("workflow: line %d: %w", lineNo, err)
			}
		default:
			return nil, fmt.Errorf("workflow: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// intKV scans key=value fields for the key and parses a bounded int.
func intKV(fields []string, key string, min, max, def int) (int, error) {
	prefix := key + "="
	for _, f := range fields {
		if !strings.HasPrefix(f, prefix) {
			continue
		}
		v, err := strconv.Atoi(f[len(prefix):])
		if err != nil {
			return 0, fmt.Errorf("bad %s: %v", key, err)
		}
		if v < min || v > max {
			return 0, fmt.Errorf("%s=%d outside [%d, %d]", key, v, min, max)
		}
		return v, nil
	}
	return def, nil
}

func strKV(fields []string, key, def string) string {
	prefix := key + "="
	for _, f := range fields {
		if strings.HasPrefix(f, prefix) {
			return f[len(prefix):]
		}
	}
	return def
}

func parseDataset(name string, fields []string) (predict.DatasetReq, error) {
	d := predict.DatasetReq{Name: name}
	d.AMode = strKV(fields, "mode", "")
	if _, err := predict.NormalizeAMode(d.AMode); err != nil {
		return d, err
	}
	dimsStr := strKV(fields, "dims", "")
	if dimsStr == "" {
		return d, fmt.Errorf("dataset %q: missing dims", name)
	}
	for _, part := range strings.Split(dimsStr, "x") {
		v, err := strconv.Atoi(part)
		if err != nil {
			return d, fmt.Errorf("dataset %q: bad dims %q", name, dimsStr)
		}
		if v < 1 || v > maxDim {
			return d, fmt.Errorf("dataset %q: dim %d outside [1, %d]", name, v, maxDim)
		}
		d.Dims = append(d.Dims, v)
		if len(d.Dims) > maxDims {
			return d, fmt.Errorf("dataset %q: more than %d dims", name, maxDims)
		}
	}
	var err error
	if d.Etype, err = intKV(fields, "etype", 1, 64, 1); err != nil {
		return d, fmt.Errorf("dataset %q: %w", name, err)
	}
	d.Pattern = strKV(fields, "pat", "")
	if len(d.Pattern) != len(d.Dims) {
		return d, fmt.Errorf("dataset %q: pattern %q does not cover %d dims", name, d.Pattern, len(d.Dims))
	}
	d.Location = strKV(fields, "loc", "")
	if d.Location == "" {
		return d, fmt.Errorf("dataset %q: missing loc", name)
	}
	if d.Frequency, err = intKV(fields, "freq", 1, maxIters, 1); err != nil {
		return d, fmt.Errorf("dataset %q: %w", name, err)
	}
	if d.Procs, err = intKV(fields, "procs", 1, maxProcs, 1); err != nil {
		return d, fmt.Errorf("dataset %q: %w", name, err)
	}
	if opt := strKV(fields, "opt", ""); opt != "" {
		if d.Opt, err = ioopt.Parse(opt); err != nil {
			return d, fmt.Errorf("dataset %q: %w", name, err)
		}
	}
	return d, nil
}

// Format renders the DAG back into its text form (Parse round-trips
// it, modulo optional defaults).
func (g *DAG) Format() string {
	var b strings.Builder
	for _, s := range g.stages {
		fmt.Fprintf(&b, "stage %s iters=%d\n", s.Name, s.Iterations)
		for _, d := range s.Datasets {
			dims := make([]string, len(d.Dims))
			for i, v := range d.Dims {
				dims[i] = strconv.Itoa(v)
			}
			fmt.Fprintf(&b, "dataset %s %s mode=%s dims=%s etype=%d pat=%s loc=%s freq=%d procs=%d",
				s.Name, d.Name, d.AMode, strings.Join(dims, "x"), d.Etype, d.Pattern, d.Location, d.Frequency, d.Procs)
			if d.Opt != 0 {
				fmt.Fprintf(&b, " opt=%s", d.Opt)
			}
			b.WriteByte('\n')
		}
	}
	for _, e := range g.edges {
		fmt.Fprintf(&b, "edge %s %s %s\n", e.From, e.To, strings.Join(e.Datasets, " "))
	}
	return b.String()
}
