package core

import (
	"testing"

	"repro/internal/ioopt"
	"repro/internal/localdisk"
	"repro/internal/memfs"
	"repro/internal/metadb"
	"repro/internal/pattern"
	"repro/internal/storage"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// TestNativeCallCountsMatchEq2 verifies, via the I/O trace, that each
// run-time optimization issues exactly the native-call pattern the
// predictor's eq. (2) assumes (ioopt.Kind.Calls).
func TestNativeCallCountsMatchEq2(t *testing.T) {
	dims := []int{8, 8, 8}
	etype := 4
	pat, err := pattern.Parse("BBB")
	if err != nil {
		t.Fatal(err)
	}
	const procs = 8

	for _, opt := range []ioopt.Kind{ioopt.Collective, ioopt.Naive, ioopt.Subfile} {
		rec := trace.New(0)
		be, err := localdisk.New("traced", memfs.New(), localdisk.WithTrace(rec))
		if err != nil {
			t.Fatal(err)
		}
		sys, err := NewSystem(SystemConfig{
			Sim: vtime.NewVirtual(), Meta: metadb.New(), LocalDisk: be,
		})
		if err != nil {
			t.Fatal(err)
		}
		run, err := sys.Initialize(RunConfig{ID: "r", Iterations: 1, Procs: procs})
		if err != nil {
			t.Fatal(err)
		}
		d, err := run.OpenDataset(DatasetSpec{
			Name: "x", AMode: storage.ModeCreate, Dims: dims, Etype: etype,
			Pattern: pat, Location: LocLocalDisk, Opt: opt,
		})
		if err != nil {
			t.Fatal(err)
		}
		bufs := make([][]byte, procs)
		for r := range bufs {
			n, err := d.LocalSize(r)
			if err != nil {
				t.Fatal(err)
			}
			bufs[r] = make([]byte, n)
		}
		rec.Reset() // drop metadata-era events
		if err := d.WriteIter(0, bufs); err != nil {
			t.Fatalf("%v: %v", opt, err)
		}
		grid := d.Grid()
		wantCalls, _, err := opt.Calls(dims, etype, pat, grid)
		if err != nil {
			t.Fatal(err)
		}
		gotCalls := rec.Count("traced", trace.OpWrite)
		// Eq. (2) counts collective as one logical call; physically each
		// of the P ranks writes its contiguous domain, so the trace shows
		// P calls whose units sum to the dataset.  Subfile and Naive map
		// one to one.
		if opt == ioopt.Collective {
			wantCalls = procs
		}
		if opt == ioopt.Subfile {
			wantCalls++ // the geometry meta file
		}
		if gotCalls != wantCalls {
			t.Errorf("%v: traced %d native writes, eq.(2) accounting expects %d", opt, gotCalls, wantCalls)
		}
		// Every optimization moves exactly the dataset's bytes (subfile
		// adds its small meta file).
		var bytes int64
		for _, e := range rec.Events() {
			if e.Op == trace.OpWrite {
				bytes += e.Bytes
			}
		}
		want := pattern.TotalBytes(dims, etype)
		slack := int64(0)
		if opt == ioopt.Subfile {
			slack = 256 // geometry meta file
		}
		if bytes < want || bytes > want+slack {
			t.Errorf("%v: traced %d bytes written, want %d (+%d)", opt, bytes, want, slack)
		}
	}
}

// TestNaiveTraceShowsManySmallCalls pins the contrast the paper draws:
// naive I/O issues hundreds of tiny calls where collective issues a
// handful of large ones.
func TestNaiveTraceShowsManySmallCalls(t *testing.T) {
	count := func(opt ioopt.Kind) (calls int, maxBytes int64) {
		rec := trace.New(0)
		be, err := localdisk.New("traced", memfs.New(), localdisk.WithTrace(rec))
		if err != nil {
			t.Fatal(err)
		}
		sys, _ := NewSystem(SystemConfig{Sim: vtime.NewVirtual(), Meta: metadb.New(), LocalDisk: be})
		run, _ := sys.Initialize(RunConfig{ID: "r", Iterations: 1, Procs: 4})
		pat, _ := pattern.Parse("**B")
		d, err := run.OpenDataset(DatasetSpec{
			Name: "x", AMode: storage.ModeCreate, Dims: []int{8, 8, 8}, Etype: 4,
			Pattern: pat, Location: LocLocalDisk, Opt: opt,
		})
		if err != nil {
			t.Fatal(err)
		}
		bufs := make([][]byte, 4)
		for r := range bufs {
			n, _ := d.LocalSize(r)
			bufs[r] = make([]byte, n)
		}
		rec.Reset()
		if err := d.WriteIter(0, bufs); err != nil {
			t.Fatal(err)
		}
		for _, e := range rec.Events() {
			if e.Op == trace.OpWrite {
				calls++
				if e.Bytes > maxBytes {
					maxBytes = e.Bytes
				}
			}
		}
		return calls, maxBytes
	}
	naiveCalls, naiveMax := count(ioopt.Naive)
	collCalls, collMax := count(ioopt.Collective)
	if naiveCalls < 10*collCalls {
		t.Fatalf("naive %d calls vs collective %d: contrast lost", naiveCalls, collCalls)
	}
	if naiveMax >= collMax {
		t.Fatalf("naive unit %d not smaller than collective unit %d", naiveMax, collMax)
	}
}
