package core

import (
	"bytes"
	"testing"

	"repro/internal/ioopt"
	"repro/internal/localdisk"
	"repro/internal/memfs"
	"repro/internal/metadb"
	"repro/internal/model"
	"repro/internal/pattern"
	"repro/internal/remotedisk"
	"repro/internal/stage"
	"repro/internal/storage"
	"repro/internal/tape"
	"repro/internal/vtime"
)

// stagedEnv builds the three-resource system with a staging engine
// whose cache is the local disk.
func stagedEnv(t *testing.T, budget int64, prefetchDepth int) (*env, *stage.Manager) {
	t.Helper()
	sim := vtime.NewVirtual()
	local, err := localdisk.New("argonne-ssa", memfs.New())
	if err != nil {
		t.Fatal(err)
	}
	rdisk, err := remotedisk.New("sdsc-disk", memfs.New())
	if err != nil {
		t.Fatal(err)
	}
	rtape, err := tape.New(tape.Config{Name: "sdsc-hpss", Params: model.RemoteTape2000(), Store: memfs.New()})
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := stage.New(stage.Config{Sim: sim, Cache: local, Budget: budget, PrefetchDepth: prefetchDepth})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Close)
	sys, err := NewSystem(SystemConfig{
		Sim: sim, Meta: metadb.New(),
		LocalDisk: local, RemoteDisk: rdisk, RemoteTape: rtape,
		Stager: mgr,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &env{sys: sys, sim: sim, local: local, rdisk: rdisk, rtape: rtape}, mgr
}

func TestStagedWriteDrainsToHomeTier(t *testing.T) {
	e, mgr := stagedEnv(t, 1<<20, 0)
	run, err := e.sys.Initialize(RunConfig{ID: "prod", Iterations: 2, Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	d, err := run.OpenDataset(DatasetSpec{
		Name: "temp", AMode: storage.ModeCreate,
		Dims: []int{8, 8}, Etype: 4,
		Pattern:  pattern.Pattern{pattern.Block, pattern.Block},
		Location: LocRemoteTape, Opt: ioopt.Collective,
	})
	if err != nil {
		t.Fatal(err)
	}
	for iter := 0; iter < 2; iter++ {
		if err := d.WriteIter(iter, fillBufs(t, d, byte(iter))); err != nil {
			t.Fatal(err)
		}
	}
	st := mgr.Stats()
	if st.StagedWrites != 2 {
		t.Fatalf("dumps did not land on the cache tier: %+v", st)
	}
	if err := run.Finalize(); err != nil {
		t.Fatal(err)
	}
	st = mgr.Stats()
	if st.WriteBacks != 2 {
		t.Fatalf("finalize did not drain the dumps: %+v", st)
	}
	// The home tier now holds both instances.
	p := e.sim.NewProc("check")
	sess, err := e.rtape.Connect(p)
	if err != nil {
		t.Fatal(err)
	}
	for iter := 0; iter < 2; iter++ {
		info, err := sess.Stat(p, d.InstancePath(iter))
		if err != nil {
			t.Fatalf("iter %d missing on home tier: %v", iter, err)
		}
		if info.Size != d.spec.Size() {
			t.Fatalf("iter %d drained short: %d bytes", iter, info.Size)
		}
	}
}

func TestStagedReReadHitsCache(t *testing.T) {
	e, mgr := stagedEnv(t, 1<<20, 0)

	run, err := e.sys.Initialize(RunConfig{ID: "prod", Iterations: 1, Procs: 1})
	if err != nil {
		t.Fatal(err)
	}
	d, err := run.OpenDataset(DatasetSpec{
		Name: "temp", AMode: storage.ModeCreate,
		Dims: []int{16, 16}, Etype: 4,
		Pattern:  pattern.Pattern{pattern.Block, pattern.All},
		Location: LocRemoteTape,
	})
	if err != nil {
		t.Fatal(err)
	}
	bufs := fillBufs(t, d, 7)
	if err := d.WriteIter(0, bufs); err != nil {
		t.Fatal(err)
	}
	if err := run.Finalize(); err != nil {
		t.Fatal(err)
	}

	consumer, err := e.sys.Initialize(RunConfig{ID: "viz", Iterations: 1, Procs: 1})
	if err != nil {
		t.Fatal(err)
	}
	rd, err := consumer.AttachDataset("prod", "temp")
	if err != nil {
		t.Fatal(err)
	}
	p := consumer.Procs()[0]
	first, err := rd.ReadGlobal(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	second, err := rd.ReadGlobal(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("reads disagree")
	}
	st := mgr.Stats()
	if st.Hits < 1 {
		t.Fatalf("re-read did not hit the cache: %+v", st)
	}
	if err := consumer.Finalize(); err != nil {
		t.Fatal(err)
	}
}

func TestStagedReadIterPrefetchesNext(t *testing.T) {
	e, mgr := stagedEnv(t, 1<<20, 4)

	// The producer writes directly (no staging) so the consumer's cache
	// starts cold and prefetch has work to do.
	prodSys, err := NewSystem(SystemConfig{
		Sim: e.sim, Meta: e.sys.Meta(),
		LocalDisk: e.local, RemoteDisk: e.rdisk, RemoteTape: e.rtape,
	})
	if err != nil {
		t.Fatal(err)
	}
	run, err := prodSys.Initialize(RunConfig{ID: "prod", Iterations: 3, Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	d, err := run.OpenDataset(DatasetSpec{
		Name: "temp", AMode: storage.ModeCreate,
		Dims: []int{8, 8}, Etype: 4,
		Pattern:  pattern.Pattern{pattern.Block, pattern.Block},
		Location: LocRemoteDisk,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := make([][][]byte, 3)
	for iter := 0; iter < 3; iter++ {
		want[iter] = fillBufs(t, d, byte(10*iter))
		if err := d.WriteIter(iter, want[iter]); err != nil {
			t.Fatal(err)
		}
	}
	if err := run.Finalize(); err != nil {
		t.Fatal(err)
	}

	consumer, err := e.sys.Initialize(RunConfig{ID: "ana", Iterations: 3, Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	rd, err := consumer.AttachDataset("prod", "temp")
	if err != nil {
		t.Fatal(err)
	}
	for iter := 0; iter < 3; iter++ {
		got := make([][]byte, 2)
		for r := range got {
			sz, err := rd.LocalSize(r)
			if err != nil {
				t.Fatal(err)
			}
			got[r] = make([]byte, sz)
		}
		if err := rd.ReadIter(iter, got); err != nil {
			t.Fatal(err)
		}
		for r := range got {
			if !bytes.Equal(got[r], want[iter][r]) {
				t.Fatalf("iter %d rank %d differs", iter, r)
			}
		}
		mgr.WaitPrefetch() // deterministic: let the hint land before the next read
	}
	if err := consumer.Finalize(); err != nil {
		t.Fatal(err)
	}
	st := mgr.Stats()
	if st.PrefetchIssued == 0 || st.PrefetchDone == 0 {
		t.Fatalf("no prefetch activity: %+v", st)
	}
	if st.PrefetchHits == 0 {
		t.Fatalf("prefetched instances never hit: %+v", st)
	}
}
