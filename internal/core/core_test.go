package core

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/ioopt"
	"repro/internal/localdisk"
	"repro/internal/memfs"
	"repro/internal/metadb"
	"repro/internal/model"
	"repro/internal/pattern"
	"repro/internal/remotedisk"
	"repro/internal/storage"
	"repro/internal/tape"
	"repro/internal/vtime"
)

// env is a full three-resource system over memory stores.
type env struct {
	sys   *System
	sim   *vtime.Sim
	local storage.Backend
	rdisk storage.Backend
	rtape *tape.Library
}

func newEnv(t *testing.T) *env {
	t.Helper()
	sim := vtime.NewVirtual()
	local, err := localdisk.New("argonne-ssa", memfs.New())
	if err != nil {
		t.Fatal(err)
	}
	rdisk, err := remotedisk.New("sdsc-disk", memfs.New())
	if err != nil {
		t.Fatal(err)
	}
	rtape, err := tape.New(tape.Config{Name: "sdsc-hpss", Params: model.RemoteTape2000(), Store: memfs.New()})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(SystemConfig{
		Sim:        sim,
		Meta:       metadb.New(),
		LocalDisk:  local,
		RemoteDisk: rdisk,
		RemoteTape: rtape,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &env{sys: sys, sim: sim, local: local, rdisk: rdisk, rtape: rtape}
}

func fillBufs(t *testing.T, d *Dataset, seed byte) [][]byte {
	t.Helper()
	n := len(d.run.Procs())
	bufs := make([][]byte, n)
	for r := 0; r < n; r++ {
		sz, err := d.LocalSize(r)
		if err != nil {
			t.Fatal(err)
		}
		bufs[r] = make([]byte, sz)
		for i := range bufs[r] {
			bufs[r][i] = byte(i)*3 + seed + byte(r)
		}
	}
	return bufs
}

func TestParseLocation(t *testing.T) {
	cases := map[string]Location{
		"LOCALDISK": LocLocalDisk, "localdisk": LocLocalDisk,
		"REMOTEDISK": LocRemoteDisk, "REMOTETAPE": LocRemoteTape,
		"SDSCHPSS": LocRemoteTape, "AUTO": LocAuto, "DEFAULT": LocAuto,
		"": LocAuto, "DISABLE": LocDisable,
	}
	for in, want := range cases {
		got, err := ParseLocation(in)
		if err != nil || got != want {
			t.Errorf("ParseLocation(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLocation("FLOPPY"); err == nil {
		t.Fatal("bad hint accepted")
	}
}

func TestHintPlacement(t *testing.T) {
	e := newEnv(t)
	run, err := e.sys.Initialize(RunConfig{ID: "r1", App: "astro3d", Iterations: 12, Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	specs := map[Location]string{
		LocLocalDisk:  "argonne-ssa",
		LocRemoteDisk: "sdsc-disk",
		LocRemoteTape: "sdsc-hpss",
		LocAuto:       "sdsc-hpss", // AUTO defaults to remote tapes
	}
	i := 0
	for loc, wantBackend := range specs {
		d, err := run.OpenDataset(DatasetSpec{
			Name: "ds" + loc.String(), AMode: storage.ModeCreate,
			Dims: []int{8, 8, 8}, Etype: 4, Location: loc, Frequency: 6,
		})
		if err != nil {
			t.Fatal(err)
		}
		if d.Backend().Name() != wantBackend {
			t.Errorf("%v placed on %q, want %q", loc, d.Backend().Name(), wantBackend)
		}
		i++
	}
}

func TestDisable(t *testing.T) {
	e := newEnv(t)
	run, _ := e.sys.Initialize(RunConfig{ID: "r1", Iterations: 10, Procs: 2})
	d, err := run.OpenDataset(DatasetSpec{
		Name: "unused", AMode: storage.ModeCreate,
		Dims: []int{4, 4}, Etype: 4, Location: LocDisable,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Disabled() {
		t.Fatal("dataset not disabled")
	}
	bufs := fillBufs(t, d, 0)
	before := vtime.MaxNow(run.Procs()...)
	if err := d.WriteIter(0, bufs); err != nil {
		t.Fatal(err)
	}
	if vtime.MaxNow(run.Procs()...) != before {
		t.Fatal("DISABLEd write charged time")
	}
	if run.IOTime() != 0 {
		t.Fatal("DISABLEd write accrued I/O time")
	}
	if err := d.ReadIter(0, bufs); !errors.Is(err, storage.ErrNotExist) {
		t.Fatalf("read of disabled dataset = %v", err)
	}
}

func TestWriteReadRoundTripAllBackends(t *testing.T) {
	for _, loc := range []Location{LocLocalDisk, LocRemoteDisk, LocRemoteTape} {
		e := newEnv(t)
		run, _ := e.sys.Initialize(RunConfig{ID: "r1", Iterations: 6, Procs: 4})
		d, err := run.OpenDataset(DatasetSpec{
			Name: "temp", AMode: storage.ModeCreate,
			Dims: []int{8, 8, 8}, Etype: 4, Location: loc, Frequency: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		bufs := fillBufs(t, d, 42)
		if err := d.WriteIter(0, bufs); err != nil {
			t.Fatalf("%v: %v", loc, err)
		}
		got := make([][]byte, len(bufs))
		for r := range got {
			got[r] = make([]byte, len(bufs[r]))
		}
		if err := d.ReadIter(0, got); err != nil {
			t.Fatalf("%v: %v", loc, err)
		}
		for r := range got {
			if !bytes.Equal(got[r], bufs[r]) {
				t.Fatalf("%v: rank %d round-trip mismatch", loc, r)
			}
		}
		if err := run.Finalize(); err != nil {
			t.Fatalf("%v finalize: %v", loc, err)
		}
	}
}

func TestOptimizationsRoundTripThroughAPI(t *testing.T) {
	for _, opt := range []ioopt.Kind{ioopt.Collective, ioopt.Naive, ioopt.DataSieving, ioopt.Subfile, ioopt.Superfile} {
		e := newEnv(t)
		run, _ := e.sys.Initialize(RunConfig{ID: "r1", Iterations: 4, Procs: 4})
		d, err := run.OpenDataset(DatasetSpec{
			Name: "vr_temp", AMode: storage.ModeCreate,
			Dims: []int{8, 8, 8}, Etype: 1, Location: LocLocalDisk, Opt: opt,
		})
		if err != nil {
			t.Fatalf("%v: %v", opt, err)
		}
		bufs := fillBufs(t, d, byte(opt))
		if err := d.WriteIter(0, bufs); err != nil {
			t.Fatalf("%v write: %v", opt, err)
		}
		got := make([][]byte, len(bufs))
		for r := range got {
			got[r] = make([]byte, len(bufs[r]))
		}
		if err := d.ReadIter(0, got); err != nil {
			t.Fatalf("%v read: %v", opt, err)
		}
		for r := range got {
			if !bytes.Equal(got[r], bufs[r]) {
				t.Fatalf("%v: rank %d mismatch", opt, r)
			}
		}
		if err := run.Finalize(); err != nil {
			t.Fatalf("%v finalize: %v", opt, err)
		}
	}
}

func TestReadGlobalMatchesWrites(t *testing.T) {
	e := newEnv(t)
	run, _ := e.sys.Initialize(RunConfig{ID: "r1", Iterations: 4, Procs: 4})
	d, _ := run.OpenDataset(DatasetSpec{
		Name: "temp", AMode: storage.ModeCreate,
		Dims: []int{8, 8, 8}, Etype: 4, Location: LocLocalDisk,
	})
	bufs := fillBufs(t, d, 7)
	if err := d.WriteIter(0, bufs); err != nil {
		t.Fatal(err)
	}
	reader := e.sim.NewProc("viewer")
	global, err := d.ReadGlobal(reader, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := d.assembleGlobal(bufs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(global, want) {
		t.Fatal("ReadGlobal mismatch")
	}
}

func TestCheckpointOverwritesSingleFile(t *testing.T) {
	e := newEnv(t)
	run, _ := e.sys.Initialize(RunConfig{ID: "r1", Iterations: 12, Procs: 2})
	d, _ := run.OpenDataset(DatasetSpec{
		Name: "restart_temp", AMode: storage.ModeOverWrite,
		Dims: []int{8, 8}, Etype: 4, Location: LocLocalDisk, Frequency: 6,
	})
	if d.InstancePath(0) != d.InstancePath(6) {
		t.Fatalf("checkpoint paths differ: %q vs %q", d.InstancePath(0), d.InstancePath(6))
	}
	b0 := fillBufs(t, d, 1)
	b1 := fillBufs(t, d, 99)
	if err := d.WriteIter(0, b0); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteIter(6, b1); err != nil {
		t.Fatal(err)
	}
	got := make([][]byte, 2)
	for r := range got {
		got[r] = make([]byte, len(b1[r]))
	}
	if err := d.ReadIter(6, got); err != nil {
		t.Fatal(err)
	}
	for r := range got {
		if !bytes.Equal(got[r], b1[r]) {
			t.Fatal("restart file does not hold the latest checkpoint")
		}
	}
}

// The §4.2 worked example, end to end through the API: vr-temp (2 MiB)
// to local disks and vr-press (2 MiB) to remote disks, every 6
// iterations of 120, collective I/O.  The paper predicts 180.57 s and
// measures ≈197.4 s; our measured total must land in that band.
func TestWorkedExampleIOTime(t *testing.T) {
	e := newEnv(t)
	run, _ := e.sys.Initialize(RunConfig{ID: "worked", App: "astro3d", Iterations: 120, Procs: 8})
	vrTemp, err := run.OpenDataset(DatasetSpec{
		Name: "vr_temp", AMode: storage.ModeCreate,
		Dims: []int{128, 128, 128}, Etype: 1, Location: LocLocalDisk, Frequency: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	vrPress, err := run.OpenDataset(DatasetSpec{
		Name: "vr_press", AMode: storage.ModeCreate,
		Dims: []int{128, 128, 128}, Etype: 1, Location: LocRemoteDisk, Frequency: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	bt := fillBufs(t, vrTemp, 1)
	bp := fillBufs(t, vrPress, 2)
	for i := 0; i < 120; i++ {
		if vrTemp.Due(i) {
			if err := vrTemp.WriteIter(i, bt); err != nil {
				t.Fatal(err)
			}
		}
		if vrPress.Due(i) {
			if err := vrPress.WriteIter(i, bp); err != nil {
				t.Fatal(err)
			}
		}
	}
	got := run.IOTime()
	// 21 dumps each; paper band [180, 200] s — allow ±15%.
	if got < 160*time.Second || got > 230*time.Second {
		t.Fatalf("worked-example I/O time = %v, want ≈180–200 s", got)
	}
	// Per-dataset split: local trivial, remote dominates.
	if lt := vrTemp.Stats().IOTime; lt > 15*time.Second {
		t.Fatalf("vr_temp local I/O = %v, want small", lt)
	}
	if rt := vrPress.Stats().IOTime; rt < 150*time.Second {
		t.Fatalf("vr_press remote I/O = %v, want ≈178 s", rt)
	}
}

func TestFailoverWhenTapeDown(t *testing.T) {
	e := newEnv(t)
	e.rtape.SetDown(true)
	run, _ := e.sys.Initialize(RunConfig{ID: "r1", Iterations: 6, Procs: 2})
	d, err := run.OpenDataset(DatasetSpec{
		Name: "press", AMode: storage.ModeCreate,
		Dims: []int{8, 8, 8}, Etype: 4, Location: LocAuto, Frequency: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.Backend().Kind() != storage.KindRemoteDisk {
		t.Fatalf("failover placed on %v, want remote disk", d.Backend().Kind())
	}
	bufs := fillBufs(t, d, 5)
	if err := d.WriteIter(0, bufs); err != nil {
		t.Fatalf("write after failover: %v", err)
	}
}

func TestExplicitHintFailsWhenEverythingDown(t *testing.T) {
	e := newEnv(t)
	e.rtape.SetDown(true)
	if o, ok := e.rdisk.(storage.Outage); ok {
		o.SetDown(true)
	}
	if o, ok := e.local.(storage.Outage); ok {
		o.SetDown(true)
	}
	run, _ := e.sys.Initialize(RunConfig{ID: "r1", Iterations: 6, Procs: 1})
	if _, err := run.OpenDataset(DatasetSpec{
		Name: "x", AMode: storage.ModeCreate, Dims: []int{4}, Etype: 1,
	}); !errors.Is(err, storage.ErrDown) {
		t.Fatalf("placement with all resources down = %v", err)
	}
}

func TestMetaDataRecorded(t *testing.T) {
	e := newEnv(t)
	run, _ := e.sys.Initialize(RunConfig{ID: "r9", App: "astro3d", User: "shen", Iterations: 120, Procs: 8})
	_, err := run.OpenDataset(DatasetSpec{
		Name: "temp", AMode: storage.ModeCreate,
		Dims: []int{128, 128, 128}, Etype: 4, Location: LocRemoteDisk, Frequency: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	row, err := e.sys.Meta().GetDataset(nil, "r9", "temp")
	if err != nil {
		t.Fatal(err)
	}
	if row.Pattern != "BBB" || row.Location != "REMOTEDISK" || row.Resource != "sdsc-disk" || row.Frequency != 6 {
		t.Fatalf("metadata row = %+v", row)
	}
	if row.Size() != 8*model.MiB {
		t.Fatalf("metadata size = %d", row.Size())
	}
	r, err := e.sys.Meta().GetRun(nil, "r9")
	if err != nil || r.Procs != 8 {
		t.Fatalf("run row = %+v, %v", r, err)
	}
}

func TestSpecValidation(t *testing.T) {
	e := newEnv(t)
	run, _ := e.sys.Initialize(RunConfig{ID: "r1", Iterations: 6, Procs: 2})
	if _, err := run.OpenDataset(DatasetSpec{Name: "", Dims: []int{4}, Etype: 1}); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := run.OpenDataset(DatasetSpec{Name: "a", Etype: 1}); err == nil {
		t.Fatal("missing dims accepted")
	}
	if _, err := run.OpenDataset(DatasetSpec{Name: "a", Dims: []int{4}, Etype: 0}); err == nil {
		t.Fatal("zero etype accepted")
	}
	p, _ := pattern.Parse("BB")
	if _, err := run.OpenDataset(DatasetSpec{Name: "a", Dims: []int{4}, Etype: 1, Pattern: p, AMode: storage.ModeCreate}); err == nil {
		t.Fatal("pattern/dims rank mismatch accepted")
	}
	if _, err := run.OpenDataset(DatasetSpec{Name: "ok", Dims: []int{4, 4}, Etype: 1, AMode: storage.ModeCreate}); err != nil {
		t.Fatal(err)
	}
	if _, err := run.OpenDataset(DatasetSpec{Name: "ok", Dims: []int{4, 4}, Etype: 1, AMode: storage.ModeCreate}); err == nil {
		t.Fatal("duplicate dataset accepted")
	}
}

func TestRunValidation(t *testing.T) {
	e := newEnv(t)
	if _, err := e.sys.Initialize(RunConfig{ID: "", Iterations: 5}); err == nil {
		t.Fatal("empty run ID accepted")
	}
	if _, err := e.sys.Initialize(RunConfig{ID: "x", Iterations: 0}); err == nil {
		t.Fatal("zero iterations accepted")
	}
	run, err := e.sys.Initialize(RunConfig{ID: "x", Iterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Procs()) != 1 {
		t.Fatalf("default procs = %d, want 1", len(run.Procs()))
	}
	if err := run.Finalize(); err != nil {
		t.Fatal(err)
	}
	if err := run.Finalize(); !errors.Is(err, storage.ErrClosed) {
		t.Fatalf("double finalize = %v", err)
	}
}

func TestSystemValidation(t *testing.T) {
	if _, err := NewSystem(SystemConfig{}); err == nil {
		t.Fatal("system without sim accepted")
	}
	if _, err := NewSystem(SystemConfig{Sim: vtime.NewVirtual()}); err == nil {
		t.Fatal("system without backends accepted")
	}
}

func TestDatasetGridRespectsReplicatedDims(t *testing.T) {
	e := newEnv(t)
	run, _ := e.sys.Initialize(RunConfig{ID: "r1", Iterations: 4, Procs: 4})
	p, _ := pattern.Parse("B*B")
	d, err := run.OpenDataset(DatasetSpec{
		Name: "x", AMode: storage.ModeCreate,
		Dims: []int{8, 8, 8}, Etype: 1, Pattern: p, Location: LocLocalDisk,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := d.Grid()
	if g[1] != 1 || g.Procs() != 4 {
		t.Fatalf("grid = %v", g)
	}
}

func TestDueFrequency(t *testing.T) {
	e := newEnv(t)
	run, _ := e.sys.Initialize(RunConfig{ID: "r1", Iterations: 120, Procs: 1})
	d, _ := run.OpenDataset(DatasetSpec{
		Name: "x", AMode: storage.ModeCreate, Dims: []int{4}, Etype: 1,
		Location: LocLocalDisk, Frequency: 6,
	})
	dumps := 0
	for i := 0; i < 120; i++ {
		if d.Due(i) {
			dumps++
		}
	}
	// The paper counts N/freq + 1 = 21 dumps for N=120, freq=6 (i = 0,
	// 6, ..., 114 plus the final state at 120).
	if dumps != 20 {
		t.Fatalf("in-loop dumps = %d, want 20 (i %% 6 == 0 in [0,120))", dumps)
	}
}

func TestInstancesDiscovery(t *testing.T) {
	e := newEnv(t)
	run, _ := e.sys.Initialize(RunConfig{ID: "r1", Iterations: 12, Procs: 2})
	d, _ := run.OpenDataset(DatasetSpec{
		Name: "temp", AMode: storage.ModeCreate,
		Dims: []int{8, 8}, Etype: 4, Location: LocLocalDisk, Frequency: 6,
	})
	bufs := fillBufs(t, d, 1)
	for iter := 0; iter <= 12; iter += 6 {
		if err := d.WriteIter(iter, bufs); err != nil {
			t.Fatal(err)
		}
	}
	p := e.sim.NewProc("viewer")
	iters, err := d.Instances(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(iters) != 3 || iters[0] != 0 || iters[2] != 12 {
		t.Fatalf("Instances = %v", iters)
	}

	// over_write datasets report the single restart instance.
	ck, _ := run.OpenDataset(DatasetSpec{
		Name: "restart", AMode: storage.ModeOverWrite,
		Dims: []int{8, 8}, Etype: 4, Location: LocLocalDisk, Frequency: 6,
	})
	if err := ck.WriteIter(6, bufs); err != nil {
		t.Fatal(err)
	}
	ckIters, err := ck.Instances(p)
	if err != nil || len(ckIters) != 1 || ckIters[0] != 0 {
		t.Fatalf("checkpoint Instances = %v, %v", ckIters, err)
	}
}
