// Package core implements the user API of the multi-storage resource
// architecture — the paper's primary contribution.
//
// The API realizes the I/O flow of the paper's figure 5: the
// application calls Initialize, opens each dataset with a high-level
// hint (dimensions, element type, partition pattern, dump frequency and
// a 'location' attribute), then performs per-iteration writes and reads
// without ever naming a concrete storage system, and ends with
// Finalize.  The system consults the meta-data database, routes each
// dataset to a storage resource according to its hint (or the placement
// policy for AUTO), and drives the appropriate run-time library
// optimization — collective I/O by default, superfile for many small
// files, subfile or data sieving on request.
//
// Location hints follow the paper exactly:
//
//	LOCALDISK   suggests the dataset be placed on local disks;
//	REMOTEDISK  suggests remote disks;
//	REMOTETAPE  suggests remote tapes;
//	AUTO        leaves it to the system (default is remote tapes);
//	DISABLE     suggests the dataset not be dumped at all.
package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/collective"
	"repro/internal/ioopt"
	"repro/internal/metadb"
	"repro/internal/pattern"
	"repro/internal/sieve"
	"repro/internal/stage"
	"repro/internal/storage"
	"repro/internal/subfile"
	"repro/internal/superfile"
	"repro/internal/vtime"
)

// Location is the user's per-dataset storage hint.
type Location int

const (
	LocAuto Location = iota
	LocLocalDisk
	LocRemoteDisk
	LocRemoteTape
	LocLocalDB
	LocDisable
)

var locNames = map[Location]string{
	LocAuto:       "AUTO",
	LocLocalDisk:  "LOCALDISK",
	LocRemoteDisk: "REMOTEDISK",
	LocRemoteTape: "REMOTETAPE",
	LocLocalDB:    "LOCALDB",
	LocDisable:    "DISABLE",
}

func (l Location) String() string {
	if s, ok := locNames[l]; ok {
		return s
	}
	return fmt.Sprintf("Location(%d)", int(l))
}

// ParseLocation converts a hint string; "SDSCHPSS" (the name the
// paper's figure 11 screen shows) is accepted as REMOTETAPE, and
// "DEFAULT" as AUTO.
func ParseLocation(s string) (Location, error) {
	switch strings.ToUpper(s) {
	case "AUTO", "DEFAULT", "":
		return LocAuto, nil
	case "LOCALDISK":
		return LocLocalDisk, nil
	case "REMOTEDISK":
		return LocRemoteDisk, nil
	case "REMOTETAPE", "SDSCHPSS":
		return LocRemoteTape, nil
	case "LOCALDB":
		return LocLocalDB, nil
	case "DISABLE":
		return LocDisable, nil
	default:
		return 0, fmt.Errorf("core: unknown location hint %q", s)
	}
}

// Kind maps the hint to a storage class (LocAuto and LocDisable have no
// fixed class).
func (l Location) Kind() (storage.Kind, bool) {
	switch l {
	case LocLocalDisk:
		return storage.KindLocalDisk, true
	case LocRemoteDisk:
		return storage.KindRemoteDisk, true
	case LocRemoteTape:
		return storage.KindRemoteTape, true
	case LocLocalDB:
		return storage.KindLocalDB, true
	default:
		return 0, false
	}
}

// DatasetSpec is the user-visible dataset description.
type DatasetSpec struct {
	Name      string
	AMode     storage.AMode // ModeCreate or ModeOverWrite for producers, ModeRead for consumers
	Dims      []int
	Etype     int // element size in bytes
	Pattern   pattern.Pattern
	Location  Location
	Frequency int        // dump every Frequency iterations; <= 0 means every iteration
	Opt       ioopt.Kind // optimization; Collective by default
}

// Size returns the dataset's bytes per instance.
func (s DatasetSpec) Size() int64 { return pattern.TotalBytes(s.Dims, s.Etype) }

// Placer chooses a backend for a dataset.  size is the bytes the
// dataset will occupy per dump.  Returning a nil backend is an error;
// the DISABLE hint never reaches the placer.
type Placer func(sys *System, spec DatasetSpec) (storage.Backend, error)

// SystemConfig wires a System together.
type SystemConfig struct {
	Sim        *vtime.Sim
	Meta       *metadb.DB
	LocalDisk  storage.Backend
	RemoteDisk storage.Backend
	RemoteTape storage.Backend
	// LocalDB is the optional local-database resource (package dbstore).
	LocalDB storage.Backend
	// Placer overrides the default hint-driven placement (optional).
	Placer Placer
	// Stager, when set, transparently redirects dataset I/O through the
	// staging engine's fast-tier cache (package stage): profitable reads
	// are staged in, writes may land on the cache tier with write-back
	// at Finalize, and sequential consumers get their next instance
	// prefetched.
	Stager *stage.Manager
}

// System is the configured multi-storage resource environment.
type System struct {
	sim      *vtime.Sim
	meta     *metadb.DB
	backends map[storage.Kind]storage.Backend
	placer   Placer
	stager   *stage.Manager
}

// NewSystem validates the configuration and returns a System.
func NewSystem(cfg SystemConfig) (*System, error) {
	if cfg.Sim == nil {
		return nil, fmt.Errorf("core: SystemConfig.Sim is required")
	}
	if cfg.Meta == nil {
		cfg.Meta = metadb.New()
	}
	s := &System{
		sim:      cfg.Sim,
		meta:     cfg.Meta,
		backends: make(map[storage.Kind]storage.Backend),
		placer:   cfg.Placer,
		stager:   cfg.Stager,
	}
	for kind, be := range map[storage.Kind]storage.Backend{
		storage.KindLocalDisk:  cfg.LocalDisk,
		storage.KindRemoteDisk: cfg.RemoteDisk,
		storage.KindRemoteTape: cfg.RemoteTape,
		storage.KindLocalDB:    cfg.LocalDB,
	} {
		if be != nil {
			s.backends[kind] = be
		}
	}
	if len(s.backends) == 0 {
		return nil, fmt.Errorf("core: no storage backends configured")
	}
	if s.placer == nil {
		s.placer = DefaultPlacer
	}
	return s, nil
}

// Sim returns the system's time domain.
func (s *System) Sim() *vtime.Sim { return s.sim }

// Meta returns the meta-data database.
func (s *System) Meta() *metadb.DB { return s.meta }

// Backend returns the backend registered for a storage class.
func (s *System) Backend(kind storage.Kind) (storage.Backend, bool) {
	be, ok := s.backends[kind]
	return be, ok
}

// Stager returns the staging engine, nil when staging is not
// configured.
func (s *System) Stager() *stage.Manager { return s.stager }

// healthy reports whether a backend is usable (registered and not down).
func healthy(be storage.Backend) bool {
	if be == nil {
		return false
	}
	if o, ok := be.(storage.Outage); ok && o.Down() {
		return false
	}
	return true
}

// fits reports whether size more bytes fit on the backend.
func fits(be storage.Backend, size int64) bool {
	total, used := be.Capacity()
	return total <= 0 || used+size <= total
}

// DefaultPlacer implements the paper's hint semantics: explicit hints
// bind to their storage class; AUTO defaults to remote tapes.  If the
// chosen resource is down or full, placement falls through the
// remaining classes largest-first (tape, remote disk, local disk) —
// "failure of one storage component may not impede the computation
// because other storage options are available".
func DefaultPlacer(sys *System, spec DatasetSpec) (storage.Backend, error) {
	var prefer []storage.Kind
	if kind, ok := spec.Location.Kind(); ok {
		prefer = append(prefer, kind)
	}
	prefer = append(prefer, storage.KindRemoteTape, storage.KindRemoteDisk, storage.KindLocalDB, storage.KindLocalDisk)
	// Conservatively require room for every dump of the whole run; the
	// caller refines the estimate by passing total bytes via spec when
	// frequency and iterations are known (see Run.OpenDataset).
	for _, kind := range prefer {
		be := sys.backends[kind]
		if healthy(be) && fits(be, spec.Size()) {
			return be, nil
		}
	}
	return nil, fmt.Errorf("core: no usable storage resource for dataset %q: %w", spec.Name, storage.ErrDown)
}

// RunConfig identifies one application run.
type RunConfig struct {
	ID         string
	App        string
	User       string
	Iterations int
	Procs      int
}

// Run is an initialized application run: the paper's initialization()
// through finalization() bracket.
type Run struct {
	sys  *System
	cfg  RunConfig
	proc []*vtime.Proc

	// connMu serializes session establishment separately from mu, so
	// the connect round trip (a wire exchange on srbnet backends) is
	// never made while holding the run's bookkeeping lock.
	connMu sync.Mutex

	mu       sync.Mutex
	sessions map[storage.Kind]storage.Session
	datasets map[string]*Dataset
	ioTime   time.Duration
	finished bool
}

// Initialize registers the run in the meta-data database and creates
// the compute processes.
func (s *System) Initialize(cfg RunConfig) (*Run, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("core: RunConfig.ID is required")
	}
	if cfg.Iterations <= 0 {
		return nil, fmt.Errorf("core: run %q: iterations must be positive", cfg.ID)
	}
	if cfg.Procs <= 0 {
		cfg.Procs = 1
	}
	r := &Run{
		sys:      s,
		cfg:      cfg,
		proc:     s.sim.NewProcs(cfg.ID+"/rank", cfg.Procs),
		sessions: make(map[storage.Kind]storage.Session),
		datasets: make(map[string]*Dataset),
	}
	err := s.meta.PutRun(r.proc[0], metadb.Run{
		ID: cfg.ID, App: cfg.App, User: cfg.User,
		Iterations: cfg.Iterations, Procs: cfg.Procs,
	})
	if err != nil {
		return nil, err
	}
	return r, nil
}

// Procs returns the run's compute processes (one per parallel rank).
func (r *Run) Procs() []*vtime.Proc { return r.proc }

// Config returns the run configuration.
func (r *Run) Config() RunConfig { return r.cfg }

// IOTime returns the accumulated I/O time of the run: the wall (virtual)
// time the slowest rank has spent inside dataset operations.
func (r *Run) IOTime() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ioTime
}

// session returns (opening if needed) the shared session on a backend.
// The communication-setup constant is charged to rank 0, as the
// connection is established once per run.
func (r *Run) session(be storage.Backend) (storage.Session, error) {
	r.connMu.Lock()
	defer r.connMu.Unlock()
	r.mu.Lock()
	sess, ok := r.sessions[be.Kind()]
	r.mu.Unlock()
	if ok {
		return sess, nil
	}
	sess, err := be.Connect(r.proc[0])
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.sessions[be.Kind()] = sess
	r.mu.Unlock()
	return sess, nil
}

// addIOTime accrues dt to the run's I/O account.
func (r *Run) addIOTime(dt time.Duration) {
	if dt <= 0 {
		return
	}
	r.mu.Lock()
	r.ioTime += dt
	r.mu.Unlock()
}

// Dataset is an open dataset bound to a storage resource.
type Dataset struct {
	run       *Run
	spec      DatasetSpec
	grid      pattern.Grid
	base      string          // path prefix on the storage resource
	overwrite bool            // checkpoint-style single overwritten file
	backend   storage.Backend // nil when DISABLEd

	mu        sync.Mutex
	container *superfile.Container // lazily created for Superfile datasets
	stats     DatasetStats
}

// DatasetStats accumulates per-dataset accounting for the reports.
type DatasetStats struct {
	Dumps  int
	Reads  int
	Bytes  int64
	IOTime time.Duration
}

// OpenDataset validates the spec, places the dataset on a storage
// resource and records it in the meta-data database.
func (r *Run) OpenDataset(spec DatasetSpec) (*Dataset, error) {
	if spec.Name == "" {
		return nil, fmt.Errorf("core: dataset with empty name")
	}
	if len(spec.Dims) == 0 || spec.Etype <= 0 {
		return nil, fmt.Errorf("core: dataset %q: dims and etype are required", spec.Name)
	}
	if len(spec.Pattern) == 0 {
		spec.Pattern = make(pattern.Pattern, len(spec.Dims))
		for i := range spec.Pattern {
			spec.Pattern[i] = pattern.Block
		}
	}
	if len(spec.Pattern) != len(spec.Dims) {
		return nil, fmt.Errorf("core: dataset %q: pattern rank %d != dims rank %d", spec.Name, len(spec.Pattern), len(spec.Dims))
	}
	if spec.Frequency <= 0 {
		spec.Frequency = 1
	}
	r.mu.Lock()
	if _, dup := r.datasets[spec.Name]; dup {
		r.mu.Unlock()
		return nil, fmt.Errorf("core: dataset %q already open", spec.Name)
	}
	r.mu.Unlock()

	grid, err := datasetGrid(spec, r.cfg.Procs)
	if err != nil {
		return nil, err
	}
	d := &Dataset{
		run: r, spec: spec, grid: grid,
		base:      r.cfg.ID + "/" + spec.Name,
		overwrite: spec.AMode == storage.ModeOverWrite,
	}
	resource := "-"
	if spec.Location != LocDisable {
		be, err := r.sys.placer(r.sys, spec)
		if err != nil {
			return nil, err
		}
		d.backend = be
		resource = be.Name()
	}
	err = r.sys.meta.PutDataset(r.proc[0], metadb.Dataset{
		RunID: r.cfg.ID, Name: spec.Name, AMode: spec.AMode.String(),
		NDims: len(spec.Dims), Dims: append([]int(nil), spec.Dims...),
		ETypeSize: spec.Etype, Pattern: spec.Pattern.String(),
		Location: spec.Location.String(), Frequency: spec.Frequency,
		Opt: spec.Opt.String(), Resource: resource, PathBase: d.BasePath(),
	})
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.datasets[spec.Name] = d
	r.mu.Unlock()
	return d, nil
}

// AttachDataset opens, for reading, a dataset that an earlier run wrote:
// the meta-data database locates it ("the API layer can use this
// information to locate each dataset that the user is interested in").
// The attached dataset is decomposed over this run's processes, which
// need not match the producer's process count.
func (r *Run) AttachDataset(producerRunID, name string) (*Dataset, error) {
	row, err := r.sys.meta.GetDataset(r.proc[0], producerRunID, name)
	if err != nil {
		return nil, fmt.Errorf("core: attach %q from run %q: %w", name, producerRunID, err)
	}
	pat, err := pattern.Parse(row.Pattern)
	if err != nil {
		return nil, fmt.Errorf("core: attach %q: %w", name, err)
	}
	var backend storage.Backend
	for _, be := range r.sys.backends {
		if be.Name() == row.Resource {
			backend = be
			break
		}
	}
	if backend == nil {
		return nil, fmt.Errorf("core: attach %q: resource %q not configured: %w", name, row.Resource, storage.ErrNotExist)
	}
	opt, err := ioopt.Parse(row.Opt)
	if err != nil {
		opt = ioopt.Collective
	}
	spec := DatasetSpec{
		Name: name, AMode: storage.ModeRead, Dims: append([]int(nil), row.Dims...),
		Etype: row.ETypeSize, Pattern: pat, Frequency: row.Frequency, Opt: opt,
	}
	if loc, err := ParseLocation(row.Location); err == nil {
		spec.Location = loc
	}
	grid, err := datasetGrid(spec, r.cfg.Procs)
	if err != nil {
		return nil, err
	}
	d := &Dataset{
		run: r, spec: spec, grid: grid, base: row.PathBase,
		overwrite: row.AMode == storage.ModeOverWrite.String(),
		backend:   backend,
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.datasets[name]; dup {
		return nil, fmt.Errorf("core: dataset %q already open", name)
	}
	r.datasets[name] = d
	return d, nil
}

// datasetGrid chooses the process grid for a dataset: replicated ('*')
// dimensions get extent 1 and the run's processes spread over the rest.
func datasetGrid(spec DatasetSpec, procs int) (pattern.Grid, error) {
	distributed := 0
	for _, p := range spec.Pattern {
		if p != pattern.All {
			distributed++
		}
	}
	if distributed == 0 {
		if procs != 1 {
			return nil, fmt.Errorf("core: dataset %q replicates every dimension but run has %d procs", spec.Name, procs)
		}
		g := make(pattern.Grid, len(spec.Dims))
		for i := range g {
			g[i] = 1
		}
		return g, nil
	}
	sub, err := pattern.DefaultGrid(distributed, procs)
	if err != nil {
		return nil, err
	}
	g := make(pattern.Grid, len(spec.Dims))
	j := 0
	for i, p := range spec.Pattern {
		if p == pattern.All {
			g[i] = 1
		} else {
			g[i] = sub[j]
			j++
		}
	}
	return g, nil
}

// Spec returns the dataset's specification (with defaults applied).
func (d *Dataset) Spec() DatasetSpec { return d.spec }

// Grid returns the dataset's process grid.
func (d *Dataset) Grid() pattern.Grid { return d.grid }

// Backend returns the storage resource the dataset was placed on (nil
// when DISABLEd).
func (d *Dataset) Backend() storage.Backend { return d.backend }

// Disabled reports whether the dataset carries the DISABLE hint.
func (d *Dataset) Disabled() bool { return d.backend == nil }

// Stats returns the accumulated per-dataset accounting.
func (d *Dataset) Stats() DatasetStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// BasePath returns the dataset's path prefix on its storage resource.
func (d *Dataset) BasePath() string { return d.base }

// InstancePath returns the file path of one iteration's dump.
func (d *Dataset) InstancePath(iter int) string {
	if d.overwrite {
		// Checkpoints overwrite a single restart file.
		return d.BasePath() + "/restart"
	}
	return fmt.Sprintf("%s/iter%06d", d.BasePath(), iter)
}

// Due reports whether the dataset dumps at the given iteration
// (i % freq == 0, as in the paper's I/O model).
func (d *Dataset) Due(iter int) bool { return iter%d.spec.Frequency == 0 }

// LocalSize returns the packed local-buffer size of one rank.
func (d *Dataset) LocalSize(rank int) (int64, error) {
	sets, err := pattern.IndexSets(d.spec.Dims, d.spec.Pattern, d.grid, rank)
	if err != nil {
		return 0, err
	}
	return int64(pattern.NumElems(sets)) * int64(d.spec.Etype), nil
}

// track brackets an I/O phase: it measures the growth of the slowest
// rank's clock and accrues it to the run and dataset I/O accounts.
func (d *Dataset) track(f func() error) error {
	before := vtime.MaxNow(d.run.proc...)
	err := f()
	dt := vtime.MaxNow(d.run.proc...) - before
	d.run.addIOTime(dt)
	d.mu.Lock()
	d.stats.IOTime += dt
	d.mu.Unlock()
	return err
}

// WriteIter dumps the dataset for iteration iter.  bufs[r] is rank r's
// packed subarray.  DISABLEd datasets return immediately at zero cost.
// All ranks are synchronized on return.
func (d *Dataset) WriteIter(iter int, bufs [][]byte) error {
	if d.backend == nil {
		return nil
	}
	if !d.spec.AMode.Writable() {
		return fmt.Errorf("core: write to read-mode dataset %q: %w", d.spec.Name, storage.ErrReadOnly)
	}
	return d.track(func() error { return d.writeIter(iter, bufs) })
}

func (d *Dataset) writeIter(iter int, bufs [][]byte) error {
	procs := d.run.proc
	sess, err := d.run.session(d.backend)
	if err != nil {
		return err
	}
	op := collective.Op{Dims: d.spec.Dims, Etype: d.spec.Etype, Pat: d.spec.Pattern, Grid: d.grid}

	switch d.spec.Opt {
	case ioopt.Superfile:
		err = d.putSuperfile(iter, bufs, sess)
	case ioopt.Subfile:
		err = d.subfileWrite(iter, bufs, sess)
	default:
		mode := storage.ModeCreate
		if d.spec.AMode == storage.ModeOverWrite {
			mode = storage.ModeOverWrite
		}
		wSess, wPath := sess, d.InstancePath(iter)
		var wp *stage.WritePlan
		if st := d.run.sys.stager; st != nil {
			if plan, ok := st.StageWrite(procs[0], d.backend, wPath, d.spec.Size()); ok {
				// The dump lands on the cache tier and drains home at
				// Finalize (write-back); the cache copy always replaces
				// whatever instance an earlier run left there.
				wp, wSess, wPath = plan, plan.Sess, plan.Path
				mode = storage.ModeOverWrite
			}
		}
		var h storage.Handle
		h, err = wSess.Open(procs[0], wPath, mode)
		if err != nil {
			if wp != nil {
				wp.Abort(procs[0])
			}
			return fmt.Errorf("core: dump %q iter %d: %w", d.spec.Name, iter, err)
		}
		vtime.Barrier(procs...)
		shared := sharedHandles(h, len(procs))
		switch d.spec.Opt {
		case ioopt.Collective:
			err = collective.Write(op, procs, shared, bufs)
		case ioopt.Naive:
			err = collective.WriteNaive(op, procs, shared, bufs)
		case ioopt.DataSieving:
			err = d.sieveWrite(procs, h, bufs)
		default:
			err = fmt.Errorf("core: dataset %q: unsupported write optimization %v", d.spec.Name, d.spec.Opt)
		}
		if cerr := h.Close(procs[0]); cerr != nil && err == nil {
			err = cerr
		}
		vtime.Barrier(procs...)
		if wp != nil {
			if err != nil {
				wp.Abort(procs[0])
			} else {
				wp.Commit(procs[0])
			}
		}
	}
	if err != nil {
		return fmt.Errorf("core: dump %q iter %d: %w", d.spec.Name, iter, err)
	}
	d.mu.Lock()
	d.stats.Dumps++
	d.stats.Bytes += d.spec.Size()
	d.mu.Unlock()
	return nil
}

// ReadIter loads iteration iter into per-rank packed buffers.  All
// ranks are synchronized on return.
func (d *Dataset) ReadIter(iter int, bufs [][]byte) error {
	if d.backend == nil {
		return fmt.Errorf("core: read of DISABLEd dataset %q: %w", d.spec.Name, storage.ErrNotExist)
	}
	return d.track(func() error { return d.readIter(iter, bufs) })
}

func (d *Dataset) readIter(iter int, bufs [][]byte) error {
	procs := d.run.proc
	sess, err := d.run.session(d.backend)
	if err != nil {
		return err
	}
	op := collective.Op{Dims: d.spec.Dims, Etype: d.spec.Etype, Pat: d.spec.Pattern, Grid: d.grid}

	if d.spec.Opt == ioopt.Superfile {
		err = d.getSuperfile(iter, bufs, sess)
	} else if d.spec.Opt == ioopt.Subfile {
		err = d.subfileRead(iter, bufs, sess)
	} else {
		// The staging engine may redirect the read to a fast-tier copy
		// (hit), stage one in when predicted profitable, or leave it on
		// the home resource; a zero plan is the direct read.
		rp := stage.ReadPlan{Sess: sess, Path: d.InstancePath(iter)}
		if st := d.run.sys.stager; st != nil {
			rp = st.StageRead(procs[0], d.backend, sess, rp.Path, d.spec.Size())
		}
		var h storage.Handle
		h, err = rp.Sess.Open(procs[0], rp.Path, storage.ModeRead)
		if err != nil {
			rp.Release()
			return fmt.Errorf("core: read %q iter %d: %w", d.spec.Name, iter, err)
		}
		vtime.Barrier(procs...)
		shared := sharedHandles(h, len(procs))
		switch d.spec.Opt {
		case ioopt.Collective:
			err = collective.Read(op, procs, shared, bufs)
		case ioopt.Naive:
			err = collective.ReadNaive(op, procs, shared, bufs)
		case ioopt.DataSieving:
			err = d.sieveRead(procs, h, bufs)
		default:
			err = fmt.Errorf("core: dataset %q: unsupported read optimization %v", d.spec.Name, d.spec.Opt)
		}
		if cerr := h.Close(procs[0]); cerr != nil && err == nil {
			err = cerr
		}
		vtime.Barrier(procs...)
		rp.Release()
		if st := d.run.sys.stager; st != nil && err == nil && !d.overwrite {
			// Hint the next due instance while the application computes.
			st.Prefetch(d.backend, d.InstancePath(iter+d.spec.Frequency), d.spec.Size(), vtime.MaxNow(procs...))
		}
	}
	if err != nil {
		return fmt.Errorf("core: read %q iter %d: %w", d.spec.Name, iter, err)
	}
	d.mu.Lock()
	d.stats.Reads++
	d.stats.Bytes += d.spec.Size()
	d.mu.Unlock()
	return nil
}

// Instances lists the iterations this dataset has stored instances
// for, discovered from the storage resource (consumers that were not
// told the producer's frequency use this).  Superfile datasets list
// their container members; over_write datasets report iteration 0.
func (d *Dataset) Instances(p *vtime.Proc) ([]int, error) {
	if d.backend == nil {
		return nil, fmt.Errorf("core: instances of DISABLEd dataset %q: %w", d.spec.Name, storage.ErrNotExist)
	}
	sess, err := d.run.session(d.backend)
	if err != nil {
		return nil, err
	}
	var names []string
	if d.spec.Opt == ioopt.Superfile {
		c, err := d.roContainer(p, sess)
		if err != nil {
			return nil, err
		}
		names = c.Names()
	} else {
		if d.overwrite {
			if _, err := sess.Stat(p, d.InstancePath(0)); err != nil {
				return nil, err
			}
			return []int{0}, nil
		}
		infos, err := sess.List(p, d.BasePath()+"/")
		if err != nil {
			return nil, err
		}
		for _, fi := range infos {
			names = append(names, fi.Path)
		}
	}
	var iters []int
	for _, name := range names {
		var iter int
		base := name
		if i := strings.LastIndex(base, "/"); i >= 0 {
			base = base[i+1:]
		}
		if _, err := fmt.Sscanf(base, "iter%06d", &iter); err == nil {
			iters = append(iters, iter)
		}
	}
	sort.Ints(iters)
	return iters, nil
}

// ReadGlobal loads one iteration's whole global array with a single
// native call — the sequential post-processing consumer's path (data
// analysis, the image viewer, VTK).
func (d *Dataset) ReadGlobal(p *vtime.Proc, iter int) ([]byte, error) {
	if d.backend == nil {
		return nil, fmt.Errorf("core: read of DISABLEd dataset %q: %w", d.spec.Name, storage.ErrNotExist)
	}
	sess, err := d.run.session(d.backend)
	if err != nil {
		return nil, err
	}
	if d.spec.Opt == ioopt.Superfile {
		c, err := d.roContainer(p, sess)
		if err != nil {
			return nil, err
		}
		return c.Get(p, fmt.Sprintf("iter%06d", iter))
	}
	if d.spec.Opt == ioopt.Subfile {
		global, _, err := subfile.ReadGlobal(p, sess, d.InstancePath(iter))
		if err != nil {
			return nil, fmt.Errorf("core: read %q iter %d: %w", d.spec.Name, iter, err)
		}
		return global, nil
	}
	rp := stage.ReadPlan{Sess: sess, Path: d.InstancePath(iter)}
	if st := d.run.sys.stager; st != nil {
		rp = st.StageRead(p, d.backend, sess, rp.Path, d.spec.Size())
	}
	buf, err := storage.GetFile(p, rp.Sess, rp.Path)
	rp.Release()
	if err != nil {
		return nil, fmt.Errorf("core: read %q iter %d: %w", d.spec.Name, iter, err)
	}
	if st := d.run.sys.stager; st != nil && !d.overwrite {
		st.Prefetch(d.backend, d.InstancePath(iter+d.spec.Frequency), d.spec.Size(), p.Now())
	}
	return buf, nil
}

// sharedHandles replicates one handle pointer per rank.
func sharedHandles(h storage.Handle, n int) []storage.Handle {
	hs := make([]storage.Handle, n)
	for i := range hs {
		hs[i] = h
	}
	return hs
}

func (d *Dataset) rankRuns(rank int) ([]pattern.Run, error) {
	sets, err := pattern.IndexSets(d.spec.Dims, d.spec.Pattern, d.grid, rank)
	if err != nil {
		return nil, err
	}
	return pattern.FileRuns(d.spec.Dims, d.spec.Etype, sets), nil
}

func (d *Dataset) sieveWrite(procs []*vtime.Proc, h storage.Handle, bufs [][]byte) error {
	// Sieved writes of interleaved extents must not race; serialize
	// ranks (the virtual clocks still queue on the device as usual).
	for r := range procs {
		runs, err := d.rankRuns(r)
		if err != nil {
			return err
		}
		if err := sieve.Write(procs[r], h, runs, bufs[r]); err != nil {
			return err
		}
	}
	vtime.Barrier(procs...)
	return nil
}

func (d *Dataset) sieveRead(procs []*vtime.Proc, h storage.Handle, bufs [][]byte) error {
	var wg sync.WaitGroup
	errs := make([]error, len(procs))
	for r := range procs {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			runs, err := d.rankRuns(r)
			if err != nil {
				errs[r] = err
				return
			}
			errs[r] = sieve.Read(procs[r], h, runs, bufs[r])
		}(r)
	}
	wg.Wait()
	vtime.Barrier(procs...)
	return errors.Join(errs...)
}

func (d *Dataset) subfileWrite(iter int, bufs [][]byte, sess storage.Session) error {
	err := subfile.Write(sess, d.InstancePath(iter), d.spec.Dims, d.spec.Etype, d.spec.Pattern, d.grid, d.run.proc, bufs)
	if err != nil {
		return err
	}
	vtime.Barrier(d.run.proc...)
	return nil
}

func (d *Dataset) subfileRead(iter int, bufs [][]byte, sess storage.Session) error {
	if err := subfile.Read(sess, d.InstancePath(iter), d.grid, d.run.proc, bufs); err != nil {
		return err
	}
	vtime.Barrier(d.run.proc...)
	return nil
}

// putSuperfile appends this iteration's global array to the dataset's
// container (created on first use).
func (d *Dataset) putSuperfile(iter int, bufs [][]byte, sess storage.Session) error {
	procs := d.run.proc
	d.mu.Lock()
	c := d.container
	d.mu.Unlock()
	if c == nil {
		var err error
		c, err = superfile.Create(procs[0], sess, d.BasePath()+".sf")
		if err != nil {
			return err
		}
		d.mu.Lock()
		d.container = c
		d.mu.Unlock()
	}
	global, err := d.assembleGlobal(bufs)
	if err != nil {
		return err
	}
	if err := c.Put(procs[0], fmt.Sprintf("iter%06d", iter), global); err != nil {
		return err
	}
	vtime.Barrier(procs...)
	return nil
}

// getSuperfile serves a parallel read from the container cache.
func (d *Dataset) getSuperfile(iter int, bufs [][]byte, sess storage.Session) error {
	procs := d.run.proc
	c, err := d.roContainer(procs[0], sess)
	if err != nil {
		return err
	}
	global, err := c.Get(procs[0], fmt.Sprintf("iter%06d", iter))
	if err != nil {
		return err
	}
	vtime.Barrier(procs...)
	for r := range procs {
		runs, err := d.rankRuns(r)
		if err != nil {
			return err
		}
		copy(bufs[r], pattern.Pack(global, runs))
	}
	return nil
}

// roContainer opens (once) the dataset's container for reading.
func (d *Dataset) roContainer(p *vtime.Proc, sess storage.Session) (*superfile.Container, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.container == nil {
		c, err := superfile.Open(p, sess, d.BasePath()+".sf")
		if err != nil {
			return nil, err
		}
		d.container = c
	}
	return d.container, nil
}

// assembleGlobal rebuilds the global array from per-rank packed buffers.
func (d *Dataset) assembleGlobal(bufs [][]byte) ([]byte, error) {
	if len(bufs) != len(d.run.proc) {
		return nil, fmt.Errorf("core: dataset %q: %d buffers for %d ranks", d.spec.Name, len(bufs), len(d.run.proc))
	}
	global := make([]byte, d.spec.Size())
	for r := range bufs {
		runs, err := d.rankRuns(r)
		if err != nil {
			return nil, err
		}
		if err := pattern.Unpack(global, runs, bufs[r]); err != nil {
			return nil, err
		}
	}
	return global, nil
}

// Finalize closes containers and sessions and marks the run finished.
func (r *Run) Finalize() error {
	r.mu.Lock()
	if r.finished {
		r.mu.Unlock()
		return fmt.Errorf("core: run %q: %w", r.cfg.ID, storage.ErrClosed)
	}
	r.finished = true
	datasets := make([]*Dataset, 0, len(r.datasets))
	for _, d := range r.datasets {
		datasets = append(datasets, d)
	}
	sessions := make([]storage.Session, 0, len(r.sessions))
	for _, s := range r.sessions {
		sessions = append(sessions, s)
	}
	r.mu.Unlock()

	var errs []error
	if st := r.sys.stager; st != nil {
		// Write-back: drain dirty staged instances to their home tiers
		// before the run's sessions go away, charging the movement to
		// the run's I/O account (the paper's close/checkpoint point).
		st.WaitPrefetch()
		before := r.proc[0].Now()
		if err := st.Drain(r.proc[0]); err != nil {
			errs = append(errs, err)
		}
		r.addIOTime(r.proc[0].Now() - before)
	}
	for _, d := range datasets {
		d.mu.Lock()
		c := d.container
		d.container = nil
		d.mu.Unlock()
		if c != nil {
			if err := c.Close(r.proc[0]); err != nil {
				errs = append(errs, err)
			}
		}
	}
	for _, s := range sessions {
		if err := s.Close(r.proc[0]); err != nil {
			errs = append(errs, err)
		}
	}
	vtime.Barrier(r.proc...)
	return errors.Join(errs...)
}
