// Package remotedisk constructs the remote-disk storage resource of the
// paper's experimental environment: SDSC disk space reached through the
// SRB middleware over the year-2000 WAN.  A single shared link channel
// serializes transfers, which is what makes many small remote calls so
// expensive and motivates the superfile optimization.
package remotedisk

import (
	"repro/internal/device"
	"repro/internal/model"
	"repro/internal/storage"
	"repro/internal/trace"
)

// DefaultCapacity is the remote disk space quota (large but finite).
const DefaultCapacity = 500 * 1000 * 1000 * 1000

// Option adjusts the backend configuration.
type Option func(*device.Config)

// WithCapacity overrides the capacity limit in bytes (<= 0 = unlimited).
func WithCapacity(n int64) Option { return func(c *device.Config) { c.Capacity = n } }

// WithTrace attaches a native-call trace recorder.
func WithTrace(r *trace.Recorder) Option { return func(c *device.Config) { c.Trace = r } }

// WithParams overrides the cost model.
func WithParams(p model.Params) Option { return func(c *device.Config) { c.Params = p } }

// New returns a remote-disk backend over the given byte store.
func New(name string, store storage.Store, opts ...Option) (*device.Backend, error) {
	cfg := device.Config{
		Name:     name,
		Kind:     storage.KindRemoteDisk,
		Params:   model.RemoteDisk2000(),
		Store:    store,
		Channels: 1,
		Capacity: DefaultCapacity,
	}
	for _, o := range opts {
		o(&cfg)
	}
	return device.New(cfg)
}
