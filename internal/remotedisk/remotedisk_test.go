package remotedisk

import (
	"testing"
	"time"

	"repro/internal/memfs"
	"repro/internal/model"
	"repro/internal/storage"
	"repro/internal/vtime"
)

func TestDefaults(t *testing.T) {
	b, err := New("sdsc-disk", memfs.New())
	if err != nil {
		t.Fatal(err)
	}
	if b.Kind() != storage.KindRemoteDisk {
		t.Fatalf("kind = %v", b.Kind())
	}
	total, _ := b.Capacity()
	if total != DefaultCapacity {
		t.Fatalf("capacity = %d", total)
	}
}

// Worked-example calibration: a 2 MiB dump to remote disk costs ≈8.47 s.
func TestTwoMiBDump(t *testing.T) {
	b, err := New("sdsc-disk", memfs.New())
	if err != nil {
		t.Fatal(err)
	}
	p := vtime.NewVirtual().NewProc("p")
	s, _ := b.Connect(p)
	h, _ := s.Open(p, "vr_press/iter0000", storage.ModeCreate)
	before := p.Now()
	if _, err := h.WriteAt(p, make([]byte, 2*model.MiB), 0); err != nil {
		t.Fatal(err)
	}
	d := p.Now() - before
	want := 8470 * time.Millisecond
	if ratio := float64(d) / float64(want); ratio < 0.85 || ratio > 1.15 {
		t.Fatalf("2 MiB dump = %v, want within 15%% of %v", d, want)
	}
}

func TestWANSerializesAcrossFiles(t *testing.T) {
	b, err := New("sdsc-disk", memfs.New(), WithParams(model.Params{Name: "wan", WriteBW: model.MiB}))
	if err != nil {
		t.Fatal(err)
	}
	sim := vtime.NewVirtual()
	ps := sim.NewProcs("r", 2)
	done := make(chan time.Duration, 2)
	for i, p := range ps {
		go func(i int, p *vtime.Proc) {
			s, _ := b.Connect(p)
			h, _ := s.Open(p, "f"+string(rune('0'+i)), storage.ModeCreate)
			h.WriteAt(p, make([]byte, model.MiB), 0)
			done <- p.Now()
		}(i, p)
	}
	var max time.Duration
	for i := 0; i < 2; i++ {
		if d := <-done; d > max {
			max = d
		}
	}
	if max != 2*time.Second {
		t.Fatalf("two remote writes finished at %v, want 2s (one WAN link)", max)
	}
}

func TestOptions(t *testing.T) {
	b, err := New("x", memfs.New(), WithCapacity(4096))
	if err != nil {
		t.Fatal(err)
	}
	total, _ := b.Capacity()
	if total != 4096 {
		t.Fatalf("capacity = %d", total)
	}
	p := vtime.NewVirtual().NewProc("p")
	s, _ := b.Connect(p)
	h, _ := s.Open(p, "f", storage.ModeCreate)
	if _, err := h.WriteAt(p, make([]byte, 8192), 0); err == nil {
		t.Fatal("capacity ignored")
	}
}
