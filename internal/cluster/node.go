// Node: one broker's membership in the cluster.  A node owns a metadb
// replica and a copy of the replicated log, carries its own view of
// the shard ring and its leased slice of the cluster byte budgets, and
// implements metadb.Replicator so a mutation against its replica is
// routed through the leader's log (or refused with NotLeaderError).
package cluster

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"repro/internal/metadb"
	"repro/internal/vtime"
	"repro/internal/wal"
)

// Cluster-level record types carried in the replicated log alongside
// the metadb journal records (which occupy the low byte values).  The
// high bit keeps the two spaces disjoint.
const (
	recRing  byte = 0x80 // payload ringRecord: shard→owner table
	recQuota byte = 0x81 // payload []Budgets: per-broker leases
)

// ringRecord is the journal encoding of one ring reassignment.
type ringRecord struct {
	Owners []int `json:"owners"`
}

// Budgets is one broker's leased slice of the cluster-wide byte
// budgets: the QoS admission budget and the placement staging
// capacity.  The leader computes leases proportional to shard
// ownership and publishes them through the log, so every broker
// learns its slice from the same ordered history.
type Budgets struct {
	Node       int   `json:"node"`
	QueueBytes int64 `json:"queue_bytes"`
	PlaceBytes int64 `json:"place_bytes"`
}

// Node is one broker in the cluster.  Obtain nodes from Cluster.Node;
// the zero value is not usable.
type Node struct {
	cl  *Cluster
	id  int
	db  *metadb.DB
	log *Log

	mu       sync.Mutex
	down     bool
	faultErr error
	ring     Ring
	budget   Budgets
	onQuota  func(Budgets)
}

// ID returns the node's broker ID (its index in the peer list).
func (n *Node) ID() int { return n.id }

// DB returns the node's metadb replica.  Reads are always local;
// mutations route through the replicated log and fail with
// NotLeaderError on a follower.
func (n *Node) DB() *metadb.DB { return n.db }

// Log returns the node's copy of the replicated log.
func (n *Node) Log() *Log { return n.log }

// Down reports whether the node is dead (killed or faulted).
func (n *Node) Down() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.down
}

// Err returns the fault that took the node down, if any.
func (n *Node) Err() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.faultErr
}

// Kill marks the node dead.  Its shards stay unreachable until the
// lease lapses and the survivors elect a new owner; its replica stops
// accepting reads of record (callers decide what a dead broker means
// for their data plane).
func (n *Node) Kill() {
	n.mu.Lock()
	n.down = true
	n.mu.Unlock()
}

// fault takes the node down recording why (divergent log, apply
// failure): the fail-closed response to suspect history.
func (n *Node) fault(err error) {
	n.mu.Lock()
	n.down = true
	if n.faultErr == nil {
		n.faultErr = err
	}
	n.mu.Unlock()
}

// Ring returns the node's current view of the shard map.
func (n *Node) Ring() Ring {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.ring
}

// Budget returns the node's current budget lease.
func (n *Node) Budget() Budgets {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.budget
}

// OnQuota registers a callback fired whenever a quota lease for this
// node is applied from the log (wire it to qos.SetMaxQueuedBytes et
// al.).  The callback runs with cluster locks held: it must not call
// back into the cluster.
func (n *Node) OnQuota(fn func(Budgets)) {
	n.mu.Lock()
	n.onQuota = fn
	n.mu.Unlock()
}

// Route implements the srbnet ShardRouter contract: it decides whether
// this broker owns path's shard, and if not, names the broker that
// does.  now is the caller's virtual clock; observing it is what lets
// a routing miss after a leader death trigger the lease-lapse
// election.
func (n *Node) Route(now time.Duration, path string) (addr string, ok bool) {
	cl := n.cl
	cl.mu.Lock()
	defer cl.mu.Unlock()
	cl.observeLocked(now)
	cl.stepLocked()
	owner := cl.ring.Owner(cl.ring.Shard(path))
	if owner == n.id && !n.Down() {
		return "", true
	}
	return cl.addrLocked(owner), false
}

// Replicate implements metadb.Replicator: the node's replica hands
// every mutation here, and it commits through the leader-leased log or
// not at all.  Followers refuse with NotLeaderError naming the broker
// to retry against.  Callers hold no database lock (see
// metadb.SetReplicator), so the append can apply the committed record
// back to every live replica before returning.
func (n *Node) Replicate(p *vtime.Proc, typ byte, data []byte) error {
	cl := n.cl
	cl.mu.Lock()
	defer cl.mu.Unlock()
	cl.observeProcLocked(p)
	cl.stepLocked()
	if n.Down() {
		return fmt.Errorf("cluster: node %d: %w", n.id, ErrDown)
	}
	if cl.leader != n.id {
		return &NotLeaderError{Leader: cl.leaderIDLocked()}
	}
	return cl.appendLocked([][]byte{wal.EncodeRecord(typ, data)})
}

// applyEntry applies one committed entry to this node's state.  Cluster
// records update the node's ring and budget views; everything else is
// a metadb journal record replayed through the replica's recovery
// path.  Called with cl.mu held.
func (n *Node) applyEntry(e Entry) error {
	rec, err := wal.DecodeRecord(e.Frame)
	if err != nil {
		return fmt.Errorf("%w: entry %d: %v", ErrDiverged, e.Index, err)
	}
	switch rec.Type {
	case recRing:
		var rr ringRecord
		if err := json.Unmarshal(rec.Data, &rr); err != nil {
			return fmt.Errorf("cluster: ring record %d: %w", e.Index, err)
		}
		n.mu.Lock()
		n.ring = ringFromOwners(rr.Owners)
		n.mu.Unlock()
		return nil
	case recQuota:
		var bs []Budgets
		if err := json.Unmarshal(rec.Data, &bs); err != nil {
			return fmt.Errorf("cluster: quota record %d: %w", e.Index, err)
		}
		for _, b := range bs {
			if b.Node != n.id {
				continue
			}
			n.mu.Lock()
			n.budget = b
			hook := n.onQuota
			n.mu.Unlock()
			if hook != nil {
				hook(b)
			}
		}
		return nil
	default:
		return n.db.ApplyRecord(rec.Type, rec.Data)
	}
}

// applyCommitted drains the node's committed-but-unapplied entries in
// log order.  Called with cl.mu held.
func (n *Node) applyCommitted() error {
	for {
		e, ok := n.log.nextToApply()
		if !ok {
			return nil
		}
		if err := n.applyEntry(e); err != nil {
			return err
		}
		n.log.markApplied(e.Index)
	}
}
