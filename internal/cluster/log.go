// The replicated log.  Entries reuse the journal's WAL record framing
// (internal/wal EncodeRecord: length, CRC32C, type, payload), so a
// follower verifies exactly the checksum a journal replay would.
// Verification is fail-closed: a replica offered an entry whose frame
// fails its CRC, or that conflicts with an entry it already holds at
// the same index and term, refuses the entry and faults rather than
// store suspect history.
package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"sync"

	"repro/internal/wal"
)

// ErrDiverged reports a replica whose log cannot accept an offered
// entry: the frame failed its CRC, conflicted with stored history, or
// left a gap.  The cluster responds by faulting the replica — it drops
// out of the quorum instead of applying suspect records.
var ErrDiverged = errors.New("cluster: replica log diverged")

// Entry is one replicated-log slot.
type Entry struct {
	Index uint64 // 1-based log position
	Term  uint64 // leadership term that proposed it
	Frame []byte // wal.EncodeRecord framing: len | crc32c | type | payload
}

// Log is one node's copy of the replicated log.
type Log struct {
	mu      sync.Mutex
	entries []Entry
	commit  uint64 // highest index known durable on a quorum
	applied uint64 // highest index applied to this node's state
}

// LastIndex returns the index of the newest stored entry (0 if none).
func (l *Log) LastIndex() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return uint64(len(l.entries))
}

// Commit returns the commit index.
func (l *Log) Commit() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.commit
}

// Applied returns the apply high-water mark.
func (l *Log) Applied() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.applied
}

// EntryAt returns a copy of the entry at index i.
func (l *Log) EntryAt(i uint64) (Entry, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if i == 0 || i > uint64(len(l.entries)) {
		return Entry{}, false
	}
	e := l.entries[i-1]
	e.Frame = append([]byte(nil), e.Frame...)
	return e, true
}

// appendEntries offers a contiguous batch to the log.  Each frame is
// CRC-verified before anything is stored.  An entry matching stored
// history (same index, term, and bytes) is idempotently skipped; a
// stored entry from an older term is truncated away with its suffix; a
// same-term byte mismatch or an index gap is divergence and the whole
// batch is refused.
func (l *Log) appendEntries(es []Entry) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, e := range es {
		if _, err := wal.DecodeRecord(e.Frame); err != nil {
			return fmt.Errorf("%w: entry %d: %v", ErrDiverged, e.Index, err)
		}
		last := uint64(len(l.entries))
		switch {
		case e.Index == 0 || e.Index > last+1:
			return fmt.Errorf("%w: entry %d leaves a gap (log ends at %d)", ErrDiverged, e.Index, last)
		case e.Index <= last:
			have := l.entries[e.Index-1]
			if have.Term == e.Term {
				if !bytes.Equal(have.Frame, e.Frame) {
					return fmt.Errorf("%w: entry %d rewritten within term %d", ErrDiverged, e.Index, e.Term)
				}
				continue // identical replay
			}
			if e.Index <= l.commit {
				return fmt.Errorf("%w: entry %d would truncate committed history", ErrDiverged, e.Index)
			}
			// A newer term supersedes an uncommitted suffix.
			l.entries = l.entries[:e.Index-1]
			fallthrough
		default:
			l.entries = append(l.entries, Entry{Index: e.Index, Term: e.Term, Frame: append([]byte(nil), e.Frame...)})
		}
	}
	return nil
}

// truncateFrom drops every entry at index i and above (quorum-failure
// rollback: an unacknowledged batch must not survive anywhere).
func (l *Log) truncateFrom(i uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if i == 0 {
		i = 1
	}
	if i <= uint64(len(l.entries)) {
		l.entries = l.entries[:i-1]
	}
	if l.commit > uint64(len(l.entries)) {
		l.commit = uint64(len(l.entries))
	}
	if l.applied > l.commit {
		l.applied = l.commit
	}
}

// setCommit raises the commit index.
func (l *Log) setCommit(i uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if i > l.commit {
		l.commit = i
	}
}

// nextToApply returns the oldest committed-but-unapplied entry.
func (l *Log) nextToApply() (Entry, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.applied >= l.commit || l.applied >= uint64(len(l.entries)) {
		return Entry{}, false
	}
	return l.entries[l.applied], true
}

// markApplied records that entry i has been applied.
func (l *Log) markApplied(i uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if i > l.applied {
		l.applied = i
	}
}

// adopt replaces this log with a copy of src, marking everything
// applied (the rejoin path pairs it with a metadb snapshot adoption).
func (l *Log) adopt(src *Log) {
	src.mu.Lock()
	entries := make([]Entry, len(src.entries))
	for i, e := range src.entries {
		e.Frame = append([]byte(nil), e.Frame...)
		entries[i] = e
	}
	commit := src.commit
	src.mu.Unlock()
	l.mu.Lock()
	l.entries, l.commit, l.applied = entries, commit, commit
	l.mu.Unlock()
}
