package cluster

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/metadb"
	"repro/internal/vtime"
)

func newProc(t *testing.T) *vtime.Proc {
	t.Helper()
	return vtime.NewVirtual().NewProc("test")
}

// TestReplicationReachesEveryReplica commits mutations at the leader
// and expects identical canonical state on every replica.
func TestReplicationReachesEveryReplica(t *testing.T) {
	cl, err := New(Config{Nodes: 3, Shards: 6})
	if err != nil {
		t.Fatal(err)
	}
	p := newProc(t)
	lead := cl.Node(0)
	for i := 0; i < 10; i++ {
		if err := lead.DB().PutRun(p, metadb.Run{ID: fmt.Sprintf("run-%02d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := lead.DB().AddSample(p, metadb.PerfSample{Resource: "disk", Op: "read", Size: 4096, Seconds: 0.01}); err != nil {
		t.Fatal(err)
	}
	for _, n := range cl.Nodes() {
		if got := len(n.DB().Runs(nil)); got != 10 {
			t.Fatalf("node %d holds %d runs, want 10", n.ID(), got)
		}
		if got := len(n.DB().Samples(nil, "disk", "read")); got != 1 {
			t.Fatalf("node %d holds %d samples, want 1", n.ID(), got)
		}
		if c, a := n.Log().Commit(), n.Log().Applied(); c != a {
			t.Fatalf("node %d commit %d != applied %d", n.ID(), c, a)
		}
	}
}

// TestFollowerRefusesMutation proves a follower's replica fails
// mutations closed with a NotLeaderError that names the leader.
func TestFollowerRefusesMutation(t *testing.T) {
	cl, err := New(Config{Nodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	p := newProc(t)
	err = cl.Node(1).DB().PutRun(p, metadb.Run{ID: "x"})
	if !errors.Is(err, ErrNotLeader) {
		t.Fatalf("follower accepted a mutation: %v", err)
	}
	var nle *NotLeaderError
	if !errors.As(err, &nle) || nle.Leader != 0 {
		t.Fatalf("refusal does not name leader 0: %v", err)
	}
}

// TestLeaderKillFailover kills the leader mid-workload: acked
// mutations must survive on the survivors, the lease must fence
// failover until it lapses, and after the election the new leader
// accepts writes and owns the dead broker's shards.
func TestLeaderKillFailover(t *testing.T) {
	cl, err := New(Config{Nodes: 3, Shards: 6, Lease: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	p := newProc(t)
	var acked []string
	put := func(n *Node, id string) error {
		if err := n.DB().PutRun(p, metadb.Run{ID: id}); err != nil {
			return err
		}
		acked = append(acked, id)
		return nil
	}
	for i := 0; i < 5; i++ {
		if err := put(cl.Node(0), fmt.Sprintf("pre-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	cl.Node(0).Kill()

	// Inside the fencing window nothing can lead.
	if _, ok := cl.Leader(p); ok {
		t.Fatal("leader reported live inside the lease fencing window")
	}
	if err := put(cl.Node(1), "too-early"); !errors.Is(err, ErrNotLeader) {
		t.Fatalf("follower accepted a write before the lease lapsed: %v", err)
	}

	// Advance past the lease: the survivors elect node 1 (longest log
	// ties break to the lowest live ID).
	p.Advance(3 * time.Second)
	id, ok := cl.Leader(p)
	if !ok || id != 1 {
		t.Fatalf("leader after failover = %d, %v; want 1, true", id, ok)
	}
	if cl.Term() != 2 {
		t.Fatalf("term = %d, want 2", cl.Term())
	}
	for i := 0; i < 5; i++ {
		if err := put(cl.Node(1), fmt.Sprintf("post-%d", i)); err != nil {
			t.Fatal(err)
		}
	}

	// No acked mutation may be lost on any live replica.
	for _, n := range []*Node{cl.Node(1), cl.Node(2)} {
		for _, id := range acked {
			if _, err := n.DB().GetRun(nil, id); err != nil {
				t.Fatalf("node %d lost acked run %q: %v", n.ID(), id, err)
			}
		}
	}

	// The dead broker's shards must have moved to survivors.
	for s, owner := range cl.Ring().Owners() {
		if owner == 0 {
			t.Fatalf("shard %d still owned by dead node 0", s)
		}
	}
}

// TestNoQuorumFailsClosed kills a majority: writes and elections must
// refuse rather than proceed on a minority.
func TestNoQuorumFailsClosed(t *testing.T) {
	cl, err := New(Config{Nodes: 3, Lease: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	p := newProc(t)
	cl.Node(1).Kill()
	cl.Node(2).Kill()
	if err := cl.Node(0).DB().PutRun(p, metadb.Run{ID: "minority"}); !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("minority leader acked a write: %v", err)
	}
	cl.Node(0).Kill()
	p.Advance(5 * time.Second)
	if _, ok := cl.Leader(p); ok {
		t.Fatal("a minority elected a leader")
	}
}

// TestDivergentReplicaFaultsClosed plants a conflicting entry on one
// follower (same term, same index, different bytes — bit-rot's
// signature) and expects the next append to fault that replica out
// while the remaining majority commits.
func TestDivergentReplicaFaultsClosed(t *testing.T) {
	cl, err := New(Config{Nodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	p := newProc(t)
	bad := cl.Node(2)
	next := bad.Log().LastIndex() + 1
	rot := Entry{Index: next, Term: cl.Term(), Frame: jsonFrameT(t, 0x7f, "planted")}
	if err := bad.Log().appendEntries([]Entry{rot}); err != nil {
		t.Fatal(err)
	}
	if err := cl.Node(0).DB().PutRun(p, metadb.Run{ID: "after-rot"}); err != nil {
		t.Fatalf("majority append failed: %v", err)
	}
	if !bad.Down() || !errors.Is(bad.Err(), ErrDiverged) {
		t.Fatalf("divergent replica not faulted: down=%v err=%v", bad.Down(), bad.Err())
	}
	for _, n := range []*Node{cl.Node(0), cl.Node(1)} {
		if _, err := n.DB().GetRun(nil, "after-rot"); err != nil {
			t.Fatalf("node %d missing committed run: %v", n.ID(), err)
		}
	}
}

// TestCorruptFrameRefused flips payload bits under the CRC: the log
// must refuse the entry outright.
func TestCorruptFrameRefused(t *testing.T) {
	frame := jsonFrameT(t, 0x01, "payload")
	frame[len(frame)-1] ^= 0xff
	var l Log
	if err := l.appendEntries([]Entry{{Index: 1, Term: 1, Frame: frame}}); !errors.Is(err, ErrDiverged) {
		t.Fatalf("corrupt frame accepted: %v", err)
	}
	if l.LastIndex() != 0 {
		t.Fatal("corrupt frame stored")
	}
}

// TestBudgetLeases checks the leader leases global budgets
// proportional to shard ownership, re-leases on failover, and fires
// the per-node hook.
func TestBudgetLeases(t *testing.T) {
	var hooked []Budgets
	cl, err := New(Config{Nodes: 3, Shards: 6, QueueBudget: 6 << 20, PlaceBudget: 12 << 20, Lease: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range cl.Nodes() {
		if b := n.Budget(); b.QueueBytes != 2<<20 || b.PlaceBytes != 4<<20 {
			t.Fatalf("node %d genesis lease = %+v, want 2MiB/4MiB", n.ID(), b)
		}
	}
	cl.Node(2).OnQuota(func(b Budgets) { hooked = append(hooked, b) })
	p := newProc(t)
	if err := cl.SetGlobalBudget(p, 12<<20, 0); err != nil {
		t.Fatal(err)
	}
	if b := cl.Node(2).Budget(); b.QueueBytes != 4<<20 {
		t.Fatalf("node 2 lease after SetGlobalBudget = %+v", b)
	}
	if len(hooked) == 0 {
		t.Fatal("quota hook never fired")
	}
	cl.Node(0).Kill()
	p.Advance(2 * time.Second)
	if _, ok := cl.Leader(p); !ok {
		t.Fatal("no leader after lease lapse")
	}
	// Node 0's two shards moved to the survivors, and its budget
	// share moved with them.
	var total int64
	for _, n := range []*Node{cl.Node(1), cl.Node(2)} {
		total += n.Budget().QueueBytes
	}
	if total != 12<<20 {
		t.Fatalf("survivor leases sum to %d, want the full 12MiB budget", total)
	}
}

// TestRejoinCatchesUp brings a killed node back through the
// metadb.Clone snapshot path and expects identical state.
func TestRejoinCatchesUp(t *testing.T) {
	cl, err := New(Config{Nodes: 3, Lease: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	p := newProc(t)
	cl.Node(2).Kill()
	for i := 0; i < 8; i++ {
		if err := cl.Node(0).DB().PutRun(p, metadb.Run{ID: fmt.Sprintf("while-away-%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.Node(2).Rejoin(p); err != nil {
		t.Fatal(err)
	}
	if got := len(cl.Node(2).DB().Runs(nil)); got != 8 {
		t.Fatalf("rejoined node holds %d runs, want 8", got)
	}
	if err := cl.Node(0).DB().PutRun(p, metadb.Run{ID: "after-rejoin"}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Node(2).DB().GetRun(nil, "after-rejoin"); err != nil {
		t.Fatalf("rejoined node missing post-rejoin commit: %v", err)
	}
	if err := cl.Rebalance(p); err != nil {
		t.Fatal(err)
	}
	owned := false
	for _, owner := range cl.Ring().Owners() {
		if owner == 2 {
			owned = true
		}
	}
	if !owned {
		t.Fatal("rebalance gave the rejoined node no shards")
	}
}

// TestRingEdgeCases covers the empty/zero ring and the single-broker
// degeneration.
func TestRingEdgeCases(t *testing.T) {
	if _, err := NewRing(0, 3); err == nil {
		t.Fatal("empty ring accepted")
	}
	if _, err := NewRing(4, 0); err == nil {
		t.Fatal("nodeless ring accepted")
	}
	var zero Ring
	if zero.Shard("/astro/run1/chunk") != 0 || zero.Owner(7) != 0 {
		t.Fatal("zero ring does not degenerate to node 0")
	}
	single, err := NewRing(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 8; s++ {
		if single.Owner(s) != 0 {
			t.Fatalf("single-broker ring shard %d owned by %d", s, single.Owner(s))
		}
	}
	if CollectionKey("/astro/run1/chunk0") != "astro" || CollectionKey("flat") != "flat" {
		t.Fatal("collection key extraction broken")
	}
	r3, err := NewRing(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	for s, owner := range r3.Owners() {
		if owner != s%3 {
			t.Fatalf("round-robin broken at shard %d: owner %d", s, owner)
		}
	}
}

// jsonFrameT builds a WAL-framed record for tests.
func jsonFrameT(t *testing.T, typ byte, v any) []byte {
	t.Helper()
	f, err := jsonFrame(typ, v)
	if err != nil {
		t.Fatal(err)
	}
	return f
}
