// Package cluster turns N srbd brokers into one logical broker.
//
// Three pieces, mirroring how production mass-storage catalogs scale
// past one name server (Consul's Raft storage-backend split is the
// architectural model):
//
//   - a deterministic, vtime-driven leader-lease + replicated-log
//     layer: metadb mutations commit through the leader's log (WAL
//     record framing, CRC32C-verified, fail-closed on divergence) and
//     apply to every live replica before the mutator is acked;
//   - a fixed shard map (Ring) hashing collections onto brokers, with
//     ownership changes carried only as replicated ring records;
//   - cluster-wide byte budgets: the leader owns the global QoS
//     admission budget and placement capacity and leases per-broker
//     slices through the same log.
//
// Replication here is in-process and synchronous — the deterministic
// transport a simulation wants.  The seam for a networked control
// plane is the Node surface: everything a remote peer would need
// (appendEntries, the lease view, snapshot adoption) already flows
// through it.
package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/metadb"
	"repro/internal/vtime"
	"repro/internal/wal"
)

var (
	// ErrNotLeader marks a mutation offered to a broker that does not
	// hold the lease; see NotLeaderError for the redirect target.
	ErrNotLeader = errors.New("cluster: not leader")
	// ErrNoQuorum marks an append or election that fewer than a
	// majority of brokers could participate in.
	ErrNoQuorum = errors.New("cluster: no quorum")
	// ErrDown marks an operation against a dead broker.
	ErrDown = errors.New("cluster: node is down")
)

// NotLeaderError refuses a mutation at a follower, naming the broker
// believed to hold the lease (-1 when no live leader is known).
type NotLeaderError struct{ Leader int }

func (e *NotLeaderError) Error() string {
	if e.Leader < 0 {
		return "cluster: not leader (no live leader)"
	}
	return fmt.Sprintf("cluster: not leader (leader is node %d)", e.Leader)
}

func (e *NotLeaderError) Unwrap() error { return ErrNotLeader }

// DefaultLease is the leader lease in virtual time: after a leader
// dies, no failover happens until its lease has lapsed — the fencing
// window during which its shards are simply unavailable.
const DefaultLease = 2 * time.Second

// Config sizes a cluster.
type Config struct {
	// Nodes is the broker count.
	Nodes int
	// Shards is the namespace shard count (default: Nodes).
	Shards int
	// Lease is the leader lease duration in virtual time (default
	// DefaultLease).
	Lease time.Duration
	// QueueBudget and PlaceBudget are the cluster-wide byte budgets
	// the leader leases out per broker: the global QoS admission
	// budget and the global placement staging capacity.  Zero means
	// unlimited (no leases are published for that budget).
	QueueBudget int64
	PlaceBudget int64
	// DBs optionally provides pre-opened (e.g. journal-backed) metadb
	// replicas, one per node.  Default: fresh in-memory replicas.
	DBs []*metadb.DB
}

// Cluster binds N broker nodes into one logical broker with a single
// replicated metadata history.
type Cluster struct {
	// mu serializes every control-plane transition: appends,
	// elections, rejoins, routing decisions.  Callers hold no metadb
	// lock when entering (metadb guarantees this for Replicate), so
	// committed entries can be applied to any replica under mu.
	mu         sync.Mutex
	cfg        Config
	nodes      []*Node
	addrs      []string
	ring       Ring
	term       uint64
	leader     int
	leaseUntil time.Duration
	now        time.Duration
}

// New builds a cluster.  Node 0 starts as leader of term 1, and the
// genesis configuration — the initial shard map and budget leases —
// is itself committed through the log, so replica 0's first entries
// already tell the whole story of who owns what.
func New(cfg Config) (*Cluster, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("cluster: need at least one node (got %d)", cfg.Nodes)
	}
	if cfg.Shards == 0 {
		cfg.Shards = cfg.Nodes
	}
	if cfg.Lease <= 0 {
		cfg.Lease = DefaultLease
	}
	if cfg.DBs != nil && len(cfg.DBs) != cfg.Nodes {
		return nil, fmt.Errorf("cluster: %d DBs for %d nodes", len(cfg.DBs), cfg.Nodes)
	}
	ring, err := NewRing(cfg.Shards, cfg.Nodes)
	if err != nil {
		return nil, err
	}
	cl := &Cluster{cfg: cfg, ring: Ring{}, term: 1, leader: 0, leaseUntil: cfg.Lease}
	for i := 0; i < cfg.Nodes; i++ {
		db := metadb.New()
		if cfg.DBs != nil {
			db = cfg.DBs[i]
		}
		n := &Node{cl: cl, id: i, db: db, log: &Log{}}
		db.SetReplicator(n)
		cl.nodes = append(cl.nodes, n)
	}
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if err := cl.reconfigureLocked(ring); err != nil {
		return nil, err
	}
	return cl, nil
}

// SetAddrs installs the broker data-plane addresses, index-aligned
// with node IDs, so Route can name the owner of a foreign shard.
func (cl *Cluster) SetAddrs(addrs []string) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	cl.addrs = append([]string(nil), addrs...)
}

// Node returns broker i.
func (cl *Cluster) Node(i int) *Node { return cl.nodes[i] }

// Nodes returns all brokers.
func (cl *Cluster) Nodes() []*Node { return append([]*Node(nil), cl.nodes...) }

// Quorum returns the majority size.
func (cl *Cluster) Quorum() int { return len(cl.nodes)/2 + 1 }

// Term returns the current leadership term.
func (cl *Cluster) Term() uint64 {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.term
}

// Ring returns the committed shard map.
func (cl *Cluster) Ring() Ring {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.ring
}

// Leader observes p's clock, runs any due election, and returns the
// live leader's ID.  ok is false while a dead leader's lease has not
// lapsed yet or no quorum survives — the caller should advance its
// clock (e.g. a resilient backoff) and retry.
func (cl *Cluster) Leader(p *vtime.Proc) (id int, ok bool) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	cl.observeProcLocked(p)
	cl.stepLocked()
	if cl.nodes[cl.leader].Down() {
		return -1, false
	}
	return cl.leader, true
}

// SetGlobalBudget replaces the cluster-wide byte budgets and leases
// the new per-broker slices through the log.
func (cl *Cluster) SetGlobalBudget(p *vtime.Proc, queueBytes, placeBytes int64) error {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	cl.observeProcLocked(p)
	cl.stepLocked()
	if cl.nodes[cl.leader].Down() {
		return fmt.Errorf("%w: no live leader", ErrNoQuorum)
	}
	cl.cfg.QueueBudget, cl.cfg.PlaceBudget = queueBytes, placeBytes
	frame, err := quotaFrame(budgetsFor(cl.ring, cl.cfg))
	if err != nil {
		return err
	}
	return cl.appendLocked([][]byte{frame})
}

// Rebalance reassigns the shard map evenly over the live brokers (the
// explicit admin move after a rejoin) and re-leases budgets to match.
func (cl *Cluster) Rebalance(p *vtime.Proc) error {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	cl.observeProcLocked(p)
	cl.stepLocked()
	if cl.nodes[cl.leader].Down() {
		return fmt.Errorf("%w: no live leader", ErrNoQuorum)
	}
	live := cl.liveIDsLocked()
	owners := make([]int, cl.ring.Shards())
	for s := range owners {
		owners[s] = live[s%len(live)]
	}
	return cl.reconfigureLocked(ringFromOwners(owners))
}

// rejoin brings a dead node back: it adopts a deep-copy snapshot of
// the leader's replica (metadb.Clone) plus the leader's log, then goes
// live as a follower.  Its previous shards do not move back
// automatically — Rebalance does that.
func (cl *Cluster) rejoin(n *Node, p *vtime.Proc) error {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	cl.observeProcLocked(p)
	cl.stepLocked()
	lead := cl.nodes[cl.leader]
	if lead.Down() {
		return fmt.Errorf("%w: no live leader to catch up from", ErrNoQuorum)
	}
	if lead == n {
		return fmt.Errorf("cluster: node %d cannot catch up from itself", n.id)
	}
	n.db.CopyFrom(lead.db)
	n.log.adopt(lead.log)
	n.mu.Lock()
	n.down, n.faultErr = false, nil
	n.ring = cl.ring
	n.mu.Unlock()
	return nil
}

// Rejoin is the node-side handle for rejoin.
func (n *Node) Rejoin(p *vtime.Proc) error { return n.cl.rejoin(n, p) }

// ------------------------------------------------------------------
// Internals.  Everything below runs with cl.mu held.

// observeLocked advances the cluster's virtual high-water clock.
func (cl *Cluster) observeLocked(now time.Duration) {
	if now > cl.now {
		cl.now = now
	}
}

// observeProcLocked observes a proc's clock (nil-safe).
func (cl *Cluster) observeProcLocked(p *vtime.Proc) {
	if p != nil {
		cl.observeLocked(p.Now())
	}
}

// leaderIDLocked returns the leader's ID, or -1 if it is down.
func (cl *Cluster) leaderIDLocked() int {
	if cl.nodes[cl.leader].Down() {
		return -1
	}
	return cl.leader
}

// liveIDsLocked returns the IDs of the live nodes, ascending.
func (cl *Cluster) liveIDsLocked() []int {
	var out []int
	for _, n := range cl.nodes {
		if !n.Down() {
			out = append(out, n.id)
		}
	}
	return out
}

// addrLocked maps a node ID to its data-plane address.
func (cl *Cluster) addrLocked(id int) string {
	if id >= 0 && id < len(cl.addrs) {
		return cl.addrs[id]
	}
	return fmt.Sprintf("node-%d", id)
}

// stepLocked is the lease clock tick: a live leader renews in place; a
// dead leader keeps its lease until it lapses (the fencing window),
// after which the live majority elects the survivor with the longest
// log (ties to the lowest ID) and moves the dead brokers' shards —
// through the log, like every other ownership change.  A live leader
// is never deposed: that invariant is what makes "exactly one broker
// believes it leads" a structural property rather than a race.
func (cl *Cluster) stepLocked() {
	if !cl.nodes[cl.leader].Down() {
		if cl.now >= cl.leaseUntil {
			cl.leaseUntil = cl.now + cl.cfg.Lease
		}
		return
	}
	if cl.now < cl.leaseUntil {
		return
	}
	live := cl.liveIDsLocked()
	if len(live) < cl.Quorum() {
		return
	}
	win, best := -1, uint64(0)
	for _, id := range live {
		if li := cl.nodes[id].log.LastIndex(); win < 0 || li > best {
			win, best = id, li
		}
	}
	cl.term++
	cl.leader = win
	cl.leaseUntil = cl.now + cl.cfg.Lease
	// Reassign the dead brokers' shards round-robin over the
	// survivors; budgets follow the shards.
	owners := cl.ring.Owners()
	next := 0
	for s, owner := range owners {
		if cl.nodes[owner].Down() {
			owners[s] = live[next%len(live)]
			next++
		}
	}
	// Config commit failure here means quorum collapsed mid-election;
	// the lease stands and the next step retries the reassignment.
	_ = cl.reconfigureLocked(ringFromOwners(owners))
}

// reconfigureLocked commits a new shard map and the matching budget
// leases through the log.
func (cl *Cluster) reconfigureLocked(ring Ring) error {
	rf, err := jsonFrame(recRing, ringRecord{Owners: ring.Owners()})
	if err != nil {
		return err
	}
	frames := [][]byte{rf}
	if cl.cfg.QueueBudget > 0 || cl.cfg.PlaceBudget > 0 {
		qf, err := quotaFrame(budgetsFor(ring, cl.cfg))
		if err != nil {
			return err
		}
		frames = append(frames, qf)
	}
	if err := cl.appendLocked(frames); err != nil {
		return err
	}
	cl.ring = ring
	return nil
}

// appendLocked replicates frames as new log entries from the current
// leader: offer to every live replica, commit on majority, apply to
// every replica that took them, and renew the lease.  A replica that
// refuses an entry (divergent CRC, conflicting history) or fails to
// apply one faults out of the cluster — fail-closed.  Without a
// majority the batch is rolled back everywhere and the mutation is
// not acked.
func (cl *Cluster) appendLocked(frames [][]byte) error {
	lead := cl.nodes[cl.leader]
	start := lead.log.LastIndex()
	entries := make([]Entry, len(frames))
	for i, f := range frames {
		entries[i] = Entry{Index: start + uint64(i) + 1, Term: cl.term, Frame: f}
	}
	var acked []*Node
	for _, n := range cl.nodes {
		if n.Down() {
			continue
		}
		if err := n.log.appendEntries(entries); err != nil {
			n.fault(err)
			continue
		}
		acked = append(acked, n)
	}
	if len(acked) < cl.Quorum() {
		for _, n := range acked {
			n.log.truncateFrom(start + 1)
		}
		return fmt.Errorf("%w: %d/%d replicas accepted the batch", ErrNoQuorum, len(acked), len(cl.nodes))
	}
	commit := start + uint64(len(entries))
	for _, n := range acked {
		n.log.setCommit(commit)
		if err := n.applyCommitted(); err != nil {
			n.fault(err)
		}
	}
	cl.leaseUntil = cl.now + cl.cfg.Lease
	return nil
}

// jsonFrame builds one WAL-framed log record from a JSON payload.
func jsonFrame(typ byte, v any) ([]byte, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("cluster: encode record %#x: %w", typ, err)
	}
	return wal.EncodeRecord(typ, data), nil
}

// quotaFrame builds the budget-lease record.
func quotaFrame(bs []Budgets) ([]byte, error) { return jsonFrame(recQuota, bs) }

// budgetsFor splits the global budgets over brokers proportional to
// the shards each one owns.
func budgetsFor(ring Ring, cfg Config) []Budgets {
	counts := make(map[int]int)
	for _, owner := range ring.Owners() {
		counts[owner]++
	}
	shards := ring.Shards()
	out := make([]Budgets, 0, cfg.Nodes)
	for id := 0; id < cfg.Nodes; id++ {
		c := counts[id]
		out = append(out, Budgets{
			Node:       id,
			QueueBytes: cfg.QueueBudget * int64(c) / int64(shards),
			PlaceBytes: cfg.PlaceBudget * int64(c) / int64(shards),
		})
	}
	return out
}
