// Namespace sharding.  The cluster splits the SRB namespace by
// collection (the first path component): each collection hashes onto a
// fixed shard map and each shard is owned by exactly one broker.
// Ownership changes only by applying a replicated ring record, so
// every broker's view of the map moves through the same log that
// carries the metadata it guards.
package cluster

import (
	"fmt"
	"hash/fnv"
	"strings"
)

// Ring is the fixed shard map: shard s of Shards() is owned by broker
// Owner(s).  The zero Ring is unsharded — every path maps to shard 0
// owned by node 0 — which is exactly what a single-broker deployment
// degenerates to.  Ring values are immutable; reassignment builds a
// new value via WithOwners.
type Ring struct {
	owners []int
}

// NewRing builds the initial shard map, shards assigned round-robin
// over nodes (shard s → node s mod nodes).  The srbnet client's
// WithCluster option assumes this same assignment for its cold
// redirect cache, so the two sides agree before any redirect flows.
func NewRing(shards, nodes int) (Ring, error) {
	if shards <= 0 {
		return Ring{}, fmt.Errorf("cluster: ring needs at least one shard (got %d)", shards)
	}
	if nodes <= 0 {
		return Ring{}, fmt.Errorf("cluster: ring needs at least one node (got %d)", nodes)
	}
	owners := make([]int, shards)
	for s := range owners {
		owners[s] = s % nodes
	}
	return Ring{owners: owners}, nil
}

// ringFromOwners adopts a decoded shard→owner table.
func ringFromOwners(owners []int) Ring {
	return Ring{owners: append([]int(nil), owners...)}
}

// Shards returns the shard count; 0 for the zero (unsharded) Ring.
func (r Ring) Shards() int { return len(r.owners) }

// Owner returns the node owning shard s.  The zero Ring owns
// everything at node 0.
func (r Ring) Owner(s int) int {
	if len(r.owners) == 0 {
		return 0
	}
	return r.owners[((s%len(r.owners))+len(r.owners))%len(r.owners)]
}

// Owners returns a copy of the shard→node table.
func (r Ring) Owners() []int { return append([]int(nil), r.owners...) }

// WithOwners returns a ring with the given shard→node table.
func (r Ring) WithOwners(owners []int) Ring { return ringFromOwners(owners) }

// Shard maps a path to its shard by hashing its collection key.
func (r Ring) Shard(path string) int {
	if len(r.owners) == 0 {
		return 0
	}
	return ShardOf(CollectionKey(path), len(r.owners))
}

// CollectionKey is the sharding unit: the first path component — the
// SRB collection — so a whole collection lands on one broker and
// within-collection operations never cross shards.
func CollectionKey(path string) string {
	path = strings.TrimLeft(path, "/")
	if i := strings.IndexByte(path, '/'); i >= 0 {
		return path[:i]
	}
	return path
}

// ShardOf hashes one collection key onto nshards buckets with FNV-1a,
// which is stable across processes so client and broker always agree.
func ShardOf(key string, nshards int) int {
	if nshards <= 0 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(nshards))
}
