package sieve

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/device"
	"repro/internal/memfs"
	"repro/internal/model"
	"repro/internal/pattern"
	"repro/internal/storage"
	"repro/internal/vtime"
)

func newHandle(t *testing.T, params model.Params, contents []byte) (storage.Handle, *vtime.Proc) {
	t.Helper()
	be, err := device.New(device.Config{Name: "b", Params: params, Store: memfs.New()})
	if err != nil {
		t.Fatal(err)
	}
	p := vtime.NewVirtual().NewProc("p")
	sess, err := be.Connect(p)
	if err != nil {
		t.Fatal(err)
	}
	h, err := sess.Open(p, "f", storage.ModeCreate)
	if err != nil {
		t.Fatal(err)
	}
	if len(contents) > 0 {
		if _, err := h.WriteAt(p, contents, 0); err != nil {
			t.Fatal(err)
		}
	}
	return h, p
}

func TestReadPacksRuns(t *testing.T) {
	contents := []byte("0123456789abcdef")
	h, p := newHandle(t, model.Memory(), contents)
	runs := []pattern.Run{{Off: 2, Len: 3}, {Off: 8, Len: 2}, {Off: 14, Len: 2}}
	dst := make([]byte, 7)
	if err := Read(p, h, runs, dst); err != nil {
		t.Fatal(err)
	}
	if string(dst) != "23489ef" {
		t.Fatalf("sieved read = %q", dst)
	}
}

func TestWriteScattersRuns(t *testing.T) {
	contents := []byte("0123456789abcdef")
	h, p := newHandle(t, model.Memory(), contents)
	runs := []pattern.Run{{Off: 1, Len: 2}, {Off: 10, Len: 3}}
	if err := Write(p, h, runs, []byte("XYabc")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(contents))
	if _, err := h.ReadAt(p, got, 0); err != nil {
		t.Fatal(err)
	}
	want := []byte("0123456789abcdef")
	want[1], want[2] = 'X', 'Y'
	copy(want[10:13], "abc")
	if !bytes.Equal(got, want) {
		t.Fatalf("sieved write = %q, want %q", got, want)
	}
}

func TestWritePreservesUntouchedBytes(t *testing.T) {
	contents := bytes.Repeat([]byte{0xAA}, 64)
	h, p := newHandle(t, model.Memory(), contents)
	runs := []pattern.Run{{Off: 8, Len: 4}, {Off: 40, Len: 4}}
	if err := Write(p, h, runs, bytes.Repeat([]byte{0xBB}, 8)); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 64)
	h.ReadAt(p, got, 0)
	for i, b := range got {
		want := byte(0xAA)
		if (i >= 8 && i < 12) || (i >= 40 && i < 44) {
			want = 0xBB
		}
		if b != want {
			t.Fatalf("byte %d = %#x, want %#x", i, b, want)
		}
	}
}

func TestWriteBeyondEOFSkipsRMWRead(t *testing.T) {
	params := model.Params{Name: "m", PerCallRead: time.Hour, PerCallWrite: time.Millisecond}
	h, p := newHandle(t, params, nil)
	runs := []pattern.Run{{Off: 0, Len: 4}, {Off: 8, Len: 4}}
	before := p.Now()
	if err := Write(p, h, runs, make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	if p.Now()-before >= time.Hour {
		t.Fatal("RMW read issued for extent wholly beyond EOF")
	}
}

func TestCallCountReduction(t *testing.T) {
	// 100 runs: sieving must charge ~2 native calls instead of 100.
	params := model.Params{Name: "m", PerCallRead: time.Second, PerCallWrite: time.Second}
	var runs []pattern.Run
	for i := 0; i < 100; i++ {
		runs = append(runs, pattern.Run{Off: int64(i * 10), Len: 4})
	}
	src := make([]byte, 400)
	h, p := newHandle(t, params, make([]byte, 1000))
	before := p.Now()
	if err := Write(p, h, runs, src); err != nil {
		t.Fatal(err)
	}
	cost := p.Now() - before
	if cost > 3*time.Second {
		t.Fatalf("sieved write charged %v, want ≈2 native calls", cost)
	}
	dst := make([]byte, 400)
	before = p.Now()
	if err := Read(p, h, runs, dst); err != nil {
		t.Fatal(err)
	}
	if cost := p.Now() - before; cost > 2*time.Second {
		t.Fatalf("sieved read charged %v, want ≈1 native call", cost)
	}
}

func TestSizeValidation(t *testing.T) {
	h, p := newHandle(t, model.Memory(), []byte("abcd"))
	runs := []pattern.Run{{Off: 0, Len: 4}}
	if err := Read(p, h, runs, make([]byte, 3)); err == nil {
		t.Fatal("short dst accepted")
	}
	if err := Write(p, h, runs, make([]byte, 5)); err == nil {
		t.Fatal("long src accepted")
	}
	if err := Read(p, h, nil, nil); err != nil {
		t.Fatalf("empty runs read = %v", err)
	}
	if err := Write(p, h, nil, nil); err != nil {
		t.Fatalf("empty runs write = %v", err)
	}
}

// Property: sieved write then sieved read round-trips for arbitrary
// disjoint sorted runs derived from a pattern decomposition.
func TestQuickSieveRoundTrip(t *testing.T) {
	f := func(seed uint8, g uint8) bool {
		dims := []int{8, 10}
		grid := pattern.Grid{1, int(g%5) + 1}
		if grid[1] > dims[1] {
			return true
		}
		pat := pattern.Pattern{pattern.All, pattern.Block}
		sets, err := pattern.IndexSets(dims, pat, grid, grid.Procs()-1)
		if err != nil {
			return false
		}
		runs := pattern.FileRuns(dims, 1, sets)
		src := make([]byte, 0)
		for _, r := range runs {
			for j := int64(0); j < r.Len; j++ {
				src = append(src, byte(r.Off+j)^seed)
			}
		}
		be, err := device.New(device.Config{Name: "b", Params: model.Memory(), Store: memfs.New()})
		if err != nil {
			return false
		}
		p := vtime.NewVirtual().NewProc("p")
		sess, _ := be.Connect(p)
		h, err := sess.Open(p, "f", storage.ModeCreate)
		if err != nil {
			return false
		}
		if err := Write(p, h, runs, src); err != nil {
			return false
		}
		dst := make([]byte, len(src))
		if err := Read(p, h, runs, dst); err != nil {
			return false
		}
		return bytes.Equal(src, dst)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
