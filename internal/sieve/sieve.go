// Package sieve implements data sieving, the run-time library
// optimization for strided access: instead of one native call per file
// run, a single large call covers the whole extent and the wanted bytes
// are copied in memory.  Writes are read-modify-write over the covering
// extent, which trades bandwidth for call count — exactly the trade-off
// that pays off on high-latency storage.
package sieve

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/pattern"
	"repro/internal/storage"
	"repro/internal/vtime"
)

// extent returns the covering byte range of the runs.
func extent(runs []pattern.Run) (lo, hi int64) {
	if len(runs) == 0 {
		return 0, 0
	}
	lo, hi = runs[0].Off, runs[0].End()
	for _, r := range runs[1:] {
		if r.Off < lo {
			lo = r.Off
		}
		if r.End() > hi {
			hi = r.End()
		}
	}
	return lo, hi
}

func packedLen(runs []pattern.Run) int64 {
	var n int64
	for _, r := range runs {
		n += r.Len
	}
	return n
}

// Read fills dst (packed run order) using one covering native read.
func Read(p *vtime.Proc, h storage.Handle, runs []pattern.Run, dst []byte) error {
	need := packedLen(runs)
	if int64(len(dst)) != need {
		return fmt.Errorf("sieve read: dst is %d bytes, runs pack to %d", len(dst), need)
	}
	if need == 0 {
		return nil
	}
	lo, hi := extent(runs)
	scratch := make([]byte, hi-lo)
	if _, err := h.ReadAt(p, scratch, lo); err != nil && !errors.Is(err, io.EOF) {
		return fmt.Errorf("sieve read: %w", err)
	}
	var pos int64
	for _, r := range runs {
		copy(dst[pos:pos+r.Len], scratch[r.Off-lo:r.End()-lo])
		pos += r.Len
	}
	return nil
}

// Write stores src (packed run order) using a read-modify-write of the
// covering extent: one native read (skipped when the extent lies wholly
// beyond the current end of file) and one native write.
//
// Concurrent sieved writes to overlapping extents race just as they do
// in real data sieving without file locking: the pattern layer's
// decompositions are disjoint by construction, but covering extents may
// interleave, so parallel writers of interleaved patterns must serialize
// or use collective I/O instead.
func Write(p *vtime.Proc, h storage.Handle, runs []pattern.Run, src []byte) error {
	need := packedLen(runs)
	if int64(len(src)) != need {
		return fmt.Errorf("sieve write: src is %d bytes, runs pack to %d", len(src), need)
	}
	if need == 0 {
		return nil
	}
	lo, hi := extent(runs)
	scratch := make([]byte, hi-lo)
	if lo < h.Size() {
		if _, err := h.ReadAt(p, scratch, lo); err != nil && !errors.Is(err, io.EOF) {
			return fmt.Errorf("sieve write (rmw read): %w", err)
		}
	}
	var pos int64
	for _, r := range runs {
		copy(scratch[r.Off-lo:r.End()-lo], src[pos:pos+r.Len])
		pos += r.Len
	}
	if _, err := h.WriteAt(p, scratch, lo); err != nil {
		return fmt.Errorf("sieve write: %w", err)
	}
	return nil
}
