// Package faultfs is an in-memory filesystem that can die.  It
// implements both vfs.FS (the journal/snapshot seam of internal/wal
// and internal/metadb) and storage.Store (the raw byte layer beneath
// storage backends, e.g. the staging cache), with one shared failure
// model:
//
//   - Every mutating operation (write, fsync, truncate, create,
//     rename, remove, directory sync) is numbered.  SetCrash arms a
//     crash at the Nth next operation: that operation and everything
//     after it fail with ErrCrashed, simulating the process dying
//     mid-run.
//   - The filesystem tracks durability exactly as strict POSIX
//     permits: file contents survive a crash only up to the last
//     File.Sync, and directory entries (creates, renames, removes)
//     only up to the last SyncDir on their parent.
//   - Recover produces the post-crash image under a chosen CrashMode:
//     DropUnsynced keeps only fsync-guaranteed state, KeepUnsynced
//     keeps everything the process ever wrote (the lucky crash), and
//     TornWrites keeps a sector-aligned prefix of each file's
//     un-fsynced tail with the final sector possibly scrambled — the
//     adversarial page-cache writeback schedule.
//
// Recovery code proven correct against all three modes at every crash
// point is correct against anything a real disk can do within the
// POSIX contract.
package faultfs

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"path"
	"sort"
	"strings"
	"sync"

	"repro/internal/storage"
	"repro/internal/vfs"
)

// ErrCrashed is returned by every operation at and after the armed
// crash point.
var ErrCrashed = errors.New("faultfs: simulated crash")

// CrashMode selects what un-fsynced state survives Recover.
type CrashMode int

const (
	// DropUnsynced keeps only what fsync barriers guaranteed: durable
	// file contents and durable directory entries.
	DropUnsynced CrashMode = iota
	// KeepUnsynced keeps the full volatile state — the crash where the
	// page cache had flushed everything.
	KeepUnsynced
	// TornWrites keeps durable directory entries, and file contents up
	// to a sector-aligned cut somewhere inside the un-fsynced tail,
	// with bytes of the last surviving sector possibly scrambled.
	TornWrites
)

func (m CrashMode) String() string {
	switch m {
	case DropUnsynced:
		return "drop-unsynced"
	case KeepUnsynced:
		return "keep-unsynced"
	case TornWrites:
		return "torn-writes"
	default:
		return fmt.Sprintf("CrashMode(%d)", int(m))
	}
}

// Modes lists every crash mode, for matrix-style tests.
func Modes() []CrashMode { return []CrashMode{DropUnsynced, KeepUnsynced, TornWrites} }

// SectorSize is the torn-write granularity.
const SectorSize = 512

// inode is one file's content with its durability shadow.
type inode struct {
	data    []byte // volatile (visible) content
	durable []byte // content as of the last Sync; nil and synced=false if never synced
	synced  bool
	// unsyncedLow is the lowest offset modified since the last Sync
	// (len(data) when nothing is pending).
	unsyncedLow int64
}

func newInode() *inode { return &inode{} }

func (ino *inode) markWrite(off int64) {
	if off < ino.unsyncedLow {
		ino.unsyncedLow = off
	}
}

func (ino *inode) sync() {
	ino.durable = append([]byte(nil), ino.data...)
	ino.synced = true
	ino.unsyncedLow = int64(len(ino.data))
}

// FS is the fault-injecting filesystem.  The zero value is not usable;
// call New.
type FS struct {
	mu  sync.Mutex
	vol map[string]*inode // visible namespace
	dur map[string]*inode // namespace as of the last SyncDir per parent

	ops     int // mutating operations performed
	crashAt int // crash when ops reaches this value (0 = disarmed)
	crashed bool
}

// New returns an empty filesystem with no crash armed.
func New() *FS {
	return &FS{vol: make(map[string]*inode), dur: make(map[string]*inode)}
}

var (
	_ vfs.FS        = (*FS)(nil)
	_ storage.Store = (*Store)(nil)
)

// SetCrash arms a crash at the n-th mutating operation from now
// (n >= 1).  n <= 0 disarms.
func (f *FS) SetCrash(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if n <= 0 {
		f.crashAt = 0
		return
	}
	f.crashAt = f.ops + n
}

// Ops returns the number of mutating operations performed so far.
func (f *FS) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Crashed reports whether the armed crash has fired.
func (f *FS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// step counts one mutating operation and fires the armed crash.  It
// must be called with f.mu held; a true return means the caller must
// fail with ErrCrashed without performing the operation.
func (f *FS) step() bool {
	if f.crashed {
		return true
	}
	f.ops++
	if f.crashAt > 0 && f.ops >= f.crashAt {
		f.crashed = true
		return true
	}
	return false
}

// alive returns ErrCrashed once the crash has fired (the process is
// dead; even reads fail).
func (f *FS) alive() error {
	if f.crashed {
		return ErrCrashed
	}
	return nil
}

// Recover builds the post-crash filesystem image under the given mode.
// The receiver is left untouched; the returned FS is fresh, with no
// crash armed.  seed drives the torn-write cut points deterministically.
func (f *FS) Recover(mode CrashMode, seed int64) *FS {
	f.mu.Lock()
	defer f.mu.Unlock()
	rng := rand.New(rand.NewSource(seed))
	out := New()
	names := func(m map[string]*inode) []string {
		ns := make([]string, 0, len(m))
		for n := range m {
			ns = append(ns, n)
		}
		sort.Strings(ns) // deterministic rng consumption order
		return ns
	}
	switch mode {
	case KeepUnsynced:
		for _, name := range names(f.vol) {
			ino := f.vol[name]
			out.vol[name] = &inode{data: append([]byte(nil), ino.data...)}
		}
	case DropUnsynced:
		for _, name := range names(f.dur) {
			ino := f.dur[name]
			var data []byte
			if ino.synced {
				data = append([]byte(nil), ino.durable...)
			}
			out.vol[name] = &inode{data: data}
		}
	case TornWrites:
		for _, name := range names(f.dur) {
			ino := f.dur[name]
			out.vol[name] = &inode{data: tornContent(ino, rng)}
		}
	}
	// Everything that survived the crash is durable in the new image.
	for name, ino := range out.vol {
		ino.sync()
		out.dur[name] = ino
	}
	return out
}

// tornContent returns the crash-surviving bytes of one inode: durable
// content plus a sector-aligned prefix of the un-fsynced tail, with the
// final surviving sector sometimes scrambled.
func tornContent(ino *inode, rng *rand.Rand) []byte {
	lo := ino.unsyncedLow
	if lo > int64(len(ino.data)) {
		lo = int64(len(ino.data))
	}
	if !ino.synced && lo > 0 {
		// Never-synced files have no guaranteed prefix at all.
		lo = 0
	}
	pending := int64(len(ino.data)) - lo
	if pending <= 0 {
		if ino.synced {
			return append([]byte(nil), ino.durable...)
		}
		return append([]byte(nil), ino.data...)
	}
	// Cut somewhere in [lo, len(data)], rounded down to a sector
	// boundary relative to the file start.
	cut := lo + rng.Int63n(pending+1)
	cut -= cut % SectorSize
	if cut < lo {
		cut = lo
	}
	data := append([]byte(nil), ino.data[:cut]...)
	// The sector straddling the cut may contain garbage: scramble a
	// random run of bytes inside the last un-fsynced sector.
	if cut > lo && rng.Intn(2) == 0 {
		start := cut - SectorSize
		if start < lo {
			start = lo
		}
		for i := start; i < cut; i++ {
			data[i] = byte(rng.Intn(256))
		}
	}
	return data
}

func cleanName(name string) string {
	return strings.TrimPrefix(path.Clean("/"+name), "/")
}

// ------------------------------------------------------------------
// vfs.FS implementation.

// Create implements vfs.FS: a fresh inode replaces any existing entry;
// the directory entry is volatile until SyncDir.
func (f *FS) Create(name string) (vfs.File, error) {
	name = cleanName(name)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.step() {
		return nil, fmt.Errorf("create %q: %w", name, ErrCrashed)
	}
	ino := newInode()
	f.vol[name] = ino
	return &vfile{fs: f, ino: ino, name: name}, nil
}

// Append implements vfs.FS.
func (f *FS) Append(name string) (vfs.File, error) {
	name = cleanName(name)
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.alive(); err != nil {
		return nil, err
	}
	ino, ok := f.vol[name]
	if !ok {
		if f.step() {
			return nil, fmt.Errorf("append %q: %w", name, ErrCrashed)
		}
		ino = newInode()
		f.vol[name] = ino
	}
	return &vfile{fs: f, ino: ino, name: name}, nil
}

// Open implements vfs.FS.
func (f *FS) Open(name string) (vfs.File, error) {
	name = cleanName(name)
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.alive(); err != nil {
		return nil, err
	}
	ino, ok := f.vol[name]
	if !ok {
		return nil, fmt.Errorf("faultfs open %q: %w", name, vfs.ErrNotExist)
	}
	return &vfile{fs: f, ino: ino, name: name, ro: true}, nil
}

// Rename implements vfs.FS (volatile until SyncDir).
func (f *FS) Rename(oldname, newname string) error {
	oldname, newname = cleanName(oldname), cleanName(newname)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.step() {
		return fmt.Errorf("rename %q: %w", oldname, ErrCrashed)
	}
	ino, ok := f.vol[oldname]
	if !ok {
		return fmt.Errorf("faultfs rename %q: %w", oldname, vfs.ErrNotExist)
	}
	f.vol[newname] = ino
	delete(f.vol, oldname)
	return nil
}

// Remove implements vfs.FS and storage.Store (volatile until SyncDir).
func (f *FS) Remove(name string) error {
	name = cleanName(name)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.step() {
		return fmt.Errorf("remove %q: %w", name, ErrCrashed)
	}
	if _, ok := f.vol[name]; !ok {
		// Both interface families funnel through here; satisfy each
		// sentinel convention.
		return fmt.Errorf("faultfs remove %q: %w", name, errors.Join(vfs.ErrNotExist, storage.ErrNotExist))
	}
	delete(f.vol, name)
	return nil
}

// MkdirAll implements vfs.FS (directories are implicit).
func (f *FS) MkdirAll(dir string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.alive()
}

// List implements vfs.FS: base names of files directly inside dir.
func (f *FS) List(dir string) ([]string, error) {
	dir = cleanName(dir)
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.alive(); err != nil {
		return nil, err
	}
	var out []string
	for name := range f.vol {
		if path.Dir(name) == dir || (dir == "" && path.Dir(name) == ".") {
			out = append(out, path.Base(name))
		}
	}
	sort.Strings(out)
	return out, nil
}

// SyncDir implements vfs.FS: dir's volatile entries (creates, renames,
// removes) become durable.
func (f *FS) SyncDir(dir string) error {
	dir = cleanName(dir)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.step() {
		return fmt.Errorf("syncdir %q: %w", dir, ErrCrashed)
	}
	inDir := func(name string) bool {
		return path.Dir(name) == dir || (dir == "" && path.Dir(name) == ".")
	}
	for name, ino := range f.vol {
		if inDir(name) {
			f.dur[name] = ino
		}
	}
	for name := range f.dur {
		if inDir(name) {
			if _, ok := f.vol[name]; !ok {
				delete(f.dur, name)
			}
		}
	}
	return nil
}

// Stat implements vfs.FS.
func (f *FS) Stat(name string) (int64, error) {
	name = cleanName(name)
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.alive(); err != nil {
		return 0, err
	}
	ino, ok := f.vol[name]
	if !ok {
		return 0, fmt.Errorf("faultfs stat %q: %w", name, vfs.ErrNotExist)
	}
	return int64(len(ino.data)), nil
}

// vfile is an open vfs.File: Write appends, mirroring O_APPEND.
type vfile struct {
	fs   *FS
	ino  *inode
	name string
	ro   bool
}

func (v *vfile) Write(b []byte) (int, error) {
	v.fs.mu.Lock()
	defer v.fs.mu.Unlock()
	if v.ro {
		return 0, fmt.Errorf("faultfs write %q: read-only", v.name)
	}
	if v.fs.step() {
		return 0, fmt.Errorf("write %q: %w", v.name, ErrCrashed)
	}
	off := int64(len(v.ino.data))
	v.ino.data = append(v.ino.data, b...)
	v.ino.markWrite(off)
	return len(b), nil
}

func (v *vfile) ReadAt(b []byte, off int64) (int, error) {
	v.fs.mu.Lock()
	defer v.fs.mu.Unlock()
	if err := v.fs.alive(); err != nil {
		return 0, err
	}
	if off < 0 || off >= int64(len(v.ino.data)) {
		return 0, io.EOF
	}
	n := copy(b, v.ino.data[off:])
	if n < len(b) {
		return n, io.EOF
	}
	return n, nil
}

func (v *vfile) Truncate(size int64) error {
	v.fs.mu.Lock()
	defer v.fs.mu.Unlock()
	if v.ro {
		return fmt.Errorf("faultfs truncate %q: read-only", v.name)
	}
	if v.fs.step() {
		return fmt.Errorf("truncate %q: %w", v.name, ErrCrashed)
	}
	if size < 0 || size > int64(len(v.ino.data)) {
		return fmt.Errorf("faultfs truncate %q: bad size %d", v.name, size)
	}
	v.ino.data = v.ino.data[:size]
	v.ino.markWrite(size)
	return nil
}

func (v *vfile) Sync() error {
	v.fs.mu.Lock()
	defer v.fs.mu.Unlock()
	if v.fs.step() {
		return fmt.Errorf("sync %q: %w", v.name, ErrCrashed)
	}
	v.ino.sync()
	return nil
}

func (v *vfile) Close() error {
	v.fs.mu.Lock()
	defer v.fs.mu.Unlock()
	return v.fs.alive()
}

// ------------------------------------------------------------------
// storage.Store implementation (the staging cache's raw byte layer).
// Store users have no sync call, so everything they write is volatile:
// exactly the exposure the manifest's checksums must catch.

// Store returns a storage.Store view over the same crashing namespace,
// so a staging cache and a meta-data journal can share one failure
// domain.  vfs.FS and storage.Store declare conflicting Open/Stat/List
// signatures, hence the wrapper.
func (f *FS) Store() *Store { return &Store{f: f} }

// Store adapts FS to storage.Store.
type Store struct{ f *FS }

// Open implements storage.Store.
func (st *Store) Open(name string, create, trunc bool) (storage.File, error) {
	f := st.f
	name, err := storage.CleanPath(name)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.alive(); err != nil {
		return nil, err
	}
	ino, ok := f.vol[name]
	if !ok {
		if !create {
			return nil, fmt.Errorf("faultfs open %q: %w", name, storage.ErrNotExist)
		}
		if f.step() {
			return nil, fmt.Errorf("open %q: %w", name, ErrCrashed)
		}
		ino = newInode()
		f.vol[name] = ino
	} else if trunc {
		if f.step() {
			return nil, fmt.Errorf("open %q: %w", name, ErrCrashed)
		}
		ino.data = ino.data[:0]
		ino.markWrite(0)
	}
	return &sfile{fs: f, ino: ino, name: name}, nil
}

// Remove implements storage.Store.
func (st *Store) Remove(name string) error {
	name, err := storage.CleanPath(name)
	if err != nil {
		return err
	}
	return st.f.Remove(name)
}

// Stat implements storage.Store.
func (st *Store) Stat(name string) (storage.FileInfo, error) {
	name, err := storage.CleanPath(name)
	if err != nil {
		return storage.FileInfo{}, err
	}
	f := st.f
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.alive(); err != nil {
		return storage.FileInfo{}, err
	}
	ino, ok := f.vol[name]
	if !ok {
		return storage.FileInfo{}, fmt.Errorf("faultfs stat %q: %w", name, storage.ErrNotExist)
	}
	return storage.FileInfo{Path: name, Size: int64(len(ino.data))}, nil
}

// List implements storage.Store: files whose path begins with prefix.
func (st *Store) List(prefix string) ([]storage.FileInfo, error) {
	f := st.f
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.alive(); err != nil {
		return nil, err
	}
	var out []storage.FileInfo
	for name, ino := range f.vol {
		if strings.HasPrefix(name, prefix) {
			out = append(out, storage.FileInfo{Path: name, Size: int64(len(ino.data))})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// UsedBytes implements storage.Store.
func (st *Store) UsedBytes() int64 {
	f := st.f
	f.mu.Lock()
	defer f.mu.Unlock()
	var total int64
	for _, ino := range f.vol {
		total += int64(len(ino.data))
	}
	return total
}

// sfile is an open storage.File.
type sfile struct {
	fs   *FS
	ino  *inode
	name string
}

func (s *sfile) ReadAt(b []byte, off int64) (int, error) {
	s.fs.mu.Lock()
	defer s.fs.mu.Unlock()
	if err := s.fs.alive(); err != nil {
		return 0, err
	}
	if off < 0 || off >= int64(len(s.ino.data)) {
		return 0, io.EOF
	}
	n := copy(b, s.ino.data[off:])
	if n < len(b) {
		return n, io.EOF
	}
	return n, nil
}

func (s *sfile) WriteAt(b []byte, off int64) (int, error) {
	s.fs.mu.Lock()
	defer s.fs.mu.Unlock()
	if off < 0 {
		return 0, fmt.Errorf("faultfs write %q: negative offset: %w", s.name, storage.ErrBadPath)
	}
	if s.fs.step() {
		return 0, fmt.Errorf("write %q: %w", s.name, ErrCrashed)
	}
	end := off + int64(len(b))
	for int64(len(s.ino.data)) < end {
		s.ino.data = append(s.ino.data, 0)
	}
	copy(s.ino.data[off:end], b)
	s.ino.markWrite(off)
	return len(b), nil
}

func (s *sfile) Size() int64 {
	s.fs.mu.Lock()
	defer s.fs.mu.Unlock()
	return int64(len(s.ino.data))
}

func (s *sfile) Truncate(size int64) error {
	s.fs.mu.Lock()
	defer s.fs.mu.Unlock()
	if size < 0 {
		return fmt.Errorf("faultfs truncate %q: negative size: %w", s.name, storage.ErrBadPath)
	}
	if s.fs.step() {
		return fmt.Errorf("truncate %q: %w", s.name, ErrCrashed)
	}
	cur := int64(len(s.ino.data))
	if size < cur {
		s.ino.data = s.ino.data[:size]
	} else {
		for int64(len(s.ino.data)) < size {
			s.ino.data = append(s.ino.data, 0)
		}
	}
	s.ino.markWrite(min64(size, cur))
	return nil
}

func (s *sfile) Close() error {
	s.fs.mu.Lock()
	defer s.fs.mu.Unlock()
	return s.fs.alive()
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
