package faultfs_test

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/faultfs"
	"repro/internal/vfs"
)

// write creates name with data through the vfs seam; sync and syncdir
// select which durability barriers are issued.
func write(t *testing.T, fsys *faultfs.FS, name string, data []byte, sync, syncdir bool) {
	t.Helper()
	f, err := fsys.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}
	if sync {
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if syncdir {
		if err := fsys.SyncDir(""); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCrashFiresAtNthMutatingOp(t *testing.T) {
	fsys := faultfs.New()
	write(t, fsys, "a", []byte("one"), true, true)
	base := fsys.Ops()
	fsys.SetCrash(2) // create counts, write fires
	_, err := fsys.Create("b")
	if err != nil {
		t.Fatalf("first op crashed early: %v", err)
	}
	f2, err := fsys.Create("c")
	if !errors.Is(err, faultfs.ErrCrashed) {
		f2.Close()
		t.Fatalf("second op: %v, want ErrCrashed", err)
	}
	if !fsys.Crashed() {
		t.Fatal("Crashed() false after the armed op")
	}
	if got := fsys.Ops() - base; got != 2 {
		t.Fatalf("ops consumed %d, want 2", got)
	}
	// The process is dead: even reads fail now.
	if _, err := vfs.ReadFile(fsys, "a"); !errors.Is(err, faultfs.ErrCrashed) {
		t.Fatalf("read after crash: %v, want ErrCrashed", err)
	}
}

func TestDropUnsyncedKeepsOnlyBarriers(t *testing.T) {
	fsys := faultfs.New()
	write(t, fsys, "durable", []byte("synced+dirsynced"), true, true)
	write(t, fsys, "content-only", []byte("synced, dirent volatile"), true, false)
	write(t, fsys, "volatile", []byte("never synced"), false, false)
	fsys.SetCrash(1)
	_, _ = fsys.Create("boom")

	rec := fsys.Recover(faultfs.DropUnsynced, 1)
	data, err := vfs.ReadFile(rec, "durable")
	if err != nil || string(data) != "synced+dirsynced" {
		t.Fatalf("durable file: %q, %v", data, err)
	}
	// An fsynced file whose dirent was never dir-synced is forgotten.
	if _, err := vfs.ReadFile(rec, "content-only"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("content-only: %v, want ErrNotExist", err)
	}
	if _, err := vfs.ReadFile(rec, "volatile"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("volatile: %v, want ErrNotExist", err)
	}
	// The recovered machine is alive and writable.
	if rec.Crashed() {
		t.Fatal("recovered fs starts crashed")
	}
	write(t, rec, "afterlife", []byte("ok"), true, true)
}

func TestKeepUnsyncedKeepsEverything(t *testing.T) {
	fsys := faultfs.New()
	write(t, fsys, "volatile", []byte("never synced"), false, false)
	fsys.SetCrash(1)
	_, _ = fsys.Create("boom")

	rec := fsys.Recover(faultfs.KeepUnsynced, 1)
	data, err := vfs.ReadFile(rec, "volatile")
	if err != nil || string(data) != "never synced" {
		t.Fatalf("volatile file under keep-unsynced: %q, %v", data, err)
	}
}

func TestTornWritesCutSectorAligned(t *testing.T) {
	syncedLen := faultfs.SectorSize + 100
	synced := bytes.Repeat([]byte{0xAA}, syncedLen)
	tail := bytes.Repeat([]byte{0xBB}, 3*faultfs.SectorSize)

	// Over many seeds: the synced prefix always survives byte-for-byte,
	// the cut lands sector-aligned (or at EOF) within the unsynced tail,
	// and at least one seed actually tears.
	tore := false
	for seed := int64(1); seed <= 32; seed++ {
		fsys := faultfs.New()
		f, err := fsys.Create("file")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(synced); err != nil {
			t.Fatal(err)
		}
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
		if err := fsys.SyncDir(""); err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(tail); err != nil {
			t.Fatal(err)
		}
		fsys.SetCrash(1)
		_, _ = fsys.Create("boom")

		rec := fsys.Recover(faultfs.TornWrites, seed)
		data, err := vfs.ReadFile(rec, "file")
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		full := len(synced) + len(tail)
		if len(data) < syncedLen || len(data) > full {
			t.Fatalf("seed %d: torn length %d outside [%d,%d]", seed, len(data), syncedLen, full)
		}
		// Valid cuts: EOF, the synced boundary, or a sector boundary.
		if len(data) != full && len(data) != syncedLen && len(data)%faultfs.SectorSize != 0 {
			t.Fatalf("seed %d: cut at %d not sector-aligned", seed, len(data))
		}
		if !bytes.Equal(data[:syncedLen], synced) {
			t.Fatalf("seed %d: synced prefix damaged", seed)
		}
		if len(data) < full {
			tore = true
		}
	}
	if !tore {
		t.Fatal("no seed tore the unsynced tail")
	}
}

func TestRenameDurability(t *testing.T) {
	fsys := faultfs.New()
	write(t, fsys, "name.tmp", []byte("v2"), true, true)
	write(t, fsys, "name", []byte("v1"), true, true)
	if err := fsys.Rename("name.tmp", "name"); err != nil {
		t.Fatal(err)
	}
	// Rename without the directory barrier: drop-unsynced recovery still
	// sees the old mapping.
	rec := fsys.Recover(faultfs.DropUnsynced, 1)
	if data, _ := vfs.ReadFile(rec, "name"); string(data) != "v1" {
		t.Fatalf("unsynced rename visible after crash: %q", data)
	}
	// With the barrier it is durable.
	if err := fsys.SyncDir(""); err != nil {
		t.Fatal(err)
	}
	rec = fsys.Recover(faultfs.DropUnsynced, 1)
	if data, _ := vfs.ReadFile(rec, "name"); string(data) != "v2" {
		t.Fatalf("dir-synced rename lost: %q", data)
	}
	if _, err := vfs.ReadFile(rec, "name.tmp"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("rename source survived: %v", err)
	}
}

func TestWriteAtomicOldOrNew(t *testing.T) {
	// WriteAtomic on a crashing fs must leave old bytes, new bytes, or
	// nothing — never a mixture — under every crash point and mode.
	for point := 1; point <= 12; point++ {
		for _, mode := range faultfs.Modes() {
			fsys := faultfs.New()
			if err := vfs.WriteAtomic(fsys, "cfg", []byte("old-contents")); err != nil {
				t.Fatal(err)
			}
			fsys.SetCrash(point)
			err := vfs.WriteAtomic(fsys, "cfg", []byte("NEW-CONTENTS"))
			rec := fsys.Recover(mode, int64(point))
			data, rerr := vfs.ReadFile(rec, "cfg")
			if rerr != nil {
				t.Fatalf("point %d mode %s: %v", point, mode, rerr)
			}
			got := string(data)
			if got != "old-contents" && got != "NEW-CONTENTS" {
				t.Fatalf("point %d mode %s: torn atomic write: %q", point, mode, got)
			}
			if err == nil && !fsys.Crashed() && got != "NEW-CONTENTS" {
				t.Fatalf("point %d mode %s: completed write lost: %q", point, mode, got)
			}
		}
	}
}

func TestStoreViewSharesNamespace(t *testing.T) {
	fsys := faultfs.New()
	st := fsys.Store()
	f, err := st.Open("raw", true, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("store-bytes"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// The store view and the vfs view are the same crashing namespace.
	data, err := vfs.ReadFile(fsys, "raw")
	if err != nil || string(data) != "store-bytes" {
		t.Fatalf("vfs view of store file: %q, %v", data, err)
	}
	// Store writes were never fsynced (the Store interface has no sync),
	// so a drop-unsynced crash forgets them.
	fsys.SetCrash(1)
	_, _ = fsys.Create("boom")
	rec := fsys.Recover(faultfs.DropUnsynced, 1)
	if _, err := vfs.ReadFile(rec, "raw"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("unsynced store file survived drop-unsynced: %v", err)
	}
	rec2 := fsys.Recover(faultfs.KeepUnsynced, 1)
	if data, _ := vfs.ReadFile(rec2, "raw"); string(data) != "store-bytes" {
		t.Fatalf("store file lost under keep-unsynced: %q", data)
	}
}
