package pattern

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"
)

func TestParseAndString(t *testing.T) {
	p, err := Parse("BBB")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, Pattern{Block, Block, Block}) {
		t.Fatalf("Parse(BBB) = %v", p)
	}
	if p.String() != "BBB" {
		t.Fatalf("String = %q", p)
	}
	p2, err := Parse("b*C")
	if err != nil {
		t.Fatal(err)
	}
	if p2.String() != "B*C" {
		t.Fatalf("String = %q", p2)
	}
	if _, err := Parse(""); err == nil {
		t.Fatal("empty pattern accepted")
	}
	if _, err := Parse("BXB"); err == nil {
		t.Fatal("bad distribution accepted")
	}
}

func TestGridCoords(t *testing.T) {
	g := Grid{2, 2, 2}
	if g.Procs() != 8 {
		t.Fatalf("Procs = %d", g.Procs())
	}
	cases := map[int][]int{
		0: {0, 0, 0},
		1: {0, 0, 1},
		2: {0, 1, 0},
		7: {1, 1, 1},
	}
	for rank, want := range cases {
		got, err := g.Coords(rank)
		if err != nil || !reflect.DeepEqual(got, want) {
			t.Errorf("Coords(%d) = %v, %v; want %v", rank, got, err, want)
		}
	}
	if _, err := g.Coords(8); err == nil {
		t.Fatal("out-of-range rank accepted")
	}
	if _, err := g.Coords(-1); err == nil {
		t.Fatal("negative rank accepted")
	}
}

func TestDefaultGrid(t *testing.T) {
	cases := []struct {
		ndims, nprocs int
		want          Grid
	}{
		{3, 8, Grid{2, 2, 2}},
		{3, 4, Grid{2, 2, 1}},
		{3, 12, Grid{3, 2, 2}},
		{3, 1, Grid{1, 1, 1}},
		{2, 6, Grid{3, 2}},
		{1, 7, Grid{7}},
	}
	for _, c := range cases {
		got, err := DefaultGrid(c.ndims, c.nprocs)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("DefaultGrid(%d, %d) = %v, want %v", c.ndims, c.nprocs, got, c.want)
		}
		if got.Procs() != c.nprocs {
			t.Errorf("grid %v does not multiply to %d", got, c.nprocs)
		}
	}
	if _, err := DefaultGrid(0, 4); err == nil {
		t.Fatal("zero dims accepted")
	}
}

func TestBlockRangeCoversExactly(t *testing.T) {
	// 10 elements over 3 coordinates: 4+3+3 with remainder leading.
	var all []int
	for c := 0; c < 3; c++ {
		lo, hi := blockRange(10, 3, c)
		for k := lo; k < hi; k++ {
			all = append(all, k)
		}
	}
	if len(all) != 10 {
		t.Fatalf("block ranges cover %d of 10", len(all))
	}
	for i, v := range all {
		if v != i {
			t.Fatalf("coverage gap at %d: %v", i, all)
		}
	}
}

func TestIndexSetsBlock(t *testing.T) {
	pat, _ := Parse("BB")
	sets, err := IndexSets([]int{4, 6}, pat, Grid{2, 2}, 3) // coords (1,1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sets[0], []int{2, 3}) || !reflect.DeepEqual(sets[1], []int{3, 4, 5}) {
		t.Fatalf("sets = %v", sets)
	}
	if NumElems(sets) != 6 {
		t.Fatalf("NumElems = %d", NumElems(sets))
	}
}

func TestIndexSetsCyclicAndAll(t *testing.T) {
	pat, _ := Parse("C*")
	sets, err := IndexSets([]int{5, 3}, pat, Grid{2, 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sets[0], []int{1, 3}) {
		t.Fatalf("cyclic set = %v", sets[0])
	}
	if !reflect.DeepEqual(sets[1], []int{0, 1, 2}) {
		t.Fatalf("all set = %v", sets[1])
	}
	// '*' with grid extent > 1 is invalid.
	if _, err := IndexSets([]int{5, 3}, pat, Grid{1, 2}, 0); err == nil {
		t.Fatal("replicated dim with grid extent > 1 accepted")
	}
}

func TestIndexSetsValidation(t *testing.T) {
	pat, _ := Parse("BB")
	if _, err := IndexSets([]int{4}, pat, Grid{2, 2}, 0); err == nil {
		t.Fatal("rank mismatch accepted")
	}
	if _, err := IndexSets([]int{4, 0}, pat, Grid{2, 2}, 0); err == nil {
		t.Fatal("zero dim accepted")
	}
}

func TestFileRunsContiguousBlock(t *testing.T) {
	// 4×4 ints, 2×1 grid: rank 0 owns rows 0-1 — one contiguous run.
	pat, _ := Parse("B*")
	sets, _ := IndexSets([]int{4, 4}, pat, Grid{2, 1}, 0)
	runs := FileRuns([]int{4, 4}, 4, sets)
	if len(runs) != 1 || runs[0] != (Run{Off: 0, Len: 32}) {
		t.Fatalf("runs = %v", runs)
	}
	sets1, _ := IndexSets([]int{4, 4}, pat, Grid{2, 1}, 1)
	runs1 := FileRuns([]int{4, 4}, 4, sets1)
	if len(runs1) != 1 || runs1[0] != (Run{Off: 32, Len: 32}) {
		t.Fatalf("rank1 runs = %v", runs1)
	}
}

func TestFileRunsStrided(t *testing.T) {
	// 4×4 ints split on the inner dimension: each rank gets 4 strided runs.
	pat, _ := Parse("*B")
	sets, _ := IndexSets([]int{4, 4}, pat, Grid{1, 2}, 1)
	runs := FileRuns([]int{4, 4}, 4, sets)
	want := []Run{{8, 8}, {24, 8}, {40, 8}, {56, 8}}
	if !reflect.DeepEqual(runs, want) {
		t.Fatalf("runs = %v, want %v", runs, want)
	}
}

func TestFileRunsCyclic(t *testing.T) {
	// 1-D cyclic over 2 procs: alternating elements, no merging.
	pat, _ := Parse("C")
	sets, _ := IndexSets([]int{6}, pat, Grid{2}, 0)
	runs := FileRuns([]int{6}, 1, sets)
	want := []Run{{0, 1}, {2, 1}, {4, 1}}
	if !reflect.DeepEqual(runs, want) {
		t.Fatalf("runs = %v", runs)
	}
}

func TestRunsCoverDisjointComplete(t *testing.T) {
	// Union over all ranks covers the file exactly once for BBB / 2x2x2.
	dims := []int{8, 8, 8}
	pat, _ := Parse("BBB")
	grid := Grid{2, 2, 2}
	covered := make([]int, TotalBytes(dims, 4))
	for rank := 0; rank < grid.Procs(); rank++ {
		sets, err := IndexSets(dims, pat, grid, rank)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range FileRuns(dims, 4, sets) {
			for b := r.Off; b < r.End(); b++ {
				covered[b]++
			}
		}
	}
	for i, c := range covered {
		if c != 1 {
			t.Fatalf("byte %d covered %d times", i, c)
		}
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	dims := []int{4, 4}
	global := make([]byte, TotalBytes(dims, 1))
	for i := range global {
		global[i] = byte(i)
	}
	pat, _ := Parse("*B")
	sets, _ := IndexSets(dims, pat, Grid{1, 2}, 1)
	runs := FileRuns(dims, 1, sets)
	local := Pack(global, runs)
	if len(local) != 8 {
		t.Fatalf("packed %d bytes", len(local))
	}
	dst := make([]byte, len(global))
	if err := Unpack(dst, runs, local); err != nil {
		t.Fatal(err)
	}
	for _, r := range runs {
		if !bytes.Equal(dst[r.Off:r.End()], global[r.Off:r.End()]) {
			t.Fatal("unpack mismatch")
		}
	}
	if err := Unpack(dst, runs, local[:3]); err == nil {
		t.Fatal("short local buffer accepted")
	}
}

// Property: for random small dims/grids with Block patterns, the ranks'
// runs are disjoint, sorted, and their total equals the file size.
func TestQuickBlockDecompositionComplete(t *testing.T) {
	f := func(d0, d1, g0, g1 uint8) bool {
		dims := []int{int(d0%6) + 1, int(d1%6) + 1}
		grid := Grid{int(g0%3) + 1, int(g1%3) + 1}
		if grid[0] > dims[0] || grid[1] > dims[1] {
			return true // more procs than elements in a dim: skip
		}
		pat := Pattern{Block, Block}
		var total int64
		for rank := 0; rank < grid.Procs(); rank++ {
			sets, err := IndexSets(dims, pat, grid, rank)
			if err != nil {
				return false
			}
			prev := int64(-1)
			for _, r := range FileRuns(dims, 2, sets) {
				if r.Off <= prev {
					return false // not sorted/merged
				}
				prev = r.End() - 1
				total += r.Len
			}
		}
		return total == TotalBytes(dims, 2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Pack followed by Unpack restores exactly the bytes of the runs.
func TestQuickPackUnpack(t *testing.T) {
	f := func(seed uint8, g1 uint8) bool {
		dims := []int{6, 8}
		grid := Grid{1, int(g1%4) + 1}
		if grid[1] > dims[1] {
			return true
		}
		pat := Pattern{All, Block}
		global := make([]byte, TotalBytes(dims, 1))
		for i := range global {
			global[i] = byte(i) ^ seed
		}
		sets, err := IndexSets(dims, pat, grid, grid.Procs()-1)
		if err != nil {
			return false
		}
		runs := FileRuns(dims, 1, sets)
		local := Pack(global, runs)
		fresh := make([]byte, len(global))
		if err := Unpack(fresh, runs, local); err != nil {
			return false
		}
		for _, r := range runs {
			if !bytes.Equal(fresh[r.Off:r.End()], global[r.Off:r.End()]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTotalBytes(t *testing.T) {
	if got := TotalBytes([]int{128, 128, 128}, 4); got != 8*1024*1024 {
		t.Fatalf("TotalBytes = %d, want 8 MiB (the paper's float dataset)", got)
	}
	if got := TotalBytes([]int{128, 128, 128}, 1); got != 2*1024*1024 {
		t.Fatalf("TotalBytes = %d, want 2 MiB (the paper's vr dataset)", got)
	}
}
