package pattern_test

import (
	"fmt"

	"repro/internal/pattern"
)

// A 4×4 array of 32-bit elements distributed Block×Block over a 2×2
// process grid: rank 3 owns the bottom-right quadrant, which lands in
// the row-major file as two strided runs.
func ExampleFileRuns() {
	dims := []int{4, 4}
	pat, _ := pattern.Parse("BB")
	grid := pattern.Grid{2, 2}
	sets, _ := pattern.IndexSets(dims, pat, grid, 3)
	for _, run := range pattern.FileRuns(dims, 4, sets) {
		fmt.Printf("offset %2d, %d bytes\n", run.Off, run.Len)
	}
	// Output:
	// offset 40, 8 bytes
	// offset 56, 8 bytes
}

func ExampleParse() {
	p, _ := pattern.Parse("B*C")
	fmt.Println(p)
	// Output: B*C
}

func ExampleDefaultGrid() {
	g, _ := pattern.DefaultGrid(3, 12)
	fmt.Println(g, g.Procs())
	// Output: [3 2 2] 12
}
