// Package pattern implements the access-pattern machinery of the user
// API: HPF-style data distributions of multidimensional arrays over
// parallel processes, and the translation of a process's subarray into
// the byte runs it touches in the row-major global file.
//
// The paper's hint "PATTERN: BBB" (figure 11) is exactly this: a
// three-dimensional array distributed Block×Block×Block over the process
// grid.  The run-time library uses the file runs to perform naive,
// sieved, or two-phase collective I/O, and the performance predictor
// derives n(j) — the number of native I/O calls per dump — from the same
// geometry.
package pattern

import (
	"fmt"
	"strings"
)

// Dist is the distribution of one array dimension.
type Dist int

const (
	// Block partitions the dimension into contiguous chunks, one per
	// process-grid coordinate.
	Block Dist = iota
	// Cyclic deals indices round-robin across the grid coordinate.
	Cyclic
	// All replicates the dimension (no partitioning), written '*'.
	All
)

func (d Dist) String() string {
	switch d {
	case Block:
		return "B"
	case Cyclic:
		return "C"
	case All:
		return "*"
	default:
		return "?"
	}
}

// Pattern is a per-dimension distribution, e.g. BBB.
type Pattern []Dist

// Parse converts a pattern string such as "BBB", "B*C" into a Pattern.
func Parse(s string) (Pattern, error) {
	if s == "" {
		return nil, fmt.Errorf("pattern: empty")
	}
	p := make(Pattern, 0, len(s))
	for _, c := range s {
		switch c {
		case 'B', 'b':
			p = append(p, Block)
		case 'C', 'c':
			p = append(p, Cyclic)
		case '*':
			p = append(p, All)
		default:
			return nil, fmt.Errorf("pattern: unknown distribution %q in %q", c, s)
		}
	}
	return p, nil
}

// String renders the pattern ("BBB").
func (p Pattern) String() string {
	var b strings.Builder
	for _, d := range p {
		b.WriteString(d.String())
	}
	return b.String()
}

// Grid is the process grid, one extent per dimension; its product is the
// number of processes.
type Grid []int

// Procs returns the total process count of the grid.
func (g Grid) Procs() int {
	n := 1
	for _, e := range g {
		n *= e
	}
	return n
}

// Coords returns rank's coordinates in the grid (row-major rank order).
func (g Grid) Coords(rank int) ([]int, error) {
	if rank < 0 || rank >= g.Procs() {
		return nil, fmt.Errorf("pattern: rank %d outside grid %v", rank, g)
	}
	coords := make([]int, len(g))
	for i := len(g) - 1; i >= 0; i-- {
		coords[i] = rank % g[i]
		rank /= g[i]
	}
	return coords, nil
}

// DefaultGrid factors nprocs into ndims extents as evenly as possible,
// assigning larger factors to earlier (outer) dimensions, which keeps
// file runs long.
func DefaultGrid(ndims, nprocs int) (Grid, error) {
	if ndims <= 0 || nprocs <= 0 {
		return nil, fmt.Errorf("pattern: invalid grid request (%d dims, %d procs)", ndims, nprocs)
	}
	g := make(Grid, ndims)
	for i := range g {
		g[i] = 1
	}
	remaining := nprocs
	// Peel prime factors onto the currently smallest extent.
	for f := 2; f*f <= remaining; f++ {
		for remaining%f == 0 {
			remaining /= f
			g[argmin(g)] *= f
		}
	}
	if remaining > 1 {
		g[argmin(g)] *= remaining
	}
	// Descending extents so outer dimensions get the larger factors.
	for i := 0; i < len(g); i++ {
		for j := i + 1; j < len(g); j++ {
			if g[j] > g[i] {
				g[i], g[j] = g[j], g[i]
			}
		}
	}
	return g, nil
}

func argmin(g Grid) int {
	k := 0
	for i, v := range g {
		if v < g[k] {
			k = i
		}
	}
	return k
}

// IndexSets returns, for each dimension, the sorted global indices rank
// owns under the pattern.  It validates that dims, pat and grid agree in
// rank and that non-distributed dimensions have grid extent 1.
func IndexSets(dims []int, pat Pattern, grid Grid, rank int) ([][]int, error) {
	if len(dims) != len(pat) || len(dims) != len(grid) {
		return nil, fmt.Errorf("pattern: rank mismatch dims=%d pat=%d grid=%d", len(dims), len(pat), len(grid))
	}
	coords, err := grid.Coords(rank)
	if err != nil {
		return nil, err
	}
	sets := make([][]int, len(dims))
	for i, d := range dims {
		if d <= 0 {
			return nil, fmt.Errorf("pattern: non-positive dim %d", d)
		}
		switch pat[i] {
		case All:
			if grid[i] != 1 {
				return nil, fmt.Errorf("pattern: dimension %d is '*' but grid extent %d != 1", i, grid[i])
			}
			set := make([]int, d)
			for k := range set {
				set[k] = k
			}
			sets[i] = set
		case Block:
			lo, hi := blockRange(d, grid[i], coords[i])
			set := make([]int, 0, hi-lo)
			for k := lo; k < hi; k++ {
				set = append(set, k)
			}
			sets[i] = set
		case Cyclic:
			var set []int
			for k := coords[i]; k < d; k += grid[i] {
				set = append(set, k)
			}
			sets[i] = set
		}
	}
	return sets, nil
}

// blockRange returns the [lo, hi) slice of a dimension of extent d for
// grid coordinate c of n, distributing the remainder over the leading
// coordinates.
func blockRange(d, n, c int) (lo, hi int) {
	q, r := d/n, d%n
	lo = c*q + min(c, r)
	hi = lo + q
	if c < r {
		hi++
	}
	return lo, hi
}

// NumElems returns the number of elements in the given index sets.
func NumElems(sets [][]int) int {
	n := 1
	for _, s := range sets {
		n *= len(s)
	}
	return n
}

// Run is a contiguous byte extent in the global file.
type Run struct {
	Off int64
	Len int64
}

// End returns the first byte past the run.
func (r Run) End() int64 { return r.Off + r.Len }

// FileRuns returns the contiguous byte runs (sorted, merged) that the
// index sets cover in the row-major file of element size etype.
func FileRuns(dims []int, etype int, sets [][]int) []Run {
	if len(sets) == 0 || NumElems(sets) == 0 {
		return nil
	}
	// Strides in elements for each dimension.
	strides := make([]int64, len(dims))
	s := int64(1)
	for i := len(dims) - 1; i >= 0; i-- {
		strides[i] = s
		s *= int64(dims[i])
	}
	var runs []Run
	push := func(off, length int64) {
		if n := len(runs); n > 0 && runs[n-1].End() == off {
			runs[n-1].Len += length
			return
		}
		runs = append(runs, Run{Off: off, Len: length})
	}
	// Iterate the outer dimensions' index product in lexicographic order;
	// within the innermost dimension merge consecutive indices.
	last := len(dims) - 1
	idx := make([]int, len(dims)-1) // positions into sets[0..last-1]
	for {
		base := int64(0)
		for i := 0; i < last; i++ {
			base += int64(sets[i][idx[i]]) * strides[i]
		}
		inner := sets[last]
		start := 0
		for start < len(inner) {
			end := start + 1
			for end < len(inner) && inner[end] == inner[end-1]+1 {
				end++
			}
			off := (base + int64(inner[start])) * int64(etype)
			push(off, int64(end-start)*int64(etype))
			start = end
		}
		// Odometer increment over the outer dims.
		i := last - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(sets[i]) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			break
		}
	}
	return runs
}

// Pack copies the bytes of the runs out of the global buffer into a
// packed local buffer (the rank's canonical local layout).
func Pack(global []byte, runs []Run) []byte {
	var total int64
	for _, r := range runs {
		total += r.Len
	}
	out := make([]byte, total)
	var pos int64
	for _, r := range runs {
		copy(out[pos:pos+r.Len], global[r.Off:r.End()])
		pos += r.Len
	}
	return out
}

// Unpack scatters a packed local buffer into the global buffer at the
// runs' extents — the inverse of Pack.
func Unpack(global []byte, runs []Run, local []byte) error {
	var pos int64
	for _, r := range runs {
		if pos+r.Len > int64(len(local)) {
			return fmt.Errorf("pattern: local buffer too small: need %d, have %d", pos+r.Len, len(local))
		}
		copy(global[r.Off:r.End()], local[pos:pos+r.Len])
		pos += r.Len
	}
	return nil
}

// TotalBytes returns the byte size of the whole global array.
func TotalBytes(dims []int, etype int) int64 {
	n := int64(etype)
	for _, d := range dims {
		n *= int64(d)
	}
	return n
}
