package replica

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/localdisk"
	"repro/internal/memfs"
	"repro/internal/model"
	"repro/internal/remotedisk"
	"repro/internal/storage"
	"repro/internal/vtime"
)

// pair builds a replica over a fast local disk and a slow remote disk.
func pair(t *testing.T) (*Backend, *vtime.Sim, storage.Backend, storage.Backend) {
	t.Helper()
	fast, err := localdisk.New("fast", memfs.New())
	if err != nil {
		t.Fatal(err)
	}
	slow, err := remotedisk.New("slow", memfs.New())
	if err != nil {
		t.Fatal(err)
	}
	r, err := New("mirror", fast, slow)
	if err != nil {
		t.Fatal(err)
	}
	return r, vtime.NewVirtual(), fast, slow
}

func TestNeedsTwoMembers(t *testing.T) {
	one, _ := localdisk.New("x", memfs.New())
	if _, err := New("r", one); err == nil {
		t.Fatal("single-member replica accepted")
	}
}

func TestWriteMirrorsToAllMembers(t *testing.T) {
	r, sim, fast, slow := pair(t)
	p := sim.NewProc("p")
	sess, err := r.Connect(p)
	if err != nil {
		t.Fatal(err)
	}
	h, err := sess.Open(p, "d/f", storage.ModeCreate)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("replicated")
	if _, err := h.WriteAt(p, payload, 0); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(p); err != nil {
		t.Fatal(err)
	}
	// Both members must hold the bytes, independently.
	for _, m := range []storage.Backend{fast, slow} {
		q := sim.NewProc("check")
		ms, _ := m.Connect(q)
		mh, err := ms.Open(q, "d/f", storage.ModeRead)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		got := make([]byte, len(payload))
		if _, err := mh.ReadAt(q, got, 0); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("%s holds %q", m.Name(), got)
		}
	}
}

func TestWriteCostIsSlowestMember(t *testing.T) {
	r, sim, _, _ := pair(t)
	p := sim.NewProc("p")
	sess, _ := r.Connect(p)
	h, _ := sess.Open(p, "f", storage.ModeCreate)
	before := p.Now()
	if _, err := h.WriteAt(p, make([]byte, model.MiB), 0); err != nil {
		t.Fatal(err)
	}
	cost := p.Now() - before
	slowXfer := model.RemoteDisk2000().Xfer(model.Write, model.MiB)
	if cost < slowXfer {
		t.Fatalf("synchronous replication cost %v < slow member %v", cost, slowXfer)
	}
}

func TestReadPrefersFirstMember(t *testing.T) {
	r, sim, _, _ := pair(t)
	p := sim.NewProc("p")
	sess, _ := r.Connect(p)
	h, _ := sess.Open(p, "f", storage.ModeCreate)
	h.WriteAt(p, make([]byte, model.MiB), 0)
	h.Close(p)

	rd := sim.NewProc("rd")
	sess2, _ := r.Connect(rd)
	rh, err := sess2.Open(rd, "f", storage.ModeRead)
	if err != nil {
		t.Fatal(err)
	}
	before := rd.Now()
	buf := make([]byte, model.MiB)
	if _, err := rh.ReadAt(rd, buf, 0); err != nil {
		t.Fatal(err)
	}
	cost := rd.Now() - before
	// Served from the local member: far below the remote transfer time.
	if cost > time.Second {
		t.Fatalf("read served by slow member: %v", cost)
	}
}

func TestReadFailsOverWhenPreferredDown(t *testing.T) {
	r, sim, fast, _ := pair(t)
	p := sim.NewProc("p")
	sess, _ := r.Connect(p)
	h, _ := sess.Open(p, "f", storage.ModeCreate)
	payload := []byte("survives outages")
	h.WriteAt(p, payload, 0)
	h.Close(p)

	fast.(storage.Outage).SetDown(true)
	rd := sim.NewProc("rd")
	sess2, err := r.Connect(rd)
	if err != nil {
		t.Fatal(err)
	}
	rh, err := sess2.Open(rd, "f", storage.ModeRead)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	if _, err := rh.ReadAt(rd, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("failover read = %q", got)
	}
}

func TestReadFailsOverMidStream(t *testing.T) {
	// The preferred member dies after the handle is open: the next read
	// lazily opens the surviving member's copy.
	r, sim, fast, _ := pair(t)
	p := sim.NewProc("p")
	sess, _ := r.Connect(p)
	h, _ := sess.Open(p, "f", storage.ModeCreate)
	h.WriteAt(p, []byte("abcdefgh"), 0)
	h.Close(p)

	rd := sim.NewProc("rd")
	sess2, _ := r.Connect(rd)
	rh, _ := sess2.Open(rd, "f", storage.ModeRead)
	buf := make([]byte, 4)
	if _, err := rh.ReadAt(rd, buf, 0); err != nil {
		t.Fatal(err)
	}
	fast.(storage.Outage).SetDown(true)
	if _, err := rh.ReadAt(rd, buf, 4); err != nil {
		t.Fatalf("mid-stream failover: %v", err)
	}
	if string(buf) != "efgh" {
		t.Fatalf("read %q after failover", buf)
	}
}

func TestWriteContinuesWithMemberDown(t *testing.T) {
	r, sim, fast, slow := pair(t)
	fast.(storage.Outage).SetDown(true)
	p := sim.NewProc("p")
	sess, err := r.Connect(p)
	if err != nil {
		t.Fatal(err)
	}
	h, err := sess.Open(p, "f", storage.ModeCreate)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.WriteAt(p, []byte("degraded"), 0); err != nil {
		t.Fatal(err)
	}
	h.Close(p)
	// Data must be on the surviving member.
	q := sim.NewProc("q")
	ms, _ := slow.Connect(q)
	if _, err := ms.Stat(q, "f"); err != nil {
		t.Fatalf("surviving member missing data: %v", err)
	}
}

func TestAllMembersDown(t *testing.T) {
	r, sim, fast, slow := pair(t)
	fast.(storage.Outage).SetDown(true)
	slow.(storage.Outage).SetDown(true)
	p := sim.NewProc("p")
	if _, err := r.Connect(p); !errors.Is(err, storage.ErrDown) {
		t.Fatalf("connect with all members down = %v", err)
	}
}

func TestCapacityIsTightestMember(t *testing.T) {
	a, _ := localdisk.New("a", memfs.New(), localdisk.WithCapacity(100))
	b, _ := localdisk.New("b", memfs.New(), localdisk.WithCapacity(1000))
	r, err := New("m", a, b)
	if err != nil {
		t.Fatal(err)
	}
	total, _ := r.Capacity()
	if total != 100 {
		t.Fatalf("capacity = %d, want tightest member 100", total)
	}
}

func TestStatListRemove(t *testing.T) {
	r, sim, _, _ := pair(t)
	p := sim.NewProc("p")
	sess, _ := r.Connect(p)
	h, _ := sess.Open(p, "d/f", storage.ModeCreate)
	h.WriteAt(p, []byte{1, 2, 3}, 0)
	h.Close(p)
	fi, err := sess.Stat(p, "d/f")
	if err != nil || fi.Size != 3 {
		t.Fatalf("Stat = %+v, %v", fi, err)
	}
	ls, err := sess.List(p, "d/")
	if err != nil || len(ls) != 1 {
		t.Fatalf("List = %v, %v", ls, err)
	}
	if err := sess.Remove(p, "d/f"); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Stat(p, "d/f"); err == nil {
		t.Fatal("stat after remove succeeded")
	}
}

func TestClosedSessionAndHandle(t *testing.T) {
	r, sim, _, _ := pair(t)
	p := sim.NewProc("p")
	sess, _ := r.Connect(p)
	h, _ := sess.Open(p, "f", storage.ModeCreate)
	if err := h.Close(p); err != nil {
		t.Fatal(err)
	}
	if _, err := h.WriteAt(p, []byte{1}, 0); !errors.Is(err, storage.ErrClosed) {
		t.Fatalf("write on closed handle = %v", err)
	}
	if _, err := h.ReadAt(p, make([]byte, 1), 0); !errors.Is(err, storage.ErrClosed) {
		t.Fatalf("read on closed handle = %v", err)
	}
	if err := h.Close(p); !errors.Is(err, storage.ErrClosed) {
		t.Fatalf("double handle close = %v", err)
	}
	if err := sess.Close(p); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(p); !errors.Is(err, storage.ErrClosed) {
		t.Fatalf("double session close = %v", err)
	}
	if _, err := sess.Open(p, "g", storage.ModeCreate); !errors.Is(err, storage.ErrClosed) {
		t.Fatalf("open on closed session = %v", err)
	}
}

func TestSizeFallsBackToHealthyMember(t *testing.T) {
	r, sim, fast, _ := pair(t)
	p := sim.NewProc("p")
	sess, _ := r.Connect(p)
	h, _ := sess.Open(p, "f", storage.ModeCreate)
	h.WriteAt(p, make([]byte, 77), 0)
	fast.(storage.Outage).SetDown(true)
	if got := h.Size(); got != 77 {
		t.Fatalf("Size with preferred member down = %d", got)
	}
}

func TestReadMissingFile(t *testing.T) {
	r, sim, _, _ := pair(t)
	p := sim.NewProc("p")
	sess, _ := r.Connect(p)
	if _, err := sess.Open(p, "absent", storage.ModeRead); err == nil {
		t.Fatal("open of missing replica succeeded")
	}
}
