package replica

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/localdisk"
	"repro/internal/memfs"
	"repro/internal/resilient"
	"repro/internal/storage"
	"repro/internal/vtime"
)

// probeCounter counts read probes reaching a member backend.
type probeCounter struct {
	storage.Backend
	reads atomic.Int64
	opens atomic.Int64
}

func (b *probeCounter) SetDown(down bool) {
	if o, ok := b.Backend.(storage.Outage); ok {
		o.SetDown(down)
	}
}

func (b *probeCounter) Down() bool {
	o, ok := b.Backend.(storage.Outage)
	return ok && o.Down()
}

func (b *probeCounter) Connect(p *vtime.Proc) (storage.Session, error) {
	s, err := b.Backend.Connect(p)
	if err != nil {
		return nil, err
	}
	return &probeSession{Session: s, b: b}, nil
}

type probeSession struct {
	storage.Session
	b *probeCounter
}

func (s *probeSession) Open(p *vtime.Proc, name string, mode storage.AMode) (storage.Handle, error) {
	s.b.opens.Add(1)
	h, err := s.Session.Open(p, name, mode)
	if err != nil {
		return nil, err
	}
	return &probeHandle{Handle: h, b: s.b}, nil
}

type probeHandle struct {
	storage.Handle
	b *probeCounter
}

func (h *probeHandle) ReadAt(p *vtime.Proc, buf []byte, off int64) (int, error) {
	h.b.reads.Add(1)
	return h.Handle.ReadAt(p, buf, off)
}

func countingPair(t *testing.T) (*Backend, *probeCounter, *probeCounter) {
	t.Helper()
	m0, err := localdisk.New("m0", memfs.New())
	if err != nil {
		t.Fatal(err)
	}
	m1, err := localdisk.New("m1", memfs.New())
	if err != nil {
		t.Fatal(err)
	}
	c0 := &probeCounter{Backend: m0}
	c1 := &probeCounter{Backend: m1}
	r, err := New("mirror", c0, c1)
	if err != nil {
		t.Fatal(err)
	}
	return r, c0, c1
}

// TestTrippedMemberNotProbed: with a shared Health registry, a member
// whose circuit is open is not touched by reads while a healthy
// alternative exists.
func TestTrippedMemberNotProbed(t *testing.T) {
	r, c0, c1 := countingPair(t)
	health := resilient.NewHealth(resilient.BreakerConfig{FailureThreshold: 1, Cooldown: time.Hour})
	r.WithHealth(health)
	p := vtime.NewVirtual().NewProc("p")
	sess, err := r.Connect(p)
	if err != nil {
		t.Fatal(err)
	}
	h, err := sess.Open(p, "f", storage.ModeCreate)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.WriteAt(p, []byte("ok"), 0); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(p); err != nil {
		t.Fatal(err)
	}

	// Trip member 0's breaker in the shared registry, as a resilient
	// wrapper feeding the same registry would after repeated faults.
	health.Breaker("m0").Trip(p.Now())
	c0.reads.Store(0)
	c0.opens.Store(0)

	rh, err := sess.Open(p, "f", storage.ModeRead)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2)
	for i := 0; i < 5; i++ {
		if _, err := rh.ReadAt(p, buf, 0); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
	}
	if string(buf) != "ok" {
		t.Fatalf("read %q", buf)
	}
	if got := c0.reads.Load() + c0.opens.Load(); got != 0 {
		t.Fatalf("tripped member probed %d times", got)
	}
	if c1.reads.Load() == 0 {
		t.Fatal("healthy member served no reads")
	}
}

// TestTrippedMemberStillLastResort: when every member's circuit is
// open, reads still go through rather than failing outright — an open
// breaker reorders, it does not amputate.
func TestTrippedMemberStillLastResort(t *testing.T) {
	r, _, _ := countingPair(t)
	health := resilient.NewHealth(resilient.BreakerConfig{})
	r.WithHealth(health)
	p := vtime.NewVirtual().NewProc("p")
	sess, err := r.Connect(p)
	if err != nil {
		t.Fatal(err)
	}
	h, err := sess.Open(p, "f", storage.ModeCreate)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.WriteAt(p, []byte("ok"), 0); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(p); err != nil {
		t.Fatal(err)
	}
	health.Breaker("m0").Trip(p.Now())
	health.Breaker("m1").Trip(p.Now())
	rh, err := sess.Open(p, "f", storage.ModeRead)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2)
	if _, err := rh.ReadAt(p, buf, 0); err != nil {
		t.Fatalf("all-tripped read refused: %v", err)
	}
}

// TestLastHealthyMemberRemembered: after failing over, reads keep
// going to the member that last served them instead of re-probing the
// member that failed, even once it is nominally back up.
func TestLastHealthyMemberRemembered(t *testing.T) {
	r, c0, c1 := countingPair(t)
	p := vtime.NewVirtual().NewProc("p")
	sess, err := r.Connect(p)
	if err != nil {
		t.Fatal(err)
	}
	h, err := sess.Open(p, "f", storage.ModeCreate)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.WriteAt(p, []byte("ok"), 0); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(p); err != nil {
		t.Fatal(err)
	}

	rh, err := sess.Open(p, "f", storage.ModeRead)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2)
	// Member 0 goes down; the read fails over to member 1.
	c0.SetDown(true)
	if _, err := rh.ReadAt(p, buf, 0); err != nil {
		t.Fatal(err)
	}
	if c1.reads.Load() == 0 {
		t.Fatal("failover read did not reach member 1")
	}
	// Member 0 recovers, but the replica remembers who last served it:
	// further reads stay on member 1 with no re-probe of member 0.
	c0.SetDown(false)
	c0.reads.Store(0)
	for i := 0; i < 3; i++ {
		if _, err := rh.ReadAt(p, buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	if c0.reads.Load() != 0 {
		t.Fatalf("recovered member re-probed %d times while preferred member healthy", c0.reads.Load())
	}
}
