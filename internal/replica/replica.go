// Package replica adds dataset replication across storage resources —
// the capability the paper's native interface advertises ("SRB …
// provides a uniform interface for connecting to heterogeneous data
// resources over a network and accessing replicated datasets") and a
// natural extension of the reliability argument in §5.
//
// A replica.Backend mirrors every write to all member resources and
// serves each read from the first healthy member, in member order (the
// caller lists members fastest-first).  A member outage therefore
// degrades performance, not availability: writes continue on the
// surviving members and reads fail over transparently.
package replica

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/resilient"
	"repro/internal/storage"
	"repro/internal/vtime"
)

// Backend replicates across member backends.  It implements
// storage.Backend.
type Backend struct {
	name    string
	kind    storage.Kind
	members []storage.Backend

	// preferred is the member that served the last successful read;
	// failover starts there instead of re-probing earlier members that
	// already failed.
	preferred atomic.Int32
	// health, when set, defers breaker-open members to the end of the
	// read order so a tripped member is not probed while alternatives
	// exist.
	health *resilient.Health
}

var _ storage.Backend = (*Backend)(nil)

// New returns a replicating backend over the given members (fastest
// first).  The advertised kind is the first member's.
func New(name string, members ...storage.Backend) (*Backend, error) {
	if len(members) < 2 {
		return nil, fmt.Errorf("replica %q: need at least 2 members, got %d", name, len(members))
	}
	return &Backend{name: name, kind: members[0].Kind(), members: members}, nil
}

// WithHealth consults the shared breaker registry when ordering read
// failover: members whose circuit is open are tried last.  It returns b
// for chaining after New.
func (b *Backend) WithHealth(h *resilient.Health) *Backend {
	b.health = h
	return b
}

// readOrder returns member indices in failover order for reads: the
// member that served the last successful read first, then the rest in
// declaration order, with breaker-open members deferred to the very
// end (still reachable when every alternative is gone).
func (b *Backend) readOrder() []int {
	pref := int(b.preferred.Load())
	order := make([]int, 0, len(b.members))
	var deferred []int
	push := func(i int) {
		if b.health != nil && !b.health.Available(b.members[i].Name()) {
			deferred = append(deferred, i)
			return
		}
		order = append(order, i)
	}
	push(pref)
	for i := range b.members {
		if i != pref {
			push(i)
		}
	}
	return append(order, deferred...)
}

// noteRead remembers the member that served a read, so the next read
// starts there.
func (b *Backend) noteRead(i int) { b.preferred.Store(int32(i)) }

// Name implements storage.Backend.
func (b *Backend) Name() string { return b.name }

// Kind implements storage.Backend.
func (b *Backend) Kind() storage.Kind { return b.kind }

// Capacity implements storage.Backend: the tightest member constraint,
// since every byte lands on every member.
func (b *Backend) Capacity() (total, used int64) {
	for i, m := range b.members {
		t, u := m.Capacity()
		if i == 0 || (t > 0 && (total <= 0 || t-u < total-used)) {
			total, used = t, u
		}
	}
	return total, used
}

func up(m storage.Backend) bool {
	o, ok := m.(storage.Outage)
	return !ok || !o.Down()
}

// Connect implements storage.Backend: sessions open on every healthy
// member (at least one required).
func (b *Backend) Connect(p *vtime.Proc) (storage.Session, error) {
	s := &session{b: b, sim: p.Sim(), members: make([]storage.Session, len(b.members))}
	healthy := 0
	var errs []error
	for i, m := range b.members {
		if !up(m) {
			continue
		}
		sess, err := m.Connect(p)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		s.members[i] = sess
		healthy++
	}
	if healthy == 0 {
		errs = append(errs, storage.ErrDown)
		return nil, fmt.Errorf("replica %q connect: %w", b.name, errors.Join(errs...))
	}
	return s, nil
}

type session struct {
	b       *Backend
	sim     *vtime.Sim
	mu      sync.Mutex
	members []storage.Session // index-aligned with b.members; nil = down at connect
	closed  bool
}

// live returns the usable member sessions, index-aligned (nil entries
// skipped by callers).
func (s *session) live() ([]storage.Session, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, storage.ErrClosed
	}
	return append([]storage.Session(nil), s.members...), nil
}

// forEachLive applies f to every connected, healthy member in parallel
// and fails if no member succeeded.
func (s *session) forEachLive(f func(i int, m storage.Session) error) error {
	members, err := s.live()
	if err != nil {
		return err
	}
	var wg sync.WaitGroup
	errs := make([]error, len(members))
	ok := false
	for i, m := range members {
		if m == nil || !up(s.b.members[i]) {
			errs[i] = storage.ErrDown
			continue
		}
		ok = true
		wg.Add(1)
		go func(i int, m storage.Session) {
			defer wg.Done()
			errs[i] = f(i, m)
		}(i, m)
	}
	wg.Wait()
	if !ok {
		return fmt.Errorf("replica %q: %w", s.b.name, storage.ErrDown)
	}
	// Writes must reach every live member; surface the first failure
	// that is not a down-member skip.
	for _, err := range errs {
		if err != nil && !errors.Is(err, storage.ErrDown) {
			return err
		}
	}
	return nil
}

// firstLive applies f to members in read-failover order until one
// succeeds: last-healthy first, breaker-open members last.
func (s *session) firstLive(f func(i int, m storage.Session) error) error {
	members, err := s.live()
	if err != nil {
		return err
	}
	var errs []error
	for _, i := range s.b.readOrder() {
		m := members[i]
		if m == nil || !up(s.b.members[i]) {
			continue
		}
		if err := f(i, m); err != nil {
			errs = append(errs, err)
			continue
		}
		s.b.noteRead(i)
		return nil
	}
	if errs == nil {
		errs = append(errs, storage.ErrDown)
	}
	return fmt.Errorf("replica %q: %w", s.b.name, errors.Join(errs...))
}

// Open implements storage.Session.  Writable opens reach all live
// members; read opens bind to the first member that has the file.
func (s *session) Open(p *vtime.Proc, name string, mode storage.AMode) (storage.Handle, error) {
	h := &handle{s: s, path: name, mode: mode, members: make([]storage.Handle, len(s.members))}
	if mode.Writable() {
		var mu sync.Mutex
		err := s.forEachLive(func(i int, m storage.Session) error {
			mh, err := m.Open(p, name, mode)
			if err != nil {
				return err
			}
			mu.Lock()
			h.members[i] = mh
			mu.Unlock()
			return nil
		})
		if err != nil {
			h.closeAll(p)
			return nil, err
		}
		return h, nil
	}
	err := s.firstLive(func(i int, m storage.Session) error {
		mh, err := m.Open(p, name, mode)
		if err != nil {
			return err
		}
		h.members[i] = mh
		return nil
	})
	if err != nil {
		return nil, err
	}
	return h, nil
}

// Remove implements storage.Session.
func (s *session) Remove(p *vtime.Proc, name string) error {
	return s.forEachLive(func(i int, m storage.Session) error {
		err := m.Remove(p, name)
		if errors.Is(err, storage.ErrNotExist) {
			return nil // replica may predate the member
		}
		return err
	})
}

// Stat implements storage.Session.
func (s *session) Stat(p *vtime.Proc, name string) (fi storage.FileInfo, err error) {
	err = s.firstLive(func(i int, m storage.Session) error {
		fi, err = m.Stat(p, name)
		return err
	})
	return fi, err
}

// List implements storage.Session.
func (s *session) List(p *vtime.Proc, prefix string) (fis []storage.FileInfo, err error) {
	err = s.firstLive(func(i int, m storage.Session) error {
		fis, err = m.List(p, prefix)
		return err
	})
	return fis, err
}

// Close implements storage.Session.
func (s *session) Close(p *vtime.Proc) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("replica %q close: %w", s.b.name, storage.ErrClosed)
	}
	s.closed = true
	members := append([]storage.Session(nil), s.members...)
	s.mu.Unlock()
	var errs []error
	for i, m := range members {
		if m == nil || !up(s.b.members[i]) {
			continue
		}
		if err := m.Close(p); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

type handle struct {
	s       *session
	path    string
	mode    storage.AMode
	mu      sync.Mutex
	members []storage.Handle
	closed  bool
}

var _ storage.Handle = (*handle)(nil)

func (h *handle) Path() string { return h.path }

// Size reports the first live member's size.
func (h *handle) Size() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i, m := range h.members {
		if m != nil && up(h.s.b.members[i]) {
			return m.Size()
		}
	}
	return 0
}

// WriteAt mirrors to every live member in parallel; the caller's clock
// advances to the slowest replica (a synchronous-replication model).
// Each mirror stream runs on its own agent clock starting at the
// caller's instant, so a slow member never inflates the fast member's
// device occupancy.
func (h *handle) WriteAt(p *vtime.Proc, b []byte, off int64) (int, error) {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return 0, storage.ErrClosed
	}
	members := append([]storage.Handle(nil), h.members...)
	h.mu.Unlock()
	var wg sync.WaitGroup
	errs := make([]error, len(members))
	agents := make([]*vtime.Proc, len(members))
	wrote := false
	for i, m := range members {
		if m == nil || !up(h.s.b.members[i]) {
			continue
		}
		wrote = true
		agent := h.s.sim.NewProc(p.Name() + "/replica")
		agent.AdvanceTo(p.Now())
		agents[i] = agent
		wg.Add(1)
		go func(i int, m storage.Handle, agent *vtime.Proc) {
			defer wg.Done()
			_, errs[i] = m.WriteAt(agent, b, off)
		}(i, m, agent)
	}
	wg.Wait()
	if !wrote {
		return 0, fmt.Errorf("replica %q write %q: %w", h.s.b.name, h.path, storage.ErrDown)
	}
	for _, agent := range agents {
		if agent != nil {
			p.AdvanceTo(agent.Now())
		}
	}
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return len(b), nil
}

// ReadAt serves from the first live member with an open handle, opening
// lazily on a later member if the preferred one went down.
func (h *handle) ReadAt(p *vtime.Proc, b []byte, off int64) (int, error) {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return 0, storage.ErrClosed
	}
	members := append([]storage.Handle(nil), h.members...)
	h.mu.Unlock()
	var errs []error
	for _, i := range h.s.b.readOrder() {
		m := members[i]
		if !up(h.s.b.members[i]) {
			continue
		}
		if m == nil {
			// Fail over: open this member's copy on demand.
			sess := h.s.members[i]
			if sess == nil {
				continue
			}
			nm, err := sess.Open(p, h.path, storage.ModeRead)
			if err != nil {
				errs = append(errs, err)
				continue
			}
			h.mu.Lock()
			h.members[i] = nm
			h.mu.Unlock()
			m = nm
		}
		n, err := m.ReadAt(p, b, off)
		if err == nil || n > 0 {
			h.s.b.noteRead(i)
			return n, err
		}
		errs = append(errs, err)
	}
	if errs == nil {
		errs = append(errs, storage.ErrDown)
	}
	return 0, fmt.Errorf("replica %q read %q: %w", h.s.b.name, h.path, errors.Join(errs...))
}

func (h *handle) closeAll(p *vtime.Proc) {
	for i, m := range h.members {
		if m != nil && up(h.s.b.members[i]) {
			m.Close(p)
		}
		h.members[i] = nil
	}
}

// Close implements storage.Handle.
func (h *handle) Close(p *vtime.Proc) error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return storage.ErrClosed
	}
	h.closed = true
	members := append([]storage.Handle(nil), h.members...)
	h.mu.Unlock()
	var errs []error
	for i, m := range members {
		if m == nil || !up(h.s.b.members[i]) {
			continue
		}
		if err := m.Close(p); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}
