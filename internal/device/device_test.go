package device

import (
	"errors"
	"testing"
	"time"

	"repro/internal/memfs"
	"repro/internal/model"
	"repro/internal/storage"
	"repro/internal/vtime"
)

func newBackend(t *testing.T, cfg Config) *Backend {
	t.Helper()
	if cfg.Store == nil {
		cfg.Store = memfs.New()
	}
	if cfg.Name == "" {
		cfg.Name = "test"
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestConnectChargesConn(t *testing.T) {
	b := newBackend(t, Config{Params: model.RemoteDisk2000(), Kind: storage.KindRemoteDisk})
	p := vtime.NewVirtual().NewProc("p")
	s, err := b.Connect(p)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := p.Now(), 440*time.Millisecond; got != want {
		t.Fatalf("conn charge = %v, want %v", got, want)
	}
	if err := s.Close(p); err != nil {
		t.Fatal(err)
	}
	if got, want := p.Now(), 440*time.Millisecond+200*time.Microsecond; got != want {
		t.Fatalf("after connclose = %v, want %v", got, want)
	}
}

func TestOpenWriteCloseCosts(t *testing.T) {
	params := model.LocalDisk2000()
	b := newBackend(t, Config{Params: params, Kind: storage.KindLocalDisk})
	p := vtime.NewVirtual().NewProc("p")
	s, _ := b.Connect(p)
	h, err := s.Open(p, "f", storage.ModeCreate)
	if err != nil {
		t.Fatal(err)
	}
	afterOpen := p.Now()
	if afterOpen != params.OpenWrite {
		t.Fatalf("open charge = %v, want %v", afterOpen, params.OpenWrite)
	}
	data := make([]byte, model.MiB)
	if _, err := h.WriteAt(p, data, 0); err != nil {
		t.Fatal(err)
	}
	wantXfer := params.Xfer(model.Write, model.MiB)
	if got := p.Now() - afterOpen; got != wantXfer {
		t.Fatalf("write charge = %v, want %v", got, wantXfer)
	}
	before := p.Now()
	if err := h.Close(p); err != nil {
		t.Fatal(err)
	}
	if got := p.Now() - before; got != params.CloseWrite {
		t.Fatalf("close charge = %v, want %v", got, params.CloseWrite)
	}
}

func TestSeekChargedOnDiscontiguousReadsOnly(t *testing.T) {
	params := model.RemoteDisk2000()
	b := newBackend(t, Config{Params: params, Kind: storage.KindRemoteDisk})
	p := vtime.NewVirtual().NewProc("p")
	s, _ := b.Connect(p)
	h, _ := s.Open(p, "f", storage.ModeCreate)
	chunk := make([]byte, 1000)

	// Writes never pay the seek constant (Table 1: write seek is "–").
	start := p.Now()
	h.WriteAt(p, chunk, 0)
	h.WriteAt(p, chunk, 50000)
	perWrite := (p.Now() - start) / 2
	if perWrite >= params.Seek {
		t.Fatalf("write charged a seek: %v per write", perWrite)
	}
	h.Close(p)

	r, _ := s.Open(p, "f", storage.ModeRead)
	buf := make([]byte, 1000)
	start = p.Now()
	r.ReadAt(p, buf, 0)    // first access of this proc: free positioning
	r.ReadAt(p, buf, 1000) // sequential: no seek
	seq := p.Now() - start

	start = p.Now()
	r.ReadAt(p, buf, 30000) // jump: seek charged
	jump := p.Now() - start
	if want := seq/2 + params.Seek; jump != want {
		t.Fatalf("jump read = %v, want sequential %v + seek %v", jump, seq/2, params.Seek)
	}
}

func TestSeekTrackedPerProcess(t *testing.T) {
	// Two processes streaming disjoint regions of one shared handle must
	// not charge each other seeks (parallel streams after a shared open).
	params := model.Params{Name: "m", Seek: time.Second, ReadBW: model.MiB}
	b := newBackend(t, Config{Params: params, Kind: storage.KindRemoteDisk})
	sim := vtime.NewVirtual()
	admin := sim.NewProc("admin")
	s, _ := b.Connect(admin)
	w, _ := s.Open(admin, "f", storage.ModeCreate)
	w.WriteAt(admin, make([]byte, 4096), 0)
	w.Close(admin)

	h, _ := s.Open(admin, "f", storage.ModeRead)
	a, c := sim.NewProc("a"), sim.NewProc("c")
	buf := make([]byte, 1024)
	h.ReadAt(a, buf, 0)
	h.ReadAt(c, buf, 2048) // first access for c: no seek despite a's position
	h.ReadAt(a, buf, 1024) // sequential for a: no seek
	h.ReadAt(c, buf, 3072) // sequential for c: no seek
	if a.Now() >= time.Second || c.Now() >= time.Second {
		t.Fatalf("interleaved streams charged seeks: a=%v c=%v", a.Now(), c.Now())
	}
}

func TestDataRoundTripThroughBackend(t *testing.T) {
	b := newBackend(t, Config{Params: model.Memory(), Kind: storage.KindMemory})
	p := vtime.NewVirtual().NewProc("p")
	s, _ := b.Connect(p)
	h, _ := s.Open(p, "f", storage.ModeCreate)
	msg := []byte("the bytes must really move")
	h.WriteAt(p, msg, 3)
	h.Close(p)

	h2, err := s.Open(p, "f", storage.ModeRead)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := h2.ReadAt(p, got, 3); err != nil {
		t.Fatal(err)
	}
	if string(got) != string(msg) {
		t.Fatalf("round trip = %q", got)
	}
}

func TestCreateExistingFails(t *testing.T) {
	b := newBackend(t, Config{Params: model.Memory()})
	p := vtime.NewVirtual().NewProc("p")
	s, _ := b.Connect(p)
	h, _ := s.Open(p, "f", storage.ModeCreate)
	h.Close(p)
	if _, err := s.Open(p, "f", storage.ModeCreate); !errors.Is(err, storage.ErrExist) {
		t.Fatalf("create existing err = %v, want ErrExist", err)
	}
	// over_write succeeds and truncates.
	h2, err := s.Open(p, "f", storage.ModeOverWrite)
	if err != nil {
		t.Fatal(err)
	}
	if h2.Size() != 0 {
		t.Fatalf("over_write did not truncate, size = %d", h2.Size())
	}
}

func TestReadOnlyHandleRejectsWrite(t *testing.T) {
	b := newBackend(t, Config{Params: model.Memory()})
	p := vtime.NewVirtual().NewProc("p")
	s, _ := b.Connect(p)
	h, _ := s.Open(p, "f", storage.ModeCreate)
	h.WriteAt(p, []byte{1}, 0)
	h.Close(p)
	r, _ := s.Open(p, "f", storage.ModeRead)
	if _, err := r.WriteAt(p, []byte{2}, 0); !errors.Is(err, storage.ErrReadOnly) {
		t.Fatalf("write on read handle err = %v", err)
	}
}

func TestCapacityEnforced(t *testing.T) {
	b := newBackend(t, Config{Params: model.Memory(), Capacity: 100})
	p := vtime.NewVirtual().NewProc("p")
	s, _ := b.Connect(p)
	h, _ := s.Open(p, "f", storage.ModeCreate)
	if _, err := h.WriteAt(p, make([]byte, 80), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := h.WriteAt(p, make([]byte, 80), 80); !errors.Is(err, storage.ErrCapacity) {
		t.Fatalf("over-capacity write err = %v, want ErrCapacity", err)
	}
	// Overwriting in place does not extend and must succeed.
	if _, err := h.WriteAt(p, make([]byte, 80), 0); err != nil {
		t.Fatalf("in-place overwrite err = %v", err)
	}
	total, used := b.Capacity()
	if total != 100 || used != 80 {
		t.Fatalf("capacity = (%d, %d), want (100, 80)", total, used)
	}
}

func TestOutage(t *testing.T) {
	b := newBackend(t, Config{Params: model.Memory()})
	p := vtime.NewVirtual().NewProc("p")
	s, _ := b.Connect(p)
	h, _ := s.Open(p, "f", storage.ModeCreate)
	b.SetDown(true)
	if !b.Down() {
		t.Fatal("Down() = false after SetDown(true)")
	}
	if _, err := b.Connect(p); !errors.Is(err, storage.ErrDown) {
		t.Fatalf("connect while down err = %v", err)
	}
	if _, err := s.Open(p, "g", storage.ModeCreate); !errors.Is(err, storage.ErrDown) {
		t.Fatalf("open while down err = %v", err)
	}
	if _, err := h.WriteAt(p, []byte{1}, 0); !errors.Is(err, storage.ErrDown) {
		t.Fatalf("write while down err = %v", err)
	}
	b.SetDown(false)
	if _, err := h.WriteAt(p, []byte{1}, 0); err != nil {
		t.Fatalf("write after recovery err = %v", err)
	}
}

func TestChannelsOverlapByPath(t *testing.T) {
	params := model.Params{Name: "x", WriteBW: model.MiB} // 1 MiB/s, nothing else
	b := newBackend(t, Config{Params: params, Channels: 4})
	sim := vtime.NewVirtual()
	// Write 1 MiB to four different files from four procs: with 4
	// channels at least two files should land on distinct channels, so
	// the max finish time is below full serialization (4 s).  Use many
	// files to make hash collisions across all four vanishingly unlikely.
	ps := sim.NewProcs("r", 4)
	done := make(chan time.Duration, 4)
	for i, p := range ps {
		go func(i int, p *vtime.Proc) {
			s, _ := b.Connect(p)
			h, _ := s.Open(p, "file-"+string(rune('a'+i)), storage.ModeCreate)
			h.WriteAt(p, make([]byte, model.MiB), 0)
			done <- p.Now()
		}(i, p)
	}
	var max time.Duration
	for i := 0; i < 4; i++ {
		if d := <-done; d > max {
			max = d
		}
	}
	if max >= 4*time.Second {
		t.Fatalf("4 files on 4 channels fully serialized (%v); hashing broken", max)
	}
}

func TestSingleChannelSerializes(t *testing.T) {
	params := model.Params{Name: "wan", WriteBW: model.MiB}
	b := newBackend(t, Config{Params: params, Channels: 1})
	sim := vtime.NewVirtual()
	ps := sim.NewProcs("r", 3)
	done := make(chan time.Duration, 3)
	for i, p := range ps {
		go func(i int, p *vtime.Proc) {
			s, _ := b.Connect(p)
			h, _ := s.Open(p, "f"+string(rune('0'+i)), storage.ModeCreate)
			h.WriteAt(p, make([]byte, model.MiB), 0)
			done <- p.Now()
		}(i, p)
	}
	var max time.Duration
	for i := 0; i < 3; i++ {
		if d := <-done; d > max {
			max = d
		}
	}
	if max != 3*time.Second {
		t.Fatalf("single channel finish = %v, want 3s (serialized)", max)
	}
}

func TestStatListRemove(t *testing.T) {
	b := newBackend(t, Config{Params: model.Memory()})
	p := vtime.NewVirtual().NewProc("p")
	s, _ := b.Connect(p)
	for _, n := range []string{"d/one", "d/two"} {
		h, _ := s.Open(p, n, storage.ModeCreate)
		h.WriteAt(p, []byte{1, 2, 3}, 0)
		h.Close(p)
	}
	fi, err := s.Stat(p, "d/one")
	if err != nil || fi.Size != 3 {
		t.Fatalf("Stat = %+v, %v", fi, err)
	}
	ls, err := s.List(p, "d/")
	if err != nil || len(ls) != 2 {
		t.Fatalf("List = %v, %v", ls, err)
	}
	if err := s.Remove(p, "d/one"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Stat(p, "d/one"); !errors.Is(err, storage.ErrNotExist) {
		t.Fatalf("stat removed = %v", err)
	}
}

func TestClosedSessionAndHandle(t *testing.T) {
	b := newBackend(t, Config{Params: model.Memory()})
	p := vtime.NewVirtual().NewProc("p")
	s, _ := b.Connect(p)
	h, _ := s.Open(p, "f", storage.ModeCreate)
	if err := h.Close(p); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(p); !errors.Is(err, storage.ErrClosed) {
		t.Fatalf("double handle close = %v", err)
	}
	if err := s.Close(p); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(p); !errors.Is(err, storage.ErrClosed) {
		t.Fatalf("double session close = %v", err)
	}
	if _, err := s.Open(p, "g", storage.ModeCreate); !errors.Is(err, storage.ErrClosed) {
		t.Fatalf("open on closed session = %v", err)
	}
}

func TestNilStoreRejected(t *testing.T) {
	if _, err := New(Config{Name: "x"}); err == nil {
		t.Fatal("New with nil store succeeded")
	}
}
