// Package device implements a generic timed storage backend: a raw
// byte Store fronted by an eq. (1) cost model and a set of virtual-time
// device resources.  The local-disk and remote-disk resources of the
// paper's architecture are instances of this package (see the localdisk
// and remotedisk packages); the tape resource needs mount/wind mechanics
// and lives in its own package.
package device

import (
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/model"
	"repro/internal/storage"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// Config describes one timed storage resource.
type Config struct {
	// Name is the backend instance name, e.g. "argonne-ssa".
	Name string
	// Kind is the storage class advertised to the placement layer.
	Kind storage.Kind
	// Params is the eq. (1) cost model.
	Params model.Params
	// Store holds the actual bytes.
	Store storage.Store
	// Channels is the number of independent device channels.  Files hash
	// onto channels, so transfers to distinct files overlap up to
	// Channels ways (the SP2 node's four SSA disks), while Channels == 1
	// models a single shared WAN link that serializes everything.
	Channels int
	// Capacity in bytes; <= 0 means unlimited.
	Capacity int64
	// Trace, when non-nil, records every native call served.
	Trace *trace.Recorder
}

// Backend is a timed storage resource.  It implements storage.Backend
// and storage.Outage.
type Backend struct {
	cfg      Config
	channels []*vtime.Resource
	down     atomic.Bool
}

var (
	_ storage.Backend = (*Backend)(nil)
	_ storage.Outage  = (*Backend)(nil)
)

// New returns a Backend for the given configuration.
func New(cfg Config) (*Backend, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("device %q: nil store", cfg.Name)
	}
	if cfg.Channels <= 0 {
		cfg.Channels = 1
	}
	b := &Backend{cfg: cfg}
	b.channels = make([]*vtime.Resource, cfg.Channels)
	for i := range b.channels {
		b.channels[i] = vtime.NewResource(fmt.Sprintf("%s/ch%d", cfg.Name, i))
	}
	return b, nil
}

// Name implements storage.Backend.
func (b *Backend) Name() string { return b.cfg.Name }

// Kind implements storage.Backend.
func (b *Backend) Kind() storage.Kind { return b.cfg.Kind }

// Model returns the backend's cost model (used by tests and reports; the
// predictor proper learns costs through PTool measurements).
func (b *Backend) Model() model.Params { return b.cfg.Params }

// Capacity implements storage.Backend.
func (b *Backend) Capacity() (total, used int64) {
	return b.cfg.Capacity, b.cfg.Store.UsedBytes()
}

// SetDown implements storage.Outage.
func (b *Backend) SetDown(down bool) { b.down.Store(down) }

// Down implements storage.Outage.
func (b *Backend) Down() bool { return b.down.Load() }

// ResetClocks returns all device channels to idle.  Benchmark scenarios
// call this between runs so queueing state does not leak across them.
func (b *Backend) ResetClocks() {
	for _, ch := range b.channels {
		ch.Reset()
	}
}

// record emits one trace event covering [start, now] on p's clock.
func (b *Backend) record(p *vtime.Proc, op trace.Op, path string, bytes int64, start time.Duration) {
	b.cfg.Trace.Record(trace.Event{
		At: p.Now(), Proc: p.Name(), Backend: b.cfg.Name,
		Op: op, Path: path, Bytes: bytes, Cost: p.Now() - start,
	})
}

// channel returns the device channel a path is bound to.
func (b *Backend) channel(path string) *vtime.Resource {
	if len(b.channels) == 1 {
		return b.channels[0]
	}
	h := fnv.New32a()
	h.Write([]byte(path))
	return b.channels[h.Sum32()%uint32(len(b.channels))]
}

// Connect implements storage.Backend, charging the communication-setup
// constant.
func (b *Backend) Connect(p *vtime.Proc) (storage.Session, error) {
	if b.Down() {
		return nil, fmt.Errorf("device %q connect: %w", b.cfg.Name, storage.ErrDown)
	}
	start := p.Now()
	p.Advance(b.cfg.Params.Conn)
	b.record(p, trace.OpConnect, "", 0, start)
	return &session{b: b}, nil
}

type session struct {
	b      *Backend
	closed atomic.Bool
}

func (s *session) guard(op string) error {
	if s.closed.Load() {
		return fmt.Errorf("device %q %s: %w", s.b.cfg.Name, op, storage.ErrClosed)
	}
	if s.b.Down() {
		return fmt.Errorf("device %q %s: %w", s.b.cfg.Name, op, storage.ErrDown)
	}
	return nil
}

// Open implements storage.Session, charging the file-open constant.
func (s *session) Open(p *vtime.Proc, name string, mode storage.AMode) (storage.Handle, error) {
	if err := s.guard("open"); err != nil {
		return nil, err
	}
	name, err := storage.CleanPath(name)
	if err != nil {
		return nil, err
	}
	op := model.Read
	if mode.Writable() {
		op = model.Write
	}
	if mode == storage.ModeCreate {
		if _, err := s.b.cfg.Store.Stat(name); err == nil {
			return nil, fmt.Errorf("device %q create %q: %w", s.b.cfg.Name, name, storage.ErrExist)
		}
	}
	f, err := s.b.cfg.Store.Open(name, mode.Writable(), mode == storage.ModeOverWrite)
	if err != nil {
		return nil, err
	}
	start := p.Now()
	p.Advance(s.b.cfg.Params.Open(op))
	s.b.record(p, trace.OpOpen, name, 0, start)
	return &handle{s: s, f: f, path: name, mode: mode}, nil
}

// Remove implements storage.Session.
func (s *session) Remove(p *vtime.Proc, name string) error {
	if err := s.guard("remove"); err != nil {
		return err
	}
	p.Advance(s.b.cfg.Params.PerCall(model.Write))
	return s.b.cfg.Store.Remove(name)
}

// Stat implements storage.Session.
func (s *session) Stat(p *vtime.Proc, name string) (storage.FileInfo, error) {
	if err := s.guard("stat"); err != nil {
		return storage.FileInfo{}, err
	}
	p.Advance(s.b.cfg.Params.PerCall(model.Read))
	return s.b.cfg.Store.Stat(name)
}

// List implements storage.Session.
func (s *session) List(p *vtime.Proc, prefix string) ([]storage.FileInfo, error) {
	if err := s.guard("list"); err != nil {
		return nil, err
	}
	p.Advance(s.b.cfg.Params.PerCall(model.Read))
	return s.b.cfg.Store.List(prefix)
}

// Close implements storage.Session, charging the connection teardown.
func (s *session) Close(p *vtime.Proc) error {
	if s.closed.Swap(true) {
		return fmt.Errorf("device %q session close: %w", s.b.cfg.Name, storage.ErrClosed)
	}
	p.Advance(s.b.cfg.Params.ConnClose)
	return nil
}

type handle struct {
	s    *session
	f    storage.File
	path string
	mode storage.AMode

	mu      sync.Mutex
	lastEnd map[*vtime.Proc]int64
	closed  bool
}

var _ storage.Handle = (*handle)(nil)

func (h *handle) Path() string { return h.path }
func (h *handle) Size() int64  { return h.f.Size() }

// seekCost reports whether an access at off by p pays the seek
// constant, and records the new head position.  Seek state is tracked
// per process: each parallel stream positioning itself once after open
// is free (that positioning is part of the open), while discontiguous
// accesses within one process's stream — the strided patterns that
// data sieving and collective I/O exist to avoid — pay the Table 1
// seek constant.
func (h *handle) seekCost(p *vtime.Proc, off, n int64) (cost bool, err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return false, storage.ErrClosed
	}
	if h.lastEnd == nil {
		h.lastEnd = make(map[*vtime.Proc]int64)
	}
	prev, seen := h.lastEnd[p]
	cost = seen && prev != off
	h.lastEnd[p] = off + n
	return cost, nil
}

// ReadAt implements storage.Handle.
func (h *handle) ReadAt(p *vtime.Proc, b []byte, off int64) (int, error) {
	if err := h.s.guard("read"); err != nil {
		return 0, err
	}
	seek, err := h.seekCost(p, off, int64(len(b)))
	if err != nil {
		return 0, fmt.Errorf("device %q read %q: %w", h.s.b.cfg.Name, h.path, err)
	}
	start := p.Now()
	n, err := h.f.ReadAt(b, off)
	cost := h.s.b.cfg.Params.Xfer(model.Read, int64(n))
	if seek {
		cost += h.s.b.cfg.Params.Seek
	}
	h.s.b.channel(h.path).Acquire(p, cost)
	h.s.b.record(p, trace.OpRead, h.path, int64(n), start)
	return n, err
}

// WriteAt implements storage.Handle.
func (h *handle) WriteAt(p *vtime.Proc, b []byte, off int64) (int, error) {
	if err := h.s.guard("write"); err != nil {
		return 0, err
	}
	if !h.mode.Writable() {
		return 0, fmt.Errorf("device %q write %q: %w", h.s.b.cfg.Name, h.path, storage.ErrReadOnly)
	}
	if limit := h.s.b.cfg.Capacity; limit > 0 {
		ext := off + int64(len(b)) - h.f.Size()
		if ext > 0 && h.s.b.cfg.Store.UsedBytes()+ext > limit {
			return 0, fmt.Errorf("device %q write %q: %w", h.s.b.cfg.Name, h.path, storage.ErrCapacity)
		}
	}
	// Table 1 marks the seek term "–" for writes: appends reposition as
	// part of the transfer, so only the head-position bookkeeping runs.
	if _, err := h.seekCost(p, off, int64(len(b))); err != nil {
		return 0, fmt.Errorf("device %q write %q: %w", h.s.b.cfg.Name, h.path, err)
	}
	start := p.Now()
	n, err := h.f.WriteAt(b, off)
	h.s.b.channel(h.path).Acquire(p, h.s.b.cfg.Params.Xfer(model.Write, int64(n)))
	h.s.b.record(p, trace.OpWrite, h.path, int64(n), start)
	return n, err
}

// Close implements storage.Handle, charging the file-close constant.
func (h *handle) Close(p *vtime.Proc) error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return fmt.Errorf("device %q close %q: %w", h.s.b.cfg.Name, h.path, storage.ErrClosed)
	}
	h.closed = true
	h.mu.Unlock()
	op := model.Read
	if h.mode.Writable() {
		op = model.Write
	}
	start := p.Now()
	p.Advance(h.s.b.cfg.Params.Close(op))
	h.s.b.record(p, trace.OpClose, h.path, 0, start)
	return h.f.Close()
}
