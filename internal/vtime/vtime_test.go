package vtime

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestProcAdvance(t *testing.T) {
	sim := NewVirtual()
	p := sim.NewProc("p0")
	if p.Now() != 0 {
		t.Fatalf("new proc clock = %v, want 0", p.Now())
	}
	p.Advance(3 * time.Second)
	p.Advance(2 * time.Second)
	if got := p.Now(); got != 5*time.Second {
		t.Fatalf("Now = %v, want 5s", got)
	}
}

func TestProcAdvanceNegativeIgnored(t *testing.T) {
	p := NewVirtual().NewProc("p")
	p.Advance(time.Second)
	p.Advance(-time.Second)
	if got := p.Now(); got != time.Second {
		t.Fatalf("Now = %v, want 1s", got)
	}
}

func TestAdvanceTo(t *testing.T) {
	p := NewVirtual().NewProc("p")
	if d := p.AdvanceTo(4 * time.Second); d != 4*time.Second {
		t.Fatalf("AdvanceTo returned %v, want 4s", d)
	}
	if d := p.AdvanceTo(2 * time.Second); d != 0 {
		t.Fatalf("backward AdvanceTo returned %v, want 0", d)
	}
	if got := p.Now(); got != 4*time.Second {
		t.Fatalf("Now = %v, want 4s", got)
	}
}

func TestBarrier(t *testing.T) {
	sim := NewVirtual()
	ps := sim.NewProcs("r", 4)
	for i, p := range ps {
		p.Advance(time.Duration(i) * time.Second)
	}
	max := Barrier(ps...)
	if max != 3*time.Second {
		t.Fatalf("Barrier = %v, want 3s", max)
	}
	for i, p := range ps {
		if p.Now() != 3*time.Second {
			t.Fatalf("proc %d at %v after barrier, want 3s", i, p.Now())
		}
	}
}

func TestResourceQueueing(t *testing.T) {
	sim := NewVirtual()
	r := NewResource("drive")
	a := sim.NewProc("a")
	b := sim.NewProc("b")

	// a occupies [0,10); b requests at its local time 2 but must wait.
	r.Acquire(a, 10*time.Second)
	b.Advance(2 * time.Second)
	end := r.Acquire(b, 5*time.Second)
	if end != 15*time.Second {
		t.Fatalf("b finished at %v, want 15s (queued behind a)", end)
	}
	if b.Now() != 15*time.Second {
		t.Fatalf("b clock %v, want 15s", b.Now())
	}
	busy, ops := r.Stats()
	if busy != 15*time.Second || ops != 2 {
		t.Fatalf("stats = (%v, %d), want (15s, 2)", busy, ops)
	}
}

func TestResourceIdleGap(t *testing.T) {
	sim := NewVirtual()
	r := NewResource("disk")
	p := sim.NewProc("p")
	p.Advance(100 * time.Second)
	end := r.Acquire(p, time.Second)
	if end != 101*time.Second {
		t.Fatalf("end = %v, want 101s (resource idle until caller arrives)", end)
	}
}

func TestPoolOverlap(t *testing.T) {
	sim := NewVirtual()
	pool := NewPool("ssa", 4)
	ps := sim.NewProcs("r", 4)
	// Four procs each use a disk for 8s; with 4 members all overlap.
	var wg sync.WaitGroup
	for _, p := range ps {
		wg.Add(1)
		go func(p *Proc) {
			defer wg.Done()
			pool.Acquire(p, 8*time.Second)
		}(p)
	}
	wg.Wait()
	for i, p := range ps {
		if p.Now() != 8*time.Second {
			t.Fatalf("proc %d at %v, want 8s (fully overlapped)", i, p.Now())
		}
	}
}

func TestPoolQueuesWhenOversubscribed(t *testing.T) {
	sim := NewVirtual()
	pool := NewPool("d", 2)
	p := sim.NewProc("p")
	// One proc issuing 4 sequential ops can't exceed serial behaviour...
	for i := 0; i < 4; i++ {
		pool.Acquire(p, time.Second)
	}
	if p.Now() != 4*time.Second {
		t.Fatalf("sequential caller at %v, want 4s", p.Now())
	}
	// ...but 4 independent procs on 2 members take 2 rounds.
	pool.Reset()
	ps := sim.NewProcs("q", 4)
	for _, q := range ps {
		pool.Acquire(q, time.Second)
	}
	if max := MaxNow(ps...); max != 2*time.Second {
		t.Fatalf("oversubscribed finish = %v, want 2s", max)
	}
}

func TestScaledModeSleeps(t *testing.T) {
	sim := NewScaled(1e-6) // 1s simulated = 1µs wall
	p := sim.NewProc("p")
	start := time.Now()
	p.Advance(2 * time.Second)
	if el := time.Since(start); el > 500*time.Millisecond {
		t.Fatalf("scaled advance slept %v, far above scale", el)
	}
	if p.Now() != 2*time.Second {
		t.Fatalf("Now = %v, want 2s", p.Now())
	}
}

func TestResourceReset(t *testing.T) {
	r := NewResource("x")
	p := NewVirtual().NewProc("p")
	r.Acquire(p, time.Second)
	r.Reset()
	if f := r.FreeAt(); f != 0 {
		t.Fatalf("FreeAt after reset = %v, want 0", f)
	}
	busy, ops := r.Stats()
	if busy != 0 || ops != 0 {
		t.Fatalf("stats after reset = (%v,%d), want zeros", busy, ops)
	}
}

func TestModeString(t *testing.T) {
	if Virtual.String() != "virtual" || Scaled.String() != "scaled" {
		t.Fatalf("unexpected mode strings %q %q", Virtual, Scaled)
	}
	if Mode(42).String() != "Mode(42)" {
		t.Fatalf("unknown mode string = %q", Mode(42))
	}
}

// Property: a clock never decreases, whatever mix of Advance/AdvanceTo.
func TestQuickClockMonotonic(t *testing.T) {
	f := func(steps []int16) bool {
		p := NewVirtual().NewProc("p")
		prev := time.Duration(0)
		for _, s := range steps {
			if s%2 == 0 {
				p.Advance(time.Duration(s) * time.Millisecond)
			} else {
				p.AdvanceTo(time.Duration(s) * time.Millisecond)
			}
			if p.Now() < prev {
				return false
			}
			prev = p.Now()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: serialized resource busy time equals the sum of granted
// durations, and freeAt is at least that sum when all requests start at 0.
func TestQuickResourceConservation(t *testing.T) {
	f := func(durs []uint8) bool {
		sim := NewVirtual()
		r := NewResource("r")
		var sum time.Duration
		for i, d := range durs {
			p := sim.NewProc("p")
			_ = i
			r.Acquire(p, time.Duration(d)*time.Millisecond)
			sum += time.Duration(d) * time.Millisecond
		}
		busy, ops := r.Stats()
		return busy == sum && ops == int64(len(durs)) && r.FreeAt() == sum
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Barrier leaves every proc at the same time, equal to the prior max.
func TestQuickBarrier(t *testing.T) {
	f := func(offsets []uint16) bool {
		if len(offsets) == 0 {
			return true
		}
		sim := NewVirtual()
		ps := make([]*Proc, len(offsets))
		var want time.Duration
		for i, o := range offsets {
			ps[i] = sim.NewProc("p")
			d := time.Duration(o) * time.Millisecond
			ps[i].Advance(d)
			if d > want {
				want = d
			}
		}
		got := Barrier(ps...)
		if got != want {
			return false
		}
		for _, p := range ps {
			if p.Now() != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentResourceRace(t *testing.T) {
	// Exercised under -race: concurrent acquires must be safe and conserve
	// busy time.
	sim := NewVirtual()
	r := NewResource("shared")
	const n = 32
	ps := sim.NewProcs("w", n)
	var wg sync.WaitGroup
	for _, p := range ps {
		wg.Add(1)
		go func(p *Proc) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				r.Acquire(p, time.Millisecond)
			}
		}(p)
	}
	wg.Wait()
	busy, ops := r.Stats()
	if ops != n*10 || busy != n*10*time.Millisecond {
		t.Fatalf("stats = (%v,%d), want (%v,%d)", busy, ops, n*10*time.Millisecond, n*10)
	}
	if r.FreeAt() != busy {
		t.Fatalf("freeAt %v != busy %v for back-to-back serialized ops", r.FreeAt(), busy)
	}
}

func TestConstructorPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("NewScaled(0)", func() { NewScaled(0) })
	mustPanic("NewScaled(-1)", func() { NewScaled(-1) })
	mustPanic("NewPool(0)", func() { NewPool("p", 0) })
}

func TestSimAccessors(t *testing.T) {
	v := NewVirtual()
	if v.Mode() != Virtual || v.Scale() != 0 {
		t.Fatalf("virtual sim = %v %v", v.Mode(), v.Scale())
	}
	s := NewScaled(0.5)
	if s.Mode() != Scaled || s.Scale() != 0.5 {
		t.Fatalf("scaled sim = %v %v", s.Mode(), s.Scale())
	}
	p := v.NewProc("x")
	if p.Sim() != v || p.Name() != "x" {
		t.Fatal("proc accessors broken")
	}
	pool := NewPool("d", 3)
	if pool.Size() != 3 || pool.Member(1).Name() != "d1" {
		t.Fatalf("pool accessors: size=%d member=%q", pool.Size(), pool.Member(1).Name())
	}
}
