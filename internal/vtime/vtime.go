// Package vtime provides the simulated-time substrate for the
// multi-storage resource architecture.
//
// The paper's experiments ran on year-2000 hardware (SSA disks on an IBM
// SP2, SRB-served remote disks and HPSS tapes at SDSC).  Reproducing the
// evaluation therefore requires charging realistic device costs without
// actually waiting hours of wall-clock time.  vtime models time the way a
// conservative discrete-event simulation does:
//
//   - every logical process (an MPI rank in the paper, a goroutine here)
//     owns a Proc with a monotonically increasing logical clock;
//   - every serially shared device (a tape drive, a WAN link, a disk
//     spindle) is a Resource: an operation starts at
//     max(proc.Now, resource.freeAt) and both clocks advance past it, so
//     contention queues exactly like a real device;
//   - Barrier synchronizes a group of Procs to their max clock, which is
//     how collective I/O and the end of a simulation timestep are modelled.
//
// A Sim can run in Virtual mode (clocks advance instantly; used by tests
// and the benchmark harness) or Scaled mode (Advance also sleeps
// duration×scale of wall time; used by the TCP examples and live demos).
package vtime

import (
	"fmt"
	"sync"
	"time"
)

// Mode selects how simulated time maps onto wall-clock time.
type Mode int

const (
	// Virtual advances logical clocks without sleeping.
	Virtual Mode = iota
	// Scaled sleeps scale × duration of wall time on every Advance.
	Scaled
)

func (m Mode) String() string {
	switch m {
	case Virtual:
		return "virtual"
	case Scaled:
		return "scaled"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Sim is a simulation time domain.  All Procs and Resources that interact
// must belong to the same Sim.  The zero value is not usable; construct
// with NewVirtual or NewScaled.
type Sim struct {
	mode  Mode
	scale float64
}

// NewVirtual returns a Sim whose clocks advance instantly.
func NewVirtual() *Sim { return &Sim{mode: Virtual} }

// NewScaled returns a Sim that sleeps scale × d wall time for every
// simulated advance of d.  scale must be positive; 1e-3 makes a 25 s tape
// mount cost 25 ms of wall time.
func NewScaled(scale float64) *Sim {
	if scale <= 0 {
		panic(fmt.Sprintf("vtime: non-positive scale %v", scale))
	}
	return &Sim{mode: Scaled, scale: scale}
}

// Mode reports the Sim's mode.
func (s *Sim) Mode() Mode { return s.mode }

// Scale reports the wall-time scale factor (0 in Virtual mode).
func (s *Sim) Scale() float64 { return s.scale }

// Proc is a logical process with its own clock.  A Proc is safe for use by
// one goroutine at a time; distinct Procs may run concurrently.
type Proc struct {
	sim  *Sim
	name string

	mu  sync.Mutex
	now time.Duration
}

// NewProc returns a new process whose clock starts at zero.
func (s *Sim) NewProc(name string) *Proc {
	return &Proc{sim: s, name: name}
}

// NewProcs returns n processes named prefix0..prefix{n-1}, all at time zero.
func (s *Sim) NewProcs(prefix string, n int) []*Proc {
	ps := make([]*Proc, n)
	for i := range ps {
		ps[i] = s.NewProc(fmt.Sprintf("%s%d", prefix, i))
	}
	return ps
}

// Sim returns the time domain the Proc belongs to.
func (p *Proc) Sim() *Sim { return p.sim }

// Name returns the process name given at creation.
func (p *Proc) Name() string { return p.name }

// Now returns the process's current logical time.
func (p *Proc) Now() time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.now
}

// Advance moves the process clock forward by d (ignoring negative d) and,
// in Scaled mode, sleeps the scaled wall-time equivalent.
func (p *Proc) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	p.mu.Lock()
	p.now += d
	p.mu.Unlock()
	p.sleep(d)
}

// AdvanceTo moves the process clock forward to t if t is later than the
// current clock, returning the amount advanced.
func (p *Proc) AdvanceTo(t time.Duration) time.Duration {
	p.mu.Lock()
	d := t - p.now
	if d > 0 {
		p.now = t
	}
	p.mu.Unlock()
	if d > 0 {
		p.sleep(d)
		return d
	}
	return 0
}

func (p *Proc) sleep(d time.Duration) {
	if p.sim.mode == Scaled {
		time.Sleep(time.Duration(float64(d) * p.sim.scale))
	}
}

// Barrier synchronizes the given processes: all clocks advance to the
// maximum clock in the group.  It models a collective synchronization
// point (the end of a two-phase exchange, a timestep boundary).  The
// caller must ensure no other goroutine is advancing these Procs
// concurrently with the barrier, which matches collective semantics.
func Barrier(ps ...*Proc) time.Duration {
	var max time.Duration
	for _, p := range ps {
		if t := p.Now(); t > max {
			max = t
		}
	}
	for _, p := range ps {
		p.AdvanceTo(max)
	}
	return max
}

// MaxNow returns the latest clock among the given processes without
// advancing any of them.
func MaxNow(ps ...*Proc) time.Duration {
	var max time.Duration
	for _, p := range ps {
		if t := p.Now(); t > max {
			max = t
		}
	}
	return max
}

// Resource is a serially shared device: at most one operation occupies it
// at a time, and later requests queue behind earlier ones.  The zero value
// is an idle resource; give it a name with NewResource for diagnostics.
type Resource struct {
	name string

	mu     sync.Mutex
	freeAt time.Duration
	busy   time.Duration // total occupied time, for utilization reports
	ops    int64
}

// NewResource returns an idle named resource.
func NewResource(name string) *Resource { return &Resource{name: name} }

// Name returns the resource name.
func (r *Resource) Name() string { return r.name }

// Acquire occupies the resource for d simulated time on behalf of p.  The
// operation begins at max(p.Now, resource free time); p's clock is
// advanced to the completion time.  It returns the time the operation
// completed.
func (r *Resource) Acquire(p *Proc, d time.Duration) time.Duration {
	end := r.reserve(p, d)
	p.AdvanceTo(end)
	return end
}

// reserve books the resource without advancing the caller's clock.
func (r *Resource) reserve(p *Proc, d time.Duration) time.Duration {
	if d < 0 {
		d = 0
	}
	r.mu.Lock()
	start := p.Now()
	if r.freeAt > start {
		start = r.freeAt
	}
	end := start + d
	r.freeAt = end
	r.busy += d
	r.ops++
	r.mu.Unlock()
	return end
}

// FreeAt reports when the resource next becomes idle.
func (r *Resource) FreeAt() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.freeAt
}

// Stats reports the accumulated busy time and operation count.
func (r *Resource) Stats() (busy time.Duration, ops int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.busy, r.ops
}

// Reset returns the resource to idle and clears statistics.  Intended for
// reuse between benchmark scenarios.
func (r *Resource) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.freeAt, r.busy, r.ops = 0, 0, 0
}

// Pool is a bank of n interchangeable resources (for example the four SSA
// disks attached to an SP2 node).  Acquire picks the earliest-free member,
// so up to n operations overlap.
type Pool struct {
	mu      sync.Mutex
	members []*Resource
}

// NewPool returns a pool of n resources named prefix0..prefix{n-1}.
func NewPool(prefix string, n int) *Pool {
	if n <= 0 {
		panic("vtime: pool size must be positive")
	}
	p := &Pool{members: make([]*Resource, n)}
	for i := range p.members {
		p.members[i] = NewResource(fmt.Sprintf("%s%d", prefix, i))
	}
	return p
}

// Size returns the number of members.
func (pl *Pool) Size() int { return len(pl.members) }

// Member returns the i'th member resource.
func (pl *Pool) Member(i int) *Resource { return pl.members[i] }

// Acquire occupies the earliest-free member for d on behalf of p.  The
// select-and-reserve step is atomic across the pool, so concurrent callers
// spread over idle members instead of piling onto one.
func (pl *Pool) Acquire(p *Proc, d time.Duration) time.Duration {
	pl.mu.Lock()
	best := pl.members[0]
	bestFree := best.FreeAt()
	for _, m := range pl.members[1:] {
		if f := m.FreeAt(); f < bestFree {
			best, bestFree = m, f
		}
	}
	end := best.reserve(p, d)
	pl.mu.Unlock()
	p.AdvanceTo(end)
	return end
}

// Reset resets every member.
func (pl *Pool) Reset() {
	for _, m := range pl.members {
		m.Reset()
	}
}
