package hsm

import "testing"

// FuzzLifecyclePolicy drives ParsePolicy with arbitrary flag strings:
// whatever it accepts must validate, be usable as engine
// configuration, and round-trip through FormatPolicy unchanged.
func FuzzLifecyclePolicy(f *testing.F) {
	for _, seed := range []string{
		"",
		"cold=2h,scan=10m,high=0.9,low=0.7,repack=0.3,batch=16",
		" cold = 24h , batch = 1 ",
		"high=1,low=0",
		"high=0.5,low=0.5",
		"repack=0",
		"cold=1ns",
		"cold=-1h",
		"high=1.0000001",
		"high=nan",
		"high=+0.5",
		"low=0.7,high=0.5",
		"batch=99999999999999999999",
		"cold=2h,cold=2h",
		"☃=7",
		"batch=0x10",
		"scan=1h30m,cold=2h45m10s",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParsePolicy(s)
		if err != nil {
			return
		}
		if err := p.validate(); err != nil {
			t.Fatalf("ParsePolicy(%q) returned an invalid policy: %v", s, err)
		}
		// Accepted policies must survive the engine's own defaulting
		// and validation.
		if err := p.withDefaults().validate(); err != nil {
			t.Fatalf("ParsePolicy(%q) not usable as engine config: %v", s, err)
		}
		out := FormatPolicy(p)
		back, err := ParsePolicy(out)
		if err != nil {
			t.Fatalf("round-trip parse of %q (from %q) failed: %v", out, s, err)
		}
		if back != p {
			t.Fatalf("round-trip of %q: %+v != %+v", s, back, p)
		}
		if again := FormatPolicy(back); again != out {
			t.Fatalf("formatter not deterministic: %q != %q", again, out)
		}
	})
}
