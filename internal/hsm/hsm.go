// Package hsm is the hierarchical-storage-management lifecycle engine
// of the multi-storage resource architecture: a policy loop that runs
// next to the broker and moves data between a disk pool and the tape
// library so the pool survives months of archive churn.
//
// The paper's placement layer decides where a dataset is born and
// leaves it there; production mass-storage systems (HPSS, CASTOR)
// instead run a migration/recall/purge cycle over every disk pool.
// This package adds that cycle, driven by the same virtual-time and
// eq. (1)/(2) machinery the rest of the system uses:
//
//   - Migration: resident datasets idle longer than Policy.ColdAfter
//     are copied to tape in sweeps, batched through the qos scheduler's
//     staging-cartridge write lane when one is attached so robot
//     mounts stay low.  A migrated dataset keeps its disk copy (state
//     "dual") until garbage collection needs the space.
//   - Recall: a read against a tape-only dataset transparently stages
//     the instance back through internal/stage, paying the
//     eq. (1)-priced tape cost once; subsequent reads hit the recall
//     cache on the pool.
//   - Garbage collection: when pool occupancy reaches the high
//     watermark, dual copies are purged lowest benefit-per-byte first
//     (the same scoring stage eviction uses) until the low watermark.
//     A dataset whose only copy is the disk copy is migrated before it
//     is purged — the last copy is never deleted.  When every
//     candidate is pinned or still hot, GC stalls and reports rather
//     than violate that invariant.
//   - Repack: deleted and rewritten tape copies leave dead space on
//     cartridges; when the dead fraction crosses Policy.RepackWaste a
//     sweep compacts the library via tape.Reclaim, coordinating with
//     the qos batch lane through the library's layout generation.
//
// Every lifecycle transition is a metadb row mutation journaled
// through the PR 7 write-ahead log, so a crash mid-move replays to a
// safe state: Recover maps the transient states (migrating, recalling)
// back to their authoritative-copy states (resident, migrated).
package hsm

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/metadb"
	"repro/internal/predict"
	"repro/internal/qos"
	"repro/internal/stage"
	"repro/internal/storage"
	"repro/internal/tape"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// Lifecycle states recorded in metadb.Lifecycle.State.  The durable
// states are resident (disk copy only), dual (disk and tape copies)
// and migrated (tape copy only); migrating and recalling are the
// journaled in-flight markers recovery maps back to a safe state.
const (
	StateResident  = "resident"
	StateMigrating = "migrating" // tape copy being written; disk copy authoritative
	StateDual      = "dual"
	StateMigrated  = "migrated"
	StateRecalling = "recalling" // stage-in in flight; tape copy authoritative
)

// Config wires an Engine together.
type Config struct {
	// Sim is the virtual-time domain (required).
	Sim *vtime.Sim
	// Meta is the lifecycle-state repository (required).  When it is
	// journal-backed every state transition is crash-durable.
	Meta *metadb.DB
	// Pool is the managed disk pool (required).  Tracked datasets and
	// the recall cache live on it; paths under "stage/" are reserved
	// for the recall cache.
	Pool storage.Backend
	// Tape is the archive tier (required).
	Tape *tape.Library
	// PoolCapacity is the byte capacity the watermarks divide
	// (required, positive).
	PoolCapacity int64
	// RecallBudget caps the recall cache (default PoolCapacity/4).
	RecallBudget int64
	// PDB, when set, prices the GC benefit-per-byte scoring and the
	// recall staging decision; nil falls back to LRU and tier ranking.
	PDB *predict.DB
	// QoS, when set, routes migration tape writes through the
	// scheduler's staging-cartridge batch lane under Tenant.
	QoS *qos.Scheduler
	// Tenant is the scheduler principal for migration traffic
	// (default "hsm").
	Tenant string
	// Policy is the lifecycle policy; zero fields take defaults.
	Policy Policy
	// Trace, when set, records one span per lifecycle move
	// (trace.OpMigrate / OpRecall / OpGC / OpRepack) with the pool as
	// Backend.  Nil disables.
	Trace *trace.Recorder
}

// Stats counts the engine's lifecycle traffic.
type Stats struct {
	Tracked  int // lifecycle rows
	Resident int // rows whose only copy is on disk (incl. migrating)
	Dual     int
	Migrated int // rows whose only copy is on tape (incl. recalling)

	PoolUsed     int64 // tracked disk bytes + recall cache bytes
	PoolCapacity int64

	Migrations      int64 // datasets copied to tape
	MigratedBytes   int64
	MigrateFailures int64 // tape writes that failed (dataset stays resident)
	Requeued        int64 // sweep members requeued by a layout generation change

	Recalls       int64 // reads that had to touch tape
	RecalledBytes int64
	RecallP95     time.Duration // 95th-percentile recall latency (virtual)

	GCRuns   int64
	GCPurged int64 // dual disk copies purged
	GCBytes  int64
	GCStalls int64 // GC runs that could not reach the low watermark

	Repacks     int64
	RepackBytes int64 // tape bytes reclaimed

	Hits   int64 // reads served from the pool (disk copy or warm recall cache)
	Misses int64 // reads that touched tape
	Mounts int64 // tape library lifetime mounts
}

// HitRate returns the disk-pool hit rate, zero when idle.
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Engine is the lifecycle engine.  Create with New; drive with Put /
// Read / Remove and periodic Tick calls.  Safe for concurrent use.
type Engine struct {
	cfg Config
	pol Policy

	stage *stage.Manager

	mu        sync.Mutex
	poolSess  storage.Session
	tapeSess  storage.Session
	pins      map[string]int
	recallLat []time.Duration
	st        Stats
}

// New validates the configuration and returns an Engine.  It does not
// touch existing lifecycle rows; call Recover after reopening a
// journal to restore in-flight moves to a safe state.
func New(cfg Config) (*Engine, error) {
	if cfg.Sim == nil {
		return nil, fmt.Errorf("hsm: Config.Sim is required")
	}
	if cfg.Meta == nil {
		return nil, fmt.Errorf("hsm: Config.Meta is required")
	}
	if cfg.Pool == nil {
		return nil, fmt.Errorf("hsm: Config.Pool is required")
	}
	if cfg.Tape == nil {
		return nil, fmt.Errorf("hsm: Config.Tape is required")
	}
	if cfg.PoolCapacity <= 0 {
		return nil, fmt.Errorf("hsm: Config.PoolCapacity must be positive")
	}
	if cfg.RecallBudget < 0 {
		return nil, fmt.Errorf("hsm: negative recall budget")
	}
	if cfg.RecallBudget == 0 {
		cfg.RecallBudget = cfg.PoolCapacity / 4
	}
	if cfg.RecallBudget > cfg.PoolCapacity {
		cfg.RecallBudget = cfg.PoolCapacity
	}
	if cfg.Tenant == "" {
		cfg.Tenant = "hsm"
	}
	pol := cfg.Policy.withDefaults()
	if err := pol.validate(); err != nil {
		return nil, err
	}
	// Recalled archive data is typically re-read many times before it
	// cools again, so the recall cache assumes a deep residual-read
	// count — staging in is almost always worth one tape read.
	mgr, err := stage.New(stage.Config{
		Sim: cfg.Sim, Cache: cfg.Pool, Budget: cfg.RecallBudget,
		PDB: cfg.PDB, Trace: cfg.Trace, ExpectedReads: 64,
	})
	if err != nil {
		return nil, err
	}
	e := &Engine{cfg: cfg, pol: pol, stage: mgr, pins: make(map[string]int)}
	e.st.PoolCapacity = cfg.PoolCapacity
	return e, nil
}

// Close releases the recall cache's background resources.
func (e *Engine) Close() { e.stage.Close() }

// Policy returns the effective (defaulted) policy.
func (e *Engine) Policy() Policy { return e.pol }

// tapePath maps a pool path to its archive location.
func tapePath(pool, path string) string { return "hsm/" + pool + "/" + path }

// ------------------------------------------------------------------
// Sessions and pins.

func (e *Engine) poolSession(p *vtime.Proc) (storage.Session, error) {
	e.mu.Lock()
	s := e.poolSess
	e.mu.Unlock()
	if s != nil {
		return s, nil
	}
	s2, err := e.cfg.Pool.Connect(p)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.poolSess == nil {
		e.poolSess = s2
	}
	return e.poolSess, nil
}

func (e *Engine) tapeSession(p *vtime.Proc) (storage.Session, error) {
	e.mu.Lock()
	s := e.tapeSess
	e.mu.Unlock()
	if s != nil {
		return s, nil
	}
	s2, err := e.cfg.Tape.Connect(p)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.tapeSess == nil {
		e.tapeSess = s2
	}
	return e.tapeSess, nil
}

func (e *Engine) pin(path string) {
	e.mu.Lock()
	e.pins[path]++
	e.mu.Unlock()
}

func (e *Engine) unpin(path string) {
	e.mu.Lock()
	if e.pins[path] > 1 {
		e.pins[path]--
	} else {
		delete(e.pins, path)
	}
	e.mu.Unlock()
}

// Pin marks a dataset in-use: pinned datasets are skipped by
// migration sweeps and GC victim selection until Unpin.  Pins nest.
// Read pins its dataset for the duration of the access automatically.
func (e *Engine) Pin(path string) { e.pin(path) }

// Unpin releases one Pin.
func (e *Engine) Unpin(path string) { e.unpin(path) }

func (e *Engine) pinned(path string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.pins[path] > 0
}

// ------------------------------------------------------------------
// Data plane.

// Put writes one dataset instance onto the pool and tracks it as
// resident.  A pool at capacity triggers one GC pass to the low
// watermark before the write is retried.
func (e *Engine) Put(p *vtime.Proc, path string, data []byte) error {
	if path == "" {
		return fmt.Errorf("hsm: empty path")
	}
	sess, err := e.poolSession(p)
	if err != nil {
		return err
	}
	// Admitting the new bytes may push occupancy past the high
	// watermark; collect proactively so the pool write cannot hit the
	// device's hard capacity.
	if err := e.gcFor(p, int64(len(data))); err != nil {
		return err
	}
	if err := storage.PutFile(p, sess, path, storage.ModeOverWrite, data); err != nil {
		return err
	}
	return e.cfg.Meta.PutLifecycle(nil, metadb.Lifecycle{
		Pool: e.cfg.Pool.Name(), Path: path, State: StateResident,
		Bytes: int64(len(data)), LastAccess: int64(p.Now()),
	})
}

// Read returns one dataset instance's bytes, wherever its current
// copy lives.  Resident and dual datasets read from the pool;
// migrated datasets recall through the staging engine (a warm recall
// cache counts as a pool hit).  The row's access history is updated
// and journaled.
func (e *Engine) Read(p *vtime.Proc, path string) ([]byte, error) {
	row, err := e.cfg.Meta.GetLifecycle(nil, e.cfg.Pool.Name(), path)
	if err != nil {
		return nil, err
	}
	e.pin(path)
	defer e.unpin(path)

	touch := func(state string) error {
		row.State = state
		row.LastAccess = int64(p.Now())
		row.Accesses++
		return e.cfg.Meta.PutLifecycle(nil, row)
	}

	switch row.State {
	case StateResident, StateMigrating, StateDual:
		sess, err := e.poolSession(p)
		if err != nil {
			return nil, err
		}
		data, err := storage.GetFile(p, sess, path)
		if err != nil {
			return nil, err
		}
		e.mu.Lock()
		e.st.Hits++
		e.mu.Unlock()
		return data, touch(row.State)

	case StateMigrated, StateRecalling:
		tsess, err := e.tapeSession(p)
		if err != nil {
			return nil, err
		}
		// Journal the in-flight marker first: a crash during the
		// stage-in replays to "recalling" and Recover maps it back to
		// migrated (the tape copy stays authoritative; the stage
		// engine never leaves partial copies).
		if row.State != StateRecalling {
			if err := touch(StateRecalling); err != nil {
				return nil, err
			}
		}
		start := p.Now()
		plan := e.stage.StageRead(p, e.cfg.Tape, tsess, row.TapePath, row.Bytes)
		data, err := storage.GetFile(p, plan.Sess, plan.Path)
		plan.Release()
		if err != nil {
			return nil, err
		}
		e.mu.Lock()
		if plan.Hit {
			// Warm recall cache: the pool served the read.
			e.st.Hits++
		} else {
			e.st.Misses++
			e.st.Recalls++
			e.st.RecalledBytes += int64(len(data))
			e.noteRecall(p.Now() - start)
		}
		hit := plan.Hit
		e.mu.Unlock()
		if !hit && e.cfg.Trace != nil {
			e.cfg.Trace.Record(trace.Event{
				At: p.Now(), Proc: p.Name(), Backend: e.cfg.Pool.Name(),
				Op: trace.OpRecall, Path: path, Bytes: int64(len(data)),
				Cost: p.Now() - start,
			})
		}
		return data, touch(StateMigrated)
	}
	return nil, fmt.Errorf("hsm: %s: unknown lifecycle state %q", path, row.State)
}

// Remove deletes every copy of one dataset and drops its lifecycle
// row.  Removing the tape copy leaves dead space on its cartridge,
// which later repack sweeps reclaim.
func (e *Engine) Remove(p *vtime.Proc, path string) error {
	row, err := e.cfg.Meta.GetLifecycle(nil, e.cfg.Pool.Name(), path)
	if err != nil {
		return err
	}
	if e.pinned(path) {
		return fmt.Errorf("hsm: %s is busy", path)
	}
	// Journal the deletion before touching any copy: a crash after the
	// journal write leaves orphaned copies (harmless garbage — a tape
	// orphan is dead space the next repack reclaims), never a live row
	// whose copies are gone.
	if err := e.cfg.Meta.DeleteLifecycle(nil, e.cfg.Pool.Name(), path); err != nil {
		return err
	}
	switch row.State {
	case StateResident, StateMigrating, StateDual:
		sess, err := e.poolSession(p)
		if err != nil {
			return err
		}
		_ = sess.Remove(p, path)
	}
	if row.TapePath != "" {
		tsess, err := e.tapeSession(p)
		if err != nil {
			return err
		}
		_ = tsess.Remove(p, row.TapePath)
	}
	return nil
}

// State returns one dataset's current lifecycle state.
func (e *Engine) State(path string) (string, error) {
	row, err := e.cfg.Meta.GetLifecycle(nil, e.cfg.Pool.Name(), path)
	if err != nil {
		return "", err
	}
	return row.State, nil
}

// occupancy returns the pool bytes the engine accounts for: every
// tracked disk copy plus the recall cache.
func (e *Engine) occupancy() int64 {
	var n int64
	for _, r := range e.cfg.Meta.Lifecycles(nil, e.cfg.Pool.Name()) {
		switch r.State {
		case StateResident, StateMigrating, StateDual:
			n += r.Bytes
		}
	}
	return n + e.stage.Used()
}

// ------------------------------------------------------------------
// The policy loop.

// Tick runs one policy sweep on p's clock: migrate cold residents,
// collect the pool against the watermarks, and repack fragmented
// cartridges.  cmd/srbd ticks every Policy.ScanInterval of scaled
// time; experiments drive it explicitly between workload phases.
func (e *Engine) Tick(p *vtime.Proc) error {
	if err := e.migrateSweep(p); err != nil {
		return err
	}
	if err := e.gcFor(p, 0); err != nil {
		return err
	}
	return e.repack(p)
}

// migrateSweep copies cold resident datasets to tape, oldest first,
// at most Policy.MaxBatch per sweep.  With a qos scheduler the
// members are submitted together so the staging-cartridge write lane
// batches them under one mount; a layout generation change mid-sweep
// (a concurrent repack) requeues the remainder for the next sweep
// rather than writing against a moved shelf.
func (e *Engine) migrateSweep(p *vtime.Proc) error {
	now := p.Now()
	var cands []metadb.Lifecycle
	for _, r := range e.cfg.Meta.Lifecycles(nil, e.cfg.Pool.Name()) {
		if r.State == StateResident && now-time.Duration(r.LastAccess) >= e.pol.ColdAfter && !e.pinned(r.Path) {
			cands = append(cands, r)
		}
	}
	if len(cands) == 0 {
		return nil
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].LastAccess < cands[j].LastAccess })
	if len(cands) > e.pol.MaxBatch {
		cands = cands[:e.pol.MaxBatch]
	}
	gen := e.cfg.Tape.Generation()
	// Journal the in-flight markers before any tape byte moves: a
	// crash replays each member to "migrating" and Recover restores it
	// to resident (the disk copy is authoritative; a partial tape copy
	// is dead space repack reclaims).
	for i := range cands {
		cands[i].State = StateMigrating
		if err := e.cfg.Meta.PutLifecycle(nil, cands[i]); err != nil {
			return err
		}
	}
	if e.cfg.QoS != nil {
		return e.migrateBatchQoS(p, cands, gen)
	}
	for i := range cands {
		if e.cfg.Tape.Generation() != gen {
			// The shelf moved (repack): requeue the remainder.
			return e.requeue(cands[i:])
		}
		if err := e.migrateOne(p, cands[i], func(fn func() error) error { return fn() }); err != nil {
			return err
		}
	}
	return nil
}

// migrateBatchQoS submits every member's tape write concurrently so
// the scheduler's write lane can group them into one staging-cartridge
// batch.  The scheduler is paused while the backlog builds — the same
// drain-window idiom its tests use — so the batch forms
// deterministically.
func (e *Engine) migrateBatchQoS(p *vtime.Proc, cands []metadb.Lifecycle, gen int64) error {
	s := e.cfg.QoS
	depth := s.QueueDepth()
	s.Pause()
	var wg sync.WaitGroup
	errs := make([]error, len(cands))
	for i := range cands {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			row := cands[i]
			pm := e.cfg.Sim.NewProc("hsm-migrate")
			pm.AdvanceTo(p.Now())
			errs[i] = e.migrateOne(pm, row, func(fn func() error) error {
				return s.Do(pm, qos.Request{
					Tenant: e.cfg.Tenant, Backend: e.cfg.Tape.Name(),
					Class: storage.KindRemoteTape.String(), Op: "write",
					Path: tapePath(row.Pool, row.Path), Bytes: row.Bytes,
				}, fn)
			})
		}(i)
	}
	// Wait for the members to be visibly queued before granting, so
	// they form one batch instead of trickling through.
	deadline := time.Now().Add(5 * time.Second)
	for s.QueueDepth() < depth+len(cands) && time.Now().Before(deadline) {
		time.Sleep(100 * time.Microsecond)
	}
	s.Resume()
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	_ = gen // the qos batch lane re-validates the generation itself
	return nil
}

// migrateOne copies one migrating row's bytes to tape through submit
// (the qos grant wrapper, or a direct call) and journals the outcome:
// dual on success, back to resident on a failed tape write.
func (e *Engine) migrateOne(p *vtime.Proc, row metadb.Lifecycle, submit func(func() error) error) error {
	start := p.Now()
	psess, err := e.poolSession(p)
	if err != nil {
		return err
	}
	data, gerr := storage.GetFile(p, psess, row.Path)
	var werr error
	if gerr == nil {
		// An unreachable tape tier (connect failure) is a migration
		// failure like any other: the dataset stays resident and the
		// sweep carries on.
		tsess, terr := e.tapeSession(p)
		if terr != nil {
			werr = terr
		} else {
			werr = submit(func() error {
				return storage.PutFile(p, tsess, tapePath(row.Pool, row.Path), storage.ModeOverWrite, data)
			})
		}
	}
	if gerr != nil || werr != nil {
		e.mu.Lock()
		e.st.MigrateFailures++
		e.mu.Unlock()
		row.State = StateResident
		row.TapePath = ""
		return e.cfg.Meta.PutLifecycle(nil, row)
	}
	row.State = StateDual
	row.TapePath = tapePath(row.Pool, row.Path)
	if err := e.cfg.Meta.PutLifecycle(nil, row); err != nil {
		return err
	}
	e.mu.Lock()
	e.st.Migrations++
	e.st.MigratedBytes += int64(len(data))
	e.mu.Unlock()
	if e.cfg.Trace != nil {
		e.cfg.Trace.Record(trace.Event{
			At: p.Now(), Proc: p.Name(), Backend: e.cfg.Pool.Name(),
			Op: trace.OpMigrate, Path: row.Path, Bytes: int64(len(data)),
			Cost: p.Now() - start,
		})
	}
	return nil
}

// requeue journals sweep members back to resident so the next sweep
// retries them against the new tape layout.
func (e *Engine) requeue(rows []metadb.Lifecycle) error {
	for _, r := range rows {
		r.State = StateResident
		r.TapePath = ""
		if err := e.cfg.Meta.PutLifecycle(nil, r); err != nil {
			return err
		}
	}
	e.mu.Lock()
	e.st.Requeued += int64(len(rows))
	e.mu.Unlock()
	return nil
}

// gcFor collects the pool when admitting `incoming` more bytes would
// put occupancy at or past the high watermark, draining to the low
// watermark.  Purge order is lowest benefit-per-byte first among dual
// copies; resident datasets are migrated before they may be purged
// (never delete the last copy).  When nothing can legally be freed
// the run stalls and reports through Stats.GCStalls.
func (e *Engine) gcFor(p *vtime.Proc, incoming int64) error {
	high := int64(e.pol.HighWater * float64(e.cfg.PoolCapacity))
	low := int64(e.pol.LowWater * float64(e.cfg.PoolCapacity))
	occ := e.occupancy()
	if occ+incoming < high {
		return nil
	}
	e.mu.Lock()
	e.st.GCRuns++
	e.mu.Unlock()
	for occ+incoming > low {
		victim, ok := e.victim(p)
		if !ok {
			// Everything left is pinned, hot, or already tape-only:
			// stall rather than purge a last copy.
			e.mu.Lock()
			e.st.GCStalls++
			e.mu.Unlock()
			return nil
		}
		if victim.State == StateResident {
			// Migrate-before-purge: the disk copy is the last copy.
			victim.State = StateMigrating
			if err := e.cfg.Meta.PutLifecycle(nil, victim); err != nil {
				return err
			}
			if err := e.migrateOne(p, victim, func(fn func() error) error { return fn() }); err != nil {
				return err
			}
			row, err := e.cfg.Meta.GetLifecycle(nil, victim.Pool, victim.Path)
			if err != nil {
				return err
			}
			if row.State != StateDual {
				// The migration failed; the dataset must keep its disk
				// copy, so this GC run cannot make further progress.
				e.mu.Lock()
				e.st.GCStalls++
				e.mu.Unlock()
				return nil
			}
			victim = row
		}
		if err := e.purge(p, victim); err != nil {
			return err
		}
		occ = e.occupancy()
	}
	return nil
}

// victim picks the unpinned dataset with the least predicted
// benefit-per-byte of keeping its disk copy — dual copies before
// resident ones (purging a dual costs no migration), LRU when the
// predictor cannot price the saving.  ok is false when no dataset may
// legally be freed.
func (e *Engine) victim(p *vtime.Proc) (metadb.Lifecycle, bool) {
	var best metadb.Lifecycle
	found := false
	bestDual := false
	bestScore := 0.0
	for _, r := range e.cfg.Meta.Lifecycles(nil, e.cfg.Pool.Name()) {
		if r.State != StateDual && r.State != StateResident {
			continue
		}
		if e.pinned(r.Path) || r.Bytes <= 0 {
			continue
		}
		isDual := r.State == StateDual
		score := e.benefit(r, p.Now())
		better := false
		switch {
		case !found:
			better = true
		case isDual != bestDual:
			better = isDual
		case score != bestScore:
			better = score < bestScore
		default:
			better = r.LastAccess < best.LastAccess
		}
		if better {
			best, bestDual, bestScore, found = r, isDual, score, true
		}
	}
	return best, found
}

// benefit scores the saving-per-byte of keeping r's disk copy: the
// stage-eviction formula residual × (T_tape − T_pool) / bytes, with
// one residual access assumed while the dataset is still warmer than
// ColdAfter and zero after.  Without a predictor every score is zero
// and LRU order decides.
func (e *Engine) benefit(r metadb.Lifecycle, now time.Duration) float64 {
	if e.cfg.PDB == nil {
		return 0
	}
	residual := 0.0
	if now-time.Duration(r.LastAccess) < e.pol.ColdAfter {
		residual = 1
	}
	tTape, err1 := e.cfg.PDB.WholeFile(e.cfg.Tape.Kind().String(), "read", r.Bytes)
	tPool, err2 := e.cfg.PDB.WholeFile(e.cfg.Pool.Kind().String(), "read", r.Bytes)
	if err1 != nil || err2 != nil {
		return 0
	}
	return residual * (tTape - tPool) / float64(r.Bytes)
}

// purge removes a dual dataset's disk copy, journaling migrated.
func (e *Engine) purge(p *vtime.Proc, row metadb.Lifecycle) error {
	start := p.Now()
	sess, err := e.poolSession(p)
	if err != nil {
		return err
	}
	// Journal before deleting: a crash in between leaves an orphaned
	// disk file (garbage), never a dual row whose disk copy is gone.
	row.State = StateMigrated
	if err := e.cfg.Meta.PutLifecycle(nil, row); err != nil {
		return err
	}
	_ = sess.Remove(p, row.Path)
	e.mu.Lock()
	e.st.GCPurged++
	e.st.GCBytes += row.Bytes
	e.mu.Unlock()
	if e.cfg.Trace != nil {
		e.cfg.Trace.Record(trace.Event{
			At: p.Now(), Proc: p.Name(), Backend: e.cfg.Pool.Name(),
			Op: trace.OpGC, Path: row.Path, Bytes: row.Bytes,
			Cost: p.Now() - start,
		})
	}
	return nil
}

// repack compacts the tape library when the dead-space fraction
// crosses Policy.RepackWaste.  The Reclaim bumps the layout
// generation, which invalidates any in-flight qos batch (its members
// requeue with their deficit refunded) and any remaining sweep.
func (e *Engine) repack(p *vtime.Proc) error {
	if e.pol.RepackWaste <= 0 {
		return nil
	}
	_, _, wasted := e.cfg.Tape.Stats()
	if wasted == 0 {
		return nil
	}
	var live int64
	for _, r := range e.cfg.Meta.Lifecycles(nil, e.cfg.Pool.Name()) {
		if r.TapePath != "" {
			live += r.Bytes
		}
	}
	if float64(wasted)/float64(wasted+live) < e.pol.RepackWaste {
		return nil
	}
	start := p.Now()
	n, err := e.cfg.Tape.Reclaim(p)
	if err != nil {
		return err
	}
	e.mu.Lock()
	e.st.Repacks++
	e.st.RepackBytes += n
	e.mu.Unlock()
	if e.cfg.Trace != nil {
		e.cfg.Trace.Record(trace.Event{
			At: p.Now(), Proc: p.Name(), Backend: e.cfg.Tape.Name(),
			Op: trace.OpRepack, Bytes: n, Cost: p.Now() - start,
		})
	}
	return nil
}

// ------------------------------------------------------------------
// Recovery and observability.

// Recover restores in-flight lifecycle moves to their safe states
// after a journal replay: migrating rows return to resident (the disk
// copy is authoritative; any partial tape copy is dead space repack
// reclaims) and recalling rows return to migrated (the tape copy is
// authoritative; the stage engine never leaves partial cache copies).
// It returns the number of rows restored.
func (e *Engine) Recover() (int, error) {
	fixed := 0
	for _, r := range e.cfg.Meta.Lifecycles(nil, e.cfg.Pool.Name()) {
		switch r.State {
		case StateMigrating:
			r.State = StateResident
			r.TapePath = ""
		case StateRecalling:
			r.State = StateMigrated
		default:
			continue
		}
		if err := e.cfg.Meta.PutLifecycle(nil, r); err != nil {
			return fixed, err
		}
		fixed++
	}
	return fixed, nil
}

// RecallLatencies returns a copy of the recorded recall latencies.
func (e *Engine) RecallLatencies() []time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]time.Duration(nil), e.recallLat...)
}

// StageStats exposes the recall cache's staging counters.
func (e *Engine) StageStats() stage.Stats { return e.stage.Stats() }

// Stats snapshots the engine's counters plus a state census.
func (e *Engine) Stats() Stats {
	rows := e.cfg.Meta.Lifecycles(nil, e.cfg.Pool.Name())
	occ := e.occupancy()
	mounts, _, _ := e.cfg.Tape.Stats()
	e.mu.Lock()
	st := e.st
	e.mu.Unlock()
	st.PoolUsed = occ
	st.Mounts = mounts
	st.Tracked = len(rows)
	for _, r := range rows {
		switch r.State {
		case StateResident, StateMigrating:
			st.Resident++
		case StateDual:
			st.Dual++
		case StateMigrated, StateRecalling:
			st.Migrated++
		}
	}
	st.RecallP95 = e.recallP95()
	return st
}

// noteRecall records one recall latency, halving the window at the
// 1<<14 cap so the slice stays bounded while keeping the newest half.
// Callers hold e.mu.
func (e *Engine) noteRecall(d time.Duration) {
	e.recallLat = append(e.recallLat, d)
	if len(e.recallLat) > 1<<14 {
		e.recallLat = e.recallLat[len(e.recallLat)/2:]
	}
}

// recallP95 computes the 95th-percentile recall latency.
func (e *Engine) recallP95() time.Duration {
	e.mu.Lock()
	lat := append([]time.Duration(nil), e.recallLat...)
	e.mu.Unlock()
	return Percentile(lat, 95)
}

// Percentile returns the pct-th percentile of the samples by the
// ceiling nearest-rank rule (rank ⌈len·pct/100⌉, 1-based): the smallest
// sample that at least pct percent of the samples do not exceed.  The
// input is not modified.  Shared with the workflow provisioner, which
// uses the same rule over predicted per-item stage-in times.
func Percentile(lat []time.Duration, pct int) time.Duration {
	if len(lat) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), lat...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	i := (len(s)*pct + 99) / 100
	if i > 0 {
		i--
	}
	return s[i]
}
