package hsm

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Policy parameterizes the lifecycle engine: when a resident dataset
// is cold enough to migrate, where the disk pool's GC watermarks sit,
// and when cartridge fragmentation justifies a repack.
type Policy struct {
	// ColdAfter is the idle age (no read) after which a resident
	// dataset becomes a migration candidate.  Default 24h of virtual
	// time.
	ColdAfter time.Duration
	// ScanInterval is the engine's sweep period; cmd/srbd's background
	// loop ticks at this virtual-time interval (scaled to wall time).
	// Default 1h.
	ScanInterval time.Duration
	// HighWater and LowWater are pool-occupancy fractions of the pool
	// capacity: GC starts when occupancy reaches HighWater (inclusive
	// — exactly-at-watermark triggers) and drains until occupancy is
	// at or below LowWater.  Defaults 0.9 and 0.7.
	HighWater float64
	LowWater  float64
	// RepackWaste is the dead-space fraction of the tape library
	// (wasted / (wasted + live HSM bytes)) above which a sweep runs
	// tape.Reclaim.  0 disables repacking; default 0.5.
	RepackWaste float64
	// MaxBatch caps the files one migration sweep moves, bounding the
	// tape time a single sweep can occupy.  Default 32.
	MaxBatch int
}

// DefaultPolicy returns the default lifecycle policy.
func DefaultPolicy() Policy {
	return Policy{
		ColdAfter:    24 * time.Hour,
		ScanInterval: time.Hour,
		HighWater:    0.9,
		LowWater:     0.7,
		RepackWaste:  0.5,
		MaxBatch:     32,
	}
}

// withDefaults fills zero fields from DefaultPolicy.
func (p Policy) withDefaults() Policy {
	d := DefaultPolicy()
	if p.ColdAfter == 0 {
		p.ColdAfter = d.ColdAfter
	}
	if p.ScanInterval == 0 {
		p.ScanInterval = d.ScanInterval
	}
	// The watermarks default as a pair: LowWater 0 is a legal explicit
	// setting (drain the pool fully) once a high watermark is given.
	if p.HighWater == 0 {
		p.HighWater = d.HighWater
		if p.LowWater == 0 {
			p.LowWater = d.LowWater
		}
	}
	if p.MaxBatch == 0 {
		p.MaxBatch = d.MaxBatch
	}
	return p
}

// validate rejects self-contradictory policies.
func (p Policy) validate() error {
	if p.ColdAfter < 0 || p.ScanInterval < 0 {
		return fmt.Errorf("hsm: negative policy duration")
	}
	if p.HighWater <= 0 || p.HighWater > 1 {
		return fmt.Errorf("hsm: high watermark %g outside (0, 1]", p.HighWater)
	}
	if p.LowWater < 0 || p.LowWater > 1 {
		return fmt.Errorf("hsm: low watermark %g outside [0, 1]", p.LowWater)
	}
	if p.LowWater > p.HighWater {
		return fmt.Errorf("hsm: low watermark %g above high watermark %g", p.LowWater, p.HighWater)
	}
	if p.RepackWaste < 0 || p.RepackWaste >= 1 {
		return fmt.Errorf("hsm: repack waste fraction %g outside [0, 1)", p.RepackWaste)
	}
	if p.MaxBatch < 0 {
		return fmt.Errorf("hsm: negative migration batch cap %d", p.MaxBatch)
	}
	return nil
}

// ParsePolicy parses a lifecycle policy configuration string of the
// form "key=value,key=value" — the format of srbd's -hsm-policy flag,
// e.g. "cold=2h,scan=10m,high=0.9,low=0.7,repack=0.3,batch=16".
// Whitespace around entries is ignored; keys must be unique.  Known
// keys: cold and scan (Go durations), high, low and repack (fractions
// in [0,1]), batch (positive integer).  Absent keys keep their
// defaults; the empty string parses to DefaultPolicy.  The returned
// policy is always validated (watermark ordering, fraction ranges).
func ParsePolicy(s string) (Policy, error) {
	p := DefaultPolicy()
	s = strings.TrimSpace(s)
	if s == "" {
		return p, nil
	}
	seen := make(map[string]bool)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return Policy{}, fmt.Errorf("hsm: empty policy entry in %q", s)
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return Policy{}, fmt.Errorf("hsm: policy entry %q is not key=value", part)
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		if seen[key] {
			return Policy{}, fmt.Errorf("hsm: duplicate policy key %q", key)
		}
		seen[key] = true
		switch key {
		case "cold", "scan":
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				return Policy{}, fmt.Errorf("hsm: policy %s: bad duration %q", key, val)
			}
			if key == "cold" {
				p.ColdAfter = d
			} else {
				p.ScanInterval = d
			}
		case "high", "low", "repack":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f != f || f < 0 || f > 1 {
				return Policy{}, fmt.Errorf("hsm: policy %s: bad fraction %q", key, val)
			}
			switch key {
			case "high":
				p.HighWater = f
			case "low":
				p.LowWater = f
			case "repack":
				p.RepackWaste = f
			}
		case "batch":
			n, err := strconv.Atoi(val)
			if err != nil || n <= 0 {
				return Policy{}, fmt.Errorf("hsm: policy batch: bad count %q", val)
			}
			p.MaxBatch = n
		default:
			return Policy{}, fmt.Errorf("hsm: unknown policy key %q (want cold, scan, high, low, repack, batch)", key)
		}
	}
	if err := p.validate(); err != nil {
		return Policy{}, err
	}
	return p, nil
}

// FormatPolicy renders a policy back into the -hsm-policy flag syntax,
// deterministically ordered.  For any policy ParsePolicy accepts,
// ParsePolicy(FormatPolicy(p)) round-trips (the fuzz target pins
// this).
func FormatPolicy(p Policy) string {
	parts := []string{
		"cold=" + p.ColdAfter.String(),
		"scan=" + p.ScanInterval.String(),
		"high=" + strconv.FormatFloat(p.HighWater, 'g', -1, 64),
		"low=" + strconv.FormatFloat(p.LowWater, 'g', -1, 64),
		"repack=" + strconv.FormatFloat(p.RepackWaste, 'g', -1, 64),
		"batch=" + strconv.Itoa(p.MaxBatch),
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}
