package hsm

import (
	"testing"
	"time"
)

func TestParsePolicy(t *testing.T) {
	p, err := ParsePolicy("cold=2h, scan=10m ,high=0.95,low=0.6,repack=0.3,batch=16")
	if err != nil {
		t.Fatal(err)
	}
	want := Policy{
		ColdAfter: 2 * time.Hour, ScanInterval: 10 * time.Minute,
		HighWater: 0.95, LowWater: 0.6, RepackWaste: 0.3, MaxBatch: 16,
	}
	if p != want {
		t.Fatalf("parsed %+v, want %+v", p, want)
	}
	if p, err := ParsePolicy(""); err != nil || p != DefaultPolicy() {
		t.Fatalf("empty string: %+v, %v", p, err)
	}
	// Absent keys keep defaults.
	p, err = ParsePolicy("cold=30m")
	if err != nil {
		t.Fatal(err)
	}
	if p.ColdAfter != 30*time.Minute || p.HighWater != DefaultPolicy().HighWater {
		t.Fatalf("partial parse: %+v", p)
	}
}

func TestParsePolicyRejects(t *testing.T) {
	for _, s := range []string{
		"cold",                // no value
		"cold=2h,cold=3h",     // duplicate
		"cold=-1h",            // negative duration
		"high=1.5",            // fraction out of range
		"high=NaN",            // not a number
		"high=0",              // high watermark must be positive
		"high=0.5,low=0.8",    // low above high
		"repack=1",            // repack fraction must be < 1
		"batch=0",             // batch must be positive
		"batch=x",             // not an integer
		"volume=11",           // unknown key
		"cold=2h,,scan=1h",    // empty entry
		"scan=10",             // bare number is not a duration
		"cold=2h extra",       // junk
		"high=0.9,low=0.7,=3", // empty key
	} {
		if _, err := ParsePolicy(s); err == nil {
			t.Errorf("ParsePolicy(%q) accepted", s)
		}
	}
}

func TestFormatPolicyRoundTrip(t *testing.T) {
	for _, p := range []Policy{
		DefaultPolicy(),
		{ColdAfter: 90 * time.Minute, ScanInterval: 7 * time.Second,
			HighWater: 0.5, LowWater: 0.25, RepackWaste: 0.125, MaxBatch: 3},
	} {
		back, err := ParsePolicy(FormatPolicy(p))
		if err != nil {
			t.Fatalf("round-trip of %+v: %v", p, err)
		}
		if back != p {
			t.Fatalf("round-trip of %+v returned %+v", p, back)
		}
	}
}
