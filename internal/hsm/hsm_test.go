package hsm

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/memfs"
	"repro/internal/metadb"
	"repro/internal/qos"
	"repro/internal/remotedisk"
	"repro/internal/storage"
	"repro/internal/tape"
	"repro/internal/vtime"
)

// testEnv is a capacity-managed disk pool in front of a tape library,
// all over in-memory stores.
type testEnv struct {
	sim  *vtime.Sim
	meta *metadb.DB
	pool storage.Backend
	lib  *tape.Library
	eng  *Engine
	p    *vtime.Proc
}

func newTestEnv(t *testing.T, cfg Config) *testEnv {
	t.Helper()
	sim := vtime.NewVirtual()
	meta := metadb.New()
	pool, err := remotedisk.New("pool", memfs.New())
	if err != nil {
		t.Fatal(err)
	}
	lib, err := tape.New(tape.Config{Name: "vault", Store: memfs.New()})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Sim = sim
	cfg.Meta = meta
	cfg.Pool = pool
	cfg.Tape = lib
	if cfg.PoolCapacity == 0 {
		cfg.PoolCapacity = 10_000
	}
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	return &testEnv{sim: sim, meta: meta, pool: pool, lib: lib, eng: eng, p: sim.NewProc("rank0")}
}

func (e *testEnv) put(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := e.eng.Put(e.p, path, data); err != nil {
		t.Fatalf("put %s: %v", path, err)
	}
}

func (e *testEnv) read(t *testing.T, path string) []byte {
	t.Helper()
	data, err := e.eng.Read(e.p, path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return data
}

func (e *testEnv) state(t *testing.T, path string) string {
	t.Helper()
	s, err := e.eng.State(path)
	if err != nil {
		t.Fatalf("state %s: %v", path, err)
	}
	return s
}

// seed installs a lifecycle row with its copies in place, bypassing
// the engine's data plane, so tests can construct exact occupancy.
func (e *testEnv) seed(t *testing.T, path, state string, data []byte, lastAccess time.Duration) {
	t.Helper()
	row := metadb.Lifecycle{
		Pool: e.pool.Name(), Path: path, State: state,
		Bytes: int64(len(data)), LastAccess: int64(lastAccess),
	}
	if state == StateResident || state == StateDual {
		sess, err := e.pool.Connect(e.p)
		if err != nil {
			t.Fatal(err)
		}
		if err := storage.PutFile(e.p, sess, path, storage.ModeOverWrite, data); err != nil {
			t.Fatal(err)
		}
	}
	if state == StateDual || state == StateMigrated {
		sess, err := e.lib.Connect(e.p)
		if err != nil {
			t.Fatal(err)
		}
		row.TapePath = tapePath(row.Pool, path)
		if err := storage.PutFile(e.p, sess, row.TapePath, storage.ModeOverWrite, data); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.meta.PutLifecycle(nil, row); err != nil {
		t.Fatal(err)
	}
}

func pat(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = seed + byte(i%97)
	}
	return b
}

func TestPutReadResident(t *testing.T) {
	e := newTestEnv(t, Config{})
	data := pat(100, 1)
	e.put(t, "a", data)
	if got := e.read(t, "a"); !bytes.Equal(got, data) {
		t.Fatal("read mismatch")
	}
	if s := e.state(t, "a"); s != StateResident {
		t.Fatalf("state = %s, want resident", s)
	}
	st := e.eng.Stats()
	if st.Hits != 1 || st.Misses != 0 || st.Recalls != 0 {
		t.Fatalf("stats = %+v, want 1 pool hit", st)
	}
}

func TestMigrationSweepAgesOutColdData(t *testing.T) {
	e := newTestEnv(t, Config{Policy: Policy{ColdAfter: time.Hour}})
	e.put(t, "cold", pat(200, 2))
	e.p.Advance(30 * time.Minute)
	e.put(t, "warm", pat(200, 3))
	e.p.Advance(45 * time.Minute) // cold idle 75m, warm idle 45m

	if err := e.eng.Tick(e.p); err != nil {
		t.Fatal(err)
	}
	if s := e.state(t, "cold"); s != StateDual {
		t.Fatalf("cold state = %s, want dual", s)
	}
	if s := e.state(t, "warm"); s != StateResident {
		t.Fatalf("warm state = %s, want resident", s)
	}
	st := e.eng.Stats()
	if st.Migrations != 1 || st.MigratedBytes != 200 {
		t.Fatalf("migrations = %d/%d bytes, want 1/200", st.Migrations, st.MigratedBytes)
	}
	// A read refreshes the cold clock: the dual copy reads from disk.
	if got := e.read(t, "cold"); !bytes.Equal(got, pat(200, 2)) {
		t.Fatal("dual read mismatch")
	}
	if e.eng.Stats().Recalls != 0 {
		t.Fatal("dual read must not recall")
	}
}

func TestReadKeepsDatasetWarm(t *testing.T) {
	e := newTestEnv(t, Config{Policy: Policy{ColdAfter: time.Hour}})
	e.put(t, "a", pat(50, 4))
	e.p.Advance(50 * time.Minute)
	e.read(t, "a") // refresh
	e.p.Advance(50 * time.Minute)
	if err := e.eng.Tick(e.p); err != nil {
		t.Fatal(err)
	}
	if s := e.state(t, "a"); s != StateResident {
		t.Fatalf("recently-read dataset migrated (state %s)", s)
	}
}

func TestRecallRoundTrip(t *testing.T) {
	e := newTestEnv(t, Config{PoolCapacity: 2000})
	data := pat(300, 5)
	e.seed(t, "x", StateMigrated, data, 0)

	got, err := e.eng.Read(e.p, "x")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("recall bytes mismatch")
	}
	st := e.eng.Stats()
	if st.Recalls != 1 || st.Misses != 1 || st.RecalledBytes != 300 {
		t.Fatalf("stats after recall = %+v", st)
	}
	if s := e.state(t, "x"); s != StateMigrated {
		t.Fatalf("state after recall = %s, want migrated", s)
	}
	if lat := e.eng.RecallLatencies(); len(lat) != 1 || lat[0] <= 0 {
		t.Fatalf("recall latency not recorded: %v", lat)
	}

	// Second read hits the warm recall cache on the pool: no new
	// recall, counted as a pool hit.
	if got := e.read(t, "x"); !bytes.Equal(got, data) {
		t.Fatal("warm recall read mismatch")
	}
	st = e.eng.Stats()
	if st.Recalls != 1 || st.Hits != 1 {
		t.Fatalf("warm read stats = %+v, want 1 recall + 1 hit", st)
	}
	if st.RecallP95 <= 0 {
		t.Fatal("recall p95 not reported")
	}
}

// TestGCAtExactHighWatermark pins the inclusive trigger: occupancy
// exactly at the high watermark starts a GC run that drains dual
// copies to the low watermark, lowest benefit first, and the purged
// data remains recallable byte-for-byte.
func TestGCAtExactHighWatermark(t *testing.T) {
	e := newTestEnv(t, Config{
		PoolCapacity: 1000,
		Policy:       Policy{HighWater: 0.8, LowWater: 0.5, ColdAfter: 100 * time.Hour},
	})
	for i := 0; i < 4; i++ {
		e.seed(t, fmt.Sprintf("d%d", i), StateDual, pat(200, byte(i)), time.Duration(i)*time.Minute)
	}
	// occupancy == 800 == high watermark exactly.
	if err := e.eng.Tick(e.p); err != nil {
		t.Fatal(err)
	}
	st := e.eng.Stats()
	if st.GCRuns != 1 {
		t.Fatalf("GCRuns = %d, want 1 (exactly-at-watermark must trigger)", st.GCRuns)
	}
	if st.PoolUsed > 500 {
		t.Fatalf("occupancy %d above low watermark 500 after GC", st.PoolUsed)
	}
	if st.GCPurged != 2 || st.GCBytes != 400 {
		t.Fatalf("purged %d/%d bytes, want 2/400", st.GCPurged, st.GCBytes)
	}
	// LRU order without a predictor: the oldest duals went first.
	for i, want := range []string{StateMigrated, StateMigrated, StateDual, StateDual} {
		if s := e.state(t, fmt.Sprintf("d%d", i)); s != want {
			t.Fatalf("d%d state = %s, want %s", i, s, want)
		}
	}
	if got := e.read(t, "d0"); !bytes.Equal(got, pat(200, 0)) {
		t.Fatal("purged dataset recall mismatch")
	}
}

// TestGCBelowHighWatermarkIdle is the complement: one byte under the
// watermark must not trigger.
func TestGCBelowHighWatermarkIdle(t *testing.T) {
	e := newTestEnv(t, Config{
		PoolCapacity: 1000,
		Policy:       Policy{HighWater: 0.8, LowWater: 0.5, ColdAfter: 100 * time.Hour},
	})
	e.seed(t, "d", StateDual, pat(799, 9), 0)
	if err := e.eng.Tick(e.p); err != nil {
		t.Fatal(err)
	}
	if st := e.eng.Stats(); st.GCRuns != 0 || st.GCPurged != 0 {
		t.Fatalf("GC ran below the watermark: %+v", st)
	}
}

// TestGCEmptyPool: a tick over an empty pool is a no-op, not a
// divide-by-zero or a phantom GC run.
func TestGCEmptyPool(t *testing.T) {
	e := newTestEnv(t, Config{PoolCapacity: 100})
	if err := e.eng.Tick(e.p); err != nil {
		t.Fatal(err)
	}
	st := e.eng.Stats()
	if st.GCRuns != 0 || st.GCStalls != 0 || st.Tracked != 0 {
		t.Fatalf("empty-pool tick not a no-op: %+v", st)
	}
}

// TestGCAllPinnedStalls: when every dataset above the watermark is
// pinned, GC must stall and report — not purge a pinned or last copy.
func TestGCAllPinnedStalls(t *testing.T) {
	e := newTestEnv(t, Config{
		PoolCapacity: 1000,
		Policy:       Policy{HighWater: 0.8, LowWater: 0.5, ColdAfter: time.Hour},
	})
	for i := 0; i < 3; i++ {
		path := fmt.Sprintf("p%d", i)
		e.seed(t, path, StateResident, pat(300, byte(i)), 0)
		e.eng.Pin(path)
	}
	e.p.Advance(2 * time.Hour) // cold, but pinned
	if err := e.eng.Tick(e.p); err != nil {
		t.Fatal(err)
	}
	st := e.eng.Stats()
	if st.GCStalls != 1 {
		t.Fatalf("GCStalls = %d, want 1", st.GCStalls)
	}
	if st.GCPurged != 0 || st.Migrations != 0 {
		t.Fatalf("pinned data moved: %+v", st)
	}
	for i := 0; i < 3; i++ {
		if s := e.state(t, fmt.Sprintf("p%d", i)); s != StateResident {
			t.Fatalf("p%d state = %s, want resident", i, s)
		}
	}
	// Unpinning lets the next sweep make progress again.
	for i := 0; i < 3; i++ {
		e.eng.Unpin(fmt.Sprintf("p%d", i))
	}
	if err := e.eng.Tick(e.p); err != nil {
		t.Fatal(err)
	}
	if st := e.eng.Stats(); st.Migrations == 0 {
		t.Fatalf("unpinned sweep made no progress: %+v", st)
	}
}

// TestGCStallsWhenTapeDown: resident data whose migration fails (the
// archive tier is down) must not be purged — migrate-before-purge
// means GC stalls instead of deleting the last copy.
func TestGCStallsWhenTapeDown(t *testing.T) {
	e := newTestEnv(t, Config{
		PoolCapacity: 1000,
		Policy:       Policy{HighWater: 0.8, LowWater: 0.5, ColdAfter: time.Hour},
	})
	for i := 0; i < 3; i++ {
		e.seed(t, fmt.Sprintf("r%d", i), StateResident, pat(300, byte(i)), 0)
	}
	e.p.Advance(2 * time.Hour)
	e.lib.SetDown(true)
	if err := e.eng.Tick(e.p); err != nil {
		t.Fatal(err)
	}
	st := e.eng.Stats()
	if st.GCStalls == 0 {
		t.Fatalf("GC did not stall with tape down: %+v", st)
	}
	if st.GCPurged != 0 {
		t.Fatal("GC purged a last copy")
	}
	if st.MigrateFailures == 0 {
		t.Fatal("migration failures not counted")
	}
	for i := 0; i < 3; i++ {
		path := fmt.Sprintf("r%d", i)
		if s := e.state(t, path); s != StateResident {
			t.Fatalf("%s state = %s, want resident", path, s)
		}
		if got := e.read(t, path); !bytes.Equal(got, pat(300, byte(i))) {
			t.Fatalf("%s unreadable after stalled GC", path)
		}
	}
	// Tape back up: the stalled work completes.
	e.lib.SetDown(false)
	if err := e.eng.Tick(e.p); err != nil {
		t.Fatal(err)
	}
	if st := e.eng.Stats(); st.PoolUsed > 500 {
		t.Fatalf("occupancy %d above low watermark after recovery tick", st.PoolUsed)
	}
}

// TestMigrateBeforePurge: GC against a pool of resident-only datasets
// first copies the victim to tape, then purges — the dataset stays
// readable throughout.
func TestMigrateBeforePurge(t *testing.T) {
	e := newTestEnv(t, Config{
		PoolCapacity: 1000,
		Policy:       Policy{HighWater: 0.8, LowWater: 0.5, ColdAfter: 100 * time.Hour},
	})
	for i := 0; i < 3; i++ {
		e.seed(t, fmt.Sprintf("r%d", i), StateResident, pat(300, byte(i)), time.Duration(i)*time.Minute)
	}
	if err := e.eng.Tick(e.p); err != nil {
		t.Fatal(err)
	}
	st := e.eng.Stats()
	if st.GCRuns != 1 || st.GCPurged == 0 {
		t.Fatalf("gc = %+v", st)
	}
	if st.Migrations != st.GCPurged {
		t.Fatalf("purged %d but migrated %d — a last copy was deleted", st.GCPurged, st.Migrations)
	}
	for i := 0; i < 3; i++ {
		path := fmt.Sprintf("r%d", i)
		if got := e.read(t, path); !bytes.Equal(got, pat(300, byte(i))) {
			t.Fatalf("%s corrupted by migrate-before-purge", path)
		}
	}
}

func TestPutOverCapacityCollects(t *testing.T) {
	e := newTestEnv(t, Config{
		PoolCapacity: 1000,
		Policy:       Policy{HighWater: 0.8, LowWater: 0.5, ColdAfter: 100 * time.Hour},
	})
	for i := 0; i < 6; i++ {
		e.put(t, fmt.Sprintf("f%d", i), pat(250, byte(i)))
	}
	st := e.eng.Stats()
	if st.GCRuns == 0 {
		t.Fatalf("puts past the watermark never collected: %+v", st)
	}
	for i := 0; i < 6; i++ {
		path := fmt.Sprintf("f%d", i)
		if got := e.read(t, path); !bytes.Equal(got, pat(250, byte(i))) {
			t.Fatalf("%s lost across put-triggered GC", path)
		}
	}
}

func TestRemoveDropsAllCopiesAndDrivesRepack(t *testing.T) {
	e := newTestEnv(t, Config{
		PoolCapacity: 10_000,
		Policy:       Policy{ColdAfter: time.Hour, RepackWaste: 0.3},
	})
	keep := pat(200, 7)
	e.put(t, "keep", keep)
	for i := 0; i < 4; i++ {
		e.put(t, fmt.Sprintf("junk%d", i), pat(400, byte(i)))
	}
	e.p.Advance(2 * time.Hour)
	if err := e.eng.Tick(e.p); err != nil { // everything migrates to dual
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := e.eng.Remove(e.p, fmt.Sprintf("junk%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.eng.Read(e.p, "junk0"); !errors.Is(err, metadb.ErrNotFound) {
		t.Fatalf("removed dataset still readable: %v", err)
	}
	// 1600 dead tape bytes vs 200 live: the next sweep repacks.
	if err := e.eng.Tick(e.p); err != nil {
		t.Fatal(err)
	}
	st := e.eng.Stats()
	if st.Repacks != 1 || st.RepackBytes == 0 {
		t.Fatalf("repack = %d/%d bytes, want 1 run", st.Repacks, st.RepackBytes)
	}
	if _, _, wasted := e.lib.Stats(); wasted != 0 {
		t.Fatalf("wasted = %d after repack", wasted)
	}
	// The surviving tape copy moved cartridges but stays correct.
	e.eng.Pin("keep") // keep the disk copy out of GC's way
	defer e.eng.Unpin("keep")
	if got := e.read(t, "keep"); !bytes.Equal(got, keep) {
		t.Fatal("survivor corrupted by repack")
	}
}

// TestRecoverMapsTransientStates: journal replay can surface the
// in-flight markers; Recover must map them to the state whose copy is
// authoritative.
func TestRecoverMapsTransientStates(t *testing.T) {
	e := newTestEnv(t, Config{})
	e.seed(t, "m", StateResident, pat(100, 1), 0)
	row, _ := e.meta.GetLifecycle(nil, "pool", "m")
	row.State = StateMigrating
	row.TapePath = "hsm/pool/m"
	if err := e.meta.PutLifecycle(nil, row); err != nil {
		t.Fatal(err)
	}
	e.seed(t, "r", StateMigrated, pat(100, 2), 0)
	row, _ = e.meta.GetLifecycle(nil, "pool", "r")
	row.State = StateRecalling
	if err := e.meta.PutLifecycle(nil, row); err != nil {
		t.Fatal(err)
	}
	e.seed(t, "ok", StateDual, pat(100, 3), 0)

	fixed, err := e.eng.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if fixed != 2 {
		t.Fatalf("fixed = %d, want 2", fixed)
	}
	if s := e.state(t, "m"); s != StateResident {
		t.Fatalf("migrating recovered to %s, want resident", s)
	}
	if row, _ := e.meta.GetLifecycle(nil, "pool", "m"); row.TapePath != "" {
		t.Fatal("recovered resident row kept a tape path")
	}
	if s := e.state(t, "r"); s != StateMigrated {
		t.Fatalf("recalling recovered to %s, want migrated", s)
	}
	if s := e.state(t, "ok"); s != StateDual {
		t.Fatalf("dual disturbed by recovery: %s", s)
	}
	// The recovered datasets are readable through their safe copies.
	if got := e.read(t, "m"); !bytes.Equal(got, pat(100, 1)) {
		t.Fatal("recovered resident unreadable")
	}
	if got := e.read(t, "r"); !bytes.Equal(got, pat(100, 2)) {
		t.Fatal("recovered migrated unreadable")
	}
}

// TestRequeueRestoresResident covers the sweep's generation-change
// path: requeued members return to resident with no tape path and are
// retried by the next sweep.
func TestRequeueRestoresResident(t *testing.T) {
	e := newTestEnv(t, Config{Policy: Policy{ColdAfter: time.Hour}})
	e.seed(t, "q", StateResident, pat(100, 1), 0)
	row, _ := e.meta.GetLifecycle(nil, "pool", "q")
	row.State = StateMigrating
	if err := e.meta.PutLifecycle(nil, row); err != nil {
		t.Fatal(err)
	}
	if err := e.eng.requeue([]metadb.Lifecycle{row}); err != nil {
		t.Fatal(err)
	}
	if s := e.state(t, "q"); s != StateResident {
		t.Fatalf("requeued state = %s, want resident", s)
	}
	if st := e.eng.Stats(); st.Requeued != 1 {
		t.Fatalf("Requeued = %d, want 1", st.Requeued)
	}
	e.p.Advance(2 * time.Hour)
	if err := e.eng.Tick(e.p); err != nil {
		t.Fatal(err)
	}
	if s := e.state(t, "q"); s != StateDual {
		t.Fatalf("requeued member not retried: %s", s)
	}
}

// TestMigrationBatchesThroughQoS wires a live scheduler: one sweep's
// tape writes must form a single staging-cartridge batch.
func TestMigrationBatchesThroughQoS(t *testing.T) {
	sim := vtime.NewVirtual()
	meta := metadb.New()
	pool, err := remotedisk.New("pool", memfs.New())
	if err != nil {
		t.Fatal(err)
	}
	lib, err := tape.New(tape.Config{Name: "vault", Store: memfs.New()})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := qos.New(qos.Config{Tape: lib, MaxInFlight: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer sched.Close()
	eng, err := New(Config{
		Sim: sim, Meta: meta, Pool: pool, Tape: lib, QoS: sched,
		PoolCapacity: 100_000, Policy: Policy{ColdAfter: time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	p := sim.NewProc("rank0")
	for i := 0; i < 4; i++ {
		if err := eng.Put(p, fmt.Sprintf("f%d", i), pat(500, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	p.Advance(2 * time.Hour)
	if err := eng.Tick(p); err != nil {
		t.Fatal(err)
	}
	if st := eng.Stats(); st.Migrations != 4 {
		t.Fatalf("migrations = %d, want 4", st.Migrations)
	}
	qst := sched.Stats()
	if qst.Batches != 1 || qst.Batched != 4 {
		t.Fatalf("qos batches = %d/%d members, want one batch of 4", qst.Batches, qst.Batched)
	}
	if len(qst.Tenants) != 1 || qst.Tenants[0].Tenant != "hsm" ||
		qst.Tenants[0].Granted != 4 || qst.Tenants[0].Done != 4 {
		t.Fatalf("tenant stats = %+v", qst.Tenants)
	}
	for i := 0; i < 4; i++ {
		if data, err := eng.Read(p, fmt.Sprintf("f%d", i)); err != nil || !bytes.Equal(data, pat(500, byte(i))) {
			t.Fatalf("f%d mismatch after batched migration: %v", i, err)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	sim := vtime.NewVirtual()
	pool, _ := remotedisk.New("pool", memfs.New())
	lib, _ := tape.New(tape.Config{Name: "vault", Store: memfs.New()})
	base := Config{Sim: sim, Meta: metadb.New(), Pool: pool, Tape: lib, PoolCapacity: 1000}
	for name, mut := range map[string]func(*Config){
		"nil sim":       func(c *Config) { c.Sim = nil },
		"nil meta":      func(c *Config) { c.Meta = nil },
		"nil pool":      func(c *Config) { c.Pool = nil },
		"nil tape":      func(c *Config) { c.Tape = nil },
		"zero capacity": func(c *Config) { c.PoolCapacity = 0 },
		"bad watermark": func(c *Config) { c.Policy = Policy{HighWater: 0.3, LowWater: 0.6} },
	} {
		c := base
		mut(&c)
		if _, err := New(c); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	eng, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	eng.Close()
	// A zero policy takes the defaults, except RepackWaste where zero
	// means "repacking disabled".
	if eng.Policy() != (Policy{}).withDefaults() {
		t.Fatalf("zero policy not defaulted: %+v", eng.Policy())
	}
}

// TestPercentileRank pins the nearest-rank index math of the shared
// percentile helper (and recallP95, which delegates to it): rank
// ⌈n·95/100⌉, clamped to the last sample, 1-based.
func TestPercentileRank(t *testing.T) {
	cases := []struct {
		n        int
		wantRank int // 0-based index into the sorted samples
	}{
		{1, 0},    // ⌈0.95⌉ = 1 → index 0
		{19, 18},  // ⌈18.05⌉ = 19 → index 18 (the max)
		{20, 18},  // ⌈19.0⌉ = 19 → index 18 (not 19: p95 of 20 excludes the max)
		{100, 94}, // ⌈95.0⌉ = 95 → index 94
	}
	for _, c := range cases {
		// Shuffled-order samples 1ms..n·ms so sortedness is the helper's job:
		// value at sorted index i is (i+1)·ms.
		lat := make([]time.Duration, 0, c.n)
		for v := c.n; v >= 1; v-- {
			lat = append(lat, time.Duration(v)*time.Millisecond)
		}
		want := time.Duration(c.wantRank+1) * time.Millisecond
		if got := Percentile(lat, 95); got != want {
			t.Errorf("Percentile(n=%d, 95) = %v, want sorted index %d = %v", c.n, got, c.wantRank, want)
		}
		e := &Engine{recallLat: append([]time.Duration(nil), lat...)}
		if got := e.recallP95(); got != want {
			t.Errorf("recallP95(n=%d) = %v, want %v", c.n, got, want)
		}
		if lat[0] != time.Duration(c.n)*time.Millisecond {
			t.Fatalf("Percentile mutated its input: %v", lat[0])
		}
	}
	if got := Percentile(nil, 95); got != 0 {
		t.Errorf("Percentile(nil) = %v, want 0", got)
	}
}

// TestNoteRecallHalvesAtCap pins the recall-latency window bound: the
// slice grows to 1<<14 samples, and the append that would exceed the
// cap drops the oldest half.
func TestNoteRecallHalvesAtCap(t *testing.T) {
	const cap = 1 << 14
	e := &Engine{}
	for i := 0; i < cap; i++ {
		e.noteRecall(time.Duration(i) * time.Microsecond)
	}
	if len(e.recallLat) != cap {
		t.Fatalf("window halved early: len = %d at the cap", len(e.recallLat))
	}
	e.noteRecall(time.Duration(cap) * time.Microsecond)
	// len was cap+1 > cap, so the oldest (cap+1)/2 samples are dropped.
	wantLen := (cap + 1) - (cap+1)/2
	if len(e.recallLat) != wantLen {
		t.Fatalf("after cap+1 appends len = %d, want %d", len(e.recallLat), wantLen)
	}
	if got, want := e.recallLat[0], time.Duration((cap+1)/2)*time.Microsecond; got != want {
		t.Fatalf("oldest surviving sample = %v, want %v (newest half kept)", got, want)
	}
	if got, want := e.recallLat[len(e.recallLat)-1], time.Duration(cap)*time.Microsecond; got != want {
		t.Fatalf("newest sample = %v, want %v", got, want)
	}
}
