package sched

import (
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdersByDeclaration(t *testing.T) {
	jobs := []Job{
		{ID: "long", MaxRunTime: 10 * time.Hour, Actual: time.Hour},
		{ID: "short", MaxRunTime: time.Hour, Actual: 30 * time.Minute},
		{ID: "mid", MaxRunTime: 2 * time.Hour, Actual: time.Hour},
	}
	out, makespan, err := Schedule(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Job.ID != "short" || out[1].Job.ID != "mid" || out[2].Job.ID != "long" {
		t.Fatalf("order = %v %v %v", out[0].Job.ID, out[1].Job.ID, out[2].Job.ID)
	}
	if out[0].Wait() != 0 {
		t.Fatalf("highest priority waited %v", out[0].Wait())
	}
	if makespan != 2*time.Hour+30*time.Minute {
		t.Fatalf("makespan = %v", makespan)
	}
}

func TestScheduleKillsOverrun(t *testing.T) {
	jobs := []Job{{ID: "optimist", MaxRunTime: time.Hour, Actual: 2 * time.Hour}}
	out, _, err := Schedule(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !out[0].Killed {
		t.Fatal("overrunning job not killed")
	}
	if out[0].End != time.Hour {
		t.Fatalf("killed at %v, want the declared limit", out[0].End)
	}
}

func TestScheduleValidation(t *testing.T) {
	if _, _, err := Schedule([]Job{{ID: "x", MaxRunTime: 0, Actual: time.Hour}}); err == nil {
		t.Fatal("zero declaration accepted")
	}
	if _, _, err := Schedule([]Job{{ID: "x", MaxRunTime: time.Hour, Actual: 0}}); err == nil {
		t.Fatal("zero actual accepted")
	}
}

// The paper's scenario end to end: a predictor-derived declaration
// survives while an optimistic guess is killed and a pessimistic guess
// waits behind everyone.
func TestPredictorDerivedDeclarationWins(t *testing.T) {
	predictedIO := 180 * time.Second // the worked example's lower bound
	actualIO := 197 * time.Second    // what the run really costs
	compute := 300 * time.Second

	suggested, err := SuggestMaxRunTime(predictedIO, compute, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	jobs := []Job{
		{ID: "optimist", MaxRunTime: predictedIO + compute, Actual: actualIO + compute},
		{ID: "planned", MaxRunTime: suggested, Actual: actualIO + compute},
		{ID: "pessimist", MaxRunTime: 10 * (actualIO + compute), Actual: actualIO + compute},
	}
	out, _, err := Schedule(jobs)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string]Outcome{}
	for _, o := range out {
		byID[o.Job.ID] = o
	}
	if !byID["optimist"].Killed {
		t.Fatal("optimist (declared exactly the lower bound) should be killed")
	}
	if byID["planned"].Killed {
		t.Fatal("planned declaration killed despite margin")
	}
	if byID["planned"].Wait() >= byID["pessimist"].Wait() {
		t.Fatalf("planned waited %v, pessimist %v — priority inverted",
			byID["planned"].Wait(), byID["pessimist"].Wait())
	}
}

func TestSuggestValidation(t *testing.T) {
	if _, err := SuggestMaxRunTime(-1, 0, 0.1); err == nil {
		t.Fatal("negative io accepted")
	}
	if _, err := SuggestMaxRunTime(time.Second, time.Second, -0.1); err == nil {
		t.Fatal("negative margin accepted")
	}
	got, err := SuggestMaxRunTime(100*time.Second, 100*time.Second, 0.5)
	if err != nil || got != 300*time.Second {
		t.Fatalf("Suggest = %v, %v", got, err)
	}
}

// Property: the machine is never idle between jobs and never runs two at
// once — outcomes tile [0, makespan].
func TestQuickScheduleTiles(t *testing.T) {
	f := func(durs []uint16) bool {
		if len(durs) == 0 {
			return true
		}
		jobs := make([]Job, len(durs))
		for i, d := range durs {
			dur := time.Duration(int(d)+1) * time.Second
			jobs[i] = Job{ID: string(rune('a' + i%26)), MaxRunTime: dur, Actual: dur}
		}
		out, makespan, err := Schedule(jobs)
		if err != nil {
			return false
		}
		var cursor time.Duration
		for _, o := range out {
			if o.Start != cursor || o.End < o.Start {
				return false
			}
			cursor = o.End
		}
		return cursor == makespan
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
