// Package sched turns the paper's job-planning use case into code:
// "Our application is running on Argonne's SP2, which allows the user
// to specify a maximum run time for her job.  The larger the maximum
// run time, the lower priority for scheduling.  As the competition for
// job scheduling is keen, the user always wants to specify the maximum
// run time to be as small as possible.  Our performance predictor can
// provide a lower bound for this parameter."
//
// The package models a shortest-declared-first batch queue (small
// MaxRunTime = high priority; exceeding the declaration kills the job)
// and provides SuggestMaxRunTime, which combines the predictor's I/O
// lower bound with the user's compute estimate and a safety margin.
package sched

import (
	"fmt"
	"sort"
	"time"
)

// Job is one batch submission.
type Job struct {
	// ID names the job.
	ID string
	// MaxRunTime is the user's declared limit.
	MaxRunTime time.Duration
	// Actual is the job's true duration if allowed to finish.
	Actual time.Duration
}

// Outcome describes one scheduled job.
type Outcome struct {
	Job    Job
	Start  time.Duration
	End    time.Duration
	Killed bool // exceeded its declaration
}

// Wait returns the time the job spent queued.
func (o Outcome) Wait() time.Duration { return o.Start }

// Schedule runs the jobs on one machine in declared-limit order
// (shorter declarations first, FIFO within ties), killing any job at
// its declared limit.  It returns the per-job outcomes in execution
// order plus the makespan.
func Schedule(jobs []Job) ([]Outcome, time.Duration, error) {
	for _, j := range jobs {
		if j.MaxRunTime <= 0 {
			return nil, 0, fmt.Errorf("sched: job %q declares non-positive max run time", j.ID)
		}
		if j.Actual <= 0 {
			return nil, 0, fmt.Errorf("sched: job %q has non-positive actual duration", j.ID)
		}
	}
	order := make([]int, len(jobs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return jobs[order[a]].MaxRunTime < jobs[order[b]].MaxRunTime
	})
	var now time.Duration
	out := make([]Outcome, 0, len(jobs))
	for _, idx := range order {
		j := jobs[idx]
		run := j.Actual
		killed := false
		if run > j.MaxRunTime {
			run = j.MaxRunTime
			killed = true
		}
		o := Outcome{Job: j, Start: now, End: now + run, Killed: killed}
		now = o.End
		out = append(out, o)
	}
	return out, now, nil
}

// SuggestMaxRunTime converts the predictor's I/O lower bound and the
// user's compute estimate into a declaration: (io + compute) padded by
// margin (e.g. 0.15 for 15 %).  The I/O prediction is a lower bound —
// the paper measured ≈9 % above it — so a margin below ~0.1 risks the
// kill.
func SuggestMaxRunTime(predictedIO, compute time.Duration, margin float64) (time.Duration, error) {
	if predictedIO < 0 || compute < 0 {
		return 0, fmt.Errorf("sched: negative duration")
	}
	if margin < 0 {
		return 0, fmt.Errorf("sched: negative margin")
	}
	base := predictedIO + compute
	return base + time.Duration(margin*float64(base)), nil
}
