// Package subfile implements the SRB-OL subfile optimization: a large
// distributed dataset is stored as one file per process rank instead of
// a single shared file.  Each rank then writes (or reads) its packed
// subarray with a single sequential native call and no exchange phase,
// at the cost of fixing the decomposition in the stored layout.
//
// A small JSON meta file records the geometry so later readers (with the
// same or a different process count) can reassemble the global array.
package subfile

import (
	"encoding/json"
	"fmt"
	"sync"

	"repro/internal/pattern"
	"repro/internal/storage"
	"repro/internal/vtime"
)

// Meta describes a subfiled dataset.
type Meta struct {
	Dims  []int  `json:"dims"`
	Etype int    `json:"etype"`
	Pat   string `json:"pattern"`
	Grid  []int  `json:"grid"`
}

// metaPath and partPath name the on-storage layout.
func metaPath(base string) string { return base + ".submeta" }

// PartPath returns the subfile path of one rank.
func PartPath(base string, rank int) string {
	return fmt.Sprintf("%s.sub.%04d", base, rank)
}

// Write stores each rank's packed subarray into its own subfile plus the
// meta file.  bufs[r] must be rank r's packed local buffer.
func Write(sess storage.Session, base string, dims []int, etype int, pat pattern.Pattern, grid pattern.Grid, procs []*vtime.Proc, bufs [][]byte) error {
	n := grid.Procs()
	if len(procs) != n || len(bufs) != n {
		return fmt.Errorf("subfile write: grid %v wants %d procs, got %d/%d", grid, n, len(procs), len(bufs))
	}
	meta := Meta{Dims: dims, Etype: etype, Pat: pat.String(), Grid: grid}
	mb, err := json.Marshal(meta)
	if err != nil {
		return fmt.Errorf("subfile write: %w", err)
	}
	// Whole-file transfers: one request carries open + write + close on
	// remote backends, three round trips collapsed into one per file.
	if err := storage.PutFile(procs[0], sess, metaPath(base), storage.ModeOverWrite, mb); err != nil {
		return fmt.Errorf("subfile write meta: %w", err)
	}

	var wg sync.WaitGroup
	errs := make([]error, n)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = storage.PutFile(procs[r], sess, PartPath(base, r), storage.ModeOverWrite, bufs[r])
		}(r)
	}
	wg.Wait()
	vtime.Barrier(procs...)
	for _, err := range errs {
		if err != nil {
			return fmt.Errorf("subfile write: %w", err)
		}
	}
	return nil
}

// ReadMeta fetches a subfiled dataset's geometry.
func ReadMeta(p *vtime.Proc, sess storage.Session, base string) (Meta, error) {
	buf, err := storage.GetFile(p, sess, metaPath(base))
	if err != nil {
		return Meta{}, fmt.Errorf("subfile meta: %w", err)
	}
	var m Meta
	if err := json.Unmarshal(buf, &m); err != nil {
		return Meta{}, fmt.Errorf("subfile meta decode: %w", err)
	}
	return m, nil
}

// Read loads each rank's packed subarray back, assuming the same
// geometry the dataset was written with.  bufs[r] receives rank r's
// packed bytes and must be pre-sized.
func Read(sess storage.Session, base string, grid pattern.Grid, procs []*vtime.Proc, bufs [][]byte) error {
	n := grid.Procs()
	if len(procs) != n || len(bufs) != n {
		return fmt.Errorf("subfile read: grid %v wants %d procs, got %d/%d", grid, n, len(procs), len(bufs))
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			data, err := storage.GetFile(procs[r], sess, PartPath(base, r))
			if err != nil {
				errs[r] = err
				return
			}
			copy(bufs[r], data)
		}(r)
	}
	wg.Wait()
	vtime.Barrier(procs...)
	for _, err := range errs {
		if err != nil {
			return fmt.Errorf("subfile read: %w", err)
		}
	}
	return nil
}

// ReadGlobal reassembles the full global array from a subfiled dataset,
// whatever decomposition it was written with (the post-processing tools'
// path: a sequential consumer reading a parallel producer's output).
func ReadGlobal(p *vtime.Proc, sess storage.Session, base string) ([]byte, Meta, error) {
	m, err := ReadMeta(p, sess, base)
	if err != nil {
		return nil, Meta{}, err
	}
	pat, err := pattern.Parse(m.Pat)
	if err != nil {
		return nil, Meta{}, fmt.Errorf("subfile global: %w", err)
	}
	grid := pattern.Grid(m.Grid)
	global := make([]byte, pattern.TotalBytes(m.Dims, m.Etype))
	for r := 0; r < grid.Procs(); r++ {
		sets, err := pattern.IndexSets(m.Dims, pat, grid, r)
		if err != nil {
			return nil, Meta{}, err
		}
		runs := pattern.FileRuns(m.Dims, m.Etype, sets)
		local, err := storage.GetFile(p, sess, PartPath(base, r))
		if err != nil {
			return nil, Meta{}, fmt.Errorf("subfile global: %w", err)
		}
		if err := pattern.Unpack(global, runs, local); err != nil {
			return nil, Meta{}, err
		}
	}
	return global, m, nil
}
