package subfile

import (
	"bytes"
	"testing"

	"repro/internal/device"
	"repro/internal/memfs"
	"repro/internal/model"
	"repro/internal/pattern"
	"repro/internal/storage"
	"repro/internal/vtime"
)

func setup(t *testing.T) (storage.Session, *vtime.Sim) {
	t.Helper()
	be, err := device.New(device.Config{Name: "b", Params: model.Memory(), Store: memfs.New(), Channels: 4})
	if err != nil {
		t.Fatal(err)
	}
	sim := vtime.NewVirtual()
	p := sim.NewProc("admin")
	sess, err := be.Connect(p)
	if err != nil {
		t.Fatal(err)
	}
	return sess, sim
}

func mkGlobal(n int64) []byte {
	g := make([]byte, n)
	for i := range g {
		g[i] = byte(i * 13)
	}
	return g
}

func TestWriteReadSameGeometry(t *testing.T) {
	sess, sim := setup(t)
	dims := []int{8, 8}
	pat, _ := pattern.Parse("BB")
	grid := pattern.Grid{2, 2}
	procs := sim.NewProcs("r", 4)
	global := mkGlobal(pattern.TotalBytes(dims, 4))
	bufs := make([][]byte, 4)
	for r := range bufs {
		sets, _ := pattern.IndexSets(dims, pat, grid, r)
		bufs[r] = pattern.Pack(global, pattern.FileRuns(dims, 4, sets))
	}
	if err := Write(sess, "ds", dims, 4, pat, grid, procs, bufs); err != nil {
		t.Fatal(err)
	}
	got := make([][]byte, 4)
	for r := range got {
		got[r] = make([]byte, len(bufs[r]))
	}
	if err := Read(sess, "ds", grid, procs, got); err != nil {
		t.Fatal(err)
	}
	for r := range got {
		if !bytes.Equal(got[r], bufs[r]) {
			t.Fatalf("rank %d subfile mismatch", r)
		}
	}
}

func TestReadMetaAndGlobal(t *testing.T) {
	sess, sim := setup(t)
	dims := []int{6, 9}
	pat, _ := pattern.Parse("B*")
	grid := pattern.Grid{3, 1}
	procs := sim.NewProcs("r", 3)
	global := mkGlobal(pattern.TotalBytes(dims, 2))
	bufs := make([][]byte, 3)
	for r := range bufs {
		sets, _ := pattern.IndexSets(dims, pat, grid, r)
		bufs[r] = pattern.Pack(global, pattern.FileRuns(dims, 2, sets))
	}
	if err := Write(sess, "runA/temp", dims, 2, pat, grid, procs, bufs); err != nil {
		t.Fatal(err)
	}
	p := sim.NewProc("reader")
	m, err := ReadMeta(p, sess, "runA/temp")
	if err != nil {
		t.Fatal(err)
	}
	if m.Pat != "B*" || m.Etype != 2 || len(m.Dims) != 2 {
		t.Fatalf("meta = %+v", m)
	}
	g, m2, err := ReadGlobal(p, sess, "runA/temp")
	if err != nil {
		t.Fatal(err)
	}
	if m2.Pat != m.Pat {
		t.Fatalf("meta mismatch: %+v vs %+v", m, m2)
	}
	if !bytes.Equal(g, global) {
		t.Fatal("global reassembly mismatch")
	}
}

func TestPartPathNaming(t *testing.T) {
	if got := PartPath("a/b", 7); got != "a/b.sub.0007" {
		t.Fatalf("PartPath = %q", got)
	}
}

func TestGeometryValidation(t *testing.T) {
	sess, sim := setup(t)
	pat, _ := pattern.Parse("B")
	grid := pattern.Grid{2}
	procs := sim.NewProcs("r", 1) // wrong count
	if err := Write(sess, "x", []int{4}, 1, pat, grid, procs, [][]byte{{1}}); err == nil {
		t.Fatal("proc/grid mismatch accepted")
	}
	if err := Read(sess, "x", grid, procs, [][]byte{{1}}); err == nil {
		t.Fatal("read proc/grid mismatch accepted")
	}
}

func TestReadMissing(t *testing.T) {
	sess, sim := setup(t)
	p := sim.NewProc("p")
	if _, err := ReadMeta(p, sess, "absent"); err == nil {
		t.Fatal("meta of missing dataset succeeded")
	}
	if _, _, err := ReadGlobal(p, sess, "absent"); err == nil {
		t.Fatal("global of missing dataset succeeded")
	}
}

func TestSubfileCallEfficiency(t *testing.T) {
	// Each rank issues exactly one data write (plus rank 0's meta write):
	// with per-call pricing only, total time ≈ one call per rank running
	// on separate channels.
	be, err := device.New(device.Config{
		Name:   "b",
		Params: model.Params{Name: "calls", PerCallWrite: 1e9}, // 1s per native call
		Store:  memfs.New(), Channels: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim := vtime.NewVirtual()
	procs := sim.NewProcs("r", 4)
	sess, _ := be.Connect(procs[0])
	dims := []int{4, 16}
	pat, _ := pattern.Parse("*B")
	grid := pattern.Grid{1, 4}
	global := mkGlobal(pattern.TotalBytes(dims, 1))
	bufs := make([][]byte, 4)
	for r := range bufs {
		sets, _ := pattern.IndexSets(dims, pat, grid, r)
		bufs[r] = pattern.Pack(global, pattern.FileRuns(dims, 1, sets))
	}
	if err := Write(sess, "eff", dims, 1, pat, grid, procs, bufs); err != nil {
		t.Fatal(err)
	}
	// rank0: meta write (1s) + data write (1s); others overlap → ≈2s.
	if got := vtime.MaxNow(procs...); got > 2_100_000_000 {
		t.Fatalf("subfile write total = %v ns, want ≈2s (parallel single calls)", got)
	}
}

func TestReadMissingPart(t *testing.T) {
	sess, sim := setup(t)
	procs := sim.NewProcs("r", 2)
	grid := pattern.Grid{2}
	bufs := [][]byte{make([]byte, 4), make([]byte, 4)}
	if err := Read(sess, "absent", grid, procs, bufs); err == nil {
		t.Fatal("read of missing subfiles succeeded")
	}
}

func TestGlobalWithCorruptMeta(t *testing.T) {
	sess, sim := setup(t)
	p := sim.NewProc("p")
	h, err := sess.Open(p, "bad.submeta", storage.ModeCreate)
	if err != nil {
		t.Fatal(err)
	}
	h.WriteAt(p, []byte("not json"), 0)
	h.Close(p)
	if _, _, err := ReadGlobal(p, sess, "bad"); err == nil {
		t.Fatal("corrupt meta accepted")
	}
}
