// Package vfs is the injectable filesystem seam beneath the broker's
// durable state (the meta-data journal of internal/wal and the metadb
// snapshot files).  Production code uses the OS implementation; tests
// substitute internal/faultfs to crash the "machine" at any numbered
// write, fsync or rename and to tear un-fsynced writes at sector
// granularity — so recovery code is exercised against the failure
// modes POSIX actually permits, not just the happy path.
//
// The interface is deliberately small and explicit about durability:
// nothing is guaranteed to survive a crash until File.Sync (for
// contents) and FS.SyncDir (for directory entries: creates, renames,
// removes) have returned.  That is the strict POSIX model; code that
// holds to it is correct on every real filesystem.
package vfs

import (
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
)

// ErrNotExist is returned when a named file does not exist.  It aliases
// io/fs.ErrNotExist so errors.Is works across implementations.
var ErrNotExist = fs.ErrNotExist

// FS is a minimal filesystem with explicit durability barriers.
type FS interface {
	// Create opens name for read/write, creating it and truncating any
	// existing file.  Parent directories are created as needed.  The new
	// directory entry is volatile until SyncDir.
	Create(name string) (File, error)
	// Append opens name for read/write positioned at the end, creating
	// it if absent.
	Append(name string) (File, error)
	// Open opens name read-only; ErrNotExist if absent.
	Open(name string) (File, error)
	// Rename atomically replaces newname with oldname.  The swap is
	// volatile until SyncDir on the parent.
	Rename(oldname, newname string) error
	// Remove deletes a file (volatile until SyncDir).
	Remove(name string) error
	// MkdirAll creates dir and parents.
	MkdirAll(dir string) error
	// List returns the base names of the files directly inside dir,
	// sorted.  A missing dir yields an empty list.
	List(dir string) ([]string, error)
	// SyncDir makes dir's current entries (creates, renames, removes)
	// durable.
	SyncDir(dir string) error
	// Stat returns the size of name, or ErrNotExist.
	Stat(name string) (int64, error)
}

// File is an open file.  Write appends at the current position;
// nothing written is durable until Sync returns.
type File interface {
	io.Writer
	io.ReaderAt
	// Truncate cuts the file to size bytes (used to drop a torn journal
	// tail before appending past it).
	Truncate(size int64) error
	// Sync makes the file's contents durable.
	Sync() error
	Close() error
}

// OS is the real-filesystem implementation.
type OS struct{}

var _ FS = OS{}

// Create implements FS.
func (OS) Create(name string) (File, error) {
	if err := os.MkdirAll(filepath.Dir(name), 0o755); err != nil {
		return nil, fmt.Errorf("vfs create %q: %w", name, err)
	}
	f, err := os.OpenFile(name, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("vfs create %q: %w", name, err)
	}
	return f, nil
}

// Append implements FS.
func (OS) Append(name string) (File, error) {
	if err := os.MkdirAll(filepath.Dir(name), 0o755); err != nil {
		return nil, fmt.Errorf("vfs append %q: %w", name, err)
	}
	f, err := os.OpenFile(name, os.O_RDWR|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("vfs append %q: %w", name, err)
	}
	return f, nil
}

// Open implements FS.
func (OS) Open(name string) (File, error) {
	f, err := os.OpenFile(name, os.O_RDONLY, 0)
	if err != nil {
		return nil, fmt.Errorf("vfs open %q: %w", name, err)
	}
	return f, nil
}

// Rename implements FS.
func (OS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

// Remove implements FS.
func (OS) Remove(name string) error { return os.Remove(name) }

// MkdirAll implements FS.
func (OS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// List implements FS.
func (OS) List(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("vfs list %q: %w", dir, err)
	}
	var out []string
	for _, e := range ents {
		if !e.IsDir() {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}

// SyncDir implements FS by fsyncing the directory file descriptor.
func (OS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("vfs syncdir %q: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("vfs syncdir %q: %w", dir, err)
	}
	return nil
}

// Stat implements FS.
func (OS) Stat(name string) (int64, error) {
	fi, err := os.Stat(name)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, fmt.Errorf("vfs stat %q: %w", name, ErrNotExist)
		}
		return 0, fmt.Errorf("vfs stat %q: %w", name, err)
	}
	return fi.Size(), nil
}

// ReadFile reads all of name.
func ReadFile(fsys FS, name string) ([]byte, error) {
	size, err := fsys.Stat(name)
	if err != nil {
		return nil, err
	}
	f, err := fsys.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, size)
	n, err := f.ReadAt(buf, 0)
	if int64(n) == size && (err == nil || err == io.EOF) {
		return buf, nil
	}
	if err == nil {
		err = io.ErrUnexpectedEOF
	}
	return nil, fmt.Errorf("vfs readfile %q: %w", name, err)
}

// WriteAtomic durably replaces name with data: the bytes are written to
// a sibling temp file, fsynced, renamed over name, and the parent
// directory is fsynced.  After WriteAtomic returns, a crash yields
// either the old contents or the new — never a torn mixture and never a
// lost rename.
func WriteAtomic(fsys FS, name string, data []byte) error {
	tmp := name + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	// Barrier 1: the temp file's contents must be on stable storage
	// before the rename publishes them, or the crash-recovered name
	// could point at a hollow file.
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fsys.Rename(tmp, name); err != nil {
		return err
	}
	// Barrier 2: the rename itself is a directory mutation and volatile
	// until the parent directory is synced.
	return fsys.SyncDir(filepath.Dir(name))
}
