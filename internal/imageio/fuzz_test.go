package imageio

import (
	"bytes"
	"testing"
)

// FuzzDecodePGM: arbitrary input must never panic, and any successfully
// decoded image must re-encode to an equivalent raster.
func FuzzDecodePGM(f *testing.F) {
	im, _ := New(3, 2)
	copy(im.Pix, []byte{1, 2, 3, 4, 5, 6})
	seed, _ := Bytes(im)
	f.Add(seed)
	f.Add([]byte("P5\n1 1\n255\nA"))
	f.Add([]byte("P6\n1 1\n255\nA"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodePGM(bytes.NewReader(data))
		if err != nil {
			return
		}
		out, err := Bytes(got)
		if err != nil {
			t.Fatalf("decoded image failed to encode: %v", err)
		}
		round, err := DecodePGM(bytes.NewReader(out))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if round.W != got.W || round.H != got.H || !bytes.Equal(round.Pix, got.Pix) {
			t.Fatal("re-encode round trip mismatch")
		}
	})
}
