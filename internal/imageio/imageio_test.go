package imageio

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	im, err := New(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	for y := 0; y < 3; y++ {
		for x := 0; x < 5; x++ {
			im.Set(x, y, byte(10*y+x))
		}
	}
	data, err := Bytes(im)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodePGM(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if got.W != 5 || got.H != 3 || !bytes.Equal(got.Pix, im.Pix) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if got.At(4, 2) != 24 {
		t.Fatalf("At = %d", got.At(4, 2))
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 4); err == nil {
		t.Fatal("zero width accepted")
	}
	if _, err := New(4, -1); err == nil {
		t.Fatal("negative height accepted")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := DecodePGM(bytes.NewReader([]byte("P6\n2 2\n255\n0000"))); err == nil {
		t.Fatal("P6 accepted")
	}
	if _, err := DecodePGM(bytes.NewReader([]byte("P5\n2 2\n255\n0"))); err == nil {
		t.Fatal("short raster accepted")
	}
	if _, err := DecodePGM(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestStats(t *testing.T) {
	im, _ := New(2, 2)
	copy(im.Pix, []byte{0, 10, 20, 30})
	min, max, mean := Stats(im)
	if min != 0 || max != 30 || mean != 15 {
		t.Fatalf("Stats = %d %d %v", min, max, mean)
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(w8, h8 uint8, seed byte) bool {
		w, h := int(w8%16)+1, int(h8%16)+1
		im, err := New(w, h)
		if err != nil {
			return false
		}
		for i := range im.Pix {
			im.Pix[i] = byte(i) ^ seed
		}
		data, err := Bytes(im)
		if err != nil {
			return false
		}
		got, err := DecodePGM(bytes.NewReader(data))
		if err != nil {
			return false
		}
		return got.W == w && got.H == h && bytes.Equal(got.Pix, im.Pix)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
