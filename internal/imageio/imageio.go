// Package imageio encodes and decodes the 2-D grayscale images the
// Volren renderer produces, in the binary PGM (P5) format the era's
// image viewers consumed.  It is the "image viewer" data-consumer path
// of the paper's simulation environment.
package imageio

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
)

// Image is an 8-bit grayscale image in row-major order.
type Image struct {
	W, H int
	Pix  []byte // len == W*H
}

// New returns a zeroed image.
func New(w, h int) (*Image, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("imageio: invalid dimensions %d×%d", w, h)
	}
	return &Image{W: w, H: h, Pix: make([]byte, w*h)}, nil
}

// At returns the pixel at (x, y).
func (im *Image) At(x, y int) byte { return im.Pix[y*im.W+x] }

// Set writes the pixel at (x, y).
func (im *Image) Set(x, y int, v byte) { im.Pix[y*im.W+x] = v }

// EncodePGM writes the image as binary PGM (P5).
func EncodePGM(w io.Writer, im *Image) error {
	if len(im.Pix) != im.W*im.H {
		return fmt.Errorf("imageio: pixel buffer is %d bytes for %d×%d", len(im.Pix), im.W, im.H)
	}
	if _, err := fmt.Fprintf(w, "P5\n%d %d\n255\n", im.W, im.H); err != nil {
		return fmt.Errorf("imageio: encode: %w", err)
	}
	if _, err := w.Write(im.Pix); err != nil {
		return fmt.Errorf("imageio: encode: %w", err)
	}
	return nil
}

// Bytes returns the PGM encoding of the image.
func Bytes(im *Image) ([]byte, error) {
	var buf bytes.Buffer
	if err := EncodePGM(&buf, im); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodePGM parses a binary PGM (P5) image.
func DecodePGM(r io.Reader) (*Image, error) {
	br := bufio.NewReader(r)
	var magic string
	var w, h, max int
	if _, err := fmt.Fscan(br, &magic, &w, &h, &max); err != nil {
		return nil, fmt.Errorf("imageio: decode header: %w", err)
	}
	if magic != "P5" {
		return nil, fmt.Errorf("imageio: not a P5 PGM (magic %q)", magic)
	}
	if w <= 0 || h <= 0 || max != 255 {
		return nil, fmt.Errorf("imageio: unsupported PGM %d×%d max=%d", w, h, max)
	}
	// Exactly one whitespace byte separates the header from the raster.
	if _, err := br.ReadByte(); err != nil {
		return nil, fmt.Errorf("imageio: decode: %w", err)
	}
	im := &Image{W: w, H: h, Pix: make([]byte, w*h)}
	if _, err := io.ReadFull(br, im.Pix); err != nil {
		return nil, fmt.Errorf("imageio: decode raster: %w", err)
	}
	return im, nil
}

// Stats summarizes an image for viewers and tests: min, max and mean
// intensity.
func Stats(im *Image) (min, max byte, mean float64) {
	if len(im.Pix) == 0 {
		return 0, 0, 0
	}
	min, max = im.Pix[0], im.Pix[0]
	var sum int64
	for _, v := range im.Pix {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
		sum += int64(v)
	}
	return min, max, float64(sum) / float64(len(im.Pix))
}
