// Package flaky wraps a storage backend with deterministic fault
// injection, for exercising the error paths of the run-time library and
// the user API: the paper's reliability argument ("often the remote
// large storage system … is shutdown for system failure or
// maintenance") deserves tests where failures happen mid-run, not only
// between runs.
//
// Faults are injected by operation count: the wrapper fails every Nth
// matching call with the configured error, deterministically, so tests
// reproduce exactly.  FailFor turns each fault into a burst of
// consecutive failures, modelling an outage with a duration rather than
// a single dropped call.
package flaky

import (
	"fmt"
	"sync/atomic"

	"repro/internal/storage"
	"repro/internal/vtime"
)

// Policy selects which calls fail.
type Policy struct {
	// FailEvery makes every Nth matching operation fail (1 = all).
	// Zero disables injection.
	FailEvery int64
	// FailFor widens each fault into a burst: once a fault fires, the
	// next FailFor-1 matching operations fail too, regardless of the
	// FailEvery count.  Zero or one means single-call faults.
	FailFor int64
	// Err is the injected error (storage.ErrDown if nil).
	Err error
	// Ops restricts injection to the named operations ("read", "write",
	// "open", "connect", "close", "seek"); empty means all of them.
	// "seek" fires on a read or write whose offset does not continue the
	// handle's previous transfer, i.e. where a real device would
	// reposition.
	Ops []string
}

func (p Policy) err() error {
	if p.Err != nil {
		return p.Err
	}
	return storage.ErrDown
}

func (p Policy) matches(op string) bool {
	if len(p.Ops) == 0 {
		return true
	}
	for _, o := range p.Ops {
		if o == op {
			return true
		}
	}
	return false
}

// Backend wraps an inner backend with fault injection.
type Backend struct {
	inner  storage.Backend
	policy atomic.Pointer[Policy]
	count  atomic.Int64
	burst  atomic.Int64
	hits   atomic.Int64
}

var _ storage.Backend = (*Backend)(nil)

// Wrap returns a fault-injecting view of inner.
func Wrap(inner storage.Backend, policy Policy) *Backend {
	b := &Backend{inner: inner}
	b.policy.Store(&policy)
	return b
}

// SetPolicy swaps the injection policy mid-run (e.g. to clear a fault
// and let a circuit breaker's probe succeed).  Any in-progress burst is
// cancelled.
func (b *Backend) SetPolicy(policy Policy) {
	b.policy.Store(&policy)
	b.burst.Store(0)
}

// Injected reports how many faults have fired.
func (b *Backend) Injected() int64 { return b.hits.Load() }

// trip returns the injected error when this call is selected.
func (b *Backend) trip(op string) error {
	pol := b.policy.Load()
	if pol.FailEvery <= 0 || !pol.matches(op) {
		return nil
	}
	// A live burst fails every matching call until it drains.
	for {
		left := b.burst.Load()
		if left <= 0 {
			break
		}
		if b.burst.CompareAndSwap(left, left-1) {
			b.hits.Add(1)
			return fmt.Errorf("flaky %q: injected %s fault (burst): %w", b.inner.Name(), op, pol.err())
		}
	}
	n := b.count.Add(1)
	if n%pol.FailEvery == 0 {
		b.hits.Add(1)
		if pol.FailFor > 1 {
			b.burst.Store(pol.FailFor - 1)
		}
		return fmt.Errorf("flaky %q: injected %s fault: %w", b.inner.Name(), op, pol.err())
	}
	return nil
}

// Name implements storage.Backend.
func (b *Backend) Name() string { return b.inner.Name() }

// Kind implements storage.Backend.
func (b *Backend) Kind() storage.Kind { return b.inner.Kind() }

// Capacity implements storage.Backend.
func (b *Backend) Capacity() (total, used int64) { return b.inner.Capacity() }

// SetDown forwards outage control when the inner backend supports it.
func (b *Backend) SetDown(down bool) {
	if o, ok := b.inner.(storage.Outage); ok {
		o.SetDown(down)
	}
}

// Down reports the inner backend's outage state.
func (b *Backend) Down() bool {
	if o, ok := b.inner.(storage.Outage); ok {
		return o.Down()
	}
	return false
}

// Connect implements storage.Backend.
func (b *Backend) Connect(p *vtime.Proc) (storage.Session, error) {
	if err := b.trip("connect"); err != nil {
		return nil, err
	}
	inner, err := b.inner.Connect(p)
	if err != nil {
		return nil, err
	}
	return &session{b: b, inner: inner}, nil
}

type session struct {
	b     *Backend
	inner storage.Session
}

// Open implements storage.Session.
func (s *session) Open(p *vtime.Proc, name string, mode storage.AMode) (storage.Handle, error) {
	if err := s.b.trip("open"); err != nil {
		return nil, err
	}
	h, err := s.inner.Open(p, name, mode)
	if err != nil {
		return nil, err
	}
	return &handle{b: s.b, inner: h}, nil
}

// Remove implements storage.Session.
func (s *session) Remove(p *vtime.Proc, name string) error { return s.inner.Remove(p, name) }

// Stat implements storage.Session.
func (s *session) Stat(p *vtime.Proc, name string) (storage.FileInfo, error) {
	return s.inner.Stat(p, name)
}

// List implements storage.Session.
func (s *session) List(p *vtime.Proc, prefix string) ([]storage.FileInfo, error) {
	return s.inner.List(p, prefix)
}

// Close implements storage.Session.
func (s *session) Close(p *vtime.Proc) error {
	if err := s.b.trip("close"); err != nil {
		return err
	}
	return s.inner.Close(p)
}

type handle struct {
	b     *Backend
	inner storage.Handle
	// pos is where the previous transfer ended; a transfer starting
	// elsewhere is a "seek" for injection purposes.
	pos atomic.Int64
}

// seek fires the "seek" fault when off breaks the sequential run.
func (h *handle) seek(off int64) error {
	if off == h.pos.Load() {
		return nil
	}
	return h.b.trip("seek")
}

// ReadAt implements storage.Handle.
func (h *handle) ReadAt(p *vtime.Proc, buf []byte, off int64) (int, error) {
	if err := h.seek(off); err != nil {
		return 0, err
	}
	if err := h.b.trip("read"); err != nil {
		return 0, err
	}
	n, err := h.inner.ReadAt(p, buf, off)
	if err == nil {
		h.pos.Store(off + int64(n))
	}
	return n, err
}

// WriteAt implements storage.Handle.
func (h *handle) WriteAt(p *vtime.Proc, buf []byte, off int64) (int, error) {
	if err := h.seek(off); err != nil {
		return 0, err
	}
	if err := h.b.trip("write"); err != nil {
		return 0, err
	}
	n, err := h.inner.WriteAt(p, buf, off)
	if err == nil {
		h.pos.Store(off + int64(n))
	}
	return n, err
}

// Size implements storage.Handle.
func (h *handle) Size() int64 { return h.inner.Size() }

// Path implements storage.Handle.
func (h *handle) Path() string { return h.inner.Path() }

// Close implements storage.Handle.
func (h *handle) Close(p *vtime.Proc) error {
	if err := h.b.trip("close"); err != nil {
		return err
	}
	return h.inner.Close(p)
}
