package flaky

import (
	"errors"
	"testing"

	"repro/internal/apps/astro3d"
	"repro/internal/core"
	"repro/internal/localdisk"
	"repro/internal/memfs"
	"repro/internal/metadb"
	"repro/internal/remotedisk"
	"repro/internal/replica"
	"repro/internal/storage"
	"repro/internal/vtime"
)

func inner(t *testing.T) storage.Backend {
	t.Helper()
	be, err := localdisk.New("l", memfs.New())
	if err != nil {
		t.Fatal(err)
	}
	return be
}

func TestEveryNthWriteFails(t *testing.T) {
	b := Wrap(inner(t), Policy{FailEvery: 3, Ops: []string{"write"}})
	p := vtime.NewVirtual().NewProc("p")
	sess, err := b.Connect(p)
	if err != nil {
		t.Fatal(err)
	}
	h, err := sess.Open(p, "f", storage.ModeCreate)
	if err != nil {
		t.Fatal(err)
	}
	failures := 0
	for i := 0; i < 9; i++ {
		if _, err := h.WriteAt(p, []byte{1}, int64(i)); err != nil {
			failures++
			if !errors.Is(err, storage.ErrDown) {
				t.Fatalf("injected err = %v", err)
			}
		}
	}
	if failures != 3 || b.Injected() != 3 {
		t.Fatalf("failures = %d, injected = %d, want 3", failures, b.Injected())
	}
}

func TestOpFilterAndCustomError(t *testing.T) {
	custom := errors.New("boom")
	b := Wrap(inner(t), Policy{FailEvery: 1, Err: custom, Ops: []string{"read"}})
	p := vtime.NewVirtual().NewProc("p")
	sess, err := b.Connect(p) // connect unaffected
	if err != nil {
		t.Fatal(err)
	}
	h, err := sess.Open(p, "f", storage.ModeCreate) // open unaffected
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.WriteAt(p, []byte{1}, 0); err != nil { // write unaffected
		t.Fatal(err)
	}
	if _, err := h.ReadAt(p, make([]byte, 1), 0); !errors.Is(err, custom) {
		t.Fatalf("read err = %v, want custom", err)
	}
}

func TestZeroPolicyIsTransparent(t *testing.T) {
	b := Wrap(inner(t), Policy{})
	p := vtime.NewVirtual().NewProc("p")
	sess, _ := b.Connect(p)
	h, err := sess.Open(p, "f", storage.ModeCreate)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := h.WriteAt(p, []byte{1}, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if b.Injected() != 0 {
		t.Fatalf("injected = %d", b.Injected())
	}
}

// TestRunSurfacesMidRunFault: a fault in the middle of an application
// run must surface as a clean error, not a hang or corruption.
func TestRunSurfacesMidRunFault(t *testing.T) {
	be := Wrap(inner(t), Policy{FailEvery: 10, Ops: []string{"write"}})
	sys, err := core.NewSystem(core.SystemConfig{
		Sim: vtime.NewVirtual(), Meta: metadb.New(), LocalDisk: be,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = astro3d.Run(sys, "r", astro3d.Params{
		Nx: 8, Ny: 8, Nz: 8, MaxIter: 12, AnalysisFreq: 3, Procs: 2,
		DefaultLocation: core.LocLocalDisk,
	})
	if err == nil {
		t.Fatal("mid-run fault swallowed")
	}
	if !errors.Is(err, storage.ErrDown) {
		t.Fatalf("fault surfaced as %v", err)
	}
}

// TestReplicaMasksFlakyMember: replication over a flaky member and a
// healthy one keeps reads flowing.
func TestReplicaMasksFlakyMember(t *testing.T) {
	healthy, err := remotedisk.New("stable", memfs.New())
	if err != nil {
		t.Fatal(err)
	}
	unstable := Wrap(inner(t), Policy{FailEvery: 1, Ops: []string{"read"}})
	mirror, err := replica.New("m", unstable, healthy)
	if err != nil {
		t.Fatal(err)
	}
	p := vtime.NewVirtual().NewProc("p")
	sess, err := mirror.Connect(p)
	if err != nil {
		t.Fatal(err)
	}
	h, err := sess.Open(p, "f", storage.ModeCreate)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.WriteAt(p, []byte("ok"), 0); err != nil {
		t.Fatal(err)
	}
	h.Close(p)
	r, err := sess.Open(p, "f", storage.ModeRead)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2)
	if _, err := r.ReadAt(p, buf, 0); err != nil {
		t.Fatalf("replica did not mask flaky reads: %v", err)
	}
	if string(buf) != "ok" {
		t.Fatalf("read %q", buf)
	}
	if unstable.Injected() == 0 {
		t.Fatal("flaky member never exercised")
	}
}

func TestPassthroughSurface(t *testing.T) {
	b := Wrap(inner(t), Policy{})
	if b.Kind() != storage.KindLocalDisk || b.Name() != "l" {
		t.Fatalf("identity = %v/%v", b.Kind(), b.Name())
	}
	if total, _ := b.Capacity(); total == 0 {
		t.Fatal("capacity not forwarded")
	}
	b.SetDown(true)
	if !b.Down() {
		t.Fatal("outage not forwarded")
	}
	b.SetDown(false)
	p := vtime.NewVirtual().NewProc("p")
	sess, err := b.Connect(p)
	if err != nil {
		t.Fatal(err)
	}
	h, _ := sess.Open(p, "d/f", storage.ModeCreate)
	h.WriteAt(p, []byte{1, 2}, 0)
	if h.Size() != 2 || h.Path() != "d/f" {
		t.Fatalf("handle surface = %d %q", h.Size(), h.Path())
	}
	if err := h.Close(p); err != nil {
		t.Fatal(err)
	}
	fi, err := sess.Stat(p, "d/f")
	if err != nil || fi.Size != 2 {
		t.Fatalf("Stat = %+v, %v", fi, err)
	}
	ls, err := sess.List(p, "d/")
	if err != nil || len(ls) != 1 {
		t.Fatalf("List = %v, %v", ls, err)
	}
	if err := sess.Remove(p, "d/f"); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(p); err != nil {
		t.Fatal(err)
	}
}

func TestConnectFault(t *testing.T) {
	b := Wrap(inner(t), Policy{FailEvery: 1, Ops: []string{"connect"}})
	p := vtime.NewVirtual().NewProc("p")
	if _, err := b.Connect(p); !errors.Is(err, storage.ErrDown) {
		t.Fatalf("connect fault = %v", err)
	}
}

func TestBurstFailsConsecutiveOps(t *testing.T) {
	// Every 5th write starts a burst of 3 consecutive failures.
	b := Wrap(inner(t), Policy{FailEvery: 5, FailFor: 3, Ops: []string{"write"}})
	p := vtime.NewVirtual().NewProc("p")
	sess, _ := b.Connect(p)
	h, err := sess.Open(p, "f", storage.ModeCreate)
	if err != nil {
		t.Fatal(err)
	}
	var outcomes []bool
	off := int64(0)
	for i := 0; i < 12; i++ {
		n, err := h.WriteAt(p, []byte{1}, off)
		outcomes = append(outcomes, err == nil)
		off += int64(n)
	}
	// Counted ops 1-4 pass, the 5th fires and starts a burst that burns
	// the next two calls without counting them; the count then resumes
	// at 6 and the next fault fires at 10 (the 12th call).
	want := []bool{true, true, true, true, false, false, false, true, true, true, true, false}
	for i := range want {
		if outcomes[i] != want[i] {
			t.Fatalf("op %d: ok = %v, outcomes = %v", i, outcomes[i], outcomes)
		}
	}
	if b.Injected() != 4 {
		t.Fatalf("injected = %d, want 4", b.Injected())
	}
}

func TestSeekFaults(t *testing.T) {
	b := Wrap(inner(t), Policy{FailEvery: 1, Ops: []string{"seek"}})
	p := vtime.NewVirtual().NewProc("p")
	sess, _ := b.Connect(p)
	h, err := sess.Open(p, "f", storage.ModeCreate)
	if err != nil {
		t.Fatal(err)
	}
	// Sequential writes never reposition, so they never trip.
	for i := int64(0); i < 4; i++ {
		if _, err := h.WriteAt(p, []byte{1}, i); err != nil {
			t.Fatalf("sequential write %d tripped seek: %v", i, err)
		}
	}
	// Jumping back repositions: the seek fault fires.
	if _, err := h.WriteAt(p, []byte{1}, 0); !errors.Is(err, storage.ErrDown) {
		t.Fatalf("non-sequential write err = %v, want seek fault", err)
	}
	// A fresh handle starts at position zero, so a scan from the start
	// is sequential; jumping back mid-scan repositions and trips.
	r, err := sess.Open(p, "f", storage.ModeRead)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadAt(p, make([]byte, 2), 0); err != nil {
		t.Fatalf("sequential read tripped seek: %v", err)
	}
	if _, err := r.ReadAt(p, make([]byte, 2), 2); err != nil {
		t.Fatalf("continuing read tripped seek: %v", err)
	}
	if _, err := r.ReadAt(p, make([]byte, 1), 0); !errors.Is(err, storage.ErrDown) {
		t.Fatalf("strided read err = %v, want seek fault", err)
	}
	if b.Injected() != 2 {
		t.Fatalf("injected = %d, want 2", b.Injected())
	}
}

func TestCloseFaults(t *testing.T) {
	b := Wrap(inner(t), Policy{FailEvery: 1, Ops: []string{"close"}})
	p := vtime.NewVirtual().NewProc("p")
	sess, err := b.Connect(p)
	if err != nil {
		t.Fatal(err)
	}
	h, err := sess.Open(p, "f", storage.ModeCreate)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Close(p); !errors.Is(err, storage.ErrDown) {
		t.Fatalf("handle close err = %v, want injected fault", err)
	}
	if err := sess.Close(p); !errors.Is(err, storage.ErrDown) {
		t.Fatalf("session close err = %v, want injected fault", err)
	}
}

func TestSetPolicyClearsFaultsAndBurst(t *testing.T) {
	b := Wrap(inner(t), Policy{FailEvery: 1, FailFor: 100, Ops: []string{"write"}})
	p := vtime.NewVirtual().NewProc("p")
	sess, _ := b.Connect(p)
	h, err := sess.Open(p, "f", storage.ModeCreate)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.WriteAt(p, []byte{1}, 0); err == nil {
		t.Fatal("fault not injected")
	}
	b.SetPolicy(Policy{})
	if _, err := h.WriteAt(p, []byte{1}, 0); err != nil {
		t.Fatalf("burst survived SetPolicy: %v", err)
	}
}
