package webui

import (
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/qos"
	"repro/internal/vtime"
)

// TestQoSMetrics: a handler with a scheduler attached exposes the
// msra_qos_* families on /metrics with real counter values — even
// without a trace.Metrics sink attached.
func TestQoSMetrics(t *testing.T) {
	sched, err := qos.New(qos.Config{
		Tenants:           map[string]int{"astro3d": 3, "viewer": 1},
		MaxInFlight:       1,
		TenantQueuedBytes: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sched.Close()
	sim := vtime.NewVirtual()
	p := sim.NewProc("p")
	for i := 0; i < 3; i++ {
		if err := sched.Do(p, qos.Request{Tenant: "astro3d", Op: "write", Bytes: 10}, func() error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	if err := sched.Do(p, qos.Request{Tenant: "viewer", Op: "read", Bytes: 10}, func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	// One shed request so the overload counter is non-zero: queue a
	// blocker on a paused scheduler, then blow the tenant budget.
	sched.Pause()
	unblock := make(chan error, 1)
	go func() {
		unblock <- sched.Do(p, qos.Request{Tenant: "viewer", Op: "write", Bytes: 60}, func() error { return nil })
	}()
	for sched.QueueDepth() == 0 {
		time.Sleep(20 * time.Microsecond)
	}
	if err := sched.Do(p, qos.Request{Tenant: "viewer", Op: "write", Bytes: 60}, func() error { return nil }); err == nil {
		t.Fatal("want overload")
	}
	sched.Resume()
	if err := <-unblock; err != nil {
		t.Fatal(err)
	}

	h, _ := tracedHandler(t)
	WithQoS(sched)(h)
	code, body := get(t, h, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	for _, want := range []string{
		`msra_qos_inflight 0`,
		`msra_qos_queue_depth{tenant="astro3d"} 0`,
		`msra_qos_granted_total{tenant="astro3d"} 3`,
		`msra_qos_granted_total{tenant="viewer"} 2`,
		`msra_qos_overload_total{tenant="viewer"} 1`,
		`msra_qos_tape_batches_total 0`,
		`msra_qos_tape_batch_abandoned_total 0`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if !strings.Contains(body, "msra_qos_wait_seconds_total") ||
		!strings.Contains(body, "msra_qos_service_seconds_total") {
		t.Error("/metrics missing time-accounting families")
	}
	// The trace-derived families still render alongside.
	if !strings.Contains(body, "msra_native_calls_total") {
		t.Error("trace metrics families gone from /metrics with qos attached")
	}
}

// TestQoSMetricsWithoutTraceMetrics: WithQoS alone is enough to turn
// /metrics on.
func TestQoSMetricsWithoutTraceMetrics(t *testing.T) {
	sched, err := qos.New(qos.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer sched.Close()
	h, _ := newHandlerMeta(t, WithQoS(sched))
	code, body := get(t, h, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if !strings.Contains(body, "msra_qos_inflight 0") {
		t.Errorf("qos families missing:\n%s", body)
	}
}
