package webui

import (
	"net/http"
	"strings"
	"testing"

	"repro/internal/workflow"
)

// TestWorkflowMetrics: WithWorkflow alone turns /metrics on and the
// msra_workflow_* families carry the composed schedule; attaching a
// plan adds the provisioning summary and the provisioned makespan.
func TestWorkflowMetrics(t *testing.T) {
	g := workflow.Pipeline(16, 12, 6, 4)
	h, _ := newHandlerMeta(t, WithWorkflow(g, 0.5))
	code, body := get(t, h, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	for _, want := range []string{
		"msra_workflow_overlap 0.5",
		`msra_workflow_stage_start_seconds{stage="astro3d"} 0`,
		`msra_workflow_stage_duration_seconds{stage="mse"}`,
		`msra_workflow_stage_critical{stage="astro3d"} 1`,
		"msra_workflow_makespan_seconds",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if strings.Contains(body, "msra_workflow_cache_budget_bytes") {
		t.Error("plan families present without a plan attached")
	}

	// With a provisioning plan the export gains the budget, prefetch
	// and placement families.
	h2, _ := newHandlerMeta(t)
	plan, err := g.Provision(h2.pdb, "localdisk", []workflow.Tier{
		{Class: "localdisk", Free: 1 << 31},
		{Class: "remotedisk", Free: 1 << 31},
	})
	if err != nil {
		t.Fatal(err)
	}
	h3, _ := newHandlerMeta(t, WithWorkflow(g, 0.5), WithWorkflowPlan(plan))
	code, body = get(t, h3, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	for _, want := range []string{
		"msra_workflow_cache_budget_bytes",
		`msra_workflow_stage_working_set_bytes{stage="mse"}`,
		"msra_workflow_prefetch_items 3",
		"msra_workflow_prefetch_copy_p95_seconds",
		"msra_workflow_placements 2",
		"msra_workflow_makespan_provisioned_seconds",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("plan metrics missing %q", want)
		}
	}
}
