// Package webui is the reproduction's analog of the paper's IJ-GUI:
// "a Java graphical environment that can help the user submit her job,
// carry out visualization, perform data analysis and so on … It is
// very easy for the user to change parameters directly in the Java
// window to get other prediction results" (figure 11).
//
// Handler serves an HTML form of the Astro3D parameter set and renders
// the per-dataset prediction table for any placement the user picks —
// the same interaction loop as the paper's prediction window, over
// net/http instead of Java.
package webui

import (
	"fmt"
	"html/template"
	"net/http"
	"strconv"
	"time"

	"repro/internal/apps/astro3d"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/predict"
	"repro/internal/sched"
)

// Handler renders the prediction window.
type Handler struct {
	pdb  *predict.DB
	tmpl *template.Template
}

// New returns a handler over a measured predictor database.
func New(pdb *predict.DB) *Handler {
	return &Handler{
		pdb:  pdb,
		tmpl: template.Must(template.New("page").Parse(pageTemplate)),
	}
}

// pageData feeds the template.
type pageData struct {
	N, Iter, Freq, Procs int
	TempLoc, DefaultLoc  string
	Locations            []string
	Rows                 []predict.DatasetPrediction
	Total                string
	Suggested            string
	Error                string
}

// locations offered by the form, in the paper's vocabulary.
var locations = []string{"LOCALDISK", "REMOTEDISK", "SDSCHPSS", "DISABLE"}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	data := pageData{
		N: 128, Iter: 120, Freq: 6, Procs: 8,
		TempLoc: "REMOTEDISK", DefaultLoc: "SDSCHPSS",
		Locations: locations,
	}
	q := r.URL.Query()
	getInt := func(key string, dst *int) {
		if v := q.Get(key); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n <= 0 {
				data.Error = fmt.Sprintf("bad %s: %q", key, v)
				return
			}
			*dst = n
		}
	}
	getInt("n", &data.N)
	getInt("iter", &data.Iter)
	getInt("freq", &data.Freq)
	getInt("procs", &data.Procs)
	if v := q.Get("temp"); v != "" {
		data.TempLoc = v
	}
	if v := q.Get("default"); v != "" {
		data.DefaultLoc = v
	}
	if data.Error == "" {
		if err := h.predictInto(&data); err != nil {
			data.Error = err.Error()
		}
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := h.tmpl.Execute(w, data); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (h *Handler) predictInto(data *pageData) error {
	tempLoc, err := core.ParseLocation(data.TempLoc)
	if err != nil {
		return err
	}
	defLoc, err := core.ParseLocation(data.DefaultLoc)
	if err != nil {
		return err
	}
	if data.N < data.Procs {
		return fmt.Errorf("problem size %d smaller than %d procs", data.N, data.Procs)
	}
	scale := experiments.Scale{N: data.N, MaxIter: data.Iter, Freq: data.Freq, Procs: data.Procs}
	locs := map[string]core.Location{"temp": tempLoc}
	rp, err := experiments.PredictAstro3D(h.pdb, scale, locs, defLoc)
	if err != nil {
		return err
	}
	data.Rows = rp.Datasets
	data.Total = fmt.Sprintf("%.2f", rp.Total.Seconds())
	if suggest, err := sched.SuggestMaxRunTime(rp.Total, 0, 0.15); err == nil {
		data.Suggested = suggest.Round(time.Second).String()
	}
	// Guard: the form's dataset names must stay in sync with astro3d.
	if len(rp.Datasets) != len(astro3d.AllNames()) {
		return fmt.Errorf("internal: %d rows for %d datasets", len(rp.Datasets), len(astro3d.AllNames()))
	}
	return nil
}

const pageTemplate = `<!DOCTYPE html>
<html><head><title>astro3d — I/O performance prediction</title>
<style>
body { font-family: sans-serif; margin: 2em; }
table { border-collapse: collapse; margin-top: 1em; }
td, th { border: 1px solid #999; padding: 2px 10px; text-align: right; }
th, td:first-child { text-align: left; }
.err { color: #b00; }
</style></head>
<body>
<h1>astro3d — I/O performance prediction</h1>
<form method="get" action="/">
  problem size <input name="n" value="{{.N}}" size="4">³
  iterations <input name="iter" value="{{.Iter}}" size="4">
  frequency <input name="freq" value="{{.Freq}}" size="3">
  procs <input name="procs" value="{{.Procs}}" size="3">
  temp → <select name="temp">{{range .Locations}}<option{{if eq . $.TempLoc}} selected{{end}}>{{.}}</option>{{end}}</select>
  others → <select name="default">{{range .Locations}}<option{{if eq . $.DefaultLoc}} selected{{end}}>{{.}}</option>{{end}}</select>
  <input type="submit" value="Predict">
</form>
{{if .Error}}<p class="err">{{.Error}}</p>{{end}}
{{if .Rows}}
<table>
<tr><th>NAME</th><th>EXPECTEDLOC</th><th>DUMPS</th><th>n(j)</th><th>UNIT (bytes)</th><th>VIRTUALTIME (s)</th></tr>
{{range .Rows}}
<tr><td>{{.Name}}</td><td>{{.Resource}}</td><td>{{.Dumps}}</td><td>{{.NativeCalls}}</td><td>{{.UnitBytes}}</td><td>{{printf "%.4f" .VirtualTime.Seconds}}</td></tr>
{{end}}
<tr><th>TOTAL</th><td></td><td></td><td></td><td></td><th>{{.Total}}</th></tr>
</table>
<p>suggested batch max run time (I/O only, +15%): {{.Suggested}}</p>
{{end}}
</body></html>`
