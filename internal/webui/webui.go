// Package webui is the reproduction's analog of the paper's IJ-GUI:
// "a Java graphical environment that can help the user submit her job,
// carry out visualization, perform data analysis and so on … It is
// very easy for the user to change parameters directly in the Java
// window to get other prediction results" (figure 11).
//
// Handler serves an HTML form of the Astro3D parameter set and renders
// the per-dataset prediction table for any placement the user picks —
// the same interaction loop as the paper's prediction window, over
// net/http instead of Java.
package webui

import (
	"fmt"
	"html/template"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/apps/astro3d"
	"repro/internal/calib"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/hsm"
	"repro/internal/predict"
	"repro/internal/qos"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/wal"
	"repro/internal/workflow"
)

// Handler renders the prediction window.
type Handler struct {
	pdb       *predict.DB
	tmpl      *template.Template
	metrics   *trace.Metrics
	calib     *calib.Engine
	qos       *qos.Scheduler
	walStats  func() (wal.Stats, bool)
	hsm       *hsm.Engine
	wfDAG     *workflow.DAG
	wfOverlap float64
	wfPlan    *workflow.Plan
}

// Option configures optional handler features.
type Option func(*Handler)

// WithMetrics attaches a live trace metrics aggregation: the handler
// gains a Prometheus-style text endpoint at /metrics and, combined
// with WithCalibration, measured-vs-predicted columns in the
// prediction table.
func WithMetrics(m *trace.Metrics) Option {
	return func(h *Handler) { h.metrics = m }
}

// WithCalibration attaches a calibration engine so the prediction
// table carries measured times, error percentages and drift flags, and
// /metrics exports per-resource residual ratios.
func WithCalibration(e *calib.Engine) Option {
	return func(h *Handler) { h.calib = e }
}

// WithQoS attaches a request scheduler: /metrics gains the msra_qos_*
// families — per-tenant queue depth, queued bytes, grant/overload
// counters, wall wait and virtual service totals, plus the global
// in-flight gauge and tape-batch counters.
func WithQoS(s *qos.Scheduler) Option {
	return func(h *Handler) { h.qos = s }
}

// WithWAL attaches a journal stats source (typically
// (*metadb.DB).JournalStats): /metrics gains the msra_wal_* families —
// append/fsync/rotation/compaction counters, replay cost, torn-tail
// bytes and the last checkpoint timestamp.  Sources reporting ok=false
// (no journal attached) emit nothing.
func WithWAL(stats func() (wal.Stats, bool)) Option {
	return func(h *Handler) { h.walStats = stats }
}

// WithHSM attaches a lifecycle engine: /metrics gains the msra_hsm_*
// families — dataset census by state, pool occupancy against capacity,
// migration/recall/GC/repack counters and the pool hit ratio inputs.
func WithHSM(e *hsm.Engine) Option {
	return func(h *Handler) { h.hsm = e }
}

// WithWorkflow attaches a stage DAG: /metrics gains the msra_workflow_*
// families — the composed schedule at the given overlap (per-stage
// start, duration and critical-path flag, plus the makespan).  The
// prediction is re-evaluated from the handler's performance database at
// every scrape, so calibration updates flow through.
func WithWorkflow(g *workflow.DAG, overlap float64) Option {
	return func(h *Handler) { h.wfDAG, h.wfOverlap = g, overlap }
}

// WithWorkflowPlan additionally attaches a provisioning plan: the
// msra_workflow_* export gains the provisioned makespan, the cache
// budget, per-stage working sets and the prefetch schedule summary.
func WithWorkflowPlan(plan *workflow.Plan) Option {
	return func(h *Handler) { h.wfPlan = plan }
}

// New returns a handler over a measured predictor database.
func New(pdb *predict.DB, opts ...Option) *Handler {
	h := &Handler{
		pdb:  pdb,
		tmpl: template.Must(template.New("page").Parse(pageTemplate)),
	}
	for _, opt := range opts {
		opt(h)
	}
	return h
}

// row is one prediction table line, optionally annotated with the
// measured side of the calibration join.
type row struct {
	predict.DatasetPrediction
	// Measured is VirtualTime rescaled by the resource's observed
	// measured/predicted ratio ("-" when the run gave no evidence).
	Measured string
	// ErrPct is the resource's signed prediction error percentage.
	ErrPct string
	// Drift marks residuals outside the calibration band.
	Drift bool
}

// pageData feeds the template.
type pageData struct {
	N, Iter, Freq, Procs int
	TempLoc, DefaultLoc  string
	Locations            []string
	Rows                 []row
	HaveMeasured         bool
	Total                string
	Suggested            string
	Error                string
}

// locations offered by the form, in the paper's vocabulary.
var locations = []string{"LOCALDISK", "REMOTEDISK", "SDSCHPSS", "DISABLE"}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/metrics" {
		h.serveMetrics(w, r)
		return
	}
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	data := pageData{
		N: 128, Iter: 120, Freq: 6, Procs: 8,
		TempLoc: "REMOTEDISK", DefaultLoc: "SDSCHPSS",
		Locations: locations,
	}
	q := r.URL.Query()
	// Validation problems accumulate so the user sees every bad
	// parameter at once, not just whichever was parsed last.
	var errs []string
	getInt := func(key string, dst *int) {
		if v := q.Get(key); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n <= 0 {
				errs = append(errs, fmt.Sprintf("bad %s: %q", key, v))
				return
			}
			*dst = n
		}
	}
	getInt("n", &data.N)
	getInt("iter", &data.Iter)
	getInt("freq", &data.Freq)
	getInt("procs", &data.Procs)
	if v := q.Get("temp"); v != "" {
		data.TempLoc = v
	}
	if v := q.Get("default"); v != "" {
		data.DefaultLoc = v
	}
	data.Error = strings.Join(errs, "; ")
	if data.Error == "" {
		if err := h.predictInto(&data); err != nil {
			data.Error = err.Error()
		}
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := h.tmpl.Execute(w, data); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (h *Handler) predictInto(data *pageData) error {
	tempLoc, err := core.ParseLocation(data.TempLoc)
	if err != nil {
		return err
	}
	defLoc, err := core.ParseLocation(data.DefaultLoc)
	if err != nil {
		return err
	}
	if data.N < data.Procs {
		return fmt.Errorf("problem size %d smaller than %d procs", data.N, data.Procs)
	}
	scale := experiments.Scale{N: data.N, MaxIter: data.Iter, Freq: data.Freq, Procs: data.Procs}
	locs := map[string]core.Location{"temp": tempLoc}
	rp, err := experiments.PredictAstro3D(h.pdb, scale, locs, defLoc)
	if err != nil {
		return err
	}
	residuals := h.residualsByResource("write")
	for _, d := range rp.Datasets {
		rw := row{DatasetPrediction: d, Measured: "-", ErrPct: "-"}
		if res, ok := residuals[d.Resource]; ok && d.VirtualTime > 0 {
			// The observed measured/predicted ratio for this resource
			// class rescales the row's prediction to its measured-rate
			// equivalent.
			rw.Measured = fmt.Sprintf("%.4f", d.VirtualTime.Seconds()*res.Ratio)
			rw.ErrPct = fmt.Sprintf("%+.1f%%", res.ErrPct())
			rw.Drift = res.Drift
			data.HaveMeasured = true
		}
		data.Rows = append(data.Rows, rw)
	}
	data.Total = fmt.Sprintf("%.2f", rp.Total.Seconds())
	if suggest, err := sched.SuggestMaxRunTime(rp.Total, 0, 0.15); err == nil {
		data.Suggested = suggest.Round(time.Second).String()
	}
	// Guard: the form's dataset names must stay in sync with astro3d.
	if len(rp.Datasets) != len(astro3d.AllNames()) {
		return fmt.Errorf("internal: %d rows for %d datasets", len(rp.Datasets), len(astro3d.AllNames()))
	}
	return nil
}

// residualsByResource joins the live metrics against the calibration
// engine and indexes the residuals by resource class for the given op.
// Empty when metrics or calibration are not attached.
func (h *Handler) residualsByResource(op string) map[string]calib.Residual {
	if h.metrics == nil || h.calib == nil {
		return nil
	}
	out := make(map[string]calib.Residual)
	for _, r := range h.calib.Residuals(h.metrics.Snapshot()) {
		if r.Op == op {
			out[r.Resource] = r
		}
	}
	return out
}

// serveMetrics renders the trace metrics (and calibration residuals
// and scheduler gauges, when attached) in the Prometheus text
// exposition format.
func (h *Handler) serveMetrics(w http.ResponseWriter, r *http.Request) {
	if h.metrics == nil && h.qos == nil && h.walStats == nil && h.hsm == nil && h.wfDAG == nil {
		http.Error(w, "metrics not enabled", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b strings.Builder
	if h.qos != nil {
		h.qosMetrics(&b)
	}
	if h.walStats != nil {
		h.walMetrics(&b)
	}
	if h.hsm != nil {
		h.hsmMetrics(&b)
	}
	if h.wfDAG != nil {
		h.workflowMetrics(&b)
	}
	if h.metrics == nil {
		fmt.Fprint(w, b.String())
		return
	}
	b.WriteString("# HELP msra_native_calls_total Native storage calls served, by backend and op.\n")
	b.WriteString("# TYPE msra_native_calls_total counter\n")
	snap := h.metrics.Snapshot()
	labels := func(s trace.OpStats) string {
		return fmt.Sprintf(`backend=%q,op=%q`, s.Backend, string(s.Op))
	}
	for _, s := range snap {
		fmt.Fprintf(&b, "msra_native_calls_total{%s} %d\n", labels(s), s.Calls)
	}
	b.WriteString("# HELP msra_native_bytes_total Bytes moved by native calls.\n")
	b.WriteString("# TYPE msra_native_bytes_total counter\n")
	for _, s := range snap {
		fmt.Fprintf(&b, "msra_native_bytes_total{%s} %d\n", labels(s), s.Bytes)
	}
	b.WriteString("# HELP msra_native_cost_seconds_total Summed simulated cost of native calls.\n")
	b.WriteString("# TYPE msra_native_cost_seconds_total counter\n")
	for _, s := range snap {
		fmt.Fprintf(&b, "msra_native_cost_seconds_total{%s} %g\n", labels(s), s.Cost.Seconds())
	}
	b.WriteString("# HELP msra_native_cost_seconds Approximate per-call cost quantiles.\n")
	b.WriteString("# TYPE msra_native_cost_seconds summary\n")
	for _, s := range snap {
		fmt.Fprintf(&b, "msra_native_cost_seconds{%s,quantile=\"0.5\"} %g\n", labels(s), s.CostP50.Seconds())
		fmt.Fprintf(&b, "msra_native_cost_seconds{%s,quantile=\"0.95\"} %g\n", labels(s), s.CostP95.Seconds())
		fmt.Fprintf(&b, "msra_native_cost_seconds_max{%s} %g\n", labels(s), s.CostMax.Seconds())
	}
	if h.calib != nil {
		residuals := h.calib.Residuals(snap)
		b.WriteString("# HELP msra_calib_ratio Measured/predicted cost ratio per resource class and op.\n")
		b.WriteString("# TYPE msra_calib_ratio gauge\n")
		for _, res := range residuals {
			fmt.Fprintf(&b, "msra_calib_ratio{resource=%q,op=%q} %g\n", res.Resource, res.Op, res.Ratio)
		}
		b.WriteString("# HELP msra_calib_drift Whether the residual left the calibration band (1 = drifted).\n")
		b.WriteString("# TYPE msra_calib_drift gauge\n")
		for _, res := range residuals {
			v := 0
			if res.Drift {
				v = 1
			}
			fmt.Fprintf(&b, "msra_calib_drift{resource=%q,op=%q} %d\n", res.Resource, res.Op, v)
		}
	}
	fmt.Fprint(w, b.String())
}

// qosMetrics renders the scheduler snapshot as msra_qos_* families.
func (h *Handler) qosMetrics(b *strings.Builder) {
	st := h.qos.Stats()
	b.WriteString("# HELP msra_qos_inflight Requests currently executing under the scheduler.\n")
	b.WriteString("# TYPE msra_qos_inflight gauge\n")
	fmt.Fprintf(b, "msra_qos_inflight %d\n", st.InFlight)
	b.WriteString("# HELP msra_qos_queue_depth Queued (not yet granted) requests per tenant.\n")
	b.WriteString("# TYPE msra_qos_queue_depth gauge\n")
	for _, t := range st.Tenants {
		fmt.Fprintf(b, "msra_qos_queue_depth{tenant=%q} %d\n", t.Tenant, t.Depth)
	}
	b.WriteString("# HELP msra_qos_queued_bytes Queued payload bytes per tenant.\n")
	b.WriteString("# TYPE msra_qos_queued_bytes gauge\n")
	for _, t := range st.Tenants {
		fmt.Fprintf(b, "msra_qos_queued_bytes{tenant=%q} %d\n", t.Tenant, t.QueuedBytes)
	}
	b.WriteString("# HELP msra_qos_granted_total Requests granted per tenant.\n")
	b.WriteString("# TYPE msra_qos_granted_total counter\n")
	for _, t := range st.Tenants {
		fmt.Fprintf(b, "msra_qos_granted_total{tenant=%q} %d\n", t.Tenant, t.Granted)
	}
	b.WriteString("# HELP msra_qos_overload_total Requests shed by admission control per tenant.\n")
	b.WriteString("# TYPE msra_qos_overload_total counter\n")
	for _, t := range st.Tenants {
		fmt.Fprintf(b, "msra_qos_overload_total{tenant=%q} %d\n", t.Tenant, t.Overloads)
	}
	b.WriteString("# HELP msra_qos_wait_seconds_total Wall time requests spent queued, per tenant.\n")
	b.WriteString("# TYPE msra_qos_wait_seconds_total counter\n")
	for _, t := range st.Tenants {
		fmt.Fprintf(b, "msra_qos_wait_seconds_total{tenant=%q} %g\n", t.Tenant, t.Wait.Seconds())
	}
	b.WriteString("# HELP msra_qos_service_seconds_total Virtual service time of finished requests, per tenant.\n")
	b.WriteString("# TYPE msra_qos_service_seconds_total counter\n")
	for _, t := range st.Tenants {
		fmt.Fprintf(b, "msra_qos_service_seconds_total{tenant=%q} %g\n", t.Tenant, t.Service.Seconds())
	}
	b.WriteString("# HELP msra_qos_tape_batches_total Cartridge batches formed by the tape lane.\n")
	b.WriteString("# TYPE msra_qos_tape_batches_total counter\n")
	fmt.Fprintf(b, "msra_qos_tape_batches_total %d\n", st.Batches)
	b.WriteString("# HELP msra_qos_tape_batched_total Requests served through a cartridge batch.\n")
	b.WriteString("# TYPE msra_qos_tape_batched_total counter\n")
	fmt.Fprintf(b, "msra_qos_tape_batched_total %d\n", st.Batched)
	b.WriteString("# HELP msra_qos_tape_batch_abandoned_total Batch members requeued by a layout generation change.\n")
	b.WriteString("# TYPE msra_qos_tape_batch_abandoned_total counter\n")
	fmt.Fprintf(b, "msra_qos_tape_batch_abandoned_total %d\n", st.BatchAbandoned)
}

// hsmMetrics renders the lifecycle engine snapshot as msra_hsm_*
// families.
func (h *Handler) hsmMetrics(b *strings.Builder) {
	st := h.hsm.Stats()
	b.WriteString("# HELP msra_hsm_datasets Tracked datasets by lifecycle state.\n")
	b.WriteString("# TYPE msra_hsm_datasets gauge\n")
	for _, s := range []struct {
		state string
		n     int
	}{
		{hsm.StateResident, st.Resident},
		{hsm.StateDual, st.Dual},
		{hsm.StateMigrated, st.Migrated},
	} {
		fmt.Fprintf(b, "msra_hsm_datasets{state=%q} %d\n", s.state, s.n)
	}
	b.WriteString("# HELP msra_hsm_pool_occupancy_bytes Disk-pool bytes held by resident copies and the recall cache.\n")
	b.WriteString("# TYPE msra_hsm_pool_occupancy_bytes gauge\n")
	fmt.Fprintf(b, "msra_hsm_pool_occupancy_bytes %d\n", st.PoolUsed)
	b.WriteString("# HELP msra_hsm_pool_capacity_bytes Disk-pool capacity the watermarks apply to.\n")
	b.WriteString("# TYPE msra_hsm_pool_capacity_bytes gauge\n")
	fmt.Fprintf(b, "msra_hsm_pool_capacity_bytes %d\n", st.PoolCapacity)
	b.WriteString("# HELP msra_hsm_migrations_total Datasets migrated disk to tape.\n")
	b.WriteString("# TYPE msra_hsm_migrations_total counter\n")
	fmt.Fprintf(b, "msra_hsm_migrations_total %d\n", st.Migrations)
	b.WriteString("# HELP msra_hsm_migrated_bytes_total Bytes written to tape by migration.\n")
	b.WriteString("# TYPE msra_hsm_migrated_bytes_total counter\n")
	fmt.Fprintf(b, "msra_hsm_migrated_bytes_total %d\n", st.MigratedBytes)
	b.WriteString("# HELP msra_hsm_migrate_failures_total Migration attempts rolled back to resident.\n")
	b.WriteString("# TYPE msra_hsm_migrate_failures_total counter\n")
	fmt.Fprintf(b, "msra_hsm_migrate_failures_total %d\n", st.MigrateFailures)
	b.WriteString("# HELP msra_hsm_requeued_total Migration batch members requeued by a cartridge layout change.\n")
	b.WriteString("# TYPE msra_hsm_requeued_total counter\n")
	fmt.Fprintf(b, "msra_hsm_requeued_total %d\n", st.Requeued)
	b.WriteString("# HELP msra_hsm_recalls_total Tape recalls served through the staging engine.\n")
	b.WriteString("# TYPE msra_hsm_recalls_total counter\n")
	fmt.Fprintf(b, "msra_hsm_recalls_total %d\n", st.Recalls)
	b.WriteString("# HELP msra_hsm_recalled_bytes_total Bytes recalled from tape.\n")
	b.WriteString("# TYPE msra_hsm_recalled_bytes_total counter\n")
	fmt.Fprintf(b, "msra_hsm_recalled_bytes_total %d\n", st.RecalledBytes)
	b.WriteString("# HELP msra_hsm_recall_p95_seconds Rolling p95 of recall latency.\n")
	b.WriteString("# TYPE msra_hsm_recall_p95_seconds gauge\n")
	fmt.Fprintf(b, "msra_hsm_recall_p95_seconds %g\n", st.RecallP95.Seconds())
	b.WriteString("# HELP msra_hsm_gc_runs_total Watermark GC passes.\n")
	b.WriteString("# TYPE msra_hsm_gc_runs_total counter\n")
	fmt.Fprintf(b, "msra_hsm_gc_runs_total %d\n", st.GCRuns)
	b.WriteString("# HELP msra_hsm_gc_purged_total Disk copies purged by GC (tape copy retained).\n")
	b.WriteString("# TYPE msra_hsm_gc_purged_total counter\n")
	fmt.Fprintf(b, "msra_hsm_gc_purged_total %d\n", st.GCPurged)
	b.WriteString("# HELP msra_hsm_gc_bytes_total Disk bytes reclaimed by GC.\n")
	b.WriteString("# TYPE msra_hsm_gc_bytes_total counter\n")
	fmt.Fprintf(b, "msra_hsm_gc_bytes_total %d\n", st.GCBytes)
	b.WriteString("# HELP msra_hsm_gc_stalls_total GC passes that could not reach the low watermark (all pinned or migration failing).\n")
	b.WriteString("# TYPE msra_hsm_gc_stalls_total counter\n")
	fmt.Fprintf(b, "msra_hsm_gc_stalls_total %d\n", st.GCStalls)
	b.WriteString("# HELP msra_hsm_repacks_total Cartridge repacks (tape.Reclaim) triggered by the waste policy.\n")
	b.WriteString("# TYPE msra_hsm_repacks_total counter\n")
	fmt.Fprintf(b, "msra_hsm_repacks_total %d\n", st.Repacks)
	b.WriteString("# HELP msra_hsm_repack_bytes_total Dead cartridge bytes reclaimed by repacks.\n")
	b.WriteString("# TYPE msra_hsm_repack_bytes_total counter\n")
	fmt.Fprintf(b, "msra_hsm_repack_bytes_total %d\n", st.RepackBytes)
	b.WriteString("# HELP msra_hsm_reads_total Engine reads, by pool hit or tape miss.\n")
	b.WriteString("# TYPE msra_hsm_reads_total counter\n")
	fmt.Fprintf(b, "msra_hsm_reads_total{result=\"hit\"} %d\n", st.Hits)
	fmt.Fprintf(b, "msra_hsm_reads_total{result=\"miss\"} %d\n", st.Misses)
	b.WriteString("# HELP msra_hsm_mounts_total Robot mounts on the engine's tape library.\n")
	b.WriteString("# TYPE msra_hsm_mounts_total counter\n")
	fmt.Fprintf(b, "msra_hsm_mounts_total %d\n", st.Mounts)
}

// workflowMetrics renders the attached DAG's composed schedule (and,
// with a plan, its provisioning summary) as msra_workflow_* families.
func (h *Handler) workflowMetrics(b *strings.Builder) {
	pred, err := h.wfDAG.PredictMakespan(h.pdb, h.wfOverlap)
	if err != nil {
		fmt.Fprintf(b, "# msra_workflow_* unavailable: %v\n", err)
		return
	}
	b.WriteString("# HELP msra_workflow_overlap Producer/consumer overlap the schedule is composed at.\n")
	b.WriteString("# TYPE msra_workflow_overlap gauge\n")
	fmt.Fprintf(b, "msra_workflow_overlap %g\n", h.wfOverlap)
	b.WriteString("# HELP msra_workflow_stage_start_seconds Predicted stage start within the composed schedule.\n")
	b.WriteString("# TYPE msra_workflow_stage_start_seconds gauge\n")
	for _, s := range pred.Stages {
		fmt.Fprintf(b, "msra_workflow_stage_start_seconds{stage=%q} %g\n", s.Name, s.Start.Seconds())
	}
	b.WriteString("# HELP msra_workflow_stage_duration_seconds Predicted stage I/O duration (eq. 2).\n")
	b.WriteString("# TYPE msra_workflow_stage_duration_seconds gauge\n")
	for _, s := range pred.Stages {
		fmt.Fprintf(b, "msra_workflow_stage_duration_seconds{stage=%q} %g\n", s.Name, s.Duration.Seconds())
	}
	b.WriteString("# HELP msra_workflow_stage_critical Whether the stage lies on the predicted critical path.\n")
	b.WriteString("# TYPE msra_workflow_stage_critical gauge\n")
	for _, s := range pred.Stages {
		crit := 0
		if s.Critical {
			crit = 1
		}
		fmt.Fprintf(b, "msra_workflow_stage_critical{stage=%q} %d\n", s.Name, crit)
	}
	b.WriteString("# HELP msra_workflow_makespan_seconds Predicted critical-path makespan.\n")
	b.WriteString("# TYPE msra_workflow_makespan_seconds gauge\n")
	fmt.Fprintf(b, "msra_workflow_makespan_seconds %g\n", pred.Makespan.Seconds())
	if h.wfPlan == nil {
		return
	}
	plan := h.wfPlan
	b.WriteString("# HELP msra_workflow_cache_budget_bytes Stage-cache byte budget the plan provisions.\n")
	b.WriteString("# TYPE msra_workflow_cache_budget_bytes gauge\n")
	fmt.Fprintf(b, "msra_workflow_cache_budget_bytes %d\n", plan.CacheBudget)
	b.WriteString("# HELP msra_workflow_stage_working_set_bytes Predicted per-stage staged working set.\n")
	b.WriteString("# TYPE msra_workflow_stage_working_set_bytes gauge\n")
	for _, sb := range plan.Budgets {
		fmt.Fprintf(b, "msra_workflow_stage_working_set_bytes{stage=%q} %d\n", sb.Stage, sb.WorkingSet)
	}
	b.WriteString("# HELP msra_workflow_prefetch_items DAG-edge prefetch instances the plan schedules.\n")
	b.WriteString("# TYPE msra_workflow_prefetch_items gauge\n")
	fmt.Fprintf(b, "msra_workflow_prefetch_items %d\n", len(plan.Prefetch))
	b.WriteString("# HELP msra_workflow_prefetch_copy_p95_seconds 95th-percentile predicted per-instance stage-in time.\n")
	b.WriteString("# TYPE msra_workflow_prefetch_copy_p95_seconds gauge\n")
	fmt.Fprintf(b, "msra_workflow_prefetch_copy_p95_seconds %g\n", plan.PrefetchP95.Seconds())
	b.WriteString("# HELP msra_workflow_placements Stage-private intermediates the plan relocates.\n")
	b.WriteString("# TYPE msra_workflow_placements gauge\n")
	fmt.Fprintf(b, "msra_workflow_placements %d\n", len(plan.Intermediates))
	if prov, err := h.wfDAG.PredictMakespanProvisioned(h.pdb, plan, h.wfOverlap); err == nil {
		b.WriteString("# HELP msra_workflow_makespan_provisioned_seconds Predicted makespan under the provisioning plan.\n")
		b.WriteString("# TYPE msra_workflow_makespan_provisioned_seconds gauge\n")
		fmt.Fprintf(b, "msra_workflow_makespan_provisioned_seconds %g\n", prov.Makespan.Seconds())
	}
}

// walMetrics renders the journal stats as msra_wal_* families.
func (h *Handler) walMetrics(b *strings.Builder) {
	st, ok := h.walStats()
	if !ok {
		return
	}
	b.WriteString("# HELP msra_wal_appends_total Journal records appended.\n")
	b.WriteString("# TYPE msra_wal_appends_total counter\n")
	fmt.Fprintf(b, "msra_wal_appends_total %d\n", st.Appends)
	b.WriteString("# HELP msra_wal_append_bytes_total Journal frame bytes appended.\n")
	b.WriteString("# TYPE msra_wal_append_bytes_total counter\n")
	fmt.Fprintf(b, "msra_wal_append_bytes_total %d\n", st.AppendBytes)
	b.WriteString("# HELP msra_wal_fsyncs_total Fsync barriers issued on journal segments.\n")
	b.WriteString("# TYPE msra_wal_fsyncs_total counter\n")
	fmt.Fprintf(b, "msra_wal_fsyncs_total %d\n", st.Syncs)
	b.WriteString("# HELP msra_wal_rotations_total Segment rotations.\n")
	b.WriteString("# TYPE msra_wal_rotations_total counter\n")
	fmt.Fprintf(b, "msra_wal_rotations_total %d\n", st.Rotations)
	b.WriteString("# HELP msra_wal_compactions_total Snapshot+truncate compactions.\n")
	b.WriteString("# TYPE msra_wal_compactions_total counter\n")
	fmt.Fprintf(b, "msra_wal_compactions_total %d\n", st.Compactions)
	b.WriteString("# HELP msra_wal_segments Live journal segment files.\n")
	b.WriteString("# TYPE msra_wal_segments gauge\n")
	fmt.Fprintf(b, "msra_wal_segments %d\n", st.Segments)
	b.WriteString("# HELP msra_wal_replay_records Records replayed when the journal was opened.\n")
	b.WriteString("# TYPE msra_wal_replay_records gauge\n")
	fmt.Fprintf(b, "msra_wal_replay_records %d\n", st.ReplayRecords)
	b.WriteString("# HELP msra_wal_replay_seconds Wall time recovery spent replaying the journal.\n")
	b.WriteString("# TYPE msra_wal_replay_seconds gauge\n")
	fmt.Fprintf(b, "msra_wal_replay_seconds %g\n", st.ReplayDuration.Seconds())
	b.WriteString("# HELP msra_wal_torn_tail_bytes Bytes dropped from the final segment's torn tail at recovery.\n")
	b.WriteString("# TYPE msra_wal_torn_tail_bytes gauge\n")
	fmt.Fprintf(b, "msra_wal_torn_tail_bytes %d\n", st.TornTailBytes)
	b.WriteString("# HELP msra_wal_last_checkpoint_timestamp_seconds Unix time of the last checkpoint (0 = none this process).\n")
	b.WriteString("# TYPE msra_wal_last_checkpoint_timestamp_seconds gauge\n")
	if st.LastCheckpoint.IsZero() {
		b.WriteString("msra_wal_last_checkpoint_timestamp_seconds 0\n")
	} else {
		fmt.Fprintf(b, "msra_wal_last_checkpoint_timestamp_seconds %d\n", st.LastCheckpoint.Unix())
	}
}

const pageTemplate = `<!DOCTYPE html>
<html><head><title>astro3d — I/O performance prediction</title>
<style>
body { font-family: sans-serif; margin: 2em; }
table { border-collapse: collapse; margin-top: 1em; }
td, th { border: 1px solid #999; padding: 2px 10px; text-align: right; }
th, td:first-child { text-align: left; }
.err { color: #b00; }
</style></head>
<body>
<h1>astro3d — I/O performance prediction</h1>
<form method="get" action="/">
  problem size <input name="n" value="{{.N}}" size="4">³
  iterations <input name="iter" value="{{.Iter}}" size="4">
  frequency <input name="freq" value="{{.Freq}}" size="3">
  procs <input name="procs" value="{{.Procs}}" size="3">
  temp → <select name="temp">{{range .Locations}}<option{{if eq . $.TempLoc}} selected{{end}}>{{.}}</option>{{end}}</select>
  others → <select name="default">{{range .Locations}}<option{{if eq . $.DefaultLoc}} selected{{end}}>{{.}}</option>{{end}}</select>
  <input type="submit" value="Predict">
</form>
{{if .Error}}<p class="err">{{.Error}}</p>{{end}}
{{if .Rows}}
<table>
<tr><th>NAME</th><th>EXPECTEDLOC</th><th>DUMPS</th><th>n(j)</th><th>UNIT (bytes)</th><th>VIRTUALTIME (s)</th>{{if .HaveMeasured}}<th>MEASURED (s)</th><th>ERR%</th>{{end}}</tr>
{{range .Rows}}
<tr><td>{{.Name}}</td><td>{{.Resource}}</td><td>{{.Dumps}}</td><td>{{.NativeCalls}}</td><td>{{.UnitBytes}}</td><td>{{printf "%.4f" .VirtualTime.Seconds}}</td>{{if $.HaveMeasured}}<td>{{.Measured}}</td><td{{if .Drift}} class="err"{{end}}>{{.ErrPct}}{{if .Drift}} (drift){{end}}</td>{{end}}</tr>
{{end}}
<tr><th>TOTAL</th><td></td><td></td><td></td><td></td><th>{{.Total}}</th>{{if .HaveMeasured}}<td></td><td></td>{{end}}</tr>
</table>
<p>suggested batch max run time (I/O only, +15%): {{.Suggested}}</p>
{{end}}
</body></html>`
