package webui

import (
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/faultfs"
	"repro/internal/metadb"
	"repro/internal/wal"
)

// TestWALMetrics: WithWAL alone turns /metrics on and exports the
// msra_wal_* families with live journal counters.
func TestWALMetrics(t *testing.T) {
	fsys := faultfs.New()
	meta, err := metadb.OpenJournal(wal.Options{FS: fsys, Dir: "journal"})
	if err != nil {
		t.Fatal(err)
	}
	defer meta.CloseJournal()
	if err := meta.PutRun(nil, metadb.Run{ID: "r1", App: "a", User: "u", Iterations: 1, Procs: 1}); err != nil {
		t.Fatal(err)
	}
	if err := meta.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	h, _ := newHandlerMeta(t, WithWAL(meta.JournalStats))
	code, body := get(t, h, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	for _, want := range []string{
		"msra_wal_appends_total 1",
		"msra_wal_fsyncs_total",
		"msra_wal_compactions_total 1",
		"msra_wal_segments 1",
		"msra_wal_replay_records 0",
		"msra_wal_torn_tail_bytes 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
	// The checkpoint timestamp is a real recent Unix time.
	st, ok := meta.JournalStats()
	if !ok || time.Since(st.LastCheckpoint) > time.Minute {
		t.Fatalf("checkpoint time not recorded: %+v ok=%t", st, ok)
	}
	if !strings.Contains(body, "msra_wal_last_checkpoint_timestamp_seconds") {
		t.Error("/metrics missing checkpoint timestamp family")
	}
}

// TestWALMetricsAbsentWithoutOption: a journal-less handler neither
// serves wal families nor turns /metrics on by itself.
func TestWALMetricsAbsentWithoutOption(t *testing.T) {
	code, _ := get(t, newHandler(t), "/metrics")
	if code != http.StatusNotFound {
		t.Fatalf("/metrics without any source: status = %d, want 404", code)
	}
}

// TestWALMetricsNotJournaled: WithWAL on a non-journaled DB reports
// cleanly (stats func returns ok=false) without emitting families.
func TestWALMetricsNotJournaled(t *testing.T) {
	meta := metadb.New()
	h, _ := newHandlerMeta(t, WithWAL(meta.JournalStats))
	code, body := get(t, h, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	if strings.Contains(body, "msra_wal_") {
		t.Errorf("wal families emitted for a non-journaled DB:\n%s", body)
	}
}
