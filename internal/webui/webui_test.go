package webui

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/localdisk"
	"repro/internal/memfs"
	"repro/internal/metadb"
	"repro/internal/model"
	"repro/internal/predict"
	"repro/internal/ptool"
	"repro/internal/remotedisk"
	"repro/internal/tape"
	"repro/internal/vtime"
)

func newHandler(t *testing.T) *Handler {
	t.Helper()
	meta := metadb.New()
	local, err := localdisk.New("l", memfs.New())
	if err != nil {
		t.Fatal(err)
	}
	rdisk, err := remotedisk.New("r", memfs.New())
	if err != nil {
		t.Fatal(err)
	}
	rtape, err := tape.New(tape.Config{Name: "t", Params: model.RemoteTape2000(), Store: memfs.New()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ptool.MeasureAll(vtime.NewVirtual(), meta, ptool.Config{Repeats: 1}, local, rdisk, rtape); err != nil {
		t.Fatal(err)
	}
	return New(predict.NewDB(meta))
}

func get(t *testing.T, h http.Handler, url string) (int, string) {
	t.Helper()
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Get(srv.URL + url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestDefaultPage(t *testing.T) {
	code, body := get(t, newHandler(t), "/")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	for _, want := range []string{"vr_logrho", "restart_uz", "TOTAL", "VIRTUALTIME"} {
		if !strings.Contains(body, want) {
			t.Fatalf("page missing %q", want)
		}
	}
	// The figure 11 default: temp on remote disk, rest on tape; total
	// ≈40789 s must appear.
	if !strings.Contains(body, "40788.99") && !strings.Contains(body, "40789.00") {
		t.Fatalf("expected full-scale total in page")
	}
}

func TestParameterChanges(t *testing.T) {
	_, body := get(t, newHandler(t), "/?n=32&iter=24&freq=6&procs=8&temp=LOCALDISK&default=DISABLE")
	if !strings.Contains(body, "localdisk") {
		t.Fatal("temp location not applied")
	}
	// Every other dataset disabled renders "-" resources.
	if strings.Contains(body, "remotetape") {
		t.Fatal("DISABLE default not applied")
	}
}

func TestBadInput(t *testing.T) {
	code, body := get(t, newHandler(t), "/?n=potato")
	if code != http.StatusOK || !strings.Contains(body, "bad n") {
		t.Fatalf("bad input page: %d %q", code, body[:min(len(body), 200)])
	}
	_, body = get(t, newHandler(t), "/?temp=FLOPPY")
	if !strings.Contains(body, "unknown location") {
		t.Fatal("bad hint not reported")
	}
	_, body = get(t, newHandler(t), "/?n=4&procs=8")
	if !strings.Contains(body, "smaller than") {
		t.Fatal("n < procs not reported")
	}
}

func TestNotFound(t *testing.T) {
	code, _ := get(t, newHandler(t), "/elsewhere")
	if code != http.StatusNotFound {
		t.Fatalf("status = %d", code)
	}
}
