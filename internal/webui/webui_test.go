package webui

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/calib"
	"repro/internal/localdisk"
	"repro/internal/memfs"
	"repro/internal/metadb"
	"repro/internal/model"
	"repro/internal/predict"
	"repro/internal/ptool"
	"repro/internal/remotedisk"
	"repro/internal/tape"
	"repro/internal/trace"
	"repro/internal/vtime"
)

func newHandlerMeta(t *testing.T, opts ...Option) (*Handler, *metadb.DB) {
	t.Helper()
	meta := metadb.New()
	local, err := localdisk.New("l", memfs.New())
	if err != nil {
		t.Fatal(err)
	}
	rdisk, err := remotedisk.New("r", memfs.New())
	if err != nil {
		t.Fatal(err)
	}
	rtape, err := tape.New(tape.Config{Name: "t", Params: model.RemoteTape2000(), Store: memfs.New()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ptool.MeasureAll(vtime.NewVirtual(), meta, ptool.Config{Repeats: 1}, local, rdisk, rtape); err != nil {
		t.Fatal(err)
	}
	return New(predict.NewDB(meta), opts...), meta
}

func newHandler(t *testing.T) *Handler {
	t.Helper()
	h, _ := newHandlerMeta(t)
	return h
}

func get(t *testing.T, h http.Handler, url string) (int, string) {
	t.Helper()
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Get(srv.URL + url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestDefaultPage(t *testing.T) {
	code, body := get(t, newHandler(t), "/")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	for _, want := range []string{"vr_logrho", "restart_uz", "TOTAL", "VIRTUALTIME"} {
		if !strings.Contains(body, want) {
			t.Fatalf("page missing %q", want)
		}
	}
	// The figure 11 default: temp on remote disk, rest on tape; total
	// ≈40789 s must appear.
	if !strings.Contains(body, "40788.99") && !strings.Contains(body, "40789.00") {
		t.Fatalf("expected full-scale total in page")
	}
}

func TestParameterChanges(t *testing.T) {
	_, body := get(t, newHandler(t), "/?n=32&iter=24&freq=6&procs=8&temp=LOCALDISK&default=DISABLE")
	if !strings.Contains(body, "localdisk") {
		t.Fatal("temp location not applied")
	}
	// Every other dataset disabled renders "-" resources.
	if strings.Contains(body, "remotetape") {
		t.Fatal("DISABLE default not applied")
	}
}

func TestBadInput(t *testing.T) {
	code, body := get(t, newHandler(t), "/?n=potato")
	if code != http.StatusOK || !strings.Contains(body, "bad n") {
		t.Fatalf("bad input page: %d %q", code, body[:min(len(body), 200)])
	}
	_, body = get(t, newHandler(t), "/?temp=FLOPPY")
	if !strings.Contains(body, "unknown location") {
		t.Fatal("bad hint not reported")
	}
	_, body = get(t, newHandler(t), "/?n=4&procs=8")
	if !strings.Contains(body, "smaller than") {
		t.Fatal("n < procs not reported")
	}
}

// TestAllBadParamsReported is the regression test for the
// last-error-wins bug: with several invalid query parameters the old
// getInt overwrote data.Error each time, so only the final one was
// shown.  Every bad parameter must appear in the page together.
func TestAllBadParamsReported(t *testing.T) {
	code, body := get(t, newHandler(t), "/?n=potato&iter=-1&freq=0&procs=x")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	for _, want := range []string{"bad n", "bad iter", "bad freq", "bad procs"} {
		if !strings.Contains(body, want) {
			t.Fatalf("page missing %q (old code kept only the last error):\n%s", want, body[:min(len(body), 400)])
		}
	}
}

// tracedHandler builds a handler with live metrics and a calibration
// engine attached, plus a synthetic remotedisk write workload folded
// into the metrics at twice the database's predicted speed — enough to
// drift outside the 15% band.
func tracedHandler(t *testing.T) (*Handler, *trace.Metrics) {
	t.Helper()
	m := trace.NewMetrics()
	h, meta := newHandlerMeta(t)
	eng := calib.New(calib.Config{Meta: meta, Classes: map[string]string{"r": "remotedisk"}})
	pdb := predict.NewDB(meta)
	u, err := pdb.Unit("remotedisk", "write", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		m.Observe(trace.Event{Backend: "r", Op: trace.OpWrite, Bytes: 1 << 20,
			Cost: time.Duration(u * 2 * float64(time.Second))})
	}
	h.metrics = m
	h.calib = eng
	return h, m
}

func TestMetricsEndpoint(t *testing.T) {
	// Without WithMetrics the endpoint is 404.
	code, _ := get(t, newHandler(t), "/metrics")
	if code != http.StatusNotFound {
		t.Fatalf("/metrics without metrics: status = %d, want 404", code)
	}

	h, _ := tracedHandler(t)
	code, body := get(t, h, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	for _, want := range []string{
		`msra_native_calls_total{backend="r",op="write"} 8`,
		`msra_native_bytes_total{backend="r",op="write"} 8388608`,
		`quantile="0.95"`,
		`msra_calib_ratio{resource="remotedisk",op="write"}`,
		`msra_calib_drift{resource="remotedisk",op="write"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
}

func TestMeasuredColumn(t *testing.T) {
	h, _ := tracedHandler(t)
	_, body := get(t, h, "/?n=32&iter=24&freq=6&procs=8&temp=REMOTEDISK&default=DISABLE")
	for _, want := range []string{"MEASURED (s)", "ERR%", "(drift)"} {
		if !strings.Contains(body, want) {
			t.Fatalf("page missing %q:\n%s", want, body)
		}
	}
	// A handler without calibration keeps the plain table.
	_, plain := get(t, newHandler(t), "/?n=32&iter=24&freq=6&procs=8")
	if strings.Contains(plain, "MEASURED (s)") {
		t.Fatal("measured column rendered without calibration attached")
	}
}

func TestNotFound(t *testing.T) {
	code, _ := get(t, newHandler(t), "/elsewhere")
	if code != http.StatusNotFound {
		t.Fatalf("status = %d", code)
	}
}
