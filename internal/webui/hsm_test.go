package webui

import (
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/hsm"
	"repro/internal/memfs"
	"repro/internal/metadb"
	"repro/internal/model"
	"repro/internal/remotedisk"
	"repro/internal/tape"
	"repro/internal/vtime"
)

// TestHSMMetrics: WithHSM alone turns /metrics on and the msra_hsm_*
// families carry real lifecycle counters — a migration and a recall
// show up in the census, the mount counter and the hit/miss split.
func TestHSMMetrics(t *testing.T) {
	sim := vtime.NewVirtual()
	pool, err := remotedisk.New("pool", memfs.New())
	if err != nil {
		t.Fatal(err)
	}
	lib, err := tape.New(tape.Config{
		Name: "vault", Params: model.RemoteTape2000(), Store: memfs.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := hsm.New(hsm.Config{
		Sim: sim, Meta: metadb.New(), Pool: pool, Tape: lib,
		PoolCapacity: 10_000,
		Policy:       hsm.Policy{ColdAfter: time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	p := sim.NewProc("p")
	if err := eng.Put(p, "a", []byte("payload-a")); err != nil {
		t.Fatal(err)
	}
	if err := eng.Put(p, "b", []byte("payload-b")); err != nil {
		t.Fatal(err)
	}
	p.Advance(2 * time.Hour)
	if err := eng.Tick(p); err != nil {
		t.Fatal(err)
	}

	h, _ := newHandlerMeta(t, WithHSM(eng))
	code, body := get(t, h, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	for _, want := range []string{
		`msra_hsm_datasets{state="dual"} 2`,
		`msra_hsm_migrations_total 2`,
		`msra_hsm_pool_capacity_bytes 10000`,
		`msra_hsm_recalls_total 0`,
		`msra_hsm_gc_runs_total 0`,
		`msra_hsm_gc_stalls_total 0`,
		`msra_hsm_repacks_total 0`,
		`msra_hsm_reads_total{result="hit"} 0`,
		`msra_hsm_mounts_total 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if !strings.Contains(body, "msra_hsm_pool_occupancy_bytes") ||
		!strings.Contains(body, "msra_hsm_recall_p95_seconds") {
		t.Errorf("gauge families missing:\n%s", body)
	}
}
