package metadb

import (
	"errors"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/vtime"
)

func TestRunCRUD(t *testing.T) {
	db := New()
	if err := db.PutRun(nil, Run{ID: "r1", App: "astro3d", User: "shen", Iterations: 120, Procs: 8}); err != nil {
		t.Fatal(err)
	}
	r, err := db.GetRun(nil, "r1")
	if err != nil || r.App != "astro3d" {
		t.Fatalf("GetRun = %+v, %v", r, err)
	}
	if _, err := db.GetRun(nil, "nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing run = %v", err)
	}
	if err := db.PutRun(nil, Run{}); err == nil {
		t.Fatal("empty run ID accepted")
	}
	db.PutRun(nil, Run{ID: "r0"})
	runs := db.Runs(nil)
	if len(runs) != 2 || runs[0].ID != "r0" {
		t.Fatalf("Runs = %v", runs)
	}
}

func TestDatasetCRUDAndSize(t *testing.T) {
	db := New()
	d := Dataset{
		RunID: "r1", Name: "temp", AMode: "create", NDims: 3,
		Dims: []int{128, 128, 128}, ETypeSize: 4, Pattern: "BBB",
		Location: "REMOTEDISK", Frequency: 6,
	}
	if err := db.PutDataset(nil, d); err != nil {
		t.Fatal(err)
	}
	got, err := db.GetDataset(nil, "r1", "temp")
	if err != nil || got.Pattern != "BBB" {
		t.Fatalf("GetDataset = %+v, %v", got, err)
	}
	if got.Size() != 8*1024*1024 {
		t.Fatalf("Size = %d, want 8 MiB", got.Size())
	}
	if _, err := db.GetDataset(nil, "r1", "nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing dataset = %v", err)
	}
	if err := db.PutDataset(nil, Dataset{}); err == nil {
		t.Fatal("empty dataset key accepted")
	}
	if (Dataset{}).Size() != 0 {
		t.Fatal("empty dataset size != 0")
	}
}

func TestDatasetsForRunAndQuery(t *testing.T) {
	db := New()
	for _, name := range []string{"temp", "press", "rho"} {
		db.PutDataset(nil, Dataset{RunID: "r1", Name: name, Location: "SDSCHPSS"})
	}
	db.PutDataset(nil, Dataset{RunID: "r2", Name: "temp", Location: "LOCALDISK"})
	ds := db.DatasetsForRun(nil, "r1")
	if len(ds) != 3 || ds[0].Name != "press" {
		t.Fatalf("DatasetsForRun = %v", ds)
	}
	q := db.QueryDatasets(nil, func(d Dataset) bool { return d.Location == "LOCALDISK" })
	if len(q) != 1 || q[0].RunID != "r2" {
		t.Fatalf("QueryDatasets = %v", q)
	}
}

func TestSamplesSortedAndAveraged(t *testing.T) {
	db := New()
	db.AddSample(nil, PerfSample{Resource: "localdisk", Op: "write", Size: 2048, Seconds: 0.4})
	db.AddSample(nil, PerfSample{Resource: "localdisk", Op: "write", Size: 1024, Seconds: 0.1})
	db.AddSample(nil, PerfSample{Resource: "localdisk", Op: "write", Size: 2048, Seconds: 0.6})
	db.AddSample(nil, PerfSample{Resource: "localdisk", Op: "read", Size: 1024, Seconds: 9})
	got := db.Samples(nil, "localdisk", "write")
	if len(got) != 2 {
		t.Fatalf("Samples = %v", got)
	}
	if got[0].Size != 1024 || got[1].Size != 2048 {
		t.Fatalf("not sorted: %v", got)
	}
	if got[1].Seconds != 0.5 {
		t.Fatalf("duplicate sizes not averaged: %v", got[1])
	}
}

func TestConstants(t *testing.T) {
	db := New()
	db.SetConstant(nil, PerfConstant{Resource: "remotetape", Op: "read", Component: CompOpen, Seconds: 6.17})
	db.SetConstant(nil, PerfConstant{Resource: "remotetape", Op: "read", Component: CompOpen, Seconds: 6.20})
	if got := db.Constant(nil, "remotetape", "read", CompOpen); got != 6.20 {
		t.Fatalf("Constant = %v, want replaced 6.20", got)
	}
	if got := db.Constant(nil, "remotetape", "read", CompSeek); got != 0 {
		t.Fatalf("missing constant = %v, want 0", got)
	}
	if n := len(db.Constants(nil)); n != 1 {
		t.Fatalf("Constants rows = %d, want 1 (replace, not append)", n)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	db := New()
	db.PutRun(nil, Run{ID: "r1", App: "astro3d"})
	db.PutDataset(nil, Dataset{RunID: "r1", Name: "temp", Dims: []int{4, 4, 4}, ETypeSize: 4})
	db.AddSample(nil, PerfSample{Resource: "x", Op: "write", Size: 8, Seconds: 1})
	db.SetConstant(nil, PerfConstant{Resource: "x", Op: "write", Component: CompConn, Seconds: 0.44})

	path := filepath.Join(t.TempDir(), "meta.json")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	db2 := New()
	if err := db2.Load(path); err != nil {
		t.Fatal(err)
	}
	if _, err := db2.GetRun(nil, "r1"); err != nil {
		t.Fatal(err)
	}
	d, err := db2.GetDataset(nil, "r1", "temp")
	if err != nil || d.Size() != 256 {
		t.Fatalf("dataset after load = %+v, %v", d, err)
	}
	if len(db2.Samples(nil, "x", "write")) != 1 {
		t.Fatal("samples lost")
	}
	if db2.Constant(nil, "x", "write", CompConn) != 0.44 {
		t.Fatal("constants lost")
	}
}

func TestLoadMissingFile(t *testing.T) {
	db := New()
	if err := db.Load(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("load of missing file succeeded")
	}
}

func TestChargesClock(t *testing.T) {
	db := New()
	p := vtime.NewVirtual().NewProc("p")
	db.PutRun(p, Run{ID: "r"})
	if p.Now() == 0 {
		t.Fatal("meta-data write charged nothing")
	}
	before := p.Now()
	db.GetRun(p, "r")
	if p.Now() == before {
		t.Fatal("meta-data read charged nothing")
	}
}

func TestTable1String(t *testing.T) {
	db := New()
	db.SetConstant(nil, PerfConstant{Resource: "remotedisk", Op: "read", Component: CompConn, Seconds: 0.44})
	db.SetConstant(nil, PerfConstant{Resource: "remotedisk", Op: "read", Component: CompOpen, Seconds: 0.42})
	s := db.Table1String()
	if !strings.Contains(s, "remotedisk") || !strings.Contains(s, "0.44") {
		t.Fatalf("Table1String missing rows:\n%s", s)
	}
	if !strings.Contains(s, "-") {
		t.Fatalf("missing components should render as '-':\n%s", s)
	}
}

func TestReplaceSamples(t *testing.T) {
	db := New()
	db.AddSample(nil, PerfSample{Resource: "r", Op: "write", Size: 100, Seconds: 1})
	db.AddSample(nil, PerfSample{Resource: "r", Op: "write", Size: 200, Seconds: 2})
	db.AddSample(nil, PerfSample{Resource: "r", Op: "read", Size: 100, Seconds: 5})
	db.AddSample(nil, PerfSample{Resource: "other", Op: "write", Size: 100, Seconds: 9})

	db.ReplaceSamples(nil, "r", "write", []PerfSample{
		{Size: 150, Seconds: 3},
		{Size: 300, Seconds: 6},
	})
	got := db.Samples(nil, "r", "write")
	if len(got) != 2 || got[0].Size != 150 || got[0].Seconds != 3 || got[1].Size != 300 {
		t.Fatalf("replaced curve = %+v", got)
	}
	// Other (resource, op) pairs untouched.
	if rd := db.Samples(nil, "r", "read"); len(rd) != 1 || rd[0].Seconds != 5 {
		t.Fatalf("r/read disturbed: %+v", rd)
	}
	if o := db.Samples(nil, "other", "write"); len(o) != 1 || o[0].Seconds != 9 {
		t.Fatalf("other/write disturbed: %+v", o)
	}
	// Mismatched key fields in the input are rewritten to the arguments.
	db.ReplaceSamples(nil, "r", "read", []PerfSample{{Resource: "bogus", Op: "write", Size: 50, Seconds: 7}})
	if rd := db.Samples(nil, "r", "read"); len(rd) != 1 || rd[0].Size != 50 {
		t.Fatalf("keyed replace = %+v", rd)
	}
	// Replacing with nil clears the curve.
	db.ReplaceSamples(nil, "r", "read", nil)
	if rd := db.Samples(nil, "r", "read"); len(rd) != 0 {
		t.Fatalf("clear failed: %+v", rd)
	}
}

// Property: Samples returns sizes strictly increasing for any insert order.
func TestQuickSamplesSorted(t *testing.T) {
	f := func(sizes []uint16) bool {
		db := New()
		for _, s := range sizes {
			db.AddSample(nil, PerfSample{Resource: "r", Op: "write", Size: int64(s), Seconds: 1})
		}
		got := db.Samples(nil, "r", "write")
		for i := 1; i < len(got); i++ {
			if got[i-1].Size >= got[i].Size {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
