// Journal-backed persistence: every mutation is written through the
// write-ahead log of internal/wal before it touches the in-memory
// tables, so the broker's meta-data survives a crash at any instant
// with no acknowledged row lost and no partial row visible.  Recovery
// is snapshot + replay: OpenJournal loads the newest checkpoint and
// re-applies the records appended after it, in order.
package metadb

import (
	"encoding/json"
	"fmt"

	"repro/internal/vtime"
	"repro/internal/wal"
)

// Journal record types.  Payloads are JSON, one mutation per record,
// matching the mutator that produced them.
const (
	recPutRun         byte = 1
	recPutDataset     byte = 2
	recAddSample      byte = 3
	recReplaceSamples byte = 4
	recSetConstant    byte = 5
	recPutLifecycle   byte = 6
	recDelLifecycle   byte = 7
)

// lifecycleKey is the journal encoding of one DeleteLifecycle call.
type lifecycleKey struct {
	Pool string `json:"pool"`
	Path string `json:"path"`
}

// replacePayload is the journal encoding of one ReplaceSamples call:
// the whole-curve swap must replay as a unit or the calibration
// write-back could leave a blended stale/fresh curve after recovery.
type replacePayload struct {
	Resource string       `json:"resource"`
	Op       string       `json:"op"`
	Samples  []PerfSample `json:"samples"`
}

// OpenJournal opens a database persisted through a write-ahead journal
// in opts.Dir, replaying any existing snapshot and log.  Every
// subsequent mutation is appended and fsynced before it is applied, so
// a mutator returning nil means the row is crash-durable.
func OpenJournal(opts wal.Options) (*DB, error) {
	l, rec, err := wal.Open(opts)
	if err != nil {
		return nil, fmt.Errorf("metadb journal: %w", err)
	}
	db := New()
	if rec.Snapshot != nil {
		var snap snapshot
		if err := json.Unmarshal(rec.Snapshot, &snap); err != nil {
			l.Close()
			return nil, fmt.Errorf("metadb journal: %w: snapshot: %v", wal.ErrCorrupt, err)
		}
		db.install(snap)
	}
	for i, r := range rec.Records {
		if err := db.apply(r); err != nil {
			l.Close()
			return nil, fmt.Errorf("metadb journal: %w: record %d: %v", wal.ErrCorrupt, i, err)
		}
	}
	db.log = l
	return db, nil
}

// Journaled reports whether mutations are being written through a
// journal.
func (db *DB) Journaled() bool { return db.log != nil }

// JournalStats returns the journal's counters; ok is false when the
// database is not journal-backed.
func (db *DB) JournalStats() (st wal.Stats, ok bool) {
	if db.log == nil {
		return wal.Stats{}, false
	}
	return db.log.Stats(), true
}

// Checkpoint compacts the journal: the current tables become the
// snapshot baseline and the records they summarize are removed.  The
// database stays locked across the marshal and the compaction so the
// snapshot covers exactly the journaled history.  No-op without a
// journal.
func (db *DB) Checkpoint() error {
	if db.log == nil {
		return nil
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	data, err := json.Marshal(db.snapshotLocked())
	if err != nil {
		return fmt.Errorf("metadb checkpoint: %w", err)
	}
	return db.log.Compact(data)
}

// CloseJournal syncs and closes the journal.  Mutations after this
// fail.  No-op without a journal.
func (db *DB) CloseJournal() error {
	if db.log == nil {
		return nil
	}
	err := db.log.Close()
	db.log = nil
	return err
}

// journalLocked writes one mutation record and waits for the fsync
// barrier.  Called with db.mu held so journal order equals apply
// order.  Without a journal it is free.
func (db *DB) journalLocked(typ byte, v any) error {
	if db.log == nil {
		return nil
	}
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("metadb journal: %w", err)
	}
	return db.journalRawLocked(typ, data)
}

// journalRawLocked appends one pre-marshalled record and waits for the
// fsync barrier.  Called with db.mu held.  Without a journal it is
// free.
func (db *DB) journalRawLocked(typ byte, data []byte) error {
	if db.log == nil {
		return nil
	}
	if err := db.log.Append(typ, data); err != nil {
		return err
	}
	return db.log.Sync()
}

// Replicator routes mutations through a cluster replicated log.  When
// one is installed every mutator hands its journal record to
// Replicate INSTEAD of journaling and applying it locally; the log
// layer feeds the committed record back to every replica — this
// database included — through ApplyRecord.  Replicate returning nil
// therefore means the mutation is durable on a quorum and applied
// locally, the same ack contract a journaled mutator gives.
type Replicator interface {
	Replicate(p *vtime.Proc, typ byte, data []byte) error
}

// SetReplicator installs (or, with nil, removes) the cluster
// replicator.  The mutator that triggers replication holds no
// database lock while Replicate runs, so the replicator is free to
// call ApplyRecord on any replica, including this one.
func (db *DB) SetReplicator(r Replicator) {
	db.mu.Lock()
	db.repl = r
	db.mu.Unlock()
}

// replicator returns the installed replicator, if any.
func (db *DB) replicator() Replicator {
	db.mu.RLock()
	r := db.repl
	db.mu.RUnlock()
	return r
}

// replicate consumes one mutation when a replicator is installed.
// handled=false means no replicator: the caller journals and applies
// locally as usual.  handled=true means the record was offered to the
// replicated log; on nil error it has been committed and applied back
// to these tables via ApplyRecord, so the caller must not touch them.
func (db *DB) replicate(p *vtime.Proc, typ byte, v any) (handled bool, err error) {
	rep := db.replicator()
	if rep == nil {
		return false, nil
	}
	data, err := json.Marshal(v)
	if err != nil {
		return true, fmt.Errorf("metadb journal: %w", err)
	}
	return true, rep.Replicate(p, typ, data)
}

// ApplyRecord applies one committed replicated record: the follower
// half of cluster replication.  The record is journaled locally (when
// a journal is open) and then applied through the same switch crash
// recovery replays, so a replica's tables and journal stay exactly as
// if the mutation had happened here.  The replicator hook is not
// consulted — the record has already been through the leader's log.
func (db *DB) ApplyRecord(typ byte, data []byte) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.journalRawLocked(typ, data); err != nil {
		return err
	}
	return db.apply(wal.Record{Type: typ, Data: data})
}

// install replaces the tables from a decoded snapshot (recovery path;
// no locking — the database is not yet shared).
func (db *DB) install(snap snapshot) {
	db.runs = make(map[string]Run, len(snap.Runs))
	for _, r := range snap.Runs {
		db.runs[r.ID] = r
	}
	db.datasets = make(map[string]Dataset, len(snap.Datasets))
	for _, d := range snap.Datasets {
		db.datasets[dsKey(d.RunID, d.Name)] = d
	}
	db.lifecycles = make(map[string]Lifecycle, len(snap.Lifecycles))
	for _, l := range snap.Lifecycles {
		db.lifecycles[lcKey(l.Pool, l.Path)] = l
	}
	db.samples = snap.Samples
	db.constants = snap.Constants
}

// apply replays one journal record against the tables (recovery path).
func (db *DB) apply(r wal.Record) error {
	switch r.Type {
	case recPutRun:
		var row Run
		if err := json.Unmarshal(r.Data, &row); err != nil {
			return err
		}
		db.runs[row.ID] = row
	case recPutDataset:
		var row Dataset
		if err := json.Unmarshal(r.Data, &row); err != nil {
			return err
		}
		db.datasets[dsKey(row.RunID, row.Name)] = row
	case recAddSample:
		var s PerfSample
		if err := json.Unmarshal(r.Data, &s); err != nil {
			return err
		}
		db.samples = append(db.samples, s)
	case recReplaceSamples:
		var p replacePayload
		if err := json.Unmarshal(r.Data, &p); err != nil {
			return err
		}
		db.replaceSamplesLocked(p.Resource, p.Op, p.Samples)
	case recSetConstant:
		var c PerfConstant
		if err := json.Unmarshal(r.Data, &c); err != nil {
			return err
		}
		db.setConstantLocked(c)
	case recPutLifecycle:
		var l Lifecycle
		if err := json.Unmarshal(r.Data, &l); err != nil {
			return err
		}
		db.lifecycles[lcKey(l.Pool, l.Path)] = l
	case recDelLifecycle:
		var k lifecycleKey
		if err := json.Unmarshal(r.Data, &k); err != nil {
			return err
		}
		delete(db.lifecycles, lcKey(k.Pool, k.Path))
	default:
		return fmt.Errorf("unknown record type %d", r.Type)
	}
	return nil
}
