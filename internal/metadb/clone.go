// Deep-copy snapshots.  Follower catch-up in internal/cluster adopts a
// leader replica wholesale when it is too far behind to replay the
// log; Clone/CopyFrom are that path.
package metadb

// Clone returns a deep-copy snapshot of the tables: a database that
// shares no mutable state with the receiver, so concurrent mutators on
// the original never show through and edits to the clone never leak
// back.  The clone has no journal and no replicator — it is a
// point-in-time snapshot, not a second writer for the same history.
func (db *DB) Clone() *DB {
	out := New()
	db.mu.RLock()
	defer db.mu.RUnlock()
	for k, v := range db.runs {
		out.runs[k] = v
	}
	for k, v := range db.datasets {
		v.Dims = append([]int(nil), v.Dims...)
		out.datasets[k] = v
	}
	for k, v := range db.lifecycles {
		out.lifecycles[k] = v
	}
	out.samples = append([]PerfSample(nil), db.samples...)
	out.constants = append([]PerfConstant(nil), db.constants...)
	return out
}

// CopyFrom replaces the receiver's tables with a deep copy of src's
// (the rejoin path: a recovered replica adopts the leader's state).
// The receiver's journal, if any, is not rewritten to match — callers
// that need the journal to cover the adopted state should Checkpoint
// afterwards.  Neither database's lock is held while the other is
// locked, so any locking discipline of the caller's stays intact.
func (db *DB) CopyFrom(src *DB) {
	c := src.Clone()
	db.mu.Lock()
	db.runs, db.datasets, db.lifecycles = c.runs, c.datasets, c.lifecycles
	db.samples, db.constants = c.samples, c.constants
	db.mu.Unlock()
}
