// Package metadb is the system's meta-data repository — the stand-in
// for the "small" Postgres database at Northwestern in the paper's
// environment.
//
// It stores exactly what the paper describes: information about
// applications and runs, per-dataset characteristics (storage resource,
// file path, partition pattern, access mode, dump frequency), and the
// performance data that the I/O performance predictor consults (the
// transfer-time curves measured by PTool plus the Table 1 constants).
//
// The store is an embedded, concurrency-safe table database with JSON
// persistence.  Meta-data access is deliberately cheap ("there is no
// need to provide a run-time library on top of the native interface"):
// each operation charges a small constant from model.MetaDB2000 when a
// virtual clock is supplied.
package metadb

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/model"
	"repro/internal/vfs"
	"repro/internal/vtime"
	"repro/internal/wal"
)

// ErrNotFound is returned when a looked-up row does not exist.
var ErrNotFound = fmt.Errorf("metadb: not found")

// Run describes one application run registered in the system.
type Run struct {
	ID         string `json:"id"`
	App        string `json:"app"`
	User       string `json:"user"`
	Iterations int    `json:"iterations"`
	Procs      int    `json:"procs"`
}

// Dataset is the per-dataset meta-data row (cf. the columns of the
// paper's figure 11: NAME, AMODE, NDIMS, ETYPE, PATTERN, DIMS,
// EXPECTEDLOC, FREQUENCY).
type Dataset struct {
	RunID     string `json:"run_id"`
	Name      string `json:"name"`
	AMode     string `json:"amode"`
	NDims     int    `json:"ndims"`
	Dims      []int  `json:"dims"`
	ETypeSize int    `json:"etype_size"` // bytes per element
	Pattern   string `json:"pattern"`    // e.g. "BBB"
	Location  string `json:"location"`   // the user's hint
	Frequency int    `json:"frequency"`
	Opt       string `json:"opt"`      // run-time library optimization used
	Resource  string `json:"resource"` // backend instance chosen by placement
	PathBase  string `json:"path_base"`
}

// Size returns the dataset's bytes per dump.
func (d Dataset) Size() int64 {
	if len(d.Dims) == 0 {
		return 0
	}
	n := int64(d.ETypeSize)
	for _, dim := range d.Dims {
		n *= int64(dim)
	}
	return n
}

// Lifecycle is one dataset's HSM lifecycle row: which disk pool it
// belongs to, where its copies live, and the access history the
// migration policy ages it by.  State holds one of the hsm package's
// lifecycle states (resident/migrating/dual/migrated/recalling); the
// row is journaled like every other table, so recovery replays
// lifecycle moves and the engine can restore in-flight migrations to a
// safe state.
type Lifecycle struct {
	Pool       string `json:"pool"` // disk-pool backend instance name
	Path       string `json:"path"` // path on the pool
	State      string `json:"state"`
	Bytes      int64  `json:"bytes"`
	TapePath   string `json:"tape_path,omitempty"` // path of the tape copy, when one exists
	LastAccess int64  `json:"last_access"`         // virtual-clock nanoseconds of the last read
	Accesses   int64  `json:"accesses"`
}

// PerfSample is one measured transfer time: size s bytes took Seconds on
// the given resource class for the given op ("read"/"write").
type PerfSample struct {
	Resource string  `json:"resource"`
	Op       string  `json:"op"`
	Size     int64   `json:"size"`
	Seconds  float64 `json:"seconds"`
}

// PerfConstant is one measured eq. (1) constant (conn, open, seek,
// close, connclose) for a resource class and op.
type PerfConstant struct {
	Resource  string  `json:"resource"`
	Op        string  `json:"op"`
	Component string  `json:"component"`
	Seconds   float64 `json:"seconds"`
}

// Components of eq. (1) recorded as PerfConstant rows.
const (
	CompConn      = "conn"
	CompOpen      = "fileopen"
	CompSeek      = "fileseek"
	CompClose     = "fileclose"
	CompConnClose = "connclose"
)

// DB is the meta-data database.
type DB struct {
	params model.Params

	// log, when set, is the write-ahead journal every mutation goes
	// through before it is applied (see journal.go / OpenJournal).
	log *wal.Log

	mu         sync.RWMutex
	// repl, when set, diverts every mutation through a cluster
	// replicated log instead of the local journal/apply path (see
	// Replicator in journal.go).
	repl       Replicator
	runs       map[string]Run
	datasets   map[string]Dataset
	lifecycles map[string]Lifecycle
	samples    []PerfSample
	constants  []PerfConstant
}

// New returns an empty database.
func New() *DB {
	return &DB{
		params:     model.MetaDB2000(),
		runs:       make(map[string]Run),
		datasets:   make(map[string]Dataset),
		lifecycles: make(map[string]Lifecycle),
	}
}

// charge advances p by the meta-data access constant; nil p skips
// timing (pure bookkeeping contexts).
func (db *DB) charge(p *vtime.Proc, op model.Op) {
	if p != nil {
		p.Advance(db.params.PerCall(op))
	}
}

func dsKey(runID, name string) string { return runID + "\x00" + name }

// PutRun inserts or replaces a run row.
func (db *DB) PutRun(p *vtime.Proc, r Run) error {
	if r.ID == "" {
		return fmt.Errorf("metadb: run with empty ID")
	}
	db.charge(p, model.Write)
	if ok, err := db.replicate(p, recPutRun, r); ok {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.journalLocked(recPutRun, r); err != nil {
		return err
	}
	db.runs[r.ID] = r
	return nil
}

// GetRun fetches a run row.
func (db *DB) GetRun(p *vtime.Proc, id string) (Run, error) {
	db.charge(p, model.Read)
	db.mu.RLock()
	defer db.mu.RUnlock()
	r, ok := db.runs[id]
	if !ok {
		return Run{}, fmt.Errorf("%w: run %q", ErrNotFound, id)
	}
	return r, nil
}

// Runs returns all run rows sorted by ID.
func (db *DB) Runs(p *vtime.Proc) []Run {
	db.charge(p, model.Read)
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]Run, 0, len(db.runs))
	for _, r := range db.runs {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// PutDataset inserts or replaces a dataset row.
func (db *DB) PutDataset(p *vtime.Proc, d Dataset) error {
	if d.RunID == "" || d.Name == "" {
		return fmt.Errorf("metadb: dataset with empty key (%q, %q)", d.RunID, d.Name)
	}
	db.charge(p, model.Write)
	if ok, err := db.replicate(p, recPutDataset, d); ok {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.journalLocked(recPutDataset, d); err != nil {
		return err
	}
	db.datasets[dsKey(d.RunID, d.Name)] = d
	return nil
}

// GetDataset fetches one dataset row.
func (db *DB) GetDataset(p *vtime.Proc, runID, name string) (Dataset, error) {
	db.charge(p, model.Read)
	db.mu.RLock()
	defer db.mu.RUnlock()
	d, ok := db.datasets[dsKey(runID, name)]
	if !ok {
		return Dataset{}, fmt.Errorf("%w: dataset %q in run %q", ErrNotFound, name, runID)
	}
	return d, nil
}

// DatasetsForRun returns a run's dataset rows sorted by name.
func (db *DB) DatasetsForRun(p *vtime.Proc, runID string) []Dataset {
	db.charge(p, model.Read)
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []Dataset
	for _, d := range db.datasets {
		if d.RunID == runID {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// QueryDatasets returns all dataset rows matching the predicate, sorted
// by (run, name).
func (db *DB) QueryDatasets(p *vtime.Proc, match func(Dataset) bool) []Dataset {
	db.charge(p, model.Read)
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []Dataset
	for _, d := range db.datasets {
		if match(d) {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].RunID != out[j].RunID {
			return out[i].RunID < out[j].RunID
		}
		return out[i].Name < out[j].Name
	})
	return out
}

func lcKey(pool, path string) string { return pool + "\x00" + path }

// PutLifecycle inserts or replaces a lifecycle row.  With a journal,
// nil means the state transition is crash-durable — the contract the
// HSM engine's migrate/recall/GC moves rely on.
func (db *DB) PutLifecycle(p *vtime.Proc, l Lifecycle) error {
	if l.Pool == "" || l.Path == "" {
		return fmt.Errorf("metadb: lifecycle with empty key (%q, %q)", l.Pool, l.Path)
	}
	db.charge(p, model.Write)
	if ok, err := db.replicate(p, recPutLifecycle, l); ok {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.journalLocked(recPutLifecycle, l); err != nil {
		return err
	}
	db.lifecycles[lcKey(l.Pool, l.Path)] = l
	return nil
}

// GetLifecycle fetches one lifecycle row.
func (db *DB) GetLifecycle(p *vtime.Proc, pool, path string) (Lifecycle, error) {
	db.charge(p, model.Read)
	db.mu.RLock()
	defer db.mu.RUnlock()
	l, ok := db.lifecycles[lcKey(pool, path)]
	if !ok {
		return Lifecycle{}, fmt.Errorf("%w: lifecycle %q in pool %q", ErrNotFound, path, pool)
	}
	return l, nil
}

// DeleteLifecycle removes a lifecycle row (dataset deleted from every
// tier).  Deleting a missing row is a no-op.
func (db *DB) DeleteLifecycle(p *vtime.Proc, pool, path string) error {
	db.charge(p, model.Write)
	db.mu.RLock()
	_, present := db.lifecycles[lcKey(pool, path)]
	db.mu.RUnlock()
	if !present {
		return nil
	}
	if ok, err := db.replicate(p, recDelLifecycle, lifecycleKey{Pool: pool, Path: path}); ok {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.journalLocked(recDelLifecycle, lifecycleKey{Pool: pool, Path: path}); err != nil {
		return err
	}
	delete(db.lifecycles, lcKey(pool, path))
	return nil
}

// Lifecycles returns a pool's lifecycle rows sorted by path; an empty
// pool name returns every row sorted by (pool, path).
func (db *DB) Lifecycles(p *vtime.Proc, pool string) []Lifecycle {
	db.charge(p, model.Read)
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []Lifecycle
	for _, l := range db.lifecycles {
		if pool == "" || l.Pool == pool {
			out = append(out, l)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pool != out[j].Pool {
			return out[i].Pool < out[j].Pool
		}
		return out[i].Path < out[j].Path
	})
	return out
}

// AddSample appends one performance sample.  The error is always nil
// without a journal; with one, nil means the sample is crash-durable.
func (db *DB) AddSample(p *vtime.Proc, s PerfSample) error {
	db.charge(p, model.Write)
	if ok, err := db.replicate(p, recAddSample, s); ok {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.journalLocked(recAddSample, s); err != nil {
		return err
	}
	db.samples = append(db.samples, s)
	return nil
}

// ReplaceSamples atomically replaces the whole performance curve for
// (resource, op) with the given samples.  This is the write-back path
// of the online calibration loop: a refreshed curve supersedes PTool's
// one-shot sweep rather than averaging with it (AddSample would blend
// stale and fresh measurements forever).  Samples for other
// (resource, op) pairs are untouched.  Rows whose Resource/Op fields
// disagree with the arguments are rewritten to match.
func (db *DB) ReplaceSamples(p *vtime.Proc, resource, op string, samples []PerfSample) error {
	db.charge(p, model.Write)
	if ok, err := db.replicate(p, recReplaceSamples, replacePayload{Resource: resource, Op: op, Samples: samples}); ok {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.journalLocked(recReplaceSamples, replacePayload{Resource: resource, Op: op, Samples: samples}); err != nil {
		return err
	}
	db.replaceSamplesLocked(resource, op, samples)
	return nil
}

// replaceSamplesLocked is the in-memory half of ReplaceSamples, shared
// with journal replay.  Caller holds db.mu.
func (db *DB) replaceSamplesLocked(resource, op string, samples []PerfSample) {
	kept := db.samples[:0]
	for _, s := range db.samples {
		if s.Resource != resource || s.Op != op {
			kept = append(kept, s)
		}
	}
	db.samples = kept
	for _, s := range samples {
		s.Resource, s.Op = resource, op
		db.samples = append(db.samples, s)
	}
}

// Samples returns the samples for (resource, op) sorted by size.
// Duplicate sizes are averaged, matching how PTool's repeated
// measurements are consumed by the predictor.
func (db *DB) Samples(p *vtime.Proc, resource, op string) []PerfSample {
	db.charge(p, model.Read)
	db.mu.RLock()
	defer db.mu.RUnlock()
	bySize := make(map[int64][]float64)
	for _, s := range db.samples {
		if s.Resource == resource && s.Op == op {
			bySize[s.Size] = append(bySize[s.Size], s.Seconds)
		}
	}
	out := make([]PerfSample, 0, len(bySize))
	for size, secs := range bySize {
		var sum float64
		for _, v := range secs {
			sum += v
		}
		out = append(out, PerfSample{Resource: resource, Op: op, Size: size, Seconds: sum / float64(len(secs))})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Size < out[j].Size })
	return out
}

// SetConstant inserts or replaces an eq. (1) constant.
func (db *DB) SetConstant(p *vtime.Proc, c PerfConstant) error {
	db.charge(p, model.Write)
	if ok, err := db.replicate(p, recSetConstant, c); ok {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.journalLocked(recSetConstant, c); err != nil {
		return err
	}
	db.setConstantLocked(c)
	return nil
}

// setConstantLocked is the in-memory half of SetConstant, shared with
// journal replay.  Caller holds db.mu.
func (db *DB) setConstantLocked(c PerfConstant) {
	for i, old := range db.constants {
		if old.Resource == c.Resource && old.Op == c.Op && old.Component == c.Component {
			db.constants[i] = c
			return
		}
	}
	db.constants = append(db.constants, c)
}

// Constant fetches an eq. (1) constant; missing constants are zero, the
// way the paper's Table 1 marks inapplicable cells with "–".
func (db *DB) Constant(p *vtime.Proc, resource, op, component string) float64 {
	db.charge(p, model.Read)
	db.mu.RLock()
	defer db.mu.RUnlock()
	for _, c := range db.constants {
		if c.Resource == resource && c.Op == op && c.Component == component {
			return c.Seconds
		}
	}
	return 0
}

// Constants returns all constant rows sorted (resource, op, component).
func (db *DB) Constants(p *vtime.Proc) []PerfConstant {
	db.charge(p, model.Read)
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := append([]PerfConstant(nil), db.constants...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Resource != b.Resource {
			return a.Resource < b.Resource
		}
		if a.Op != b.Op {
			return a.Op < b.Op
		}
		return a.Component < b.Component
	})
	return out
}

// snapshot is the JSON persistence layout.
type snapshot struct {
	Runs       []Run          `json:"runs"`
	Datasets   []Dataset      `json:"datasets"`
	Lifecycles []Lifecycle    `json:"lifecycles,omitempty"`
	Samples    []PerfSample   `json:"samples"`
	Constants  []PerfConstant `json:"constants"`
}

// snapshotLocked builds the sorted persistence snapshot.  Caller holds
// db.mu (read or write).
func (db *DB) snapshotLocked() snapshot {
	snap := snapshot{Samples: append([]PerfSample(nil), db.samples...), Constants: append([]PerfConstant(nil), db.constants...)}
	for _, r := range db.runs {
		snap.Runs = append(snap.Runs, r)
	}
	for _, d := range db.datasets {
		snap.Datasets = append(snap.Datasets, d)
	}
	for _, l := range db.lifecycles {
		snap.Lifecycles = append(snap.Lifecycles, l)
	}
	sort.Slice(snap.Runs, func(i, j int) bool { return snap.Runs[i].ID < snap.Runs[j].ID })
	sort.Slice(snap.Datasets, func(i, j int) bool {
		return dsKey(snap.Datasets[i].RunID, snap.Datasets[i].Name) < dsKey(snap.Datasets[j].RunID, snap.Datasets[j].Name)
	})
	sort.Slice(snap.Lifecycles, func(i, j int) bool {
		return lcKey(snap.Lifecycles[i].Pool, snap.Lifecycles[i].Path) < lcKey(snap.Lifecycles[j].Pool, snap.Lifecycles[j].Path)
	})
	return snap
}

// Save writes the database to path as JSON.
func (db *DB) Save(path string) error { return db.SaveFS(vfs.OS{}, path) }

// SaveFS writes the database to path as JSON through fsys, durably:
// the snapshot is written to a temp file, fsynced, renamed into place,
// and the parent directory is fsynced — a crash leaves either the old
// snapshot or the new one, never a torn or unlinked file.
func (db *DB) SaveFS(fsys vfs.FS, path string) error {
	db.mu.RLock()
	snap := db.snapshotLocked()
	db.mu.RUnlock()
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return fmt.Errorf("metadb save: %w", err)
	}
	if err := vfs.WriteAtomic(fsys, path, data); err != nil {
		return fmt.Errorf("metadb save: %w", err)
	}
	return nil
}

// Load replaces the database contents from a JSON file written by Save.
func (db *DB) Load(path string) error { return db.LoadFS(vfs.OS{}, path) }

// LoadFS is Load through an injectable filesystem.
func (db *DB) LoadFS(fsys vfs.FS, path string) error {
	data, err := vfs.ReadFile(fsys, path)
	if err != nil {
		return fmt.Errorf("metadb load: %w", err)
	}
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("metadb load %s: %w", path, err)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.install(snap)
	return nil
}

// Table1String renders the constants as the paper's Table 1.
func (db *DB) Table1String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-6s %8s %9s %9s %10s %10s\n", "Location", "Type", "Conn", "Fileopen", "Fileseek", "Fileclose", "Connclose")
	seen := make(map[string]bool)
	for _, c := range db.Constants(nil) {
		key := c.Resource + "/" + c.Op
		if seen[key] {
			continue
		}
		seen[key] = true
		get := func(comp string) string {
			v := db.Constant(nil, c.Resource, c.Op, comp)
			if v == 0 {
				return "-"
			}
			return fmt.Sprintf("%.4g", v)
		}
		fmt.Fprintf(&b, "%-12s %-6s %8s %9s %9s %10s %10s\n",
			c.Resource, c.Op, get(CompConn), get(CompOpen), get(CompSeek), get(CompClose), get(CompConnClose))
	}
	return b.String()
}
