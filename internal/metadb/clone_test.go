package metadb

import (
	"sync"
	"testing"
)

// TestCloneIsolatedFromConcurrentWriters hammers AddSample from
// several goroutines while snapshots are taken, then proves each
// snapshot is frozen: later writes to the original never show up in a
// clone, and edits to a clone never leak back.  Run under -race this
// also proves Clone holds the right locks against the writers.
func TestCloneIsolatedFromConcurrentWriters(t *testing.T) {
	db := New()
	if err := db.PutDataset(nil, Dataset{RunID: "r1", Name: "d1", NDims: 2, Dims: []int{640, 480}, ETypeSize: 8}); err != nil {
		t.Fatal(err)
	}

	const writers, perWriter = 4, 200
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				db.AddSample(nil, PerfSample{Resource: "disk", Op: "write", Size: int64(i), Seconds: 0.01})
				select {
				case <-stop:
					return
				default:
				}
			}
		}(w)
	}

	clones := make([]*DB, 0, 32)
	for i := 0; i < 32; i++ {
		clones = append(clones, db.Clone())
	}
	close(stop)
	wg.Wait()

	// Each clone's sample count must stay frozen while the original
	// keeps growing.
	before := make([]int, len(clones))
	for i, c := range clones {
		before[i] = len(c.Samples(nil, "disk", "write"))
	}
	for i := 0; i < 50; i++ {
		db.AddSample(nil, PerfSample{Resource: "disk", Op: "write", Size: 1 << 20, Seconds: 0.5})
	}
	for i, c := range clones {
		if got := len(c.Samples(nil, "disk", "write")); got != before[i] {
			t.Fatalf("clone %d grew from %d to %d samples after writes to the original", i, before[i], got)
		}
	}

	// Deep isolation: mutating a clone's dataset dims must not reach
	// the original's row.
	c := clones[0]
	d, err := c.GetDataset(nil, "r1", "d1")
	if err != nil {
		t.Fatal(err)
	}
	d.Dims[0] = 9999
	orig, err := db.GetDataset(nil, "r1", "d1")
	if err != nil {
		t.Fatal(err)
	}
	if orig.Dims[0] != 640 {
		t.Fatalf("clone dims share backing array with original: got %v", orig.Dims)
	}
	if db.Clone().Table1String() == "" {
		t.Fatal("clone renders empty table")
	}
}

// TestCopyFromAdoptsState proves CopyFrom is a deep adoption: the
// destination matches the source afterwards and further source writes
// stay invisible.
func TestCopyFromAdoptsState(t *testing.T) {
	src := New()
	if err := src.PutRun(nil, Run{ID: "run-a"}); err != nil {
		t.Fatal(err)
	}
	if err := src.AddSample(nil, PerfSample{Resource: "tape", Op: "read", Size: 4096, Seconds: 2}); err != nil {
		t.Fatal(err)
	}
	dst := New()
	if err := dst.PutRun(nil, Run{ID: "stale"}); err != nil {
		t.Fatal(err)
	}
	dst.CopyFrom(src)
	if _, err := dst.GetRun(nil, "stale"); err == nil {
		t.Fatal("CopyFrom kept a stale row")
	}
	if _, err := dst.GetRun(nil, "run-a"); err != nil {
		t.Fatalf("CopyFrom missed a source row: %v", err)
	}
	if err := src.AddSample(nil, PerfSample{Resource: "tape", Op: "read", Size: 8192, Seconds: 3}); err != nil {
		t.Fatal(err)
	}
	if got := len(dst.Samples(nil, "tape", "read")); got != 1 {
		t.Fatalf("destination tracked source after CopyFrom: %d samples", got)
	}
}
