package metadb_test

import (
	"errors"
	"testing"

	"repro/internal/faultfs"
	"repro/internal/metadb"
	"repro/internal/vfs"
	"repro/internal/wal"
)

func journalOpts(fsys vfs.FS) wal.Options {
	return wal.Options{FS: fsys, Dir: "journal", SegmentBytes: 512}
}

// mutate applies a deterministic set of mutations covering every
// journaled record type.
func mutate(t *testing.T, db *metadb.DB) {
	t.Helper()
	if err := db.PutRun(nil, metadb.Run{ID: "r1", App: "astro3d", User: "shen", Iterations: 120, Procs: 8}); err != nil {
		t.Fatal(err)
	}
	if err := db.PutDataset(nil, metadb.Dataset{
		RunID: "r1", Name: "temp", AMode: "w", NDims: 3, Dims: []int{64, 64, 64},
		ETypeSize: 4, Pattern: "BBB", Location: "REMOTEDISK", Frequency: 6,
		Resource: "sdsc-disk", PathBase: "r1",
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := db.AddSample(nil, metadb.PerfSample{
			Resource: "sdsc-disk", Op: "read", Size: int64(1024 << uint(i)), Seconds: 0.01 * float64(i+1),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.SetConstant(nil, metadb.PerfConstant{
		Resource: "sdsc-disk", Op: "read", Component: metadb.CompOpen, Seconds: 0.002,
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.ReplaceSamples(nil, "sdsc-hpss", "write", []metadb.PerfSample{
		{Size: 4096, Seconds: 0.5}, {Size: 8192, Seconds: 0.9},
	}); err != nil {
		t.Fatal(err)
	}
}

// canon renders db through its persisted form for comparison.
func canon(t *testing.T, db *metadb.DB) string {
	t.Helper()
	scratch := faultfs.New()
	if err := db.SaveFS(scratch, "dump"); err != nil {
		t.Fatal(err)
	}
	data, err := vfs.ReadFile(scratch, "dump")
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestJournalReplayRoundTrip(t *testing.T) {
	fsys := faultfs.New()
	db, err := metadb.OpenJournal(journalOpts(fsys))
	if err != nil {
		t.Fatal(err)
	}
	if !db.Journaled() {
		t.Fatal("Journaled() false on a journal-backed DB")
	}
	mutate(t, db)
	want := canon(t, db)
	if err := db.CloseJournal(); err != nil {
		t.Fatal(err)
	}

	db2, err := metadb.OpenJournal(journalOpts(fsys))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.CloseJournal()
	if got := canon(t, db2); got != want {
		t.Fatalf("replayed state differs:\n got %s\nwant %s", got, want)
	}
	st, ok := db2.JournalStats()
	if !ok || st.ReplayRecords == 0 {
		t.Fatalf("replay stats %+v, ok %t", st, ok)
	}
}

func TestCheckpointCompactsAndPreservesState(t *testing.T) {
	fsys := faultfs.New()
	db, err := metadb.OpenJournal(journalOpts(fsys))
	if err != nil {
		t.Fatal(err)
	}
	mutate(t, db)
	want := canon(t, db)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st, _ := db.JournalStats()
	if st.Compactions != 1 || st.SnapshotSeq == 0 {
		t.Fatalf("post-checkpoint stats %+v", st)
	}
	// Mutations after the checkpoint replay on top of the snapshot.
	if err := db.PutRun(nil, metadb.Run{ID: "r2", App: "astro3d", User: "shen", Iterations: 1, Procs: 1}); err != nil {
		t.Fatal(err)
	}
	want2 := canon(t, db)
	if want2 == want {
		t.Fatal("post-checkpoint mutation changed nothing")
	}
	if err := db.CloseJournal(); err != nil {
		t.Fatal(err)
	}

	db2, err := metadb.OpenJournal(journalOpts(fsys))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.CloseJournal()
	if got := canon(t, db2); got != want2 {
		t.Fatalf("replay after checkpoint differs:\n got %s\nwant %s", got, want2)
	}
	if st, _ := db2.JournalStats(); st.ReplayRecords != 1 {
		t.Fatalf("replayed %d records, want 1 (the post-snapshot PutRun)", st.ReplayRecords)
	}
}

func TestJournalReplayFailsClosedOnCorruption(t *testing.T) {
	fsys := faultfs.New()
	db, err := metadb.OpenJournal(journalOpts(fsys))
	if err != nil {
		t.Fatal(err)
	}
	mutate(t, db)
	if err := db.CloseJournal(); err != nil {
		t.Fatal(err)
	}
	// Remove the first of the (rotated) segments: acknowledged history
	// is missing, so replay must refuse rather than serve partial state.
	if err := fsys.Remove("journal/seg-00000001.wal"); err != nil {
		t.Fatal(err)
	}
	if _, err := metadb.OpenJournal(journalOpts(fsys)); !errors.Is(err, wal.ErrCorrupt) {
		t.Fatalf("open over gutted journal: %v, want ErrCorrupt", err)
	}
}

// TestSaveAtomicUnderCrash is the regression test for the non-durable
// Save this package used to ship (write to tmp, rename, no fsync of
// either the file or the parent directory): at every crash point and
// under every crash mode, the saved database must read back as a
// complete old or new version, never torn and never silently missing
// once overwritten.
func TestSaveAtomicUnderCrash(t *testing.T) {
	for point := 1; point <= 14; point++ {
		for _, mode := range faultfs.Modes() {
			fsys := faultfs.New()
			old := metadb.New()
			if err := old.PutRun(nil, metadb.Run{ID: "old", App: "a", User: "u", Iterations: 1, Procs: 1}); err != nil {
				t.Fatal(err)
			}
			if err := old.SaveFS(fsys, "db/meta.json"); err != nil {
				t.Fatal(err)
			}
			oldCanon := canon(t, old)

			next := metadb.New()
			if err := next.PutRun(nil, metadb.Run{ID: "new", App: "a", User: "u", Iterations: 2, Procs: 2}); err != nil {
				t.Fatal(err)
			}
			newCanon := canon(t, next)

			fsys.SetCrash(point)
			saveErr := next.SaveFS(fsys, "db/meta.json")

			rec := fsys.Recover(mode, int64(point)*31)
			got := metadb.New()
			if err := got.LoadFS(rec, "db/meta.json"); err != nil {
				t.Fatalf("point %d mode %s: recovered save unreadable: %v", point, mode, err)
			}
			switch c := canon(t, got); c {
			case oldCanon, newCanon:
			default:
				t.Fatalf("point %d mode %s: torn save: %s", point, mode, c)
			}
			if saveErr == nil && !fsys.Crashed() {
				if c := canon(t, got); mode != faultfs.DropUnsynced && c != newCanon {
					t.Fatalf("point %d mode %s: completed save lost", point, mode)
				}
			}
		}
	}
}

// TestJournaledMutationsSurviveDropUnsynced crashes the filesystem at
// every early crash point during a journaled mutation stream and checks
// that drop-unsynced recovery (the harshest mode) replays cleanly — the
// acked-prefix invariant itself is asserted exhaustively by the
// experiments crash matrix; this is the metadb-local smoke version.
func TestJournaledMutationsSurviveDropUnsynced(t *testing.T) {
	for point := 1; point <= 40; point += 3 {
		fsys := faultfs.New()
		db, err := metadb.OpenJournal(journalOpts(fsys))
		if err != nil {
			t.Fatal(err)
		}
		fsys.SetCrash(point)
		for i := 0; i < 10; i++ {
			if err := db.PutRun(nil, metadb.Run{ID: "r", App: "a", User: "u", Iterations: i, Procs: 1}); err != nil {
				break
			}
		}
		rec := fsys.Recover(faultfs.DropUnsynced, int64(point))
		db2, err := metadb.OpenJournal(journalOpts(rec))
		if err != nil {
			t.Fatalf("point %d: replay failed: %v", point, err)
		}
		db2.CloseJournal()
	}
}
