package experiments

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/device"
	"repro/internal/memfs"
	"repro/internal/model"
	"repro/internal/qos"
	"repro/internal/srb"
	"repro/internal/srbnet"
	"repro/internal/storage"
	"repro/internal/tape"
	"repro/internal/vtime"
)

// ------------------------------------------------------------------
// QoS: the multi-tenant scheduler's two headline wins, each measured
// against the FIFO ablation (same queue plumbing, no fairness, no
// batching).
//
// Fair-share isolation: a greedy tenant keeps the single remote-disk
// channel saturated with bulk writes while an interactive tenant
// issues small reads — the paper's viewer-next-to-Astro3D scenario.
// Under FIFO every interactive read waits behind the greedy backlog;
// under predictor-priced DRR the interactive tenant's high weight lets
// each read overtake the queue, so its p95 latency collapses to one
// residual greedy transfer.  Latency is virtual time: the sim runs in
// scaled mode so grant order controls device acquisition order exactly
// as it would on real hardware.
//
// Tape batching: 24 archived files striped over ~6 cartridges are
// re-read in a deterministically shuffled order by 24 concurrent
// requests.  FIFO replays the shuffle and thrashes the 2-drive
// library's mounts; the batch lane groups queued reads by cartridge
// and orders them by tape position, so the robot mounts each cartridge
// about once.

// QoSResult holds both parts of the experiment.
type QoSResult struct {
	// Fair-share isolation part.
	Feeders          int           // greedy writer goroutines
	GreedyBytes      int           // bytes per greedy write
	InteractiveOps   int           // measured interactive reads
	InteractiveBytes int           // bytes per interactive read
	FIFOP95          time.Duration // interactive p95, FIFO ablation
	QoSP95           time.Duration // interactive p95, DRR scheduler

	// Tape batching part.
	TapeFiles     int   // archived files re-read
	TapeFileBytes int   // bytes per file
	Cartridges    int   // cartridges holding them
	FIFOMounts    int64 // robot mounts for the re-read, FIFO ablation
	BatchMounts   int64 // robot mounts for the re-read, batch lane
	Batches       int64 // batches the lane formed
	Batched       int64 // requests served through batches
}

// Isolation is the interactive tenant's p95 improvement factor.
func (r QoSResult) Isolation() float64 {
	if r.QoSP95 <= 0 {
		return 0
	}
	return r.FIFOP95.Seconds() / r.QoSP95.Seconds()
}

// MountWin is the tape mount reduction factor.
func (r QoSResult) MountWin() float64 {
	if r.BatchMounts <= 0 {
		return 0
	}
	return float64(r.FIFOMounts) / float64(r.BatchMounts)
}

// QoS runs both parts, each once with the FIFO ablation and once with
// the scheduler proper, in fresh environments.  scale is accepted for
// registry uniformity; the workload is fixed-size (it measures the
// scheduler, not the solver).
func QoS(scale Scale) (QoSResult, error) {
	res := QoSResult{
		Feeders: 24, GreedyBytes: 512 << 10,
		InteractiveOps: 12, InteractiveBytes: 16 << 10,
		TapeFiles: 24, TapeFileBytes: 128 << 10,
	}

	// The predictor pricing the DRR costs comes from a standard PTool
	// sweep (virtual time, instant); only the curves are reused.
	env, err := NewEnv()
	if err != nil {
		return res, err
	}
	pricer := qos.PredictPricer(env.PDB)

	if res.FIFOP95, err = qosFairnessRun(res, pricer, true); err != nil {
		return res, err
	}
	if res.QoSP95, err = qosFairnessRun(res, pricer, false); err != nil {
		return res, err
	}

	if res.FIFOMounts, _, _, err = qosTapeRun(res, true); err != nil {
		return res, err
	}
	var st qos.Stats
	if res.BatchMounts, res.Cartridges, st, err = qosTapeRun(res, false); err != nil {
		return res, err
	}
	res.Batches, res.Batched = st.Batches, st.Batched
	return res, nil
}

// qosFairnessRun measures the interactive tenant's p95 read latency
// (virtual time) under a saturating greedy co-tenant.
func qosFairnessRun(res QoSResult, pricer qos.Pricer, fifo bool) (time.Duration, error) {
	// 1 virtual second = 1 wall millisecond: a 512 KiB remote write
	// (~2 s virtual) occupies the channel for ~2 ms of real time —
	// large against RPC transit and goroutine scheduling even under
	// the race detector's slowdown, so grant order genuinely is
	// acquisition order and only the in-flight transfer's residual
	// leaks into an overtaking read's latency.
	sim := vtime.NewScaled(1e-3)
	broker := srb.NewBroker()
	be, err := device.New(device.Config{
		Name: "sdsc-disk", Kind: storage.KindRemoteDisk,
		Params: model.RemoteDisk2000(), Store: memfs.New(), Channels: 1,
	})
	if err != nil {
		return 0, err
	}
	if err := broker.Register(be); err != nil {
		return 0, err
	}
	broker.AddUser("greedy", "pw")
	broker.AddUser("inter", "pw")
	sched, err := qos.New(qos.Config{
		Tenants:     map[string]int{"inter": 8, "greedy": 1},
		MaxInFlight: 1,
		Price:       pricer,
		FIFO:        fifo,
	})
	if err != nil {
		return 0, err
	}
	defer sched.Close()
	srv, err := srbnet.Serve("127.0.0.1:0", broker, sim, srbnet.WithScheduler(sched))
	if err != nil {
		return 0, err
	}
	defer srv.Close()
	srv.SetLogf(func(string, ...any) {})

	gClient := srbnet.NewClient(srv.Addr(), "greedy", "pw", "sdsc-disk", storage.KindRemoteDisk)
	defer gClient.Close()
	iClient := srbnet.NewClient(srv.Addr(), "inter", "pw", "sdsc-disk", storage.KindRemoteDisk)
	defer iClient.Close()

	// Interactive setup happens before the flood: create the small
	// file and hold a read handle.
	ip := sim.NewProc("inter")
	isess, err := iClient.Connect(ip)
	if err != nil {
		return 0, err
	}
	small := make([]byte, res.InteractiveBytes)
	wh, err := isess.Open(ip, "inter/hot", storage.ModeCreate)
	if err != nil {
		return 0, err
	}
	if _, err := wh.WriteAt(ip, small, 0); err != nil {
		return 0, err
	}
	if err := wh.Close(ip); err != nil {
		return 0, err
	}
	rh, err := isess.Open(ip, "inter/hot", storage.ModeRead)
	if err != nil {
		return 0, err
	}

	gp0 := sim.NewProc("greedy0")
	gsess, err := gClient.Connect(gp0)
	if err != nil {
		return 0, err
	}
	procs := make([]*vtime.Proc, res.Feeders)
	handles := make([]storage.Handle, res.Feeders)
	for i := range procs {
		procs[i] = sim.NewProc(fmt.Sprintf("greedy%d", i))
		h, err := gsess.Open(procs[i], fmt.Sprintf("greedy/f%d", i), storage.ModeCreate)
		if err != nil {
			return 0, err
		}
		handles[i] = h
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	ferrs := make([]error, res.Feeders)
	for i := range procs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			buf := make([]byte, res.GreedyBytes)
			for !stop.Load() {
				if _, err := handles[i].WriteAt(procs[i], buf, 0); err != nil {
					ferrs[i] = err
					return
				}
			}
		}(i)
	}

	// Measure once the greedy backlog is standing.
	minDepth := res.Feeders - 2
	waitDepth := func() {
		for sched.QueueDepth() < minDepth && !stop.Load() {
			time.Sleep(20 * time.Microsecond)
		}
	}
	lats := make([]time.Duration, 0, res.InteractiveOps)
	buf := make([]byte, res.InteractiveBytes)
	var rerr error
	for k := 0; k < res.InteractiveOps; k++ {
		waitDepth()
		before := ip.Now()
		if _, err := rh.ReadAt(ip, buf, 0); err != nil {
			rerr = err
			break
		}
		lats = append(lats, ip.Now()-before)
	}
	stop.Store(true)
	wg.Wait()
	if rerr != nil {
		return 0, rerr
	}
	for _, err := range ferrs {
		if err != nil {
			return 0, err
		}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	idx := (len(lats)*95 + 99) / 100
	if idx > 0 {
		idx--
	}
	return lats[idx], nil
}

// qosTapeOrder is the deterministic shuffle of the re-read: stride 7
// over 24 files alternates cartridges nearly every access, the worst
// case for a 2-drive LRU library replaying arrival order.
func qosTapeOrder(n int) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = (i * 7) % n
	}
	return order
}

// qosTapeRun archives the files, then re-reads them concurrently in
// the shuffled order and reports the robot mounts charged to the
// re-read, the cartridge count, and the batches formed.
func qosTapeRun(res QoSResult, fifo bool) (mounts int64, carts int, st qos.Stats, err error) {
	sim := vtime.NewScaled(1e-4)
	broker := srb.NewBroker()
	lib, err := tape.New(tape.Config{
		Name: "sdsc-hpss", Params: model.RemoteTape2000(), Store: memfs.New(),
		Drives: 2, CartridgeCapacity: int64(4 * res.TapeFileBytes),
	})
	if err != nil {
		return 0, 0, qos.Stats{}, err
	}
	if err := broker.Register(lib); err != nil {
		return 0, 0, qos.Stats{}, err
	}
	broker.AddUser("viewer", "pw")
	sched, err := qos.New(qos.Config{
		MaxInFlight: 1,
		Tape:        lib,
		FIFO:        fifo,
	})
	if err != nil {
		return 0, 0, qos.Stats{}, err
	}
	defer sched.Close()
	srv, err := srbnet.Serve("127.0.0.1:0", broker, sim, srbnet.WithScheduler(sched))
	if err != nil {
		return 0, 0, qos.Stats{}, err
	}
	defer srv.Close()
	srv.SetLogf(func(string, ...any) {})
	client := srbnet.NewClient(srv.Addr(), "viewer", "pw", "sdsc-hpss", storage.KindRemoteTape)
	defer client.Close()

	wp := sim.NewProc("archiver")
	wsess, err := client.Connect(wp)
	if err != nil {
		return 0, 0, qos.Stats{}, err
	}
	payload := make([]byte, res.TapeFileBytes)
	for i := 0; i < res.TapeFiles; i++ {
		h, err := wsess.Open(wp, fmt.Sprintf("batch/f%02d", i), storage.ModeCreate)
		if err != nil {
			return 0, 0, qos.Stats{}, err
		}
		if _, err := h.WriteAt(wp, payload, 0); err != nil {
			return 0, 0, qos.Stats{}, err
		}
		if err := h.Close(wp); err != nil {
			return 0, 0, qos.Stats{}, err
		}
	}
	writeMounts, carts, _ := lib.Stats()

	// Queue all 24 reads in the shuffled arrival order while the
	// scheduler is paused, so both disciplines see the identical queue.
	order := qosTapeOrder(res.TapeFiles)
	sched.Pause()
	var wg sync.WaitGroup
	rerrs := make([]error, res.TapeFiles)
	type wf interface {
		GetFile(p *vtime.Proc, name string) ([]byte, error)
	}
	getter, ok := wsess.(wf)
	if !ok {
		return 0, 0, qos.Stats{}, fmt.Errorf("qos experiment: session is not a whole-filer")
	}
	for k := 0; k < res.TapeFiles; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			// Serialize arrival: k-th request enqueues once the k
			// previous ones are queued.
			for sched.QueueDepth() != k {
				time.Sleep(20 * time.Microsecond)
			}
			p := sim.NewProc(fmt.Sprintf("reader%d", k))
			data, err := getter.GetFile(p, fmt.Sprintf("batch/f%02d", order[k]))
			if err == nil && len(data) != res.TapeFileBytes {
				err = fmt.Errorf("short read: %d of %d bytes", len(data), res.TapeFileBytes)
			}
			rerrs[k] = err
		}(k)
	}
	// All queued (depth == TapeFiles) before any grant.
	for sched.QueueDepth() != res.TapeFiles {
		time.Sleep(20 * time.Microsecond)
	}
	sched.Resume()
	wg.Wait()
	for _, err := range rerrs {
		if err != nil {
			return 0, 0, qos.Stats{}, err
		}
	}
	total, carts, _ := lib.Stats()
	return total - writeMounts, carts, sched.Stats(), nil
}

// QoSString renders the experiment report.
func QoSString(r QoSResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "fair share: %d greedy writers × %d KiB vs interactive %d KiB reads (×%d)\n",
		r.Feeders, r.GreedyBytes>>10, r.InteractiveBytes>>10, r.InteractiveOps)
	fmt.Fprintf(&b, "  interactive p95: fifo %8.2f s   qos %8.2f s   (%.1f× isolation)\n",
		r.FIFOP95.Seconds(), r.QoSP95.Seconds(), r.Isolation())
	fmt.Fprintf(&b, "tape batching: %d files × %d KiB over %d cartridges, shuffled re-read\n",
		r.TapeFiles, r.TapeFileBytes>>10, r.Cartridges)
	fmt.Fprintf(&b, "  robot mounts: fifo %d   qos %d   (%.1f× fewer; %d batches)\n",
		r.FIFOMounts, r.BatchMounts, r.MountWin(), r.Batches)
	return b.String()
}
