package experiments

import (
	"strings"
	"testing"
)

// TestClusterExperiment runs all three clustered-broker legs at test
// scale and asserts the acceptance gate: no acked mutation lost,
// survivor replicas byte-identical, the fencing window exercised, the
// admission budget re-leased whole, and the sharded run at least 2×
// the single broker.  This is the test CI's cluster-smoke job runs
// under -race.
func TestClusterExperiment(t *testing.T) {
	res, err := Cluster(TestScale())
	if err != nil {
		t.Fatal(err)
	}
	if res.AckedMutations == 0 {
		t.Error("failover leg acked no mutations")
	}
	if res.LostAcked != 0 {
		t.Errorf("%d acked mutations lost on survivors", res.LostAcked)
	}
	if res.DumpMismatches != 0 {
		t.Errorf("%d survivor canonical-dump mismatches", res.DumpMismatches)
	}
	if res.FailoverRetries == 0 {
		t.Error("fencing window was never exercised")
	}
	if res.SurvivorBudget != res.QueueBudget {
		t.Errorf("survivor leases sum to %d, want the full %d budget",
			res.SurvivorBudget, res.QueueBudget)
	}
	// The wall-clock ratio gates only hold when wall time tracks the
	// scaled device waits; under -race the detector's instrumentation
	// dominates the wire path instead, so the ratios are meaningless
	// and only the correctness legs are asserted.
	if raceEnabled {
		t.Log("race detector on: skipping wall-clock ratio gates")
		return
	}
	// The degeneration leg is wall clock and therefore noisy; assert
	// only that the one-address cluster is in the same regime as the
	// direct client, not an integer multiple of it.
	if x := res.SingleOverDirect(); x <= 0 || x > 3 {
		t.Errorf("one-address cluster costs %.2fx the direct client", x)
	}
	if x := res.ShardedSpeedup(); x < 2 {
		t.Errorf("sharded speedup %.2fx below the 2x gate (single %v, sharded %v)",
			x, res.SingleBroker, res.Sharded)
	}
	if !ClusterOK(res) {
		t.Error("ClusterOK gate failed")
	}
	out := ClusterString(res)
	for _, want := range []string{"failover:", "budgets:", "degeneration:", "scale-out:"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
