package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/model"
)

// ratio returns measured/predicted.
func ratio(meas, pred float64) float64 {
	if pred == 0 {
		return math.Inf(1)
	}
	return meas / pred
}

func TestEnvSetup(t *testing.T) {
	env, err := NewEnv()
	if err != nil {
		t.Fatal(err)
	}
	if len(env.Reports) != 3 {
		t.Fatalf("ptool reports = %d", len(env.Reports))
	}
	table1 := env.Meta.Table1String()
	for _, want := range []string{"localdisk", "remotedisk", "remotetape"} {
		if !strings.Contains(table1, want) {
			t.Fatalf("Table 1 missing %s:\n%s", want, table1)
		}
	}
}

func TestFig678Shapes(t *testing.T) {
	env, err := NewEnv()
	if err != nil {
		t.Fatal(err)
	}
	// Figures 6–8: local ≪ remote disk ≪ tape, for both ops, at the
	// largest size.
	last := func(i int, read bool) float64 {
		pts := env.Reports[i].Write
		if read {
			pts = env.Reports[i].Read
		}
		return pts[len(pts)-1].Seconds
	}
	for _, read := range []bool{false, true} {
		if !(last(0, read) < last(1, read) && last(1, read) < last(2, read)) {
			t.Fatalf("fig 6/7/8 ordering violated (read=%v): %v %v %v",
				read, last(0, read), last(1, read), last(2, read))
		}
	}
	if env.Reports[0].EffectiveBW(model.Write) < 10*model.MiB {
		t.Fatalf("local disk too slow: %v B/s", env.Reports[0].EffectiveBW(model.Write))
	}
}

func TestFig9ScenarioShape(t *testing.T) {
	scale := TestScale()
	rows, err := Fig9(scale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Shape claims of figure 9:
	// (1) all-to-tape is the most expensive;
	// (2) moving temp to remote disk is slightly cheaper;
	// (3) dumping only temp+press is far cheaper than (1);
	// (4) vr_temp to local disk is slightly cheaper than (1);
	// (5) is the cheapest of all.
	m := func(i int) float64 { return rows[i-1].Measured.Seconds() }
	if !(m(2) < m(1)) {
		t.Fatalf("scenario 2 (%v) not cheaper than 1 (%v)", m(2), m(1))
	}
	if !(m(4) < m(1)) {
		t.Fatalf("scenario 4 (%v) not cheaper than 1 (%v)", m(4), m(1))
	}
	if !(m(3) < m(1)/5) {
		t.Fatalf("scenario 3 (%v) not ≪ scenario 1 (%v)", m(3), m(1))
	}
	if !(m(5) < m(3)) {
		t.Fatalf("scenario 5 (%v) not cheapest (3 = %v)", m(5), m(3))
	}
	// Prediction accuracy: the paper reports close agreement; at test
	// scale the constants dominate, so accept ±30%.
	for _, row := range rows {
		r := ratio(row.Measured.Seconds(), row.Predicted.Seconds())
		if r < 0.7 || r > 1.3 {
			t.Fatalf("scenario %d: measured %v vs predicted %v (ratio %.2f)",
				row.Scenario, row.Measured, row.Predicted, r)
		}
	}
}

func TestFig10aShape(t *testing.T) {
	rows, err := Fig10a(TestScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	tape, disk := rows[0], rows[1]
	if disk.Measured*2 > tape.Measured {
		t.Fatalf("remote disk read %v not ≪ tape read %v", disk.Measured, tape.Measured)
	}
	for _, row := range rows {
		r := ratio(row.Measured.Seconds(), row.Predicted.Seconds())
		if r < 0.6 || r > 1.6 {
			t.Fatalf("%s: measured %v vs predicted %v", row.Config, row.Measured, row.Predicted)
		}
	}
}

func TestFig10bShape(t *testing.T) {
	rows, err := Fig10b(TestScale())
	if err != nil {
		t.Fatal(err)
	}
	tape, local := rows[0], rows[1]
	// The paper: "the total read time is 10 times faster than from
	// tapes"; at any scale tape must lose badly.
	if local.Measured*5 > tape.Measured {
		t.Fatalf("local read %v not ≪ tape read %v", local.Measured, tape.Measured)
	}
}

func TestFig10cSuperfileWins(t *testing.T) {
	rows, err := Fig10c(TestScale())
	if err != nil {
		t.Fatal(err)
	}
	perFile, superfile := rows[0], rows[1]
	if superfile.Measured*2 > perFile.Measured {
		t.Fatalf("superfile %v not ≪ per-file %v", superfile.Measured, perFile.Measured)
	}
}

func TestFig11Table(t *testing.T) {
	env, err := NewEnv()
	if err != nil {
		t.Fatal(err)
	}
	rp, err := Fig11(env, PaperScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rp.Datasets) != 19 {
		t.Fatalf("fig 11 rows = %d, want 19", len(rp.Datasets))
	}
	byName := map[string]float64{}
	for _, d := range rp.Datasets {
		byName[d.Name] = d.VirtualTime.Seconds()
	}
	// The paper's figure 11 values at full scale.
	checks := map[string]float64{
		"press":   3036.34, // 8 MiB float on tape
		"temp":    812.45,  // 8 MiB float on remote disk
		"vr_temp": 932.98,  // 2 MiB uchar on tape
	}
	for name, want := range checks {
		got := byName[name]
		if r := got / want; r < 0.8 || r > 1.2 {
			t.Fatalf("fig11 %s = %.1f s, want ≈%.1f (±20%%)", name, got, want)
		}
	}
	if !strings.Contains(rp.TableString(), "vr_logrho") {
		t.Fatal("table missing datasets")
	}
}

func TestWorkedExampleAgreement(t *testing.T) {
	pred, meas, err := WorkedExample(TestScale())
	if err != nil {
		t.Fatal(err)
	}
	r := ratio(meas.Seconds(), pred.Seconds())
	// The paper: predicted 180.57 vs actual ≈197.4 (measured ≈9% above).
	if r < 0.75 || r > 1.35 {
		t.Fatalf("measured %v vs predicted %v (ratio %.2f)", meas, pred, r)
	}
}

// Full-scale worked example: compare directly against the paper's
// numbers (predicted 180.57 s, measured ≈197.4 s).
func TestWorkedExamplePaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full 128³ run")
	}
	pred, meas, err := WorkedExample(PaperScale())
	if err != nil {
		t.Fatal(err)
	}
	if r := pred.Seconds() / 180.57; r < 0.8 || r > 1.2 {
		t.Fatalf("predicted %.2f s, paper 180.57 s", pred.Seconds())
	}
	if r := meas.Seconds() / 197.4; r < 0.8 || r > 1.2 {
		t.Fatalf("measured %.2f s, paper ≈197.4 s", meas.Seconds())
	}
}

func TestFailover(t *testing.T) {
	res, err := Failover(TestScale())
	if err != nil {
		t.Fatal(err)
	}
	if res.WriteError != nil {
		t.Fatalf("run failed during tape outage: %v", res.WriteError)
	}
	if res.PlacedOn != "remotedisk" {
		t.Fatalf("placed on %q, want remotedisk", res.PlacedOn)
	}
	if res.IOTime <= 0 {
		t.Fatal("no I/O recorded")
	}
}

func TestTable2String(t *testing.T) {
	s := Table2String(PaperScale())
	for _, want := range []string{"128x128x128", "120", "Float", "Unsigned Char"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Table 2 missing %q:\n%s", want, s)
		}
	}
}

func TestScaleDumps(t *testing.T) {
	if PaperScale().Dumps() != 21 {
		t.Fatalf("paper dumps = %d, want 21", PaperScale().Dumps())
	}
	if TestScale().Dumps() != 3 {
		t.Fatalf("test dumps = %d", TestScale().Dumps())
	}
}

func TestFig9BadScenario(t *testing.T) {
	if _, err := Fig9One(TestScale(), 9); err == nil {
		t.Fatal("scenario 9 accepted")
	}
}

func TestCollectiveAblationManyTimesSlower(t *testing.T) {
	coll, naive, err := CollectiveAblation(TestScale())
	if err != nil {
		t.Fatal(err)
	}
	// The paper: "Without collective I/O, it would be many times slower."
	if naive < 5*coll {
		t.Fatalf("naive %v vs collective %v: want ≥5×", naive, coll)
	}
}
