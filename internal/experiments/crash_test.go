package experiments

import (
	"strings"
	"testing"
)

// TestCrashMatrixRecovers runs the full crash-point matrix at test
// scale and asserts every recovery satisfies the durability invariants:
// replay succeeds, the state equals an acked prefix (± one in-flight
// mutation), snapshots are never torn, and adopted cache entries match
// their home bytes.
func TestCrashMatrixRecovers(t *testing.T) {
	rows, err := Crash(TestScale(), 12, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("want one row per crash mode, got %d", len(rows))
	}
	for _, r := range rows {
		if r.Fired != r.Points {
			t.Errorf("%s: only %d/%d crash points fired", r.Mode, r.Fired, r.Points)
		}
		if v := r.Violations(); v != 0 {
			t.Errorf("%s: %d invariant violations:\n%s", r.Mode, v, CrashString(rows))
		}
	}
	if !CrashOK(rows) {
		t.Fatalf("CrashOK false:\n%s", CrashString(rows))
	}
	if s := CrashString(rows); !strings.Contains(s, "consistent state") {
		t.Fatalf("CrashString verdict line missing:\n%s", s)
	}
}

// TestCrashCleanRunNotVacuous checks that the disarmed workload really
// exercises staging, journaling and snapshots — Crash would reject a
// vacuous workload, so a successful run at one point suffices.
func TestCrashCleanRunNotVacuous(t *testing.T) {
	rows, err := Crash(TestScale(), 1, 99)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, r := range rows {
		total += r.Points
	}
	if total != len(rows) {
		t.Fatalf("want 1 point per mode, got %d over %d modes", total, len(rows))
	}
}
