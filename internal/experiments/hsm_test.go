package experiments

import (
	"strings"
	"testing"
)

// TestHSMBeatsBaseline runs the full experiment — baseline leg, engine
// leg and crash matrix — at test scale and asserts the acceptance
// gate: equal correctness, a mount and hit-rate win, recalls inside
// the deadline bound, and a clean crash matrix.  This is the test CI's
// hsm-smoke job runs under -race.
func TestHSMBeatsBaseline(t *testing.T) {
	res, err := HSM(TestScale(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mismatches != 0 {
		t.Errorf("%d byte mismatches across legs", res.Mismatches)
	}
	if res.MountWin() <= 1 {
		t.Errorf("mount win %.2f× not above 1 (baseline %.2f vs hsm %.2f mounts/day)",
			res.MountWin(), res.BaseMountsPerDay, res.HSMMountsPerDay)
	}
	if res.HSMHitRate <= res.BaseHitRate {
		t.Errorf("hsm hit rate %.3f not above baseline %.3f", res.HSMHitRate, res.BaseHitRate)
	}
	if res.Migrations == 0 || res.Recalls == 0 || res.GCPurged == 0 {
		t.Errorf("vacuous lifecycle: %d migrations, %d recalls, %d purged",
			res.Migrations, res.Recalls, res.GCPurged)
	}
	if !(res.RecallP95 > 0 && res.RecallP95 <= res.RecallBound) {
		t.Errorf("recall p95 %v outside (0, %v]", res.RecallP95, res.RecallBound)
	}
	if res.CrashFired() != res.CrashPoints() || res.CrashViolations() != 0 {
		t.Errorf("crash matrix: %d/%d fired, %d violations",
			res.CrashFired(), res.CrashPoints(), res.CrashViolations())
	}
	if !HSMOK(res) {
		t.Fatalf("HSMOK false:\n%s", HSMString(res))
	}
	if s := HSMString(res); !strings.Contains(s, "crash-safe") {
		t.Fatalf("HSMString verdict line missing:\n%s", s)
	}
}

// TestHSMScheduleDeterministic pins that both legs replay the exact
// same operation stream: the schedule depends only on its arguments.
func TestHSMScheduleDeterministic(t *testing.T) {
	a, bornA, readsA, removesA := hsmSchedule(14, 3, 10, 42)
	b, bornB, readsB, removesB := hsmSchedule(14, 3, 10, 42)
	if bornA != bornB || readsA != readsB || removesA != removesB {
		t.Fatalf("counters differ: (%d,%d,%d) vs (%d,%d,%d)",
			bornA, readsA, removesA, bornB, readsB, removesB)
	}
	for d := range a {
		if len(a[d]) != len(b[d]) {
			t.Fatalf("day %d length differs", d)
		}
		for i := range a[d] {
			if a[d][i] != b[d][i] {
				t.Fatalf("day %d op %d differs: %+v vs %+v", d, i, a[d][i], b[d][i])
			}
		}
	}
}
