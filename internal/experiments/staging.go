package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/apps/astro3d"
	"repro/internal/apps/mse"
	"repro/internal/core"
	"repro/internal/predict"
	"repro/internal/sched"
	"repro/internal/stage"
)

// ------------------------------------------------------------------
// Staging: the prediction-driven staging engine against direct tape
// access.  Astro3D archives temp on the remote tapes; the MSE analysis
// then reads every dump back twice (the paper's pipeline visits each
// dump from both the analysis and the visualization side).  Without
// staging both passes pay tape latency; with the engine the first pass
// stages each instance onto the local disks and the second is served
// from the cache, so archival capacity costs near-local access time.

// StagingRow is one configuration of the staging experiment.
type StagingRow struct {
	Config string
	Staged bool

	// Pass1/Pass2 are the two read passes' measured I/O times;
	// Pred1/Pred2 the eq. (2) predictions for the same passes.
	Pass1, Pass2 time.Duration
	Pred1, Pred2 time.Duration

	// SuggestedMaxRunTime is what the batch-queue helper would request
	// for the two passes given the prediction.
	SuggestedMaxRunTime time.Duration

	// Cache-traffic counters (zero for the direct configuration).
	Hits, Misses, StagedIn, Evictions int64
	HitRate                           float64
	BytesStagedIn, BytesWrittenBack   int64
	PeakUsed, Budget                  int64
}

// Staging runs the pipeline once directly and once through the staging
// engine, in fresh environments.
func Staging(scale Scale) ([]StagingRow, error) {
	rows := make([]StagingRow, 0, 2)
	for _, staged := range []bool{false, true} {
		row, err := stagingOne(scale, staged)
		if err != nil {
			return rows, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func stagingOne(scale Scale, staged bool) (StagingRow, error) {
	env, err := NewEnv()
	if err != nil {
		return StagingRow{}, err
	}
	// The producer archives temp on the tapes, writing directly: the
	// experiment isolates the consumer-side staging benefit.
	prm := scale.params()
	prm.VizFreq, prm.CheckpointFreq = 0, 0
	prm.Locations = map[string]core.Location{"temp": core.LocRemoteTape}
	prm.DefaultLocation = core.LocDisable
	if _, err := astro3d.Run(env.Sys, "prod", prm); err != nil {
		return StagingRow{}, err
	}

	size := int64(scale.N) * int64(scale.N) * int64(scale.N) * 4
	row := StagingRow{Config: "direct tape reads", Staged: staged}
	consumerSys := env.Sys
	var mgr *stage.Manager
	if staged {
		row.Config = "staged via local disks"
		mgr, err = stage.New(stage.Config{
			Sim:   env.Sim,
			Cache: env.Local,
			// The budget holds the whole working set, so the acceptance
			// question is hit rate, not thrash.
			Budget:        int64(scale.Dumps()) * size,
			PDB:           env.PDB,
			ExpectedReads: 2,
			PrefetchDepth: 4,
		})
		if err != nil {
			return StagingRow{}, err
		}
		defer mgr.Close()
		// A second System over the same resources, meta-data and time
		// domain, with dataset I/O redirected through the engine.
		consumerSys, err = core.NewSystem(core.SystemConfig{
			Sim: env.Sim, Meta: env.Meta,
			LocalDisk: env.Local, RemoteDisk: env.RDisk, RemoteTape: env.RTape,
			Stager: mgr,
		})
		if err != nil {
			return StagingRow{}, err
		}
	}

	for pass, id := range []string{"mse-a", "mse-b"} {
		env.ResetClocks()
		if mgr != nil {
			mgr.WaitPrefetch()
			mgr.ResetClocks()
		}
		res, err := mse.Run(consumerSys, id, mse.Params{
			ProducerRun: "prod", Dataset: "temp",
			Iterations: scale.MaxIter, Procs: scale.Procs,
		})
		if err != nil {
			return StagingRow{}, fmt.Errorf("staging %s: %w", id, err)
		}
		if pass == 0 {
			row.Pass1 = res.IOTime
		} else {
			row.Pass2 = res.IOTime
		}
	}

	// Predictions for the same two passes.
	req := predict.DatasetReq{
		Name: "temp", AMode: "read",
		Dims: []int{scale.N, scale.N, scale.N}, Etype: 4,
		Pattern: "B**", Location: "remotetape",
		Frequency: scale.Freq, Procs: scale.Procs,
	}
	direct, err := env.PDB.Predict(predict.RunReq{
		Iterations: scale.MaxIter, Op: "read", Datasets: []predict.DatasetReq{req},
	})
	if err != nil {
		return StagingRow{}, err
	}
	row.Pred1, row.Pred2 = direct.Total, direct.Total
	if mgr != nil {
		first, hit, err := mgr.PredictStagedRead(req, scale.MaxIter)
		if err != nil {
			return StagingRow{}, err
		}
		row.Pred1, row.Pred2 = first, hit
		st := mgr.Stats()
		row.Hits, row.Misses, row.StagedIn, row.Evictions = st.Hits, st.Misses, st.StagedIn, st.Evictions
		row.HitRate = st.HitRate()
		row.BytesStagedIn, row.BytesWrittenBack = st.BytesStagedIn, st.BytesWrittenBack
		row.PeakUsed, row.Budget = st.PeakUsed, st.Budget
	}
	row.SuggestedMaxRunTime, err = sched.SuggestMaxRunTime(row.Pred1+row.Pred2, 0, 0.15)
	if err != nil {
		return StagingRow{}, err
	}
	return row, nil
}

// StagingString renders the staging experiment.
func StagingString(rows []StagingRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %10s %10s %10s %10s %7s %10s %12s %10s\n",
		"CONFIG", "PASS1(s)", "PASS2(s)", "PRED1(s)", "PRED2(s)", "HITRATE", "STAGED-IN", "BYTES-MOVED", "MAXRUN(s)")
	for _, r := range rows {
		bytesMoved := r.BytesStagedIn + r.BytesWrittenBack
		fmt.Fprintf(&b, "%-24s %10.3f %10.3f %10.3f %10.3f %6.0f%% %10d %12d %10.0f\n",
			r.Config, r.Pass1.Seconds(), r.Pass2.Seconds(),
			r.Pred1.Seconds(), r.Pred2.Seconds(),
			100*r.HitRate, r.StagedIn, bytesMoved,
			r.SuggestedMaxRunTime.Seconds())
	}
	return b.String()
}
