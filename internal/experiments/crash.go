package experiments

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/faultfs"
	"repro/internal/localdisk"
	"repro/internal/memfs"
	"repro/internal/metadb"
	"repro/internal/remotedisk"
	"repro/internal/stage"
	"repro/internal/storage"
	"repro/internal/vfs"
	"repro/internal/vtime"
	"repro/internal/wal"
)

// ------------------------------------------------------------------
// Crash: a mixed metadb+staging workload dies at a randomized mutating
// operation (write, fsync, rename, directory sync — faultfs numbers
// them all), the filesystem image is recovered under each crash mode
// (drop-unsynced, keep-unsynced, torn-writes), and the broker state is
// replayed.  The invariants asserted after every recovery are the
// paper-level trust contract for the meta-data repository:
//
//  1. the journal replays without error (ErrCorrupt never escapes a
//     crash the durability model permits),
//  2. the replayed database equals the acknowledged mutation history
//     exactly, or that history plus the single in-flight mutation —
//     no acked row lost, no partial row visible,
//  3. a recovered metadb JSON snapshot, when present, byte-matches one
//     atomically written version (never a torn mixture),
//  4. every cache entry a restarted staging manager adopts from the
//     recovered manifest byte-matches its home-tier instance.

// CrashRow aggregates one crash mode's trials.
type CrashRow struct {
	Mode   string
	Points int // crash points exercised
	Fired  int // trials where the armed crash actually fired

	Replays   int // successful post-crash journal replays
	TornTails int // recoveries that truncated a torn journal tail
	Adopted   int // cache entries re-adopted from recovered manifests

	// The gates: all must stay zero.
	ReplayFailures     int // journal replay returned an error
	StateViolations    int // replayed state matched no acked prefix
	SnapshotViolations int // recovered metadb snapshot torn or unaccounted
	ManifestViolations int // adopted cache entry differed from its home bytes
}

// Violations sums the row's invariant failures.
func (r CrashRow) Violations() int {
	return r.ReplayFailures + r.StateViolations + r.SnapshotViolations + r.ManifestViolations
}

// CrashOK reports whether every trial in every mode recovered to a
// consistent state (and that the matrix actually crashed something).
func CrashOK(rows []CrashRow) bool {
	for _, r := range rows {
		if r.Violations() != 0 || r.Fired != r.Points {
			return false
		}
	}
	return len(rows) > 0
}

// crashJournalDir is the journal directory on the injected filesystem.
const crashJournalDir = "journal"

// crashSegBytes keeps journal segments tiny so the matrix exercises
// rotation and compaction, not just appends.
const crashSegBytes = 2048

// crashSnapPath is where the workload periodically saves the metadb
// JSON snapshot (the atomic-replace path under test).
const crashSnapPath = "db/meta.json"

// Crash runs the crash-point matrix: `points` uniformly sampled crash
// points per crash mode over the workload's mutating-operation budget.
// points <= 0 selects the default of 24.  The sampling is deterministic
// in seed.
func Crash(scale Scale, points int, seed int64) ([]CrashRow, error) {
	if points <= 0 {
		points = 24
	}
	// The clean run measures the op budget and proves the workload is
	// not vacuous (it stages, journals, checkpoints and saves).
	clean, err := crashOne(scale, faultfs.DropUnsynced, 0, seed)
	if err != nil {
		return nil, err
	}
	if clean.ops == 0 || clean.acked == 0 || clean.staged == 0 || clean.manifests == 0 {
		return nil, fmt.Errorf("crash: vacuous workload (ops %d, acked %d, staged %d, manifests %d)",
			clean.ops, clean.acked, clean.staged, clean.manifests)
	}
	if v := clean.violations(); v != 0 {
		return nil, fmt.Errorf("crash: clean run violated invariants (%d)", v)
	}
	rng := rand.New(rand.NewSource(seed))
	var rows []CrashRow
	for _, mode := range faultfs.Modes() {
		row := CrashRow{Mode: mode.String()}
		for j := 0; j < points; j++ {
			point := 1 + rng.Intn(clean.ops)
			t, err := crashOne(scale, mode, point, seed^int64(point)*7919+int64(j))
			if err != nil {
				return rows, err
			}
			row.Points++
			if t.fired {
				row.Fired++
			}
			if t.replayFailed {
				row.ReplayFailures++
			} else {
				row.Replays++
			}
			if t.tornTail {
				row.TornTails++
			}
			row.Adopted += t.adopted
			row.StateViolations += t.stateViolations
			row.SnapshotViolations += t.snapViolations
			row.ManifestViolations += t.manifestViolations
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// crashTrial is one run of the workload-crash-recover-verify cycle.
type crashTrial struct {
	ops       int // mutating ops the run performed (crash disarmed)
	fired     bool
	acked     int
	staged    int64
	manifests int
	adopted   int

	tornTail           bool
	replayFailed       bool
	stateViolations    int
	snapViolations     int
	manifestViolations int
}

func (t crashTrial) violations() int {
	n := t.stateViolations + t.snapViolations + t.manifestViolations
	if t.replayFailed {
		n++
	}
	return n
}

// crashMut is one deterministic metadb mutation.
type crashMut struct {
	desc string
	do   func(*metadb.DB) error
}

// crashMuts builds the mutation schedule: registrations, samples,
// constants and whole-curve rewrites, the full journaled surface.
func crashMuts(groups int) [][]crashMut {
	out := make([][]crashMut, groups)
	for i := 0; i < groups; i++ {
		i := i
		runID := fmt.Sprintf("run-%03d", i)
		g := []crashMut{
			{"putrun", func(db *metadb.DB) error {
				return db.PutRun(nil, metadb.Run{ID: runID, App: "astro3d", User: "shen", Iterations: 100 + i, Procs: 8})
			}},
			{"putdataset", func(db *metadb.DB) error {
				return db.PutDataset(nil, metadb.Dataset{
					RunID: runID, Name: "temp", AMode: "w", NDims: 3,
					Dims: []int{8 + i, 8, 8}, ETypeSize: 4, Pattern: "BBB",
					Location: "REMOTEDISK", Frequency: 6, Resource: "sdsc-disk",
					PathBase: runID,
				})
			}},
			{"addsample", func(db *metadb.DB) error {
				return db.AddSample(nil, metadb.PerfSample{
					Resource: "sdsc-disk", Op: "read",
					Size: int64(1024 << uint(i%8)), Seconds: 0.001 * float64(i+1),
				})
			}},
			{"setconstant", func(db *metadb.DB) error {
				return db.SetConstant(nil, metadb.PerfConstant{
					Resource: "sdsc-disk", Op: "read",
					Component: metadb.CompOpen, Seconds: 0.0001 * float64(i+1),
				})
			}},
		}
		if i%3 == 2 {
			// The calibration write-back path: replace a whole curve.
			samples := make([]metadb.PerfSample, 0, 3)
			for k := 0; k < 3; k++ {
				samples = append(samples, metadb.PerfSample{
					Size: int64(4096 << uint(k)), Seconds: 0.002 * float64(i+k+1),
				})
			}
			g = append(g, crashMut{"replacesamples", func(db *metadb.DB) error {
				return db.ReplaceSamples(nil, "sdsc-hpss", "write", samples)
			}})
		}
		out[i] = g
	}
	return out
}

// crashHomeContent is file i's deterministic home-tier bytes.
func crashHomeContent(i int) []byte {
	data := make([]byte, 1024+256*i)
	for j := range data {
		data[j] = byte(i*31 + j)
	}
	return data
}

// metadbCanon renders a database's canonical persisted form (sorted
// JSON), for state comparison.  The scratch filesystem is private and
// never crashes.
func metadbCanon(db *metadb.DB) (string, error) {
	scratch := faultfs.New()
	if err := db.SaveFS(scratch, "dump"); err != nil {
		return "", err
	}
	b, err := vfs.ReadFile(scratch, "dump")
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// crashReplayCanon applies the first n mutations to a fresh, journal-
// free database and canonicalizes it.
func crashReplayCanon(flat []crashMut, n int) (string, error) {
	db := metadb.New()
	for _, m := range flat[:n] {
		if err := m.do(db); err != nil {
			return "", fmt.Errorf("crash: shadow %s: %w", m.desc, err)
		}
	}
	return metadbCanon(db)
}

// crashOne runs the workload with a crash armed at the point-th
// mutating operation (0 = disarmed), recovers under mode, and verifies
// the invariants.  Returned errors are harness failures; invariant
// breaks are reported in the trial counters.
func crashOne(scale Scale, mode faultfs.CrashMode, point int, seed int64) (crashTrial, error) {
	var t crashTrial
	sim := vtime.NewVirtual()
	p := sim.NewProc("crash")

	// The home tier lives on plain memory — only the broker host (its
	// journal, snapshot and staging cache) crashes.
	home, err := remotedisk.New("sdsc-disk", memfs.New())
	if err != nil {
		return t, err
	}
	hsess, err := home.Connect(p)
	if err != nil {
		return t, err
	}
	groups := scale.Dumps()
	if groups < 8 {
		groups = 8
	}
	homeData := make(map[string][]byte, groups)
	for i := 0; i < groups; i++ {
		path := fmt.Sprintf("run/iter%06d", i)
		homeData[path] = crashHomeContent(i)
		if err := storage.PutFile(p, hsess, path, storage.ModeOverWrite, homeData[path]); err != nil {
			return t, err
		}
	}

	fsys := faultfs.New()
	db, err := metadb.OpenJournal(wal.Options{FS: fsys, Dir: crashJournalDir, SegmentBytes: crashSegBytes})
	if err != nil {
		return t, err
	}
	cache, err := localdisk.New("argonne-ssa", fsys.Store())
	if err != nil {
		return t, err
	}
	mgr, err := stage.New(stage.Config{Sim: sim, Cache: cache, Budget: 1 << 22})
	if err != nil {
		return t, err
	}
	defer mgr.Close()

	mutGroups := crashMuts(groups)
	var flat []crashMut
	for _, g := range mutGroups {
		flat = append(flat, g...)
	}

	// SetCrash counts from here, so the op budget the matrix samples
	// from must exclude the deterministic setup above.
	base := fsys.Ops()
	fsys.SetCrash(point)

	// The sequential workload.  acked counts metadb mutations whose
	// journal barrier completed; attempted additionally counts the one
	// in flight when the crash hit.  snapCanons collects the canonical
	// state at every snapshot-save attempt — atomic replace guarantees
	// the recovered file matches one of them (or the save never became
	// durable and the file is absent).
	attempted := 0
	var snapCanons []string
	savedOnce := false
work:
	for i := 0; i < groups; i++ {
		for _, m := range mutGroups[i] {
			attempted++
			if err := m.do(db); err != nil {
				if !fsys.Crashed() {
					return t, fmt.Errorf("crash: %s: %w", m.desc, err)
				}
				break work
			}
			t.acked++
		}
		pl := mgr.StageRead(p, home, hsess, fmt.Sprintf("run/iter%06d", i), int64(len(crashHomeContent(i))))
		if pl.Staged {
			t.staged++
		}
		pl.Release()
		if fsys.Crashed() {
			break
		}
		if i%3 == 2 {
			if err := mgr.SaveManifest(p); err != nil {
				if !fsys.Crashed() {
					return t, err
				}
				break
			}
			t.manifests++
		}
		if i%4 == 3 {
			canon, err := metadbCanon(db)
			if err != nil {
				return t, err
			}
			snapCanons = append(snapCanons, canon)
			if err := db.SaveFS(fsys, crashSnapPath); err != nil {
				if !fsys.Crashed() {
					return t, err
				}
				break
			}
			savedOnce = true
		}
		if i%5 == 4 {
			if err := db.Checkpoint(); err != nil {
				if !fsys.Crashed() {
					return t, err
				}
				break
			}
		}
	}
	if !fsys.Crashed() {
		// Clean completion path: checkpoint and close like srbd does.
		// The armed crash can still fire inside these — that is a
		// legitimate trial, not a harness failure.
		if err := db.Checkpoint(); err != nil && !fsys.Crashed() {
			return t, err
		}
		if !fsys.Crashed() {
			if err := mgr.SaveManifest(p); err != nil {
				if !fsys.Crashed() {
					return t, err
				}
			} else {
				t.manifests++
			}
		}
	}
	_ = db.CloseJournal()
	t.ops = fsys.Ops() - base
	t.fired = fsys.Crashed()

	// ---- Crash over; recover the machine and verify. ----
	rec := fsys.Recover(mode, seed)

	db2, err := metadb.OpenJournal(wal.Options{FS: rec, Dir: crashJournalDir, SegmentBytes: crashSegBytes})
	if err != nil {
		t.replayFailed = true
		return t, nil
	}
	defer db2.CloseJournal()
	if st, ok := db2.JournalStats(); ok && st.TornTailBytes > 0 {
		t.tornTail = true
	}

	// Invariant 2: the replayed state is the acked history, or the
	// acked history plus the single in-flight mutation.
	got, err := metadbCanon(db2)
	if err != nil {
		return t, err
	}
	wantAcked, err := crashReplayCanon(flat, t.acked)
	if err != nil {
		return t, err
	}
	match := got == wantAcked
	if !match && attempted > t.acked {
		wantInflight, err := crashReplayCanon(flat, t.acked+1)
		if err != nil {
			return t, err
		}
		match = got == wantInflight
	}
	if !match {
		t.stateViolations++
	}

	// Invariant 3: the JSON snapshot is a complete version from some
	// save attempt, never a torn mixture.
	if snapData, err := vfs.ReadFile(rec, crashSnapPath); err == nil {
		db3 := metadb.New()
		if lerr := db3.LoadFS(rec, crashSnapPath); lerr != nil {
			t.snapViolations++
		} else {
			canon, cerr := metadbCanon(db3)
			if cerr != nil {
				return t, cerr
			}
			found := false
			for _, want := range snapCanons {
				if canon == want {
					found = true
					break
				}
			}
			if !found || canon != string(snapData) {
				t.snapViolations++
			}
		}
	} else if savedOnce && mode != faultfs.DropUnsynced && !t.fired {
		// A completed save can only be missing if the crash predates
		// its directory barrier; with no crash it must exist.
		t.snapViolations++
	}

	// Invariant 4: a restarted staging manager adopts only cache
	// entries that byte-match their home instances.
	cache2, err := localdisk.New("argonne-ssa", rec.Store())
	if err != nil {
		return t, err
	}
	mgr2, err := stage.New(stage.Config{Sim: sim, Cache: cache2, Budget: 1 << 22})
	if err != nil {
		return t, err
	}
	defer mgr2.Close()
	p2 := sim.NewProc("crash-verify")
	adopted, err := mgr2.LoadManifest(p2, home)
	if err != nil {
		return t, err
	}
	t.adopted = adopted
	csess, err := cache2.Connect(p2)
	if err != nil {
		return t, err
	}
	for _, me := range mgr2.Manifest() {
		cached, err := storage.GetFile(p2, csess, me.Staged)
		if err != nil || !bytes.Equal(cached, homeData[me.Path]) {
			t.manifestViolations++
		}
	}
	return t, nil
}

// CrashString renders the crash-matrix table.
func CrashString(rows []CrashRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %-7s %-6s %-8s %-10s %-8s %-11s %-9s %-9s %s\n",
		"mode", "points", "fired", "replays", "torn_tails", "adopted", "replay_fail", "state_bad", "snap_bad", "manifest_bad")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %-7d %-6d %-8d %-10d %-8d %-11d %-9d %-9d %d\n",
			r.Mode, r.Points, r.Fired, r.Replays, r.TornTails, r.Adopted,
			r.ReplayFailures, r.StateViolations, r.SnapshotViolations, r.ManifestViolations)
	}
	if CrashOK(rows) {
		b.WriteString("all crash points recovered to a consistent state\n")
	} else {
		b.WriteString("RECOVERY INVARIANTS VIOLATED\n")
	}
	return b.String()
}
