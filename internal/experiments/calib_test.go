package experiments

import (
	"strings"
	"testing"
)

// TestCalibShrinksPredictionError is the experiment's acceptance
// criterion: on the skewed-curve scenario, calibration must strictly
// shrink the mean absolute per-dataset prediction error.
func TestCalibShrinksPredictionError(t *testing.T) {
	res, err := Calib(TestScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(calibDatasets) {
		t.Fatalf("rows = %d, want %d", len(res.Rows), len(calibDatasets))
	}
	if res.MeanAbsErrAfter >= res.MeanAbsErrBefore {
		t.Fatalf("calibration did not shrink error: before %.3f after %.3f",
			res.MeanAbsErrBefore, res.MeanAbsErrAfter)
	}
	// The injected skews (÷0.35, ÷2.6, ÷0.45) put every class far
	// outside the ±15% band before calibration…
	if res.Drifted != len(calibSkew) {
		t.Fatalf("drifted cells = %d, want %d", res.Drifted, len(calibSkew))
	}
	// …and the single-proc workload observes queue-free costs, so the
	// calibrated predictions land close to measured.
	if res.MeanAbsErrAfter > 0.10 {
		t.Fatalf("post-calibration error %.3f > 10%%", res.MeanAbsErrAfter)
	}
	for _, row := range res.Rows {
		if row.Measured <= 0 || row.PredBefore <= 0 || row.PredAfter <= 0 {
			t.Fatalf("non-positive time in row %+v", row)
		}
	}
}

// TestCalibResidualRatiosMatchSkew checks the engine recovers the
// injected drift factors exactly: with queue-free observations the
// measured/predicted ratio per class is the inverse of the curve skew.
func TestCalibResidualRatiosMatchSkew(t *testing.T) {
	res, err := Calib(TestScale())
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, r := range res.Residuals {
		want, ok := calibSkew[r.Resource]
		if !ok || r.Op != "write" {
			continue
		}
		seen[r.Resource] = true
		if diff := r.Ratio/want - 1; diff < -0.05 || diff > 0.05 {
			t.Errorf("%s ratio = %.3f, want ≈%.3f", r.Resource, r.Ratio, want)
		}
		if !r.Drift {
			t.Errorf("%s residual not flagged as drift", r.Resource)
		}
	}
	for class := range calibSkew {
		if !seen[class] {
			t.Errorf("no residual for class %s", class)
		}
	}
}

func TestCalibString(t *testing.T) {
	res, err := Calib(TestScale())
	if err != nil {
		t.Fatal(err)
	}
	out := CalibString(res)
	for _, want := range []string{
		"dataset", "mean |error|", "per-resource residuals",
		"rdisk_l", "remotetape", "±15%!",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}
