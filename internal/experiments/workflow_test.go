package experiments

import "testing"

// TestWorkflowExperiment runs the full chain at test scale and checks
// the acceptance gate: predictions within ±15% of composed
// measurements at every overlap level, provisioned strictly faster.
func TestWorkflowExperiment(t *testing.T) {
	r, err := Workflow(TestScale())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", WorkflowString(r))
	if len(r.Overlaps) < 3 {
		t.Fatalf("want >=3 overlap levels, got %d", len(r.Overlaps))
	}
	for _, row := range r.Overlaps {
		if row.Err() > 0.15 {
			t.Errorf("overlap %.2f: unprovisioned error %.1f%% > 15%%", row.Overlap, 100*row.Err())
		}
		if row.ProvErr() > 0.15 {
			t.Errorf("overlap %.2f: provisioned error %.1f%% > 15%%", row.Overlap, 100*row.ProvErr())
		}
		if row.ProvMeasured >= row.Measured {
			t.Errorf("overlap %.2f: provisioned %v not faster than %v", row.Overlap, row.ProvMeasured, row.Measured)
		}
	}
	if r.PrefetchItems == 0 {
		t.Error("plan issued no prefetch items")
	}
	if len(r.Placements) == 0 {
		t.Error("plan placed no intermediates")
	}
	if r.Stats.Hits == 0 {
		t.Error("stage cache saw no hits in the provisioned leg")
	}
	if !WorkflowOK(r) {
		t.Error("WorkflowOK gate failed")
	}
}
