package experiments

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/faultfs"
	"repro/internal/hsm"
	"repro/internal/memfs"
	"repro/internal/metadb"
	"repro/internal/model"
	"repro/internal/predict"
	"repro/internal/qos"
	"repro/internal/remotedisk"
	"repro/internal/storage"
	"repro/internal/tape"
	"repro/internal/vtime"
	"repro/internal/wal"
)

// ------------------------------------------------------------------
// HSM: months of simulated archive workload — daily dataset births,
// Zipf-over-recency reads, steady churn of retirements — run twice
// over a small disk pool in front of the tape library:
//
//   - Baseline (static placement, the paper's model): datasets land on
//     the pool until its hard capacity is hit, then overflow straight
//     to tape and stay there.  The pool fills with the oldest data and
//     every read of younger data mounts cartridges.
//   - HSM: the lifecycle engine migrates cold datasets to tape through
//     the qos staging-cartridge write lane, purges dual copies against
//     the watermarks (migrate-before-purge), recalls tape-resident
//     datasets through the eq. (1)-priced staging engine, and repacks
//     fragmented cartridges.
//
// Both legs replay the identical deterministic schedule and every read
// is byte-compared against the generator, so the win is measured at
// equal correctness.  Headline metrics: robot mounts per simulated
// day, disk-pool hit rate, and the recall latency p95 against a bound
// of hsmRecallBoundFactor × the predicted direct tape read of the
// largest dataset.
//
// A third leg reruns a compressed schedule with the lifecycle state
// journaled through the write-ahead log on a fault-injected
// filesystem: the broker crashes at sampled mutation points under
// every crash mode, the journal is replayed, hsm.Engine.Recover maps
// in-flight states back to safe ones, and every surviving row must be
// in a durable state with its authoritative copy byte-intact.

// hsmCartridgeBytes shrinks cartridges so the workload spans many of
// them — mount behaviour, not capacity, is what is under test.
const hsmCartridgeBytes = 64 << 10

// hsmRecallBoundFactor scales one worst-case blind recall — a full
// robot cycle (unmount + mount) plus the predicted direct tape read of
// the largest dataset — into the recall-latency deadline.  The factor
// of two leaves room for queueing behind one in-flight tape job.
const hsmRecallBoundFactor = 2

// hsmUnmountLatency pins the library's robot unmount cost so the
// recall bound and the simulation agree on it.
const hsmUnmountLatency = 15 * time.Second

// hsmPolicy is the lifecycle policy both the main and crash legs run.
func hsmPolicy() hsm.Policy {
	return hsm.Policy{
		ColdAfter:    48 * time.Hour,
		ScanInterval: 24 * time.Hour,
		HighWater:    0.85,
		LowWater:     0.6,
		RepackWaste:  0.25,
		MaxBatch:     64,
	}
}

// HSMCrashRow aggregates one crash mode's trials.
type HSMCrashRow struct {
	Mode       string
	Points     int
	Fired      int
	Replays    int
	Recovered  int // in-flight rows Recover mapped to a safe state
	Violations int // unsafe state, missing copy, or byte mismatch
}

// HSMResult holds all three legs.
type HSMResult struct {
	Days         int
	Datasets     int // datasets born over the horizon
	Reads        int // reads per leg
	Removes      int
	PoolCapacity int64

	BaseMounts       int64
	BaseMountsPerDay float64
	BaseHitRate      float64

	HSMMounts       int64
	HSMMountsPerDay float64
	HSMHitRate      float64

	Migrations int64
	Recalls    int64
	GCRuns     int64
	GCPurged   int64
	GCStalls   int64
	Repacks    int64

	RecallP95   time.Duration
	RecallBound time.Duration

	Mismatches int // byte-compare failures across both legs

	CrashRows []HSMCrashRow
}

// MountWin is the mounts-per-day reduction factor of the HSM leg.
func (r HSMResult) MountWin() float64 {
	if r.HSMMountsPerDay <= 0 {
		return 0
	}
	return r.BaseMountsPerDay / r.HSMMountsPerDay
}

// CrashPoints, CrashFired and CrashViolations aggregate the matrix.
func (r HSMResult) CrashPoints() int {
	n := 0
	for _, row := range r.CrashRows {
		n += row.Points
	}
	return n
}

func (r HSMResult) CrashFired() int {
	n := 0
	for _, row := range r.CrashRows {
		n += row.Fired
	}
	return n
}

func (r HSMResult) CrashViolations() int {
	n := 0
	for _, row := range r.CrashRows {
		n += row.Violations
	}
	return n
}

// HSMOK is the acceptance gate: equal correctness, a real mount and
// hit-rate win, recalls inside the deadline bound, and a clean crash
// matrix.
func HSMOK(r HSMResult) bool {
	return r.Mismatches == 0 &&
		r.Migrations > 0 && r.GCPurged > 0 && r.Recalls > 0 &&
		r.MountWin() > 1 &&
		r.HSMHitRate > r.BaseHitRate &&
		r.RecallP95 > 0 && r.RecallP95 <= r.RecallBound &&
		r.CrashPoints() > 0 && r.CrashFired() == r.CrashPoints() &&
		r.CrashViolations() == 0
}

// hsmOp is one scheduled archive operation.
type hsmOp struct {
	kind byte // 'w' new dataset, 'r' read, 'd' retire
	path string
	size int
}

// hsmContent is a dataset's deterministic bytes, derived from its
// path alone so any leg (and any crash recovery) can regenerate it.
func hsmContent(path string, size int) []byte {
	h := 0
	for _, c := range path {
		h = h*131 + int(c)
	}
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(h + i*7)
	}
	return data
}

// hsmSchedule builds the deterministic day-by-day operation schedule:
// newPerDay births, readsPerDay Zipf-over-recency reads (rank 0 = the
// newest dataset), and from day 4 one retirement per day among the
// five oldest survivors.
func hsmSchedule(days, newPerDay, readsPerDay int, seed int64) ([][]hsmOp, int, int, int) {
	rng := rand.New(rand.NewSource(seed))
	var live []string
	size := func(i int) int { return 8<<10 + (i%4)*(8<<10) }
	sizes := make(map[string]int)
	sched := make([][]hsmOp, days)
	born, reads, removes := 0, 0, 0
	for d := 0; d < days; d++ {
		var ops []hsmOp
		for i := 0; i < newPerDay; i++ {
			path := fmt.Sprintf("archive/ds%05d", born)
			sizes[path] = size(born)
			born++
			live = append(live, path)
			ops = append(ops, hsmOp{'w', path, sizes[path]})
		}
		z := rand.NewZipf(rng, 1.5, 1, uint64(len(live)-1))
		for i := 0; i < readsPerDay; i++ {
			idx := len(live) - 1 - int(z.Uint64())
			ops = append(ops, hsmOp{'r', live[idx], sizes[live[idx]]})
			reads++
		}
		if d >= 4 && len(live) > 8 {
			idx := rng.Intn(5)
			path := live[idx]
			live = append(live[:idx], live[idx+1:]...)
			ops = append(ops, hsmOp{'d', path, sizes[path]})
			removes++
		}
		sched[d] = ops
	}
	return sched, born, reads, removes
}

// hsmPoolCapacity sizes the pool to hold roughly six days of births —
// large enough for the working set, far too small for the archive.
func hsmPoolCapacity(newPerDay int) int64 {
	return int64(6 * newPerDay * 20 << 10)
}

// newHSMTape builds the workload tape library.
func newHSMTape() (*tape.Library, error) {
	// One drive: the robot's mount behaviour is the contended resource
	// under test, and a single drive keeps either leg from hiding a
	// hot cartridge on a spare spindle.
	return tape.New(tape.Config{
		Name: "sdsc-hpss", Params: model.RemoteTape2000(),
		Store: memfs.New(), CartridgeCapacity: hsmCartridgeBytes,
		UnmountLatency: hsmUnmountLatency, Drives: 1,
	})
}

// HSM runs all three legs.  The schedule horizon scales with
// scale.MaxIter (two simulated days per iteration step: the test
// scale covers ~3.5 weeks, the paper scale ~8 months).
func HSM(scale Scale, seed int64) (HSMResult, error) {
	days := 2 * scale.MaxIter
	if days < 14 {
		days = 14
	}
	newPerDay, readsPerDay := 3, 5*scale.Procs
	sched, born, reads, removes := hsmSchedule(days, newPerDay, readsPerDay, seed)
	res := HSMResult{
		Days: days, Datasets: born, Reads: reads, Removes: removes,
		PoolCapacity: hsmPoolCapacity(newPerDay),
	}

	// The predictor pricing GC scoring, staging decisions and qos
	// costs comes from a standard PTool sweep; only the curves are
	// reused.
	env, err := NewEnv()
	if err != nil {
		return res, err
	}
	maxBytes := int64(0)
	for _, day := range sched {
		for _, op := range day {
			if op.kind == 'w' && int64(op.size) > maxBytes {
				maxBytes = int64(op.size)
			}
		}
	}
	sec, err := env.PDB.WholeFile(storage.KindRemoteTape.String(), "read", maxBytes)
	if err != nil {
		return res, err
	}
	robot := hsmUnmountLatency + model.RemoteTape2000().MountLatency
	res.RecallBound = hsmRecallBoundFactor *
		(robot + time.Duration(sec*float64(time.Second)))

	if err := hsmBaselineLeg(&res, sched); err != nil {
		return res, err
	}
	if err := hsmEngineLeg(&res, sched, env.PDB); err != nil {
		return res, err
	}
	if err := hsmCrashLeg(&res, seed); err != nil {
		return res, err
	}
	return res, nil
}

// hsmBaselineLeg replays the schedule with static placement: the pool
// until its hard capacity, tape overflow after.
func hsmBaselineLeg(res *HSMResult, sched [][]hsmOp) error {
	sim := vtime.NewVirtual()
	pool, err := remotedisk.New("sdsc-disk", memfs.New(), remotedisk.WithCapacity(res.PoolCapacity))
	if err != nil {
		return err
	}
	lib, err := newHSMTape()
	if err != nil {
		return err
	}
	p := sim.NewProc("archive")
	psess, err := pool.Connect(p)
	if err != nil {
		return err
	}
	tsess, err := lib.Connect(p)
	if err != nil {
		return err
	}
	onTape := make(map[string]bool)
	hits, misses := 0, 0
	for _, day := range sched {
		step := 24 * time.Hour / time.Duration(len(day)+1)
		for _, op := range day {
			p.Advance(step)
			data := hsmContent(op.path, op.size)
			switch op.kind {
			case 'w':
				err := storage.PutFile(p, psess, op.path, storage.ModeOverWrite, data)
				if errors.Is(err, storage.ErrCapacity) {
					onTape[op.path] = true
					err = storage.PutFile(p, tsess, op.path, storage.ModeOverWrite, data)
				}
				if err != nil {
					return err
				}
			case 'r':
				sess := psess
				if onTape[op.path] {
					sess = tsess
					misses++
				} else {
					hits++
				}
				got, err := storage.GetFile(p, sess, op.path)
				if err != nil {
					return err
				}
				if !bytes.Equal(got, data) {
					res.Mismatches++
				}
			case 'd':
				sess := psess
				if onTape[op.path] {
					sess = tsess
				}
				if err := sess.Remove(p, op.path); err != nil {
					return err
				}
				delete(onTape, op.path)
			}
		}
	}
	mounts, _, _ := lib.Stats()
	res.BaseMounts = mounts
	res.BaseMountsPerDay = float64(mounts) / float64(res.Days)
	if hits+misses > 0 {
		res.BaseHitRate = float64(hits) / float64(hits+misses)
	}
	return nil
}

// hsmEngineLeg replays the schedule through the lifecycle engine with
// one policy tick per simulated day.
func hsmEngineLeg(res *HSMResult, sched [][]hsmOp, pdb *predict.DB) error {
	sim := vtime.NewVirtual()
	pool, err := remotedisk.New("sdsc-disk", memfs.New())
	if err != nil {
		return err
	}
	lib, err := newHSMTape()
	if err != nil {
		return err
	}
	sched2, err := qos.New(qos.Config{
		Tape: lib, MaxInFlight: 1, Price: qos.PredictPricer(pdb),
	})
	if err != nil {
		return err
	}
	defer sched2.Close()
	eng, err := hsm.New(hsm.Config{
		Sim: sim, Meta: metadb.New(), Pool: pool, Tape: lib,
		PDB: pdb, QoS: sched2,
		PoolCapacity: res.PoolCapacity, Policy: hsmPolicy(),
	})
	if err != nil {
		return err
	}
	defer eng.Close()
	p := sim.NewProc("archive")
	for _, day := range sched {
		step := 24 * time.Hour / time.Duration(len(day)+1)
		for _, op := range day {
			p.Advance(step)
			switch op.kind {
			case 'w':
				if err := eng.Put(p, op.path, hsmContent(op.path, op.size)); err != nil {
					return err
				}
			case 'r':
				got, err := eng.Read(p, op.path)
				if err != nil {
					return err
				}
				if !bytes.Equal(got, hsmContent(op.path, op.size)) {
					res.Mismatches++
				}
			case 'd':
				if err := eng.Remove(p, op.path); err != nil {
					return err
				}
			}
		}
		p.Advance(step)
		if err := eng.Tick(p); err != nil {
			return err
		}
	}
	st := eng.Stats()
	res.HSMMounts = st.Mounts
	res.HSMMountsPerDay = float64(st.Mounts) / float64(res.Days)
	res.HSMHitRate = st.HitRate()
	res.Migrations = st.Migrations
	res.Recalls = st.Recalls
	res.GCRuns = st.GCRuns
	res.GCPurged = st.GCPurged
	res.GCStalls = st.GCStalls
	res.Repacks = st.Repacks
	res.RecallP95 = st.RecallP95
	return nil
}

// ------------------------------------------------------------------
// Crash leg.

// hsmCrashDays keeps the per-trial workload small; the matrix runs it
// dozens of times.
const hsmCrashDays = 8

// hsmCrashPoints is the number of sampled crash points per mode.
const hsmCrashPoints = 8

// hsmCrashLeg runs the crash-point matrix over the journaled engine.
func hsmCrashLeg(res *HSMResult, seed int64) error {
	// The clean run measures the journal-op budget and proves the
	// compressed workload still exercises the lifecycle.
	clean, err := hsmCrashOne(faultfs.DropUnsynced, 0, seed)
	if err != nil {
		return err
	}
	if clean.ops == 0 || clean.migrations == 0 || clean.purged == 0 {
		return fmt.Errorf("hsm: vacuous crash workload (ops %d, migrations %d, purged %d)",
			clean.ops, clean.migrations, clean.purged)
	}
	if clean.violations != 0 {
		return fmt.Errorf("hsm: clean crash run violated invariants (%d)", clean.violations)
	}
	rng := rand.New(rand.NewSource(seed))
	for _, mode := range faultfs.Modes() {
		row := HSMCrashRow{Mode: mode.String()}
		for j := 0; j < hsmCrashPoints; j++ {
			point := 1 + rng.Intn(clean.ops)
			t, err := hsmCrashOne(mode, point, seed^int64(point)*6007+int64(j))
			if err != nil {
				return err
			}
			row.Points++
			if t.fired {
				row.Fired++
			}
			if !t.replayFailed {
				row.Replays++
			}
			row.Recovered += t.recovered
			row.Violations += t.violations
			if t.replayFailed {
				row.Violations++
			}
		}
		res.CrashRows = append(res.CrashRows, row)
	}
	return nil
}

type hsmCrashTrial struct {
	ops        int
	fired      bool
	migrations int64
	purged     int64

	replayFailed bool
	recovered    int
	violations   int
}

// hsmCrashOne runs the compressed schedule over a journal-backed
// engine with a crash armed at the point-th journal-filesystem
// mutation, recovers, replays, runs Engine.Recover, and verifies that
// every surviving row is in a durable state whose authoritative copy
// byte-matches the generator.  The pool and tape live on plain memory
// — only the broker's journal host crashes.
func hsmCrashOne(mode faultfs.CrashMode, point int, seed int64) (hsmCrashTrial, error) {
	var t hsmCrashTrial
	sim := vtime.NewVirtual()
	p := sim.NewProc("hsm-crash")
	pool, err := remotedisk.New("sdsc-disk", memfs.New())
	if err != nil {
		return t, err
	}
	lib, err := newHSMTape()
	if err != nil {
		return t, err
	}
	fsys := faultfs.New()
	db, err := metadb.OpenJournal(wal.Options{FS: fsys, Dir: "journal", SegmentBytes: 2048})
	if err != nil {
		return t, err
	}
	newPerDay := 3
	eng, err := hsm.New(hsm.Config{
		Sim: sim, Meta: db, Pool: pool, Tape: lib,
		PoolCapacity: hsmPoolCapacity(newPerDay),
		Policy:       hsmPolicy(),
	})
	if err != nil {
		return t, err
	}
	defer eng.Close()
	sched, _, _, _ := hsmSchedule(hsmCrashDays, newPerDay, 6, seed)
	sizes := make(map[string]int)

	base := fsys.Ops()
	fsys.SetCrash(point)
work:
	for _, day := range sched {
		step := 24 * time.Hour / time.Duration(len(day)+1)
		for _, op := range day {
			p.Advance(step)
			var err error
			switch op.kind {
			case 'w':
				sizes[op.path] = op.size
				err = eng.Put(p, op.path, hsmContent(op.path, op.size))
			case 'r':
				var got []byte
				got, err = eng.Read(p, op.path)
				if err == nil && !bytes.Equal(got, hsmContent(op.path, op.size)) {
					t.violations++
				}
			case 'd':
				err = eng.Remove(p, op.path)
			}
			if err != nil {
				if !fsys.Crashed() {
					return t, fmt.Errorf("hsm crash workload %c %s: %w", op.kind, op.path, err)
				}
				break work
			}
		}
		p.Advance(step)
		if err := eng.Tick(p); err != nil {
			if !fsys.Crashed() {
				return t, err
			}
			break
		}
	}
	st := eng.Stats()
	t.migrations = st.Migrations
	t.purged = st.GCPurged
	_ = db.CloseJournal()
	t.ops = fsys.Ops() - base
	t.fired = fsys.Crashed()

	// ---- Recover the journal host and verify. ----
	rec := fsys.Recover(mode, seed)
	db2, err := metadb.OpenJournal(wal.Options{FS: rec, Dir: "journal", SegmentBytes: 2048})
	if err != nil {
		t.replayFailed = true
		return t, nil
	}
	defer db2.CloseJournal()
	eng2, err := hsm.New(hsm.Config{
		Sim: sim, Meta: db2, Pool: pool, Tape: lib,
		PoolCapacity: hsmPoolCapacity(newPerDay),
		Policy:       hsmPolicy(),
	})
	if err != nil {
		return t, err
	}
	defer eng2.Close()
	fixed, err := eng2.Recover()
	if err != nil {
		return t, err
	}
	t.recovered = fixed

	p2 := sim.NewProc("hsm-verify")
	for _, r := range db2.Lifecycles(nil, "sdsc-disk") {
		switch r.State {
		case hsm.StateResident, hsm.StateDual, hsm.StateMigrated:
		default:
			// Recover must not leave transient states behind.
			t.violations++
			continue
		}
		if (r.State == hsm.StateDual || r.State == hsm.StateMigrated) && r.TapePath == "" {
			t.violations++
			continue
		}
		// End-to-end: the engine must serve the authoritative copy,
		// recalling from tape where the disk copy was purged.
		got, err := eng2.Read(p2, r.Path)
		if err != nil || !bytes.Equal(got, hsmContent(r.Path, int(r.Bytes))) {
			t.violations++
		}
	}
	return t, nil
}

// HSMString renders the experiment report.
func HSMString(r HSMResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d days, %d datasets born, %d reads, %d retired, pool %d KiB\n",
		r.Days, r.Datasets, r.Reads, r.Removes, r.PoolCapacity>>10)
	fmt.Fprintf(&b, "%-10s %14s %10s\n", "leg", "mounts/day", "hit rate")
	fmt.Fprintf(&b, "%-10s %14.2f %9.1f%%\n", "baseline", r.BaseMountsPerDay, 100*r.BaseHitRate)
	fmt.Fprintf(&b, "%-10s %14.2f %9.1f%%   (%.1f× fewer mounts)\n",
		"hsm", r.HSMMountsPerDay, 100*r.HSMHitRate, r.MountWin())
	fmt.Fprintf(&b, "lifecycle: %d migrations, %d recalls, %d gc runs (%d purged, %d stalls), %d repacks\n",
		r.Migrations, r.Recalls, r.GCRuns, r.GCPurged, r.GCStalls, r.Repacks)
	fmt.Fprintf(&b, "recall p95 %.2f s (bound %.2f s), %d byte mismatches\n",
		r.RecallP95.Seconds(), r.RecallBound.Seconds(), r.Mismatches)
	fmt.Fprintf(&b, "%-14s %-7s %-6s %-8s %-10s %s\n", "crash mode", "points", "fired", "replays", "recovered", "violations")
	for _, row := range r.CrashRows {
		fmt.Fprintf(&b, "%-14s %-7d %-6d %-8d %-10d %d\n",
			row.Mode, row.Points, row.Fired, row.Replays, row.Recovered, row.Violations)
	}
	if HSMOK(r) {
		b.WriteString("hsm beats the static baseline at equal correctness; lifecycle state crash-safe\n")
	} else {
		b.WriteString("HSM ACCEPTANCE GATE FAILED\n")
	}
	return b.String()
}
