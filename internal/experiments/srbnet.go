package experiments

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/device"
	"repro/internal/memfs"
	"repro/internal/model"
	"repro/internal/srb"
	"repro/internal/srbnet"
	"repro/internal/storage"
	"repro/internal/vtime"
)

// SRBNetResult compares the wall-clock cost of the serialized (wire
// protocol v1), gob-pipelined (v2) and binary-framed (v3) disciplines
// for the same multi-rank workload.  The virtual-time cost is
// identical under all three: the Now/AdvanceTo handshake replays every
// operation at its logical instant regardless of how frames share the
// TCP stream.
type SRBNetResult struct {
	Ranks         int
	ChunksPerRank int
	ChunkBytes    int
	Serialized    time.Duration // wall clock, one request in flight
	PipelinedV2   time.Duration // wall clock, tagged multiplexing over gob
	Pipelined     time.Duration // wall clock, tagged multiplexing over v3 binary frames

	// The codec-bound leg: the same multi-rank workload with larger
	// chunks over a purely virtual sim, so device waits cost no wall
	// time and encode/decode/copy on the wire dominates.  This is
	// where the v3-vs-gob ablation delta is measurable; in the scaled
	// legs above, the eq. (1) waits drown the codec in noise.
	WireChunkBytes int
	WireV2         time.Duration // codec-bound wall clock, gob
	WireV3         time.Duration // codec-bound wall clock, v3 binary frames
}

// Speedup is the pipelined (v3) wall-clock win over the serialized
// discipline.
func (r SRBNetResult) Speedup() float64 {
	if r.Pipelined <= 0 {
		return 0
	}
	return r.Serialized.Seconds() / r.Pipelined.Seconds()
}

// V3OverV2 is the binary codec's wall-clock win over gob at the same
// pipelining discipline, measured on the codec-bound leg — the wire-v3
// ablation delta.
func (r SRBNetResult) V3OverV2() float64 {
	if r.WireV3 <= 0 {
		return 0
	}
	return r.WireV2.Seconds() / r.WireV3.Seconds()
}

// SRBNetConcurrency runs 8 ranks of chunked writes and reads through
// one shared srbnet session against a multi-channel remote-disk array,
// once with the serialized v1 discipline and once with v2 multiplexing,
// and reports the wall time of each.  The sim runs in scaled mode so
// the eq. (1) costs become real waits — the regime the wire layer
// operates in; with one request in flight the array's channels idle
// while ranks take turns on the wire.
func SRBNetConcurrency() (SRBNetResult, error) {
	res := SRBNetResult{Ranks: 8, ChunksPerRank: 8, ChunkBytes: 4096, WireChunkBytes: 64 << 10}
	run := func(sim *vtime.Sim, chunkBytes int, opts ...srbnet.Option) (time.Duration, error) {
		broker := srb.NewBroker()
		be, err := device.New(device.Config{
			Name: "sdsc-array", Kind: storage.KindRemoteDisk,
			Params: model.RemoteDisk2000(), Store: memfs.New(), Channels: 64,
		})
		if err != nil {
			return 0, err
		}
		if err := broker.Register(be); err != nil {
			return 0, err
		}
		broker.AddUser("shen", "nwu")
		srv, err := srbnet.Serve("127.0.0.1:0", broker, sim)
		if err != nil {
			return 0, err
		}
		defer srv.Close()
		srv.SetLogf(func(string, ...any) {})
		client := srbnet.NewClient(srv.Addr(), "shen", "nwu", "sdsc-array", storage.KindRemoteDisk, opts...)
		defer client.Close()

		p0 := sim.NewProc("rank0")
		sess, err := client.Connect(p0)
		if err != nil {
			return 0, err
		}
		procs := make([]*vtime.Proc, res.Ranks)
		handles := make([]storage.Handle, res.Ranks)
		for r := range procs {
			procs[r] = sim.NewProc(fmt.Sprintf("rank%d-io", r))
			h, err := sess.Open(procs[r], fmt.Sprintf("exp/rank%d", r), storage.ModeCreate)
			if err != nil {
				return 0, err
			}
			handles[r] = h
		}
		start := time.Now()
		var wg sync.WaitGroup
		errs := make([]error, res.Ranks)
		for r := range procs {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				buf := make([]byte, chunkBytes)
				for k := 0; k < res.ChunksPerRank; k++ {
					off := int64(k * chunkBytes)
					if _, err := handles[r].WriteAt(procs[r], buf, off); err != nil {
						errs[r] = err
						return
					}
					if _, err := handles[r].ReadAt(procs[r], buf, off); err != nil {
						errs[r] = err
						return
					}
				}
			}(r)
		}
		wg.Wait()
		elapsed := time.Since(start)
		for _, err := range errs {
			if err != nil {
				return 0, err
			}
		}
		for r := range handles {
			if err := handles[r].Close(procs[r]); err != nil {
				return 0, err
			}
		}
		if err := sess.Close(p0); err != nil {
			return 0, err
		}
		return elapsed, nil
	}
	// Scaled legs: 1 virtual second = 1 wall millisecond, so a 4 KiB
	// remote call (~45 ms virtual) waits ~45 µs of real time and the
	// pipelining discipline is what shows.
	scaled := func() *vtime.Sim { return vtime.NewScaled(1e-3) }
	var err error
	if res.Serialized, err = run(scaled(), res.ChunkBytes, srbnet.WithSerialized()); err != nil {
		return res, err
	}
	if res.PipelinedV2, err = run(scaled(), res.ChunkBytes, srbnet.WithWireV2()); err != nil {
		return res, err
	}
	if res.Pipelined, err = run(scaled(), res.ChunkBytes); err != nil {
		return res, err
	}
	// Codec-bound legs: a purely virtual sim makes the eq. (1) waits
	// free, so wall clock is encode/decode/copy on the wire — the
	// regime where the v3 codec's pooled frames and writev batching
	// are the difference.  Run each leg a few times and keep the best
	// to shed scheduler noise.
	best := func(chunkBytes int, opts ...srbnet.Option) (time.Duration, error) {
		var min time.Duration
		for i := 0; i < 3; i++ {
			d, err := run(vtime.NewVirtual(), chunkBytes, opts...)
			if err != nil {
				return 0, err
			}
			if min == 0 || d < min {
				min = d
			}
		}
		return min, nil
	}
	if res.WireV2, err = best(res.WireChunkBytes, srbnet.WithWireV2()); err != nil {
		return res, err
	}
	if res.WireV3, err = best(res.WireChunkBytes); err != nil {
		return res, err
	}
	return res, nil
}
