package experiments

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/device"
	"repro/internal/memfs"
	"repro/internal/model"
	"repro/internal/srb"
	"repro/internal/srbnet"
	"repro/internal/storage"
	"repro/internal/vtime"
)

// SRBNetResult compares the wall-clock cost of the serialized (wire
// protocol v1) and pipelined (v2) disciplines for the same multi-rank
// workload.  The virtual-time cost is identical under both: the
// Now/AdvanceTo handshake replays every operation at its logical
// instant regardless of how frames share the TCP stream.
type SRBNetResult struct {
	Ranks         int
	ChunksPerRank int
	ChunkBytes    int
	Serialized    time.Duration // wall clock, one request in flight
	Pipelined     time.Duration // wall clock, tagged multiplexing
}

// Speedup is the pipelined wall-clock win.
func (r SRBNetResult) Speedup() float64 {
	if r.Pipelined <= 0 {
		return 0
	}
	return r.Serialized.Seconds() / r.Pipelined.Seconds()
}

// SRBNetConcurrency runs 8 ranks of chunked writes and reads through
// one shared srbnet session against a multi-channel remote-disk array,
// once with the serialized v1 discipline and once with v2 multiplexing,
// and reports the wall time of each.  The sim runs in scaled mode so
// the eq. (1) costs become real waits — the regime the wire layer
// operates in; with one request in flight the array's channels idle
// while ranks take turns on the wire.
func SRBNetConcurrency() (SRBNetResult, error) {
	res := SRBNetResult{Ranks: 8, ChunksPerRank: 8, ChunkBytes: 4096}
	runOne := func(opts ...srbnet.Option) (time.Duration, error) {
		// 1 virtual second = 1 wall millisecond: a 4 KiB remote call
		// (~45 ms virtual) waits ~45 µs of real time.
		sim := vtime.NewScaled(1e-3)
		broker := srb.NewBroker()
		be, err := device.New(device.Config{
			Name: "sdsc-array", Kind: storage.KindRemoteDisk,
			Params: model.RemoteDisk2000(), Store: memfs.New(), Channels: 64,
		})
		if err != nil {
			return 0, err
		}
		if err := broker.Register(be); err != nil {
			return 0, err
		}
		broker.AddUser("shen", "nwu")
		srv, err := srbnet.Serve("127.0.0.1:0", broker, sim)
		if err != nil {
			return 0, err
		}
		defer srv.Close()
		srv.SetLogf(func(string, ...any) {})
		client := srbnet.NewClient(srv.Addr(), "shen", "nwu", "sdsc-array", storage.KindRemoteDisk, opts...)
		defer client.Close()

		p0 := sim.NewProc("rank0")
		sess, err := client.Connect(p0)
		if err != nil {
			return 0, err
		}
		procs := make([]*vtime.Proc, res.Ranks)
		handles := make([]storage.Handle, res.Ranks)
		for r := range procs {
			procs[r] = sim.NewProc(fmt.Sprintf("rank%d-io", r))
			h, err := sess.Open(procs[r], fmt.Sprintf("exp/rank%d", r), storage.ModeCreate)
			if err != nil {
				return 0, err
			}
			handles[r] = h
		}
		start := time.Now()
		var wg sync.WaitGroup
		errs := make([]error, res.Ranks)
		for r := range procs {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				buf := make([]byte, res.ChunkBytes)
				for k := 0; k < res.ChunksPerRank; k++ {
					off := int64(k * res.ChunkBytes)
					if _, err := handles[r].WriteAt(procs[r], buf, off); err != nil {
						errs[r] = err
						return
					}
					if _, err := handles[r].ReadAt(procs[r], buf, off); err != nil {
						errs[r] = err
						return
					}
				}
			}(r)
		}
		wg.Wait()
		elapsed := time.Since(start)
		for _, err := range errs {
			if err != nil {
				return 0, err
			}
		}
		for r := range handles {
			if err := handles[r].Close(procs[r]); err != nil {
				return 0, err
			}
		}
		if err := sess.Close(p0); err != nil {
			return 0, err
		}
		return elapsed, nil
	}
	var err error
	if res.Serialized, err = runOne(srbnet.WithSerialized()); err != nil {
		return res, err
	}
	if res.Pipelined, err = runOne(); err != nil {
		return res, err
	}
	return res, nil
}
