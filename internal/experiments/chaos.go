package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"time"

	"repro/internal/apps/astro3d"
	"repro/internal/apps/mse"
	"repro/internal/core"
	"repro/internal/flaky"
	"repro/internal/localdisk"
	"repro/internal/memfs"
	"repro/internal/metadb"
	"repro/internal/model"
	"repro/internal/remotedisk"
	"repro/internal/resilient"
	"repro/internal/stage"
	"repro/internal/storage"
	"repro/internal/tape"
	"repro/internal/vtime"
)

// ------------------------------------------------------------------
// Chaos: Astro3D writes over fault-injected remote resources, recovered
// by the resilience layer.  The paper's §5 reliability argument covers
// a resource that is down before the run; chaos covers the harder case
// of a resource that keeps dropping individual operations mid-run.  A
// run "completes" when every fault was recovered transparently; the
// recovery cost is visible as virtual-time overhead against the
// fault-free baseline, because retry backoff is charged to the same
// clocks as device time.

// ChaosRow is one fault-rate point of the chaos experiment.
type ChaosRow struct {
	FailEvery int64   // one injected fault per this many remote ops (0 = none)
	Rate      float64 // injected fault rate (1/FailEvery)

	Completed bool
	Err       string // non-empty when the run failed anyway

	Injected  int64         // faults the flaky layer fired
	Retries   int64         // re-attempts the resilient layer issued
	FastFails int64         // calls shed by an open circuit
	Backoff   time.Duration // virtual time charged to retry delays
	Trips     int64         // breaker trips during the run

	IOTime   time.Duration // the run's total I/O virtual time
	Overhead float64       // (IOTime - baseline) / baseline
}

// Chaos runs Astro3D with every dataset on a flaky remote disk wrapped
// by the resilience layer, once per fault rate.  failEvery values are
// faults-per-N-operations; 0 is the clean baseline and must come first
// for overhead accounting.  With no values the default schedule
// {0, 100, 20, 10} — 0 %, 1 %, 5 %, 10 % — is used.
func Chaos(scale Scale, failEvery ...int64) ([]ChaosRow, error) {
	if len(failEvery) == 0 {
		failEvery = []int64{0, 100, 20, 10}
	}
	rows := make([]ChaosRow, 0, len(failEvery))
	var baseline time.Duration
	for _, n := range failEvery {
		row, err := chaosOne(scale, n)
		if err != nil {
			return rows, err
		}
		if n == 0 {
			baseline = row.IOTime
		}
		if baseline > 0 && row.IOTime > 0 {
			row.Overhead = float64(row.IOTime-baseline) / float64(baseline)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// chaosOne builds a fresh environment whose remote disk drops one in n
// operations, recovered by a resilient wrapper, and drives a full
// Astro3D write workload through it.
func chaosOne(scale Scale, n int64) (ChaosRow, error) {
	sim := vtime.NewVirtual()
	local, err := localdisk.New("argonne-ssa", memfs.New())
	if err != nil {
		return ChaosRow{}, err
	}
	rdisk, err := remotedisk.New("sdsc-disk", memfs.New())
	if err != nil {
		return ChaosRow{}, err
	}
	rtape, err := tape.New(tape.Config{Name: "sdsc-hpss", Params: model.RemoteTape2000(), Store: memfs.New()})
	if err != nil {
		return ChaosRow{}, err
	}
	health := resilient.NewHealth(resilient.BreakerConfig{})
	fb := flaky.Wrap(rdisk, flaky.Policy{FailEvery: n})
	rb := resilient.Wrap(fb, resilient.WithHealth(health))
	sys, err := core.NewSystem(core.SystemConfig{
		Sim: sim, Meta: metadb.New(),
		LocalDisk: local, RemoteDisk: rb, RemoteTape: rtape,
	})
	if err != nil {
		return ChaosRow{}, err
	}
	prm := scale.params()
	prm.DefaultLocation = core.LocRemoteDisk
	row := ChaosRow{FailEvery: n}
	if n > 0 {
		row.Rate = 1 / float64(n)
	}
	rep, err := astro3d.Run(sys, fmt.Sprintf("chaos-%d", n), prm)
	st := rb.Stats()
	row.Injected = fb.Injected()
	row.Retries = st.Retries
	row.FastFails = st.FastFails
	row.Backoff = st.Backoff
	row.Trips = rb.Breaker().Stats().Trips
	if err != nil {
		row.Err = err.Error()
		return row, nil
	}
	row.Completed = true
	row.IOTime = rep.IOTime
	return row, nil
}

// ------------------------------------------------------------------
// Chaos × staging: the staging engine pulls instances off a flaky
// remote disk.  The contract under faults: a stage-in either completes
// (the resilient wrapper retried the copy to success) or is abandoned
// and the read falls through to the direct path (which surfaces the
// breaker state) — and an abandoned copy never leaves partial bytes
// that a later hit could read.  Afterwards every surviving cache entry
// is byte-compared against its home instance.

// ChaosStageRow is one fault-rate point of the staging chaos case.
type ChaosStageRow struct {
	FailEvery int64
	Rate      float64

	Completed bool
	Err       string

	Injected int64 // faults the flaky layer fired
	Retries  int64 // re-attempts the resilient layer issued

	StagedIn  int64 // instances that made it into the cache
	Fallbacks int64 // stage-ins abandoned (read served directly)
	Hits      int64

	Corrupt bool // any cached copy differing from its home instance
	IOTime  time.Duration
}

// ChaosStage drives the MSE consumer twice through a staging engine
// whose home resource drops one in n operations.  With no values the
// default schedule {0, 5, 2} — 0 %, 20 %, 50 % — is used: staging
// issues few home-tier operations (one whole-file copy per dump), so
// the rates are harsher than the write-path chaos schedule to make
// every faulty row actually exercise recovery.
func ChaosStage(scale Scale, failEvery ...int64) ([]ChaosStageRow, error) {
	if len(failEvery) == 0 {
		failEvery = []int64{0, 5, 2}
	}
	rows := make([]ChaosStageRow, 0, len(failEvery))
	for _, n := range failEvery {
		row, err := chaosStageOne(scale, n)
		if err != nil {
			return rows, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func chaosStageOne(scale Scale, n int64) (ChaosStageRow, error) {
	sim := vtime.NewVirtual()
	local, err := localdisk.New("argonne-ssa", memfs.New())
	if err != nil {
		return ChaosStageRow{}, err
	}
	rdisk, err := remotedisk.New("sdsc-disk", memfs.New())
	if err != nil {
		return ChaosStageRow{}, err
	}
	health := resilient.NewHealth(resilient.BreakerConfig{})
	fb := flaky.Wrap(rdisk, flaky.Policy{}) // faults off while the producer writes
	rb := resilient.Wrap(fb, resilient.WithHealth(health))
	meta := metadb.New()

	// The producer writes temp to the (still healthy) remote disk
	// directly — the fault injection targets the consumer's stage-ins.
	prodSys, err := core.NewSystem(core.SystemConfig{
		Sim: sim, Meta: meta, LocalDisk: local, RemoteDisk: rb,
	})
	if err != nil {
		return ChaosStageRow{}, err
	}
	prm := scale.params()
	prm.VizFreq, prm.CheckpointFreq = 0, 0
	prm.Locations = map[string]core.Location{"temp": core.LocRemoteDisk}
	prm.DefaultLocation = core.LocDisable
	if _, err := astro3d.Run(prodSys, "prod", prm); err != nil {
		return ChaosStageRow{}, err
	}

	// No PTool sweep: with no predictor the engine stages on tier
	// ranking alone, which keeps the case about fault recovery.
	mgr, err := stage.New(stage.Config{
		Sim: sim, Cache: local,
		Budget: int64(scale.Dumps()) * int64(scale.N) * int64(scale.N) * int64(scale.N) * 4,
		Health: health,
	})
	if err != nil {
		return ChaosStageRow{}, err
	}
	defer mgr.Close()
	consSys, err := core.NewSystem(core.SystemConfig{
		Sim: sim, Meta: meta, LocalDisk: local, RemoteDisk: rb,
		Stager: mgr,
	})
	if err != nil {
		return ChaosStageRow{}, err
	}

	fb.SetPolicy(flaky.Policy{FailEvery: n})
	row := ChaosStageRow{FailEvery: n}
	if n > 0 {
		row.Rate = 1 / float64(n)
	}
	var ioTime time.Duration
	for _, id := range []string{"mse-a", "mse-b"} {
		res, err := mse.Run(consSys, id, mse.Params{
			ProducerRun: "prod", Dataset: "temp",
			Iterations: scale.MaxIter, Procs: scale.Procs,
		})
		if err != nil {
			row.Err = err.Error()
			break
		}
		ioTime += res.IOTime
	}
	fb.SetPolicy(flaky.Policy{})

	st := mgr.Stats()
	wrapped := rb.Stats()
	row.Injected = fb.Injected()
	row.Retries = wrapped.Retries
	row.StagedIn = st.StagedIn
	row.Fallbacks = st.StageFailures
	row.Hits = st.Hits
	row.Completed = row.Err == ""
	row.IOTime = ioTime

	// The integrity check: every cached instance must equal its home
	// copy, faults or not.
	p := sim.NewProc("chaos-stage-verify")
	csess, err := local.Connect(p)
	if err != nil {
		return ChaosStageRow{}, err
	}
	hsess, err := rdisk.Connect(p) // the unwrapped home: no faults here
	if err != nil {
		return ChaosStageRow{}, err
	}
	for _, me := range mgr.Manifest() {
		cached, err := storage.GetFile(p, csess, me.Staged)
		if err != nil {
			row.Corrupt = true
			break
		}
		home, err := storage.GetFile(p, hsess, me.Path)
		if err != nil || !bytes.Equal(cached, home) {
			row.Corrupt = true
			break
		}
	}
	return row, nil
}

// ChaosStageString renders the staging chaos table.
func ChaosStageString(rows []ChaosStageRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-9s %-9s %-8s %-8s %-9s %-9s %-6s %-8s %s\n",
		"fail_every", "rate", "completed", "injected", "retries", "staged_in", "fallback", "hits", "corrupt", "io_time")
	for _, r := range rows {
		status := "yes"
		if !r.Completed {
			status = "NO"
		}
		corrupt := "no"
		if r.Corrupt {
			corrupt = "YES"
		}
		fmt.Fprintf(&b, "%-10d %-9s %-9s %-8d %-8d %-9d %-9d %-6d %-8s %v\n",
			r.FailEvery, fmt.Sprintf("%.1f%%", r.Rate*100), status,
			r.Injected, r.Retries, r.StagedIn, r.Fallbacks, r.Hits, corrupt, r.IOTime)
	}
	return b.String()
}

// ChaosString renders the chaos table.
func ChaosString(rows []ChaosRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-9s %-9s %-8s %-8s %-6s %-12s %-12s %s\n",
		"fail_every", "rate", "completed", "injected", "retries", "trips", "backoff", "io_time", "overhead")
	for _, r := range rows {
		status := "yes"
		if !r.Completed {
			status = "NO: " + r.Err
		}
		fmt.Fprintf(&b, "%-10d %-9s %-9s %-8d %-8d %-6d %-12v %-12v %+.1f%%\n",
			r.FailEvery, fmt.Sprintf("%.1f%%", r.Rate*100), status,
			r.Injected, r.Retries, r.Trips, r.Backoff, r.IOTime, r.Overhead*100)
	}
	return b.String()
}
