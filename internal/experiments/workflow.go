package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/apps/astro3d"
	"repro/internal/apps/mse"
	"repro/internal/apps/volren"
	"repro/internal/core"
	"repro/internal/stage"
	"repro/internal/workflow"
)

// ------------------------------------------------------------------
// Workflow: the full astro3d → MSE → volren → viewer chain, predicted
// and measured end to end.  Each stage runs in its own clock epoch (the
// paper's post-processing model); per-stage times then compose into a
// makespan under the overlap recurrence
//
//	start(c) = max over edges (p, c) of start(p) + (1−α)·dur(p)
//
// at several overlap levels α — the same composition for predictions
// and measurements, so the two are directly comparable (Costa et al.).
// The experiment runs the chain twice: unprovisioned (archive defaults,
// direct reads) and provisioned by the workflow plan (lifetime-placed
// intermediates, DAG-edge prefetch into a budgeted stage cache).

// WorkflowStageRow is one stage's predicted and measured durations in
// both legs.
type WorkflowStageRow struct {
	Stage                       string
	Predicted, Measured         time.Duration
	ProvPredicted, ProvMeasured time.Duration
}

// WorkflowOverlapRow is one overlap level's composed makespans.
type WorkflowOverlapRow struct {
	Overlap                     float64
	Predicted, Measured         time.Duration
	ProvPredicted, ProvMeasured time.Duration
	Critical                    []string // measured critical path, unprovisioned
}

// Err is the unprovisioned relative prediction error.
func (r WorkflowOverlapRow) Err() float64 { return relErr(r.Predicted, r.Measured) }

// ProvErr is the provisioned relative prediction error.
func (r WorkflowOverlapRow) ProvErr() float64 { return relErr(r.ProvPredicted, r.ProvMeasured) }

// Speedup is unprovisioned / provisioned measured makespan.
func (r WorkflowOverlapRow) Speedup() float64 {
	if r.ProvMeasured <= 0 {
		return 0
	}
	return float64(r.Measured) / float64(r.ProvMeasured)
}

func relErr(pred, meas time.Duration) float64 {
	if meas <= 0 {
		return math.Inf(1)
	}
	return math.Abs(float64(pred-meas)) / float64(meas)
}

// WorkflowResult is the whole experiment.
type WorkflowResult struct {
	Scale    Scale
	Stages   []WorkflowStageRow
	Overlaps []WorkflowOverlapRow

	// Plan summary (provisioned leg).
	CacheBudget   int64
	ExpectedReads int
	PrefetchItems int
	PrefetchP95   time.Duration
	Placements    []string // "producer/dataset: from -> to"
	Stats         stage.Stats
}

// MaxErr is the worst relative prediction error across overlap levels
// and legs.
func (r WorkflowResult) MaxErr() float64 {
	worst := 0.0
	for _, row := range r.Overlaps {
		if e := row.Err(); e > worst {
			worst = e
		}
		if e := row.ProvErr(); e > worst {
			worst = e
		}
	}
	return worst
}

// MinSpeedup is the smallest provisioning win across overlap levels.
func (r WorkflowResult) MinSpeedup() float64 {
	min := math.Inf(1)
	for _, row := range r.Overlaps {
		if s := row.Speedup(); s < min {
			min = s
		}
	}
	return min
}

// WorkflowOK is the acceptance gate: predictions within ±15% of the
// composed measurement at ≥3 overlap levels in both legs, and the
// provisioned run strictly faster than the unprovisioned baseline at
// every level.
func WorkflowOK(r WorkflowResult) bool {
	return len(r.Overlaps) >= 3 && r.MaxErr() <= 0.15 && r.MinSpeedup() > 1
}

// workflowLoc maps a provisioning class to a placement hint.
func workflowLoc(class string, def core.Location) core.Location {
	if class == "" {
		return def
	}
	loc, err := core.ParseLocation(class)
	if err != nil {
		return def
	}
	return loc
}

// runWorkflowStages measures the chain once, stage by stage, each in a
// fresh clock epoch.  A nil plan is the unprovisioned baseline; with a
// plan, intermediates move to their placed tiers, stage-cache budgets
// come from the predicted working sets, and DAG-edge prefetch is issued
// before the first consumer starts.
func runWorkflowStages(env *Env, scale Scale, plan *workflow.Plan) (map[string]time.Duration, stage.Stats, error) {
	dur := make(map[string]time.Duration, 4)
	consumerSys := env.Sys
	var mgr *stage.Manager
	if plan != nil {
		var err error
		mgr, err = stage.New(stage.Config{
			Sim:           env.Sim,
			Cache:         env.Local,
			Budget:        plan.CacheBudget,
			PDB:           env.PDB,
			ExpectedReads: plan.ExpectedReads,
			// The plan prices DAG-edge staging as one parallel copy
			// wave; enough workers that no hint in the wave is
			// dropped or queued behind another.
			PrefetchDepth: len(plan.Prefetch) + 1,
		})
		if err != nil {
			return nil, stage.Stats{}, err
		}
		defer mgr.Close()
		consumerSys, err = core.NewSystem(core.SystemConfig{
			Sim: env.Sim, Meta: env.Meta,
			LocalDisk: env.Local, RemoteDisk: env.RDisk, RemoteTape: env.RTape,
			Stager: mgr,
		})
		if err != nil {
			return nil, stage.Stats{}, err
		}
	}
	placed := func(producer, dataset string, def core.Location) core.Location {
		if plan == nil {
			return def
		}
		if ip, ok := plan.Placed(producer, dataset); ok {
			return workflowLoc(ip.To, def)
		}
		return def
	}

	// Stage 1: astro3d archives temp (analysis) and vr_temp (viz); the
	// other datasets are disabled so the chain's data flow is exact.
	prm := scale.params()
	prm.CheckpointFreq = 0
	prm.Locations = map[string]core.Location{
		"temp":    placed("astro3d", "temp", core.LocRemoteTape),
		"vr_temp": placed("astro3d", "vr_temp", core.LocRemoteTape),
	}
	prm.DefaultLocation = core.LocDisable
	rep, err := astro3d.Run(env.Sys, "prod", prm)
	if err != nil {
		return nil, stage.Stats{}, fmt.Errorf("workflow astro3d: %w", err)
	}
	dur["astro3d"] = rep.IOTime

	// DAG-edge prefetch: stage the plan's instances in before their
	// first consumer starts.  The copies run on prefetch processes in
	// the consumer's epoch, so their completion times are charged to
	// the consumer's first hits — not dropped.
	env.ResetClocks()
	if mgr != nil {
		pre, err := consumerSys.Initialize(core.RunConfig{ID: "wf-prefetch", App: "provision", Iterations: 1, Procs: 1})
		if err != nil {
			return nil, stage.Stats{}, err
		}
		attached := make(map[string]*core.Dataset)
		for _, it := range plan.ItemsFor("mse") {
			d, ok := attached[it.Dataset]
			if !ok {
				var err error
				d, err = pre.AttachDataset("prod", it.Dataset)
				if err != nil {
					return nil, stage.Stats{}, err
				}
				attached[it.Dataset] = d
			}
			mgr.Prefetch(d.Backend(), d.InstancePath(it.Iter), it.Bytes, 0)
		}
		mgr.WaitPrefetch()
		if err := pre.Finalize(); err != nil {
			return nil, stage.Stats{}, err
		}
	}

	// Stage 2: MSE analyzes temp.
	res, err := mse.Run(consumerSys, "wf-mse", mse.Params{
		ProducerRun: "prod", Dataset: "temp",
		Iterations: scale.MaxIter, Procs: scale.Procs,
	})
	if err != nil {
		return nil, stage.Stats{}, fmt.Errorf("workflow mse: %w", err)
	}
	dur["mse"] = res.IOTime

	// Stage 3: volren renders vr_temp into the per-dump image dataset —
	// the stage-private intermediate the plan may relocate.
	env.ResetClocks()
	vres, err := volren.Run(env.Sys, "wf-volren", volren.Params{
		ProducerRun: "prod", Dataset: "vr_temp",
		Iterations: scale.MaxIter, Procs: scale.Procs,
		ImageLocation: placed("volren", "image", core.LocRemoteTape),
	})
	if err != nil {
		return nil, stage.Stats{}, fmt.Errorf("workflow volren: %w", err)
	}
	dur["volren"] = vres.IOTime

	// Stage 4: an interactive viewer replays every image next to the
	// temp field, whole instances at a time (the paper's vizserver
	// access shape).
	env.ResetClocks()
	view, err := consumerSys.Initialize(core.RunConfig{ID: "wf-view", App: "imgview", Iterations: 1, Procs: 1})
	if err != nil {
		return nil, stage.Stats{}, err
	}
	img, err := view.AttachDataset("wf-volren", "image")
	if err != nil {
		return nil, stage.Stats{}, err
	}
	temp, err := view.AttachDataset("prod", "temp")
	if err != nil {
		return nil, stage.Stats{}, err
	}
	p := env.Sim.NewProc("viewer0")
	before := p.Now()
	for iter := 0; iter <= scale.MaxIter; iter += scale.Freq {
		if _, err := img.ReadGlobal(p, iter); err != nil {
			return nil, stage.Stats{}, fmt.Errorf("workflow viewer image: %w", err)
		}
		if _, err := temp.ReadGlobal(p, iter); err != nil {
			return nil, stage.Stats{}, fmt.Errorf("workflow viewer temp: %w", err)
		}
	}
	dur["viewer"] = p.Now() - before
	if err := view.Finalize(); err != nil {
		return nil, stage.Stats{}, err
	}

	var st stage.Stats
	if mgr != nil {
		st = mgr.Stats()
	}
	return dur, st, nil
}

// WorkflowOverlaps is the overlap grid of the experiment.
func WorkflowOverlaps() []float64 { return []float64{0, 0.5, 1} }

// Workflow runs the chain unprovisioned and provisioned in fresh
// environments and composes predicted and measured makespans at each
// overlap level.
func Workflow(scale Scale) (WorkflowResult, error) {
	g := workflow.Pipeline(scale.N, scale.MaxIter, scale.Freq, scale.Procs)
	out := WorkflowResult{Scale: scale}

	// Unprovisioned baseline.
	baseEnv, err := NewEnv()
	if err != nil {
		return out, err
	}
	baseDur, _, err := runWorkflowStages(baseEnv, scale, nil)
	if err != nil {
		return out, err
	}
	basePred, err := g.PredictMakespan(baseEnv.PDB, 0)
	if err != nil {
		return out, err
	}

	// Provisioned leg: plan from the calibrated predictor, fast tiers
	// offered for intermediates, the local disks as the stage cache.
	provEnv, err := NewEnv()
	if err != nil {
		return out, err
	}
	cacheClass := provEnv.Local.Kind().String()
	tiers := []workflow.Tier{
		{Class: provEnv.Local.Kind().String(), Free: 1 << 31},
		{Class: provEnv.RDisk.Kind().String(), Free: 1 << 31},
	}
	plan, err := g.Provision(provEnv.PDB, cacheClass, tiers)
	if err != nil {
		return out, err
	}
	provDur, stats, err := runWorkflowStages(provEnv, scale, plan)
	if err != nil {
		return out, err
	}
	provPred, err := g.PredictMakespanProvisioned(provEnv.PDB, plan, 0)
	if err != nil {
		return out, err
	}

	for _, s := range basePred.Stages {
		row := WorkflowStageRow{Stage: s.Name, Predicted: s.Duration, Measured: baseDur[s.Name]}
		for _, ps := range provPred.Stages {
			if ps.Name == s.Name {
				row.ProvPredicted = ps.Duration
			}
		}
		row.ProvMeasured = provDur[s.Name]
		out.Stages = append(out.Stages, row)
	}
	for _, overlap := range WorkflowOverlaps() {
		mb, err := g.Compose(baseDur, overlap)
		if err != nil {
			return out, err
		}
		pb, err := g.Compose(basePred.Durations(), overlap)
		if err != nil {
			return out, err
		}
		mp, err := g.Compose(provDur, overlap)
		if err != nil {
			return out, err
		}
		pp, err := g.Compose(provPred.Durations(), overlap)
		if err != nil {
			return out, err
		}
		out.Overlaps = append(out.Overlaps, WorkflowOverlapRow{
			Overlap:   overlap,
			Predicted: pb.Makespan, Measured: mb.Makespan,
			ProvPredicted: pp.Makespan, ProvMeasured: mp.Makespan,
			Critical: mb.CriticalPath,
		})
	}
	out.CacheBudget = plan.CacheBudget
	out.ExpectedReads = plan.ExpectedReads
	out.PrefetchItems = len(plan.Prefetch)
	out.PrefetchP95 = plan.PrefetchP95
	for _, ip := range plan.Intermediates {
		out.Placements = append(out.Placements, fmt.Sprintf("%s/%s: %s -> %s", ip.Producer, ip.Dataset, ip.From, ip.To))
	}
	out.Stats = stats
	return out, nil
}

// WorkflowString renders the experiment.
func WorkflowString(r WorkflowResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "per-stage I/O time (s):\n")
	fmt.Fprintf(&b, "%-10s %10s %10s %12s %12s\n", "STAGE", "PRED", "MEAS", "PRED(prov)", "MEAS(prov)")
	for _, s := range r.Stages {
		fmt.Fprintf(&b, "%-10s %10.3f %10.3f %12.3f %12.3f\n",
			s.Stage, s.Predicted.Seconds(), s.Measured.Seconds(),
			s.ProvPredicted.Seconds(), s.ProvMeasured.Seconds())
	}
	fmt.Fprintf(&b, "\ncomposed makespan (s):\n")
	fmt.Fprintf(&b, "%-8s %10s %10s %6s %12s %12s %8s %8s\n",
		"OVERLAP", "PRED", "MEAS", "ERR", "PRED(prov)", "MEAS(prov)", "ERRprov", "SPEEDUP")
	for _, row := range r.Overlaps {
		fmt.Fprintf(&b, "%-8.2f %10.3f %10.3f %5.1f%% %12.3f %12.3f %7.1f%% %7.2fx\n",
			row.Overlap, row.Predicted.Seconds(), row.Measured.Seconds(), 100*row.Err(),
			row.ProvPredicted.Seconds(), row.ProvMeasured.Seconds(), 100*row.ProvErr(),
			row.Speedup())
	}
	fmt.Fprintf(&b, "\nplan: cache budget %d B, expected reads %d, %d prefetch items (p95 copy %.3f s)\n",
		r.CacheBudget, r.ExpectedReads, r.PrefetchItems, r.PrefetchP95.Seconds())
	for _, pl := range r.Placements {
		fmt.Fprintf(&b, "  placed %s\n", pl)
	}
	fmt.Fprintf(&b, "cache: %d hits / %d misses (%.0f%%), %d staged in, %d B moved\n",
		r.Stats.Hits, r.Stats.Misses, 100*r.Stats.HitRate(), r.Stats.StagedIn, r.Stats.BytesMoved())
	fmt.Fprintf(&b, "worst prediction error %.1f%%, min provisioning speedup %.2fx, gate %v\n",
		100*r.MaxErr(), r.MinSpeedup(), WorkflowOK(r))
	return b.String()
}
