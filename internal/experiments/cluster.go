package experiments

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/device"
	"repro/internal/memfs"
	"repro/internal/metadb"
	"repro/internal/model"
	"repro/internal/srb"
	"repro/internal/srbnet"
	"repro/internal/storage"
	"repro/internal/vtime"
)

// ClusterResult is the clustered-broker evaluation: the replicated
// meta-data layer's failover safety (no acked mutation lost, replicas
// bit-identical, budgets re-leased whole), the single-broker
// degeneration (a one-address cluster must cost what the plain client
// costs), and the sharded scale-out win (three brokers beat one on the
// same device-bound workload).
type ClusterResult struct {
	Brokers int
	Shards  int

	// Failover leg (in-process, virtual time).
	AckedMutations  int   // mutations acknowledged across both phases
	LostAcked       int   // acked mutations missing from any survivor
	DumpMismatches  int   // survivor canonical dumps that disagree
	FailoverRetries int   // refusals observed inside the fencing window
	QueueBudget     int64 // the configured cluster-wide admission budget
	SurvivorBudget  int64 // survivor leases summed after the failover

	// Degeneration leg (TCP, scaled time): the same pipelined workload
	// through a plain client and a one-address cluster client.
	Direct        time.Duration // wall clock, plain client
	SingleCluster time.Duration // wall clock, WithCluster over one broker

	// Scale-out leg (TCP, scaled time): the same device-bound workload
	// against one broker and against three sharded brokers.
	SingleBroker time.Duration // wall clock, every shard on one broker
	Sharded      time.Duration // wall clock, shards spread over three
	Redirects    int64         // redirects the sharded client followed
}

// SingleOverDirect is the one-address cluster's wall-clock cost
// relative to the plain client (1.0 = free degeneration).
func (r ClusterResult) SingleOverDirect() float64 {
	if r.Direct <= 0 {
		return 0
	}
	return r.SingleCluster.Seconds() / r.Direct.Seconds()
}

// ShardedSpeedup is the three-broker wall-clock win over the single
// broker on the same workload.
func (r ClusterResult) ShardedSpeedup() float64 {
	if r.Sharded <= 0 {
		return 0
	}
	return r.SingleBroker.Seconds() / r.Sharded.Seconds()
}

// ClusterOK is the acceptance gate: nothing acked is lost, survivor
// replicas agree byte-for-byte, the fencing window was actually
// exercised, the full admission budget survived the failover, and
// sharding pays.
func ClusterOK(r ClusterResult) bool {
	return r.AckedMutations > 0 &&
		r.LostAcked == 0 &&
		r.DumpMismatches == 0 &&
		r.FailoverRetries > 0 &&
		r.SurvivorBudget == r.QueueBudget &&
		r.ShardedSpeedup() >= 2
}

// ClusterString renders the result for the report.
func ClusterString(r ClusterResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d brokers, %d shards\n", r.Brokers, r.Shards)
	fmt.Fprintf(&b, "failover: %d acked mutations, %d lost, %d dump mismatches, %d fenced retries\n",
		r.AckedMutations, r.LostAcked, r.DumpMismatches, r.FailoverRetries)
	fmt.Fprintf(&b, "budgets:  %d of %d bytes re-leased to survivors\n", r.SurvivorBudget, r.QueueBudget)
	fmt.Fprintf(&b, "degeneration: direct %v, one-address cluster %v (%.2fx)\n",
		r.Direct, r.SingleCluster, r.SingleOverDirect())
	fmt.Fprintf(&b, "scale-out: one broker %v, sharded %v (%.2fx, %d redirects)\n",
		r.SingleBroker, r.Sharded, r.ShardedSpeedup(), r.Redirects)
	return b.String()
}

// Cluster runs the three clustered-broker legs.
func Cluster(scale Scale) (ClusterResult, error) {
	res := ClusterResult{Brokers: 3, Shards: 6, QueueBudget: 6 << 20}
	if err := clusterFailoverLeg(scale, &res); err != nil {
		return res, err
	}
	if err := clusterDegenerationLeg(scale, &res); err != nil {
		return res, err
	}
	if err := clusterShardedLeg(scale, &res); err != nil {
		return res, err
	}
	return res, nil
}

// clusterFailoverLeg kills the leader mid-workload and audits the
// survivors: every acknowledged mutation present, canonical dumps
// identical, the admission budget re-leased in full.
func clusterFailoverLeg(scale Scale, res *ClusterResult) error {
	lease := 2 * time.Second
	cl, err := cluster.New(cluster.Config{
		Nodes: res.Brokers, Shards: res.Shards,
		Lease: lease, QueueBudget: res.QueueBudget,
	})
	if err != nil {
		return err
	}
	p := vtime.NewVirtual().NewProc("driver")
	var acked []string
	put := func(n *cluster.Node, id string) error {
		if err := n.DB().PutRun(p, metadb.Run{ID: id, App: "astro3d"}); err != nil {
			return err
		}
		if err := n.DB().AddSample(p, metadb.PerfSample{
			Resource: "remote-disk", Op: "write", Size: int64(4096 * (len(acked) + 1)), Seconds: 0.01,
		}); err != nil {
			return err
		}
		acked = append(acked, id)
		return nil
	}
	phase := 5 * scale.Procs
	for i := 0; i < phase; i++ {
		if err := put(cl.Node(0), fmt.Sprintf("pre-%03d", i)); err != nil {
			return fmt.Errorf("cluster: pre-kill mutation: %w", err)
		}
	}
	cl.Node(0).Kill()

	// Keep writing through the outage the way a live client would:
	// refusals inside the fencing window are retried after a backoff
	// on the rank's clock until the lease lapses and the survivors
	// elect.  Nothing refused was acked, so nothing refused may count.
	leaderID := -1
	for try := 0; try < 64; try++ {
		if id, ok := cl.Leader(p); ok {
			leaderID = id
			break
		}
		if err := put(cl.Node(1), "fenced"); err != nil {
			if !errors.Is(err, cluster.ErrNotLeader) {
				return fmt.Errorf("cluster: fenced write failed oddly: %w", err)
			}
			res.FailoverRetries++
		}
		p.Advance(lease / 8)
	}
	if leaderID != 1 {
		return fmt.Errorf("cluster: leader after failover = %d, want 1", leaderID)
	}
	for i := 0; i < phase; i++ {
		if err := put(cl.Node(leaderID), fmt.Sprintf("post-%03d", i)); err != nil {
			return fmt.Errorf("cluster: post-failover mutation: %w", err)
		}
	}
	res.AckedMutations = len(acked)

	survivors := []*cluster.Node{cl.Node(1), cl.Node(2)}
	for _, n := range survivors {
		for _, id := range acked {
			if _, err := n.DB().GetRun(nil, id); err != nil {
				res.LostAcked++
			}
		}
	}
	dumps := make([]string, len(survivors))
	for i, n := range survivors {
		d, err := metadbCanon(n.DB())
		if err != nil {
			return err
		}
		dumps[i] = d
	}
	if dumps[0] != dumps[1] {
		res.DumpMismatches++
	}
	for _, n := range survivors {
		res.SurvivorBudget += n.Budget().QueueBytes
	}
	return nil
}

// clusterBrokerSet serves n brokers over TCP, each with its own
// multi-channel disk array and a cluster shard router, and returns the
// cluster plus the servers.
func clusterBrokerSet(sim *vtime.Sim, n, shards, channels int) (*cluster.Cluster, []*srbnet.Server, []string, error) {
	cl, err := cluster.New(cluster.Config{Nodes: n, Shards: shards})
	if err != nil {
		return nil, nil, nil, err
	}
	servers := make([]*srbnet.Server, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		broker := srb.NewBroker()
		be, err := device.New(device.Config{
			Name: "sdsc-array", Kind: storage.KindRemoteDisk,
			Params: model.RemoteDisk2000(), Store: memfs.New(), Channels: channels,
		})
		if err != nil {
			return nil, nil, nil, err
		}
		if err := broker.Register(be); err != nil {
			return nil, nil, nil, err
		}
		broker.AddUser("shen", "nwu")
		srv, err := srbnet.Serve("127.0.0.1:0", broker, sim, srbnet.WithShardRouter(cl.Node(i)))
		if err != nil {
			return nil, nil, nil, err
		}
		srv.SetLogf(func(string, ...any) {})
		servers[i] = srv
		addrs[i] = srv.Addr()
	}
	cl.SetAddrs(addrs)
	return cl, servers, addrs, nil
}

// clusterWorkload runs ranks of pipelined whole-file put/get rounds
// through one shared session, rank r working in collection cols[r %
// len(cols)], and returns the wall time.
func clusterWorkload(sim *vtime.Sim, sess storage.Session, ranks, files, chunk int, cols []string) (time.Duration, error) {
	wf, ok := sess.(storage.WholeFiler)
	if !ok {
		return 0, fmt.Errorf("cluster: session lacks whole-file ops")
	}
	procs := make([]*vtime.Proc, ranks)
	for r := range procs {
		procs[r] = sim.NewProc(fmt.Sprintf("rank%d", r))
	}
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, ranks)
	for r := range procs {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			payload := make([]byte, chunk)
			col := cols[r%len(cols)]
			for k := 0; k < files; k++ {
				path := fmt.Sprintf("%s/rank%d/f%03d", col, r, k)
				if err := wf.PutFile(procs[r], path, storage.ModeCreate, payload); err != nil {
					errs[r] = err
					return
				}
				if _, err := wf.GetFile(procs[r], path); err != nil {
					errs[r] = err
					return
				}
			}
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}

// shardCollections probes collection names until every shard in
// 0..want-1 has one, so a workload can address each broker's slice of
// the namespace deliberately.
func shardCollections(want, shards int) []string {
	cols := make([]string, want)
	found := 0
	for i := 0; found < want && i < 100*shards; i++ {
		name := fmt.Sprintf("col%03d", i)
		s := cluster.ShardOf(name, shards)
		if s < want && cols[s] == "" {
			cols[s] = name
			found++
		}
	}
	return cols
}

// clusterDegenerationLeg runs the same pipelined workload through a
// plain client and a one-address cluster client against identical
// single brokers; the cluster layer must cost nothing.
func clusterDegenerationLeg(scale Scale, res *ClusterResult) error {
	files := scale.Dumps()
	run := func(clustered bool) (time.Duration, error) {
		sim := vtime.NewScaled(1e-3)
		_, servers, addrs, err := clusterBrokerSet(sim, 1, 1, 4)
		if err != nil {
			return 0, err
		}
		defer servers[0].Close()
		var opts []srbnet.Option
		if clustered {
			opts = append(opts, srbnet.WithCluster(addrs, 1))
		}
		client := srbnet.NewClient(addrs[0], "shen", "nwu", "sdsc-array", storage.KindRemoteDisk, opts...)
		defer client.Close()
		p := sim.NewProc("rank0")
		sess, err := client.Connect(p)
		if err != nil {
			return 0, err
		}
		defer sess.Close(p)
		return clusterWorkload(sim, sess, scale.Procs, files, 64<<10, []string{"col000"})
	}
	var err error
	if res.Direct, err = run(false); err != nil {
		return fmt.Errorf("cluster: direct leg: %w", err)
	}
	if res.SingleCluster, err = run(true); err != nil {
		return fmt.Errorf("cluster: one-address leg: %w", err)
	}
	return nil
}

// clusterShardedLeg runs the device-bound workload once against a
// single broker holding every shard and once against three sharded
// brokers; the sharded run should win by roughly the broker count.
func clusterShardedLeg(scale Scale, res *ClusterResult) error {
	// Single-channel arrays and 1 MiB files put the workload firmly in
	// the transfer-bound regime (0.27 MiB/s per channel), so wall time
	// tracks the scaled channel waits and the broker count is the
	// parallelism: twelve ranks queue ~12 deep on one broker's channel
	// and 4 deep per broker when sharded across three.
	const ranks, channels = 12, 1
	files := scale.Dumps()
	cols := shardCollections(3, 3)
	run := func(brokers, shards int) (time.Duration, int64, error) {
		sim := vtime.NewScaled(1e-3)
		_, servers, addrs, err := clusterBrokerSet(sim, brokers, shards, channels)
		if err != nil {
			return 0, 0, err
		}
		defer func() {
			for _, s := range servers {
				s.Close()
			}
		}()
		client := srbnet.NewClient(addrs[0], "shen", "nwu", "sdsc-array", storage.KindRemoteDisk,
			srbnet.WithCluster(addrs, shards))
		defer client.Close()
		p := sim.NewProc("rank0")
		sess, err := client.Connect(p)
		if err != nil {
			return 0, 0, err
		}
		defer sess.Close(p)
		d, err := clusterWorkload(sim, sess, ranks, files, 1<<20, cols)
		if err != nil {
			return 0, 0, err
		}
		redirects, _ := client.ClusterStats()
		return d, redirects, nil
	}
	var err error
	if res.SingleBroker, _, err = run(1, 1); err != nil {
		return fmt.Errorf("cluster: single-broker leg: %w", err)
	}
	if res.Sharded, res.Redirects, err = run(3, 3); err != nil {
		return fmt.Errorf("cluster: sharded leg: %w", err)
	}
	return nil
}
