package experiments

import "testing"

// TestStagingBeatsDirectReReads is the acceptance gate for the staging
// engine: at test scale, the staged configuration's second pass must
// beat direct tape reads on both the measured and the predicted I/O
// time, with a non-trivial hit rate and bytes-moved accounting.
func TestStagingBeatsDirectReReads(t *testing.T) {
	rows, err := Staging(TestScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("want direct + staged rows, got %d", len(rows))
	}
	direct, staged := rows[0], rows[1]
	if direct.Staged || !staged.Staged {
		t.Fatalf("row order: want direct then staged, got %+v / %+v", direct.Staged, staged.Staged)
	}
	if staged.Pass2 >= direct.Pass2 {
		t.Errorf("measured: staged re-read %v not faster than direct %v", staged.Pass2, direct.Pass2)
	}
	if staged.Pred2 >= direct.Pred2 {
		t.Errorf("predicted: staged re-read %v not faster than direct %v", staged.Pred2, direct.Pred2)
	}
	if staged.HitRate <= 0 {
		t.Errorf("staged run recorded no cache hits: %+v", staged)
	}
	if staged.BytesStagedIn <= 0 {
		t.Errorf("staged run moved no bytes into the cache: %+v", staged)
	}
	if staged.PeakUsed > staged.Budget {
		t.Errorf("cache peak use %d exceeded budget %d", staged.PeakUsed, staged.Budget)
	}
	if direct.Hits != 0 || direct.StagedIn != 0 {
		t.Errorf("direct run shows cache traffic: %+v", direct)
	}
	if staged.SuggestedMaxRunTime <= staged.Pred1+staged.Pred2 {
		t.Errorf("max-run-time suggestion %v lacks margin over prediction %v",
			staged.SuggestedMaxRunTime, staged.Pred1+staged.Pred2)
	}
}

// TestChaosStageNeverCorrupts runs the staging chaos case: under
// injected faults the runs must either complete (retried stage-ins or
// direct fallbacks) and every surviving cache entry must match its
// home instance byte for byte.
func TestChaosStageNeverCorrupts(t *testing.T) {
	rows, err := ChaosStage(TestScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("want 3 fault-rate rows, got %d", len(rows))
	}
	for _, r := range rows {
		if r.Corrupt {
			t.Errorf("fail_every=%d: cached copy differs from home instance", r.FailEvery)
		}
		if !r.Completed {
			t.Errorf("fail_every=%d: run failed: %s", r.FailEvery, r.Err)
		}
	}
	clean, faulty := rows[0], rows[2]
	if clean.Injected != 0 {
		t.Errorf("clean row injected %d faults", clean.Injected)
	}
	if clean.StagedIn == 0 || clean.Hits == 0 {
		t.Errorf("clean row shows no staging traffic: %+v", clean)
	}
	if faulty.Injected == 0 {
		t.Errorf("faulty row injected no faults: %+v", faulty)
	}
	if faulty.Retries == 0 && faulty.Fallbacks == 0 {
		t.Errorf("faulty row recovered nothing: %+v", faulty)
	}
}
