package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/calib"
	"repro/internal/core"
	"repro/internal/pattern"
	"repro/internal/predict"
	"repro/internal/storage"
)

// ------------------------------------------------------------------
// Calibration: the measured-vs-predicted loop closed online.  The
// performance database is deliberately skewed (as if the resources had
// drifted since PTool last ran: the remote disks degraded, the local
// disks and tapes sped up), Astro3D runs with tracing on, and the
// calibration engine then joins the run's metrics against the skewed
// predictions, flags the drift, and writes refreshed curves back.  The
// experiment reports per-dataset prediction error before and after —
// the acceptance criterion is that calibration strictly shrinks it.

// calibSkew is the drift injected per resource class: the factor the
// write curve is divided by, so predictions are wrong by exactly its
// inverse until calibration.
var calibSkew = map[string]float64{
	"localdisk":  0.35, // database believes local disks are ~3× slower than they are
	"remotedisk": 2.6,  // …and remote disks ~2.6× faster
	"remotetape": 0.45,
}

// CalibRow compares one dataset's measured I/O time against its
// prediction before and after calibration.
type CalibRow struct {
	Dataset    string
	Resource   string
	Measured   time.Duration
	PredBefore time.Duration
	PredAfter  time.Duration
}

// errPct returns the absolute fractional error of pred vs measured.
func errFrac(pred, meas time.Duration) float64 {
	if meas <= 0 {
		return 0
	}
	return math.Abs(pred.Seconds()-meas.Seconds()) / meas.Seconds()
}

// CalibResult is the calibration experiment's outcome.
type CalibResult struct {
	Rows      []CalibRow
	Residuals []calib.Residual
	// MeanAbsErrBefore/After are the mean absolute per-dataset
	// prediction errors (fractions) against the skewed and the
	// calibrated database.
	MeanAbsErrBefore float64
	MeanAbsErrAfter  float64
	// Drifted counts residuals outside the band before calibration.
	Drifted int
}

// calibDataset is one dataset of the calibration workload.  Dims are
// sized so the native units land in the KiB–MiB regime of the PTool
// sweep — the transfer-dominated regime of figures 9–11, where a
// skewed curve visibly corrupts the prediction.  (The Astro3D test
// scale writes units whose cost is dominated by the eq. (1) open/close
// constants, which calibration deliberately leaves alone.)  The run is
// single-process on purpose: like PTool's own sweep, the observed
// per-call costs must be queue-free — with concurrent ranks the trace
// costs include device queue wait, and calibration would bake the
// contention of this particular run into the curve.
type calibDataset struct {
	name  string
	loc   core.Location
	class string
	dims  []int
}

var calibDatasets = []calibDataset{
	// 64×64×16×4 B = 256 KiB, 128×128×16×4 B = 1 MiB, ×64 = 4 MiB.
	{"rdisk_s", core.LocRemoteDisk, "remotedisk", []int{64, 64, 16}},
	{"rdisk_m", core.LocRemoteDisk, "remotedisk", []int{128, 128, 16}},
	{"rdisk_l", core.LocRemoteDisk, "remotedisk", []int{128, 128, 64}},
	{"ldisk_s", core.LocLocalDisk, "localdisk", []int{64, 64, 16}},
	{"ldisk_m", core.LocLocalDisk, "localdisk", []int{128, 128, 16}},
	{"ldisk_l", core.LocLocalDisk, "localdisk", []int{128, 128, 64}},
	{"tape_s", core.LocRemoteTape, "remotetape", []int{64, 64, 16}},
	{"tape_m", core.LocRemoteTape, "remotetape", []int{128, 128, 16}},
	{"tape_l", core.LocRemoteTape, "remotetape", []int{128, 128, 64}},
}

// Calib skews the performance database, runs the traced workload, and
// calibrates.
func Calib(scale Scale) (CalibResult, error) {
	env, err := NewTracedEnv()
	if err != nil {
		return CalibResult{}, err
	}
	// Inject the drift: the run-time system charges true costs, the
	// database predicts skewed ones.
	for class, factor := range calibSkew {
		samples := env.Meta.Samples(nil, class, "write")
		for i := range samples {
			samples[i].Seconds /= factor
		}
		env.Meta.ReplaceSamples(nil, class, "write", samples)
	}

	pat, err := pattern.Parse("B**")
	if err != nil {
		return CalibResult{}, err
	}
	run, err := env.Sys.Initialize(core.RunConfig{
		ID: "calib", App: "calib", Iterations: scale.MaxIter, Procs: 1,
	})
	if err != nil {
		return CalibResult{}, err
	}
	measured := make(map[string]time.Duration, len(calibDatasets))
	for _, cd := range calibDatasets {
		d, err := run.OpenDataset(core.DatasetSpec{
			Name: cd.name, AMode: storage.ModeCreate,
			Dims: cd.dims, Etype: 4, Pattern: pat,
			Location: cd.loc, Frequency: scale.Freq,
		})
		if err != nil {
			return CalibResult{}, err
		}
		n, err := d.LocalSize(0)
		if err != nil {
			return CalibResult{}, err
		}
		bufs := [][]byte{make([]byte, n)}
		for iter := 0; iter <= scale.MaxIter; iter += scale.Freq {
			if err := d.WriteIter(iter, bufs); err != nil {
				return CalibResult{}, err
			}
		}
		measured[cd.name] = d.Stats().IOTime
	}
	if err := run.Finalize(); err != nil {
		return CalibResult{}, err
	}

	predictOne := func(cd calibDataset) (predict.DatasetPrediction, error) {
		return env.PDB.PredictDataset(predict.DatasetReq{
			Name: cd.name, AMode: "create", Dims: cd.dims, Etype: 4,
			Pattern: "B**", Location: cd.class,
			Frequency: scale.Freq, Procs: 1,
		}, scale.MaxIter)
	}
	before := make(map[string]predict.DatasetPrediction, len(calibDatasets))
	for _, cd := range calibDatasets {
		p, err := predictOne(cd)
		if err != nil {
			return CalibResult{}, err
		}
		before[cd.name] = p
	}

	eng := calib.New(calib.Config{Meta: env.Meta, Classes: env.Classes()})
	residuals := eng.Calibrate(env.Metrics.Snapshot())

	res := CalibResult{Residuals: residuals, Drifted: len(calib.Drifted(residuals))}
	var sumBefore, sumAfter float64
	n := 0
	for _, cd := range calibDatasets {
		after, err := predictOne(cd)
		if err != nil {
			return CalibResult{}, err
		}
		meas := measured[cd.name]
		if meas <= 0 {
			continue
		}
		row := CalibRow{
			Dataset: cd.name, Resource: cd.class, Measured: meas,
			PredBefore: before[cd.name].VirtualTime, PredAfter: after.VirtualTime,
		}
		res.Rows = append(res.Rows, row)
		sumBefore += errFrac(row.PredBefore, meas)
		sumAfter += errFrac(row.PredAfter, meas)
		n++
	}
	if n > 0 {
		res.MeanAbsErrBefore = sumBefore / float64(n)
		res.MeanAbsErrAfter = sumAfter / float64(n)
	}
	return res, nil
}

// CalibString renders the calibration experiment report.
func CalibString(r CalibResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %-12s %12s %18s %17s\n",
		"dataset", "resource", "measured(s)", "pred-before(s)", "pred-after(s)")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-14s %-12s %12.3f %12.3f (%+3.0f%%) %12.3f (%+3.0f%%)\n",
			row.Dataset, row.Resource, row.Measured.Seconds(),
			row.PredBefore.Seconds(), (row.PredBefore.Seconds()/row.Measured.Seconds()-1)*100,
			row.PredAfter.Seconds(), (row.PredAfter.Seconds()/row.Measured.Seconds()-1)*100)
	}
	fmt.Fprintf(&b, "mean |error|: before %.1f%%   after %.1f%%   (%d resource/op cells drifted beyond ±%.0f%%)\n",
		r.MeanAbsErrBefore*100, r.MeanAbsErrAfter*100, r.Drifted, calib.DefaultBand*100)
	b.WriteString("\nper-resource residuals (pre-calibration):\n")
	b.WriteString(calib.String(r.Residuals, calib.DefaultBand))
	return b.String()
}
