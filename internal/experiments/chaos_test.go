package experiments

import (
	"testing"

	"repro/internal/apps/astro3d"
	"repro/internal/core"
	"repro/internal/flaky"
	"repro/internal/localdisk"
	"repro/internal/memfs"
	"repro/internal/metadb"
	"repro/internal/remotedisk"
	"repro/internal/resilient"
	"repro/internal/vtime"
)

// TestChaosCompletesWithBoundedOverhead is the acceptance scenario:
// at a 1 % injected transient fault rate the Astro3D run completes,
// every fault is retried, and the virtual-time overhead stays bounded.
func TestChaosCompletesWithBoundedOverhead(t *testing.T) {
	rows, err := Chaos(TestScale(), 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	base, faulty := rows[0], rows[1]
	if !base.Completed || base.Injected != 0 {
		t.Fatalf("baseline = %+v", base)
	}
	if !faulty.Completed {
		t.Fatalf("1%% fault run failed: %s", faulty.Err)
	}
	if faulty.Injected == 0 {
		t.Fatal("no faults injected at 1%")
	}
	if faulty.Retries != faulty.Injected {
		t.Fatalf("retries = %d, injected = %d: some faults not recovered in one attempt", faulty.Retries, faulty.Injected)
	}
	if faulty.IOTime <= base.IOTime {
		t.Fatal("recovery charged no virtual time")
	}
	// Bounded: recovery must not blow the run up (the schedule charges
	// well under one retry-backoff per operation at 1 %).
	if faulty.Overhead > 0.5 {
		t.Fatalf("overhead %.0f%% at a 1%% fault rate", faulty.Overhead*100)
	}
}

// TestAstro3DCheckpointRecovery drives the checkpoint loop over a
// flaky remote disk wrapped by the resilience layer: the run must
// complete and the wrapper's retry count must equal the injected fault
// count (every 20th remote operation fails, each recovered on the
// first retry).
func TestAstro3DCheckpointRecovery(t *testing.T) {
	local, err := localdisk.New("l", memfs.New())
	if err != nil {
		t.Fatal(err)
	}
	rdisk, err := remotedisk.New("r", memfs.New())
	if err != nil {
		t.Fatal(err)
	}
	fb := flaky.Wrap(rdisk, flaky.Policy{FailEvery: 20})
	rb := resilient.Wrap(fb)
	sys, err := core.NewSystem(core.SystemConfig{
		Sim: vtime.NewVirtual(), Meta: metadb.New(),
		LocalDisk: local, RemoteDisk: rb,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := TestScale()
	prm := s.params()
	prm.AnalysisFreq, prm.VizFreq = 0, 0 // checkpoint datasets only
	prm.DefaultLocation = core.LocRemoteDisk
	if _, err := astro3d.Run(sys, "ckpt", prm); err != nil {
		t.Fatalf("checkpoint loop did not survive the fault schedule: %v", err)
	}
	st := rb.Stats()
	if fb.Injected() == 0 {
		t.Fatal("fault schedule never fired")
	}
	if st.Retries != fb.Injected() {
		t.Fatalf("retries = %d, injected = %d", st.Retries, fb.Injected())
	}
	if st.FastFails != 0 {
		t.Fatalf("breaker shed %d calls during a recoverable schedule", st.FastFails)
	}
}
