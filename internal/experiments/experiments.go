// Package experiments regenerates every table and figure of the
// paper's evaluation (§4–§5) against the reproduced system:
//
//	Table 1    — eq. (1) constants per resource (PTool)
//	Table 2    — the Astro3D run-time parameter set
//	Fig 6/7/8  — read/write time vs size on local disk / remote disk / tape
//	Fig 9      — Astro3D total I/O time under five placement scenarios,
//	             measured vs predicted
//	Fig 10(a)  — data-analysis read time, tape vs remote disk
//	Fig 10(b)  — visualization read time, tape vs local disk
//	Fig 10(c)  — superfile vs per-file image access
//	Fig 11     — the per-dataset prediction table
//	§4.2       — the worked example (predicted vs measured)
//	§5 (last)  — failover when the tape system is down
//
// Each experiment builds a fresh environment so device queues, tape
// mounts and capacity usage never leak between scenarios.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/apps/astro3d"
	"repro/internal/apps/mse"
	"repro/internal/apps/volren"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/ioopt"
	"repro/internal/localdisk"
	"repro/internal/memfs"
	"repro/internal/metadb"
	"repro/internal/model"
	"repro/internal/pattern"
	"repro/internal/predict"
	"repro/internal/ptool"
	"repro/internal/remotedisk"
	"repro/internal/storage"
	"repro/internal/tape"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// Env is one fresh experimental environment: the three storage
// resources of the paper's testbed over in-memory stores, a meta-data
// database populated by a PTool sweep, and the predictor on top.
type Env struct {
	Sim     *vtime.Sim
	Sys     *core.System
	Meta    *metadb.DB
	PDB     *predict.DB
	Local   storage.Backend
	RDisk   storage.Backend
	RTape   *tape.Library
	Reports []ptool.Report

	// Rec/Metrics are set by NewTracedEnv: one shared recorder and
	// metrics aggregation wired into all three backends, reset after
	// the PTool sweep so only application traffic is folded.
	Rec     *trace.Recorder
	Metrics *trace.Metrics
}

// Classes maps the environment's backend instance names to the
// resource classes the performance database is keyed by — the join key
// the calibration engine needs.
func (e *Env) Classes() map[string]string {
	return map[string]string{
		e.Local.Name(): e.Local.Kind().String(),
		e.RDisk.Name(): e.RDisk.Kind().String(),
		e.RTape.Name(): e.RTape.Kind().String(),
	}
}

// ResetClocks returns every storage device to idle.  Experiments call
// it between pipeline stages: the paper's post-processing runs after
// the simulation has completed, so the consumer must not queue behind
// the producer's device occupancy.
func (e *Env) ResetClocks() {
	if b, ok := e.Local.(*device.Backend); ok {
		b.ResetClocks()
	}
	if b, ok := e.RDisk.(*device.Backend); ok {
		b.ResetClocks()
	}
	e.RTape.ResetClocks()
}

// NewEnv builds an environment and runs the PTool sweep.
func NewEnv() (*Env, error) { return newEnv(false) }

// NewTracedEnv is NewEnv with one shared trace recorder and metrics
// aggregation wired into every backend.  The recorder and metrics are
// reset after the PTool sweep, so what they hold afterwards is purely
// the application's native calls — the measured side of the
// calibration join.
func NewTracedEnv() (*Env, error) { return newEnv(true) }

func newEnv(traced bool) (*Env, error) {
	sim := vtime.NewVirtual()
	var rec *trace.Recorder
	var met *trace.Metrics
	var lopts []localdisk.Option
	var ropts []remotedisk.Option
	if traced {
		// The metrics fold covers the whole run regardless of the raw
		// retention window, so a bounded window keeps memory flat.
		rec = trace.New(1 << 16)
		met = trace.NewMetrics()
		rec.SetMetrics(met)
		lopts = append(lopts, localdisk.WithTrace(rec))
		ropts = append(ropts, remotedisk.WithTrace(rec))
	}
	local, err := localdisk.New("argonne-ssa", memfs.New(), lopts...)
	if err != nil {
		return nil, err
	}
	rdisk, err := remotedisk.New("sdsc-disk", memfs.New(), ropts...)
	if err != nil {
		return nil, err
	}
	rtape, err := tape.New(tape.Config{Name: "sdsc-hpss", Params: model.RemoteTape2000(), Store: memfs.New(), Trace: rec})
	if err != nil {
		return nil, err
	}
	meta := metadb.New()
	// PTool runs on its own clock domain so the sweep does not preload
	// the experiment devices.
	reports, err := ptool.MeasureAll(vtime.NewVirtual(), meta, ptool.Config{Repeats: 1},
		local, rdisk, rtape)
	if err != nil {
		return nil, err
	}
	local.ResetClocks()
	rdisk.ResetClocks()
	rtape.ResetClocks()
	// Drop the sweep's own traffic: calibration must see only what the
	// application charges.
	rec.Reset()
	met.Reset()
	sys, err := core.NewSystem(core.SystemConfig{
		Sim: sim, Meta: meta,
		LocalDisk: local, RemoteDisk: rdisk, RemoteTape: rtape,
	})
	if err != nil {
		return nil, err
	}
	return &Env{
		Sim: sim, Sys: sys, Meta: meta, PDB: predict.NewDB(meta),
		Local: local, RDisk: rdisk, RTape: rtape, Reports: reports,
		Rec: rec, Metrics: met,
	}, nil
}

// Names is the canonical list of experiment names, in report order.
// cmd/benchreport derives its -exp flag help and validation from this
// list (and a test keeps the command's doc comment in sync), so adding
// an experiment here is the single registration step.
func Names() []string {
	return []string{
		"table1", "table2",
		"fig6", "fig7", "fig8", "fig9", "fig10a", "fig10b", "fig10c", "fig11",
		"worked", "naive", "srbnet", "chaos", "staging", "calib", "qos", "failover",
		"crash", "hsm", "workflow", "cluster",
	}
}

// Scale selects the problem size of an experiment run.
type Scale struct {
	N       int // grid edge (the paper: 128)
	MaxIter int // iterations (the paper: 120)
	Freq    int // dump frequency (the paper: 6)
	Procs   int // parallel ranks (the paper's runs use 8)
}

// PaperScale is the paper's Table 2 parameter set.
func PaperScale() Scale { return Scale{N: 128, MaxIter: 120, Freq: 6, Procs: 8} }

// TestScale is a fast scaled-down variant with the same shape.
func TestScale() Scale { return Scale{N: 16, MaxIter: 12, Freq: 6, Procs: 4} }

func (s Scale) params() astro3d.Params {
	return astro3d.Params{
		Nx: s.N, Ny: s.N, Nz: s.N, MaxIter: s.MaxIter,
		AnalysisFreq: s.Freq, VizFreq: s.Freq, CheckpointFreq: s.Freq,
		Procs: s.Procs,
	}
}

// Dumps returns the paper's instance count N/freq + 1.
func (s Scale) Dumps() int { return s.MaxIter/s.Freq + 1 }

// Table2String renders Table 2 for a scale.
func Table2String(s Scale) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-26s %-22s %s\n", "Item", "Size", "Data type")
	fmt.Fprintf(&b, "%-26s %dx%dx%d\n", "Problem size", s.N, s.N, s.N)
	fmt.Fprintf(&b, "%-26s %d\n", "Max num of iterations", s.MaxIter)
	fmt.Fprintf(&b, "%-26s %-22d %s\n", "Data analysis freq", s.Freq, "Float")
	fmt.Fprintf(&b, "%-26s %-22d %s\n", "Data visualization freq", s.Freq, "Unsigned Char")
	fmt.Fprintf(&b, "%-26s %-22d %s\n", "Checkpointing freq", s.Freq, "Float")
	return b.String()
}

// ------------------------------------------------------------------
// Figure 9: Astro3D write I/O under the five placement scenarios.

// Fig9Row is one bar of figure 9.
type Fig9Row struct {
	Scenario  int
	Desc      string
	Measured  time.Duration
	Predicted time.Duration
	Bytes     int64
}

// fig9Scenario builds the location map of one scenario.
func fig9Scenario(n int) (map[string]core.Location, core.Location, string, error) {
	switch n {
	case 1:
		return nil, core.LocRemoteTape, "all datasets to remote tapes", nil
	case 2:
		return map[string]core.Location{"temp": core.LocRemoteDisk},
			core.LocRemoteTape, "temp to remote disks, others to tapes", nil
	case 3:
		return map[string]core.Location{"temp": core.LocRemoteDisk, "press": core.LocRemoteDisk},
			core.LocDisable, "only temp and press, to remote disks", nil
	case 4:
		return map[string]core.Location{"vr_temp": core.LocLocalDisk},
			core.LocRemoteTape, "vr_temp to local disks, others to tapes", nil
	case 5:
		return map[string]core.Location{"vr_temp": core.LocLocalDisk, "vr_press": core.LocRemoteDisk},
			core.LocDisable, "only vr_temp to local disks and vr_press to remote disks", nil
	default:
		return nil, 0, "", fmt.Errorf("experiments: figure 9 has scenarios 1–5, not %d", n)
	}
}

// Fig9One measures and predicts one scenario in a fresh environment.
func Fig9One(scale Scale, scenario int) (Fig9Row, error) {
	locs, def, desc, err := fig9Scenario(scenario)
	if err != nil {
		return Fig9Row{}, err
	}
	env, err := NewEnv()
	if err != nil {
		return Fig9Row{}, err
	}
	prm := scale.params()
	prm.Locations = locs
	prm.DefaultLocation = def
	rep, err := astro3d.Run(env.Sys, fmt.Sprintf("fig9-%d", scenario), prm)
	if err != nil {
		return Fig9Row{}, err
	}
	pred, err := PredictAstro3D(env.PDB, scale, locs, def)
	if err != nil {
		return Fig9Row{}, err
	}
	return Fig9Row{
		Scenario: scenario, Desc: desc,
		Measured: rep.IOTime, Predicted: pred.Total, Bytes: rep.BytesOut,
	}, nil
}

// Fig9 runs all five scenarios.
func Fig9(scale Scale) ([]Fig9Row, error) {
	rows := make([]Fig9Row, 0, 5)
	for s := 1; s <= 5; s++ {
		row, err := Fig9One(scale, s)
		if err != nil {
			return rows, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PredictAstro3D evaluates eq. (2) for an Astro3D run with the given
// placement, producing the figure 11 table for it.
func PredictAstro3D(pdb *predict.DB, scale Scale, locs map[string]core.Location, def core.Location) (predict.RunPrediction, error) {
	var reqs []predict.DatasetReq
	add := func(names []string, etype int, amode string) {
		for _, name := range names {
			loc, ok := locs[name]
			if !ok {
				loc = def
			}
			resource := "DISABLE"
			switch loc {
			case core.LocLocalDisk:
				resource = "localdisk"
			case core.LocRemoteDisk:
				resource = "remotedisk"
			case core.LocRemoteTape, core.LocAuto:
				resource = "remotetape"
			}
			reqs = append(reqs, predict.DatasetReq{
				Name: name, AMode: amode,
				Dims: []int{scale.N, scale.N, scale.N}, Etype: etype,
				Pattern: "B**", Location: resource,
				Frequency: scale.Freq, Procs: scale.Procs,
			})
		}
	}
	add(astro3d.AnalysisNames(), 4, "create")
	add(astro3d.VizNames(), 1, "create")
	add(astro3d.CheckpointNames(), 4, "over_write")
	return pdb.Predict(predict.RunReq{Iterations: scale.MaxIter, Op: "write", Datasets: reqs})
}

// ------------------------------------------------------------------
// Figure 10(a): data-analysis (MSE) read time, tape vs remote disk.

// Fig10Row is one bar of figure 10.
type Fig10Row struct {
	Config    string
	Measured  time.Duration
	Predicted time.Duration
}

// Fig10a produces temp on each resource and measures the analysis.
func Fig10a(scale Scale) ([]Fig10Row, error) {
	var rows []Fig10Row
	for _, cfg := range []struct {
		name string
		loc  core.Location
	}{
		{"read temp from remote tapes", core.LocRemoteTape},
		{"read temp from remote disks", core.LocRemoteDisk},
	} {
		env, err := NewEnv()
		if err != nil {
			return rows, err
		}
		prm := scale.params()
		prm.VizFreq, prm.CheckpointFreq = 0, 0
		prm.Locations = map[string]core.Location{"temp": cfg.loc}
		prm.DefaultLocation = core.LocDisable
		if _, err := astro3d.Run(env.Sys, "prod", prm); err != nil {
			return rows, err
		}
		env.ResetClocks()
		res, err := mse.Run(env.Sys, "mse", mse.Params{
			ProducerRun: "prod", Dataset: "temp",
			Iterations: scale.MaxIter, Procs: scale.Procs,
		})
		if err != nil {
			return rows, err
		}
		pred, err := env.PDB.Predict(predict.RunReq{
			Iterations: scale.MaxIter, Op: "read",
			Datasets: []predict.DatasetReq{{
				Name: "temp", AMode: "read",
				Dims: []int{scale.N, scale.N, scale.N}, Etype: 4,
				Pattern: "B**", Location: locResource(cfg.loc),
				Frequency: scale.Freq, Procs: scale.Procs,
			}},
		})
		if err != nil {
			return rows, err
		}
		rows = append(rows, Fig10Row{Config: cfg.name, Measured: res.IOTime, Predicted: pred.Total})
	}
	return rows, nil
}

// Fig10b measures the visualization read path (Volren over vr_temp),
// tape vs local disk — the paper's "10 times faster than from tapes".
func Fig10b(scale Scale) ([]Fig10Row, error) {
	var rows []Fig10Row
	for _, cfg := range []struct {
		name string
		loc  core.Location
	}{
		{"read vr_temp from remote tapes", core.LocRemoteTape},
		{"read vr_temp from local disks", core.LocLocalDisk},
	} {
		env, err := NewEnv()
		if err != nil {
			return rows, err
		}
		prm := scale.params()
		prm.AnalysisFreq, prm.CheckpointFreq = 0, 0
		prm.Locations = map[string]core.Location{"vr_temp": cfg.loc}
		prm.DefaultLocation = core.LocDisable
		if _, err := astro3d.Run(env.Sys, "prod", prm); err != nil {
			return rows, err
		}
		env.ResetClocks()
		res, err := volren.Run(env.Sys, "volren", volren.Params{
			ProducerRun: "prod", Dataset: "vr_temp",
			Iterations: scale.MaxIter, Procs: scale.Procs,
			ImageLocation: core.LocDisable,
		})
		if err != nil {
			return rows, err
		}
		pred, err := env.PDB.Predict(predict.RunReq{
			Iterations: scale.MaxIter, Op: "read",
			Datasets: []predict.DatasetReq{{
				Name: "vr_temp", AMode: "read",
				Dims: []int{scale.N, scale.N, scale.N}, Etype: 1,
				Pattern: "B**", Location: locResource(cfg.loc),
				Frequency: scale.Freq, Procs: scale.Procs,
			}},
		})
		if err != nil {
			return rows, err
		}
		rows = append(rows, Fig10Row{Config: cfg.name, Measured: res.IOTime, Predicted: pred.Total})
	}
	return rows, nil
}

// Fig10c measures superfile vs per-file access for the Volren images on
// remote disks: the renderer writes one small image per timestep and
// the viewer then reads them all back.
func Fig10c(scale Scale) ([]Fig10Row, error) {
	var rows []Fig10Row
	for _, cfg := range []struct {
		name string
		opt  ioopt.Kind
	}{
		{"image files accessed one by one", ioopt.Collective},
		{"image files packed in a superfile", ioopt.Superfile},
	} {
		env, err := NewEnv()
		if err != nil {
			return rows, err
		}
		prm := scale.params()
		prm.AnalysisFreq, prm.CheckpointFreq = 0, 0
		prm.Locations = map[string]core.Location{"vr_temp": core.LocLocalDisk}
		prm.DefaultLocation = core.LocDisable
		if _, err := astro3d.Run(env.Sys, "prod", prm); err != nil {
			return rows, err
		}
		env.ResetClocks()
		if _, err := volren.Run(env.Sys, "volren", volren.Params{
			ProducerRun: "prod", Dataset: "vr_temp",
			Iterations: scale.MaxIter, Procs: scale.Procs,
			ImageLocation: core.LocRemoteDisk, ImageOpt: cfg.opt,
		}); err != nil {
			return rows, err
		}
		// The viewer reads every image back from the remote disk.
		env.ResetClocks()
		viewer, err := env.Sys.Initialize(core.RunConfig{ID: "viewer", App: "imgview", Iterations: 1, Procs: 1})
		if err != nil {
			return rows, err
		}
		d, err := viewer.AttachDataset("volren", "image")
		if err != nil {
			return rows, err
		}
		p := env.Sim.NewProc("viewer0")
		before := p.Now()
		for iter := 0; iter <= scale.MaxIter; iter += scale.Freq {
			if _, err := d.ReadGlobal(p, iter); err != nil {
				return rows, err
			}
		}
		measured := p.Now() - before
		opt := cfg.opt
		pred, err := env.PDB.PredictDataset(predict.DatasetReq{
			Name: "image", AMode: "read", Dims: []int{scale.N, scale.N}, Etype: 1,
			Pattern: "B*", Location: "remotedisk", Frequency: scale.Freq,
			Procs: 1, Opt: opt,
		}, scale.MaxIter)
		if err != nil {
			return rows, err
		}
		predicted := pred.VirtualTime
		if opt == ioopt.Superfile {
			// One container read serves every image: a single dump's
			// prediction with the whole container as the unit.
			row, err := env.PDB.PredictDataset(predict.DatasetReq{
				Name: "image", AMode: "read",
				Dims: []int{scale.N, scale.N * scale.Dumps()}, Etype: 1,
				Pattern: "B*", Location: "remotedisk", Frequency: 1, Procs: 1,
			}, 0)
			if err != nil {
				return rows, err
			}
			predicted = row.VirtualTime
		}
		rows = append(rows, Fig10Row{Config: cfg.name, Measured: measured, Predicted: predicted})
	}
	return rows, nil
}

func locResource(l core.Location) string {
	if kind, ok := l.Kind(); ok {
		return kind.String()
	}
	return "remotetape"
}

// ------------------------------------------------------------------
// Figure 11: the per-dataset prediction table for scenario 2.

// Fig11 returns the prediction table for the paper's figure 11 setup
// (temp to remote disks, every other dataset to tapes).
func Fig11(env *Env, scale Scale) (predict.RunPrediction, error) {
	return PredictAstro3D(env.PDB, scale,
		map[string]core.Location{"temp": core.LocRemoteDisk}, core.LocRemoteTape)
}

// ------------------------------------------------------------------
// §4.2 worked example: predicted vs measured.

// WorkedExample returns (predicted, measured) for the paper's example:
// vr-temp to local disks, vr-press to remote disks, N=120, freq 6.
func WorkedExample(scale Scale) (predicted, measured time.Duration, err error) {
	env, err := NewEnv()
	if err != nil {
		return 0, 0, err
	}
	locs := map[string]core.Location{
		"vr_temp":  core.LocLocalDisk,
		"vr_press": core.LocRemoteDisk,
	}
	prm := scale.params()
	prm.AnalysisFreq, prm.CheckpointFreq = 0, 0
	prm.Locations = locs
	prm.DefaultLocation = core.LocDisable
	rep, err := astro3d.Run(env.Sys, "worked", prm)
	if err != nil {
		return 0, 0, err
	}
	pred, err := env.PDB.Predict(predict.RunReq{
		Iterations: scale.MaxIter, Op: "write",
		Datasets: []predict.DatasetReq{
			{Name: "vr_temp", AMode: "create", Dims: []int{scale.N, scale.N, scale.N}, Etype: 1,
				Pattern: "B**", Location: "localdisk", Frequency: scale.Freq, Procs: scale.Procs},
			{Name: "vr_press", AMode: "create", Dims: []int{scale.N, scale.N, scale.N}, Etype: 1,
				Pattern: "B**", Location: "remotedisk", Frequency: scale.Freq, Procs: scale.Procs},
		},
	})
	if err != nil {
		return 0, 0, err
	}
	return pred.Total, rep.IOTime, nil
}

// ------------------------------------------------------------------
// §5 failover: the tape system goes down mid-experiment.

// FailoverResult describes the failover experiment.
type FailoverResult struct {
	PlacedOn   string // resource class the AUTO dataset landed on
	IOTime     time.Duration
	TapeWasUp  bool
	WriteError error // nil: the run survived the outage
}

// Failover takes the tape system down and shows the run proceeding on
// the aggregated remaining resources.
func Failover(scale Scale) (FailoverResult, error) {
	env, err := NewEnv()
	if err != nil {
		return FailoverResult{}, err
	}
	env.RTape.SetDown(true)
	prm := scale.params()
	prm.VizFreq, prm.CheckpointFreq = 0, 0
	prm.Locations = map[string]core.Location{"temp": core.LocAuto}
	prm.DefaultLocation = core.LocDisable
	rep, err := astro3d.Run(env.Sys, "failover", prm)
	if err != nil {
		return FailoverResult{WriteError: err}, nil
	}
	row, err := env.Meta.GetDataset(nil, "failover", "temp")
	if err != nil {
		return FailoverResult{}, err
	}
	var placed string
	for _, be := range []storage.Backend{env.Local, env.RDisk, env.RTape} {
		if be.Name() == row.Resource {
			placed = be.Kind().String()
		}
	}
	return FailoverResult{PlacedOn: placed, IOTime: rep.IOTime}, nil
}

// ------------------------------------------------------------------
// §5 aside: "Note that this time has already been optimized by
// collective I/O.  Without collective I/O, it would be many times
// slower."

// CollectiveAblation writes the temp dataset's dumps to remote disks
// with an inner-dimension distribution (every rank's data strided in
// the file) under collective and under naive I/O, through the user API.
func CollectiveAblation(scale Scale) (collectiveT, naiveT time.Duration, err error) {
	pat, err := pattern.Parse("**B")
	if err != nil {
		return 0, 0, err
	}
	runOne := func(opt ioopt.Kind) (time.Duration, error) {
		env, err := NewEnv()
		if err != nil {
			return 0, err
		}
		run, err := env.Sys.Initialize(core.RunConfig{
			ID: "ablation-" + opt.String(), App: "ablation",
			Iterations: scale.MaxIter, Procs: scale.Procs,
		})
		if err != nil {
			return 0, err
		}
		d, err := run.OpenDataset(core.DatasetSpec{
			Name: "temp", AMode: storage.ModeCreate,
			Dims: []int{scale.N, scale.N, scale.N}, Etype: 4,
			Pattern: pat, Location: core.LocRemoteDisk,
			Frequency: scale.Freq, Opt: opt,
		})
		if err != nil {
			return 0, err
		}
		bufs := make([][]byte, scale.Procs)
		for r := range bufs {
			n, err := d.LocalSize(r)
			if err != nil {
				return 0, err
			}
			bufs[r] = make([]byte, n)
		}
		for iter := 0; iter <= scale.MaxIter; iter += scale.Freq {
			if err := d.WriteIter(iter, bufs); err != nil {
				return 0, err
			}
		}
		io := run.IOTime()
		if err := run.Finalize(); err != nil {
			return 0, err
		}
		return io, nil
	}
	if collectiveT, err = runOne(ioopt.Collective); err != nil {
		return 0, 0, err
	}
	if naiveT, err = runOne(ioopt.Naive); err != nil {
		return 0, 0, err
	}
	return collectiveT, naiveT, nil
}
