//go:build race

package experiments

// raceEnabled reports whether the race detector is compiled in.
// Wall-clock comparisons (the cluster scale-out and degeneration
// legs) skip their ratio gates under -race: the detector's
// instrumentation multiplies the real CPU cost of the wire path,
// swamping the scaled device waits the legs are measuring.
const raceEnabled = true
