package experiments

import "testing"

// TestQoSHeadlines pins the PR's two acceptance criteria: the
// interactive tenant's p95 improves at least 3× over the FIFO
// ablation, and the batched tape re-read mounts strictly fewer
// cartridges than FIFO replaying the shuffle.
func TestQoSHeadlines(t *testing.T) {
	res, err := QoS(TestScale())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", QoSString(res))
	if res.FIFOP95 <= 0 || res.QoSP95 <= 0 {
		t.Fatalf("degenerate latencies: fifo %v qos %v", res.FIFOP95, res.QoSP95)
	}
	if iso := res.Isolation(); iso < 3 {
		t.Errorf("isolation %.2f× < 3× (fifo p95 %v, qos p95 %v)", iso, res.FIFOP95, res.QoSP95)
	}
	if res.BatchMounts >= res.FIFOMounts {
		t.Errorf("batching did not reduce mounts: fifo %d, batched %d", res.FIFOMounts, res.BatchMounts)
	}
	if res.Batches == 0 || res.Batched == 0 {
		t.Errorf("no batches formed (batches %d, batched %d)", res.Batches, res.Batched)
	}
}
