package resilient

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/storage"
	"repro/internal/vtime"
)

func TestDoRetriesTransientAndChargesVirtualTime(t *testing.T) {
	p := vtime.NewVirtual().NewProc("p")
	po := Policy{MaxAttempts: 4, BaseDelay: time.Second, MaxDelay: 8 * time.Second, Multiplier: 2, Jitter: 0}
	calls := 0
	err := po.Do(p, "k", nil, func() error {
		calls++
		if calls < 3 {
			return storage.ErrDown
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err = %v, calls = %d", err, calls)
	}
	// Two retries: 1 s + 2 s of backoff charged to the virtual clock.
	if want := 3 * time.Second; p.Now() != want {
		t.Fatalf("virtual backoff = %v, want %v", p.Now(), want)
	}
}

func TestDoPermanentReturnsImmediately(t *testing.T) {
	p := vtime.NewVirtual().NewProc("p")
	calls := 0
	err := Policy{}.Do(p, "k", nil, func() error {
		calls++
		return storage.ErrNotExist
	})
	if !errors.Is(err, storage.ErrNotExist) || calls != 1 {
		t.Fatalf("err = %v, calls = %d", err, calls)
	}
	if p.Now() != 0 {
		t.Fatalf("permanent failure charged backoff: %v", p.Now())
	}
}

func TestDoExhaustionIsMarkedPermanent(t *testing.T) {
	p := vtime.NewVirtual().NewProc("p")
	po := Policy{MaxAttempts: 3, BaseDelay: time.Millisecond, Jitter: 0}
	calls := 0
	err := po.Do(p, "k", nil, func() error { calls++; return storage.ErrDown })
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	if !errors.Is(err, ErrRetriesExhausted) || !errors.Is(err, storage.ErrDown) {
		t.Fatalf("exhaustion err = %v", err)
	}
	if !Permanent(err) {
		t.Fatal("exhausted retry budget must classify permanent")
	}
}

// TestBackoffDeterministicJitter: the schedule is a pure function of
// (policy, key, attempt), so identical runs charge identical time.
func TestBackoffDeterministicJitter(t *testing.T) {
	po := Policy{BaseDelay: time.Second, MaxDelay: time.Minute, Multiplier: 2, Jitter: 0.25}
	for retry := 1; retry <= 6; retry++ {
		a := po.Backoff(retry, "be/op")
		b := po.Backoff(retry, "be/op")
		if a != b {
			t.Fatalf("retry %d: nondeterministic backoff %v vs %v", retry, a, b)
		}
		if a <= 0 {
			t.Fatalf("retry %d: non-positive backoff %v", retry, a)
		}
	}
	if po.Backoff(2, "a/x") == po.Backoff(2, "b/y") {
		t.Log("jitter collision across keys (allowed, but suspicious)")
	}
}

// TestBackoffCapped: growth stops at MaxDelay (+jitter headroom).
func TestBackoffCapped(t *testing.T) {
	po := Policy{BaseDelay: time.Second, MaxDelay: 4 * time.Second, Multiplier: 2, Jitter: 0}
	if d := po.Backoff(10, "k"); d != 4*time.Second {
		t.Fatalf("uncapped backoff %v", d)
	}
	jittered := Policy{BaseDelay: time.Second, MaxDelay: 4 * time.Second, Multiplier: 2, Jitter: 0.25}
	if d := jittered.Backoff(10, "k"); d > 5*time.Second {
		t.Fatalf("backoff beyond cap+jitter: %v", d)
	}
}

func TestOnRetryObservesDelays(t *testing.T) {
	p := vtime.NewVirtual().NewProc("p")
	po := Policy{MaxAttempts: 3, BaseDelay: time.Second, Multiplier: 2, Jitter: 0}
	var total time.Duration
	calls := 0
	err := po.Do(p, "k", func(d time.Duration) { total += d }, func() error {
		calls++
		if calls < 3 {
			return fmt.Errorf("wire: %w", storage.ErrDown)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != p.Now() || total != 3*time.Second {
		t.Fatalf("observed %v, clock %v", total, p.Now())
	}
}
