package resilient

import (
	"fmt"
	"hash/fnv"
	"time"

	"repro/internal/vtime"
)

// Defaults for Policy fields left zero.
const (
	DefaultMaxAttempts = 4
	DefaultBaseDelay   = 250 * time.Millisecond
	DefaultMaxDelay    = 8 * time.Second
	DefaultMultiplier  = 2.0
	DefaultJitter      = 0.25
)

// ErrRetriesExhausted wraps the last transient error once a retry
// budget runs out.  The wrapped result is additionally MarkPermanent'd
// so outer retry layers stop immediately.
var ErrRetriesExhausted = fmt.Errorf("resilient: retries exhausted")

// Policy bounds a retry loop.  Delays between attempts are charged to
// the calling process's virtual clock, so recovery cost appears in the
// run's eq. (1)/(2) accounting exactly like device time would.
type Policy struct {
	// MaxAttempts is the total number of tries (first call included).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry.
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth.
	MaxDelay time.Duration
	// Multiplier grows the delay per retry (2 = doubling).
	Multiplier float64
	// Jitter is the fraction of the delay randomized deterministically
	// (0.25 = ±25%, derived from a hash of key and attempt so identical
	// runs charge identical time).
	Jitter float64
}

func (po Policy) withDefaults() Policy {
	if po.MaxAttempts <= 0 {
		po.MaxAttempts = DefaultMaxAttempts
	}
	if po.BaseDelay <= 0 {
		po.BaseDelay = DefaultBaseDelay
	}
	if po.MaxDelay <= 0 {
		po.MaxDelay = DefaultMaxDelay
	}
	if po.Multiplier < 1 {
		po.Multiplier = DefaultMultiplier
	}
	if po.Jitter < 0 || po.Jitter > 1 {
		po.Jitter = DefaultJitter
	}
	return po
}

// Backoff returns the delay to charge before retry number retry
// (1-based), with deterministic jitter keyed on key.  Exported so the
// srbnet redial path and tests share the exact schedule.
func (po Policy) Backoff(retry int, key string) time.Duration {
	po = po.withDefaults()
	d := float64(po.BaseDelay)
	for i := 1; i < retry; i++ {
		d *= po.Multiplier
		if d >= float64(po.MaxDelay) {
			break
		}
	}
	if d > float64(po.MaxDelay) {
		d = float64(po.MaxDelay)
	}
	if po.Jitter > 0 {
		h := fnv.New64a()
		fmt.Fprintf(h, "%s#%d", key, retry)
		// Map the hash onto [-jitter, +jitter).
		frac := float64(h.Sum64()%2048)/1024 - 1
		d *= 1 + po.Jitter*frac
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

// Do runs f under the policy: transient failures are retried after a
// backoff charged to p's virtual clock; permanent failures return
// immediately.  key seeds the deterministic jitter (use the backend
// name plus operation).  onRetry, if non-nil, observes each charged
// backoff.  When the budget runs out the last error is wrapped with
// ErrRetriesExhausted and marked permanent.
//
// When the error carries an admission-control honor-after hint
// (RetryAfterOf), the hint replaces the exponential schedule for that
// retry: the server knows how long its queue needs to drain, and a
// shorter local guess would just be shed again.  The policy's jitter
// is still applied — upward only — so many shed clients do not return
// in lockstep.
func (po Policy) Do(p *vtime.Proc, key string, onRetry func(delay time.Duration), f func() error) error {
	po = po.withDefaults()
	var err error
	for attempt := 1; ; attempt++ {
		err = f()
		if err == nil || Permanent(err) {
			return err
		}
		if attempt >= po.MaxAttempts {
			return MarkPermanent(fmt.Errorf("%w (%d attempts): %w", ErrRetriesExhausted, po.MaxAttempts, err))
		}
		delay := po.Backoff(attempt, key)
		if after, ok := RetryAfterOf(err); ok {
			delay = po.honorAfter(after, attempt, key)
		}
		p.Advance(delay)
		if onRetry != nil {
			onRetry(delay)
		}
	}
}

// honorAfter turns a server hint into the charged delay: never earlier
// than the server asked, skewed upward by up to the policy's jitter
// fraction with the same deterministic hash as Backoff.
func (po Policy) honorAfter(after time.Duration, retry int, key string) time.Duration {
	d := float64(after)
	if po.Jitter > 0 {
		h := fnv.New64a()
		fmt.Fprintf(h, "%s@%d", key, retry)
		frac := float64(h.Sum64()%2048) / 2048 // [0, 1)
		d *= 1 + po.Jitter*frac
	}
	return time.Duration(d)
}
