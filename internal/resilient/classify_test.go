package resilient

import (
	"errors"
	"fmt"
	"io"
	"net"
	"testing"

	"repro/internal/storage"
)

// timeoutErr implements net.Error.
type timeoutErr struct{}

func (timeoutErr) Error() string   { return "i/o timeout" }
func (timeoutErr) Timeout() bool   { return true }
func (timeoutErr) Temporary() bool { return true }

func TestClassificationTable(t *testing.T) {
	cases := []struct {
		name      string
		err       error
		transient bool
	}{
		{"nil", nil, false},
		{"down", storage.ErrDown, true},
		{"wrapped down", fmt.Errorf("flaky %q: injected write fault: %w", "be", storage.ErrDown), true},
		{"not exist", storage.ErrNotExist, false},
		{"exist", storage.ErrExist, false},
		{"read only", storage.ErrReadOnly, false},
		{"bad path", storage.ErrBadPath, false},
		{"capacity", storage.ErrCapacity, false},
		{"closed", storage.ErrClosed, false},
		{"closed wrapped", fmt.Errorf("srbnet client: %w", storage.ErrClosed), false},
		{"net.Error", timeoutErr{}, true},
		{"wrapped net.Error", fmt.Errorf("srbnet client: dial: %w", timeoutErr{}), true},
		{"net.ErrClosed", net.ErrClosed, true},
		{"eof", io.EOF, true},
		{"unexpected eof", fmt.Errorf("srbnet client: recv: %w", io.ErrUnexpectedEOF), true},
		{"closed pipe", io.ErrClosedPipe, true},
		{"unknown", errors.New("some app error"), false},
		{"circuit open", ErrCircuitOpen, true},
		{"marked transient unknown", MarkTransient(errors.New("custom outage")), true},
		{"marked permanent down", MarkPermanent(storage.ErrDown), false},
		{"exhausted wrap is permanent", MarkPermanent(fmt.Errorf("%w: %w", ErrRetriesExhausted, storage.ErrDown)), false},
	}
	for _, tc := range cases {
		if got := Transient(tc.err); got != tc.transient {
			t.Errorf("%s: Transient = %v, want %v", tc.name, got, tc.transient)
		}
		wantPerm := tc.err != nil && !tc.transient
		if got := Permanent(tc.err); got != wantPerm {
			t.Errorf("%s: Permanent = %v, want %v", tc.name, got, wantPerm)
		}
	}
}

// TestMarksPreserveChain: marking must not break errors.Is on the
// underlying sentinel.
func TestMarksPreserveChain(t *testing.T) {
	err := MarkPermanent(fmt.Errorf("gave up: %w", storage.ErrDown))
	if !errors.Is(err, storage.ErrDown) {
		t.Fatal("MarkPermanent broke the sentinel chain")
	}
	if Transient(err) {
		t.Fatal("marked permanent still transient")
	}
	err2 := MarkTransient(fmt.Errorf("glitch: %w", storage.ErrNotExist))
	if !errors.Is(err2, storage.ErrNotExist) {
		t.Fatal("MarkTransient broke the sentinel chain")
	}
	if !Transient(err2) {
		t.Fatal("marked transient not transient")
	}
	if MarkTransient(nil) != nil || MarkPermanent(nil) != nil {
		t.Fatal("marking nil must stay nil")
	}
}

// TestCircuitOpenIsDown: a tripped circuit must look like a declared
// outage to existing ErrDown handling (replica skips, placement skips).
func TestCircuitOpenIsDown(t *testing.T) {
	if !errors.Is(ErrCircuitOpen, storage.ErrDown) {
		t.Fatal("ErrCircuitOpen must wrap storage.ErrDown")
	}
}
