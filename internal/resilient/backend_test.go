package resilient

import (
	"errors"
	"testing"
	"time"

	"repro/internal/flaky"
	"repro/internal/localdisk"
	"repro/internal/memfs"
	"repro/internal/storage"
	"repro/internal/vtime"
)

func flakyDisk(t *testing.T, pol flaky.Policy) *flaky.Backend {
	t.Helper()
	inner, err := localdisk.New("ssa", memfs.New())
	if err != nil {
		t.Fatal(err)
	}
	return flaky.Wrap(inner, pol)
}

// TestRetriesMaskEveryNthFault: a 1-in-3 write fault rate never
// surfaces to the caller, and every retry charges virtual time.
func TestRetriesMaskEveryNthFault(t *testing.T) {
	fb := flakyDisk(t, flaky.Policy{FailEvery: 3, Ops: []string{"write"}})
	b := Wrap(fb, WithPolicy(Policy{MaxAttempts: 3, BaseDelay: time.Second, Jitter: 0}))
	p := vtime.NewVirtual().NewProc("p")
	sess, err := b.Connect(p)
	if err != nil {
		t.Fatal(err)
	}
	h, err := sess.Open(p, "f", storage.ModeCreate)
	if err != nil {
		t.Fatal(err)
	}
	before := p.Now()
	for i := 0; i < 30; i++ {
		if _, err := h.WriteAt(p, []byte{byte(i)}, int64(i)); err != nil {
			t.Fatalf("write %d: fault surfaced: %v", i, err)
		}
	}
	if err := h.Close(p); err != nil {
		t.Fatal(err)
	}
	st := b.Stats()
	if st.Faults == 0 || st.Retries != st.Faults {
		t.Fatalf("stats = %+v, want every fault retried once", st)
	}
	if fb.Injected() != st.Faults {
		t.Fatalf("injected %d faults, wrapper observed %d", fb.Injected(), st.Faults)
	}
	if charged := p.Now() - before; charged < time.Duration(st.Retries)*time.Second/2 {
		t.Fatalf("backoff not charged to virtual time: %v for %d retries", charged, st.Retries)
	}
	if st.Backoff == 0 {
		t.Fatal("no backoff accounted")
	}
	// The data must be intact after recovery.
	r, err := sess.Open(p, "f", storage.ModeRead)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 30)
	if _, err := r.ReadAt(p, buf, 0); err != nil {
		t.Fatal(err)
	}
	for i := range buf {
		if buf[i] != byte(i) {
			t.Fatalf("byte %d = %d after recovery", i, buf[i])
		}
	}
}

// TestPermanentErrorsPassThrough: a missing file is not retried.
func TestPermanentErrorsPassThrough(t *testing.T) {
	b := Wrap(flakyDisk(t, flaky.Policy{}))
	p := vtime.NewVirtual().NewProc("p")
	sess, err := b.Connect(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Open(p, "absent", storage.ModeRead); !errors.Is(err, storage.ErrNotExist) {
		t.Fatalf("err = %v", err)
	}
	if st := b.Stats(); st.Retries != 0 {
		t.Fatalf("permanent error retried: %+v", st)
	}
}

// TestBreakerShedsLoadAndReportsDown: a solidly failing backend trips
// the circuit; further calls fast-fail and Down() reports the outage.
func TestBreakerShedsLoadAndReportsDown(t *testing.T) {
	fb := flakyDisk(t, flaky.Policy{FailEvery: 1, Ops: []string{"write"}})
	b := Wrap(fb,
		WithPolicy(Policy{MaxAttempts: 2, BaseDelay: time.Millisecond, Jitter: 0}),
		WithBreakerConfig(BreakerConfig{FailureThreshold: 4, Cooldown: time.Hour}))
	p := vtime.NewVirtual().NewProc("p")
	sess, err := b.Connect(p)
	if err != nil {
		t.Fatal(err)
	}
	h, err := sess.Open(p, "f", storage.ModeCreate)
	if err != nil {
		t.Fatal(err)
	}
	if b.Down() {
		t.Fatal("down before any fault")
	}
	// First write: 2 attempts, both fail → exhausted (2 faults).
	// Second write: 2 more faults → breaker opens at threshold 4.
	for i := 0; i < 2; i++ {
		if _, err := h.WriteAt(p, []byte{1}, 0); err == nil {
			t.Fatal("write unexpectedly succeeded")
		}
	}
	if b.Breaker().State() != Open {
		t.Fatalf("breaker = %v after sustained faults", b.Breaker().State())
	}
	if !b.Down() {
		t.Fatal("open circuit not reported as down")
	}
	injectedBefore := fb.Injected()
	_, err = h.WriteAt(p, []byte{1}, 0)
	if !errors.Is(err, ErrCircuitOpen) || !errors.Is(err, storage.ErrDown) {
		t.Fatalf("fast-fail err = %v", err)
	}
	if fb.Injected() != injectedBefore {
		t.Fatal("open circuit still probed the backend")
	}
	if st := b.Stats(); st.FastFails == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestBreakerRecoversViaProbe: once the virtual cooldown passes, one
// probe closes the circuit again after the fault clears.
func TestBreakerRecoversViaProbe(t *testing.T) {
	fb := flakyDisk(t, flaky.Policy{FailEvery: 1, Ops: []string{"write"}})
	b := Wrap(fb,
		WithPolicy(Policy{MaxAttempts: 1}),
		WithBreakerConfig(BreakerConfig{FailureThreshold: 2, Cooldown: 10 * time.Second}))
	p := vtime.NewVirtual().NewProc("p")
	sess, _ := b.Connect(p)
	h, err := sess.Open(p, "f", storage.ModeCreate)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		h.WriteAt(p, []byte{1}, 0)
	}
	if b.Breaker().State() != Open {
		t.Fatalf("breaker = %v", b.Breaker().State())
	}
	// Clear the fault and advance past the cooldown: the next call is
	// the half-open probe and closes the circuit.
	fb.SetPolicy(flaky.Policy{})
	p.Advance(11 * time.Second)
	if _, err := h.WriteAt(p, []byte{2}, 0); err != nil {
		t.Fatalf("probe failed: %v", err)
	}
	if b.Breaker().State() != Closed {
		t.Fatalf("breaker = %v after successful probe", b.Breaker().State())
	}
	if b.Down() {
		t.Fatal("recovered backend still down")
	}
}

// stubVector is an in-memory backend whose handles implement
// storage.VectorHandle and whose sessions implement storage.WholeFiler,
// to verify the wrapper preserves the batched fast paths.
type stubVector struct {
	storage.Backend
	calls *int
}

type stubVectorSession struct {
	storage.Session
	calls *int
}

type stubVectorHandle struct {
	storage.Handle
	calls *int
}

func (s *stubVectorSession) Open(p *vtime.Proc, name string, mode storage.AMode) (storage.Handle, error) {
	h, err := s.Session.Open(p, name, mode)
	if err != nil {
		return nil, err
	}
	return &stubVectorHandle{Handle: h, calls: s.calls}, nil
}

func (s *stubVectorSession) PutFile(p *vtime.Proc, name string, mode storage.AMode, data []byte) error {
	*s.calls++
	return storage.PutFile(p, s.Session, name, mode, data)
}

func (s *stubVectorSession) GetFile(p *vtime.Proc, name string) ([]byte, error) {
	*s.calls++
	return storage.GetFile(p, s.Session, name)
}

func (h *stubVectorHandle) ReadAtV(p *vtime.Proc, vecs []storage.Vec) (int64, error) {
	*h.calls++
	var total int64
	for _, v := range vecs {
		n, err := h.ReadAt(p, v.B, v.Off)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

func (h *stubVectorHandle) WriteAtV(p *vtime.Proc, vecs []storage.Vec) (int64, error) {
	*h.calls++
	var total int64
	for _, v := range vecs {
		n, err := h.WriteAt(p, v.B, v.Off)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

func (b *stubVector) Connect(p *vtime.Proc) (storage.Session, error) {
	s, err := b.Backend.Connect(p)
	if err != nil {
		return nil, err
	}
	return &stubVectorSession{Session: s, calls: b.calls}, nil
}

// TestBatchedPathsStayBatched: wrapping must surface VectorHandle and
// WholeFiler exactly when the inner backend has them.
func TestBatchedPathsStayBatched(t *testing.T) {
	inner, err := localdisk.New("ssa", memfs.New())
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	stub := &stubVector{Backend: inner, calls: &calls}
	b := Wrap(stub)
	p := vtime.NewVirtual().NewProc("p")
	sess, err := b.Connect(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sess.(storage.WholeFiler); !ok {
		t.Fatal("wrapper hides WholeFiler")
	}
	if err := storage.PutFile(p, sess, "f", storage.ModeCreate, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("PutFile fast path not taken: calls = %d", calls)
	}
	h, err := sess.Open(p, "f", storage.ModeRead)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := h.(storage.VectorHandle); !ok {
		t.Fatal("wrapper hides VectorHandle")
	}
	buf := make([]byte, 3)
	if _, err := storage.ReadV(p, h, []storage.Vec{{Off: 0, B: buf}}); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("ReadAtV fast path not taken: calls = %d", calls)
	}
	if string(buf) != "abc" {
		t.Fatalf("got %q", buf)
	}

	// A plain backend must NOT grow the optional interfaces.
	plain := Wrap(inner)
	plainSess, err := plain.Connect(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := plainSess.(storage.WholeFiler); ok {
		t.Fatal("wrapper invents WholeFiler")
	}
	ph, err := plainSess.Open(p, "g", storage.ModeCreate)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ph.(storage.VectorHandle); ok {
		t.Fatal("wrapper invents VectorHandle")
	}
}

// TestCreateRetrySeam: a create whose first attempt failed transiently
// and whose retry sees ErrExist reopens the half-created file.
type createSeam struct {
	storage.Backend
	tripped bool
}

type createSeamSession struct {
	storage.Session
	b *createSeam
}

func (b *createSeam) Connect(p *vtime.Proc) (storage.Session, error) {
	s, err := b.Backend.Connect(p)
	if err != nil {
		return nil, err
	}
	return &createSeamSession{Session: s, b: b}, nil
}

func (s *createSeamSession) Open(p *vtime.Proc, name string, mode storage.AMode) (storage.Handle, error) {
	if mode == storage.ModeCreate && !s.b.tripped {
		// The create lands server-side but the reply is lost.
		s.b.tripped = true
		if h, err := s.Session.Open(p, name, mode); err == nil {
			h.Close(p)
		}
		return nil, MarkTransient(errors.New("reply lost"))
	}
	return s.Session.Open(p, name, mode)
}

func TestCreateRetrySeam(t *testing.T) {
	inner, err := localdisk.New("ssa", memfs.New())
	if err != nil {
		t.Fatal(err)
	}
	b := Wrap(&createSeam{Backend: inner}, WithPolicy(Policy{MaxAttempts: 3, BaseDelay: time.Millisecond, Jitter: 0}))
	p := vtime.NewVirtual().NewProc("p")
	sess, err := b.Connect(p)
	if err != nil {
		t.Fatal(err)
	}
	h, err := sess.Open(p, "f", storage.ModeCreate)
	if err != nil {
		t.Fatalf("retried create failed: %v", err)
	}
	if _, err := h.WriteAt(p, []byte("ok"), 0); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(p); err != nil {
		t.Fatal(err)
	}
}
