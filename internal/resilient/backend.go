package resilient

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/storage"
	"repro/internal/vtime"
)

// Option configures a resilient Backend wrapper.
type Option func(*Backend)

// WithPolicy sets the retry policy (zero fields take defaults).
func WithPolicy(po Policy) Option {
	return func(b *Backend) { b.policy = po.withDefaults() }
}

// WithBreakerConfig tunes the wrapper's circuit breaker.  Ignored when
// WithHealth supplies a shared registry, whose configuration wins.
func WithBreakerConfig(cfg BreakerConfig) Option {
	return func(b *Backend) { b.breakerCfg = cfg.withDefaults() }
}

// WithHealth registers the wrapper's breaker in a shared Health
// registry (keyed by the backend name), so placement and replication
// observe the same circuit this wrapper feeds.
func WithHealth(h *Health) Option {
	return func(b *Backend) { b.health = h }
}

// Stats counts the recovery work a wrapper has performed.
type Stats struct {
	// Faults is the number of transient failures observed.
	Faults int64
	// Retries is the number of re-attempts issued.
	Retries int64
	// FastFails is the number of calls rejected by an open circuit
	// without touching the backend.
	FastFails int64
	// Backoff is the virtual time charged to retry delays.
	Backoff time.Duration
}

// Backend wraps a storage.Backend with transparent fault recovery:
// transient failures are retried with capped exponential backoff
// charged to the calling process's virtual clock, a circuit breaker
// sheds load from a persistently failing resource, and permanent
// failures pass through unchanged.  Sessions and handles returned by
// the wrapper keep the inner backend's batched fast paths: when the
// inner handle implements storage.VectorHandle (or the session
// storage.WholeFiler), so does the wrapper.
//
// Retries give every operation at-least-once semantics.  All wrapped
// operations are idempotent (offset-addressed reads and writes,
// whole-file puts), with two seams handled explicitly: a retried
// ModeCreate open that finds the file already created by a
// half-completed attempt reopens it with ModeWrite, and a retried
// Remove that finds the file already gone succeeds.
type Backend struct {
	inner      storage.Backend
	policy     Policy
	breakerCfg BreakerConfig
	health     *Health
	breaker    *Breaker

	faults    atomic.Int64
	retries   atomic.Int64
	fastFails atomic.Int64
	backoff   atomic.Int64 // time.Duration
}

var (
	_ storage.Backend = (*Backend)(nil)
	_ storage.Outage  = (*Backend)(nil)
)

// Wrap returns a resilient view of inner.
func Wrap(inner storage.Backend, opts ...Option) *Backend {
	b := &Backend{
		inner:      inner,
		policy:     Policy{}.withDefaults(),
		breakerCfg: BreakerConfig{}.withDefaults(),
	}
	for _, o := range opts {
		o(b)
	}
	if b.health != nil {
		b.breaker = b.health.Breaker(inner.Name())
	} else {
		b.breaker = NewBreaker(b.breakerCfg)
	}
	return b
}

// Name implements storage.Backend.  The wrapper keeps the inner name so
// breaker registries, meta-data rows and placement all agree on the
// resource's identity.
func (b *Backend) Name() string { return b.inner.Name() }

// Kind implements storage.Backend.
func (b *Backend) Kind() storage.Kind { return b.inner.Kind() }

// Capacity implements storage.Backend.
func (b *Backend) Capacity() (total, used int64) { return b.inner.Capacity() }

// Inner returns the wrapped backend.
func (b *Backend) Inner() storage.Backend { return b.inner }

// Breaker returns the wrapper's circuit breaker.
func (b *Backend) Breaker() *Breaker { return b.breaker }

// Stats snapshots the recovery counters.
func (b *Backend) Stats() Stats {
	return Stats{
		Faults:    b.faults.Load(),
		Retries:   b.retries.Load(),
		FastFails: b.fastFails.Load(),
		Backoff:   time.Duration(b.backoff.Load()),
	}
}

// SetDown forwards outage control to the inner backend when supported.
func (b *Backend) SetDown(down bool) {
	if o, ok := b.inner.(storage.Outage); ok {
		o.SetDown(down)
	}
}

// Down implements storage.Outage: the resource is unavailable when the
// inner backend declares an outage or the circuit is open, so hint- and
// health-driven placement route around a tripped resource exactly like
// a declared outage.
func (b *Backend) Down() bool {
	if o, ok := b.inner.(storage.Outage); ok && o.Down() {
		return true
	}
	return b.breaker.State() == Open
}

// do runs one logical operation under the breaker and the retry
// policy.  Backoff between attempts is charged to p's virtual clock;
// the breaker observes every attempt's outcome, so a retry storm that
// keeps failing trips the circuit and ends the loop early.
func (b *Backend) do(p *vtime.Proc, op string, f func(attempt int) error) error {
	for attempt := 1; ; attempt++ {
		if !b.breaker.Allow(p.Now()) {
			b.fastFails.Add(1)
			return fmt.Errorf("resilient %q %s: %w", b.Name(), op, ErrCircuitOpen)
		}
		err := f(attempt)
		b.breaker.Report(p.Now(), err)
		if err == nil {
			return nil
		}
		if Permanent(err) {
			return err
		}
		b.faults.Add(1)
		if attempt >= b.policy.MaxAttempts {
			return MarkPermanent(fmt.Errorf("resilient %q %s: %w (%d attempts): %w",
				b.Name(), op, ErrRetriesExhausted, b.policy.MaxAttempts, err))
		}
		delay := b.policy.Backoff(attempt, b.Name()+"/"+op)
		p.Advance(delay)
		b.retries.Add(1)
		b.backoff.Add(int64(delay))
	}
}

// Connect implements storage.Backend, retrying transient connection
// failures.
func (b *Backend) Connect(p *vtime.Proc) (storage.Session, error) {
	var inner storage.Session
	err := b.do(p, "connect", func(int) error {
		var err error
		inner, err = b.inner.Connect(p)
		return err
	})
	if err != nil {
		return nil, err
	}
	return wrapSession(b, inner), nil
}

// session wraps one inner session with recovery.
type session struct {
	b     *Backend
	inner storage.Session
}

// wholeFilerSession additionally exposes the inner session's batched
// whole-file fast path.
type wholeFilerSession struct {
	*session
	wf storage.WholeFiler
}

var _ storage.WholeFiler = (*wholeFilerSession)(nil)

func wrapSession(b *Backend, inner storage.Session) storage.Session {
	s := &session{b: b, inner: inner}
	if wf, ok := inner.(storage.WholeFiler); ok {
		return &wholeFilerSession{session: s, wf: wf}
	}
	return s
}

// Open implements storage.Session.  A retried ModeCreate that runs into
// ErrExist after a transient failure reopens with ModeWrite: the file
// is the empty one a half-completed earlier attempt created.
func (s *session) Open(p *vtime.Proc, name string, mode storage.AMode) (storage.Handle, error) {
	var inner storage.Handle
	err := s.b.do(p, "open", func(attempt int) error {
		var err error
		inner, err = s.inner.Open(p, name, mode)
		if attempt > 1 && mode == storage.ModeCreate && errors.Is(err, storage.ErrExist) {
			inner, err = s.inner.Open(p, name, storage.ModeWrite)
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	return wrapHandle(s.b, inner), nil
}

// Remove implements storage.Session.  A retried remove that finds the
// file already gone succeeded on an earlier half-completed attempt.
func (s *session) Remove(p *vtime.Proc, name string) error {
	return s.b.do(p, "remove", func(attempt int) error {
		err := s.inner.Remove(p, name)
		if attempt > 1 && errors.Is(err, storage.ErrNotExist) {
			return nil
		}
		return err
	})
}

// Stat implements storage.Session.
func (s *session) Stat(p *vtime.Proc, name string) (storage.FileInfo, error) {
	var fi storage.FileInfo
	err := s.b.do(p, "stat", func(int) error {
		var err error
		fi, err = s.inner.Stat(p, name)
		return err
	})
	return fi, err
}

// List implements storage.Session.
func (s *session) List(p *vtime.Proc, prefix string) ([]storage.FileInfo, error) {
	var fis []storage.FileInfo
	err := s.b.do(p, "list", func(int) error {
		var err error
		fis, err = s.inner.List(p, prefix)
		return err
	})
	return fis, err
}

// Close implements storage.Session.
func (s *session) Close(p *vtime.Proc) error {
	return s.b.do(p, "close", func(attempt int) error {
		err := s.inner.Close(p)
		if attempt > 1 && errors.Is(err, storage.ErrClosed) {
			return nil
		}
		return err
	})
}

// PutFile implements storage.WholeFiler through the inner fast path.
// A retried ModeCreate put that runs into ErrExist after a transient
// failure re-puts with ModeOverWrite (the earlier attempt's partial
// file must be replaced whole).
func (s *wholeFilerSession) PutFile(p *vtime.Proc, name string, mode storage.AMode, data []byte) error {
	return s.b.do(p, "putfile", func(attempt int) error {
		err := s.wf.PutFile(p, name, mode, data)
		if attempt > 1 && mode == storage.ModeCreate && errors.Is(err, storage.ErrExist) {
			return s.wf.PutFile(p, name, storage.ModeOverWrite, data)
		}
		return err
	})
}

// GetFile implements storage.WholeFiler through the inner fast path.
func (s *wholeFilerSession) GetFile(p *vtime.Proc, name string) ([]byte, error) {
	var data []byte
	err := s.b.do(p, "getfile", func(int) error {
		var err error
		data, err = s.wf.GetFile(p, name)
		return err
	})
	return data, err
}

// handle wraps one inner handle with recovery.
type handle struct {
	b     *Backend
	inner storage.Handle
}

// vectorHandle additionally exposes the inner handle's batched
// vectored fast path.
type vectorHandle struct {
	*handle
	v storage.VectorHandle
}

var _ storage.VectorHandle = (*vectorHandle)(nil)

func wrapHandle(b *Backend, inner storage.Handle) storage.Handle {
	h := &handle{b: b, inner: inner}
	if v, ok := inner.(storage.VectorHandle); ok {
		return &vectorHandle{handle: h, v: v}
	}
	return h
}

// Path implements storage.Handle.
func (h *handle) Path() string { return h.inner.Path() }

// Size implements storage.Handle.
func (h *handle) Size() int64 { return h.inner.Size() }

// ReadAt implements storage.Handle.
func (h *handle) ReadAt(p *vtime.Proc, buf []byte, off int64) (int, error) {
	var n int
	err := h.b.do(p, "read", func(int) error {
		var err error
		n, err = h.inner.ReadAt(p, buf, off)
		return err
	})
	return n, err
}

// WriteAt implements storage.Handle.
func (h *handle) WriteAt(p *vtime.Proc, buf []byte, off int64) (int, error) {
	var n int
	err := h.b.do(p, "write", func(int) error {
		var err error
		n, err = h.inner.WriteAt(p, buf, off)
		return err
	})
	return n, err
}

// Close implements storage.Handle.
func (h *handle) Close(p *vtime.Proc) error {
	return h.b.do(p, "close", func(attempt int) error {
		err := h.inner.Close(p)
		if attempt > 1 && errors.Is(err, storage.ErrClosed) {
			return nil
		}
		return err
	})
}

// ReadAtV implements storage.VectorHandle: the whole batch is retried
// as a unit (chunk reads are idempotent).
func (h *vectorHandle) ReadAtV(p *vtime.Proc, vecs []storage.Vec) (int64, error) {
	var n int64
	err := h.b.do(p, "readv", func(int) error {
		var err error
		n, err = h.v.ReadAtV(p, vecs)
		return err
	})
	return n, err
}

// WriteAtV implements storage.VectorHandle.
func (h *vectorHandle) WriteAtV(p *vtime.Proc, vecs []storage.Vec) (int64, error) {
	var n int64
	err := h.b.do(p, "writev", func(int) error {
		var err error
		n, err = h.v.WriteAtV(p, vecs)
		return err
	})
	return n, err
}
