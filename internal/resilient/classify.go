// Package resilient is the resilience subsystem of the multi-storage
// resource architecture: error classification, virtual-time retries
// with capped exponential backoff, per-backend circuit breakers, and a
// health registry that placement, replication and the wire transport
// consult to route work around tripped resources.
//
// The paper's §5 reliability argument ("often the remote large storage
// system … is shutdown for system failure or maintenance") motivates
// failover at placement time; production HSM/grid stacks additionally
// mask *transient* faults at run time — a dropped WAN connection, a
// tape drive momentarily unavailable — so that recovery costs latency,
// not jobs.  This package provides that layer.  All recovery cost is
// charged against virtual time (vtime), so retries and breaker
// cooldowns show up in the eq. (1)/(2) accounting and every experiment
// stays deterministic and reproducible: backoff jitter is derived from
// a hash of the backend name, operation and attempt number, never from
// wall-clock randomness.
package resilient

import (
	"errors"
	"io"
	"net"
	"time"

	"repro/internal/storage"
)

// marked carries an explicit classification that overrides the sentinel
// rules.  It wraps the original error so errors.Is/As keep working.
type marked struct {
	err       error
	transient bool
}

func (m *marked) Error() string { return m.err.Error() }
func (m *marked) Unwrap() error { return m.err }

// MarkTransient wraps err so Transient reports true regardless of the
// sentinel rules.  A nil err stays nil.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &marked{err: err, transient: true}
}

// MarkPermanent wraps err so Transient reports false regardless of the
// sentinel rules.  Retry layers use it when they exhaust their attempt
// budget: the underlying fault was transient, but callers further up
// must not retry it again.  A nil err stays nil.
func MarkPermanent(err error) error {
	if err == nil {
		return nil
	}
	return &marked{err: err, transient: false}
}

// Transient reports whether err is worth retrying: the operation failed
// because a resource or connection was temporarily unavailable, not
// because the request itself is wrong.
//
// Classification rules, first match wins:
//
//  1. an explicit MarkTransient/MarkPermanent wrapper anywhere in the
//     chain decides;
//  2. storage.ErrDown is transient — the paper's outages are scheduled
//     maintenance windows that end;
//  3. storage.ErrOverload is transient — the request was shed by
//     admission control before it started, and the server usually says
//     when to come back (RetryAfterOf);
//  4. network-level failures (net.Error, connection resets, EOF from a
//     desynced or dropped wire stream) are transient — the srbnet
//     client redials;
//  5. every other error — the storage sentinels ErrNotExist, ErrExist,
//     ErrReadOnly, ErrBadPath, ErrCapacity, ErrClosed, authentication
//     failures, and anything unknown — is permanent.
//
// ErrCapacity and ErrClosed are deliberately permanent: a full resource
// does not drain by retrying, and a closed handle never reopens itself.
func Transient(err error) bool {
	if err == nil {
		return false
	}
	var m *marked
	if errors.As(err, &m) {
		return m.transient
	}
	if errors.Is(err, storage.ErrClosed) {
		return false
	}
	if errors.Is(err, storage.ErrDown) {
		return true
	}
	if errors.Is(err, storage.ErrOverload) {
		return true
	}
	var nerr net.Error
	if errors.As(err, &nerr) {
		return true
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, net.ErrClosed) || errors.Is(err, io.ErrClosedPipe) {
		return true
	}
	return false
}

// Permanent reports whether err is a real failure that retrying cannot
// fix.  Permanent(nil) is false: no error is not a failure.
func Permanent(err error) bool {
	return err != nil && !Transient(err)
}

// RetryAfterOf extracts a server-provided honor-after hint from an
// overload error chain: any error exposing RetryAfter() time.Duration
// (qos.OverloadError server-side, the srbnet client's decoded wire
// error remotely).  Retry loops use the hint instead of their own
// exponential schedule so a shed fleet of clients does not stampede
// back in lockstep before the queue has drained.
func RetryAfterOf(err error) (time.Duration, bool) {
	var ra interface{ RetryAfter() time.Duration }
	if errors.As(err, &ra) {
		if d := ra.RetryAfter(); d > 0 {
			return d, true
		}
	}
	return 0, false
}
