package resilient

import (
	"errors"
	"testing"
	"time"

	"repro/internal/storage"
)

func newTestBreaker() *Breaker {
	return NewBreaker(BreakerConfig{FailureThreshold: 3, Cooldown: 10 * time.Second, MaxCooldown: 40 * time.Second})
}

func TestBreakerOpensAfterThreshold(t *testing.T) {
	b := newTestBreaker()
	now := time.Duration(0)
	for i := 0; i < 3; i++ {
		if !b.Allow(now) {
			t.Fatalf("closed breaker rejected call %d", i)
		}
		b.Report(now, storage.ErrDown)
	}
	if b.State() != Open {
		t.Fatalf("state = %v after threshold failures", b.State())
	}
	if b.Allow(now) {
		t.Fatal("open breaker admitted a call before cooldown")
	}
	if st := b.Stats(); st.Trips != 1 || st.FastFails != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPermanentErrorsDoNotTrip(t *testing.T) {
	b := newTestBreaker()
	for i := 0; i < 10; i++ {
		b.Allow(0)
		b.Report(0, storage.ErrNotExist)
	}
	if b.State() != Closed {
		t.Fatal("permanent errors tripped the breaker")
	}
	// And a permanent error resets a transient streak.
	b.Report(0, storage.ErrDown)
	b.Report(0, storage.ErrDown)
	b.Report(0, storage.ErrNotExist)
	b.Report(0, storage.ErrDown)
	b.Report(0, storage.ErrDown)
	if b.State() != Closed {
		t.Fatal("streak not reset by a reachable-backend error")
	}
}

func TestHalfOpenProbeClosesOnSuccess(t *testing.T) {
	b := newTestBreaker()
	for i := 0; i < 3; i++ {
		b.Report(0, storage.ErrDown)
	}
	// Before the virtual cooldown elapses: rejected.
	if b.Allow(9 * time.Second) {
		t.Fatal("admitted before cooldown elapsed")
	}
	// After: exactly one probe slot.
	if !b.Allow(10 * time.Second) {
		t.Fatal("probe rejected after cooldown")
	}
	if b.State() != HalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	if b.Allow(10 * time.Second) {
		t.Fatal("second caller got a probe slot while one is in flight")
	}
	b.Report(11*time.Second, nil)
	if b.State() != Closed {
		t.Fatalf("state = %v after successful probe", b.State())
	}
	if !b.Allow(11 * time.Second) {
		t.Fatal("closed breaker rejected a call")
	}
}

func TestHalfOpenProbeFailureDoublesCooldown(t *testing.T) {
	b := newTestBreaker()
	for i := 0; i < 3; i++ {
		b.Report(0, storage.ErrDown)
	}
	if !b.Allow(10 * time.Second) {
		t.Fatal("probe rejected")
	}
	b.Report(10*time.Second, storage.ErrDown)
	if b.State() != Open {
		t.Fatalf("state = %v after failed probe", b.State())
	}
	// Cooldown doubled to 20 s, from the failure instant.
	if b.Allow(29 * time.Second) {
		t.Fatal("admitted before doubled cooldown")
	}
	if !b.Allow(30 * time.Second) {
		t.Fatal("rejected after doubled cooldown")
	}
	b.Report(30*time.Second, storage.ErrDown)
	b.Allow(50 * time.Second) // 40 s cap: 30+40=70 still closed at 50
	if b.State() != Open {
		t.Fatal("expected still open under capped cooldown")
	}
	if !b.Allow(70 * time.Second) {
		t.Fatal("rejected after capped cooldown")
	}
}

func TestTripAndReset(t *testing.T) {
	b := newTestBreaker()
	b.Trip(time.Minute)
	if b.State() != Open || b.Allow(time.Minute) {
		t.Fatal("Trip did not open the circuit")
	}
	b.Reset()
	if b.State() != Closed || !b.Allow(0) {
		t.Fatal("Reset did not close the circuit")
	}
}

func TestPenalty(t *testing.T) {
	b := newTestBreaker()
	if b.Penalty() != 0 {
		t.Fatal("clean breaker has a penalty")
	}
	b.Report(0, storage.ErrDown)
	if b.Penalty() != 10*time.Second {
		t.Fatalf("one-failure penalty = %v", b.Penalty())
	}
	b.Report(0, storage.ErrDown)
	b.Report(0, storage.ErrDown) // opens
	if b.Penalty() != 10*time.Second {
		t.Fatalf("open penalty = %v", b.Penalty())
	}
}

func TestHealthRegistry(t *testing.T) {
	h := NewHealth(BreakerConfig{FailureThreshold: 2, Cooldown: time.Second})
	if !h.Available("tape") {
		t.Fatal("unknown backend must be available")
	}
	if h.Penalty("tape") != 0 {
		t.Fatal("unknown backend must have zero penalty")
	}
	br := h.Breaker("tape")
	if br != h.Breaker("tape") {
		t.Fatal("Breaker not stable per name")
	}
	br.Report(0, storage.ErrDown)
	br.Report(0, storage.ErrDown)
	if h.Available("tape") {
		t.Fatal("open circuit reported available")
	}
	if h.Penalty("tape") == 0 {
		t.Fatal("open circuit has zero penalty")
	}
	names := h.Names()
	if len(names) != 1 || names[0] != "tape" {
		t.Fatalf("Names = %v", names)
	}
	st, ok := h.Snapshot()["tape"]
	if !ok || st.State != Open || st.Trips != 1 {
		t.Fatalf("Snapshot = %+v", st)
	}
}

// TestBreakerErrorChain: the fast-fail error wraps both the circuit
// sentinel and storage.ErrDown.
func TestBreakerErrorChain(t *testing.T) {
	if !errors.Is(ErrCircuitOpen, storage.ErrDown) {
		t.Fatal("chain broken")
	}
}
