package resilient

import (
	"errors"
	"testing"
	"time"

	"repro/internal/storage"
	"repro/internal/vtime"
)

// hintedErr is a transient error carrying an admission-control drain
// hint, shaped like qos.OverloadError without importing it.
type hintedErr struct{ after time.Duration }

func (e *hintedErr) Error() string             { return "server overloaded, come back later" }
func (e *hintedErr) Unwrap() error             { return storage.ErrOverload }
func (e *hintedErr) RetryAfter() time.Duration { return e.after }

func TestRetryAfterOf(t *testing.T) {
	if d, ok := RetryAfterOf(errors.New("plain")); ok || d != 0 {
		t.Errorf("plain error: RetryAfterOf = (%v, %v), want (0, false)", d, ok)
	}
	// Zero hints are treated as absent.
	if _, ok := RetryAfterOf(&hintedErr{}); ok {
		t.Error("zero hint reported as present")
	}
	hint := &hintedErr{after: 3 * time.Second}
	if d, ok := RetryAfterOf(hint); !ok || d != 3*time.Second {
		t.Errorf("RetryAfterOf = (%v, %v), want (3s, true)", d, ok)
	}
	// The hint survives wrapping.
	if d, ok := RetryAfterOf(errors.Join(errors.New("ctx"), hint)); !ok || d != 3*time.Second {
		t.Errorf("wrapped RetryAfterOf = (%v, %v), want (3s, true)", d, ok)
	}
}

// TestDoHonorsRetryAfter: when a transient error carries a drain hint,
// the policy charges at least the hint (never less — a shorter local
// guess would just be shed again), skewed upward by at most Jitter.
func TestDoHonorsRetryAfter(t *testing.T) {
	sim := vtime.NewVirtual()
	p := sim.NewProc("client")
	po := Policy{MaxAttempts: 3, BaseDelay: time.Millisecond, Jitter: 0.25}
	const after = 5 * time.Second

	calls := 0
	var delays []time.Duration
	err := po.Do(p, "hpss/read", func(d time.Duration) { delays = append(delays, d) }, func() error {
		calls++
		if calls < 3 {
			return &hintedErr{after: after}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 3 || len(delays) != 2 {
		t.Fatalf("calls %d delays %d, want 3 and 2", calls, len(delays))
	}
	for i, d := range delays {
		if d < after {
			t.Errorf("retry %d charged %v, below the server hint %v", i+1, d, after)
		}
		if max := time.Duration(float64(after) * 1.25); d > max {
			t.Errorf("retry %d charged %v, above hint+jitter %v", i+1, d, max)
		}
	}
	// The jitter skew is deterministic and per-attempt, so identical
	// runs charge identical virtual time and the two delays differ.
	if delays[0] == delays[1] {
		t.Errorf("attempt jitter did not vary: %v", delays)
	}
	if got := p.Now(); got != delays[0]+delays[1] {
		t.Errorf("virtual clock %v, want %v", got, delays[0]+delays[1])
	}

	// Without a hint the exponential schedule still applies.
	p2 := sim.NewProc("client2")
	var plain []time.Duration
	calls = 0
	err = po.Do(p2, "hpss/read", func(d time.Duration) { plain = append(plain, d) }, func() error {
		calls++
		if calls < 2 {
			return MarkTransient(errors.New("blip"))
		}
		return nil
	})
	if err != nil {
		t.Fatalf("plain Do: %v", err)
	}
	if len(plain) != 1 || plain[0] >= after {
		t.Errorf("plain backoff %v, want one small exponential delay", plain)
	}
}
