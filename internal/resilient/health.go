package resilient

import (
	"sort"
	"sync"
	"time"
)

// Health is a registry of per-backend circuit breakers, keyed by
// backend name.  One registry is shared by every consumer that must
// agree on availability: the resilient.Backend wrappers feed outcomes
// in, and placement.Predictive, replica.Backend and reports read state
// out.  The zero value is not usable; construct with NewHealth.
type Health struct {
	cfg BreakerConfig

	mu       sync.Mutex
	breakers map[string]*Breaker
}

// NewHealth returns a registry whose breakers use cfg (zero fields
// take the package defaults).
func NewHealth(cfg BreakerConfig) *Health {
	return &Health{cfg: cfg.withDefaults(), breakers: make(map[string]*Breaker)}
}

// Breaker returns (creating on first use) the breaker for a backend
// name.
func (h *Health) Breaker(name string) *Breaker {
	h.mu.Lock()
	defer h.mu.Unlock()
	b, ok := h.breakers[name]
	if !ok {
		b = NewBreaker(h.cfg)
		h.breakers[name] = b
	}
	return b
}

// Available reports whether the named backend's circuit admits new
// work: true for closed or half-open (a probe may go), false while
// open.  Unknown names are available — no evidence against them.
func (h *Health) Available(name string) bool {
	h.mu.Lock()
	b, ok := h.breakers[name]
	h.mu.Unlock()
	if !ok {
		return true
	}
	return b.State() != Open
}

// Penalty returns the availability penalty for the named backend (see
// Breaker.Penalty); zero for unknown names.
func (h *Health) Penalty(name string) time.Duration {
	h.mu.Lock()
	b, ok := h.breakers[name]
	h.mu.Unlock()
	if !ok {
		return 0
	}
	return b.Penalty()
}

// Names lists the registered backend names, sorted.
func (h *Health) Names() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	names := make([]string, 0, len(h.breakers))
	for name := range h.breakers {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Snapshot returns per-backend breaker statistics for reports.
func (h *Health) Snapshot() map[string]BreakerStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[string]BreakerStats, len(h.breakers))
	for name, b := range h.breakers {
		out[name] = b.Stats()
	}
	return out
}
