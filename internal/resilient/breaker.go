package resilient

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/storage"
)

// ErrCircuitOpen is returned (wrapped) when a breaker rejects a call
// without trying the backend.  It wraps storage.ErrDown so existing
// down-resource handling — replica skipping a down member, placement
// skipping a down backend — treats a tripped circuit exactly like a
// declared outage.
var ErrCircuitOpen = fmt.Errorf("resilient: circuit open: %w", storage.ErrDown)

// State is a circuit breaker's position.
type State int

const (
	// Closed passes calls through, counting consecutive failures.
	Closed State = iota
	// Open rejects calls until the cooldown elapses in virtual time.
	Open
	// HalfOpen admits a single probe; its outcome closes or re-opens.
	HalfOpen
)

func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Defaults for BreakerConfig fields left zero.
const (
	DefaultFailureThreshold = 5
	DefaultCooldown         = 5 * time.Second
	DefaultMaxCooldown      = 80 * time.Second
)

// BreakerConfig tunes a circuit breaker.
type BreakerConfig struct {
	// FailureThreshold is the consecutive transient-failure count that
	// opens the circuit.
	FailureThreshold int
	// Cooldown is the virtual time an open circuit waits before
	// admitting a half-open probe.  Repeated re-opens double it up to
	// MaxCooldown.
	Cooldown time.Duration
	// MaxCooldown caps the doubling.
	MaxCooldown time.Duration
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = DefaultFailureThreshold
	}
	if c.Cooldown <= 0 {
		c.Cooldown = DefaultCooldown
	}
	if c.MaxCooldown < c.Cooldown {
		c.MaxCooldown = DefaultMaxCooldown
		if c.MaxCooldown < c.Cooldown {
			c.MaxCooldown = c.Cooldown
		}
	}
	return c
}

// Breaker is a per-backend circuit breaker in virtual time.  Time is
// supplied by callers (their vtime.Proc clocks); the breaker holds no
// wall-clock state, so experiments replay identically.
type Breaker struct {
	cfg BreakerConfig

	mu        sync.Mutex
	state     State
	failures  int           // consecutive transient failures while closed
	openedAt  time.Duration // virtual instant the circuit opened
	cooldown  time.Duration // current cooldown (doubles per re-open)
	probing   bool          // a half-open probe is in flight
	trips     int64
	fastFails int64
}

// NewBreaker returns a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// Allow reports whether a call may proceed at virtual instant now.  An
// open circuit whose cooldown has elapsed (relative to the caller's
// clock) transitions to half-open and grants the caller the single
// probe slot.
func (b *Breaker) Allow(now time.Duration) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case Open:
		if now >= b.openedAt+b.cooldown {
			b.state = HalfOpen
			b.probing = true
			return true
		}
		b.fastFails++
		return false
	case HalfOpen:
		if b.probing {
			b.fastFails++
			return false
		}
		b.probing = true
		return true
	}
	return true
}

// Report records the outcome of an allowed call finishing at virtual
// instant now.  Only transient errors count against the circuit:
// a permanent error (ErrNotExist, a bad path) proves the backend is
// reachable and resets the failure streak like a success would.
func (b *Breaker) Report(now time.Duration, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !Transient(err) {
		if b.state == HalfOpen {
			b.probing = false
		}
		b.state = Closed
		b.failures = 0
		b.cooldown = 0
		return
	}
	switch b.state {
	case HalfOpen:
		// The probe failed: re-open with a doubled cooldown.
		b.probing = false
		b.cooldown *= 2
		if b.cooldown > b.cfg.MaxCooldown {
			b.cooldown = b.cfg.MaxCooldown
		}
		b.open(now)
	case Closed:
		b.failures++
		if b.failures >= b.cfg.FailureThreshold {
			b.cooldown = b.cfg.Cooldown
			b.open(now)
		}
	case Open:
		// A straggler that was admitted before the trip; keep the
		// later opening instant so the cooldown is not cut short.
		if now > b.openedAt {
			b.openedAt = now
		}
	}
}

// open transitions to Open at instant now (callers hold b.mu).
func (b *Breaker) open(now time.Duration) {
	b.state = Open
	b.openedAt = now
	b.failures = 0
	b.trips++
}

// State returns the breaker's position.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Trip forces the circuit open at virtual instant now (operator
// override: scheduled maintenance announced ahead of time).
func (b *Breaker) Trip(now time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.cooldown < b.cfg.Cooldown {
		b.cooldown = b.cfg.Cooldown
	}
	b.open(now)
}

// Reset force-closes the circuit and clears the failure streak.
func (b *Breaker) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = Closed
	b.failures = 0
	b.cooldown = 0
	b.probing = false
}

// BreakerStats is a snapshot of a breaker for reports.
type BreakerStats struct {
	State     State
	Failures  int   // consecutive transient failures while closed
	Trips     int64 // times the circuit opened
	FastFails int64 // calls rejected without touching the backend
	Cooldown  time.Duration
}

// Stats snapshots the breaker.
func (b *Breaker) Stats() BreakerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerStats{
		State: b.state, Failures: b.failures,
		Trips: b.trips, FastFails: b.fastFails, Cooldown: b.cooldown,
	}
}

// Penalty is the availability penalty a planner should add to a
// predicted I/O time when considering this backend: zero for a clean
// closed circuit, the remaining exposure otherwise.  It is
// deterministic in the breaker state (no caller clock needed): an open
// or half-open circuit costs its current cooldown; a closed circuit
// with a failure streak costs one base cooldown per consecutive
// failure, anticipating the retries a placement there would pay.
func (b *Breaker) Penalty() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Open, HalfOpen:
		if b.cooldown > 0 {
			return b.cooldown
		}
		return b.cfg.Cooldown
	default:
		return time.Duration(b.failures) * b.cfg.Cooldown
	}
}
