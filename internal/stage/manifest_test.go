package stage

import (
	"bytes"
	"reflect"
	"testing"
)

func sampleManifest() []ManifestEntry {
	return []ManifestEntry{
		{Home: "sdsc-hpss", Path: "run1/iter000000", Staged: "stage/sdsc-hpss/run1/iter000000", Bytes: 4096, Dirty: false, Accesses: 1},
		{Home: "sdsc-disk", Path: "run1/restart", Staged: "stage/sdsc-disk/run1/restart", Bytes: 128, Dirty: true, Accesses: 0},
		{Home: "sdsc-disk", Path: "odd \t\"name\"\n", Staged: "stage/sdsc-disk/odd", Bytes: 1, Dirty: false, Accesses: 7},
	}
}

func TestManifestRoundTrip(t *testing.T) {
	in := sampleManifest()
	out, err := DecodeManifest(EncodeManifest(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d entries, want %d", len(out), len(in))
	}
	byKey := make(map[string]ManifestEntry)
	for _, e := range out {
		byKey[e.Home+"/"+e.Path] = e
	}
	for _, e := range in {
		if got := byKey[e.Home+"/"+e.Path]; !reflect.DeepEqual(got, e) {
			t.Fatalf("entry %q: got %+v want %+v", e.Path, got, e)
		}
	}
}

func TestManifestDeterministic(t *testing.T) {
	in := sampleManifest()
	rev := []ManifestEntry{in[2], in[0], in[1]}
	if !bytes.Equal(EncodeManifest(in), EncodeManifest(rev)) {
		t.Fatal("encoding depends on input order")
	}
}

func TestManifestDecodeRejectsGarbage(t *testing.T) {
	for _, data := range [][]byte{
		nil,
		[]byte(""),
		[]byte("not-a-manifest\n"),
		[]byte(manifestMagic + "\nonly\tthree\tfields\n"),
		[]byte(manifestMagic + "\n\"h\"\t\"p\"\t\"s\"\tNaN\ttrue\t0\n"),
		[]byte(manifestMagic + "\n\"h\"\t\"p\"\t\"s\"\t10\tmaybe\t0\n"),
		[]byte(manifestMagic + "\nnoquote\t\"p\"\t\"s\"\t10\ttrue\t0\n"),
		[]byte(manifestMagic + "\n\"\"\t\"p\"\t\"s\"\t10\ttrue\t0\n"),
		[]byte(manifestMagic + "\n\"h\"\t\"p\"\t\"s\"\t-1\ttrue\t0\n"),
	} {
		if _, err := DecodeManifest(data); err == nil {
			t.Fatalf("garbage accepted: %q", data)
		}
	}
}

func TestSaveLoadManifest(t *testing.T) {
	e := newTestEnv(t, Config{})
	want := bytes.Repeat([]byte("m"), 512)
	e.put(t, "runX/iter000000", want)
	pl := e.mgr.StageRead(e.p, e.home, e.hsess, "runX/iter000000", int64(len(want)))
	if !pl.Staged {
		t.Fatal("not staged")
	}
	pl.Release()
	if err := e.mgr.SaveManifest(e.p); err != nil {
		t.Fatal(err)
	}

	// A fresh Manager over the same cache store re-adopts the copy.
	mgr2, err := New(Config{Sim: e.sim, Cache: e.cache, Budget: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr2.Close()
	n, err := mgr2.LoadManifest(e.p, e.home)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("adopted %d entries, want 1", n)
	}
	hit := mgr2.StageRead(e.p, e.home, e.hsess, "runX/iter000000", int64(len(want)))
	if !hit.Staged {
		t.Fatal("adopted copy not a hit")
	}
	if got := readPlan(t, e.p, hit); !bytes.Equal(got, want) {
		t.Fatal("adopted copy differs")
	}
	if st := mgr2.Stats(); st.StagedIn != 0 || st.Hits != 1 {
		t.Fatalf("stats: %+v", st)
	}

	// Unknown homes are skipped, not trusted.
	mgr3, err := New(Config{Sim: e.sim, Cache: e.cache, Budget: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr3.Close()
	if n, err := mgr3.LoadManifest(e.p); err != nil || n != 0 {
		t.Fatalf("adopted %d entries without homes (err %v)", n, err)
	}
}

func FuzzManifestRoundTrip(f *testing.F) {
	f.Add("home", "path/a", "stage/home/path/a", int64(100), true, int64(3))
	f.Add("h\t2", "p\nq", "s\"x", int64(0), false, int64(0))
	f.Fuzz(func(t *testing.T, home, path, staged string, size int64, dirty bool, acc int64) {
		if home == "" || path == "" || staged == "" || size < 0 || acc < 0 {
			t.Skip()
		}
		in := []ManifestEntry{{Home: home, Path: path, Staged: staged, Bytes: size, Dirty: dirty, Accesses: acc}}
		out, err := DecodeManifest(EncodeManifest(in))
		if err != nil {
			t.Fatalf("round-trip decode failed: %v", err)
		}
		if len(out) != 1 || !reflect.DeepEqual(out[0], in[0]) {
			t.Fatalf("round-trip mismatch: %+v vs %+v", out, in)
		}
	})
}

// FuzzManifestDecodeArbitrary asserts DecodeManifest never panics and
// that every successfully decoded entry is well-formed.
func FuzzManifestDecodeArbitrary(f *testing.F) {
	f.Add([]byte(manifestMagic + "\n\"h\"\t\"p\"\t\"s\"\t10\ttrue\t2\n"))
	f.Add([]byte("junk"))
	f.Add([]byte(manifestMagic + "\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		entries, err := DecodeManifest(data)
		if err != nil {
			return
		}
		for _, e := range entries {
			if e.Home == "" || e.Path == "" || e.Staged == "" || e.Bytes < 0 || e.Accesses < 0 {
				t.Fatalf("decoded invalid entry: %+v", e)
			}
		}
	})
}
