package stage

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/storage"
)

func sampleManifest() []ManifestEntry {
	return []ManifestEntry{
		{Home: "sdsc-hpss", Path: "run1/iter000000", Staged: "stage/sdsc-hpss/run1/iter000000", Bytes: 4096, Dirty: false, Accesses: 1},
		{Home: "sdsc-disk", Path: "run1/restart", Staged: "stage/sdsc-disk/run1/restart", Bytes: 128, Dirty: true, Accesses: 0},
		{Home: "sdsc-disk", Path: "odd \t\"name\"\n", Staged: "stage/sdsc-disk/odd", Bytes: 1, Dirty: false, Accesses: 7},
	}
}

func TestManifestRoundTrip(t *testing.T) {
	in := sampleManifest()
	out, err := DecodeManifest(EncodeManifest(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d entries, want %d", len(out), len(in))
	}
	byKey := make(map[string]ManifestEntry)
	for _, e := range out {
		byKey[e.Home+"/"+e.Path] = e
	}
	for _, e := range in {
		if got := byKey[e.Home+"/"+e.Path]; !reflect.DeepEqual(got, e) {
			t.Fatalf("entry %q: got %+v want %+v", e.Path, got, e)
		}
	}
}

func TestManifestDeterministic(t *testing.T) {
	in := sampleManifest()
	rev := []ManifestEntry{in[2], in[0], in[1]}
	if !bytes.Equal(EncodeManifest(in), EncodeManifest(rev)) {
		t.Fatal("encoding depends on input order")
	}
}

func TestManifestDecodeRejectsGarbage(t *testing.T) {
	for _, data := range [][]byte{
		nil,
		[]byte(""),
		[]byte("not-a-manifest\n"),
		[]byte(manifestMagic + "\nonly\tthree\tfields\n"),
		[]byte(manifestMagic + "\n\"h\"\t\"p\"\t\"s\"\tNaN\ttrue\t0\n"),
		[]byte(manifestMagic + "\n\"h\"\t\"p\"\t\"s\"\t10\tmaybe\t0\n"),
		[]byte(manifestMagic + "\nnoquote\t\"p\"\t\"s\"\t10\ttrue\t0\n"),
		[]byte(manifestMagic + "\n\"\"\t\"p\"\t\"s\"\t10\ttrue\t0\n"),
		[]byte(manifestMagic + "\n\"h\"\t\"p\"\t\"s\"\t-1\ttrue\t0\n"),
	} {
		if _, err := DecodeManifest(data); err == nil {
			t.Fatalf("garbage accepted: %q", data)
		}
	}
}

func TestSaveLoadManifest(t *testing.T) {
	e := newTestEnv(t, Config{})
	want := bytes.Repeat([]byte("m"), 512)
	e.put(t, "runX/iter000000", want)
	pl := e.mgr.StageRead(e.p, e.home, e.hsess, "runX/iter000000", int64(len(want)))
	if !pl.Staged {
		t.Fatal("not staged")
	}
	pl.Release()
	if err := e.mgr.SaveManifest(e.p); err != nil {
		t.Fatal(err)
	}

	// A fresh Manager over the same cache store re-adopts the copy.
	mgr2, err := New(Config{Sim: e.sim, Cache: e.cache, Budget: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr2.Close()
	n, err := mgr2.LoadManifest(e.p, e.home)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("adopted %d entries, want 1", n)
	}
	hit := mgr2.StageRead(e.p, e.home, e.hsess, "runX/iter000000", int64(len(want)))
	if !hit.Staged {
		t.Fatal("adopted copy not a hit")
	}
	if got := readPlan(t, e.p, hit); !bytes.Equal(got, want) {
		t.Fatal("adopted copy differs")
	}
	if st := mgr2.Stats(); st.StagedIn != 0 || st.Hits != 1 {
		t.Fatalf("stats: %+v", st)
	}

	// Unknown homes are skipped, not trusted.
	mgr3, err := New(Config{Sim: e.sim, Cache: e.cache, Budget: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr3.Close()
	if n, err := mgr3.LoadManifest(e.p); err != nil || n != 0 {
		t.Fatalf("adopted %d entries without homes (err %v)", n, err)
	}
}

func FuzzManifestRoundTrip(f *testing.F) {
	f.Add("home", "path/a", "stage/home/path/a", int64(100), true, int64(3))
	f.Add("h\t2", "p\nq", "s\"x", int64(0), false, int64(0))
	f.Fuzz(func(t *testing.T, home, path, staged string, size int64, dirty bool, acc int64) {
		if home == "" || path == "" || staged == "" || size < 0 || acc < 0 {
			t.Skip()
		}
		in := []ManifestEntry{{Home: home, Path: path, Staged: staged, Bytes: size, Dirty: dirty, Accesses: acc}}
		out, err := DecodeManifest(EncodeManifest(in))
		if err != nil {
			t.Fatalf("round-trip decode failed: %v", err)
		}
		if len(out) != 1 || !reflect.DeepEqual(out[0], in[0]) {
			t.Fatalf("round-trip mismatch: %+v vs %+v", out, in)
		}
	})
}

// FuzzManifestDecodeArbitrary asserts DecodeManifest never panics and
// that every successfully decoded entry is well-formed.
func FuzzManifestDecodeArbitrary(f *testing.F) {
	f.Add([]byte(manifestMagic + "\n\"h\"\t\"p\"\t\"s\"\t10\ttrue\t2\n"))
	f.Add([]byte("junk"))
	f.Add([]byte(manifestMagic + "\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		entries, err := DecodeManifest(data)
		if err != nil {
			return
		}
		for _, e := range entries {
			if e.Home == "" || e.Path == "" || e.Staged == "" || e.Bytes < 0 || e.Accesses < 0 {
				t.Fatalf("decoded invalid entry: %+v", e)
			}
		}
	})
}

// TestManifestTrailerDetectsDamage flips, truncates and extends an
// encoded manifest and checks the CRC trailer rejects every variant —
// including structurally valid rows guarded by a wrong trailer.
func TestManifestTrailerDetectsDamage(t *testing.T) {
	good := EncodeManifest(sampleManifest())
	if _, err := DecodeManifest(good); err != nil {
		t.Fatal(err)
	}
	// Every torn prefix long enough to still contain a newline.  (A cut
	// that only drops the final newline leaves the manifest complete —
	// start below it.)
	for cut := len(good) - 2; cut > 20; cut -= 7 {
		if _, err := DecodeManifest(good[:cut]); err == nil {
			t.Fatalf("torn manifest (cut at %d) accepted", cut)
		}
	}
	// A single flipped bit anywhere in the body.
	for i := 0; i < len(good)-12; i += 11 {
		bad := append([]byte(nil), good...)
		bad[i] ^= 0x20
		if _, err := DecodeManifest(bad); err == nil {
			t.Fatalf("bit flip at %d accepted", i)
		}
	}
	// Valid-looking rows with a forged trailer.
	forged := []byte(manifestMagic + "\n\"h\"\t\"p\"\t\"s\"\t10\ttrue\t2\t0\ncrc\t12345\n")
	if _, err := DecodeManifest(forged); err == nil {
		t.Fatal("forged trailer accepted")
	}
}

// putCache overwrites a path on the cache backend directly, simulating
// torn or stale cache state a crash can leave behind.
func putCache(t *testing.T, e *testEnv, path string, data []byte) {
	t.Helper()
	sess, err := e.cache.Connect(e.p)
	if err != nil {
		t.Fatal(err)
	}
	if err := storage.PutFile(e.p, sess, path, storage.ModeOverWrite, data); err != nil {
		t.Fatal(err)
	}
}

func TestLoadManifestFallsBackToPrev(t *testing.T) {
	e := newTestEnv(t, Config{})
	want := bytes.Repeat([]byte("f"), 700)
	e.put(t, "runF/iter000000", want)
	pl := e.mgr.StageRead(e.p, e.home, e.hsess, "runF/iter000000", int64(len(want)))
	if !pl.Staged {
		t.Fatal("not staged")
	}
	pl.Release()
	// Two saves so the fallback copy exists, then tear the primary.
	if err := e.mgr.SaveManifest(e.p); err != nil {
		t.Fatal(err)
	}
	if err := e.mgr.SaveManifest(e.p); err != nil {
		t.Fatal(err)
	}
	sess, err := e.cache.Connect(e.p)
	if err != nil {
		t.Fatal(err)
	}
	full, err := storage.GetFile(e.p, sess, ManifestPath)
	if err != nil {
		t.Fatal(err)
	}
	putCache(t, e, ManifestPath, full[:len(full)/2])

	mgr2, err := New(Config{Sim: e.sim, Cache: e.cache, Budget: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr2.Close()
	n, err := mgr2.LoadManifest(e.p, e.home)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("adopted %d entries via fallback, want 1", n)
	}
}

func TestLoadManifestStartsEmptyWhenBothCopiesTorn(t *testing.T) {
	e := newTestEnv(t, Config{})
	want := bytes.Repeat([]byte("g"), 300)
	e.put(t, "runG/iter000000", want)
	pl := e.mgr.StageRead(e.p, e.home, e.hsess, "runG/iter000000", int64(len(want)))
	pl.Release()
	if err := e.mgr.SaveManifest(e.p); err != nil {
		t.Fatal(err)
	}
	if err := e.mgr.SaveManifest(e.p); err != nil {
		t.Fatal(err)
	}
	putCache(t, e, ManifestPath, []byte("torn to pieces"))
	putCache(t, e, manifestPrevPath, []byte(manifestMagic+"\nhalf a row"))

	mgr2, err := New(Config{Sim: e.sim, Cache: e.cache, Budget: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr2.Close()
	n, err := mgr2.LoadManifest(e.p, e.home)
	if err != nil {
		t.Fatalf("torn manifests must not be fatal: %v", err)
	}
	if n != 0 {
		t.Fatalf("adopted %d entries from torn manifests", n)
	}
}

// TestLoadManifestRejectsTornCacheFile: the manifest is intact but the
// staged bytes it describes were torn by the crash (same size, wrong
// content) — the per-entry checksum must refuse the adoption.
func TestLoadManifestRejectsTornCacheFile(t *testing.T) {
	e := newTestEnv(t, Config{})
	want := bytes.Repeat([]byte("h"), 640)
	e.put(t, "runH/iter000000", want)
	pl := e.mgr.StageRead(e.p, e.home, e.hsess, "runH/iter000000", int64(len(want)))
	if !pl.Staged {
		t.Fatal("not staged")
	}
	pl.Release()
	if err := e.mgr.SaveManifest(e.p); err != nil {
		t.Fatal(err)
	}
	staged := e.mgr.Manifest()[0].Staged
	scrambled := bytes.Repeat([]byte("X"), len(want)) // size matches
	putCache(t, e, staged, scrambled)

	mgr2, err := New(Config{Sim: e.sim, Cache: e.cache, Budget: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr2.Close()
	n, err := mgr2.LoadManifest(e.p, e.home)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("adopted %d torn cache entries, want 0", n)
	}
}
