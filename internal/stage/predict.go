package stage

import (
	"fmt"
	"time"

	"repro/internal/predict"
)

// instanceBytes is the whole-instance size of one dump of the dataset.
func instanceBytes(d predict.DatasetReq) int64 {
	n := int64(1)
	for _, dim := range d.Dims {
		n *= int64(dim)
	}
	etype := int64(d.Etype)
	if etype <= 0 {
		etype = 1
	}
	return n * etype
}

// PredictStagedRead evaluates eq. (2) for a consumer reading the
// dataset through the stage cache instead of directly from its home
// resource (d.Location).  It returns two predictions:
//
//   - first: the cold pass — every dump is staged in (whole-file read
//     from home plus whole-file write to the cache) and then read at
//     cache speed;
//   - hit: a warm pass — every dump is already cached, so the run pays
//     only cache-tier access costs.
//
// Both are comparable with predict.Predict of the unstaged run, which
// is how the staging experiment reports predicted savings.
func (m *Manager) PredictStagedRead(d predict.DatasetReq, iterations int) (first, hit time.Duration, err error) {
	if m.cfg.PDB == nil {
		return 0, 0, fmt.Errorf("stage: no predictor configured")
	}
	cached := d
	cached.Location = m.cfg.Cache.Kind().String()
	dp, err := m.cfg.PDB.PredictDataset(cached, iterations)
	if err != nil {
		return 0, 0, err
	}
	hit = dp.VirtualTime

	size := instanceBytes(d)
	tGet, err := m.cfg.PDB.WholeFile(d.Location, "read", size)
	if err != nil {
		return 0, 0, err
	}
	tPut, err := m.cfg.PDB.WholeFile(m.cfg.Cache.Kind().String(), "write", size)
	if err != nil {
		return 0, 0, err
	}
	first = hit + time.Duration(float64(dp.Dumps)*(tGet+tPut)*float64(time.Second))
	return first, hit, nil
}

// PredictStagedWrite evaluates eq. (2) for a producer writing the
// dataset through the cache with write-back: every dump is written at
// cache speed, and each distinct instance drains once to the home
// resource (over_write datasets keep a single instance; others drain
// every dump).
func (m *Manager) PredictStagedWrite(d predict.DatasetReq, iterations int) (time.Duration, error) {
	if m.cfg.PDB == nil {
		return 0, fmt.Errorf("stage: no predictor configured")
	}
	cached := d
	cached.Location = m.cfg.Cache.Kind().String()
	dp, err := m.cfg.PDB.PredictDataset(cached, iterations)
	if err != nil {
		return 0, err
	}
	size := instanceBytes(d)
	tGet, err := m.cfg.PDB.WholeFile(m.cfg.Cache.Kind().String(), "read", size)
	if err != nil {
		return 0, err
	}
	tPut, err := m.cfg.PDB.WholeFile(d.Location, "write", size)
	if err != nil {
		return 0, err
	}
	drains := dp.Dumps
	if d.AMode == "over_write" {
		drains = 1
	}
	return dp.VirtualTime + time.Duration(float64(drains)*(tGet+tPut)*float64(time.Second)), nil
}
