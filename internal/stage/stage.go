// Package stage implements the prediction-driven staging engine: a
// capacity-budgeted fast-tier cache (typically the local disks) in
// front of the slower storage resources (remote disks, remote tapes)
// of the multi-storage resource architecture.
//
// The paper's five-layer system *places* each dataset on one resource
// and leaves it there, so a tape-homed dataset pays tape latency on
// every access.  Hierarchical storage managers migrate hot data toward
// fast tiers instead; this package adds that migration, driven by the
// same eq. (1)/(2) performance model the placement layer already
// consults:
//
//   - On dataset read the Manager decides whether staging in pays off:
//     with R predicted residual accesses, stage when
//     R·(T_home − T_cache) > T_copy_in, where T_home and T_cache are
//     the whole-instance access costs on each tier and T_copy_in is the
//     one-time cost of writing the copy to the cache.  Without PTool
//     measurements the decision degenerates to a tier ranking (tape
//     slower than remote disk slower than local disk).
//   - Copies move whole instances through the storage.WholeFiler /
//     storage.GetFile fast paths, retried under a resilient.Policy, and
//     every byte moved is charged to the calling process's virtual
//     clock so staging cost lands in the run's eq. (2) accounting.
//   - Eviction is cost-aware: the entry with the least predicted
//     benefit-per-byte goes first, falling back to LRU when the
//     predictor has no data.  Pinned entries (datasets mid-read) are
//     never evicted; dirty entries are written back before removal.
//   - Writes may be staged too: the instance lands on the cache tier,
//     is marked dirty, and drains to its home tier on eviction or when
//     the run finalizes (write-back).
//   - Background prefetch stages the next iteration's instances during
//     compute phases on dedicated prefetch processes, so a consumer
//     that walks dumps in order finds each next instance already
//     cached.
package stage

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/predict"
	"repro/internal/resilient"
	"repro/internal/storage"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// DefaultExpectedReads is the assumed total number of reads each
// instance will receive when the caller provides no better estimate:
// the paper's pipeline reads every dump at least twice (data analysis
// and visualization both consume the simulation's output).
const DefaultExpectedReads = 2

// Config wires a Manager together.
type Config struct {
	// Sim is the virtual-time domain (required); prefetch jobs run on
	// processes created from it.
	Sim *vtime.Sim
	// Cache is the fast-tier backend the staged copies live on
	// (required).
	Cache storage.Backend
	// Budget caps the cached bytes (required, positive).  The cache
	// backend's real capacity is additionally reserved by
	// placement.WithStaging so AUTO placement cannot consume it.
	Budget int64
	// PDB is the eq. (2) predictor used for the staging decision and
	// the eviction benefit score.  Nil falls back to tier ranking and
	// LRU.
	PDB *predict.DB
	// ExpectedReads is the anticipated total reads per instance
	// (DefaultExpectedReads when zero).
	ExpectedReads int
	// PrefetchDepth is the background prefetch queue depth; zero
	// disables prefetch.
	PrefetchDepth int
	// Retry bounds the stage-copy retry loop (package resilient
	// defaults apply to zero fields).  When the home backend is already
	// wrapped by resilient.Wrap, its exhausted budget surfaces as a
	// permanent error and this outer loop stops immediately.
	Retry resilient.Policy
	// Health, when set, vetoes stage-ins from home resources whose
	// circuit is open: the copy would only fast-fail, so the read falls
	// through directly.
	Health *resilient.Health
	// Trace, when set, records one span per completed tier-to-tier copy
	// (trace.OpStageIn / OpPrefetch / OpWriteBack) with the home
	// resource as Backend and the home path, so cache traffic is
	// attributable next to the native calls it causes.  Nil disables.
	Trace *trace.Recorder
}

// Stats counts the Manager's traffic.
type Stats struct {
	Hits          int64 // reads served from the cache tier
	Misses        int64 // reads served directly from the home tier
	StagedIn      int64 // instances copied into the cache
	StagedWrites  int64 // instances written through the cache
	StageFailures int64 // stage-ins abandoned (the read fell through)
	Evictions     int64
	WriteBacks    int64 // dirty instances drained to their home tier

	PrefetchIssued int64
	PrefetchDone   int64
	PrefetchHits   int64 // hits whose copy a prefetch job produced

	BytesStagedIn    int64
	BytesWrittenBack int64
	BytesEvicted     int64

	Used     int64
	PeakUsed int64
	Budget   int64
}

// HitRate returns hits / (hits + misses), zero when idle.
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// BytesMoved sums every byte the engine copied between tiers.
func (s Stats) BytesMoved() int64 { return s.BytesStagedIn + s.BytesWrittenBack }

// entry is one cached instance.
type entry struct {
	key    string // home backend name + "/" + home path
	path   string // path on the home backend
	staged string // path on the cache backend
	home   storage.Backend
	bytes  int64

	ready      bool // the cache copy is complete and current
	dirty      bool // the cache copy is newer than the home copy
	superseded bool // a direct home write overtook the cache copy
	pins       int
	lastUse    int64
	waitUntil  time.Duration // prefetch completion time, consumed on first hit
	prefetched bool
}

// Manager owns the fast-tier cache.  It is safe for concurrent use by
// multiple ranks and runs; one Manager is shared by every core.System
// that stages through the same cache.
type Manager struct {
	cfg Config

	prefetchq chan prefetchJob
	pending   sync.WaitGroup // outstanding prefetch jobs
	workers   sync.WaitGroup

	mu        sync.Mutex
	cacheSess storage.Session
	homeSess  map[string]storage.Session
	entries   map[string]*entry
	seen      map[string]int // accesses observed per key, for residual estimates
	garbage   []string       // staged paths of superseded entries awaiting removal
	used      int64
	clock     int64
	closed    bool
	st        Stats
}

// New validates the configuration and returns a Manager.
func New(cfg Config) (*Manager, error) {
	if cfg.Sim == nil {
		return nil, fmt.Errorf("stage: Config.Sim is required")
	}
	if cfg.Cache == nil {
		return nil, fmt.Errorf("stage: Config.Cache is required")
	}
	if cfg.Budget <= 0 {
		return nil, fmt.Errorf("stage: Config.Budget must be positive")
	}
	if cfg.ExpectedReads <= 0 {
		cfg.ExpectedReads = DefaultExpectedReads
	}
	m := &Manager{
		cfg:      cfg,
		homeSess: make(map[string]storage.Session),
		entries:  make(map[string]*entry),
		seen:     make(map[string]int),
	}
	m.st.Budget = cfg.Budget
	if cfg.PrefetchDepth > 0 {
		m.prefetchq = make(chan prefetchJob, cfg.PrefetchDepth)
		m.workers.Add(1)
		go m.prefetchLoop()
	}
	return m, nil
}

// Close stops the prefetch worker and drops the queue.  Cached data and
// sessions are left as they are; call Drain first if dirty entries must
// reach their home tier.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	q := m.prefetchq
	m.mu.Unlock()
	if q != nil {
		close(q)
		m.workers.Wait()
	}
}

// CacheName returns the cache backend's instance name.
func (m *Manager) CacheName() string { return m.cfg.Cache.Name() }

// CacheKind returns the cache backend's storage class.
func (m *Manager) CacheKind() storage.Kind { return m.cfg.Cache.Kind() }

// ExpectedReads returns the configured per-instance read estimate.
func (m *Manager) ExpectedReads() int { return m.cfg.ExpectedReads }

// Budget returns the configured byte budget.
func (m *Manager) Budget() int64 { return m.cfg.Budget }

// Reserved returns the bytes of the named backend's capacity this
// Manager claims for its cache (the full budget on the cache backend,
// zero elsewhere).  placement.WithStaging subtracts it from the free
// space AUTO placement may use.
func (m *Manager) Reserved(backendName string) int64 {
	if backendName == m.cfg.Cache.Name() {
		return m.cfg.Budget
	}
	return 0
}

// Used returns the bytes currently cached (including reservations of
// in-flight copies).
func (m *Manager) Used() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.used
}

// Stats snapshots the counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.st
	st.Used = m.used
	return st
}

// ResetClocks forgets pending prefetch-completion times, mirroring the
// experiment harness's device-clock reset between pipeline stages: a
// consumer run that starts a fresh time domain must not inherit the
// producer era's completion times.
func (m *Manager) ResetClocks() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, e := range m.entries {
		e.waitUntil = 0
	}
}

func stageKey(home, path string) string { return home + "/" + path }

// stagePath maps a home path to its cache-tier location.
func stagePath(home, path string) string { return "stage/" + home + "/" + path }

// kindRank orders storage classes slowest-last, the fallback decision
// when no PTool measurements exist.
func kindRank(k storage.Kind) int {
	switch k {
	case storage.KindMemory:
		return 0
	case storage.KindLocalDisk:
		return 1
	case storage.KindLocalDB:
		return 2
	case storage.KindRemoteDisk:
		return 3
	case storage.KindRemoteTape:
		return 4
	default:
		return 5
	}
}

// decide evaluates the staging inequality for residual future accesses
// of an instance of the given size homed on homeKind.  background
// copies (prefetch) are off the critical path, so any per-access saving
// justifies them; foreground copies must additionally amortize the
// copy-in cost.
func (m *Manager) decide(residual int, homeKind storage.Kind, size int64, background bool) bool {
	if residual <= 0 {
		return false
	}
	if kindRank(homeKind) <= kindRank(m.cfg.Cache.Kind()) {
		return false
	}
	if m.cfg.PDB == nil {
		return true
	}
	tHome, err1 := m.cfg.PDB.WholeFile(homeKind.String(), "read", size)
	tCache, err2 := m.cfg.PDB.WholeFile(m.cfg.Cache.Kind().String(), "read", size)
	tPut, err3 := m.cfg.PDB.WholeFile(m.cfg.Cache.Kind().String(), "write", size)
	if err1 != nil || err2 != nil || err3 != nil {
		return true // no measurements: trust the tier ranking
	}
	if background {
		return tHome > tCache
	}
	return float64(residual)*(tHome-tCache) > tPut
}

// expectedResidual estimates the accesses an instance will still
// receive after the current one.
func (m *Manager) expectedResidualLocked(key string) int {
	r := m.cfg.ExpectedReads - m.seen[key]
	if r < 0 {
		return 0
	}
	return r
}

// ------------------------------------------------------------------
// Sessions.

func (m *Manager) cacheSession(p *vtime.Proc) (storage.Session, error) {
	m.mu.Lock()
	sess := m.cacheSess
	m.mu.Unlock()
	if sess != nil {
		return sess, nil
	}
	s, err := m.cfg.Cache.Connect(p)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	if m.cacheSess == nil {
		m.cacheSess = s
		m.mu.Unlock()
		return s, nil
	}
	sess = m.cacheSess
	m.mu.Unlock()
	_ = s.Close(p) // lost a connect race
	return sess, nil
}

func (m *Manager) homeSession(p *vtime.Proc, home storage.Backend) (storage.Session, error) {
	m.mu.Lock()
	sess := m.homeSess[home.Name()]
	m.mu.Unlock()
	if sess != nil {
		return sess, nil
	}
	s, err := home.Connect(p)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	if prev := m.homeSess[home.Name()]; prev != nil {
		m.mu.Unlock()
		_ = s.Close(p)
		return prev, nil
	}
	m.homeSess[home.Name()] = s
	m.mu.Unlock()
	return s, nil
}

// retry runs one tier-to-tier copy step under the configured policy,
// with backoff charged to p.
func (m *Manager) retry(p *vtime.Proc, key string, f func() error) error {
	return m.cfg.Retry.Do(p, key, nil, f)
}

// sweepGarbage removes cache files of superseded entries whose last pin
// dropped; charged to the first proc that passes by.
func (m *Manager) sweepGarbage(p *vtime.Proc) {
	m.mu.Lock()
	g := m.garbage
	m.garbage = nil
	sess := m.cacheSess
	m.mu.Unlock()
	if sess == nil {
		return
	}
	for _, staged := range g {
		_ = sess.Remove(p, staged)
	}
}

// ------------------------------------------------------------------
// Read path.

// ReadPlan routes one instance read: through the cache tier (Staged)
// or directly at the home tier.  Callers must invoke Release once the
// read completes; it unpins the cached entry.
type ReadPlan struct {
	Sess   storage.Session
	Path   string
	Staged bool
	// Hit reports that an already-complete cache copy served the plan
	// (as opposed to a fresh stage-in that had to touch the home tier).
	// The HSM engine's disk-pool hit accounting keys on it.
	Hit     bool
	release func()
}

// Release unpins the staged entry (no-op for direct plans).
func (pl ReadPlan) Release() {
	if pl.release != nil {
		pl.release()
	}
}

// StageRead decides how to serve one instance read.  Cache hits return
// a pinned plan on the cache tier (advancing p to the prefetch
// completion time when a background job produced the copy); predicted-
// beneficial misses copy the instance in, charging the movement to p;
// everything else — including any staging failure — falls through to a
// direct plan on homeSess.  StageRead never fails: the worst case is
// the direct plan.
func (m *Manager) StageRead(p *vtime.Proc, home storage.Backend, homeSess storage.Session, path string, size int64) ReadPlan {
	direct := ReadPlan{Sess: homeSess, Path: path}
	if m == nil || home == nil || home.Name() == m.cfg.Cache.Name() {
		return direct
	}
	m.sweepGarbage(p)
	key := stageKey(home.Name(), path)

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return direct
	}
	m.seen[key]++
	if e := m.entries[key]; e != nil {
		if !e.ready || e.superseded {
			// Being staged/written by someone else, or overtaken by a
			// direct home write: the home copy is authoritative.
			m.st.Misses++
			m.mu.Unlock()
			return direct
		}
		e.pins++
		m.clock++
		e.lastUse = m.clock
		wait := e.waitUntil
		e.waitUntil = 0
		if e.prefetched {
			m.st.PrefetchHits++
			e.prefetched = false
		}
		m.st.Hits++
		sess := m.cacheSess
		staged := e.staged
		m.mu.Unlock()
		if wait > 0 {
			p.AdvanceTo(wait)
		}
		return ReadPlan{Sess: sess, Path: staged, Staged: true, Hit: true, release: func() { m.unpin(key) }}
	}
	residual := m.expectedResidualLocked(key)
	m.mu.Unlock()

	if !m.decide(residual, home.Kind(), size, false) {
		m.countMiss()
		return direct
	}
	if m.cfg.Health != nil && !m.cfg.Health.Available(home.Name()) {
		// The home circuit is open: a stage-in would only fast-fail.
		// Fall through; the direct read surfaces the breaker state.
		m.countMiss()
		return direct
	}
	plan, ok := m.stageIn(p, home, homeSess, path, size, key, trace.OpStageIn)
	if !ok {
		return direct
	}
	return plan
}

func (m *Manager) countMiss() {
	m.mu.Lock()
	m.st.Misses++
	m.mu.Unlock()
}

func (m *Manager) countFailure() {
	m.mu.Lock()
	m.st.Misses++
	m.st.StageFailures++
	m.mu.Unlock()
}

// reserve books budget for a new entry (evicting as needed) and
// registers it not-ready with one pin.  Returns false when the bytes
// cannot be freed.
func (m *Manager) reserve(p *vtime.Proc, key, path string, home storage.Backend, size int64) (*entry, bool) {
	if size <= 0 || size > m.cfg.Budget {
		return nil, false
	}
	if !m.evictFor(p, size, key) {
		return nil, false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed || m.entries[key] != nil || m.used+size > m.cfg.Budget {
		return nil, false // lost a race; caller falls back
	}
	m.clock++
	e := &entry{
		key: key, path: path, staged: stagePath(home.Name(), path),
		home: home, bytes: size, pins: 1, lastUse: m.clock,
	}
	m.entries[key] = e
	m.used += size
	if m.used > m.st.PeakUsed {
		m.st.PeakUsed = m.used
	}
	return e, true
}

// unreserve drops a not-ready entry after a failed copy.
func (m *Manager) unreserve(key string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e := m.entries[key]; e != nil {
		m.used -= e.bytes
		delete(m.entries, key)
	}
}

// adjustReserve resizes an in-flight reservation once the instance's
// true size is known.  Growth beyond the budget evicts further; when
// that fails the reservation is dropped and false returned.
func (m *Manager) adjustReserve(p *vtime.Proc, key string, actual int64) bool {
	m.mu.Lock()
	e := m.entries[key]
	if e == nil {
		m.mu.Unlock()
		return false
	}
	delta := actual - e.bytes
	e.bytes = actual
	m.used += delta
	over := m.used > m.cfg.Budget
	if m.used > m.st.PeakUsed {
		m.st.PeakUsed = m.used
	}
	m.mu.Unlock()
	if actual > m.cfg.Budget {
		m.unreserve(key)
		return false
	}
	if over && !m.evictFor(p, 0, key) {
		m.unreserve(key)
		return false
	}
	return true
}

// span records one completed tier-to-tier copy against the home
// resource on the caller's clock; start is the copy's begin time.
func (m *Manager) span(p *vtime.Proc, op trace.Op, home, path string, bytes int64, start time.Duration) {
	m.cfg.Trace.Record(trace.Event{
		At: p.Now(), Proc: p.Name(), Backend: home, Op: op,
		Path: path, Bytes: bytes, Cost: p.Now() - start,
	})
}

// stageIn copies one instance from its home tier into the cache and
// returns a pinned plan over the copy.  Any failure unwinds cleanly —
// no partial copy survives — and reports (ReadPlan{}, false) so the
// caller serves the read directly.  op labels the span recorded for
// the copy: OpStageIn for foreground reads, OpPrefetch for background
// jobs.
func (m *Manager) stageIn(p *vtime.Proc, home storage.Backend, homeSess storage.Session, path string, size int64, key string, op trace.Op) (ReadPlan, bool) {
	start := p.Now()
	csess, err := m.cacheSession(p)
	if err != nil {
		m.countFailure()
		return ReadPlan{}, false
	}
	e, ok := m.reserve(p, key, path, home, size)
	if !ok {
		m.countMiss()
		return ReadPlan{}, false
	}
	var data []byte
	err = m.retry(p, key+"/get", func() error {
		var err error
		data, err = storage.GetFile(p, homeSess, path)
		return err
	})
	if err != nil {
		m.unreserve(key)
		m.countFailure()
		return ReadPlan{}, false
	}
	if int64(len(data)) != size && !m.adjustReserve(p, key, int64(len(data))) {
		m.countFailure()
		return ReadPlan{}, false
	}
	err = m.retry(p, key+"/put", func() error {
		return storage.PutFile(p, csess, e.staged, storage.ModeOverWrite, data)
	})
	if err != nil {
		// Never leave a partial copy behind: a later hit must not read
		// truncated bytes.
		_ = csess.Remove(p, e.staged)
		m.unreserve(key)
		m.countFailure()
		return ReadPlan{}, false
	}
	m.mu.Lock()
	e.ready = true
	m.st.StagedIn++
	m.st.BytesStagedIn += int64(len(data))
	m.st.Hits++ // this read is now served from the copy
	m.mu.Unlock()
	m.span(p, op, home.Name(), path, int64(len(data)), start)
	return ReadPlan{Sess: csess, Path: e.staged, Staged: true, release: func() { m.unpin(key) }}, true
}

func (m *Manager) unpin(key string) {
	m.mu.Lock()
	e := m.entries[key]
	if e == nil {
		m.mu.Unlock()
		return
	}
	if e.pins > 0 {
		e.pins--
	}
	if e.superseded && e.pins == 0 {
		m.used -= e.bytes
		delete(m.entries, key)
		m.garbage = append(m.garbage, e.staged)
	}
	m.mu.Unlock()
}

// ------------------------------------------------------------------
// Write path.

// WritePlan redirects one instance write onto the cache tier.  The
// caller writes through Sess/Path (opening with ModeOverWrite) and then
// either Commit — marking the copy current and dirty for write-back —
// or Abort, which unwinds the reservation.
type WritePlan struct {
	Sess storage.Session
	Path string

	m     *Manager
	key   string
	fresh bool // entry created by this plan (vs. rewriting an old copy)
}

// StageWrite decides whether one instance write should land on the
// cache tier instead of its slower home.  It returns (nil, false) when
// staging the write has no benefit or the budget cannot hold it — the
// caller then writes directly to home.  A direct write that overtakes
// an existing cache copy supersedes it, so stale bytes are never served
// or drained.
func (m *Manager) StageWrite(p *vtime.Proc, home storage.Backend, path string, size int64) (*WritePlan, bool) {
	if m == nil || home == nil || home.Name() == m.cfg.Cache.Name() {
		return nil, false
	}
	m.sweepGarbage(p)
	if kindRank(home.Kind()) <= kindRank(m.cfg.Cache.Kind()) {
		return nil, false
	}
	key := stageKey(home.Name(), path)
	csess, err := m.cacheSession(p)
	if err != nil {
		return nil, false
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, false
	}
	if e := m.entries[key]; e != nil {
		if !e.ready || e.pins > 0 || e.superseded {
			// The copy is busy; the caller will write home directly, so
			// the cached bytes become stale and must never be used again.
			e.superseded = true
			if e.pins == 0 {
				m.used -= e.bytes
				delete(m.entries, key)
				m.garbage = append(m.garbage, e.staged)
			}
			m.mu.Unlock()
			return nil, false
		}
		// Rewrite the existing copy in place (the checkpoint pattern).
		e.ready = false
		e.pins++
		m.clock++
		e.lastUse = m.clock
		staged := e.staged
		m.mu.Unlock()
		return &WritePlan{Sess: csess, Path: staged, m: m, key: key}, true
	}
	m.mu.Unlock()

	e, ok := m.reserve(p, key, path, home, size)
	if !ok {
		return nil, false
	}
	return &WritePlan{Sess: csess, Path: e.staged, m: m, key: key, fresh: true}, true
}

// Commit marks the staged write complete: the cache copy is current and
// dirty, awaiting write-back to its home tier.
func (pl *WritePlan) Commit(p *vtime.Proc) {
	m := pl.m
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.entries[pl.key]
	if e == nil {
		return
	}
	e.ready = true
	e.dirty = true
	if e.pins > 0 {
		e.pins--
	}
	m.st.StagedWrites++
}

// Abort unwinds a failed staged write.  A fresh entry is dropped with
// its partial file; a rewrite of an existing copy leaves the copy
// superseded (its old bytes are gone) so the home tier stays
// authoritative.
func (pl *WritePlan) Abort(p *vtime.Proc) {
	m := pl.m
	m.mu.Lock()
	e := m.entries[pl.key]
	if e == nil {
		m.mu.Unlock()
		return
	}
	if e.pins > 0 {
		e.pins--
	}
	if pl.fresh || e.pins == 0 {
		m.used -= e.bytes
		delete(m.entries, pl.key)
		staged := e.staged
		sess := m.cacheSess
		m.mu.Unlock()
		if sess != nil {
			_ = sess.Remove(p, staged)
		}
		return
	}
	e.superseded = true
	m.mu.Unlock()
}

// ------------------------------------------------------------------
// Write-back and eviction.

// writeBack drains one dirty entry to its home tier, charged to p.
func (m *Manager) writeBack(p *vtime.Proc, e *entry) error {
	start := p.Now()
	csess, err := m.cacheSession(p)
	if err != nil {
		return err
	}
	var data []byte
	err = m.retry(p, e.key+"/wb-get", func() error {
		var err error
		data, err = storage.GetFile(p, csess, e.staged)
		return err
	})
	if err != nil {
		return fmt.Errorf("stage: write-back read %q: %w", e.staged, err)
	}
	hsess, err := m.homeSession(p, e.home)
	if err != nil {
		return fmt.Errorf("stage: write-back connect %q: %w", e.home.Name(), err)
	}
	err = m.retry(p, e.key+"/wb-put", func() error {
		return storage.PutFile(p, hsess, e.path, storage.ModeOverWrite, data)
	})
	if err != nil {
		return fmt.Errorf("stage: write-back %q → %q: %w", e.staged, e.home.Name(), err)
	}
	m.mu.Lock()
	e.dirty = false
	m.st.WriteBacks++
	m.st.BytesWrittenBack += int64(len(data))
	m.mu.Unlock()
	m.span(p, trace.OpWriteBack, e.home.Name(), e.path, int64(len(data)), start)
	return nil
}

// Drain writes every dirty cached instance back to its home tier,
// charging the movement to p.  core.Run calls it at finalization (the
// paper's checkpoint/close point); it is also safe to call at any
// barrier.
func (m *Manager) Drain(p *vtime.Proc) error {
	m.mu.Lock()
	var dirty []*entry
	for _, e := range m.entries {
		if e.ready && e.dirty && !e.superseded {
			e.pins++
			dirty = append(dirty, e)
		}
	}
	m.mu.Unlock()
	sort.Slice(dirty, func(i, j int) bool { return dirty[i].key < dirty[j].key })
	var errs []error
	for _, e := range dirty {
		if err := m.writeBack(p, e); err != nil {
			errs = append(errs, err)
		}
		m.unpin(e.key)
	}
	return errors.Join(errs...)
}

// victimLocked picks the entry with the least benefit-per-byte among
// evictable entries (ready, unpinned, not the excluded key).  With a
// predictor the benefit is residual accesses × per-access saving per
// byte; without one (or without measurements) the least-recently-used
// entry goes.
func (m *Manager) victimLocked(exclude string) *entry {
	var best *entry
	bestScore := 0.0
	bestLRU := int64(0)
	for _, e := range m.entries {
		if !e.ready || e.pins > 0 || e.key == exclude {
			continue
		}
		score, ok := m.benefitLocked(e)
		if best == nil {
			best, bestScore, bestLRU = e, score, e.lastUse
			continue
		}
		if ok {
			if score < bestScore || (score == bestScore && e.lastUse < bestLRU) {
				best, bestScore, bestLRU = e, score, e.lastUse
			}
		} else if e.lastUse < bestLRU {
			best, bestScore, bestLRU = e, score, e.lastUse
		}
	}
	return best
}

// benefitLocked scores an entry's predicted benefit-per-byte; ok is
// false when the predictor cannot price it (LRU decides then).
func (m *Manager) benefitLocked(e *entry) (float64, bool) {
	if m.cfg.PDB == nil {
		return 0, false
	}
	residual := m.expectedResidualLocked(e.key)
	if e.dirty {
		// A dirty copy always saves its write-back until eviction;
		// count that as one residual use so clean entries go first.
		residual++
	}
	if e.bytes <= 0 {
		return 0, false
	}
	tHome, err1 := m.cfg.PDB.WholeFile(e.home.Kind().String(), "read", e.bytes)
	tCache, err2 := m.cfg.PDB.WholeFile(m.cfg.Cache.Kind().String(), "read", e.bytes)
	if err1 != nil || err2 != nil {
		return 0, false
	}
	return float64(residual) * (tHome - tCache) / float64(e.bytes), true
}

// evictFor frees room for need more bytes, never touching pinned
// entries or exclude.  Dirty victims are written back first (charged to
// p), so eviction cannot lose data.
func (m *Manager) evictFor(p *vtime.Proc, need int64, exclude string) bool {
	for {
		m.mu.Lock()
		if m.used+need <= m.cfg.Budget {
			m.mu.Unlock()
			return true
		}
		victim := m.victimLocked(exclude)
		if victim == nil {
			m.mu.Unlock()
			return false
		}
		victim.pins++ // shield from concurrent eviction
		dirty := victim.dirty
		m.mu.Unlock()

		if dirty {
			if err := m.writeBack(p, victim); err != nil {
				m.unpin(victim.key)
				return false
			}
		}
		m.mu.Lock()
		// Re-check: a reader may have pinned it while we drained.
		if victim.pins > 1 {
			victim.pins--
			m.mu.Unlock()
			continue
		}
		m.used -= victim.bytes
		delete(m.entries, victim.key)
		m.st.Evictions++
		m.st.BytesEvicted += victim.bytes
		staged := victim.staged
		sess := m.cacheSess
		m.mu.Unlock()
		if sess != nil {
			_ = sess.Remove(p, staged)
		}
	}
}
