package stage

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/flaky"
	"repro/internal/localdisk"
	"repro/internal/memfs"
	"repro/internal/metadb"
	"repro/internal/predict"
	"repro/internal/remotedisk"
	"repro/internal/resilient"
	"repro/internal/storage"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// testEnv is a remote-disk home in front of a local-disk cache over
// in-memory stores.
type testEnv struct {
	sim   *vtime.Sim
	home  storage.Backend
	cache storage.Backend
	mgr   *Manager
	p     *vtime.Proc
	hsess storage.Session
}

func newTestEnv(t *testing.T, cfg Config) *testEnv {
	t.Helper()
	sim := vtime.NewVirtual()
	home, err := remotedisk.New("rdisk", memfs.New())
	if err != nil {
		t.Fatal(err)
	}
	cache, err := localdisk.New("ssa", memfs.New())
	if err != nil {
		t.Fatal(err)
	}
	cfg.Sim = sim
	if cfg.Cache == nil {
		cfg.Cache = cache
	}
	if cfg.Budget == 0 {
		cfg.Budget = 1 << 20
	}
	mgr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Close)
	p := sim.NewProc("rank0")
	hsess, err := home.Connect(p)
	if err != nil {
		t.Fatal(err)
	}
	return &testEnv{sim: sim, home: home, cache: cache, mgr: mgr, p: p, hsess: hsess}
}

func (e *testEnv) put(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := storage.PutFile(e.p, e.hsess, path, storage.ModeCreate, data); err != nil {
		t.Fatalf("put %s: %v", path, err)
	}
}

// readPlan performs one staged-or-direct read end to end and returns
// the bytes.
func readPlan(t *testing.T, p *vtime.Proc, pl ReadPlan) []byte {
	t.Helper()
	defer pl.Release()
	data, err := storage.GetFile(p, pl.Sess, pl.Path)
	if err != nil {
		t.Fatalf("read %s: %v", pl.Path, err)
	}
	return data
}

func TestStageReadMissThenHit(t *testing.T) {
	e := newTestEnv(t, Config{})
	want := bytes.Repeat([]byte("astro"), 100)
	e.put(t, "run1/iter000000", want)

	pl := e.mgr.StageRead(e.p, e.home, e.hsess, "run1/iter000000", int64(len(want)))
	if !pl.Staged {
		t.Fatalf("first read not staged: %+v", e.mgr.Stats())
	}
	if got := readPlan(t, e.p, pl); !bytes.Equal(got, want) {
		t.Fatalf("staged copy differs: got %d bytes", len(got))
	}
	pl2 := e.mgr.StageRead(e.p, e.home, e.hsess, "run1/iter000000", int64(len(want)))
	if !pl2.Staged {
		t.Fatal("second read not served from cache")
	}
	if got := readPlan(t, e.p, pl2); !bytes.Equal(got, want) {
		t.Fatal("cached copy differs")
	}
	st := e.mgr.Stats()
	if st.StagedIn != 1 || st.Hits != 2 || st.BytesStagedIn != int64(len(want)) {
		t.Fatalf("stats: %+v", st)
	}
	if st.Used != int64(len(want)) {
		t.Fatalf("used = %d, want %d", st.Used, len(want))
	}
}

func TestStageReadSameTierIsDirect(t *testing.T) {
	e := newTestEnv(t, Config{})
	csess, err := e.cache.Connect(e.p)
	if err != nil {
		t.Fatal(err)
	}
	pl := e.mgr.StageRead(e.p, e.cache, csess, "x", 10)
	if pl.Staged {
		t.Fatal("cache-homed read must not stage")
	}
}

// TestDecideInequality drives the eq. (2) decision with hand-built
// performance curves: when the home tier is barely slower than the
// cache, one residual access cannot amortize the copy-in cost and the
// read must go direct.
func TestDecideInequality(t *testing.T) {
	meta := metadb.New()
	for _, s := range []metadb.PerfSample{
		{Resource: "remotedisk", Op: "read", Size: 1 << 10, Seconds: 0.011},
		{Resource: "remotedisk", Op: "read", Size: 1 << 20, Seconds: 0.011 * 1024},
		{Resource: "localdisk", Op: "read", Size: 1 << 10, Seconds: 0.010},
		{Resource: "localdisk", Op: "read", Size: 1 << 20, Seconds: 0.010 * 1024},
		{Resource: "localdisk", Op: "write", Size: 1 << 10, Seconds: 0.010},
		{Resource: "localdisk", Op: "write", Size: 1 << 20, Seconds: 0.010 * 1024},
	} {
		meta.AddSample(nil, s)
	}
	pdb := predict.NewDB(meta)

	// ExpectedReads=2: after the first access one residual remains.
	// Saving per access = 0.001 s/KiB; copy-in = 0.010 s/KiB.  1×0.001
	// < 0.010 → direct.
	e := newTestEnv(t, Config{PDB: pdb, ExpectedReads: 2})
	e.put(t, "d", make([]byte, 1<<10))
	if pl := e.mgr.StageRead(e.p, e.home, e.hsess, "d", 1<<10); pl.Staged {
		t.Fatal("unprofitable stage-in accepted")
	}

	// ExpectedReads=20: 19×0.001 > 0.010 → stage.
	e2 := newTestEnv(t, Config{PDB: pdb, ExpectedReads: 20})
	e2.put(t, "d", make([]byte, 1<<10))
	pl := e2.mgr.StageRead(e2.p, e2.home, e2.hsess, "d", 1<<10)
	if !pl.Staged {
		t.Fatal("profitable stage-in rejected")
	}
	pl.Release()
}

func TestEvictionHonorsBudget(t *testing.T) {
	const sz = 1000
	e := newTestEnv(t, Config{Budget: 2 * sz})
	for i := 0; i < 3; i++ {
		e.put(t, fmt.Sprintf("f%d", i), make([]byte, sz))
	}
	for i := 0; i < 3; i++ {
		pl := e.mgr.StageRead(e.p, e.home, e.hsess, fmt.Sprintf("f%d", i), sz)
		if !pl.Staged {
			t.Fatalf("f%d not staged", i)
		}
		pl.Release()
	}
	st := e.mgr.Stats()
	if st.Used > st.Budget {
		t.Fatalf("used %d exceeds budget %d", st.Used, st.Budget)
	}
	if st.PeakUsed > st.Budget {
		t.Fatalf("peak %d exceeds budget %d", st.PeakUsed, st.Budget)
	}
	if st.Evictions != 1 || st.BytesEvicted != sz {
		t.Fatalf("evictions: %+v", st)
	}
}

func TestPinnedEntriesSurviveEviction(t *testing.T) {
	const sz = 1000
	e := newTestEnv(t, Config{Budget: 2 * sz})
	e.put(t, "pinned", make([]byte, sz))
	e.put(t, "lru", make([]byte, sz))
	e.put(t, "next", make([]byte, sz))

	plPinned := e.mgr.StageRead(e.p, e.home, e.hsess, "pinned", sz)
	if !plPinned.Staged {
		t.Fatal("pinned not staged")
	}
	// Hold the pin across the next stage-ins.
	plLRU := e.mgr.StageRead(e.p, e.home, e.hsess, "lru", sz)
	plLRU.Release()
	plNext := e.mgr.StageRead(e.p, e.home, e.hsess, "next", sz)
	plNext.Release()
	if !plNext.Staged {
		t.Fatal("next not staged")
	}
	// The unpinned LRU entry must have been the victim.
	hit := e.mgr.StageRead(e.p, e.home, e.hsess, "pinned", sz)
	if !hit.Staged {
		t.Fatal("pinned entry was evicted")
	}
	hit.Release()
	plPinned.Release()
}

// TestConcurrentRanksBudget staggers many ranks staging distinct
// instances through a budget that holds only a few: the invariant under
// -race is that PeakUsed never exceeds Budget and every cached byte is
// accounted.
func TestConcurrentRanksBudget(t *testing.T) {
	const (
		ranks = 8
		files = 4 // per rank
		sz    = 1 << 10
	)
	e := newTestEnv(t, Config{Budget: 3 * sz})
	for r := 0; r < ranks; r++ {
		for f := 0; f < files; f++ {
			e.put(t, fmt.Sprintf("r%d/f%d", r, f), bytes.Repeat([]byte{byte(r), byte(f)}, sz/2))
		}
	}
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			p := e.sim.NewProc(fmt.Sprintf("rank%d", r))
			hsess, err := e.home.Connect(p)
			if err != nil {
				t.Error(err)
				return
			}
			for f := 0; f < files; f++ {
				want := bytes.Repeat([]byte{byte(r), byte(f)}, sz/2)
				pl := e.mgr.StageRead(p, e.home, hsess, fmt.Sprintf("r%d/f%d", r, f), sz)
				data, err := storage.GetFile(p, pl.Sess, pl.Path)
				pl.Release()
				if err != nil {
					t.Errorf("rank %d f%d: %v", r, f, err)
					return
				}
				if !bytes.Equal(data, want) {
					t.Errorf("rank %d f%d: corrupt read", r, f)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	st := e.mgr.Stats()
	if st.PeakUsed > st.Budget {
		t.Fatalf("peak %d exceeded budget %d", st.PeakUsed, st.Budget)
	}
	if st.Used < 0 || st.Used > st.Budget {
		t.Fatalf("final used %d out of range", st.Used)
	}
}

func TestStageWriteCommitAndDrain(t *testing.T) {
	e := newTestEnv(t, Config{})
	data := bytes.Repeat([]byte("ckpt"), 64)

	wp, ok := e.mgr.StageWrite(e.p, e.home, "run/restart", int64(len(data)))
	if !ok {
		t.Fatal("staged write rejected")
	}
	if err := storage.PutFile(e.p, wp.Sess, wp.Path, storage.ModeOverWrite, data); err != nil {
		t.Fatal(err)
	}
	wp.Commit(e.p)

	// The home tier must not have the instance yet (write-back is lazy).
	if _, err := e.hsess.Stat(e.p, "run/restart"); err == nil {
		t.Fatal("write-back happened eagerly")
	}
	// A read of the dirty instance is served from the cache.
	pl := e.mgr.StageRead(e.p, e.home, e.hsess, "run/restart", int64(len(data)))
	if !pl.Staged {
		t.Fatal("dirty instance not served from cache")
	}
	if got := readPlan(t, e.p, pl); !bytes.Equal(got, data) {
		t.Fatal("dirty read differs")
	}

	if err := e.mgr.Drain(e.p); err != nil {
		t.Fatal(err)
	}
	got, err := storage.GetFile(e.p, e.hsess, "run/restart")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("drained bytes differ")
	}
	st := e.mgr.Stats()
	if st.StagedWrites != 1 || st.WriteBacks != 1 || st.BytesWrittenBack != int64(len(data)) {
		t.Fatalf("stats: %+v", st)
	}
	// A second drain is a no-op.
	if err := e.mgr.Drain(e.p); err != nil {
		t.Fatal(err)
	}
	if st := e.mgr.Stats(); st.WriteBacks != 1 {
		t.Fatal("clean entry drained twice")
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	const sz = 1000
	e := newTestEnv(t, Config{Budget: sz})
	data := make([]byte, sz)
	for i := range data {
		data[i] = byte(i)
	}
	wp, ok := e.mgr.StageWrite(e.p, e.home, "dirty", sz)
	if !ok {
		t.Fatal("staged write rejected")
	}
	if err := storage.PutFile(e.p, wp.Sess, wp.Path, storage.ModeOverWrite, data); err != nil {
		t.Fatal(err)
	}
	wp.Commit(e.p)

	// Staging a second instance must evict the dirty one — after
	// draining it home.
	e.put(t, "other", make([]byte, sz))
	pl := e.mgr.StageRead(e.p, e.home, e.hsess, "other", sz)
	if !pl.Staged {
		t.Fatal("second instance not staged")
	}
	pl.Release()
	got, err := storage.GetFile(e.p, e.hsess, "dirty")
	if err != nil {
		t.Fatalf("evicted dirty instance lost: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("written-back bytes differ")
	}
}

func TestStageWriteSupersededByDirectWrite(t *testing.T) {
	e := newTestEnv(t, Config{})
	old := []byte("old-bytes")
	wp, ok := e.mgr.StageWrite(e.p, e.home, "ds", int64(len(old)))
	if !ok {
		t.Fatal("staged write rejected")
	}
	if err := storage.PutFile(e.p, wp.Sess, wp.Path, storage.ModeOverWrite, old); err != nil {
		t.Fatal(err)
	}
	// The writer dies before Commit; a second writer asks to stage the
	// same instance while the first plan is outstanding — it must be
	// refused and the stale copy invalidated.
	if _, ok := e.mgr.StageWrite(e.p, e.home, "ds", 9); ok {
		t.Fatal("second staged write of a busy instance accepted")
	}
	wp.Commit(e.p)
	fresh := []byte("new-bytes")
	e.put(t, "ds", fresh)
	pl := e.mgr.StageRead(e.p, e.home, e.hsess, "ds", int64(len(fresh)))
	if pl.Staged {
		t.Fatal("superseded cache copy served")
	}
	if got := readPlan(t, e.p, pl); !bytes.Equal(got, fresh) {
		t.Fatal("read did not see the direct write")
	}
}

func TestPrefetchProducesHit(t *testing.T) {
	e := newTestEnv(t, Config{PrefetchDepth: 2})
	want := bytes.Repeat([]byte("pf"), 256)
	e.put(t, "iter000010", want)

	e.mgr.Prefetch(e.home, "iter000010", int64(len(want)), e.p.Now())
	e.mgr.WaitPrefetch()

	before := e.p.Now()
	pl := e.mgr.StageRead(e.p, e.home, e.hsess, "iter000010", int64(len(want)))
	if !pl.Staged {
		t.Fatal("prefetched instance not a hit")
	}
	if got := readPlan(t, e.p, pl); !bytes.Equal(got, want) {
		t.Fatal("prefetched copy differs")
	}
	st := e.mgr.Stats()
	if st.PrefetchIssued != 1 || st.PrefetchDone != 1 || st.PrefetchHits != 1 {
		t.Fatalf("prefetch stats: %+v", st)
	}
	if st.Hits != 1 || st.StagedIn != 1 {
		t.Fatalf("stats: %+v", st)
	}
	// The hit waited out the prefetch completion (the copy started at
	// the hint time, so completion > hint time in virtual time).
	if e.p.Now() <= before {
		t.Fatal("prefetch completion time not charged to the reader")
	}
}

func TestPrefetchMissingInstanceDropped(t *testing.T) {
	e := newTestEnv(t, Config{PrefetchDepth: 2})
	e.mgr.Prefetch(e.home, "not-there", 100, 0)
	e.mgr.WaitPrefetch()
	if st := e.mgr.Stats(); st.StagedIn != 0 {
		t.Fatalf("staged a missing instance: %+v", st)
	}
}

// TestStageInFailureLeavesNoPartialCopy fails every cache write: the
// stage-in must fall through to a direct read and leave nothing under
// the cache's stage/ namespace.
func TestStageInFailureLeavesNoPartialCopy(t *testing.T) {
	sim := vtime.NewVirtual()
	home, err := remotedisk.New("rdisk", memfs.New())
	if err != nil {
		t.Fatal(err)
	}
	inner, err := localdisk.New("ssa", memfs.New())
	if err != nil {
		t.Fatal(err)
	}
	cache := flaky.Wrap(inner, flaky.Policy{FailEvery: 1, Ops: []string{"write"}})
	mgr, err := New(Config{
		Sim: sim, Cache: cache, Budget: 1 << 20,
		Retry: resilient.Policy{MaxAttempts: 2, BaseDelay: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	p := sim.NewProc("rank0")
	hsess, err := home.Connect(p)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte("must-survive")
	if err := storage.PutFile(p, hsess, "d", storage.ModeCreate, want); err != nil {
		t.Fatal(err)
	}

	pl := mgr.StageRead(p, home, hsess, "d", int64(len(want)))
	if pl.Staged {
		t.Fatal("failed stage-in reported as staged")
	}
	if got := readPlan(t, p, pl); !bytes.Equal(got, want) {
		t.Fatal("direct fallback read differs")
	}
	st := mgr.Stats()
	if st.StageFailures != 1 || st.StagedIn != 0 {
		t.Fatalf("stats: %+v", st)
	}
	if st.Used != 0 {
		t.Fatalf("leaked reservation: used=%d", st.Used)
	}
	csess, err := inner.Connect(p)
	if err != nil {
		t.Fatal(err)
	}
	infos, err := csess.List(p, "stage/")
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 0 {
		t.Fatalf("partial copies left behind: %v", infos)
	}
}

// TestBreakerVetoesStageIn opens the home circuit: StageRead must not
// even attempt the copy.
func TestBreakerVetoesStageIn(t *testing.T) {
	health := resilient.NewHealth(resilient.BreakerConfig{})
	e := newTestEnv(t, Config{Health: health})
	e.put(t, "d", []byte("x"))
	health.Breaker(e.home.Name()).Trip(e.p.Now())
	if health.Available(e.home.Name()) {
		t.Fatal("breaker did not open")
	}
	pl := e.mgr.StageRead(e.p, e.home, e.hsess, "d", 1)
	if pl.Staged {
		t.Fatal("staged from a tripped home")
	}
	if st := e.mgr.Stats(); st.StagedIn != 0 {
		t.Fatalf("copy attempted: %+v", st)
	}
}

func TestMovementChargedToVtime(t *testing.T) {
	e := newTestEnv(t, Config{})
	want := bytes.Repeat([]byte("t"), 1<<16)
	e.put(t, "d", want)
	before := e.p.Now()
	pl := e.mgr.StageRead(e.p, e.home, e.hsess, "d", int64(len(want)))
	if !pl.Staged {
		t.Fatal("not staged")
	}
	pl.Release()
	if e.p.Now() <= before {
		t.Fatal("stage-in copy cost not charged to the caller's clock")
	}
}

func TestConfigValidation(t *testing.T) {
	cache, err := localdisk.New("ssa", memfs.New())
	if err != nil {
		t.Fatal(err)
	}
	sim := vtime.NewVirtual()
	for _, cfg := range []Config{
		{Cache: cache, Budget: 1},
		{Sim: sim, Budget: 1},
		{Sim: sim, Cache: cache},
		{Sim: sim, Cache: cache, Budget: -5},
	} {
		if _, err := New(cfg); err == nil {
			t.Fatalf("invalid config accepted: %+v", cfg)
		}
	}
}

// TestStageSpansRecorded pins the trace spans: a foreground stage-in, a
// prefetch and a write-back each leave one attributable event naming
// the home resource and home path.
func TestStageSpansRecorded(t *testing.T) {
	rec := trace.New(0)
	e := newTestEnv(t, Config{PrefetchDepth: 2, Trace: rec})
	data := bytes.Repeat([]byte{7}, 4096)
	e.put(t, "spans/a", data)
	e.put(t, "spans/b", data)

	// Foreground stage-in.
	pl := e.mgr.StageRead(e.p, e.home, e.hsess, "spans/a", int64(len(data)))
	readPlan(t, e.p, pl)
	if n := rec.Count(e.home.Name(), trace.OpStageIn); n != 1 {
		t.Fatalf("stagein spans = %d, events:\n%s", n, rec.SummaryString())
	}

	// Background prefetch.
	e.mgr.Prefetch(e.home, "spans/b", int64(len(data)), e.p.Now())
	e.mgr.WaitPrefetch()
	if n := rec.Count(e.home.Name(), trace.OpPrefetch); n != 1 {
		t.Fatalf("prefetch spans = %d, events:\n%s", n, rec.SummaryString())
	}

	// Staged write drained back home.
	wp, ok := e.mgr.StageWrite(e.p, e.home, "spans/wb", int64(len(data)))
	if !ok {
		t.Fatal("StageWrite declined")
	}
	if err := storage.PutFile(e.p, wp.Sess, wp.Path, storage.ModeOverWrite, data); err != nil {
		t.Fatal(err)
	}
	wp.Commit(e.p)
	if err := e.mgr.Drain(e.p); err != nil {
		t.Fatal(err)
	}
	if n := rec.Count(e.home.Name(), trace.OpWriteBack); n != 1 {
		t.Fatalf("writeback spans = %d, events:\n%s", n, rec.SummaryString())
	}
	for _, ev := range rec.Events() {
		if ev.Bytes != int64(len(data)) || ev.Cost <= 0 {
			t.Fatalf("span %+v: want %d bytes and positive cost", ev, len(data))
		}
		if ev.Backend != e.home.Name() {
			t.Fatalf("span backend = %q, want home %q", ev.Backend, e.home.Name())
		}
	}
}
