package stage

import (
	"time"

	"repro/internal/storage"
	"repro/internal/trace"
)

// prefetchJob asks the background worker to stage one instance.
type prefetchJob struct {
	home     storage.Backend
	path     string
	size     int64
	issuedAt time.Duration // virtual time the hint was issued
}

// Prefetch hints that the instance at path on home will be read soon:
// the background worker stages it while the caller computes.  The copy
// costs virtual time, but on a *prefetch* process that starts at
// issuedAt (the hinting rank's clock) — so a later hit pays only
// max(0, completion − reader.Now), the paper's overlap of I/O with
// computation.  Hints are dropped silently when prefetch is disabled,
// the queue is full, or the instance is already cached.
func (m *Manager) Prefetch(home storage.Backend, path string, size int64, issuedAt time.Duration) {
	if m == nil || home == nil {
		return
	}
	m.mu.Lock()
	if m.prefetchq == nil || m.closed {
		m.mu.Unlock()
		return
	}
	if home.Name() == m.cfg.Cache.Name() || m.entries[stageKey(home.Name(), path)] != nil {
		m.mu.Unlock()
		return
	}
	m.st.PrefetchIssued++
	m.pending.Add(1)
	q := m.prefetchq
	m.mu.Unlock()

	select {
	case q <- prefetchJob{home: home, path: path, size: size, issuedAt: issuedAt}:
	default:
		m.pending.Done() // queue full: drop the hint
	}
}

// WaitPrefetch blocks until every accepted prefetch hint has been
// processed (staged or dropped).  Tests and experiment harnesses call
// it before measuring hit rates.
func (m *Manager) WaitPrefetch() { m.pending.Wait() }

// prefetchLoop is the background staging worker.  Each job runs on a
// fresh prefetch Proc advanced to the hint's issue time, so the copy is
// charged to virtual time concurrent with the hinting rank's compute
// phase rather than serialized after it.
func (m *Manager) prefetchLoop() {
	defer m.workers.Done()
	for job := range m.prefetchq {
		m.prefetchOne(job)
		m.pending.Done()
	}
}

func (m *Manager) prefetchOne(job prefetchJob) {
	p := m.cfg.Sim.NewProc("stage-prefetch")
	p.AdvanceTo(job.issuedAt)
	key := stageKey(job.home.Name(), job.path)

	m.mu.Lock()
	if m.closed || m.entries[key] != nil {
		m.mu.Unlock()
		return
	}
	residual := m.expectedResidualLocked(key)
	m.mu.Unlock()

	if !m.decide(residual, job.home.Kind(), job.size, true) {
		return
	}
	if m.cfg.Health != nil && !m.cfg.Health.Available(job.home.Name()) {
		return
	}
	hsess, err := m.homeSession(p, job.home)
	if err != nil {
		return
	}
	size := job.size
	if size <= 0 {
		info, err := hsess.Stat(p, job.path)
		if err != nil {
			return
		}
		size = info.Size
	} else if _, err := hsess.Stat(p, job.path); err != nil {
		return // the instance does not exist (yet)
	}
	plan, ok := m.stageIn(p, job.home, hsess, job.path, size, key, trace.OpPrefetch)
	if !ok {
		return
	}
	m.mu.Lock()
	if e := m.entries[key]; e != nil {
		e.prefetched = true
		e.waitUntil = p.Now() // hitters wait out the remaining copy time
		// stageIn counted a hit and a pin for its caller; a prefetch has
		// no caller, so undo both.
		m.st.Hits--
		m.st.PrefetchDone++
	}
	m.mu.Unlock()
	plan.Release()
}
