package stage

import (
	"fmt"
	"hash/crc32"
	"log"
	"sort"
	"strconv"
	"strings"

	"repro/internal/storage"
	"repro/internal/vtime"
)

// manifestMagic heads every encoded manifest; bump the suffix when the
// line format changes.  Version 2 added the per-entry content checksum
// and the whole-file CRC trailer.
const manifestMagic = "stagemanifest/2"

// ManifestPath is where SaveManifest persists the cache inventory on
// the cache backend.  SaveManifest also keeps the previous manifest's
// bytes at ManifestPath+".prev" so a write torn mid-overwrite (the
// cache backend has no rename) still leaves one intact inventory to
// fall back to.
const ManifestPath = "stage/.manifest"

// manifestPrevPath is the fallback copy LoadManifest consults when the
// primary is torn or missing.
const manifestPrevPath = ManifestPath + ".prev"

// manifestCRCTable is Castagnoli, matching the journal's checksums.
var manifestCRCTable = crc32.MakeTable(crc32.Castagnoli)

// ManifestEntry is one cached instance as recorded in the manifest: the
// minimum needed to re-adopt the copy after a restart.
type ManifestEntry struct {
	Path     string // path on the home backend
	Home     string // home backend name
	Staged   string // path on the cache backend
	Bytes    int64
	Dirty    bool
	Accesses int64  // reads observed so far, seeding residual estimates
	Sum      uint32 // CRC32C of the staged bytes; 0 = unknown, skip the check
}

// EncodeManifest renders entries as the line-oriented manifest format:
// a magic first line, one tab-separated record per entry with quoted
// strings, and a CRC trailer over everything above it so a torn or
// bit-flipped manifest is detected instead of trusted.  Entries are
// sorted by home+path so encoding is deterministic.
func EncodeManifest(entries []ManifestEntry) []byte {
	sorted := make([]ManifestEntry, len(entries))
	copy(sorted, entries)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Home != sorted[j].Home {
			return sorted[i].Home < sorted[j].Home
		}
		return sorted[i].Path < sorted[j].Path
	})
	var b strings.Builder
	b.WriteString(manifestMagic)
	b.WriteByte('\n')
	for _, e := range sorted {
		fmt.Fprintf(&b, "%s\t%s\t%s\t%d\t%t\t%d\t%d\n",
			strconv.Quote(e.Home), strconv.Quote(e.Path), strconv.Quote(e.Staged),
			e.Bytes, e.Dirty, e.Accesses, e.Sum)
	}
	body := b.String()
	return []byte(fmt.Sprintf("%scrc\t%d\n", body, crc32.Checksum([]byte(body), manifestCRCTable)))
}

// DecodeManifest parses data produced by EncodeManifest, verifying the
// trailer CRC.  It never panics on arbitrary input: malformed or torn
// bytes yield an error.
func DecodeManifest(data []byte) ([]ManifestEntry, error) {
	s := string(data)
	// The trailer is the last non-empty line; everything above it is
	// covered by its CRC.
	trailerAt := strings.LastIndex(strings.TrimRight(s, "\n"), "\n") + 1
	if trailerAt <= 0 {
		return nil, fmt.Errorf("stage: manifest missing trailer")
	}
	trailer := strings.TrimRight(s[trailerAt:], "\n")
	var want uint32
	if _, err := fmt.Sscanf(trailer, "crc\t%d", &want); err != nil || trailer != fmt.Sprintf("crc\t%d", want) {
		return nil, fmt.Errorf("stage: manifest bad trailer %q", trailer)
	}
	body := s[:trailerAt]
	if got := crc32.Checksum([]byte(body), manifestCRCTable); got != want {
		return nil, fmt.Errorf("stage: manifest checksum mismatch (torn write?)")
	}
	lines := strings.Split(body, "\n")
	if len(lines) == 0 || lines[0] != manifestMagic {
		return nil, fmt.Errorf("stage: bad manifest magic")
	}
	var out []ManifestEntry
	for i, line := range lines[1:] {
		if line == "" {
			continue
		}
		fields := strings.Split(line, "\t")
		if len(fields) != 7 {
			return nil, fmt.Errorf("stage: manifest line %d: want 7 fields, got %d", i+2, len(fields))
		}
		var e ManifestEntry
		var err error
		if e.Home, err = strconv.Unquote(fields[0]); err != nil {
			return nil, fmt.Errorf("stage: manifest line %d home: %w", i+2, err)
		}
		if e.Path, err = strconv.Unquote(fields[1]); err != nil {
			return nil, fmt.Errorf("stage: manifest line %d path: %w", i+2, err)
		}
		if e.Staged, err = strconv.Unquote(fields[2]); err != nil {
			return nil, fmt.Errorf("stage: manifest line %d staged: %w", i+2, err)
		}
		if e.Bytes, err = strconv.ParseInt(fields[3], 10, 64); err != nil {
			return nil, fmt.Errorf("stage: manifest line %d bytes: %w", i+2, err)
		}
		if e.Dirty, err = strconv.ParseBool(fields[4]); err != nil {
			return nil, fmt.Errorf("stage: manifest line %d dirty: %w", i+2, err)
		}
		if e.Accesses, err = strconv.ParseInt(fields[5], 10, 64); err != nil {
			return nil, fmt.Errorf("stage: manifest line %d accesses: %w", i+2, err)
		}
		sum, err := strconv.ParseUint(fields[6], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("stage: manifest line %d sum: %w", i+2, err)
		}
		e.Sum = uint32(sum)
		if e.Home == "" || e.Path == "" || e.Staged == "" || e.Bytes < 0 || e.Accesses < 0 {
			return nil, fmt.Errorf("stage: manifest line %d: invalid entry", i+2)
		}
		out = append(out, e)
	}
	return out, nil
}

// Manifest snapshots the current cache inventory (ready, non-superseded
// entries only).  Sum fields are zero; SaveManifest fills them from the
// staged bytes.
func (m *Manager) Manifest() []ManifestEntry {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []ManifestEntry
	for _, e := range m.entries {
		if !e.ready || e.superseded {
			continue
		}
		out = append(out, ManifestEntry{
			Path:     e.path,
			Home:     e.home.Name(),
			Staged:   e.staged,
			Bytes:    e.bytes,
			Dirty:    e.dirty,
			Accesses: int64(m.seen[e.key]),
		})
	}
	return out
}

// SaveManifest persists the cache inventory to ManifestPath on the
// cache backend, so a restarted Manager can re-adopt warm copies.  Each
// entry carries a checksum of its staged bytes, and the previous
// manifest is kept at ManifestPath+".prev" before the overwrite — the
// barrier discipline a backend without rename allows: a crash tearing
// the primary leaves the fallback intact, and a crash tearing a cache
// file is caught at adoption by the content checksum.
func (m *Manager) SaveManifest(p *vtime.Proc) error {
	sess, err := m.cacheSession(p)
	if err != nil {
		return err
	}
	entries := m.Manifest()
	for i := range entries {
		data, err := storage.GetFile(p, sess, entries[i].Staged)
		if err != nil {
			return fmt.Errorf("stage: manifest sum %q: %w", entries[i].Staged, err)
		}
		entries[i].Sum = crc32.Checksum(data, manifestCRCTable)
	}
	encoded := EncodeManifest(entries)
	// Preserve the old inventory before overwriting the primary in
	// place.
	if old, err := storage.GetFile(p, sess, ManifestPath); err == nil {
		if err := storage.PutFile(p, sess, manifestPrevPath, storage.ModeOverWrite, old); err != nil {
			return err
		}
	}
	return storage.PutFile(p, sess, ManifestPath, storage.ModeOverWrite, encoded)
}

// LoadManifest re-adopts cached copies recorded at ManifestPath.  homes
// maps backend names to live backends; entries whose home is unknown,
// whose cache file is missing, resized or fails its content checksum,
// or which would overflow the budget are skipped rather than trusted.
// A missing, truncated or corrupt manifest is not fatal: the fallback
// copy is tried, and if that fails too the Manager logs the reason and
// starts with an empty cache.  Returns the number adopted.
func (m *Manager) LoadManifest(p *vtime.Proc, homes ...storage.Backend) (int, error) {
	sess, err := m.cacheSession(p)
	if err != nil {
		return 0, err
	}
	entries, ok := loadManifestEntries(p, sess)
	if !ok {
		return 0, nil
	}
	byName := make(map[string]storage.Backend, len(homes))
	for _, b := range homes {
		byName[b.Name()] = b
	}
	adopted := 0
	for _, me := range entries {
		home := byName[me.Home]
		if home == nil {
			continue
		}
		data, err := storage.GetFile(p, sess, me.Staged)
		if err != nil || int64(len(data)) != me.Bytes {
			continue
		}
		if me.Sum != 0 && crc32.Checksum(data, manifestCRCTable) != me.Sum {
			log.Printf("stage: manifest entry %q: staged copy checksum mismatch, skipping", me.Staged)
			continue
		}
		key := stageKey(me.Home, me.Path)
		m.mu.Lock()
		if m.closed || m.entries[key] != nil || m.used+me.Bytes > m.cfg.Budget {
			m.mu.Unlock()
			continue
		}
		m.clock++
		m.entries[key] = &entry{
			key: key, path: me.Path, staged: me.Staged,
			home: home, bytes: me.Bytes,
			ready: true, dirty: me.Dirty, lastUse: m.clock,
		}
		m.seen[key] = int(me.Accesses)
		m.used += me.Bytes
		if m.used > m.st.PeakUsed {
			m.st.PeakUsed = m.used
		}
		m.mu.Unlock()
		adopted++
	}
	return adopted, nil
}

// loadManifestEntries fetches and decodes the manifest, falling back to
// the previous copy; ok is false when no intact manifest exists (the
// caller starts empty).
func loadManifestEntries(p *vtime.Proc, sess storage.Session) ([]ManifestEntry, bool) {
	var firstErr error
	for _, path := range []string{ManifestPath, manifestPrevPath} {
		data, err := storage.GetFile(p, sess, path)
		if err == nil {
			entries, derr := DecodeManifest(data)
			if derr == nil {
				if path != ManifestPath {
					log.Printf("stage: primary manifest unusable (%v), recovered from %s", firstErr, path)
				}
				return entries, true
			}
			err = derr
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	log.Printf("stage: no usable manifest (%v), starting with an empty cache", firstErr)
	return nil, false
}
