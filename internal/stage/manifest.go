package stage

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/storage"
	"repro/internal/vtime"
)

// manifestMagic heads every encoded manifest; bump the suffix when the
// line format changes.
const manifestMagic = "stagemanifest/1"

// ManifestPath is where SaveManifest persists the cache inventory on
// the cache backend.
const ManifestPath = "stage/.manifest"

// ManifestEntry is one cached instance as recorded in the manifest: the
// minimum needed to re-adopt the copy after a restart.
type ManifestEntry struct {
	Path     string // path on the home backend
	Home     string // home backend name
	Staged   string // path on the cache backend
	Bytes    int64
	Dirty    bool
	Accesses int64 // reads observed so far, seeding residual estimates
}

// EncodeManifest renders entries as the line-oriented manifest format:
// a magic first line, then one tab-separated record per entry with
// quoted strings.  Entries are sorted by home+path so encoding is
// deterministic.
func EncodeManifest(entries []ManifestEntry) []byte {
	sorted := make([]ManifestEntry, len(entries))
	copy(sorted, entries)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Home != sorted[j].Home {
			return sorted[i].Home < sorted[j].Home
		}
		return sorted[i].Path < sorted[j].Path
	})
	var b strings.Builder
	b.WriteString(manifestMagic)
	b.WriteByte('\n')
	for _, e := range sorted {
		fmt.Fprintf(&b, "%s\t%s\t%s\t%d\t%t\t%d\n",
			strconv.Quote(e.Home), strconv.Quote(e.Path), strconv.Quote(e.Staged),
			e.Bytes, e.Dirty, e.Accesses)
	}
	return []byte(b.String())
}

// DecodeManifest parses data produced by EncodeManifest.  It never
// panics on arbitrary input: malformed bytes yield an error.
func DecodeManifest(data []byte) ([]ManifestEntry, error) {
	lines := strings.Split(string(data), "\n")
	if len(lines) == 0 || lines[0] != manifestMagic {
		return nil, fmt.Errorf("stage: bad manifest magic")
	}
	var out []ManifestEntry
	for i, line := range lines[1:] {
		if line == "" {
			continue
		}
		fields := strings.Split(line, "\t")
		if len(fields) != 6 {
			return nil, fmt.Errorf("stage: manifest line %d: want 6 fields, got %d", i+2, len(fields))
		}
		var e ManifestEntry
		var err error
		if e.Home, err = strconv.Unquote(fields[0]); err != nil {
			return nil, fmt.Errorf("stage: manifest line %d home: %w", i+2, err)
		}
		if e.Path, err = strconv.Unquote(fields[1]); err != nil {
			return nil, fmt.Errorf("stage: manifest line %d path: %w", i+2, err)
		}
		if e.Staged, err = strconv.Unquote(fields[2]); err != nil {
			return nil, fmt.Errorf("stage: manifest line %d staged: %w", i+2, err)
		}
		if e.Bytes, err = strconv.ParseInt(fields[3], 10, 64); err != nil {
			return nil, fmt.Errorf("stage: manifest line %d bytes: %w", i+2, err)
		}
		if e.Dirty, err = strconv.ParseBool(fields[4]); err != nil {
			return nil, fmt.Errorf("stage: manifest line %d dirty: %w", i+2, err)
		}
		if e.Accesses, err = strconv.ParseInt(fields[5], 10, 64); err != nil {
			return nil, fmt.Errorf("stage: manifest line %d accesses: %w", i+2, err)
		}
		if e.Home == "" || e.Path == "" || e.Staged == "" || e.Bytes < 0 || e.Accesses < 0 {
			return nil, fmt.Errorf("stage: manifest line %d: invalid entry", i+2)
		}
		out = append(out, e)
	}
	return out, nil
}

// Manifest snapshots the current cache inventory (ready, non-superseded
// entries only).
func (m *Manager) Manifest() []ManifestEntry {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []ManifestEntry
	for _, e := range m.entries {
		if !e.ready || e.superseded {
			continue
		}
		out = append(out, ManifestEntry{
			Path:     e.path,
			Home:     e.home.Name(),
			Staged:   e.staged,
			Bytes:    e.bytes,
			Dirty:    e.dirty,
			Accesses: int64(m.seen[e.key]),
		})
	}
	return out
}

// SaveManifest persists the cache inventory to ManifestPath on the
// cache backend, so a restarted Manager can re-adopt warm copies.
func (m *Manager) SaveManifest(p *vtime.Proc) error {
	sess, err := m.cacheSession(p)
	if err != nil {
		return err
	}
	return storage.PutFile(p, sess, ManifestPath, storage.ModeOverWrite, EncodeManifest(m.Manifest()))
}

// LoadManifest re-adopts cached copies recorded at ManifestPath.  homes
// maps backend names to live backends; entries whose home is unknown,
// whose cache file is missing or resized, or which would overflow the
// budget are skipped rather than trusted.  Returns the number adopted.
func (m *Manager) LoadManifest(p *vtime.Proc, homes ...storage.Backend) (int, error) {
	sess, err := m.cacheSession(p)
	if err != nil {
		return 0, err
	}
	data, err := storage.GetFile(p, sess, ManifestPath)
	if err != nil {
		return 0, err
	}
	entries, err := DecodeManifest(data)
	if err != nil {
		return 0, err
	}
	byName := make(map[string]storage.Backend, len(homes))
	for _, b := range homes {
		byName[b.Name()] = b
	}
	adopted := 0
	for _, me := range entries {
		home := byName[me.Home]
		if home == nil {
			continue
		}
		info, err := sess.Stat(p, me.Staged)
		if err != nil || info.Size != me.Bytes {
			continue
		}
		key := stageKey(me.Home, me.Path)
		m.mu.Lock()
		if m.closed || m.entries[key] != nil || m.used+me.Bytes > m.cfg.Budget {
			m.mu.Unlock()
			continue
		}
		m.clock++
		m.entries[key] = &entry{
			key: key, path: me.Path, staged: me.Staged,
			home: home, bytes: me.Bytes,
			ready: true, dirty: me.Dirty, lastUse: m.clock,
		}
		m.seen[key] = int(me.Accesses)
		m.used += me.Bytes
		if m.used > m.st.PeakUsed {
			m.st.PeakUsed = m.used
		}
		m.mu.Unlock()
		adopted++
	}
	return adopted, nil
}
