package ptool

import (
	"testing"

	"repro/internal/localdisk"
	"repro/internal/memfs"
	"repro/internal/metadb"
	"repro/internal/model"
	"repro/internal/remotedisk"
	"repro/internal/storage"
	"repro/internal/tape"
	"repro/internal/vtime"
)

func backends(t *testing.T) (storage.Backend, storage.Backend, *tape.Library) {
	t.Helper()
	local, err := localdisk.New("ssa", memfs.New())
	if err != nil {
		t.Fatal(err)
	}
	rdisk, err := remotedisk.New("sdsc-disk", memfs.New())
	if err != nil {
		t.Fatal(err)
	}
	rtape, err := tape.New(tape.Config{Name: "hpss", Params: model.RemoteTape2000(), Store: memfs.New()})
	if err != nil {
		t.Fatal(err)
	}
	return local, rdisk, rtape
}

func TestDefaultSizes(t *testing.T) {
	sizes := DefaultSizes()
	if sizes[0] != 64<<10 || sizes[len(sizes)-1] != 16<<20 {
		t.Fatalf("sizes = %v", sizes)
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] != sizes[i-1]*2 {
			t.Fatalf("not powers of two: %v", sizes)
		}
	}
}

func TestMeasureLocalDisk(t *testing.T) {
	local, _, _ := backends(t)
	meta := metadb.New()
	sim := vtime.NewVirtual()
	rep, err := Measure(sim, local, meta, Config{Sizes: []int64{1 << 20, 2 << 20}, Repeats: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Resource != "localdisk" {
		t.Fatalf("resource = %q", rep.Resource)
	}
	if len(rep.Write) != 2 || len(rep.Read) != 2 {
		t.Fatalf("points = %d/%d", len(rep.Write), len(rep.Read))
	}
	// Calibration: 2 MiB write ≈ 0.118 s.
	w2 := rep.Write[1].Seconds
	if w2 < 0.10 || w2 > 0.14 {
		t.Fatalf("2 MiB write = %v s, want ≈0.118", w2)
	}
	// Constants recorded (Table 1): local disk open ≈ 0.21 write.
	if got := meta.Constant(nil, "localdisk", "write", metadb.CompOpen); got < 0.20 || got > 0.22 {
		t.Fatalf("fileopen/write = %v", got)
	}
	if got := meta.Constant(nil, "localdisk", "write", metadb.CompConn); got != 0 {
		t.Fatalf("local disk conn = %v, want 0", got)
	}
	// Samples queryable.
	if s := meta.Samples(nil, "localdisk", "write"); len(s) != 2 {
		t.Fatalf("samples = %v", s)
	}
}

func TestMeasureAllThreeResources(t *testing.T) {
	local, rdisk, rtape := backends(t)
	meta := metadb.New()
	sim := vtime.NewVirtual()
	reports, err := MeasureAll(sim, meta, Config{Sizes: []int64{1 << 20}, Repeats: 1}, local, rdisk, rtape)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		t.Fatalf("reports = %d", len(reports))
	}
	// The Table 1 ordering must hold in the measured constants.
	openL := meta.Constant(nil, "localdisk", "write", metadb.CompOpen)
	openR := meta.Constant(nil, "remotedisk", "write", metadb.CompOpen)
	openT := meta.Constant(nil, "remotetape", "write", metadb.CompOpen)
	if !(openL < openR && openR < openT) {
		t.Fatalf("open ordering violated: %v %v %v", openL, openR, openT)
	}
	connR := meta.Constant(nil, "remotedisk", "write", metadb.CompConn)
	if connR < 0.4 || connR > 0.5 {
		t.Fatalf("remote disk conn = %v, want ≈0.44", connR)
	}
	// Measured bandwidth ordering (figures 6–8 shape).
	bwL := reports[0].EffectiveBW(model.Write)
	bwR := reports[1].EffectiveBW(model.Write)
	bwT := reports[2].EffectiveBW(model.Write)
	if !(bwL > bwR && bwR > bwT) {
		t.Fatalf("bandwidth ordering violated: %v %v %v", bwL, bwR, bwT)
	}
}

func TestSeekConstantMeasured(t *testing.T) {
	_, rdisk, _ := backends(t)
	meta := metadb.New()
	if _, err := Measure(vtime.NewVirtual(), rdisk, meta, Config{Sizes: []int64{1 << 16}, Repeats: 1}); err != nil {
		t.Fatal(err)
	}
	seek := meta.Constant(nil, "remotedisk", "read", metadb.CompSeek)
	if seek < 0.35 || seek > 0.45 {
		t.Fatalf("measured seek = %v, want ≈0.40 (Table 1)", seek)
	}
}

func TestCurveString(t *testing.T) {
	local, _, _ := backends(t)
	rep, err := Measure(vtime.NewVirtual(), local, metadb.New(), Config{Sizes: []int64{1 << 20}, Repeats: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := rep.CurveString()
	if len(s) == 0 || s[:9] != "localdisk" {
		t.Fatalf("CurveString = %q", s)
	}
}

func TestMeasureDownBackend(t *testing.T) {
	_, _, rtape := backends(t)
	rtape.SetDown(true)
	if _, err := Measure(vtime.NewVirtual(), rtape, metadb.New(), Config{Sizes: []int64{1024}, Repeats: 1}); err == nil {
		t.Fatal("measuring a down backend succeeded")
	}
}

func TestStoreCurve(t *testing.T) {
	meta := metadb.New()
	meta.AddSample(nil, metadb.PerfSample{Resource: "localdisk", Op: "write", Size: 1 << 20, Seconds: 9})
	StoreCurve(meta, "localdisk", "write", []Point{
		{Size: 2 << 20, Seconds: 0.5},
		{Size: 1 << 20, Seconds: 0.25},
		{Size: 0, Seconds: 1},   // dropped: non-positive size
		{Size: 10, Seconds: -1}, // dropped: negative time
	})
	got := meta.Samples(nil, "localdisk", "write")
	if len(got) != 2 || got[0].Size != 1<<20 || got[0].Seconds != 0.25 || got[1].Size != 2<<20 {
		t.Fatalf("stored curve = %+v", got)
	}
}
