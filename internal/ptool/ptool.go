// Package ptool is the paper's PTool: "a tool that can automatically
// generate all these numbers" — it measures read/write times for a
// sweep of data sizes on every storage resource plus the eq. (1)
// constants (connection, open, seek, close), and stores everything in
// the performance database "so the user can easily set up her basic
// performance prediction database in a single run".
//
// Measurements run against the same backends the applications use, on a
// dedicated virtual-time process, so the recorded curves are exactly
// what the run-time system charges (figures 6, 7, 8 and Table 1).
package ptool

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/metadb"
	"repro/internal/model"
	"repro/internal/storage"
	"repro/internal/vtime"
)

// Config controls a measurement sweep.
type Config struct {
	// Sizes are the transfer sizes to measure; DefaultSizes() if empty.
	Sizes []int64
	// Repeats averages each point over this many trials (default 3).
	Repeats int
	// Dir is the scratch path prefix on the resource (default "ptool").
	Dir string
}

// DefaultSizes returns the sweep the paper's figures 6–8 use: 64 KiB
// through 16 MiB in powers of two.
func DefaultSizes() []int64 {
	var sizes []int64
	for s := int64(64 << 10); s <= 16<<20; s <<= 1 {
		sizes = append(sizes, s)
	}
	return sizes
}

// Point is one measured (size, seconds) pair.
type Point struct {
	Size    int64
	Seconds float64
}

// Report is the outcome of one backend's sweep.
type Report struct {
	Resource  string // resource class name used as the database key
	Backend   string // instance name
	Write     []Point
	Read      []Point
	Constants map[string]float64 // component/op → seconds, e.g. "fileopen/read"
}

// Measure sweeps one backend and records samples and constants into the
// meta-data database under the backend's storage class.
func Measure(sim *vtime.Sim, be storage.Backend, meta *metadb.DB, cfg Config) (Report, error) {
	if len(cfg.Sizes) == 0 {
		cfg.Sizes = DefaultSizes()
	}
	if cfg.Repeats <= 0 {
		cfg.Repeats = 3
	}
	if cfg.Dir == "" {
		cfg.Dir = "ptool"
	}
	resource := be.Kind().String()
	rep := Report{Resource: resource, Backend: be.Name(), Constants: make(map[string]float64)}
	p := sim.NewProc("ptool")

	// Connection constants.
	t0 := p.Now()
	sess, err := be.Connect(p)
	if err != nil {
		return rep, fmt.Errorf("ptool %s: %w", be.Name(), err)
	}
	rep.Constants["conn"] = (p.Now() - t0).Seconds()

	// Warm up the device (mount the tape cartridge, etc.) so the size
	// sweep measures steady-state transfer times; the readiness latency
	// is what the conn/open constants and the mount are for.
	warm, err := sess.Open(p, cfg.Dir+"/warmup", storage.ModeCreate)
	if err != nil {
		return rep, fmt.Errorf("ptool %s: warmup: %w", be.Name(), err)
	}
	if _, err := warm.WriteAt(p, make([]byte, 64<<10), 0); err != nil {
		return rep, fmt.Errorf("ptool %s: warmup: %w", be.Name(), err)
	}
	if err := warm.Close(p); err != nil {
		return rep, err
	}

	// Size sweep.
	for _, size := range cfg.Sizes {
		var wSum, rSum float64
		for trial := 0; trial < cfg.Repeats; trial++ {
			path := fmt.Sprintf("%s/s%d-t%d", cfg.Dir, size, trial)
			h, err := sess.Open(p, path, storage.ModeCreate)
			if err != nil {
				return rep, fmt.Errorf("ptool %s: %w", be.Name(), err)
			}
			buf := make([]byte, size)
			t0 = p.Now()
			if _, err := h.WriteAt(p, buf, 0); err != nil {
				return rep, fmt.Errorf("ptool %s: write %d: %w", be.Name(), size, err)
			}
			wSum += (p.Now() - t0).Seconds()
			if err := h.Close(p); err != nil {
				return rep, err
			}
			r, err := sess.Open(p, path, storage.ModeRead)
			if err != nil {
				return rep, fmt.Errorf("ptool %s: %w", be.Name(), err)
			}
			t0 = p.Now()
			if _, err := r.ReadAt(p, buf, 0); err != nil && !errors.Is(err, io.EOF) {
				return rep, fmt.Errorf("ptool %s: read %d: %w", be.Name(), size, err)
			}
			rSum += (p.Now() - t0).Seconds()
			if err := r.Close(p); err != nil {
				return rep, err
			}
			if err := sess.Remove(p, path); err != nil {
				return rep, err
			}
		}
		w := wSum / float64(cfg.Repeats)
		r := rSum / float64(cfg.Repeats)
		rep.Write = append(rep.Write, Point{Size: size, Seconds: w})
		rep.Read = append(rep.Read, Point{Size: size, Seconds: r})
		meta.AddSample(nil, metadb.PerfSample{Resource: resource, Op: "write", Size: size, Seconds: w})
		meta.AddSample(nil, metadb.PerfSample{Resource: resource, Op: "read", Size: size, Seconds: r})
	}

	// Open/close constants per op, measured on a small file.
	smallPath := cfg.Dir + "/const"
	h, err := sess.Open(p, smallPath, storage.ModeCreate)
	if err != nil {
		return rep, err
	}
	if _, err := h.WriteAt(p, make([]byte, 1024), 0); err != nil {
		return rep, err
	}
	t0 = p.Now()
	if err := h.Close(p); err != nil {
		return rep, err
	}
	rep.Constants["fileclose/write"] = (p.Now() - t0).Seconds()

	t0 = p.Now()
	h2, err := sess.Open(p, smallPath+"2", storage.ModeCreate)
	if err != nil {
		return rep, err
	}
	rep.Constants["fileopen/write"] = (p.Now() - t0).Seconds()
	h2.WriteAt(p, []byte{1}, 0)
	h2.Close(p)

	t0 = p.Now()
	r, err := sess.Open(p, smallPath, storage.ModeRead)
	if err != nil {
		return rep, err
	}
	rep.Constants["fileopen/read"] = (p.Now() - t0).Seconds()
	// Seek constant: a discontiguous read minus a sequential one.
	buf := make([]byte, 64)
	if _, err := r.ReadAt(p, buf, 0); err != nil && !errors.Is(err, io.EOF) {
		return rep, err
	}
	t0 = p.Now()
	if _, err := r.ReadAt(p, buf, 64); err != nil && !errors.Is(err, io.EOF) { // sequential
		return rep, err
	}
	seq := p.Now() - t0
	t0 = p.Now()
	if _, err := r.ReadAt(p, buf, 512); err != nil && !errors.Is(err, io.EOF) { // jump
		return rep, err
	}
	jump := p.Now() - t0
	if jump > seq {
		rep.Constants["fileseek/read"] = (jump - seq).Seconds()
	}
	t0 = p.Now()
	if err := r.Close(p); err != nil {
		return rep, err
	}
	rep.Constants["fileclose/read"] = (p.Now() - t0).Seconds()

	t0 = p.Now()
	if err := sess.Close(p); err != nil {
		return rep, err
	}
	rep.Constants["connclose"] = (p.Now() - t0).Seconds()

	// Store the Table 1 constants for both ops.
	store := func(op string) {
		meta.SetConstant(nil, metadb.PerfConstant{Resource: resource, Op: op, Component: metadb.CompConn, Seconds: rep.Constants["conn"]})
		meta.SetConstant(nil, metadb.PerfConstant{Resource: resource, Op: op, Component: metadb.CompConnClose, Seconds: rep.Constants["connclose"]})
		meta.SetConstant(nil, metadb.PerfConstant{Resource: resource, Op: op, Component: metadb.CompOpen, Seconds: rep.Constants["fileopen/"+op]})
		meta.SetConstant(nil, metadb.PerfConstant{Resource: resource, Op: op, Component: metadb.CompClose, Seconds: rep.Constants["fileclose/"+op]})
	}
	store("write")
	store("read")
	if v, ok := rep.Constants["fileseek/read"]; ok {
		meta.SetConstant(nil, metadb.PerfConstant{Resource: resource, Op: "read", Component: metadb.CompSeek, Seconds: v})
	}
	return rep, nil
}

// MeasureAll sweeps several backends into one database.
func MeasureAll(sim *vtime.Sim, meta *metadb.DB, cfg Config, backends ...storage.Backend) ([]Report, error) {
	var reports []Report
	for _, be := range backends {
		rep, err := Measure(sim, be, meta, cfg)
		if err != nil {
			return reports, err
		}
		reports = append(reports, rep)
	}
	return reports, nil
}

// StoreCurve replaces the (resource, op) transfer-time curve in the
// performance database with the given points.  This is the "online
// PTool" entry point: the calibration engine publishes refreshed curves
// through the same schema Measure fills, so predict.DB.Unit cannot tell
// a calibrated curve from a measured one.  Non-positive sizes or
// negative times are dropped; points are not required to be sorted
// (metadb sorts on read).
func StoreCurve(meta *metadb.DB, resource, op string, pts []Point) {
	samples := make([]metadb.PerfSample, 0, len(pts))
	for _, pt := range pts {
		if pt.Size <= 0 || pt.Seconds < 0 {
			continue
		}
		samples = append(samples, metadb.PerfSample{Resource: resource, Op: op, Size: pt.Size, Seconds: pt.Seconds})
	}
	meta.ReplaceSamples(nil, resource, op, samples)
}

// CurveString renders a report's size sweep as the paper's figures 6–8:
// one row per size with read and write seconds.
func (r Report) CurveString() string {
	s := fmt.Sprintf("%s (%s)\n%12s %12s %12s\n", r.Resource, r.Backend, "size(bytes)", "read(s)", "write(s)")
	for i := range r.Write {
		var rd float64
		if i < len(r.Read) {
			rd = r.Read[i].Seconds
		}
		s += fmt.Sprintf("%12d %12.4f %12.4f\n", r.Write[i].Size, rd, r.Write[i].Seconds)
	}
	return s
}

// EffectiveBW returns the measured effective bandwidth (bytes/second)
// at the largest sampled size, a convenient scalar for reports.
func (r Report) EffectiveBW(op model.Op) float64 {
	pts := r.Write
	if op == model.Read {
		pts = r.Read
	}
	if len(pts) == 0 {
		return 0
	}
	last := pts[len(pts)-1]
	if last.Seconds <= 0 {
		return 0
	}
	return float64(last.Size) / last.Seconds
}
