package storetest

import (
	"testing"

	"repro/internal/memfs"
	"repro/internal/osfs"
	"repro/internal/storage"
)

func TestMemFSConformance(t *testing.T) {
	Run(t, func(t *testing.T) storage.Store { return memfs.New() })
}

func TestOSFSConformance(t *testing.T) {
	Run(t, func(t *testing.T) storage.Store {
		fs, err := osfs.New(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		return fs
	})
}
