// Package storetest is a conformance suite for storage.Store
// implementations: every byte store (memfs, osfs, future media) must
// satisfy exactly the same contract, since backends are built
// indiscriminately over either.
package storetest

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/storage"
)

// Factory creates a fresh empty store for one subtest.
type Factory func(t *testing.T) storage.Store

// Run executes the full conformance suite against the factory.
func Run(t *testing.T, newStore Factory) {
	t.Helper()
	tests := []struct {
		name string
		fn   func(*testing.T, storage.Store)
	}{
		{"CreateWriteRead", testCreateWriteRead},
		{"OpenMissing", testOpenMissing},
		{"SparseZeroFill", testSparseZeroFill},
		{"ShortReadAtEOF", testShortReadAtEOF},
		{"TruncateOnOpen", testTruncateOnOpen},
		{"GrowViaTruncate", testGrowViaTruncate},
		{"RemoveAndStat", testRemoveAndStat},
		{"ListPrefixSorted", testListPrefixSorted},
		{"UsedBytes", testUsedBytes},
		{"PathValidation", testPathValidation},
		{"OverwriteInPlace", testOverwriteInPlace},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			tc.fn(t, newStore(t))
		})
	}
}

func mustOpen(t *testing.T, s storage.Store, name string, create, trunc bool) storage.File {
	t.Helper()
	f, err := s.Open(name, create, trunc)
	if err != nil {
		t.Fatalf("Open(%q): %v", name, err)
	}
	return f
}

func testCreateWriteRead(t *testing.T, s storage.Store) {
	f := mustOpen(t, s, "a/b/c", true, false)
	defer f.Close()
	payload := []byte("conformance")
	if n, err := f.WriteAt(payload, 0); n != len(payload) || err != nil {
		t.Fatalf("WriteAt = (%d, %v)", n, err)
	}
	got := make([]byte, len(payload))
	if _, err := f.ReadAt(got, 0); err != nil && !errors.Is(err, io.EOF) {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("read %q", got)
	}
	if f.Size() != int64(len(payload)) {
		t.Fatalf("Size = %d", f.Size())
	}
}

func testOpenMissing(t *testing.T, s storage.Store) {
	if _, err := s.Open("missing", false, false); !errors.Is(err, storage.ErrNotExist) {
		t.Fatalf("err = %v, want ErrNotExist", err)
	}
}

func testSparseZeroFill(t *testing.T, s storage.Store) {
	f := mustOpen(t, s, "sparse", true, false)
	defer f.Close()
	if _, err := f.WriteAt([]byte{0xFF}, 100); err != nil {
		t.Fatal(err)
	}
	if f.Size() != 101 {
		t.Fatalf("Size = %d", f.Size())
	}
	buf := make([]byte, 100)
	if _, err := f.ReadAt(buf, 0); err != nil && !errors.Is(err, io.EOF) {
		t.Fatal(err)
	}
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("gap byte %d = %#x", i, b)
		}
	}
}

func testShortReadAtEOF(t *testing.T, s storage.Store) {
	f := mustOpen(t, s, "short", true, false)
	defer f.Close()
	f.WriteAt([]byte("abc"), 0)
	buf := make([]byte, 10)
	n, err := f.ReadAt(buf, 1)
	if n != 2 || !errors.Is(err, io.EOF) {
		t.Fatalf("short read = (%d, %v), want (2, EOF)", n, err)
	}
}

func testTruncateOnOpen(t *testing.T, s storage.Store) {
	f := mustOpen(t, s, "t", true, false)
	f.WriteAt([]byte("0123456789"), 0)
	f.Close()
	g := mustOpen(t, s, "t", true, true)
	defer g.Close()
	if g.Size() != 0 {
		t.Fatalf("size after trunc = %d", g.Size())
	}
}

func testGrowViaTruncate(t *testing.T, s storage.Store) {
	f := mustOpen(t, s, "g", true, false)
	defer f.Close()
	f.WriteAt([]byte{1, 2, 3}, 0)
	if err := f.Truncate(10); err != nil {
		t.Fatal(err)
	}
	if f.Size() != 10 {
		t.Fatalf("size = %d", f.Size())
	}
	buf := make([]byte, 7)
	if _, err := f.ReadAt(buf, 3); err != nil && !errors.Is(err, io.EOF) {
		t.Fatal(err)
	}
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("grown byte %d = %#x", i, b)
		}
	}
	if err := f.Truncate(2); err != nil {
		t.Fatal(err)
	}
	if f.Size() != 2 {
		t.Fatalf("size after shrink = %d", f.Size())
	}
}

func testRemoveAndStat(t *testing.T, s storage.Store) {
	f := mustOpen(t, s, "r", true, false)
	f.WriteAt([]byte{1}, 0)
	f.Close()
	fi, err := s.Stat("r")
	if err != nil || fi.Size != 1 || fi.Path != "r" {
		t.Fatalf("Stat = %+v, %v", fi, err)
	}
	if err := s.Remove("r"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Stat("r"); !errors.Is(err, storage.ErrNotExist) {
		t.Fatalf("stat removed = %v", err)
	}
	if err := s.Remove("r"); !errors.Is(err, storage.ErrNotExist) {
		t.Fatalf("double remove = %v", err)
	}
}

func testListPrefixSorted(t *testing.T, s storage.Store) {
	for _, name := range []string{"x/2", "x/1", "y/1"} {
		f := mustOpen(t, s, name, true, false)
		f.WriteAt([]byte{1}, 0)
		f.Close()
	}
	ls, err := s.List("x/")
	if err != nil {
		t.Fatal(err)
	}
	if len(ls) != 2 || ls[0].Path != "x/1" || ls[1].Path != "x/2" {
		t.Fatalf("List = %v", ls)
	}
	all, err := s.List("")
	if err != nil || len(all) != 3 {
		t.Fatalf("List all = %v, %v", all, err)
	}
}

func testUsedBytes(t *testing.T, s storage.Store) {
	if s.UsedBytes() != 0 {
		t.Fatalf("fresh store used = %d", s.UsedBytes())
	}
	f := mustOpen(t, s, "u", true, false)
	f.WriteAt(make([]byte, 4096), 0)
	f.Close()
	if got := s.UsedBytes(); got != 4096 {
		t.Fatalf("used = %d", got)
	}
	s.Remove("u")
	if got := s.UsedBytes(); got != 0 {
		t.Fatalf("used after remove = %d", got)
	}
}

func testPathValidation(t *testing.T, s storage.Store) {
	for _, bad := range []string{"", "..", "../x", "a/../../y"} {
		if _, err := s.Open(bad, true, false); !errors.Is(err, storage.ErrBadPath) {
			t.Errorf("Open(%q) = %v, want ErrBadPath", bad, err)
		}
	}
}

func testOverwriteInPlace(t *testing.T, s storage.Store) {
	f := mustOpen(t, s, "o", true, false)
	defer f.Close()
	f.WriteAt([]byte("AAAA"), 0)
	f.WriteAt([]byte("BB"), 1)
	got := make([]byte, 4)
	if _, err := f.ReadAt(got, 0); err != nil && !errors.Is(err, io.EOF) {
		t.Fatal(err)
	}
	if string(got) != "ABBA" {
		t.Fatalf("overwrite = %q", got)
	}
	if f.Size() != 4 {
		t.Fatalf("size = %d", f.Size())
	}
}
