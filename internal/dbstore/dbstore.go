// Package dbstore constructs the local-database storage resource the
// paper names among the media an application can couple with ("these
// storage resources could include local disks, local databases, remote
// disks, remote databases, remote tape systems and so on").  Datasets
// are stored as blobs behind the database's embedded API, which trades
// per-call query overhead and commit costs for transparent management —
// the year-2000 reason to put simulation output in a database.
//
// The backend demonstrates the architecture's extensibility claim: a
// fourth first-class storage class slots in behind the same
// Backend/Session/Handle contract, PTool measures it like any other
// resource, and the predictor and placement layers pick it up with no
// special cases.
package dbstore

import (
	"repro/internal/device"
	"repro/internal/model"
	"repro/internal/storage"
	"repro/internal/trace"
)

// DefaultCapacity is the database's tablespace quota (20 GB).
const DefaultCapacity = 20 * 1000 * 1000 * 1000

// Option adjusts the backend configuration.
type Option func(*device.Config)

// WithCapacity overrides the tablespace quota (<= 0 = unlimited).
func WithCapacity(n int64) Option { return func(c *device.Config) { c.Capacity = n } }

// WithParams overrides the cost model.
func WithParams(p model.Params) Option { return func(c *device.Config) { c.Params = p } }

// WithTrace attaches a native-call trace recorder.
func WithTrace(r *trace.Recorder) Option { return func(c *device.Config) { c.Trace = r } }

// New returns a local-database backend over the given byte store.
func New(name string, store storage.Store, opts ...Option) (*device.Backend, error) {
	cfg := device.Config{
		Name:     name,
		Kind:     storage.KindLocalDB,
		Params:   model.LocalDB2000(),
		Store:    store,
		Channels: 2, // the database stripes its tablespace over two disks
		Capacity: DefaultCapacity,
	}
	for _, o := range opts {
		o(&cfg)
	}
	return device.New(cfg)
}
