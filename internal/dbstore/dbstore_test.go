package dbstore

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/apps/astro3d"
	"repro/internal/core"
	"repro/internal/localdisk"
	"repro/internal/memfs"
	"repro/internal/metadb"
	"repro/internal/model"
	"repro/internal/predict"
	"repro/internal/ptool"
	"repro/internal/remotedisk"
	"repro/internal/storage"
	"repro/internal/tape"
	"repro/internal/vtime"
)

func TestDefaults(t *testing.T) {
	b, err := New("nwu-postgres", memfs.New())
	if err != nil {
		t.Fatal(err)
	}
	if b.Kind() != storage.KindLocalDB {
		t.Fatalf("kind = %v", b.Kind())
	}
	total, _ := b.Capacity()
	if total != DefaultCapacity {
		t.Fatalf("capacity = %d", total)
	}
	if b.Model().Name != "localdb" {
		t.Fatalf("model = %q", b.Model().Name)
	}
}

func TestCostProfileBetweenDiskAndWAN(t *testing.T) {
	// The database sits between the raw local disks and the WAN-served
	// remote disks for bulk transfers.
	db := model.LocalDB2000()
	local := model.LocalDisk2000()
	remote := model.RemoteDisk2000()
	for _, op := range []model.Op{model.Read, model.Write} {
		dbT := db.CallTotal(op, 2*model.MiB)
		if !(local.CallTotal(op, 2*model.MiB) < dbT && dbT < remote.CallTotal(op, 2*model.MiB)) {
			t.Fatalf("%v: localdb cost %v not between local disk and remote disk", op, dbT)
		}
	}
}

// fullSystem wires all four resource classes.
func fullSystem(t *testing.T) (*core.System, *metadb.DB) {
	t.Helper()
	sim := vtime.NewVirtual()
	local, err := localdisk.New("ssa", memfs.New())
	if err != nil {
		t.Fatal(err)
	}
	rdisk, err := remotedisk.New("sdsc-disk", memfs.New())
	if err != nil {
		t.Fatal(err)
	}
	rtape, err := tape.New(tape.Config{Name: "hpss", Params: model.RemoteTape2000(), Store: memfs.New()})
	if err != nil {
		t.Fatal(err)
	}
	db, err := New("nwu-postgres", memfs.New())
	if err != nil {
		t.Fatal(err)
	}
	meta := metadb.New()
	sys, err := core.NewSystem(core.SystemConfig{
		Sim: sim, Meta: meta,
		LocalDisk: local, RemoteDisk: rdisk, RemoteTape: rtape, LocalDB: db,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys, meta
}

func TestLocalDBHintRoutesDatasets(t *testing.T) {
	sys, meta := fullSystem(t)
	rep, err := astro3d.Run(sys, "r1", astro3d.Params{
		Nx: 16, Ny: 16, Nz: 16, MaxIter: 6, AnalysisFreq: 3, Procs: 2,
		Locations:       map[string]core.Location{"temp": core.LocLocalDB},
		DefaultLocation: core.LocDisable,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Dumps != 3 {
		t.Fatalf("dumps = %d", rep.Dumps)
	}
	row, err := meta.GetDataset(nil, "r1", "temp")
	if err != nil || row.Resource != "nwu-postgres" || row.Location != "LOCALDB" {
		t.Fatalf("row = %+v, %v", row, err)
	}
	// Consumer reads back through the same class.
	consumer, _ := sys.Initialize(core.RunConfig{ID: "c", Iterations: 1, Procs: 1})
	d, err := consumer.AttachDataset("r1", "temp")
	if err != nil {
		t.Fatal(err)
	}
	p := sys.Sim().NewProc("p")
	g0, err := d.ReadGlobal(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	g6, err := d.ReadGlobal(p, 6)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(g0, g6) {
		t.Fatal("database-stored dumps identical across timesteps")
	}
}

func TestParseLocalDBHint(t *testing.T) {
	loc, err := core.ParseLocation("LOCALDB")
	if err != nil || loc != core.LocLocalDB {
		t.Fatalf("ParseLocation = %v, %v", loc, err)
	}
	if loc.String() != "LOCALDB" {
		t.Fatalf("String = %q", loc.String())
	}
}

func TestPToolAndPredictorCoverLocalDB(t *testing.T) {
	db, err := New("pg", memfs.New())
	if err != nil {
		t.Fatal(err)
	}
	meta := metadb.New()
	rep, err := ptool.Measure(vtime.NewVirtual(), db, meta, ptool.Config{Sizes: []int64{1 << 20, 2 << 20}, Repeats: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Resource != "localdb" {
		t.Fatalf("resource = %q", rep.Resource)
	}
	pdb := predict.NewDB(meta)
	row, err := pdb.PredictDataset(predict.DatasetReq{
		Name: "temp", AMode: "create", Dims: []int{64, 64, 64}, Etype: 4,
		Pattern: "B**", Location: "localdb", Frequency: 6, Procs: 4,
	}, 12)
	if err != nil {
		t.Fatal(err)
	}
	if row.VirtualTime <= 0 {
		t.Fatal("no prediction for localdb")
	}
	// 1 MiB at ≈4 MiB/s write → ≈0.25 s per MiB; dumps × size sanity.
	perDump := row.VirtualTime / time.Duration(row.Dumps)
	if perDump < 100*time.Millisecond || perDump > 2*time.Second {
		t.Fatalf("per-dump prediction %v implausible for 1 MiB on localdb", perDump)
	}
}

func TestFailoverPrefersDBOverLocalDisk(t *testing.T) {
	sys, _ := fullSystem(t)
	// Tape and remote disk down: AUTO falls to the database before the
	// scarce local disks.
	for _, kind := range []storage.Kind{storage.KindRemoteTape, storage.KindRemoteDisk} {
		be, _ := sys.Backend(kind)
		be.(storage.Outage).SetDown(true)
	}
	run, _ := sys.Initialize(core.RunConfig{ID: "r", Iterations: 6, Procs: 2})
	d, err := run.OpenDataset(core.DatasetSpec{
		Name: "x", AMode: storage.ModeCreate, Dims: []int{8, 8, 8}, Etype: 4,
		Location: core.LocAuto, Frequency: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.Backend().Kind() != storage.KindLocalDB {
		t.Fatalf("failover placed on %v, want localdb", d.Backend().Kind())
	}
}
