package localdisk

import (
	"testing"
	"time"

	"repro/internal/memfs"
	"repro/internal/model"
	"repro/internal/osfs"
	"repro/internal/storage"
	"repro/internal/vtime"
)

func TestDefaults(t *testing.T) {
	b, err := New("ssa", memfs.New())
	if err != nil {
		t.Fatal(err)
	}
	if b.Kind() != storage.KindLocalDisk || b.Name() != "ssa" {
		t.Fatalf("kind/name = %v/%v", b.Kind(), b.Name())
	}
	total, _ := b.Capacity()
	if total != SSACapacity {
		t.Fatalf("capacity = %d, want %d", total, SSACapacity)
	}
	if b.Model().Name != "localdisk" {
		t.Fatalf("model = %q", b.Model().Name)
	}
}

func TestOptions(t *testing.T) {
	p := model.Memory()
	b, err := New("x", memfs.New(), WithCapacity(123), WithChannels(2), WithParams(p))
	if err != nil {
		t.Fatal(err)
	}
	total, _ := b.Capacity()
	if total != 123 {
		t.Fatalf("capacity = %d", total)
	}
	if b.Model().Name != "memory" {
		t.Fatalf("params not applied: %q", b.Model().Name)
	}
}

// The worked-example calibration end to end: a 2 MiB collective dump to
// local disk costs ≈0.12 s of transfer time.
func TestTwoMiBDump(t *testing.T) {
	b, err := New("ssa", memfs.New())
	if err != nil {
		t.Fatal(err)
	}
	p := vtime.NewVirtual().NewProc("p")
	s, _ := b.Connect(p)
	h, _ := s.Open(p, "vr_temp/iter0000", storage.ModeCreate)
	before := p.Now()
	if _, err := h.WriteAt(p, make([]byte, 2*model.MiB), 0); err != nil {
		t.Fatal(err)
	}
	d := p.Now() - before
	if d < 100*time.Millisecond || d > 140*time.Millisecond {
		t.Fatalf("2 MiB dump = %v, want ≈0.12 s", d)
	}
}

func TestOverOSFS(t *testing.T) {
	fs, err := osfs.New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	b, err := New("ssa", fs)
	if err != nil {
		t.Fatal(err)
	}
	p := vtime.NewVirtual().NewProc("p")
	s, _ := b.Connect(p)
	h, _ := s.Open(p, "real/file", storage.ModeCreate)
	if _, err := h.WriteAt(p, []byte("on real disk"), 0); err != nil {
		t.Fatal(err)
	}
	h.Close(p)
	r, _ := s.Open(p, "real/file", storage.ModeRead)
	buf := make([]byte, 12)
	if _, err := r.ReadAt(p, buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "on real disk" {
		t.Fatalf("read %q", buf)
	}
}
