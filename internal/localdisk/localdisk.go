// Package localdisk constructs the local-disk storage resource of the
// paper's experimental environment: the SP2 node's I/O subsystem with
// four 9 GB SSA disks, accessed through the UNIX filesystem with the
// D-OL run-time library's cost profile.
package localdisk

import (
	"repro/internal/device"
	"repro/internal/model"
	"repro/internal/storage"
	"repro/internal/trace"
)

// SSADisks is the number of disks in the SP2 node's I/O subsystem.
const SSADisks = 4

// SSACapacity is the aggregate local capacity: four 9 GB disks.
const SSACapacity = 4 * 9 * 1000 * 1000 * 1000

// Option adjusts the backend configuration.
type Option func(*device.Config)

// WithCapacity overrides the capacity limit in bytes (<= 0 = unlimited).
func WithCapacity(n int64) Option { return func(c *device.Config) { c.Capacity = n } }

// WithChannels overrides the number of parallel disk channels.
func WithChannels(n int) Option { return func(c *device.Config) { c.Channels = n } }

// WithTrace attaches a native-call trace recorder.
func WithTrace(r *trace.Recorder) Option { return func(c *device.Config) { c.Trace = r } }

// WithParams overrides the cost model.
func WithParams(p model.Params) Option { return func(c *device.Config) { c.Params = p } }

// New returns a local-disk backend over the given byte store (osfs for a
// real directory, memfs for hermetic benchmarks).
func New(name string, store storage.Store, opts ...Option) (*device.Backend, error) {
	cfg := device.Config{
		Name:     name,
		Kind:     storage.KindLocalDisk,
		Params:   model.LocalDisk2000(),
		Store:    store,
		Channels: SSADisks,
		Capacity: SSACapacity,
	}
	for _, o := range opts {
		o(&cfg)
	}
	return device.New(cfg)
}
