// Package tape emulates the remote tape resource of the paper's
// environment (HPSS at SDSC, reached through SRB): a robotic tape
// library with a fixed set of drives, removable cartridges, a mount
// robot, and sequential media.
//
// The emulation reproduces the physics the paper's argument rests on:
//
//   - a cartridge must be mounted before data moves, and "a tape system
//     such as HPSS requires a minimum of 20 to 40 seconds to be ready";
//   - the medium is sequential: reads wind the head from its current
//     position to the segment, charged per byte of distance;
//   - transfer bandwidth is far below disk;
//   - drives are scarce shared devices, so concurrent readers queue.
//
// Bytes are stored verbatim in a storage.Store keyed by path, so data
// round-trips exactly; cartridge geometry only drives the timing model.
// Files are laid out as append-only segments: a file's segment is
// allocated on the cartridge when the written file is closed (HPSS-like
// staging), and over_write allocates a fresh segment, leaving the old
// one as dead space (tape cannot rewrite in place).
package tape

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/model"
	"repro/internal/storage"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// Config describes a tape library.
type Config struct {
	// Name is the backend instance name, e.g. "sdsc-hpss".
	Name string
	// Params is the eq. (1) cost model; MountLatency and WindPerByte
	// drive the tape-specific terms.
	Params model.Params
	// Store holds file bytes.
	Store storage.Store
	// Drives is the number of tape drives (default 2).
	Drives int
	// CartridgeCapacity is bytes per cartridge (default 10 GB).
	CartridgeCapacity int64
	// UnmountLatency is the robot cost to put a cartridge back on the
	// shelf before mounting another (default 15 s).
	UnmountLatency time.Duration
	// Trace, when non-nil, records every native call served.
	Trace *trace.Recorder
}

// Library is a tape backend.  It implements storage.Backend and
// storage.Outage.
type Library struct {
	cfg   Config
	robot *vtime.Resource

	mu       sync.Mutex
	drives   []*drive
	carts    []*cartridge
	catalog  map[string]*segment
	current  *cartridge // cartridge receiving newly closed files
	wasted   int64      // dead bytes from over_write
	mounts   int64
	nextCart int   // next cartridge id; never reused, even across Reclaim
	gen      int64 // layout generation, bumped by Reclaim
	down     atomic.Bool
}

type drive struct {
	id      int
	res     *vtime.Resource
	mounted *cartridge
	headPos int64
	lastUse time.Duration // most recent completion, for LRU eviction
}

type cartridge struct {
	id     int
	used   int64
	drive  *drive // nil when shelved
	sealed bool
}

type segment struct {
	cart   *cartridge
	offset int64
	length int64
}

var (
	_ storage.Backend = (*Library)(nil)
	_ storage.Outage  = (*Library)(nil)
)

// New returns a tape library.
func New(cfg Config) (*Library, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("tape %q: nil store", cfg.Name)
	}
	if cfg.Drives <= 0 {
		cfg.Drives = 2
	}
	if cfg.CartridgeCapacity <= 0 {
		cfg.CartridgeCapacity = 10 * 1000 * 1000 * 1000
	}
	if cfg.UnmountLatency <= 0 {
		cfg.UnmountLatency = 15 * time.Second
	}
	lib := &Library{
		cfg:     cfg,
		robot:   vtime.NewResource(cfg.Name + "/robot"),
		catalog: make(map[string]*segment),
	}
	for i := 0; i < cfg.Drives; i++ {
		lib.drives = append(lib.drives, &drive{id: i, res: vtime.NewResource(fmt.Sprintf("%s/drive%d", cfg.Name, i))})
	}
	lib.current = lib.newCartridgeLocked()
	return lib, nil
}

// Name implements storage.Backend.
func (l *Library) Name() string { return l.cfg.Name }

// Kind implements storage.Backend.
func (l *Library) Kind() storage.Kind { return storage.KindRemoteTape }

// Model returns the library's cost model.
func (l *Library) Model() model.Params { return l.cfg.Params }

// Capacity implements storage.Backend.  The paper assumes tapes "can
// hold any size of data", so total is unlimited.
func (l *Library) Capacity() (total, used int64) {
	return 0, l.cfg.Store.UsedBytes()
}

// SetDown implements storage.Outage.
func (l *Library) SetDown(down bool) { l.down.Store(down) }

// Down implements storage.Outage.
func (l *Library) Down() bool { return l.down.Load() }

// Stats reports operational counters: robot mounts performed, cartridges
// in the library, and dead bytes left behind by over_write.
func (l *Library) Stats() (mounts int64, cartridges int, wasted int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.mounts, len(l.carts), l.wasted
}

// segmentsDisjoint verifies the catalog invariant: live segments on a
// cartridge never overlap and never extend past the cartridge's used
// extent.  Exposed for the property tests and the tape fsck path.
func (l *Library) segmentsDisjoint() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	type span struct{ lo, hi int64 }
	byCart := make(map[*cartridge][]span)
	for _, seg := range l.catalog {
		if seg.offset < 0 || seg.offset+seg.length > seg.cart.used {
			return false
		}
		byCart[seg.cart] = append(byCart[seg.cart], span{seg.offset, seg.offset + seg.length})
	}
	for _, spans := range byCart {
		sort.Slice(spans, func(i, j int) bool { return spans[i].lo < spans[j].lo })
		for i := 1; i < len(spans); i++ {
			if spans[i].lo < spans[i-1].hi {
				return false
			}
		}
	}
	return true
}

// ResetClocks returns the robot and drives to idle (benchmark reuse).
func (l *Library) ResetClocks() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.robot.Reset()
	for _, d := range l.drives {
		d.res.Reset()
		d.lastUse = 0
	}
}

func (l *Library) newCartridgeLocked() *cartridge {
	// Ids come from a monotonic counter, not len(l.carts): Reclaim
	// retires the whole shelf, and a reused id would alias a retired
	// cartridge in anything that keys on ids across the compaction
	// (the qos scheduler's batch lane does).
	c := &cartridge{id: l.nextCart}
	l.nextCart++
	l.carts = append(l.carts, c)
	return c
}

// Placement locates one file on the shelf: the cartridge id holding its
// live segment and the segment's offset on that cartridge.  OK is false
// when the path is not in the catalog (not yet sealed, or removed).
type Placement struct {
	Cart int64
	Off  int64
	OK   bool
}

// LocateAll maps paths to their current placements in one atomic
// catalog snapshot, and returns the layout generation the snapshot
// belongs to.  The qos scheduler's tape batch lane groups queued reads
// by Cart and orders them by Off; the generation lets it detect that a
// Reclaim moved the data after the batch was formed.
func (l *Library) LocateAll(paths []string) ([]Placement, int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Placement, len(paths))
	for i, p := range paths {
		cp, err := storage.CleanPath(p)
		if err != nil {
			continue
		}
		if seg, ok := l.catalog[cp]; ok {
			out[i] = Placement{Cart: int64(seg.cart.id), Off: seg.offset, OK: true}
		}
	}
	return out, l.gen
}

// Generation returns the current layout generation.  It changes (at
// least twice) across every Reclaim: once when the compaction starts
// rewriting the shelf and once when it finishes, so a batch formed at
// generation g is stale if Generation() != g.
func (l *Library) Generation() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.gen
}

// record emits one trace event covering [start, now] on p's clock.
func (l *Library) record(p *vtime.Proc, op trace.Op, path string, bytes int64, start time.Duration) {
	l.cfg.Trace.Record(trace.Event{
		At: p.Now(), Proc: p.Name(), Backend: l.cfg.Name,
		Op: op, Path: path, Bytes: bytes, Cost: p.Now() - start,
	})
}

// mountLocked ensures c is on a drive, charging robot and drive time to
// p.  Caller holds l.mu.
func (l *Library) mountLocked(p *vtime.Proc, c *cartridge) *drive {
	if c.drive != nil {
		return c.drive
	}
	mountStart := p.Now()
	// Pick a free drive, else evict the least recently used.
	var target *drive
	for _, d := range l.drives {
		if d.mounted == nil {
			target = d
			break
		}
	}
	if target == nil {
		target = l.drives[0]
		for _, d := range l.drives[1:] {
			if d.lastUse < target.lastUse {
				target = d
			}
		}
		target.mounted.drive = nil
		target.mounted = nil
		l.robot.Acquire(p, l.cfg.UnmountLatency)
	}
	l.robot.Acquire(p, l.cfg.Params.MountLatency)
	target.res.Acquire(p, 0) // serialize with in-flight transfers on the drive
	target.mounted = c
	target.headPos = 0
	c.drive = target
	l.mounts++
	target.lastUse = p.Now()
	l.record(p, trace.OpMount, fmt.Sprintf("cartridge%d", c.id), 0, mountStart)
	return target
}

// Connect implements storage.Backend.
func (l *Library) Connect(p *vtime.Proc) (storage.Session, error) {
	if l.Down() {
		return nil, fmt.Errorf("tape %q connect: %w", l.cfg.Name, storage.ErrDown)
	}
	p.Advance(l.cfg.Params.Conn)
	return &session{l: l}, nil
}

type session struct {
	l      *Library
	closed atomic.Bool
}

func (s *session) guard(op string) error {
	if s.closed.Load() {
		return fmt.Errorf("tape %q %s: %w", s.l.cfg.Name, op, storage.ErrClosed)
	}
	if s.l.Down() {
		return fmt.Errorf("tape %q %s: %w", s.l.cfg.Name, op, storage.ErrDown)
	}
	return nil
}

// Open implements storage.Session.
func (s *session) Open(p *vtime.Proc, name string, mode storage.AMode) (storage.Handle, error) {
	if err := s.guard("open"); err != nil {
		return nil, err
	}
	name, err := storage.CleanPath(name)
	if err != nil {
		return nil, err
	}
	op := model.Read
	if mode.Writable() {
		op = model.Write
	}
	s.l.mu.Lock()
	seg, exists := s.l.catalog[name]
	s.l.mu.Unlock()
	if mode == storage.ModeCreate && exists {
		return nil, fmt.Errorf("tape %q create %q: %w", s.l.cfg.Name, name, storage.ErrExist)
	}
	if mode == storage.ModeRead && !exists {
		return nil, fmt.Errorf("tape %q open %q: %w", s.l.cfg.Name, name, storage.ErrNotExist)
	}
	f, err := s.l.cfg.Store.Open(name, mode.Writable(), mode == storage.ModeOverWrite)
	if err != nil {
		return nil, err
	}
	start := p.Now()
	p.Advance(s.l.cfg.Params.Open(op))
	s.l.record(p, trace.OpOpen, name, 0, start)
	return &handle{s: s, f: f, path: name, mode: mode, seg: seg}, nil
}

// Remove implements storage.Session: the catalog entry disappears but
// the tape space remains dead until reclaimed.
func (s *session) Remove(p *vtime.Proc, name string) error {
	if err := s.guard("remove"); err != nil {
		return err
	}
	name, err := storage.CleanPath(name)
	if err != nil {
		return err
	}
	p.Advance(s.l.cfg.Params.PerCall(model.Write))
	s.l.mu.Lock()
	if seg, ok := s.l.catalog[name]; ok {
		s.l.wasted += seg.length
		delete(s.l.catalog, name)
	}
	s.l.mu.Unlock()
	return s.l.cfg.Store.Remove(name)
}

// Stat implements storage.Session.
func (s *session) Stat(p *vtime.Proc, name string) (storage.FileInfo, error) {
	if err := s.guard("stat"); err != nil {
		return storage.FileInfo{}, err
	}
	p.Advance(s.l.cfg.Params.PerCall(model.Read))
	return s.l.cfg.Store.Stat(name)
}

// List implements storage.Session.
func (s *session) List(p *vtime.Proc, prefix string) ([]storage.FileInfo, error) {
	if err := s.guard("list"); err != nil {
		return nil, err
	}
	p.Advance(s.l.cfg.Params.PerCall(model.Read))
	return s.l.cfg.Store.List(prefix)
}

// Close implements storage.Session.
func (s *session) Close(p *vtime.Proc) error {
	if s.closed.Swap(true) {
		return fmt.Errorf("tape %q session close: %w", s.l.cfg.Name, storage.ErrClosed)
	}
	p.Advance(s.l.cfg.Params.ConnClose)
	return nil
}

type handle struct {
	s    *session
	f    storage.File
	path string
	mode storage.AMode
	seg  *segment // nil until a written file is closed

	mu     sync.Mutex
	closed bool
}

var _ storage.Handle = (*handle)(nil)

func (h *handle) Path() string { return h.path }
func (h *handle) Size() int64  { return h.f.Size() }

func (h *handle) guard(op string) error {
	h.mu.Lock()
	closed := h.closed
	h.mu.Unlock()
	if closed {
		return fmt.Errorf("tape %q %s %q: %w", h.s.l.cfg.Name, op, h.path, storage.ErrClosed)
	}
	return h.s.guard(op)
}

// ReadAt implements storage.Handle: mount (if needed), wind, transfer.
func (h *handle) ReadAt(p *vtime.Proc, b []byte, off int64) (int, error) {
	if err := h.guard("read"); err != nil {
		return 0, err
	}
	start := p.Now()
	n, err := h.f.ReadAt(b, off)
	if n > 0 || err == nil {
		h.chargeRead(p, off, int64(n))
	}
	h.s.l.record(p, trace.OpRead, h.path, int64(n), start)
	return n, err
}

func (h *handle) chargeRead(p *vtime.Proc, off, n int64) {
	l := h.s.l
	l.mu.Lock()
	seg := h.seg
	if seg == nil {
		// Reading a file that was never sealed onto a cartridge (written
		// and read within one open): data is still in the disk cache of
		// the emulated archive; charge transfer only, on no drive.
		l.mu.Unlock()
		p.Advance(l.cfg.Params.Xfer(model.Read, n))
		return
	}
	d := l.mountLocked(p, seg.cart)
	target := seg.offset + off
	dist := target - d.headPos
	if dist < 0 {
		dist = -dist
	}
	wind := time.Duration(dist) * l.cfg.Params.WindPerByte
	d.headPos = target + n
	l.mu.Unlock()
	d.res.Acquire(p, wind+l.cfg.Params.Xfer(model.Read, n))
	l.mu.Lock()
	if d.lastUse < p.Now() {
		d.lastUse = p.Now()
	}
	l.mu.Unlock()
}

// WriteAt implements storage.Handle: appends stream to the staging
// cartridge's drive at tape bandwidth.
func (h *handle) WriteAt(p *vtime.Proc, b []byte, off int64) (int, error) {
	if err := h.guard("write"); err != nil {
		return 0, err
	}
	if !h.mode.Writable() {
		return 0, fmt.Errorf("tape %q write %q: %w", h.s.l.cfg.Name, h.path, storage.ErrReadOnly)
	}
	start := p.Now()
	n, err := h.f.WriteAt(b, off)
	l := h.s.l
	l.mu.Lock()
	d := l.mountLocked(p, l.current)
	l.mu.Unlock()
	d.res.Acquire(p, l.cfg.Params.Xfer(model.Write, int64(n)))
	l.mu.Lock()
	if d.lastUse < p.Now() {
		d.lastUse = p.Now()
	}
	l.mu.Unlock()
	l.record(p, trace.OpWrite, h.path, int64(n), start)
	return n, err
}

// Close implements storage.Handle.  Closing a written file seals it onto
// the staging cartridge: the segment is allocated at the cartridge tail
// (rolling to a fresh cartridge when full), and an over_write of an
// existing file abandons its old segment as dead space.
func (h *handle) Close(p *vtime.Proc) error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return fmt.Errorf("tape %q close %q: %w", h.s.l.cfg.Name, h.path, storage.ErrClosed)
	}
	h.closed = true
	h.mu.Unlock()

	op := model.Read
	if h.mode.Writable() {
		op = model.Write
		l := h.s.l
		length := h.f.Size()
		l.mu.Lock()
		if old, ok := l.catalog[h.path]; ok {
			l.wasted += old.length
		}
		if l.current.used+length > l.cfg.CartridgeCapacity && l.current.used > 0 {
			l.current.sealed = true
			l.current = l.newCartridgeLocked()
		}
		seg := &segment{cart: l.current, offset: l.current.used, length: length}
		l.current.used += length
		l.catalog[h.path] = seg
		l.mu.Unlock()
	}
	start := p.Now()
	p.Advance(h.s.l.cfg.Params.Close(op))
	h.s.l.record(p, trace.OpClose, h.path, 0, start)
	return h.f.Close()
}
