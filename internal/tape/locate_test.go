package tape

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/storage"
	"repro/internal/vtime"
)

// TestLocateAllSnapshot: LocateAll returns a consistent (placement,
// generation) snapshot — known paths with cartridge/offset, unknown
// paths with OK=false — and the generation matches Generation().
func TestLocateAllSnapshot(t *testing.T) {
	l := newLib(t, func(c *Config) { c.CartridgeCapacity = 1 << 10 })
	p := vtime.NewVirtual().NewProc("p")
	paths := make([]string, 6)
	for i := range paths {
		paths[i] = fmt.Sprintf("a/f%d", i)
		writeFile(t, l, p, paths[i], make([]byte, 512))
	}
	pl, gen := l.LocateAll(append(paths, "a/nope", "bad//path"))
	if gen != l.Generation() {
		t.Errorf("snapshot gen %d != Generation() %d", gen, l.Generation())
	}
	carts := map[int64]bool{}
	for i := range paths {
		if !pl[i].OK {
			t.Fatalf("%s not located", paths[i])
		}
		carts[pl[i].Cart] = true
	}
	// 512-byte files on 1 KiB cartridges: two per cartridge, offsets 0
	// and 512.
	if len(carts) != 3 {
		t.Errorf("placements span %d cartridges, want 3", len(carts))
	}
	for i := range paths {
		if want := int64(i%2) * 512; pl[i].Off != want {
			t.Errorf("%s at offset %d, want %d", paths[i], pl[i].Off, want)
		}
	}
	for _, bad := range pl[len(paths):] {
		if bad.OK {
			t.Errorf("unknown path located: %+v", bad)
		}
	}
}

// TestReclaimNeverReusesCartridgeIDs pins the invariant the scheduler's
// batch lane depends on: cartridge ids are monotonic across Reclaim, so
// a stale batch's cartridge id can never alias a fresh cartridge, and
// each Reclaim moves the layout generation at least twice (once when
// data starts moving, once when the pass ends).
func TestReclaimNeverReusesCartridgeIDs(t *testing.T) {
	l := newLib(t, func(c *Config) { c.CartridgeCapacity = 1 << 10 })
	p := vtime.NewVirtual().NewProc("p")
	var paths []string
	for i := 0; i < 8; i++ {
		paths = append(paths, fmt.Sprintf("a/f%d", i))
		writeFile(t, l, p, paths[i], make([]byte, 512))
	}
	// Create waste so Reclaim has work.
	s, err := l.Connect(p)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close(p)
	if err := s.Remove(p, paths[0]); err != nil {
		t.Fatal(err)
	}
	live := paths[1:]

	before, gen0 := l.LocateAll(live)
	maxBefore := int64(-1)
	for _, pl := range before {
		if pl.Cart > maxBefore {
			maxBefore = pl.Cart
		}
	}
	if n, err := l.Reclaim(p); err != nil || n != 512 {
		t.Fatalf("Reclaim = (%d, %v), want 512 recovered", n, err)
	}
	after, gen1 := l.LocateAll(live)
	for i, pl := range after {
		if !pl.OK {
			t.Fatalf("%s lost by reclaim", live[i])
		}
		if pl.Cart <= maxBefore {
			t.Errorf("%s on cartridge %d, which aliases a retired id (max before %d)",
				live[i], pl.Cart, maxBefore)
		}
	}
	if gen1 < gen0+2 {
		t.Errorf("generation moved %d -> %d, want at least +2 per reclaim", gen0, gen1)
	}
	// A no-op reclaim (no waste) must not move the generation: batches
	// formed against the current layout stay valid.
	if _, err := l.Reclaim(p); err != nil {
		t.Fatal(err)
	}
	if g := l.Generation(); g != gen1 {
		t.Errorf("no-op reclaim moved generation %d -> %d", gen1, g)
	}
}

// TestLocateAllVsReclaimRace runs LocateAll and readers against
// concurrent reclaims (run under -race).  Every snapshot must be
// internally consistent: all live paths located, none on a negative
// offset, and generations never decreasing.
func TestLocateAllVsReclaimRace(t *testing.T) {
	l := newLib(t, func(c *Config) { c.CartridgeCapacity = 1 << 10 })
	sim := vtime.NewVirtual()
	wp := sim.NewProc("w")
	var paths []string
	for i := 0; i < 8; i++ {
		paths = append(paths, fmt.Sprintf("a/f%d", i))
		writeFile(t, l, wp, paths[i], make([]byte, 512))
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			p := sim.NewProc(fmt.Sprintf("loc%d", g))
			sess, err := l.Connect(p)
			if err != nil {
				t.Error(err)
				return
			}
			defer sess.Close(p)
			var lastGen int64
			for j := 0; ; j++ {
				select {
				case <-stop:
					return
				default:
				}
				pl, gen := l.LocateAll(paths)
				if gen < lastGen {
					t.Errorf("generation went backwards: %d -> %d", lastGen, gen)
					return
				}
				lastGen = gen
				for i, x := range pl {
					if !x.OK || x.Off < 0 {
						t.Errorf("inconsistent snapshot for %s: %+v", paths[i], x)
						return
					}
				}
				// Read one file through the normal path too.
				h, err := sess.Open(p, paths[j%len(paths)], storage.ModeRead)
				if err != nil {
					t.Error(err)
					return
				}
				buf := make([]byte, 512)
				if _, err := h.ReadAt(p, buf, 0); err != nil {
					t.Error(err)
					return
				}
				if err := h.Close(p); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}

	rp := sim.NewProc("reclaimer")
	rsess, err := l.Connect(rp)
	if err != nil {
		t.Fatal(err)
	}
	defer rsess.Close(rp)
	for k := 0; k < 20; k++ {
		junk := fmt.Sprintf("junk/j%d", k)
		h, err := rsess.Open(rp, junk, storage.ModeCreate)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h.WriteAt(rp, make([]byte, 256), 0); err != nil {
			t.Fatal(err)
		}
		if err := h.Close(rp); err != nil {
			t.Fatal(err)
		}
		if err := rsess.Remove(rp, junk); err != nil {
			t.Fatal(err)
		}
		if _, err := l.Reclaim(rp); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	if !l.segmentsDisjoint() {
		t.Error("segments overlap after concurrent reclaims")
	}
}
