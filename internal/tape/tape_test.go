package tape

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/memfs"
	"repro/internal/model"
	"repro/internal/storage"
	"repro/internal/vtime"
)

func newLib(t *testing.T, mut ...func(*Config)) *Library {
	t.Helper()
	cfg := Config{Name: "hpss", Params: model.RemoteTape2000(), Store: memfs.New()}
	for _, m := range mut {
		m(&cfg)
	}
	l, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func writeFile(t *testing.T, l *Library, p *vtime.Proc, name string, data []byte) {
	t.Helper()
	s, err := l.Connect(p)
	if err != nil {
		t.Fatal(err)
	}
	h, err := s.Open(p, name, storage.ModeCreate)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.WriteAt(p, data, 0); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(p); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(p); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTrip(t *testing.T) {
	l := newLib(t)
	p := vtime.NewVirtual().NewProc("p")
	payload := bytes.Repeat([]byte("tape!"), 100)
	writeFile(t, l, p, "run/temp/iter0000", payload)

	s, _ := l.Connect(p)
	h, err := s.Open(p, "run/temp/iter0000", storage.ModeRead)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	if _, err := h.ReadAt(p, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload mismatch after tape round trip")
	}
}

func TestOpenCostsAndMountOnFirstAccess(t *testing.T) {
	l := newLib(t)
	params := model.RemoteTape2000()
	p := vtime.NewVirtual().NewProc("p")
	s, _ := l.Connect(p)
	if got, want := p.Now(), params.Conn; got != want {
		t.Fatalf("conn = %v, want %v", got, want)
	}
	h, _ := s.Open(p, "f", storage.ModeCreate)
	if got, want := p.Now(), params.Conn+params.OpenWrite; got != want {
		t.Fatalf("after open = %v, want %v", got, want)
	}
	before := p.Now()
	h.WriteAt(p, make([]byte, model.MiB), 0)
	// First write mounts the staging cartridge: mount latency + transfer.
	want := params.MountLatency + params.Xfer(model.Write, model.MiB)
	if got := p.Now() - before; got != want {
		t.Fatalf("first write = %v, want %v (mount + xfer)", got, want)
	}
	before = p.Now()
	h.WriteAt(p, make([]byte, model.MiB), model.MiB)
	// Second write: staging cartridge already mounted.
	if got := p.Now() - before; got != params.Xfer(model.Write, model.MiB) {
		t.Fatalf("warm write = %v, want %v", got, params.Xfer(model.Write, model.MiB))
	}
	mounts, carts, _ := l.Stats()
	if mounts != 1 || carts != 1 {
		t.Fatalf("stats = (%d mounts, %d carts)", mounts, carts)
	}
}

func TestReadWindsTape(t *testing.T) {
	l := newLib(t)
	params := model.RemoteTape2000()
	p := vtime.NewVirtual().NewProc("p")
	// Two files sealed back to back on the same cartridge.
	writeFile(t, l, p, "a", make([]byte, 4*model.MiB))
	writeFile(t, l, p, "b", make([]byte, model.MiB))

	s, _ := l.Connect(p)
	// Reading b requires winding from head position to b's segment.
	h, _ := s.Open(p, "b", storage.ModeRead)
	before := p.Now()
	buf := make([]byte, model.MiB)
	if _, err := h.ReadAt(p, buf, 0); err != nil {
		t.Fatal(err)
	}
	got := p.Now() - before
	xfer := params.Xfer(model.Read, model.MiB)
	if got <= xfer {
		t.Fatalf("read of later segment = %v, want > bare transfer %v (winding expected)", got, xfer)
	}
	// Sequential continuation reads do not wind.
	h2, _ := s.Open(p, "a", storage.ModeRead)
	h2.ReadAt(p, buf, 0) // winds back to segment a
	before = p.Now()
	h2.ReadAt(p, buf, model.MiB) // continues from head position
	if got := p.Now() - before; got != xfer {
		t.Fatalf("sequential read = %v, want bare transfer %v", got, xfer)
	}
}

func TestCartridgeRollAndDriveEviction(t *testing.T) {
	l := newLib(t, func(c *Config) {
		c.CartridgeCapacity = 3 * model.MiB
		c.Drives = 1
	})
	p := vtime.NewVirtual().NewProc("p")
	writeFile(t, l, p, "a", make([]byte, 2*model.MiB)) // cart 0
	writeFile(t, l, p, "b", make([]byte, 2*model.MiB)) // rolls to cart 1
	_, carts, _ := l.Stats()
	if carts != 2 {
		t.Fatalf("cartridges = %d, want 2 after roll", carts)
	}
	s, _ := l.Connect(p)
	// b's segment lives on cart 1, which has never been mounted (writes
	// stream through the staging cartridge's drive): reading it with one
	// drive must evict cart 0 and mount cart 1.
	mountsBefore, _, _ := l.Stats()
	h, _ := s.Open(p, "b", storage.ModeRead)
	buf := make([]byte, model.MiB)
	if _, err := h.ReadAt(p, buf, 0); err != nil {
		t.Fatal(err)
	}
	mountsAfter, _, _ := l.Stats()
	if mountsAfter != mountsBefore+1 {
		t.Fatalf("mounts %d -> %d, want exactly one more (eviction+mount)", mountsBefore, mountsAfter)
	}
	// Reading a (cart 0) must swap back.
	h2, _ := s.Open(p, "a", storage.ModeRead)
	if _, err := h2.ReadAt(p, buf, 0); err != nil {
		t.Fatal(err)
	}
	m3, _, _ := l.Stats()
	if m3 != mountsAfter+1 {
		t.Fatalf("no remount on cartridge swap: %d -> %d", mountsAfter, m3)
	}
}

func TestOverWriteWastesOldSegment(t *testing.T) {
	l := newLib(t)
	p := vtime.NewVirtual().NewProc("p")
	writeFile(t, l, p, "restart", make([]byte, model.MiB))
	s, _ := l.Connect(p)
	h, err := s.Open(p, "restart", storage.ModeOverWrite)
	if err != nil {
		t.Fatal(err)
	}
	h.WriteAt(p, make([]byte, 2*model.MiB), 0)
	h.Close(p)
	_, _, wasted := l.Stats()
	if wasted != model.MiB {
		t.Fatalf("wasted = %d, want %d (old segment dead)", wasted, model.MiB)
	}
	// Data must still round-trip from the new segment.
	h2, _ := s.Open(p, "restart", storage.ModeRead)
	if h2.Size() != 2*model.MiB {
		t.Fatalf("size = %d", h2.Size())
	}
}

func TestCreateExistingAndReadMissing(t *testing.T) {
	l := newLib(t)
	p := vtime.NewVirtual().NewProc("p")
	writeFile(t, l, p, "x", []byte{1})
	s, _ := l.Connect(p)
	if _, err := s.Open(p, "x", storage.ModeCreate); !errors.Is(err, storage.ErrExist) {
		t.Fatalf("create existing = %v", err)
	}
	if _, err := s.Open(p, "missing", storage.ModeRead); !errors.Is(err, storage.ErrNotExist) {
		t.Fatalf("read missing = %v", err)
	}
}

func TestOutage(t *testing.T) {
	l := newLib(t)
	p := vtime.NewVirtual().NewProc("p")
	writeFile(t, l, p, "x", []byte{1})
	l.SetDown(true)
	if _, err := l.Connect(p); !errors.Is(err, storage.ErrDown) {
		t.Fatalf("connect while down = %v", err)
	}
	l.SetDown(false)
	if _, err := l.Connect(p); err != nil {
		t.Fatalf("connect after recovery = %v", err)
	}
}

func TestRemoveLeavesDeadSpace(t *testing.T) {
	l := newLib(t)
	p := vtime.NewVirtual().NewProc("p")
	writeFile(t, l, p, "x", make([]byte, model.MiB))
	s, _ := l.Connect(p)
	if err := s.Remove(p, "x"); err != nil {
		t.Fatal(err)
	}
	_, _, wasted := l.Stats()
	if wasted != model.MiB {
		t.Fatalf("wasted = %d", wasted)
	}
	if _, err := s.Stat(p, "x"); !errors.Is(err, storage.ErrNotExist) {
		t.Fatalf("stat removed = %v", err)
	}
}

func TestUnlimitedCapacity(t *testing.T) {
	l := newLib(t)
	total, _ := l.Capacity()
	if total != 0 {
		t.Fatalf("tape total capacity = %d, want 0 (unlimited)", total)
	}
}

func TestTwoDrivesOverlapReads(t *testing.T) {
	l := newLib(t, func(c *Config) {
		c.CartridgeCapacity = model.MiB // force files onto distinct cartridges
		c.Drives = 2
	})
	sim := vtime.NewVirtual()
	p0 := sim.NewProc("w")
	writeFile(t, l, p0, "a", make([]byte, model.MiB))
	writeFile(t, l, p0, "b", make([]byte, model.MiB))
	l.ResetClocks()

	read := func(p *vtime.Proc, name string) time.Duration {
		s, _ := l.Connect(p)
		h, _ := s.Open(p, name, storage.ModeRead)
		buf := make([]byte, model.MiB)
		if _, err := h.ReadAt(p, buf, 0); err != nil {
			t.Error(err)
		}
		return p.Now()
	}
	ps := sim.NewProcs("r", 2)
	done := make(chan time.Duration, 2)
	go func() { done <- read(ps[0], "a") }()
	go func() { done <- read(ps[1], "b") }()
	t1, t2 := <-done, <-done
	// With two drives the transfers overlap; only the robot serializes
	// the two mounts.  Full serialization would exceed 2× the single
	// read time; require better than 1.7×.
	single := model.RemoteTape2000()
	oneRead := single.Conn + single.OpenRead + single.MountLatency + single.Xfer(model.Read, model.MiB)
	max := t1
	if t2 > max {
		max = t2
	}
	if float64(max) > 1.7*float64(oneRead) {
		t.Fatalf("two-drive reads = %v, want < 1.7× single %v", max, oneRead)
	}
}

func TestNilStoreRejected(t *testing.T) {
	if _, err := New(Config{Name: "x"}); err == nil {
		t.Fatal("New with nil store succeeded")
	}
}

// Property: catalog segments on each cartridge never overlap and stay
// within the cartridge's used extent, whatever mix of create,
// over_write and remove operations runs.
func TestQuickSegmentsNeverOverlap(t *testing.T) {
	f := func(ops []uint8) bool {
		l := newLibQuick()
		p := vtime.NewVirtual().NewProc("p")
		s, err := l.Connect(p)
		if err != nil {
			return false
		}
		for i, op := range ops {
			name := fmt.Sprintf("f%d", int(op)%4)
			size := (int(op)%7 + 1) * 1000
			switch {
			case op%3 == 2:
				s.Remove(p, name) // may fail for absent files; fine
			default:
				mode := storage.ModeOverWrite
				h, err := s.Open(p, name, mode)
				if err != nil {
					return false
				}
				if _, err := h.WriteAt(p, make([]byte, size), 0); err != nil {
					return false
				}
				if err := h.Close(p); err != nil {
					return false
				}
			}
			_ = i
		}
		return l.segmentsDisjoint()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func newLibQuick() *Library {
	l, err := New(Config{Name: "q", Params: model.RemoteTape2000(), Store: memfs.New(), CartridgeCapacity: 64 * 1000})
	if err != nil {
		panic(err)
	}
	return l
}

func TestReclaimRecoversDeadSpace(t *testing.T) {
	l := newLib(t)
	p := vtime.NewVirtual().NewProc("p")
	writeFile(t, l, p, "keep", make([]byte, model.MiB))
	writeFile(t, l, p, "restart", make([]byte, model.MiB))
	s, _ := l.Connect(p)
	// Over-write restart twice and remove another file: dead space grows.
	for i := 0; i < 2; i++ {
		h, err := s.Open(p, "restart", storage.ModeOverWrite)
		if err != nil {
			t.Fatal(err)
		}
		h.WriteAt(p, make([]byte, model.MiB), 0)
		h.Close(p)
	}
	writeFile(t, l, p, "junk", make([]byte, model.MiB))
	if err := s.Remove(p, "junk"); err != nil {
		t.Fatal(err)
	}
	_, _, wastedBefore := l.Stats()
	if wastedBefore != 3*model.MiB {
		t.Fatalf("wasted before = %d, want 3 MiB", wastedBefore)
	}
	before := p.Now()
	reclaimed, err := l.Reclaim(p)
	if err != nil {
		t.Fatal(err)
	}
	if reclaimed != 3*model.MiB {
		t.Fatalf("reclaimed = %d", reclaimed)
	}
	if p.Now() == before {
		t.Fatal("reclamation was free")
	}
	_, _, wastedAfter := l.Stats()
	if wastedAfter != 0 {
		t.Fatalf("wasted after = %d", wastedAfter)
	}
	if !l.segmentsDisjoint() {
		t.Fatal("catalog overlaps after reclaim")
	}
	// Live data still round-trips.
	for _, name := range []string{"keep", "restart"} {
		h, err := s.Open(p, name, storage.ModeRead)
		if err != nil {
			t.Fatalf("%s after reclaim: %v", name, err)
		}
		buf := make([]byte, model.MiB)
		if _, err := h.ReadAt(p, buf, 0); err != nil {
			t.Fatal(err)
		}
		h.Close(p)
	}
	// A second reclaim is a no-op.
	if n, err := l.Reclaim(p); err != nil || n != 0 {
		t.Fatalf("second reclaim = (%d, %v)", n, err)
	}
	// New writes continue on the compacted staging cartridge.
	writeFile(t, l, p, "after", make([]byte, model.MiB))
}

func TestReclaimPreservesDataAcrossCartridges(t *testing.T) {
	l := newLib(t, func(c *Config) { c.CartridgeCapacity = 2 * model.MiB })
	p := vtime.NewVirtual().NewProc("p")
	payload := map[string][]byte{}
	for _, name := range []string{"a", "b", "c", "d"} {
		data := bytes.Repeat([]byte(name), int(model.MiB)/len(name))
		payload[name] = data
		writeFile(t, l, p, name, data)
	}
	s, _ := l.Connect(p)
	s.Remove(p, "b")
	if _, err := l.Reclaim(p); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a", "c", "d"} {
		h, err := s.Open(p, name, storage.ModeRead)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(payload[name]))
		if _, err := h.ReadAt(p, got, 0); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload[name]) {
			t.Fatalf("%s corrupted by reclaim", name)
		}
		h.Close(p)
	}
	if !l.segmentsDisjoint() {
		t.Fatal("catalog overlaps")
	}
}
