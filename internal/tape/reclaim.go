package tape

import (
	"sort"
	"time"

	"repro/internal/model"
	"repro/internal/vtime"
)

// Reclaim compacts the library: live segments are copied, cartridge by
// cartridge, onto fresh media and the old cartridges are retired.  This
// is the reclamation pass real archives run to recover the dead space
// that over_write and Remove leave behind (HPSS calls it repack).
//
// The pass is charged to p like any other tape client: each source
// cartridge is mounted, wound across its live segments, and streamed to
// the staging cartridge at tape bandwidth.  Reclaim returns the number
// of bytes recovered.
func (l *Library) Reclaim(p *vtime.Proc) (reclaimed int64, err error) {
	l.mu.Lock()
	wasted := l.wasted
	if wasted == 0 {
		l.mu.Unlock()
		return 0, nil
	}
	// Snapshot the catalog ordered by (cartridge, offset) so the copy
	// pass winds forward monotonically.
	type liveSeg struct {
		path string
		seg  *segment
	}
	var live []liveSeg
	for path, seg := range l.catalog {
		live = append(live, liveSeg{path, seg})
	}
	sort.Slice(live, func(i, j int) bool {
		if live[i].seg.cart != live[j].seg.cart {
			return live[i].seg.cart.id < live[j].seg.cart.id
		}
		return live[i].seg.offset < live[j].seg.offset
	})
	oldCarts := l.carts
	// Fresh staging cartridge for the compacted layout.  Bump the
	// layout generation before the first segment moves *and* after the
	// last (below): a scheduler batch formed before this line is stale
	// the moment data starts moving, and one formed mid-pass (Reclaim
	// releases l.mu around drive time) is stale once the pass ends.
	l.gen++
	l.carts = nil
	l.current = l.newCartridgeLocked()
	dest := l.current

	// Copy each live segment: mount source, wind, read at tape speed,
	// append to dest.  Source data already lives in the byte store, so
	// only the catalog and the clocks move.
	for _, ls := range live {
		src := ls.seg
		d := l.mountLocked(p, src.cart)
		dist := d.headPos - src.offset
		if dist < 0 {
			dist = -dist
		}
		wind := time.Duration(dist) * l.cfg.Params.WindPerByte
		d.headPos = src.offset + src.length
		cost := wind + l.cfg.Params.Xfer(model.Read, src.length) + l.cfg.Params.Xfer(model.Write, src.length)
		l.mu.Unlock()
		d.res.Acquire(p, cost)
		l.mu.Lock()
		if dest.used+src.length > l.cfg.CartridgeCapacity && dest.used > 0 {
			dest.sealed = true
			dest = l.newCartridgeLocked()
			l.current = dest
		}
		l.catalog[ls.path] = &segment{cart: dest, offset: dest.used, length: src.length}
		dest.used += src.length
	}
	// Retire the old cartridges (unmount any that are on drives).
	for _, c := range oldCarts {
		if c.drive != nil {
			c.drive.mounted = nil
			c.drive = nil
			l.robot.Acquire(p, l.cfg.UnmountLatency)
		}
	}
	l.wasted = 0
	l.gen++
	l.mu.Unlock()
	return wasted, nil
}
