package collective

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/device"
	"repro/internal/memfs"
	"repro/internal/model"
	"repro/internal/pattern"
	"repro/internal/storage"
	"repro/internal/vtime"
)

// rig builds an op over a backend and returns procs, handles and packed
// per-rank buffers filled from a deterministic global array.
type rig struct {
	op      Op
	sim     *vtime.Sim
	procs   []*vtime.Proc
	handles []storage.Handle
	bufs    [][]byte
	global  []byte
	backend *device.Backend
	sess    storage.Session
}

func newRig(t *testing.T, dims []int, etype int, pat string, grid pattern.Grid, params model.Params, mode storage.AMode) *rig {
	t.Helper()
	p, err := pattern.Parse(pat)
	if err != nil {
		t.Fatal(err)
	}
	op := Op{Dims: dims, Etype: etype, Pat: p, Grid: grid}
	be, err := device.New(device.Config{Name: "b", Params: params, Store: memfs.New(), Channels: 4})
	if err != nil {
		t.Fatal(err)
	}
	sim := vtime.NewVirtual()
	n := grid.Procs()
	r := &rig{op: op, sim: sim, backend: be}
	r.procs = sim.NewProcs("r", n)
	admin := sim.NewProc("admin")
	sess, err := be.Connect(admin)
	if err != nil {
		t.Fatal(err)
	}
	r.sess = sess
	// Global array with recognizable content.
	r.global = make([]byte, op.Total())
	for i := range r.global {
		r.global[i] = byte(i * 7)
	}
	if mode != storage.ModeCreate {
		// Pre-populate the file for read tests.
		h, err := sess.Open(admin, "data", storage.ModeCreate)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h.WriteAt(admin, r.global, 0); err != nil {
			t.Fatal(err)
		}
		h.Close(admin)
	}
	for rank := 0; rank < n; rank++ {
		var h storage.Handle
		if rank == 0 {
			h, err = sess.Open(r.procs[rank], "data", mode)
		} else {
			// Other ranks share the already-created file.
			m := mode
			if m == storage.ModeCreate {
				m = storage.ModeOverWrite
			}
			h, err = sess.Open(r.procs[rank], "data", m)
		}
		if err != nil {
			t.Fatal(err)
		}
		r.handles = append(r.handles, h)
		sets, err := pattern.IndexSets(dims, p, grid, rank)
		if err != nil {
			t.Fatal(err)
		}
		runs := pattern.FileRuns(dims, etype, sets)
		r.bufs = append(r.bufs, pattern.Pack(r.global, runs))
	}
	return r
}

func (r *rig) fileContents(t *testing.T) []byte {
	t.Helper()
	admin := r.sim.NewProc("check")
	h, err := r.sess.Open(admin, "data", storage.ModeRead)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, h.Size())
	if _, err := h.ReadAt(admin, buf, 0); err != nil {
		t.Fatal(err)
	}
	return buf
}

func TestWriteProducesGlobalArray(t *testing.T) {
	cases := []struct {
		pat  string
		grid pattern.Grid
	}{
		{"BBB", pattern.Grid{2, 2, 2}},
		{"B*B", pattern.Grid{2, 1, 2}},
		{"**B", pattern.Grid{1, 1, 4}},
		{"CBB", pattern.Grid{2, 2, 1}},
	}
	for _, c := range cases {
		r := newRig(t, []int{8, 8, 8}, 4, c.pat, c.grid, model.Memory(), storage.ModeCreate)
		if err := Write(r.op, r.procs, r.handles, r.bufs); err != nil {
			t.Fatalf("%s/%v: %v", c.pat, c.grid, err)
		}
		if !bytes.Equal(r.fileContents(t), r.global) {
			t.Fatalf("%s/%v: collective write produced wrong file", c.pat, c.grid)
		}
	}
}

func TestWriteOverwriteTruncSafe(t *testing.T) {
	// ModeCreate for rank 0, over_write for the rest: ensure over_write
	// truncation by later ranks does not clobber earlier writes (the rig
	// opens all handles before writing).
	r := newRig(t, []int{4, 4}, 2, "BB", pattern.Grid{2, 2}, model.Memory(), storage.ModeCreate)
	if err := Write(r.op, r.procs, r.handles, r.bufs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r.fileContents(t), r.global) {
		t.Fatal("file mismatch")
	}
}

func TestReadScattersGlobalArray(t *testing.T) {
	r := newRig(t, []int{8, 8, 8}, 4, "BBB", pattern.Grid{2, 2, 2}, model.Memory(), storage.ModeRead)
	got := make([][]byte, len(r.bufs))
	for i := range got {
		got[i] = make([]byte, len(r.bufs[i]))
	}
	if err := Read(r.op, r.procs, r.handles, got); err != nil {
		t.Fatal(err)
	}
	for rank := range got {
		if !bytes.Equal(got[rank], r.bufs[rank]) {
			t.Fatalf("rank %d read wrong subarray", rank)
		}
	}
}

func TestNaiveWriteAndReadRoundTrip(t *testing.T) {
	r := newRig(t, []int{6, 6}, 4, "BB", pattern.Grid{2, 3}, model.Memory(), storage.ModeCreate)
	if err := WriteNaive(r.op, r.procs, r.handles, r.bufs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r.fileContents(t), r.global) {
		t.Fatal("naive write produced wrong file")
	}
	got := make([][]byte, len(r.bufs))
	for i := range got {
		got[i] = make([]byte, len(r.bufs[i]))
	}
	if err := ReadNaive(r.op, r.procs, r.handles, got); err != nil {
		t.Fatal(err)
	}
	for rank := range got {
		if !bytes.Equal(got[rank], r.bufs[rank]) {
			t.Fatalf("rank %d naive read mismatch", rank)
		}
	}
}

// The paper's claim: collective I/O beats naive by a wide margin on
// strided patterns against a slow remote resource.
func TestCollectiveBeatsNaiveOnRemote(t *testing.T) {
	dims := []int{16, 16, 16}
	params := model.RemoteDisk2000()
	mk := func() *rig {
		return newRig(t, dims, 4, "**B", pattern.Grid{1, 1, 4}, params, storage.ModeCreate)
	}
	rc := mk()
	if err := Write(rc.op, rc.procs, rc.handles, rc.bufs); err != nil {
		t.Fatal(err)
	}
	collectiveTime := vtime.MaxNow(rc.procs...)

	rn := mk()
	if err := WriteNaive(rn.op, rn.procs, rn.handles, rn.bufs); err != nil {
		t.Fatal(err)
	}
	naiveTime := vtime.MaxNow(rn.procs...)

	if naiveTime < 4*collectiveTime {
		t.Fatalf("naive %v vs collective %v: expected ≥4× win for collective", naiveTime, collectiveTime)
	}
}

func TestCollectiveChargesOneNativeCallPerRank(t *testing.T) {
	// With a pure per-call-latency model (no bandwidth term), collective
	// write cost per rank = exchange + exactly one PerCall charge.
	params := model.Params{Name: "calls", PerCallWrite: time.Second}
	r := newRig(t, []int{8, 8}, 1, "BB", pattern.Grid{2, 2}, params, storage.ModeCreate)
	if err := Write(r.op, r.procs, r.handles, r.bufs); err != nil {
		t.Fatal(err)
	}
	// All four domains go to distinct files? No — same file, 4 channels
	// hash by path, so all four writes share one channel and serialize:
	// total = 4 × 1s (plus negligible exchange).
	got := vtime.MaxNow(r.procs...)
	if got < 4*time.Second || got > 4*time.Second+100*time.Millisecond {
		t.Fatalf("collective per-call charging = %v, want ≈4s", got)
	}
}

func TestValidationErrors(t *testing.T) {
	r := newRig(t, []int{4, 4}, 1, "BB", pattern.Grid{2, 2}, model.Memory(), storage.ModeCreate)
	if err := Write(r.op, r.procs[:2], r.handles, r.bufs); err == nil {
		t.Fatal("proc count mismatch accepted")
	}
	bad := make([][]byte, len(r.bufs))
	copy(bad, r.bufs)
	bad[1] = bad[1][:1]
	if err := Write(r.op, r.procs, r.handles, bad); err == nil {
		t.Fatal("wrong buffer size accepted")
	}
}

// Property: collective write then collective read round-trips random
// global arrays for random block grids.
func TestQuickCollectiveRoundTrip(t *testing.T) {
	f := func(seed uint8, gsel uint8) bool {
		grids := []pattern.Grid{{1, 1}, {2, 1}, {2, 2}, {1, 3}, {4, 1}}
		grid := grids[int(gsel)%len(grids)]
		dims := []int{8, 12}
		pat := pattern.Pattern{pattern.Block, pattern.Block}
		op := Op{Dims: dims, Etype: 2, Pat: pat, Grid: grid}
		be, err := device.New(device.Config{Name: "b", Params: model.Memory(), Store: memfs.New()})
		if err != nil {
			return false
		}
		sim := vtime.NewVirtual()
		n := grid.Procs()
		procs := sim.NewProcs("r", n)
		sess, err := be.Connect(procs[0])
		if err != nil {
			return false
		}
		global := make([]byte, op.Total())
		for i := range global {
			global[i] = byte(i) ^ seed
		}
		handles := make([]storage.Handle, n)
		bufs := make([][]byte, n)
		for rank := 0; rank < n; rank++ {
			mode := storage.ModeCreate
			if rank > 0 {
				mode = storage.ModeOverWrite
			}
			handles[rank], err = sess.Open(procs[rank], "f", mode)
			if err != nil {
				return false
			}
			sets, err := pattern.IndexSets(dims, pat, grid, rank)
			if err != nil {
				return false
			}
			bufs[rank] = pattern.Pack(global, pattern.FileRuns(dims, 2, sets))
		}
		if err := Write(op, procs, handles, bufs); err != nil {
			return false
		}
		got := make([][]byte, n)
		for i := range got {
			got[i] = make([]byte, len(bufs[i]))
		}
		if err := Read(op, procs, handles, got); err != nil {
			return false
		}
		for rank := range got {
			if !bytes.Equal(got[rank], bufs[rank]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: collective and naive writes of the same data produce
// byte-identical files for arbitrary block grids.
func TestQuickCollectiveNaiveEquivalence(t *testing.T) {
	f := func(seed uint8, gsel uint8) bool {
		grids := []pattern.Grid{{1, 2}, {2, 2}, {1, 4}, {3, 1}}
		grid := grids[int(gsel)%len(grids)]
		dims := []int{6, 8}
		pat := pattern.Pattern{pattern.Block, pattern.Block}
		op := Op{Dims: dims, Etype: 2, Pat: pat, Grid: grid}

		write := func(naive bool) []byte {
			be, err := device.New(device.Config{Name: "b", Params: model.Memory(), Store: memfs.New()})
			if err != nil {
				t.Fatal(err)
			}
			sim := vtime.NewVirtual()
			n := grid.Procs()
			procs := sim.NewProcs("r", n)
			sess, err := be.Connect(procs[0])
			if err != nil {
				t.Fatal(err)
			}
			global := make([]byte, op.Total())
			for i := range global {
				global[i] = byte(i)*3 ^ seed
			}
			handles := make([]storage.Handle, n)
			bufs := make([][]byte, n)
			for rank := 0; rank < n; rank++ {
				mode := storage.ModeCreate
				if rank > 0 {
					mode = storage.ModeWrite
				}
				handles[rank], err = sess.Open(procs[rank], "f", mode)
				if err != nil {
					t.Fatal(err)
				}
				sets, err := pattern.IndexSets(dims, pat, grid, rank)
				if err != nil {
					t.Fatal(err)
				}
				bufs[rank] = pattern.Pack(global, pattern.FileRuns(dims, 2, sets))
			}
			if naive {
				err = WriteNaive(op, procs, handles, bufs)
			} else {
				err = Write(op, procs, handles, bufs)
			}
			if err != nil {
				t.Fatal(err)
			}
			out := make([]byte, op.Total())
			if _, err := handles[0].ReadAt(procs[0], out, 0); err != nil {
				t.Fatal(err)
			}
			return out
		}
		return bytes.Equal(write(false), write(true))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
