// Package collective implements two-phase collective I/O, the
// centerpiece optimization of the run-time library layer (the paper:
// "Note that this time has already been optimized by collective I/O.
// Without collective I/O, it would be many times slower").
//
// In a collective write, the processes first exchange data so that each
// ends up holding one contiguous file domain, then every process issues
// a single large native write.  A collective read is the mirror image:
// one large native read per process followed by the scatter exchange.
// Naive counterparts (every process writes its own file runs directly)
// are provided for the ablation benchmarks.
//
// The exchange phase moves bytes over the machine's interconnect; it is
// charged at ExchangeBW per process and closed with a barrier, faithful
// to the synchronizing all-to-all of two-phase I/O on the SP2.
package collective

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/model"
	"repro/internal/pattern"
	"repro/internal/storage"
	"repro/internal/vtime"
)

// ExchangeBW is the per-process interconnect bandwidth used to charge
// the two-phase exchange (bytes/second).  The SP2's switch moved data
// orders of magnitude faster than year-2000 archival storage, so the
// exchange is cheap but not free.
const ExchangeBW = 100 * model.MiB

// Op describes one collective operation's geometry: the global array
// and its distribution over the participating processes.
type Op struct {
	Dims  []int
	Etype int
	Pat   pattern.Pattern
	Grid  pattern.Grid
}

// Total returns the global array size in bytes.
func (o Op) Total() int64 { return pattern.TotalBytes(o.Dims, o.Etype) }

// domain returns process k's contiguous file domain [lo, hi).
func (o Op) domain(k, nprocs int) (lo, hi int64) {
	total := o.Total()
	lo = total * int64(k) / int64(nprocs)
	hi = total * int64(k+1) / int64(nprocs)
	return lo, hi
}

func (o Op) validate(procs []*vtime.Proc, handles []storage.Handle, bufs [][]byte) error {
	n := o.Grid.Procs()
	if len(procs) != n || len(handles) != n || len(bufs) != n {
		return fmt.Errorf("collective: grid %v wants %d procs, got procs=%d handles=%d bufs=%d",
			o.Grid, n, len(procs), len(handles), len(bufs))
	}
	for r := 0; r < n; r++ {
		sets, err := pattern.IndexSets(o.Dims, o.Pat, o.Grid, r)
		if err != nil {
			return err
		}
		want := int64(pattern.NumElems(sets)) * int64(o.Etype)
		if int64(len(bufs[r])) != want {
			return fmt.Errorf("collective: rank %d buffer is %d bytes, subarray needs %d", r, len(bufs[r]), want)
		}
	}
	return nil
}

// chargeExchange advances every process by its local share of the
// all-to-all and synchronizes the group.
func chargeExchange(procs []*vtime.Proc, bytesPerProc []int64) {
	for i, p := range procs {
		p.Advance(time.Duration(float64(bytesPerProc[i]) / ExchangeBW * float64(time.Second)))
	}
	vtime.Barrier(procs...)
}

// Write performs a two-phase collective write.  bufs[r] is rank r's
// packed local subarray; handles[r] is rank r's open handle on the same
// file.  On return the file holds the full global array and all process
// clocks are synchronized.
func Write(o Op, procs []*vtime.Proc, handles []storage.Handle, bufs [][]byte) error {
	if err := o.validate(procs, handles, bufs); err != nil {
		return err
	}
	nprocs := o.Grid.Procs()

	// Phase 1: redistribute local subarrays into contiguous file domains.
	domains := make([][]byte, nprocs)
	domLo := make([]int64, nprocs)
	for k := 0; k < nprocs; k++ {
		lo, hi := o.domain(k, nprocs)
		domains[k] = make([]byte, hi-lo)
		domLo[k] = lo
	}
	moved := make([]int64, nprocs)
	for r := 0; r < nprocs; r++ {
		sets, err := pattern.IndexSets(o.Dims, o.Pat, o.Grid, r)
		if err != nil {
			return err
		}
		var localPos int64
		for _, run := range pattern.FileRuns(o.Dims, o.Etype, sets) {
			if err := scatterRun(o, nprocs, domains, run, bufs[r][localPos:localPos+run.Len]); err != nil {
				return err
			}
			localPos += run.Len
			moved[r] += run.Len
		}
	}
	chargeExchange(procs, moved)

	// Phase 2: each rank writes its domain with one native call.
	var wg sync.WaitGroup
	errs := make([]error, nprocs)
	for k := 0; k < nprocs; k++ {
		if len(domains[k]) == 0 {
			continue
		}
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			if _, err := handles[k].WriteAt(procs[k], domains[k], domLo[k]); err != nil {
				errs[k] = err
			}
		}(k)
	}
	wg.Wait()
	vtime.Barrier(procs...)
	for _, err := range errs {
		if err != nil {
			return fmt.Errorf("collective write: %w", err)
		}
	}
	return nil
}

// scatterRun copies one file run's bytes into the owning domain buffers
// (a run may straddle a domain boundary).
func scatterRun(o Op, nprocs int, domains [][]byte, run pattern.Run, src []byte) error {
	total := o.Total()
	for off := run.Off; off < run.End(); {
		// The integer estimate can be one low at a domain boundary;
		// correct upward once.
		k := int(off * int64(nprocs) / total)
		lo, hi := o.domain(k, nprocs)
		if off >= hi {
			k++
			lo, hi = o.domain(k, nprocs)
		}
		n := run.End() - off
		if room := hi - off; room < n {
			n = room
		}
		copy(domains[k][off-lo:off-lo+n], src[off-run.Off:off-run.Off+n])
		off += n
	}
	return nil
}

// Read performs a two-phase collective read: each rank reads its
// contiguous domain with one native call, then the domains are
// scattered back into per-rank subarray buffers.
func Read(o Op, procs []*vtime.Proc, handles []storage.Handle, bufs [][]byte) error {
	if err := o.validate(procs, handles, bufs); err != nil {
		return err
	}
	nprocs := o.Grid.Procs()
	domains := make([][]byte, nprocs)
	domLo := make([]int64, nprocs)
	var wg sync.WaitGroup
	errs := make([]error, nprocs)
	for k := 0; k < nprocs; k++ {
		lo, hi := o.domain(k, nprocs)
		domains[k] = make([]byte, hi-lo)
		domLo[k] = lo
		if hi == lo {
			continue
		}
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			if _, err := handles[k].ReadAt(procs[k], domains[k], domLo[k]); err != nil {
				errs[k] = err
			}
		}(k)
	}
	wg.Wait()
	vtime.Barrier(procs...)
	for _, err := range errs {
		if err != nil {
			return fmt.Errorf("collective read: %w", err)
		}
	}

	moved := make([]int64, nprocs)
	total := o.Total()
	for r := 0; r < nprocs; r++ {
		sets, err := pattern.IndexSets(o.Dims, o.Pat, o.Grid, r)
		if err != nil {
			return err
		}
		var localPos int64
		for _, run := range pattern.FileRuns(o.Dims, o.Etype, sets) {
			for off := run.Off; off < run.End(); {
				k := int(off * int64(nprocs) / total)
				lo, hi := o.domain(k, nprocs)
				if off >= hi {
					k++
					lo, hi = o.domain(k, nprocs)
				}
				n := run.End() - off
				if room := hi - off; room < n {
					n = room
				}
				copy(bufs[r][localPos:localPos+n], domains[k][off-lo:off-lo+n])
				localPos += n
				off += n
			}
			moved[r] += run.Len
		}
	}
	chargeExchange(procs, moved)
	return nil
}

// rankVecs slices rank r's packed buffer into one Vec per file run.
func rankVecs(o Op, r int, buf []byte) ([]storage.Vec, error) {
	sets, err := pattern.IndexSets(o.Dims, o.Pat, o.Grid, r)
	if err != nil {
		return nil, err
	}
	runs := pattern.FileRuns(o.Dims, o.Etype, sets)
	vecs := make([]storage.Vec, 0, len(runs))
	var localPos int64
	for _, run := range runs {
		vecs = append(vecs, storage.Vec{Off: run.Off, B: buf[localPos : localPos+run.Len]})
		localPos += run.Len
	}
	return vecs, nil
}

// WriteNaive writes every rank's file runs directly, one native call per
// run — the unoptimized baseline the paper compares against.  The runs
// travel as one vectored request per rank on backends that support it
// (the srbnet wire), which collapses the round trips without changing
// the per-run native calls or their cost.
func WriteNaive(o Op, procs []*vtime.Proc, handles []storage.Handle, bufs [][]byte) error {
	if err := o.validate(procs, handles, bufs); err != nil {
		return err
	}
	nprocs := o.Grid.Procs()
	var wg sync.WaitGroup
	errs := make([]error, nprocs)
	for r := 0; r < nprocs; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			vecs, err := rankVecs(o, r, bufs[r])
			if err != nil {
				errs[r] = err
				return
			}
			if _, err := storage.WriteV(procs[r], handles[r], vecs); err != nil {
				errs[r] = err
			}
		}(r)
	}
	wg.Wait()
	vtime.Barrier(procs...)
	for _, err := range errs {
		if err != nil {
			return fmt.Errorf("naive write: %w", err)
		}
	}
	return nil
}

// ReadNaive reads every rank's file runs directly, one native call per
// run, vectored into one request per rank like WriteNaive.
func ReadNaive(o Op, procs []*vtime.Proc, handles []storage.Handle, bufs [][]byte) error {
	if err := o.validate(procs, handles, bufs); err != nil {
		return err
	}
	nprocs := o.Grid.Procs()
	var wg sync.WaitGroup
	errs := make([]error, nprocs)
	for r := 0; r < nprocs; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			vecs, err := rankVecs(o, r, bufs[r])
			if err != nil {
				errs[r] = err
				return
			}
			if _, err := storage.ReadV(procs[r], handles[r], vecs); err != nil {
				errs[r] = err
			}
		}(r)
	}
	wg.Wait()
	vtime.Barrier(procs...)
	for _, err := range errs {
		if err != nil {
			return fmt.Errorf("naive read: %w", err)
		}
	}
	return nil
}
