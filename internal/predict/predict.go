// Package predict implements the paper's I/O performance predictor.
//
// The predictor consults the performance database (transfer-time curves
// and eq. (1) constants measured by PTool, stored in the meta-data
// database) and evaluates equation (2):
//
//	T_prediction = Σ_j (N/freq(j) + 1) · n(j) · t_j(s)
//
// where n(j) and the native unit size s are derived from dataset j's
// access pattern and I/O optimization (package ioopt), and t_j(s) is
// interpolated from the measured curve.  Per-dump file-open/close
// constants and per-run connection constants are added exactly as the
// run-time system charges them, so predictions can be compared directly
// with measured run I/O times (figures 9 and 10) and rendered as the
// figure 11 per-dataset table.
package predict

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/ioopt"
	"repro/internal/metadb"
	"repro/internal/pattern"
)

// DB wraps the meta-data database's performance tables with
// interpolation.
type DB struct {
	meta *metadb.DB
}

// NewDB returns a predictor over the given meta-data database.
func NewDB(meta *metadb.DB) *DB { return &DB{meta: meta} }

// Unit returns t(s): the interpolated time in seconds of one native
// call of size s on the resource class, from PTool's samples.
// Piecewise-linear between sample sizes; linear extrapolation beyond
// the ends using the nearest segment's slope.
func (db *DB) Unit(resource, op string, size int64) (float64, error) {
	samples := db.meta.Samples(nil, resource, op)
	switch len(samples) {
	case 0:
		return 0, fmt.Errorf("predict: no samples for %s/%s — run PTool first", resource, op)
	case 1:
		// Scale by size assuming pure bandwidth behaviour.
		if samples[0].Size <= 0 {
			return samples[0].Seconds, nil
		}
		return samples[0].Seconds * float64(size) / float64(samples[0].Size), nil
	}
	// Find the bracketing segment (clamping to the first/last segment
	// for extrapolation).
	i := 0
	for i < len(samples)-2 && samples[i+1].Size < size {
		i++
	}
	a, b := samples[i], samples[i+1]
	if b.Size == a.Size {
		return a.Seconds, nil
	}
	frac := float64(size-a.Size) / float64(b.Size-a.Size)
	t := a.Seconds + frac*(b.Seconds-a.Seconds)
	if size < samples[0].Size && samples[0].Size > 0 {
		// Extrapolating below the smallest PTool sample: a steep first
		// segment can drive the linear extension negative, which the old
		// code clamped to exactly 0 — "free" small native calls that made
		// the staging inequality and AUTO placement favor absurd plans.
		// Floor at the smallest sample pro-rata (pure-bandwidth scaling),
		// which stays positive and monotone in size.
		if floor := samples[0].Seconds * float64(size) / float64(samples[0].Size); t < floor {
			t = floor
		}
	}
	if t < 0 {
		t = 0
	}
	return t, nil
}

// WholeFile returns the predicted seconds for transferring an entire
// file of the given size on the resource class with one native call,
// including the eq. (1) file-open and file-close constants.  This is
// the cost model of the whole-file fast path (storage.PutFile /
// storage.GetFile) that the staging engine uses for tier-to-tier
// copies.
func (db *DB) WholeFile(resource, op string, size int64) (float64, error) {
	t, err := db.Unit(resource, op, size)
	if err != nil {
		return 0, err
	}
	t += db.meta.Constant(nil, resource, op, metadb.CompOpen)
	t += db.meta.Constant(nil, resource, op, metadb.CompClose)
	return t, nil
}

// ConnCost returns the predicted seconds of connection setup for one
// (resource, op) session — the per-run constant eq. (2) charges before
// any transfer.  Tier-to-tier copy pipelines (staging, workflow
// prefetch) add it once per session they open.
func (db *DB) ConnCost(resource, op string) float64 {
	return db.meta.Constant(nil, resource, op, metadb.CompConn)
}

// DatasetReq describes one dataset for prediction, mirroring the
// columns of the figure 11 screen.
type DatasetReq struct {
	Name      string
	AMode     string // create / over_write / read
	Dims      []int
	Etype     int
	Pattern   string
	Location  string     // resource class: localdisk / remotedisk / remotetape
	Frequency int        // dump every Frequency iterations
	Opt       ioopt.Kind // I/O optimization (Collective by default)
	Procs     int        // parallel processes (for the grid)
}

// RunReq is a whole application run to predict.
type RunReq struct {
	Iterations int
	Op         string // "write" for producers, "read" for consumers
	Datasets   []DatasetReq
}

// DatasetPrediction is one row of the figure 11 table.
type DatasetPrediction struct {
	Name        string
	Resource    string
	Dumps       int // N/freq + 1
	NativeCalls int // n(j)
	UnitBytes   int64
	UnitSeconds float64
	// VirtualTime is the dataset's total predicted I/O time over the run
	// (the VIRTUALTIME column of figure 11).
	VirtualTime time.Duration
}

// RunPrediction is the full eq. (2) evaluation.
type RunPrediction struct {
	Datasets []DatasetPrediction
	// Total is the sum over datasets plus per-run connection costs.
	Total time.Duration
}

// PredictDataset evaluates one dataset's term of eq. (2).
func (db *DB) PredictDataset(d DatasetReq, iterations int) (DatasetPrediction, error) {
	if d.Frequency <= 0 {
		d.Frequency = 1
	}
	if d.Procs <= 0 {
		d.Procs = 1
	}
	if d.Location == "" || strings.EqualFold(d.Location, "DISABLE") {
		return DatasetPrediction{Name: d.Name, Resource: "-"}, nil
	}
	op, err := NormalizeAMode(d.AMode)
	if err != nil {
		return DatasetPrediction{}, fmt.Errorf("predict %q: %w", d.Name, err)
	}
	pat, err := pattern.Parse(d.Pattern)
	if err != nil {
		return DatasetPrediction{}, fmt.Errorf("predict %q: %w", d.Name, err)
	}
	grid, err := gridFor(pat, d.Dims, d.Procs)
	if err != nil {
		return DatasetPrediction{}, fmt.Errorf("predict %q: %w", d.Name, err)
	}
	n, unit, err := d.Opt.Calls(d.Dims, d.Etype, pat, grid)
	if err != nil {
		return DatasetPrediction{}, fmt.Errorf("predict %q: %w", d.Name, err)
	}
	t, err := db.Unit(d.Location, op, unit)
	if err != nil {
		return DatasetPrediction{}, fmt.Errorf("predict %q: %w", d.Name, err)
	}
	dumps := iterations/d.Frequency + 1
	open := db.meta.Constant(nil, d.Location, op, metadb.CompOpen)
	cls := db.meta.Constant(nil, d.Location, op, metadb.CompClose)
	perDump := float64(n)*t + open + cls
	if d.Opt == ioopt.Naive && op == "read" {
		// Every strided native call repositions: charge the Table 1 seek
		// constant per call.  The optimized strategies position once as
		// part of the open, which Table 1 prices into that constant.
		perDump += float64(n) * db.meta.Constant(nil, d.Location, op, metadb.CompSeek)
	}
	total := float64(dumps) * perDump
	return DatasetPrediction{
		Name:        d.Name,
		Resource:    d.Location,
		Dumps:       dumps,
		NativeCalls: n,
		UnitBytes:   unit,
		UnitSeconds: t,
		VirtualTime: secs(total),
	}, nil
}

// NormalizeAMode maps an access-mode string (any case) to the
// performance-table op it is priced with: "read" for reads, "write" for
// the writable modes (create / over_write / write).  Unknown modes are
// an error rather than silently priced as writes.
func NormalizeAMode(amode string) (string, error) {
	switch strings.ToLower(strings.TrimSpace(amode)) {
	case "read":
		return "read", nil
	case "create", "over_write", "write":
		return "write", nil
	default:
		return "", fmt.Errorf("predict: unknown access mode %q (want read/create/over_write/write)", amode)
	}
}

// connKey is one (resource, op) connection charge.
type connKey struct{ resource, op string }

// Predict evaluates eq. (2) for a whole run, adding one
// connection-setup/teardown charge per (resource, op) pair the run's
// datasets actually use — a resource that is only ever read from is
// charged the read connection constants, matching how the run-time
// system opens its sessions.  RunReq.Op is kept for callers that label
// a run, but it no longer decides connection pricing.
func (db *DB) Predict(r RunReq) (RunPrediction, error) {
	var out RunPrediction
	conns := make(map[connKey]bool)
	for _, d := range r.Datasets {
		dp, err := db.PredictDataset(d, r.Iterations)
		if err != nil {
			return RunPrediction{}, err
		}
		out.Datasets = append(out.Datasets, dp)
		out.Total += dp.VirtualTime
		if dp.Resource != "-" {
			op, err := NormalizeAMode(d.AMode)
			if err != nil {
				return RunPrediction{}, fmt.Errorf("predict %q: %w", d.Name, err)
			}
			conns[connKey{dp.Resource, op}] = true
		}
	}
	for k := range conns {
		conn := db.meta.Constant(nil, k.resource, k.op, metadb.CompConn)
		connClose := db.meta.Constant(nil, k.resource, k.op, metadb.CompConnClose)
		out.Total += secs(conn + connClose)
	}
	return out, nil
}

// gridFor reproduces the core package's grid derivation so predictions
// and measurements agree on the decomposition.
func gridFor(pat pattern.Pattern, dims []int, procs int) (pattern.Grid, error) {
	distributed := 0
	for _, p := range pat {
		if p != pattern.All {
			distributed++
		}
	}
	if distributed == 0 {
		g := make(pattern.Grid, len(dims))
		for i := range g {
			g[i] = 1
		}
		return g, nil
	}
	sub, err := pattern.DefaultGrid(distributed, procs)
	if err != nil {
		return nil, err
	}
	g := make(pattern.Grid, len(dims))
	j := 0
	for i, p := range pat {
		if p == pattern.All {
			g[i] = 1
		} else {
			g[i] = sub[j]
			j++
		}
	}
	return g, nil
}

func secs(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// TableString renders a RunPrediction as the figure 11 screen: one row
// per dataset with its expected location and predicted virtual time.
func (rp RunPrediction) TableString() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %-12s %6s %6s %12s %14s\n",
		"NAME", "EXPECTEDLOC", "DUMPS", "n(j)", "UNIT(bytes)", "VIRTUALTIME(s)")
	for _, d := range rp.Datasets {
		fmt.Fprintf(&b, "%-14s %-12s %6d %6d %12d %14.4f\n",
			d.Name, d.Resource, d.Dumps, d.NativeCalls, d.UnitBytes, d.VirtualTime.Seconds())
	}
	fmt.Fprintf(&b, "%-14s %-12s %6s %6s %12s %14.4f\n", "TOTAL", "", "", "", "", rp.Total.Seconds())
	return b.String()
}
