package predict

import (
	"math"
	"strings"
	"testing"

	"repro/internal/ioopt"
	"repro/internal/localdisk"
	"repro/internal/memfs"
	"repro/internal/metadb"
	"repro/internal/model"
	"repro/internal/ptool"
	"repro/internal/remotedisk"
	"repro/internal/tape"
	"repro/internal/vtime"
)

// measuredDB builds a performance database by running PTool against all
// three resources.
func measuredDB(t *testing.T) *metadb.DB {
	t.Helper()
	meta := metadb.New()
	sim := vtime.NewVirtual()
	local, err := localdisk.New("ssa", memfs.New())
	if err != nil {
		t.Fatal(err)
	}
	rdisk, err := remotedisk.New("sdsc-disk", memfs.New())
	if err != nil {
		t.Fatal(err)
	}
	rtape, err := tape.New(tape.Config{Name: "hpss", Params: model.RemoteTape2000(), Store: memfs.New()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ptool.MeasureAll(sim, meta, ptool.Config{Repeats: 1}, local, rdisk, rtape); err != nil {
		t.Fatal(err)
	}
	return meta
}

func TestUnitInterpolation(t *testing.T) {
	meta := metadb.New()
	meta.AddSample(nil, metadb.PerfSample{Resource: "r", Op: "write", Size: 1000, Seconds: 1})
	meta.AddSample(nil, metadb.PerfSample{Resource: "r", Op: "write", Size: 3000, Seconds: 3})
	db := NewDB(meta)
	got, err := db.Unit("r", "write", 2000)
	if err != nil || math.Abs(got-2) > 1e-9 {
		t.Fatalf("interpolated Unit = %v, %v", got, err)
	}
	// Extrapolation beyond the last point follows the last slope.
	got, _ = db.Unit("r", "write", 5000)
	if math.Abs(got-5) > 1e-9 {
		t.Fatalf("extrapolated Unit = %v", got)
	}
	// Below the first point.
	got, _ = db.Unit("r", "write", 500)
	if math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("low extrapolated Unit = %v", got)
	}
	if _, err := db.Unit("absent", "write", 100); err == nil {
		t.Fatal("missing resource predicted")
	}
}

// TestUnitSmallSizeFloor is the regression test for the free-small-I/O
// bug: with a steep first segment — (1000 B, 1 s) → (2000 B, 3 s) — the
// linear extension through size 100 evaluates to −0.8 s, which the old
// code clamped to exactly 0.  The fix floors at the smallest sample
// pro-rata: 1 s × 100/1000 = 0.1 s.
func TestUnitSmallSizeFloor(t *testing.T) {
	meta := metadb.New()
	meta.AddSample(nil, metadb.PerfSample{Resource: "r", Op: "write", Size: 1000, Seconds: 1})
	meta.AddSample(nil, metadb.PerfSample{Resource: "r", Op: "write", Size: 2000, Seconds: 3})
	db := NewDB(meta)
	got, err := db.Unit("r", "write", 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.1) > 1e-9 {
		t.Fatalf("Unit(100) = %v, want pro-rata floor 0.1 (old code predicted 0: free I/O)", got)
	}
	// Monotone in size through the extrapolation regime.
	prev := 0.0
	for _, size := range []int64{1, 10, 100, 500, 900, 1000} {
		u, err := db.Unit("r", "write", size)
		if err != nil {
			t.Fatal(err)
		}
		if u <= prev && size > 1 {
			t.Fatalf("Unit not increasing: Unit(%d) = %v after %v", size, u, prev)
		}
		if u <= 0 {
			t.Fatalf("Unit(%d) = %v, must stay positive", size, u)
		}
		prev = u
	}
	// Above the smallest sample the interpolation is untouched.
	got, _ = db.Unit("r", "write", 1500)
	if math.Abs(got-2) > 1e-9 {
		t.Fatalf("Unit(1500) = %v, want 2", got)
	}
}

func TestUnitSingleSampleScales(t *testing.T) {
	meta := metadb.New()
	meta.AddSample(nil, metadb.PerfSample{Resource: "r", Op: "read", Size: 100, Seconds: 2})
	got, err := NewDB(meta).Unit("r", "read", 50)
	if err != nil || math.Abs(got-1) > 1e-9 {
		t.Fatalf("single-sample Unit = %v, %v", got, err)
	}
}

// The §4.2 worked example through the measured database: vr-temp
// (2 MiB, LOCALDISK) + vr-press (2 MiB, REMOTEDISK), N = 120, freq = 6,
// collective I/O.  The paper computes 180.57 s; our calibration must
// land within ±15%.
func TestWorkedExample(t *testing.T) {
	db := NewDB(measuredDB(t))
	req := RunReq{
		Iterations: 120,
		Op:         "write",
		Datasets: []DatasetReq{
			{Name: "vr_temp", AMode: "create", Dims: []int{128, 128, 128}, Etype: 1,
				Pattern: "BBB", Location: "localdisk", Frequency: 6, Procs: 8},
			{Name: "vr_press", AMode: "create", Dims: []int{128, 128, 128}, Etype: 1,
				Pattern: "BBB", Location: "remotedisk", Frequency: 6, Procs: 8},
		},
	}
	got, err := db.Predict(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Datasets) != 2 {
		t.Fatalf("datasets = %d", len(got.Datasets))
	}
	if got.Datasets[0].Dumps != 21 {
		t.Fatalf("dumps = %d, want 21 (N/freq + 1)", got.Datasets[0].Dumps)
	}
	if got.Datasets[0].NativeCalls != 1 {
		t.Fatalf("collective n(j) = %d, want 1", got.Datasets[0].NativeCalls)
	}
	paper := 180.57
	if ratio := got.Total.Seconds() / paper; ratio < 0.85 || ratio > 1.15 {
		t.Fatalf("worked example prediction = %.2f s, want within 15%% of %.2f", got.Total.Seconds(), paper)
	}
}

// Figure 11 per-dataset check: an 8 MiB float dataset on tape predicts
// ≈3036 s over the run; on remote disk ≈812 s.
func TestFig11DatasetRows(t *testing.T) {
	db := NewDB(measuredDB(t))
	tapeRow, err := db.PredictDataset(DatasetReq{
		Name: "press", AMode: "create", Dims: []int{128, 128, 128}, Etype: 4,
		Pattern: "BBB", Location: "remotetape", Frequency: 6, Procs: 8,
	}, 120)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := tapeRow.VirtualTime.Seconds() / 3036.34; ratio < 0.85 || ratio > 1.15 {
		t.Fatalf("tape 8 MiB dataset = %.1f s, want ≈3036 s", tapeRow.VirtualTime.Seconds())
	}
	diskRow, err := db.PredictDataset(DatasetReq{
		Name: "temp", AMode: "create", Dims: []int{128, 128, 128}, Etype: 4,
		Pattern: "BBB", Location: "remotedisk", Frequency: 6, Procs: 8,
	}, 120)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := diskRow.VirtualTime.Seconds() / 812.45; ratio < 0.80 || ratio > 1.20 {
		t.Fatalf("remote disk 8 MiB dataset = %.1f s, want ≈812 s", diskRow.VirtualTime.Seconds())
	}
}

func TestDisabledDatasetPredictsZero(t *testing.T) {
	db := NewDB(measuredDB(t))
	row, err := db.PredictDataset(DatasetReq{Name: "unused", Location: "DISABLE", Dims: []int{8}, Etype: 1, Pattern: "B"}, 120)
	if err != nil {
		t.Fatal(err)
	}
	if row.VirtualTime != 0 || row.Resource != "-" {
		t.Fatalf("disabled row = %+v", row)
	}
}

func TestNaivePredictsManyCalls(t *testing.T) {
	db := NewDB(measuredDB(t))
	naive, err := db.PredictDataset(DatasetReq{
		Name: "x", AMode: "create", Dims: []int{16, 16, 16}, Etype: 4,
		Pattern: "BBB", Location: "remotedisk", Frequency: 1, Procs: 8, Opt: ioopt.Naive,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	coll, err := db.PredictDataset(DatasetReq{
		Name: "x", AMode: "create", Dims: []int{16, 16, 16}, Etype: 4,
		Pattern: "BBB", Location: "remotedisk", Frequency: 1, Procs: 8, Opt: ioopt.Collective,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if naive.NativeCalls <= coll.NativeCalls {
		t.Fatalf("naive calls = %d, collective = %d", naive.NativeCalls, coll.NativeCalls)
	}
	if naive.VirtualTime <= coll.VirtualTime {
		t.Fatalf("naive %v must exceed collective %v", naive.VirtualTime, coll.VirtualTime)
	}
}

func TestPredictErrors(t *testing.T) {
	db := NewDB(metadb.New())
	if _, err := db.PredictDataset(DatasetReq{Name: "x", Dims: []int{4}, Etype: 1, Pattern: "Q", Location: "localdisk"}, 10); err == nil {
		t.Fatal("bad pattern accepted")
	}
	if _, err := db.PredictDataset(DatasetReq{Name: "x", Dims: []int{4}, Etype: 1, Pattern: "B", Location: "localdisk"}, 10); err == nil {
		t.Fatal("empty perf DB predicted")
	}
}

func TestTableString(t *testing.T) {
	db := NewDB(measuredDB(t))
	rp, err := db.Predict(RunReq{
		Iterations: 120, Op: "write",
		Datasets: []DatasetReq{{
			Name: "temp", AMode: "create", Dims: []int{128, 128, 128}, Etype: 4,
			Pattern: "BBB", Location: "remotedisk", Frequency: 6, Procs: 8,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := rp.TableString()
	if !strings.Contains(s, "temp") || !strings.Contains(s, "VIRTUALTIME") || !strings.Contains(s, "TOTAL") {
		t.Fatalf("table:\n%s", s)
	}
}

func TestPredictTotalsAddConnOnce(t *testing.T) {
	db := NewDB(measuredDB(t))
	one, err := db.Predict(RunReq{Iterations: 6, Op: "write", Datasets: []DatasetReq{
		{Name: "a", AMode: "create", Dims: []int{64, 64, 64}, Etype: 4, Pattern: "BBB", Location: "remotedisk", Frequency: 6, Procs: 4},
	}})
	if err != nil {
		t.Fatal(err)
	}
	two, err := db.Predict(RunReq{Iterations: 6, Op: "write", Datasets: []DatasetReq{
		{Name: "a", AMode: "create", Dims: []int{64, 64, 64}, Etype: 4, Pattern: "BBB", Location: "remotedisk", Frequency: 6, Procs: 4},
		{Name: "b", AMode: "create", Dims: []int{64, 64, 64}, Etype: 4, Pattern: "BBB", Location: "remotedisk", Frequency: 6, Procs: 4},
	}})
	if err != nil {
		t.Fatal(err)
	}
	perDS := two.Datasets[0].VirtualTime
	wantTwo := one.Total + perDS // same conn charge, one more dataset
	if diff := (two.Total - wantTwo).Seconds(); math.Abs(diff) > 1e-6 {
		t.Fatalf("conn charged per dataset? two=%v want=%v", two.Total, wantTwo)
	}

}

func TestNormalizeAMode(t *testing.T) {
	cases := []struct {
		in   string
		want string
		ok   bool
	}{
		{"read", "read", true},
		{"READ", "read", true},
		{"Read", "read", true},
		{" read ", "read", true},
		{"create", "write", true},
		{"CREATE", "write", true},
		{"over_write", "write", true},
		{"Over_Write", "write", true},
		{"write", "write", true},
		{"", "", false},
		{"append", "", false},
		{"rea", "", false},
	}
	for _, c := range cases {
		got, err := NormalizeAMode(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("NormalizeAMode(%q) = %q, %v; want %q", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("NormalizeAMode(%q) accepted as %q, want error", c.in, got)
		}
	}
}

// Regression: "READ"/"Read" used to fall through the lowercase
// comparison and get priced with the write curves.
func TestPredictDatasetAModeCaseInsensitive(t *testing.T) {
	db := NewDB(measuredDB(t))
	base := DatasetReq{
		Name: "temp", Dims: []int{64, 64, 64}, Etype: 4,
		Pattern: "BBB", Location: "remotetape", Frequency: 6, Procs: 8,
	}
	lower := base
	lower.AMode = "read"
	ref, err := db.PredictDataset(lower, 24)
	if err != nil {
		t.Fatal(err)
	}
	wr := base
	wr.AMode = "create"
	wrote, err := db.PredictDataset(wr, 24)
	if err != nil {
		t.Fatal(err)
	}
	if ref.VirtualTime == wrote.VirtualTime {
		t.Fatal("tape read and write predictions coincide; test cannot distinguish curves")
	}
	for _, amode := range []string{"READ", "Read", "ReAd"} {
		req := base
		req.AMode = amode
		got, err := db.PredictDataset(req, 24)
		if err != nil {
			t.Fatalf("AMode %q: %v", amode, err)
		}
		if got.VirtualTime != ref.VirtualTime {
			t.Fatalf("AMode %q priced as %v, want read pricing %v (write pricing is %v)",
				amode, got.VirtualTime, ref.VirtualTime, wrote.VirtualTime)
		}
	}
	bad := base
	bad.AMode = "append"
	if _, err := db.PredictDataset(bad, 24); err == nil {
		t.Fatal("unknown AMode accepted")
	}
}

// Regression: Predict charged every resource's connection constants
// with the single run-level Op (defaulting to "write"), so a resource
// that is only read from was priced with the write conn constants.
func TestPredictConnPerResourceOp(t *testing.T) {
	meta := metadb.New()
	set := func(op, comp string, secs float64) {
		if err := meta.SetConstant(nil, metadb.PerfConstant{Resource: "r", Op: op, Component: comp, Seconds: secs}); err != nil {
			t.Fatal(err)
		}
	}
	// Deliberately asymmetric conn constants so a wrong op is visible.
	set("read", metadb.CompConn, 5)
	set("read", metadb.CompConnClose, 7)
	set("write", metadb.CompConn, 100)
	set("write", metadb.CompConnClose, 200)
	if err := meta.AddSample(nil, metadb.PerfSample{Resource: "r", Op: "read", Size: 1000, Seconds: 1}); err != nil {
		t.Fatal(err)
	}
	if err := meta.AddSample(nil, metadb.PerfSample{Resource: "r", Op: "write", Size: 1000, Seconds: 2}); err != nil {
		t.Fatal(err)
	}
	db := NewDB(meta)

	rd := DatasetReq{Name: "in", AMode: "read", Dims: []int{1000}, Etype: 1,
		Pattern: "B", Location: "r", Frequency: 1, Procs: 1}
	// A read-only run on r must pay the read conn constants: one
	// whole-dataset call (1 s) + conn 5 + connClose 7 = 13 s.  The old
	// code charged the write pair (100 + 200) because RunReq.Op
	// defaulted to "write".
	got, err := db.Predict(RunReq{Iterations: 0, Datasets: []DatasetReq{rd}})
	if err != nil {
		t.Fatal(err)
	}
	if want := 13.0; math.Abs(got.Total.Seconds()-want) > 1e-6 {
		t.Fatalf("read-only run total = %v s, want %v (read conn constants)", got.Total.Seconds(), want)
	}
	// Setting Op explicitly must not change per-dataset conn pricing.
	got, err = db.Predict(RunReq{Iterations: 0, Op: "write", Datasets: []DatasetReq{rd}})
	if err != nil {
		t.Fatal(err)
	}
	if want := 13.0; math.Abs(got.Total.Seconds()-want) > 1e-6 {
		t.Fatalf("read-only run with Op=write total = %v s, want %v", got.Total.Seconds(), want)
	}

	// A mixed run pays both (resource, op) pairs exactly once each:
	// read 1 s + write 2 s + (5+7) + (100+200) = 315 s.
	wr := DatasetReq{Name: "out", AMode: "create", Dims: []int{1000}, Etype: 1,
		Pattern: "B", Location: "r", Frequency: 1, Procs: 1}
	got, err = db.Predict(RunReq{Iterations: 0, Datasets: []DatasetReq{rd, wr}})
	if err != nil {
		t.Fatal(err)
	}
	if want := 315.0; math.Abs(got.Total.Seconds()-want) > 1e-6 {
		t.Fatalf("mixed run total = %v s, want %v (one conn charge per (resource, op) pair)", got.Total.Seconds(), want)
	}
	// Two read datasets on the same resource still share one conn pair.
	rd2 := rd
	rd2.Name = "in2"
	got, err = db.Predict(RunReq{Iterations: 0, Datasets: []DatasetReq{rd, rd2}})
	if err != nil {
		t.Fatal(err)
	}
	if want := 14.0; math.Abs(got.Total.Seconds()-want) > 1e-6 {
		t.Fatalf("two-reader run total = %v s, want %v (conn charged once)", got.Total.Seconds(), want)
	}
}
