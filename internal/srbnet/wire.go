// Wire protocol v3: hand-rolled length-prefixed binary framing.
//
// gob's reflection-driven codec was the per-frame tax on every hot
// path (and allocated a fresh []byte per payload).  v3 replaces it
// with fixed little-endian frames:
//
//	u32  body length (everything after this prefix; capped on decode)
//	u8   op (request) / err code (response)
//	u8   flags (chunked-body streaming)
//	...  fixed numeric fields, then length-prefixed variable sections,
//	     with the bulk Data payload always LAST so it can ride the
//	     writev as its own iovec without being copied into the frame.
//
// Frame buffers, request structs and response structs are all
// sync.Pool-recycled, so the steady-state opRead/opWrite/opReadV/
// opWriteV encode+decode path allocates nothing (pinned by
// TestHotFrameCodecZeroAlloc).  Writers coalesce queued frames into a
// single net.Buffers writev; readers hand out subslices of the pooled
// frame, and the consumer releases the frame once the bytes are copied
// out.
//
// A frame whose declared body length exceeds the configurable cap is
// rejected before any allocation, so a corrupt or hostile length
// prefix cannot OOM either side — it poisons the connection exactly
// like a desynced gob stream did.
package srbnet

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/storage"
	"time"
)

// Wire v3 limits; see WithMaxFrame / WithChunkBytes and the server
// options of the same names.
const (
	// DefaultMaxFrame caps the declared body length of one decoded
	// frame (and the byte count of one opRead/opReadV response).
	DefaultMaxFrame = 64 << 20
	// DefaultChunkBytes is the streaming chunk size above which
	// opPutFile/opGetFile bodies travel as a sequence of bounded
	// chunk frames instead of one whole-file message.
	DefaultChunkBytes = 256 << 10
	// frameRetainBytes bounds the capacity of buffers returned to the
	// frame pool, so one giant transfer can't pin memory forever.
	frameRetainBytes = 1 << 20
)

// wireMagic is written by a v3 client immediately after dialing.  The
// server sniffs it to pick the codec per connection: a gob stream's
// first byte is a uvarint message length whose multi-byte form starts
// at 0xF8, so 0xF5 can never open a valid gob stream.
var wireMagic = [4]byte{0xF5, 'S', 'R', '3'}

// Frame flags.
const (
	// flagChunked marks a frame that belongs to a chunked body stream
	// (the first opPutFile frame, every opChunk frame, and every
	// chunked opGetFile response frame).
	flagChunked uint8 = 1 << 0
	// flagLast marks the final frame of a chunked stream.
	flagLast uint8 = 1 << 1
)

var (
	errFrameTooBig   = errors.New("srbnet: frame length exceeds cap")
	errFrameCorrupt  = errors.New("srbnet: corrupt frame")
	errStreamSevered = errors.New("srbnet: chunk stream severed")
)

// frameBuf is one pooled wire buffer.
type frameBuf struct{ b []byte }

var framePool = sync.Pool{New: func() any { return new(frameBuf) }}

func getFrame() *frameBuf {
	f := framePool.Get().(*frameBuf)
	f.b = f.b[:0]
	return f
}

func putFrame(f *frameBuf) {
	if f == nil || cap(f.b) > frameRetainBytes {
		return
	}
	framePool.Put(f)
}

// grow returns the buffer resized to exactly n bytes, reallocating
// only when the pooled capacity is too small.
func (f *frameBuf) grow(n int) []byte {
	if cap(f.b) < n {
		f.b = make([]byte, n)
	} else {
		f.b = f.b[:n]
	}
	return f.b
}

var (
	reqPool  = sync.Pool{New: func() any { return new(request) }}
	respPool = sync.Pool{New: func() any { return new(response) }}
)

func getRequest() *request {
	r := reqPool.Get().(*request)
	r.pooled = true
	return r
}

func putRequest(r *request) {
	if r == nil || !r.pooled {
		return
	}
	vecs := r.Vecs[:0]
	*r = request{}
	r.Vecs = vecs
	reqPool.Put(r)
}

// release returns the request and its backing frame to their pools.
func (req *request) release() {
	if req == nil {
		return
	}
	putFrame(req.frame)
	req.frame = nil
	putRequest(req)
}

func getResponse() *response {
	r := respPool.Get().(*response)
	r.pooled = true
	return r
}

func putResponse(r *response) {
	if r == nil || !r.pooled {
		return
	}
	vecs := r.Vecs[:0]
	infos := r.Infos[:0]
	*r = response{}
	r.Vecs = vecs
	r.Infos = infos
	respPool.Put(r)
}

// release returns the response, its backing frame, and its data buffer
// to their pools.  Safe on gob-decoded responses (no-op).
func (resp *response) release() {
	if resp == nil {
		return
	}
	putFrame(resp.frame)
	putFrame(resp.dbuf)
	resp.frame, resp.dbuf = nil, nil
	putResponse(resp)
}

// ownData returns response data the caller may keep: frame-backed
// slices are copied out (the frame is about to be recycled), while
// gob-decoded or assembled buffers are already heap-owned.
func (resp *response) ownData() []byte {
	if resp.frame == nil || len(resp.Data) == 0 {
		return resp.Data
	}
	return append([]byte(nil), resp.Data...)
}

// --- append-style encoders -------------------------------------------

func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }
func appendI64(b []byte, v int64) []byte  { return binary.LittleEndian.AppendUint64(b, uint64(v)) }

func appendStr(b []byte, s string) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}

func appendBlob(b, p []byte) []byte {
	b = appendU32(b, uint32(len(p)))
	return append(b, p...)
}

// encodeRequest appends req's v3 frame to f — everything except
// req.Data, which is returned for the caller to writev as the frame's
// trailing bytes (zero-copy for the bulk payload).
func encodeRequest(f *frameBuf, req *request) []byte {
	b := append(f.b, 0, 0, 0, 0) // length prefix, patched below
	b = append(b, byte(req.Op), req.Flags)
	b = appendU64(b, req.Tag)
	b = appendU64(b, req.Sess)
	b = appendU64(b, req.PID)
	b = appendI64(b, int64(req.Now))
	b = appendU64(b, req.Handle)
	b = appendI64(b, req.Off)
	b = appendI64(b, int64(req.N))
	b = appendI64(b, int64(req.Mode))
	b = appendStr(b, req.User)
	b = appendStr(b, req.Secret)
	b = appendStr(b, req.Resource)
	b = appendStr(b, req.Path)
	b = appendU32(b, uint32(len(req.Vecs)))
	for _, v := range req.Vecs {
		b = appendI64(b, v.Off)
		b = appendI64(b, int64(v.N))
		b = appendBlob(b, v.Data)
	}
	b = appendU32(b, uint32(len(req.Data)))
	binary.LittleEndian.PutUint32(b[:4], uint32(len(b)-4+len(req.Data)))
	f.b = b
	return req.Data
}

// encodeResponse is encodeRequest's mirror for server→client frames.
func encodeResponse(f *frameBuf, resp *response) []byte {
	b := append(f.b, 0, 0, 0, 0)
	b = append(b, byte(resp.Err), resp.Flags)
	b = appendU64(b, resp.Tag)
	b = appendI64(b, resp.RetryAfterNs)
	b = appendI64(b, int64(resp.Now))
	b = appendU64(b, resp.Sess)
	b = appendU64(b, resp.Handle)
	b = appendI64(b, int64(resp.N))
	b = appendI64(b, resp.Size)
	b = appendI64(b, resp.Off)
	b = appendStr(b, resp.ErrMsg)
	b = appendU32(b, uint32(len(resp.Vecs)))
	for _, v := range resp.Vecs {
		b = appendBlob(b, v)
	}
	b = appendStr(b, resp.Info.Path)
	b = appendI64(b, resp.Info.Size)
	b = appendU32(b, uint32(len(resp.Infos)))
	for _, fi := range resp.Infos {
		b = appendStr(b, fi.Path)
		b = appendI64(b, fi.Size)
	}
	b = appendU32(b, uint32(len(resp.Data)))
	binary.LittleEndian.PutUint32(b[:4], uint32(len(b)-4+len(resp.Data)))
	f.b = b
	return resp.Data
}

// --- cursor decoder ---------------------------------------------------

// wr is a bounds-checked little-endian cursor over one frame body.
// Every accessor degrades to zero values once a bound is crossed; the
// caller checks ok exactly once at the end.
type wr struct {
	b   []byte
	off int
	ok  bool
}

func (r *wr) need(n int) []byte {
	if !r.ok || n < 0 || len(r.b)-r.off < n {
		r.ok = false
		return nil
	}
	s := r.b[r.off : r.off+n]
	r.off += n
	return s
}

func (r *wr) u8() uint8 {
	s := r.need(1)
	if s == nil {
		return 0
	}
	return s[0]
}

func (r *wr) u32() uint32 {
	s := r.need(4)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(s)
}

func (r *wr) u64() uint64 {
	s := r.need(8)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(s)
}

func (r *wr) i64() int64 { return int64(r.u64()) }

// blob returns a length-prefixed section as a subslice of the frame —
// no copy, and a hostile length can never allocate because it is
// checked against the remaining body before use.
func (r *wr) blob() []byte {
	n := int(r.u32())
	if n == 0 {
		return nil
	}
	return r.need(n)
}

func (r *wr) str() string {
	b := r.blob()
	if len(b) == 0 {
		return ""
	}
	return string(b)
}

// decodeRequest parses one v3 frame body into req.  String and data
// sections alias body, so req must be released before the frame is.
func decodeRequest(body []byte, req *request) error {
	r := wr{b: body, ok: true}
	req.Op = opCode(r.u8())
	req.Flags = r.u8()
	req.Tag = r.u64()
	req.Sess = r.u64()
	req.PID = r.u64()
	req.Now = time.Duration(r.i64())
	req.Handle = r.u64()
	req.Off = r.i64()
	req.N = int(r.i64())
	req.Mode = storage.AMode(r.i64())
	req.User = r.str()
	req.Secret = r.str()
	req.Resource = r.str()
	req.Path = r.str()
	nv := int(r.u32())
	vecs := req.Vecs[:0]
	for i := 0; i < nv && r.ok; i++ {
		off := r.i64()
		n := int(r.i64())
		vecs = append(vecs, wireVec{Off: off, N: n, Data: r.blob()})
	}
	req.Vecs = vecs
	req.Data = r.blob()
	if !r.ok || r.off != len(body) {
		return errFrameCorrupt
	}
	return nil
}

// decodeResponse parses one v3 frame body into resp; the hot
// opRead/opWrite shape (no error, no vecs, no infos) allocates
// nothing.
func decodeResponse(body []byte, resp *response) error {
	r := wr{b: body, ok: true}
	resp.Err = errCode(r.u8())
	resp.Flags = r.u8()
	resp.Tag = r.u64()
	resp.RetryAfterNs = r.i64()
	resp.Now = time.Duration(r.i64())
	resp.Sess = r.u64()
	resp.Handle = r.u64()
	resp.N = int(r.i64())
	resp.Size = r.i64()
	resp.Off = r.i64()
	resp.ErrMsg = r.str()
	nv := int(r.u32())
	vecs := resp.Vecs[:0]
	for i := 0; i < nv && r.ok; i++ {
		vecs = append(vecs, r.blob())
	}
	resp.Vecs = vecs
	resp.Info = storage.FileInfo{Path: r.str(), Size: r.i64()}
	ni := int(r.u32())
	infos := resp.Infos[:0]
	for i := 0; i < ni && r.ok; i++ {
		infos = append(infos, storage.FileInfo{Path: r.str(), Size: r.i64()})
	}
	resp.Infos = infos
	resp.Data = r.blob()
	if !r.ok || r.off != len(body) {
		return errFrameCorrupt
	}
	return nil
}

// readFrame reads one length-prefixed frame body into a pooled buffer.
// The declared length is checked against max BEFORE any allocation, so
// a malicious prefix cannot OOM the reader.
func readFrame(br *bufio.Reader, max int) (*frameBuf, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	n := int(binary.LittleEndian.Uint32(hdr[:]))
	if n > max {
		return nil, fmt.Errorf("%w: declared %d > cap %d", errFrameTooBig, n, max)
	}
	f := getFrame()
	if _, err := io.ReadFull(br, f.grow(n)); err != nil {
		putFrame(f)
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF // a truncated frame is corruption, not a clean close
		}
		return nil, err
	}
	return f, nil
}

// waiterPool recycles the per-call response channels.  Capacity 4
// lets a chunked opGetFile stream stay a few frames ahead of the
// consumer without stalling the connection's read loop.
var waiterPool = sync.Pool{New: func() any { return make(chan *response, 4) }}

func getWaiter() chan *response { return waiterPool.Get().(chan *response) }

// putWaiter returns a channel to the pool.  Only channels whose final
// response was delivered may be pooled — a channel that was ever
// registered when mux.fail ran has been closed and must be dropped.
func putWaiter(ch chan *response) {
	if len(ch) == 0 {
		waiterPool.Put(ch)
	}
}
