package srbnet

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/localdisk"
	"repro/internal/memfs"
	"repro/internal/model"
	"repro/internal/remotedisk"
	"repro/internal/srb"
	"repro/internal/storage"
	"repro/internal/vtime"
)

// newServer starts a broker with one remote-disk resource and returns a
// matching client.
func newServer(t *testing.T, sim *vtime.Sim) (*Server, *Client) {
	t.Helper()
	broker := srb.NewBroker()
	be, err := remotedisk.New("sdsc-disk", memfs.New())
	if err != nil {
		t.Fatal(err)
	}
	if err := broker.Register(be); err != nil {
		t.Fatal(err)
	}
	broker.AddUser("shen", "nwu")
	srv, err := Serve("127.0.0.1:0", broker, sim)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetLogf(func(string, ...any) {})
	t.Cleanup(func() { srv.Close() })
	return srv, NewClient(srv.Addr(), "shen", "nwu", "sdsc-disk", storage.KindRemoteDisk)
}

func TestRoundTripOverTCP(t *testing.T) {
	sim := vtime.NewVirtual()
	_, client := newServer(t, sim)
	p := sim.NewProc("p")

	sess, err := client.Connect(p)
	if err != nil {
		t.Fatal(err)
	}
	h, err := sess.Open(p, "wire/file", storage.ModeCreate)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("net"), 1000)
	if n, err := h.WriteAt(p, payload, 0); n != len(payload) || err != nil {
		t.Fatalf("write = (%d, %v)", n, err)
	}
	if h.Size() != int64(len(payload)) {
		t.Fatalf("size = %d", h.Size())
	}
	got := make([]byte, len(payload))
	if _, err := h.ReadAt(p, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload corrupted over the wire")
	}
	if err := h.Close(p); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(p); err != nil {
		t.Fatal(err)
	}
}

func TestVirtualTimeCrossesWire(t *testing.T) {
	sim := vtime.NewVirtual()
	_, client := newServer(t, sim)
	p := sim.NewProc("p")
	sess, err := client.Connect(p)
	if err != nil {
		t.Fatal(err)
	}
	afterConn := p.Now()
	if afterConn < model.RemoteDisk2000().Conn {
		t.Fatalf("client clock after connect = %v, want >= %v", afterConn, model.RemoteDisk2000().Conn)
	}
	h, _ := sess.Open(p, "f", storage.ModeCreate)
	before := p.Now()
	h.WriteAt(p, make([]byte, model.MiB), 0)
	cost := p.Now() - before
	want := model.RemoteDisk2000().Xfer(model.Write, model.MiB)
	if cost != want {
		t.Fatalf("remote write charged %v over the wire, want %v", cost, want)
	}
}

func TestAuthFailure(t *testing.T) {
	sim := vtime.NewVirtual()
	srv, _ := newServer(t, sim)
	bad := NewClient(srv.Addr(), "shen", "wrong", "sdsc-disk", storage.KindRemoteDisk)
	p := sim.NewProc("p")
	if _, err := bad.Connect(p); !errors.Is(err, srb.ErrAuth) {
		t.Fatalf("bad auth err = %v, want srb.ErrAuth", err)
	}
}

func TestUnknownResource(t *testing.T) {
	sim := vtime.NewVirtual()
	srv, _ := newServer(t, sim)
	c := NewClient(srv.Addr(), "shen", "nwu", "nowhere", storage.KindRemoteDisk)
	p := sim.NewProc("p")
	if _, err := c.Connect(p); !errors.Is(err, srb.ErrNoResource) {
		t.Fatalf("unknown resource err = %v", err)
	}
}

func TestErrorSentinelsCrossWire(t *testing.T) {
	sim := vtime.NewVirtual()
	_, client := newServer(t, sim)
	p := sim.NewProc("p")
	sess, _ := client.Connect(p)
	if _, err := sess.Open(p, "missing", storage.ModeRead); !errors.Is(err, storage.ErrNotExist) {
		t.Fatalf("remote ErrNotExist lost: %v", err)
	}
	h, _ := sess.Open(p, "f", storage.ModeCreate)
	h.Close(p)
	if _, err := sess.Open(p, "f", storage.ModeCreate); !errors.Is(err, storage.ErrExist) {
		t.Fatalf("remote ErrExist lost: %v", err)
	}
	r, _ := sess.Open(p, "f", storage.ModeRead)
	if _, err := r.WriteAt(p, []byte{1}, 0); !errors.Is(err, storage.ErrReadOnly) {
		t.Fatalf("remote ErrReadOnly lost: %v", err)
	}
	if err := sess.Remove(p, "missing"); !errors.Is(err, storage.ErrNotExist) {
		t.Fatalf("remote remove error lost: %v", err)
	}
}

func TestStatAndList(t *testing.T) {
	sim := vtime.NewVirtual()
	_, client := newServer(t, sim)
	p := sim.NewProc("p")
	sess, _ := client.Connect(p)
	for _, name := range []string{"d/a", "d/b"} {
		h, err := sess.Open(p, name, storage.ModeCreate)
		if err != nil {
			t.Fatal(err)
		}
		h.WriteAt(p, []byte("xyz"), 0)
		h.Close(p)
	}
	fi, err := sess.Stat(p, "d/a")
	if err != nil || fi.Size != 3 {
		t.Fatalf("Stat = %+v, %v", fi, err)
	}
	ls, err := sess.List(p, "d/")
	if err != nil || len(ls) != 2 {
		t.Fatalf("List = %v, %v", ls, err)
	}
}

func TestTwoClientsContendOnServerDevices(t *testing.T) {
	// Two clients writing through TCP must still queue on the single WAN
	// channel of the server-side remote disk.
	sim := vtime.NewVirtual()
	broker := srb.NewBroker()
	be, err := remotedisk.New("wan", memfs.New(),
		remotedisk.WithParams(model.Params{Name: "wan", WriteBW: model.MiB}))
	if err != nil {
		t.Fatal(err)
	}
	broker.Register(be)
	broker.AddUser("u", "s")
	srv, err := Serve("127.0.0.1:0", broker, sim)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.SetLogf(func(string, ...any) {})

	var wg sync.WaitGroup
	times := make([]time.Duration, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := NewClient(srv.Addr(), "u", "s", "wan", storage.KindRemoteDisk)
			p := sim.NewProc("p")
			sess, err := c.Connect(p)
			if err != nil {
				t.Error(err)
				return
			}
			h, err := sess.Open(p, "f"+string(rune('0'+i)), storage.ModeCreate)
			if err != nil {
				t.Error(err)
				return
			}
			h.WriteAt(p, make([]byte, model.MiB), 0)
			times[i] = p.Now()
		}(i)
	}
	wg.Wait()
	max := times[0]
	if times[1] > max {
		max = times[1]
	}
	if max != 2*time.Second {
		t.Fatalf("two TCP clients finished at %v, want 2s (serialized on WAN)", max)
	}
}

func TestLocalDiskOverTCP(t *testing.T) {
	// The uniform interface: a local-disk resource served through the
	// broker behaves identically over the wire.
	sim := vtime.NewVirtual()
	broker := srb.NewBroker()
	be, _ := localdisk.New("disk", memfs.New())
	broker.Register(be)
	broker.AddUser("u", "s")
	srv, err := Serve("127.0.0.1:0", broker, sim)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := NewClient(srv.Addr(), "u", "s", "disk", storage.KindLocalDisk)
	if c.Kind() != storage.KindLocalDisk {
		t.Fatalf("kind = %v", c.Kind())
	}
	p := sim.NewProc("p")
	sess, err := c.Connect(p)
	if err != nil {
		t.Fatal(err)
	}
	h, err := sess.Open(p, "x", storage.ModeCreate)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.WriteAt(p, []byte("ld"), 0); err != nil {
		t.Fatal(err)
	}
	h.Close(p)
	sess.Close(p)
}

func TestServerCloseIdempotent(t *testing.T) {
	sim := vtime.NewVirtual()
	srv, _ := newServer(t, sim)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second close = %v", err)
	}
}

func TestLargeTransferOverTCP(t *testing.T) {
	// An 8 MiB dataset dump crosses the wire in one logical call and
	// charges the correct virtual cost.
	sim := vtime.NewVirtual()
	_, client := newServer(t, sim)
	p := sim.NewProc("p")
	sess, err := client.Connect(p)
	if err != nil {
		t.Fatal(err)
	}
	h, err := sess.Open(p, "big", storage.ModeCreate)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 8*model.MiB)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	before := p.Now()
	if n, err := h.WriteAt(p, payload, 0); n != len(payload) || err != nil {
		t.Fatalf("write = (%d, %v)", n, err)
	}
	want := model.RemoteDisk2000().Xfer(model.Write, 8*model.MiB)
	if got := p.Now() - before; got != want {
		t.Fatalf("8 MiB write cost %v over wire, want %v", got, want)
	}
	got := make([]byte, len(payload))
	if _, err := h.ReadAt(p, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("8 MiB payload corrupted")
	}
}

func TestManyConcurrentClients(t *testing.T) {
	sim := vtime.NewVirtual()
	srv, _ := newServer(t, sim)
	const n = 16
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := NewClient(srv.Addr(), "shen", "nwu", "sdsc-disk", storage.KindRemoteDisk)
			p := sim.NewProc(fmt.Sprintf("c%d", i))
			sess, err := c.Connect(p)
			if err != nil {
				errs[i] = err
				return
			}
			h, err := sess.Open(p, fmt.Sprintf("f%02d", i), storage.ModeCreate)
			if err != nil {
				errs[i] = err
				return
			}
			if _, err := h.WriteAt(p, []byte{byte(i)}, 0); err != nil {
				errs[i] = err
				return
			}
			if err := h.Close(p); err != nil {
				errs[i] = err
				return
			}
			errs[i] = sess.Close(p)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
}
