package srbnet

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"time"

	"repro/internal/qos"
	"repro/internal/resilient"
	"repro/internal/srb"
	"repro/internal/storage"
	"repro/internal/vtime"
)

// Server exposes an srb.Broker over TCP.  Connections are pure frame
// carriers: requests on one connection are handled concurrently, each
// response is routed back by its tag, and sessions live in a
// server-wide registry addressed by wire id, so any pooled connection
// can carry any session's traffic.
//
// Each connection picks its codec on arrival: a wire-v3 client opens
// with the 4-byte magic preamble and gets the binary framing path
// (pooled buffers, writev-coalesced responses, chunk-streamed bodies);
// anything else is served as a gob stream, so WithWireV2/WithSerialized
// clients keep working against the same listener.
type Server struct {
	broker *srb.Broker
	sim    *vtime.Sim
	lis    net.Listener
	logf   func(format string, args ...any)
	sched  *qos.Scheduler
	router ShardRouter

	maxFrame   int
	chunkBytes int

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup

	sessMu   sync.Mutex
	sessions map[uint64]*srvSession
	nextSess uint64
}

// ServerOption configures Serve.
type ServerOption func(*Server)

// WithScheduler routes every data-plane opcode (open, read, write,
// vectored and whole-file transfers) through the given qos scheduler:
// admission control may shed the request with ErrOverload (the
// honor-after hint crosses the wire), and granted requests run in the
// scheduler's order, so device time is charged fairly across tenants.
// Control-plane opcodes (connect, close, stat, list, remove) bypass
// the queue.  Without this option the server keeps its greedy
// arrival-order behaviour — the ablation baseline.
//
// The scheduler is not owned by the server: close it (qos.Scheduler
// Close fails queued requests) before waiting on Server.Close if
// requests may still be queued, and share it across servers freely.
func WithScheduler(sched *qos.Scheduler) ServerOption {
	return func(s *Server) { s.sched = sched }
}

// ShardRouter decides whether this broker owns a path's namespace
// shard.  Route returns ok=true when the path is local; otherwise it
// returns the owning broker's address, which the server sends back as
// an errWrongShard redirect.  now is the requesting rank's virtual
// clock, so a routing miss observed after a leader death can drive the
// cluster's lease-lapse failover.  cluster.Node implements this.
type ShardRouter interface {
	Route(now time.Duration, path string) (addr string, ok bool)
}

// WithShardRouter attaches cluster shard routing: every path-addressed
// opcode (open, stat, list, remove, whole-file transfers) is checked
// against the router before admission, and foreign paths are refused
// with a redirect naming the owner.  Handle-addressed I/O is not
// checked — a handle lives on the broker that opened it.
func WithShardRouter(r ShardRouter) ServerOption {
	return func(s *Server) { s.router = r }
}

// WithServerMaxFrame caps the declared body length the server accepts
// for one inbound v3 frame, and bounds the buffer one opRead/opReadV/
// opGetFile response may pin.  A frame over the cap is rejected before
// any allocation and poisons the connection.  Default DefaultMaxFrame.
func WithServerMaxFrame(n int) ServerOption {
	return func(s *Server) {
		if n > 0 {
			s.maxFrame = n
		}
	}
}

// WithServerChunkBytes sets the streaming threshold and chunk size for
// v3 opGetFile responses: a file larger than this leaves the server as
// a sequence of bounded chunk frames.  Default DefaultChunkBytes.
func WithServerChunkBytes(n int) ServerOption {
	return func(s *Server) {
		if n > 0 {
			s.chunkBytes = n
		}
	}
}

// Serve starts a server on addr ("127.0.0.1:0" picks a free port) using
// the given Sim for server-side clocks.  It returns once the listener is
// ready; Close stops it.
func Serve(addr string, broker *srb.Broker, sim *vtime.Sim, opts ...ServerOption) (*Server, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("srbnet: listen %s: %w", addr, err)
	}
	s := &Server{
		broker:     broker,
		sim:        sim,
		lis:        lis,
		logf:       log.Printf,
		maxFrame:   DefaultMaxFrame,
		chunkBytes: DefaultChunkBytes,
		conns:      make(map[net.Conn]struct{}),
		sessions:   make(map[uint64]*srvSession),
	}
	for _, opt := range opts {
		opt(s)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener address (useful with port 0).
func (s *Server) Addr() string { return s.lis.Addr().String() }

// SetLogf replaces the server's log function (tests silence it).
func (s *Server) SetLogf(f func(format string, args ...any)) { s.logf = f }

// Close stops the listener and all connections, then waits for the
// per-connection goroutines to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.lis.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// srvSession is one broker session in the server-wide registry.  Each
// client rank (wire PID) gets its own server-side Proc, mirroring the
// in-process arrangement where every rank carries its own clock — this
// keeps per-process device state (seek locality) faithful even when
// many ranks share one wire session.
type srvSession struct {
	id uint64

	// user, resource and class identify the tenant and target for the
	// qos scheduler; set once at connect, immutable afterwards.
	user     string
	resource string
	class    string

	mu      sync.Mutex
	sess    storage.Session
	handles map[uint64]storage.Handle
	nextH   uint64
	procs   map[uint64]*vtime.Proc
	closed  bool
}

// proc returns the session's clock for the given rank, creating it on
// first use.
func (ss *srvSession) proc(sim *vtime.Sim, pid uint64) *vtime.Proc {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	p := ss.procs[pid]
	if p == nil {
		p = sim.NewProc(fmt.Sprintf("srbnet/s%d/p%d", ss.id, pid))
		ss.procs[pid] = p
	}
	return p
}

func (ss *srvSession) handle(id uint64) (storage.Handle, bool) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.closed {
		return nil, false
	}
	h, ok := ss.handles[id]
	return h, ok
}

// connWriter gives handlers on one v3 connection access to its response
// queue, so a chunk-streamed opGetFile can push data frames ahead of
// its final response.  nil on gob connections.
type connWriter struct {
	respq chan *response
}

// serveConn owns one TCP connection: it sniffs the codec preamble and
// hands off to the matching serve loop.
func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()

	br := bufio.NewReader(conn)
	magic, err := br.Peek(len(wireMagic))
	if err != nil {
		if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
			s.logf("srbnet: preamble from %s: %v", conn.RemoteAddr(), err)
		}
		return
	}
	if bytes.Equal(magic, wireMagic[:]) {
		br.Discard(len(wireMagic))
		s.serveConnV3(conn, br)
		return
	}
	s.serveConnGob(conn, br)
}

// serveConnGob is the wire-v2 serve loop.  A decode loop dispatches
// each request to its own handler goroutine; a single writer goroutine
// encodes responses in completion order, flushing the buffered writer
// whenever the queue drains so that pipelined bursts coalesce into few
// syscalls while a lone request still departs immediately.
func (s *Server) serveConnGob(conn net.Conn, br *bufio.Reader) {
	respq := make(chan *response, 64)
	var wwg sync.WaitGroup
	wwg.Add(1)
	go func() {
		defer wwg.Done()
		bw := bufio.NewWriter(conn)
		enc := gob.NewEncoder(bw)
		broken := false
		for resp := range respq {
			if broken {
				continue // drain so handlers never block
			}
			if err := enc.Encode(resp); err != nil {
				s.logf("srbnet: encode to %s: %v", conn.RemoteAddr(), err)
				broken = true
				conn.Close()
				continue
			}
			if len(respq) == 0 {
				if err := bw.Flush(); err != nil {
					broken = true
					conn.Close()
				}
			}
		}
		if !broken {
			bw.Flush()
		}
	}()

	dec := gob.NewDecoder(br)
	var hwg sync.WaitGroup
	for {
		req := new(request)
		if err := dec.Decode(req); err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.logf("srbnet: decode from %s: %v", conn.RemoteAddr(), err)
			}
			break
		}
		hwg.Add(1)
		go func() {
			defer hwg.Done()
			respq <- s.handle(req, nil)
		}()
	}
	hwg.Wait()
	close(respq)
	wwg.Wait()
}

// serveConnV3 is the wire-v3 serve loop.  The decode loop reads pooled
// frames and dispatches each request to its own handler goroutine;
// opChunk continuation frames are routed to their stream's channel
// instead (owned by the streamed-put handler).  Any frame error — a
// truncated read, a length over the cap, a corrupt body, a chunk for an
// unknown stream — poisons the whole connection, exactly as a desynced
// gob stream did.
func (s *Server) serveConnV3(conn net.Conn, br *bufio.Reader) {
	respq := make(chan *response, 64)
	var wwg sync.WaitGroup
	wwg.Add(1)
	go func() {
		defer wwg.Done()
		s.writeLoopV3(conn, respq)
	}()

	wc := &connWriter{respq: respq}
	var hwg sync.WaitGroup
	streams := make(map[uint64]chan *request)
	for {
		f, err := readFrame(br, s.maxFrame)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.logf("srbnet: read frame from %s: %v", conn.RemoteAddr(), err)
			}
			break
		}
		req := getRequest()
		if err := decodeRequest(f.b, req); err != nil {
			putFrame(f)
			putRequest(req)
			s.logf("srbnet: corrupt frame from %s: %v", conn.RemoteAddr(), err)
			break
		}
		req.frame = f
		if req.Op == opChunk {
			// Snapshot routing fields before the send: the streaming
			// handler may consume and release (zero) the request the
			// moment it lands on the channel.
			tag := req.Tag
			last := req.Flags&flagLast != 0
			st, ok := streams[tag]
			if !ok {
				s.logf("srbnet: chunk for unknown stream from %s (tag %d)", conn.RemoteAddr(), tag)
				req.release()
				break
			}
			st <- req // ownership moves to the streaming handler
			if last {
				delete(streams, tag)
			}
			continue
		}
		if req.Op == opPutFile && req.Flags&flagChunked != 0 {
			st := make(chan *request, 4)
			req.stream = st
			streams[req.Tag] = st
		}
		hwg.Add(1)
		go func() {
			defer hwg.Done()
			respq <- s.handle(req, wc)
			req.release()
		}()
	}
	conn.Close()
	// Unblock any streaming handler still waiting on chunk frames: a
	// closed stream reads as errStreamSevered.
	for _, st := range streams {
		close(st)
	}
	hwg.Wait()
	close(respq)
	wwg.Wait()
}

// writeLoopV3 is the v3 connection's only encoder.  Queued responses
// are encoded into pooled frame buffers and coalesced into one
// vectored write (net.Buffers → writev), with each response's bulk
// Data riding as its own iovec.  Frames, data buffers and response
// structs all return to their pools once the writev lands.
func (s *Server) writeLoopV3(conn net.Conn, respq chan *response) {
	var iov [][]byte
	var metas []*frameBuf
	var done []*response
	broken := false
	for resp := range respq {
		if broken {
			resp.release() // drain so handlers never block
			continue
		}
		iov, metas, done = iov[:0], metas[:0], done[:0]
		for resp != nil {
			f := getFrame()
			data := encodeResponse(f, resp)
			iov = append(iov, f.b)
			if len(data) > 0 {
				iov = append(iov, data)
			}
			metas = append(metas, f)
			done = append(done, resp)
			select {
			case r, ok := <-respq:
				if !ok {
					resp = nil
				} else {
					resp = r
				}
			default:
				resp = nil
			}
		}
		bufs := net.Buffers(iov)
		_, err := bufs.WriteTo(conn)
		for _, f := range metas {
			putFrame(f)
		}
		for _, r := range done {
			r.release()
		}
		if err != nil {
			s.logf("srbnet: write to %s: %v", conn.RemoteAddr(), err)
			broken = true
			conn.Close()
		}
	}
}

// drainStream consumes chunk frames up to the stream's final frame (or
// the connection's death), so a shed or failed streamed put never
// wedges the connection's decode loop behind a full stream buffer.
func drainStream(st chan *request) {
	if st == nil {
		return
	}
	for creq := range st {
		last := creq.Flags&flagLast != 0
		creq.release()
		if last {
			return
		}
	}
}

// lookup finds the addressed session, or nil if it was never created or
// is already closed.
func (s *Server) lookup(id uint64) *srvSession {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	return s.sessions[id]
}

// handle executes one request.  The serving rank's clock is first
// pushed forward to the client's clock so device contention is charged
// at the right instant.  With a scheduler attached, data-plane opcodes
// first pass admission control and then wait for their grant, so the
// device acquisitions inside execute happen in scheduler order.  On a
// v3 connection (wc != nil) the response struct and its data buffers
// come from the pools; the writer releases them after the writev.
func (s *Server) handle(req *request, wc *connWriter) *response {
	var resp *response
	if wc != nil {
		resp = getResponse()
	} else {
		resp = new(response)
	}
	resp.Tag = req.Tag
	if req.Op == opConnect {
		return s.handleConnect(req, resp)
	}
	ss := s.lookup(req.Sess)
	if ss == nil {
		drainStream(req.stream)
		req.stream = nil
		resp.Err, resp.ErrMsg = encodeErr(fmt.Errorf("srbnet: no session %d: %w", req.Sess, storage.ErrClosed))
		resp.Now = req.Now
		return resp
	}
	proc := ss.proc(s.sim, req.PID)
	proc.AdvanceTo(req.Now)
	if s.router != nil && pathRouted(req.Op) {
		if addr, ok := s.router.Route(proc.Now(), req.Path); !ok {
			// A redirected streamed put still has chunk frames
			// inbound; consume them so the connection stays framed.
			drainStream(req.stream)
			req.stream = nil
			resp.Err, resp.ErrMsg = encodeErr(&WrongShardError{Addr: addr})
			resp.Now = proc.Now()
			return resp
		}
	}
	if s.sched != nil {
		if q, ok := schedRequest(ss, req); ok {
			var out *response
			err := s.sched.Do(proc, q, func() error {
				out = s.execute(ss, proc, req, resp, wc)
				return nil
			})
			if err != nil {
				// The body never ran (shed or scheduler shutdown): a
				// streamed put's chunk frames are still inbound and
				// must be consumed on the handler's behalf.
				drainStream(req.stream)
				req.stream = nil
				resp.Err, resp.ErrMsg = encodeErr(err)
				if after, ok := resilient.RetryAfterOf(err); ok {
					resp.RetryAfterNs = int64(after)
				}
				resp.Now = proc.Now()
				return resp
			}
			return out
		}
	}
	return s.execute(ss, proc, req, resp, wc)
}

// pathRouted reports whether an opcode addresses the namespace by
// path and is therefore subject to shard routing.
func pathRouted(op opCode) bool {
	switch op {
	case opOpen, opStat, opList, opRemove, opPutFile, opGetFile:
		return true
	}
	return false
}

// schedRequest maps a wire request onto a qos.Request.  Only the
// data-plane opcodes are schedulable; session lifecycle and metadata
// ops return ok == false and run unqueued.
func schedRequest(ss *srvSession, req *request) (qos.Request, bool) {
	q := qos.Request{
		Tenant:  ss.user,
		Backend: ss.resource,
		Class:   ss.class,
		Path:    req.Path,
	}
	handlePath := func() {
		if h, ok := ss.handle(req.Handle); ok {
			q.Path = h.Path()
		}
	}
	switch req.Op {
	case opOpen:
		if req.Mode == storage.ModeRead {
			q.Op = "read"
		} else {
			q.Op = "write"
		}
	case opRead:
		q.Op, q.Bytes = "read", int64(req.N)
		handlePath()
	case opReadV:
		q.Op = "read"
		for _, v := range req.Vecs {
			q.Bytes += int64(v.N)
		}
		handlePath()
	case opWrite:
		q.Op, q.Bytes = "write", int64(len(req.Data))
		handlePath()
	case opWriteV:
		q.Op = "write"
		for _, v := range req.Vecs {
			q.Bytes += int64(len(v.Data))
		}
		handlePath()
	case opGetFile:
		q.Op = "read" // size unknown until opened
	case opPutFile:
		// A chunked put carries only the first chunk in this frame;
		// req.N declares the whole body, so admission prices the full
		// transfer.
		q.Op, q.Bytes = "write", int64(len(req.Data))
		if int64(req.N) > q.Bytes {
			q.Bytes = int64(req.N)
		}
	default:
		return qos.Request{}, false
	}
	return q, true
}

// execute runs one already-admitted request against the session.
func (s *Server) execute(ss *srvSession, proc *vtime.Proc, req *request, resp *response, wc *connWriter) *response {
	fail := func(err error) *response {
		resp.Err, resp.ErrMsg = encodeErr(err)
		resp.Now = proc.Now()
		return resp
	}

	switch req.Op {
	case opCloseSession:
		ss.mu.Lock()
		if ss.closed {
			ss.mu.Unlock()
			return fail(storage.ErrClosed)
		}
		ss.closed = true
		ss.mu.Unlock()
		s.sessMu.Lock()
		delete(s.sessions, ss.id)
		s.sessMu.Unlock()
		if err := ss.sess.Close(proc); err != nil {
			return fail(err)
		}
	case opOpen:
		h, err := ss.sess.Open(proc, req.Path, req.Mode)
		if err != nil {
			return fail(err)
		}
		ss.mu.Lock()
		ss.nextH++
		id := ss.nextH
		ss.handles[id] = h
		ss.mu.Unlock()
		resp.Handle = id
		resp.Size = h.Size()
	case opRead:
		h, ok := ss.handle(req.Handle)
		if !ok {
			return fail(storage.ErrClosed)
		}
		if req.N < 0 || req.N > s.maxFrame {
			return fail(fmt.Errorf("srbnet: read of %d bytes exceeds frame cap %d", req.N, s.maxFrame))
		}
		var buf []byte
		if wc != nil {
			resp.dbuf = getFrame()
			buf = resp.dbuf.grow(req.N)
		} else {
			buf = make([]byte, req.N)
		}
		n, err := h.ReadAt(proc, buf, req.Off)
		resp.N = n
		resp.Data = buf[:n]
		resp.Size = h.Size()
		if err != nil && !errors.Is(err, io.EOF) {
			return fail(err)
		}
		// EOF is signalled in-band: N < requested with no error code.
	case opWrite:
		h, ok := ss.handle(req.Handle)
		if !ok {
			return fail(storage.ErrClosed)
		}
		n, err := h.WriteAt(proc, req.Data, req.Off)
		resp.N = n
		resp.Size = h.Size()
		if err != nil {
			return fail(err)
		}
	case opReadV:
		h, ok := ss.handle(req.Handle)
		if !ok {
			return fail(storage.ErrClosed)
		}
		total := 0
		for _, v := range req.Vecs {
			if v.N < 0 {
				return fail(fmt.Errorf("srbnet: negative vectored read length"))
			}
			total += v.N
		}
		if total > s.maxFrame {
			return fail(fmt.Errorf("srbnet: vectored read of %d bytes exceeds frame cap %d", total, s.maxFrame))
		}
		var base []byte
		if wc != nil {
			resp.dbuf = getFrame()
			base = resp.dbuf.grow(total)
		}
		used := 0
		vecs := resp.Vecs[:0]
		for _, v := range req.Vecs {
			var buf []byte
			if base != nil {
				buf = base[used : used+v.N]
			} else {
				buf = make([]byte, v.N)
			}
			used += v.N
			n, err := h.ReadAt(proc, buf, v.Off)
			vecs = append(vecs, buf[:n])
			resp.N += n
			if err != nil && !errors.Is(err, io.EOF) {
				resp.Vecs = vecs
				return fail(err)
			}
		}
		resp.Vecs = vecs
		resp.Size = h.Size()
	case opWriteV:
		h, ok := ss.handle(req.Handle)
		if !ok {
			return fail(storage.ErrClosed)
		}
		for _, v := range req.Vecs {
			n, err := h.WriteAt(proc, v.Data, v.Off)
			resp.N += n
			if err != nil {
				return fail(err)
			}
		}
		resp.Size = h.Size()
	case opPutFile:
		if req.stream != nil {
			return s.executePutStream(ss, proc, req, resp)
		}
		h, err := ss.sess.Open(proc, req.Path, req.Mode)
		if err != nil {
			return fail(err)
		}
		if _, err := h.WriteAt(proc, req.Data, 0); err != nil {
			h.Close(proc)
			return fail(err)
		}
		resp.Size = h.Size()
		if err := h.Close(proc); err != nil {
			return fail(err)
		}
	case opGetFile:
		h, err := ss.sess.Open(proc, req.Path, storage.ModeRead)
		if err != nil {
			return fail(err)
		}
		size := h.Size()
		if wc != nil && size > int64(s.chunkBytes) {
			return s.streamGetFile(proc, req, resp, h, size, wc)
		}
		if size > int64(s.maxFrame) {
			h.Close(proc)
			return fail(fmt.Errorf("srbnet: file %q (%d bytes) exceeds frame cap %d", req.Path, size, s.maxFrame))
		}
		var buf []byte
		if wc != nil {
			resp.dbuf = getFrame()
			buf = resp.dbuf.grow(int(size))
		} else {
			buf = make([]byte, size)
		}
		n, err := h.ReadAt(proc, buf, 0)
		if err != nil && !errors.Is(err, io.EOF) {
			h.Close(proc)
			return fail(err)
		}
		resp.Data = buf[:n]
		resp.Size = h.Size()
		if err := h.Close(proc); err != nil {
			return fail(err)
		}
	case opStat:
		fi, err := ss.sess.Stat(proc, req.Path)
		if err != nil {
			return fail(err)
		}
		resp.Info = fi
	case opList:
		fis, err := ss.sess.List(proc, req.Path)
		if err != nil {
			return fail(err)
		}
		resp.Infos = fis
	case opRemove:
		if err := ss.sess.Remove(proc, req.Path); err != nil {
			return fail(err)
		}
	case opCloseHandle:
		ss.mu.Lock()
		h, ok := ss.handles[req.Handle]
		delete(ss.handles, req.Handle)
		ss.mu.Unlock()
		if !ok {
			return fail(storage.ErrClosed)
		}
		if err := h.Close(proc); err != nil {
			return fail(err)
		}
	default:
		return fail(fmt.Errorf("srbnet: unknown op %d", req.Op))
	}
	resp.Now = proc.Now()
	return resp
}

// executePutStream runs one chunk-streamed opPutFile: the head frame
// carries the first chunk and the declared total, the rest arrive on
// req.stream as opChunk frames.  Each chunk is written at its declared
// offset and released immediately, so peak memory is one chunk — never
// the whole file.  Every exit path drains the stream to its final
// frame so the connection's decode loop cannot wedge.
func (s *Server) executePutStream(ss *srvSession, proc *vtime.Proc, req *request, resp *response) *response {
	finish := func(err error) *response {
		drainStream(req.stream)
		req.stream = nil
		if err != nil {
			resp.Err, resp.ErrMsg = encodeErr(err)
		}
		resp.Now = proc.Now()
		return resp
	}
	h, err := ss.sess.Open(proc, req.Path, req.Mode)
	if err != nil {
		return finish(err)
	}
	if _, err := h.WriteAt(proc, req.Data, 0); err != nil {
		h.Close(proc)
		return finish(err)
	}
	done := req.Flags&flagLast != 0
	for !done {
		creq, ok := <-req.stream
		if !ok {
			req.stream = nil // connection died; nothing left to drain
			h.Close(proc)
			return finish(errStreamSevered)
		}
		done = creq.Flags&flagLast != 0
		_, werr := h.WriteAt(proc, creq.Data, creq.Off)
		creq.release()
		if werr != nil {
			h.Close(proc)
			return finish(werr)
		}
	}
	req.stream = nil // fully consumed
	resp.Size = h.Size()
	if err := h.Close(proc); err != nil {
		return finish(err)
	}
	return finish(nil)
}

// streamGetFile sends a large opGetFile body as bounded chunk frames:
// each carries Data at Off plus the total Size (the first one sizes
// the client's assembly buffer), and a final empty flagLast frame
// carries the completion time.  Chunk buffers come from the frame pool
// and are released by the connection writer after each writev, so peak
// server memory is a few chunks regardless of file size.
func (s *Server) streamGetFile(proc *vtime.Proc, req *request, resp *response, h storage.Handle, size int64, wc *connWriter) *response {
	failLast := func(err error) *response {
		resp.Err, resp.ErrMsg = encodeErr(err)
		resp.Flags = flagChunked | flagLast
		resp.Now = proc.Now()
		return resp
	}
	chunk := int64(s.chunkBytes)
	for off := int64(0); off < size; off += chunk {
		n := chunk
		if size-off < n {
			n = size - off
		}
		db := getFrame()
		buf := db.grow(int(n))
		rn, err := h.ReadAt(proc, buf, off)
		if err != nil && !errors.Is(err, io.EOF) {
			putFrame(db)
			h.Close(proc)
			return failLast(err)
		}
		if int64(rn) < n {
			putFrame(db)
			h.Close(proc)
			return failLast(fmt.Errorf("srbnet: short read streaming %q at %d", req.Path, off))
		}
		cf := getResponse()
		cf.Tag = req.Tag
		cf.Flags = flagChunked
		cf.Off = off
		cf.Size = size
		cf.Data = buf[:rn]
		cf.dbuf = db
		cf.Now = proc.Now()
		wc.respq <- cf
	}
	if err := h.Close(proc); err != nil {
		return failLast(err)
	}
	resp.Flags = flagChunked | flagLast
	resp.Size = size
	resp.Now = proc.Now()
	return resp
}

// handleConnect reserves a session id, authenticates against the broker
// on the connecting rank's new clock, and publishes the session in the
// registry.
func (s *Server) handleConnect(req *request, resp *response) *response {
	s.sessMu.Lock()
	s.nextSess++
	id := s.nextSess
	s.sessMu.Unlock()
	proc := s.sim.NewProc(fmt.Sprintf("srbnet/s%d/p%d", id, req.PID))
	proc.AdvanceTo(req.Now)
	sess, err := s.broker.Connect(proc, req.User, req.Secret, req.Resource)
	if err != nil {
		resp.Err, resp.ErrMsg = encodeErr(err)
		resp.Now = proc.Now()
		return resp
	}
	ss := &srvSession{
		id:       id,
		user:     req.User,
		resource: req.Resource,
		sess:     sess,
		handles:  make(map[uint64]storage.Handle),
		procs:    map[uint64]*vtime.Proc{req.PID: proc},
	}
	if be, ok := s.broker.Resource(req.Resource); ok {
		ss.class = be.Kind().String()
	}
	s.sessMu.Lock()
	s.sessions[id] = ss
	s.sessMu.Unlock()
	resp.Sess = id
	resp.Now = proc.Now()
	return resp
}
