package srbnet

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"

	"repro/internal/srb"
	"repro/internal/storage"
	"repro/internal/vtime"
)

// Server exposes an srb.Broker over TCP.  One goroutine serves each
// connection; a connection carries at most one broker session.
type Server struct {
	broker *srb.Broker
	sim    *vtime.Sim
	lis    net.Listener
	logf   func(format string, args ...any)

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// Serve starts a server on addr ("127.0.0.1:0" picks a free port) using
// the given Sim for server-side clocks.  It returns once the listener is
// ready; Close stops it.
func Serve(addr string, broker *srb.Broker, sim *vtime.Sim) (*Server, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("srbnet: listen %s: %w", addr, err)
	}
	s := &Server{
		broker: broker,
		sim:    sim,
		lis:    lis,
		logf:   log.Printf,
		conns:  make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener address (useful with port 0).
func (s *Server) Addr() string { return s.lis.Addr().String() }

// SetLogf replaces the server's log function (tests silence it).
func (s *Server) SetLogf(f func(format string, args ...any)) { s.logf = f }

// Close stops the listener and all connections, then waits for the
// per-connection goroutines to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.lis.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// connState is the per-connection session state.
type connState struct {
	proc    *vtime.Proc
	session storage.Session
	handles map[uint64]storage.Handle
	nextID  uint64
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	st := &connState{
		proc:    s.sim.NewProc("srbnet-" + conn.RemoteAddr().String()),
		handles: make(map[uint64]storage.Handle),
	}
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.logf("srbnet: decode from %s: %v", conn.RemoteAddr(), err)
			}
			return
		}
		resp := s.handle(st, &req)
		if err := enc.Encode(resp); err != nil {
			s.logf("srbnet: encode to %s: %v", conn.RemoteAddr(), err)
			return
		}
		if req.Op == opCloseSession {
			return
		}
	}
}

// handle executes one request.  The server proc's clock is first pushed
// forward to the client's clock so device contention is charged at the
// right instant.
func (s *Server) handle(st *connState, req *request) *response {
	st.proc.AdvanceTo(req.Now)
	resp := &response{}
	fail := func(err error) *response {
		resp.Err, resp.ErrMsg = encodeErr(err)
		resp.Now = st.proc.Now()
		return resp
	}
	switch req.Op {
	case opConnect:
		if st.session != nil {
			return fail(fmt.Errorf("srbnet: connection already has a session"))
		}
		sess, err := s.broker.Connect(st.proc, req.User, req.Secret, req.Resource)
		if err != nil {
			return fail(err)
		}
		st.session = sess
	case opCloseSession:
		if st.session == nil {
			return fail(storage.ErrClosed)
		}
		if err := st.session.Close(st.proc); err != nil {
			return fail(err)
		}
		st.session = nil
	case opOpen:
		if st.session == nil {
			return fail(storage.ErrClosed)
		}
		h, err := st.session.Open(st.proc, req.Path, req.Mode)
		if err != nil {
			return fail(err)
		}
		st.nextID++
		st.handles[st.nextID] = h
		resp.Handle = st.nextID
		resp.Size = h.Size()
	case opRead:
		h, ok := st.handles[req.Handle]
		if !ok {
			return fail(storage.ErrClosed)
		}
		buf := make([]byte, req.N)
		n, err := h.ReadAt(st.proc, buf, req.Off)
		resp.N = n
		resp.Data = buf[:n]
		resp.Size = h.Size()
		if err != nil && !errors.Is(err, io.EOF) {
			return fail(err)
		}
		if errors.Is(err, io.EOF) {
			// Signal EOF in-band: N < requested with no error code.
			resp.N = n
		}
	case opWrite:
		h, ok := st.handles[req.Handle]
		if !ok {
			return fail(storage.ErrClosed)
		}
		n, err := h.WriteAt(st.proc, req.Data, req.Off)
		resp.N = n
		resp.Size = h.Size()
		if err != nil {
			return fail(err)
		}
	case opStat:
		if st.session == nil {
			return fail(storage.ErrClosed)
		}
		fi, err := st.session.Stat(st.proc, req.Path)
		if err != nil {
			return fail(err)
		}
		resp.Info = fi
	case opList:
		if st.session == nil {
			return fail(storage.ErrClosed)
		}
		fis, err := st.session.List(st.proc, req.Path)
		if err != nil {
			return fail(err)
		}
		resp.Infos = fis
	case opRemove:
		if st.session == nil {
			return fail(storage.ErrClosed)
		}
		if err := st.session.Remove(st.proc, req.Path); err != nil {
			return fail(err)
		}
	case opCloseHandle:
		h, ok := st.handles[req.Handle]
		if !ok {
			return fail(storage.ErrClosed)
		}
		delete(st.handles, req.Handle)
		if err := h.Close(st.proc); err != nil {
			return fail(err)
		}
	default:
		return fail(fmt.Errorf("srbnet: unknown op %d", req.Op))
	}
	resp.Now = st.proc.Now()
	return resp
}
