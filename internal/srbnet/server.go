package srbnet

import (
	"bufio"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"

	"repro/internal/qos"
	"repro/internal/resilient"
	"repro/internal/srb"
	"repro/internal/storage"
	"repro/internal/vtime"
)

// Server exposes an srb.Broker over TCP.  Connections are pure frame
// carriers: requests on one connection are handled concurrently, each
// response is routed back by its tag, and sessions live in a
// server-wide registry addressed by wire id, so any pooled connection
// can carry any session's traffic.
type Server struct {
	broker *srb.Broker
	sim    *vtime.Sim
	lis    net.Listener
	logf   func(format string, args ...any)
	sched  *qos.Scheduler

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup

	sessMu   sync.Mutex
	sessions map[uint64]*srvSession
	nextSess uint64
}

// ServerOption configures Serve.
type ServerOption func(*Server)

// WithScheduler routes every data-plane opcode (open, read, write,
// vectored and whole-file transfers) through the given qos scheduler:
// admission control may shed the request with ErrOverload (the
// honor-after hint crosses the wire), and granted requests run in the
// scheduler's order, so device time is charged fairly across tenants.
// Control-plane opcodes (connect, close, stat, list, remove) bypass
// the queue.  Without this option the server keeps its greedy
// arrival-order behaviour — the ablation baseline.
//
// The scheduler is not owned by the server: close it (qos.Scheduler
// Close fails queued requests) before waiting on Server.Close if
// requests may still be queued, and share it across servers freely.
func WithScheduler(sched *qos.Scheduler) ServerOption {
	return func(s *Server) { s.sched = sched }
}

// Serve starts a server on addr ("127.0.0.1:0" picks a free port) using
// the given Sim for server-side clocks.  It returns once the listener is
// ready; Close stops it.
func Serve(addr string, broker *srb.Broker, sim *vtime.Sim, opts ...ServerOption) (*Server, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("srbnet: listen %s: %w", addr, err)
	}
	s := &Server{
		broker:   broker,
		sim:      sim,
		lis:      lis,
		logf:     log.Printf,
		conns:    make(map[net.Conn]struct{}),
		sessions: make(map[uint64]*srvSession),
	}
	for _, opt := range opts {
		opt(s)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener address (useful with port 0).
func (s *Server) Addr() string { return s.lis.Addr().String() }

// SetLogf replaces the server's log function (tests silence it).
func (s *Server) SetLogf(f func(format string, args ...any)) { s.logf = f }

// Close stops the listener and all connections, then waits for the
// per-connection goroutines to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.lis.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// srvSession is one broker session in the server-wide registry.  Each
// client rank (wire PID) gets its own server-side Proc, mirroring the
// in-process arrangement where every rank carries its own clock — this
// keeps per-process device state (seek locality) faithful even when
// many ranks share one wire session.
type srvSession struct {
	id uint64

	// user, resource and class identify the tenant and target for the
	// qos scheduler; set once at connect, immutable afterwards.
	user     string
	resource string
	class    string

	mu      sync.Mutex
	sess    storage.Session
	handles map[uint64]storage.Handle
	nextH   uint64
	procs   map[uint64]*vtime.Proc
	closed  bool
}

// proc returns the session's clock for the given rank, creating it on
// first use.
func (ss *srvSession) proc(sim *vtime.Sim, pid uint64) *vtime.Proc {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	p := ss.procs[pid]
	if p == nil {
		p = sim.NewProc(fmt.Sprintf("srbnet/s%d/p%d", ss.id, pid))
		ss.procs[pid] = p
	}
	return p
}

func (ss *srvSession) handle(id uint64) (storage.Handle, bool) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.closed {
		return nil, false
	}
	h, ok := ss.handles[id]
	return h, ok
}

// serveConn owns one TCP connection.  A decode loop dispatches each
// request to its own handler goroutine; a single writer goroutine
// encodes responses in completion order, flushing the buffered writer
// whenever the queue drains so that pipelined bursts coalesce into few
// syscalls while a lone request still departs immediately.
func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()

	respq := make(chan *response, 64)
	var wwg sync.WaitGroup
	wwg.Add(1)
	go func() {
		defer wwg.Done()
		bw := bufio.NewWriter(conn)
		enc := gob.NewEncoder(bw)
		broken := false
		for resp := range respq {
			if broken {
				continue // drain so handlers never block
			}
			if err := enc.Encode(resp); err != nil {
				s.logf("srbnet: encode to %s: %v", conn.RemoteAddr(), err)
				broken = true
				conn.Close()
				continue
			}
			if len(respq) == 0 {
				if err := bw.Flush(); err != nil {
					broken = true
					conn.Close()
				}
			}
		}
		if !broken {
			bw.Flush()
		}
	}()

	dec := gob.NewDecoder(bufio.NewReader(conn))
	var hwg sync.WaitGroup
	for {
		req := new(request)
		if err := dec.Decode(req); err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.logf("srbnet: decode from %s: %v", conn.RemoteAddr(), err)
			}
			break
		}
		hwg.Add(1)
		go func() {
			defer hwg.Done()
			respq <- s.handle(req)
		}()
	}
	hwg.Wait()
	close(respq)
	wwg.Wait()
}

// lookup finds the addressed session, or nil if it was never created or
// is already closed.
func (s *Server) lookup(id uint64) *srvSession {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	return s.sessions[id]
}

// handle executes one request.  The serving rank's clock is first
// pushed forward to the client's clock so device contention is charged
// at the right instant.  With a scheduler attached, data-plane opcodes
// first pass admission control and then wait for their grant, so the
// device acquisitions inside execute happen in scheduler order.
func (s *Server) handle(req *request) *response {
	resp := &response{Tag: req.Tag}
	if req.Op == opConnect {
		return s.handleConnect(req, resp)
	}
	ss := s.lookup(req.Sess)
	if ss == nil {
		resp.Err, resp.ErrMsg = encodeErr(fmt.Errorf("srbnet: no session %d: %w", req.Sess, storage.ErrClosed))
		resp.Now = req.Now
		return resp
	}
	proc := ss.proc(s.sim, req.PID)
	proc.AdvanceTo(req.Now)
	if s.sched != nil {
		if q, ok := schedRequest(ss, req); ok {
			var out *response
			err := s.sched.Do(proc, q, func() error {
				out = s.execute(ss, proc, req, resp)
				return nil
			})
			if err != nil {
				resp.Err, resp.ErrMsg = encodeErr(err)
				if after, ok := resilient.RetryAfterOf(err); ok {
					resp.RetryAfterNs = int64(after)
				}
				resp.Now = proc.Now()
				return resp
			}
			return out
		}
	}
	return s.execute(ss, proc, req, resp)
}

// schedRequest maps a wire request onto a qos.Request.  Only the
// data-plane opcodes are schedulable; session lifecycle and metadata
// ops return ok == false and run unqueued.
func schedRequest(ss *srvSession, req *request) (qos.Request, bool) {
	q := qos.Request{
		Tenant:  ss.user,
		Backend: ss.resource,
		Class:   ss.class,
		Path:    req.Path,
	}
	handlePath := func() {
		if h, ok := ss.handle(req.Handle); ok {
			q.Path = h.Path()
		}
	}
	switch req.Op {
	case opOpen:
		if req.Mode == storage.ModeRead {
			q.Op = "read"
		} else {
			q.Op = "write"
		}
	case opRead:
		q.Op, q.Bytes = "read", int64(req.N)
		handlePath()
	case opReadV:
		q.Op = "read"
		for _, v := range req.Vecs {
			q.Bytes += int64(v.N)
		}
		handlePath()
	case opWrite:
		q.Op, q.Bytes = "write", int64(len(req.Data))
		handlePath()
	case opWriteV:
		q.Op = "write"
		for _, v := range req.Vecs {
			q.Bytes += int64(len(v.Data))
		}
		handlePath()
	case opGetFile:
		q.Op = "read" // size unknown until opened
	case opPutFile:
		q.Op, q.Bytes = "write", int64(len(req.Data))
	default:
		return qos.Request{}, false
	}
	return q, true
}

// execute runs one already-admitted request against the session.
func (s *Server) execute(ss *srvSession, proc *vtime.Proc, req *request, resp *response) *response {
	fail := func(err error) *response {
		resp.Err, resp.ErrMsg = encodeErr(err)
		resp.Now = proc.Now()
		return resp
	}

	switch req.Op {
	case opCloseSession:
		ss.mu.Lock()
		if ss.closed {
			ss.mu.Unlock()
			return fail(storage.ErrClosed)
		}
		ss.closed = true
		ss.mu.Unlock()
		s.sessMu.Lock()
		delete(s.sessions, ss.id)
		s.sessMu.Unlock()
		if err := ss.sess.Close(proc); err != nil {
			return fail(err)
		}
	case opOpen:
		h, err := ss.sess.Open(proc, req.Path, req.Mode)
		if err != nil {
			return fail(err)
		}
		ss.mu.Lock()
		ss.nextH++
		id := ss.nextH
		ss.handles[id] = h
		ss.mu.Unlock()
		resp.Handle = id
		resp.Size = h.Size()
	case opRead:
		h, ok := ss.handle(req.Handle)
		if !ok {
			return fail(storage.ErrClosed)
		}
		buf := make([]byte, req.N)
		n, err := h.ReadAt(proc, buf, req.Off)
		resp.N = n
		resp.Data = buf[:n]
		resp.Size = h.Size()
		if err != nil && !errors.Is(err, io.EOF) {
			return fail(err)
		}
		// EOF is signalled in-band: N < requested with no error code.
	case opWrite:
		h, ok := ss.handle(req.Handle)
		if !ok {
			return fail(storage.ErrClosed)
		}
		n, err := h.WriteAt(proc, req.Data, req.Off)
		resp.N = n
		resp.Size = h.Size()
		if err != nil {
			return fail(err)
		}
	case opReadV:
		h, ok := ss.handle(req.Handle)
		if !ok {
			return fail(storage.ErrClosed)
		}
		resp.Vecs = make([][]byte, len(req.Vecs))
		for i, v := range req.Vecs {
			buf := make([]byte, v.N)
			n, err := h.ReadAt(proc, buf, v.Off)
			resp.Vecs[i] = buf[:n]
			resp.N += n
			if err != nil && !errors.Is(err, io.EOF) {
				return fail(err)
			}
		}
		resp.Size = h.Size()
	case opWriteV:
		h, ok := ss.handle(req.Handle)
		if !ok {
			return fail(storage.ErrClosed)
		}
		for _, v := range req.Vecs {
			n, err := h.WriteAt(proc, v.Data, v.Off)
			resp.N += n
			if err != nil {
				return fail(err)
			}
		}
		resp.Size = h.Size()
	case opPutFile:
		h, err := ss.sess.Open(proc, req.Path, req.Mode)
		if err != nil {
			return fail(err)
		}
		if _, err := h.WriteAt(proc, req.Data, 0); err != nil {
			h.Close(proc)
			return fail(err)
		}
		resp.Size = h.Size()
		if err := h.Close(proc); err != nil {
			return fail(err)
		}
	case opGetFile:
		h, err := ss.sess.Open(proc, req.Path, storage.ModeRead)
		if err != nil {
			return fail(err)
		}
		buf := make([]byte, h.Size())
		n, err := h.ReadAt(proc, buf, 0)
		if err != nil && !errors.Is(err, io.EOF) {
			h.Close(proc)
			return fail(err)
		}
		resp.Data = buf[:n]
		resp.Size = h.Size()
		if err := h.Close(proc); err != nil {
			return fail(err)
		}
	case opStat:
		fi, err := ss.sess.Stat(proc, req.Path)
		if err != nil {
			return fail(err)
		}
		resp.Info = fi
	case opList:
		fis, err := ss.sess.List(proc, req.Path)
		if err != nil {
			return fail(err)
		}
		resp.Infos = fis
	case opRemove:
		if err := ss.sess.Remove(proc, req.Path); err != nil {
			return fail(err)
		}
	case opCloseHandle:
		ss.mu.Lock()
		h, ok := ss.handles[req.Handle]
		delete(ss.handles, req.Handle)
		ss.mu.Unlock()
		if !ok {
			return fail(storage.ErrClosed)
		}
		if err := h.Close(proc); err != nil {
			return fail(err)
		}
	default:
		return fail(fmt.Errorf("srbnet: unknown op %d", req.Op))
	}
	resp.Now = proc.Now()
	return resp
}

// handleConnect reserves a session id, authenticates against the broker
// on the connecting rank's new clock, and publishes the session in the
// registry.
func (s *Server) handleConnect(req *request, resp *response) *response {
	s.sessMu.Lock()
	s.nextSess++
	id := s.nextSess
	s.sessMu.Unlock()
	proc := s.sim.NewProc(fmt.Sprintf("srbnet/s%d/p%d", id, req.PID))
	proc.AdvanceTo(req.Now)
	sess, err := s.broker.Connect(proc, req.User, req.Secret, req.Resource)
	if err != nil {
		resp.Err, resp.ErrMsg = encodeErr(err)
		resp.Now = proc.Now()
		return resp
	}
	ss := &srvSession{
		id:       id,
		user:     req.User,
		resource: req.Resource,
		sess:     sess,
		handles:  make(map[uint64]storage.Handle),
		procs:    map[uint64]*vtime.Proc{req.PID: proc},
	}
	if be, ok := s.broker.Resource(req.Resource); ok {
		ss.class = be.Kind().String()
	}
	s.sessMu.Lock()
	s.sessions[id] = ss
	s.sessMu.Unlock()
	resp.Sess = id
	resp.Now = proc.Now()
	return resp
}
