//go:build !race

package srbnet

const raceEnabled = false
