// Cluster-aware client routing.  WithCluster turns one Client into a
// federation view over N brokers: path-addressed operations are routed
// to the broker that owns the path's shard, errWrongShard redirects
// are followed (and cached), and when a broker dies mid-call the
// session rotates through the survivors, charging resilient backoff to
// the rank's virtual clock until the dead leader's lease lapses and
// the cluster's failover moves the shard.
package srbnet

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/cluster"
	"repro/internal/resilient"
	"repro/internal/storage"
	"repro/internal/vtime"
)

// failoverAttempts bounds how many dead-broker bounces one call rides
// out.  Each bounce charges an exponential resilient backoff to the
// rank's clock, so the budget comfortably outlives a cluster lease
// (the fencing window during which no broker will take over the dead
// leader's shards).
const failoverAttempts = 10

// WithCluster makes the client shard-aware: addrs lists every broker
// in the cluster (index-aligned with the cluster's node IDs) and
// shards fixes the shard-map size (0 defaults to len(addrs)).  The
// cold route for shard s is addrs[s mod len(addrs)] — the same
// round-robin genesis assignment cluster.NewRing publishes — and every
// errWrongShard redirect refines it.  With a single address the
// session degenerates to the plain client: every path routes to the
// one broker and no redirect ever fires.
func WithCluster(addrs []string, shards int) Option {
	return func(c *Client) {
		c.clusterAddrs = append([]string(nil), addrs...)
		if shards <= 0 {
			shards = len(addrs)
		}
		c.clusterShards = shards
	}
}

// ClusterStats returns the redirect and failover counters accumulated
// across this client's cluster sessions.
func (c *Client) ClusterStats() (redirects, failovers int64) {
	return atomic.LoadInt64(&c.clusterRedirects), atomic.LoadInt64(&c.clusterFailovers)
}

// subClient returns (creating on first use) the plain per-broker
// client behind one cluster address.  Sub-clients share the parent's
// wire options but keep their own connection pools and rank-pid maps,
// exactly as N independent clients would.
func (c *Client) subClient(addr string) *Client {
	c.subMu.Lock()
	defer c.subMu.Unlock()
	if c.subs == nil {
		c.subs = make(map[string]*Client)
	}
	if s, ok := c.subs[addr]; ok {
		return s
	}
	s := &Client{
		addr:           addr,
		user:           c.user,
		secret:         c.secret,
		resource:       c.resource,
		kind:           c.kind,
		name:           "srb://" + addr + "/" + c.resource,
		poolSize:       c.poolSize,
		dialTimeout:    c.dialTimeout,
		readAhead:      c.readAhead,
		serialized:     c.serialized,
		wireV2:         c.wireV2,
		chunkBytes:     c.chunkBytes,
		maxFrame:       c.maxFrame,
		redialAttempts: c.redialAttempts,
		redialBackoff:  c.redialBackoff,
		pids:           make(map[*vtime.Proc]uint64),
	}
	c.subs[addr] = s
	return s
}

// closeSubClients tears down the per-broker pools (parent Close path).
func (c *Client) closeSubClients() {
	c.subMu.Lock()
	subs := c.subs
	c.subs = nil
	c.subMu.Unlock()
	for _, s := range subs {
		s.Close()
	}
}

// clusterSession is the federation view of one authenticated session:
// a lazily-built per-broker session per address, a redirect cache
// mapping shards to learned owners, and the routing loop in do.
type clusterSession struct {
	c *Client

	mu     sync.Mutex
	sess   map[string]storage.Session
	owner  map[int]string // shard → owner address learned from redirects
	closed bool
}

var _ storage.Session = (*clusterSession)(nil)
var _ storage.WholeFiler = (*clusterSession)(nil)

// connectCluster builds the session, eagerly connecting the home
// broker (addrs[0]) so a single-broker cluster charges exactly the
// virtual time a plain client's Connect would.
func (c *Client) connectCluster(p *vtime.Proc) (storage.Session, error) {
	s := &clusterSession{c: c, sess: make(map[string]storage.Session), owner: make(map[int]string)}
	if _, err := s.session(p, c.clusterAddrs[0]); err != nil {
		return nil, err
	}
	return s, nil
}

// session returns (connecting on first use) the per-broker session for
// addr.
func (s *clusterSession) session(p *vtime.Proc, addr string) (storage.Session, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("srbnet client: %w", storage.ErrClosed)
	}
	if sess, ok := s.sess[addr]; ok {
		s.mu.Unlock()
		return sess, nil
	}
	s.mu.Unlock()
	sess, err := s.c.subClient(addr).Connect(p)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if prev, ok := s.sess[addr]; ok {
		// Lost a connect race; keep the first session.
		s.mu.Unlock()
		sess.Close(p)
		return prev, nil
	}
	s.sess[addr] = sess
	s.mu.Unlock()
	return sess, nil
}

// dropSession forgets a broker's session after a transport failure so
// the next route to it reconnects from scratch.
func (s *clusterSession) dropSession(addr string) {
	s.mu.Lock()
	delete(s.sess, addr)
	s.mu.Unlock()
}

// route maps a path to the broker address to try first: the learned
// owner of its shard if a redirect taught us one, otherwise the
// round-robin genesis assignment.
func (s *clusterSession) route(path string) (shard int, addr string) {
	shard = cluster.ShardOf(cluster.CollectionKey(path), s.c.clusterShards)
	s.mu.Lock()
	addr, ok := s.owner[shard]
	s.mu.Unlock()
	if !ok {
		addr = s.c.clusterAddrs[shard%len(s.c.clusterAddrs)]
	}
	return shard, addr
}

// learn caches a redirect's verdict for a shard.
func (s *clusterSession) learn(shard int, addr string) {
	s.mu.Lock()
	s.owner[shard] = addr
	s.mu.Unlock()
}

// do runs one path-addressed operation with shard routing: follow
// redirects (typed ErrRedirectLoop past the cap), and on transport
// failure rotate to the next broker with a backoff charged to the
// rank's clock — the survivors redirect to the new owner once the
// dead broker's lease lapses.
func (s *clusterSession) do(p *vtime.Proc, path string, fn func(storage.Session) error) error {
	c := s.c
	maxRedirects := 2 * (len(c.clusterAddrs) + failoverAttempts)
	po := resilient.Policy{MaxAttempts: failoverAttempts, BaseDelay: c.redialBackoff}
	shard, addr := s.route(path)
	redirects, failures := 0, 0
	for {
		sess, err := s.session(p, addr)
		if err == nil {
			err = fn(sess)
		}
		var ws *WrongShardError
		switch {
		case err == nil:
			return nil
		case errors.As(err, &ws):
			redirects++
			atomic.AddInt64(&c.clusterRedirects, 1)
			if redirects > maxRedirects {
				return fmt.Errorf("srbnet cluster: %d redirects chasing %q: %w", redirects, path, ErrRedirectLoop)
			}
			s.learn(shard, ws.Addr)
			addr = ws.Addr
		case errors.Is(err, errConnFailed):
			failures++
			atomic.AddInt64(&c.clusterFailovers, 1)
			if failures >= failoverAttempts {
				return err
			}
			s.dropSession(addr)
			p.Advance(po.Backoff(failures, c.name+"/cluster-failover"))
			addr = s.nextAddr(addr)
		default:
			return err
		}
	}
}

// nextAddr rotates to the broker after addr in the cluster list.
func (s *clusterSession) nextAddr(addr string) string {
	addrs := s.c.clusterAddrs
	for i, a := range addrs {
		if a == addr {
			return addrs[(i+1)%len(addrs)]
		}
	}
	return addrs[0]
}

// Open implements storage.Session.  The returned handle is pinned to
// the broker that opened it — handle I/O is not re-routed.
func (s *clusterSession) Open(p *vtime.Proc, name string, mode storage.AMode) (storage.Handle, error) {
	var h storage.Handle
	err := s.do(p, name, func(sess storage.Session) error {
		var err error
		h, err = sess.Open(p, name, mode)
		return err
	})
	return h, err
}

// Remove implements storage.Session.
func (s *clusterSession) Remove(p *vtime.Proc, name string) error {
	return s.do(p, name, func(sess storage.Session) error { return sess.Remove(p, name) })
}

// Stat implements storage.Session.
func (s *clusterSession) Stat(p *vtime.Proc, name string) (storage.FileInfo, error) {
	var fi storage.FileInfo
	err := s.do(p, name, func(sess storage.Session) error {
		var err error
		fi, err = sess.Stat(p, name)
		return err
	})
	return fi, err
}

// List implements storage.Session.  The prefix is routed like a path:
// a cluster list is per-collection, since one collection lives wholly
// on one broker.
func (s *clusterSession) List(p *vtime.Proc, prefix string) ([]storage.FileInfo, error) {
	var infos []storage.FileInfo
	err := s.do(p, prefix, func(sess storage.Session) error {
		var err error
		infos, err = sess.List(p, prefix)
		return err
	})
	return infos, err
}

// PutFile implements storage.WholeFiler.
func (s *clusterSession) PutFile(p *vtime.Proc, name string, mode storage.AMode, data []byte) error {
	return s.do(p, name, func(sess storage.Session) error {
		return sess.(storage.WholeFiler).PutFile(p, name, mode, data)
	})
}

// GetFile implements storage.WholeFiler.
func (s *clusterSession) GetFile(p *vtime.Proc, name string) ([]byte, error) {
	var data []byte
	err := s.do(p, name, func(sess storage.Session) error {
		var err error
		data, err = sess.(storage.WholeFiler).GetFile(p, name)
		return err
	})
	return data, err
}

// Close implements storage.Session, closing every per-broker session.
func (s *clusterSession) Close(p *vtime.Proc) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("srbnet client: %w", storage.ErrClosed)
	}
	s.closed = true
	sess := s.sess
	s.sess = nil
	s.mu.Unlock()
	var first error
	for _, sub := range sess {
		if err := sub.Close(p); err != nil && first == nil {
			first = err
		}
	}
	return first
}
