package srbnet

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/memfs"
	"repro/internal/remotedisk"
	"repro/internal/srb"
	"repro/internal/storage"
	"repro/internal/vtime"
)

// newClusterServers starts n brokers, each with its own backend and a
// cluster.Node shard router, and returns the cluster plus the client
// built over all broker addresses.
func newClusterServers(t *testing.T, sim *vtime.Sim, n, shards int) (*cluster.Cluster, []*Server, *Client) {
	t.Helper()
	cl, err := cluster.New(cluster.Config{Nodes: n, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	addrs := make([]string, n)
	servers := make([]*Server, n)
	for i := 0; i < n; i++ {
		broker := srb.NewBroker()
		be, err := remotedisk.New("sdsc-disk", memfs.New())
		if err != nil {
			t.Fatal(err)
		}
		if err := broker.Register(be); err != nil {
			t.Fatal(err)
		}
		broker.AddUser("shen", "nwu")
		srv, err := Serve("127.0.0.1:0", broker, sim, WithShardRouter(cl.Node(i)))
		if err != nil {
			t.Fatal(err)
		}
		srv.SetLogf(func(string, ...any) {})
		t.Cleanup(func() { srv.Close() })
		addrs[i] = srv.Addr()
		servers[i] = srv
	}
	cl.SetAddrs(addrs)
	c := NewClient(addrs[0], "shen", "nwu", "sdsc-disk", storage.KindRemoteDisk,
		WithCluster(addrs, shards))
	t.Cleanup(func() { c.Close() })
	return cl, servers, c
}

// pathForShard finds a collection path whose key hashes to the wanted
// shard.
func pathForShard(t *testing.T, want, shards int) string {
	t.Helper()
	for i := 0; i < 10*shards; i++ {
		p := fmt.Sprintf("/col%d/file", i)
		if cluster.ShardOf(cluster.CollectionKey(p), shards) == want {
			return p
		}
	}
	t.Fatalf("no collection found for shard %d/%d", want, shards)
	return ""
}

// runWorkload drives one representative path-op sequence and returns
// the data read back.
func runWorkload(t *testing.T, p *vtime.Proc, sess storage.Session) []byte {
	t.Helper()
	wf := sess.(storage.WholeFiler)
	payload := bytes.Repeat([]byte("shard"), 2048)
	if err := wf.PutFile(p, "astro/run1/chunk0", storage.ModeCreate, payload); err != nil {
		t.Fatal(err)
	}
	if fi, err := sess.Stat(p, "astro/run1/chunk0"); err != nil || fi.Size != int64(len(payload)) {
		t.Fatalf("stat = %+v, %v", fi, err)
	}
	if infos, err := sess.List(p, "astro/"); err != nil || len(infos) != 1 {
		t.Fatalf("list = %d entries, %v", len(infos), err)
	}
	got, err := wf.GetFile(p, "astro/run1/chunk0")
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// TestSingleBrokerClusterMatchesDirect proves the degenerate case: a
// one-address cluster session must behave byte-for-byte like the plain
// client, including identical virtual-time charges.
func TestSingleBrokerClusterMatchesDirect(t *testing.T) {
	run := func(clustered bool) (time.Duration, []byte) {
		sim := vtime.NewVirtual()
		srv, direct := newServer(t, sim)
		c := direct
		if clustered {
			c = NewClient(srv.Addr(), "shen", "nwu", "sdsc-disk", storage.KindRemoteDisk,
				WithCluster([]string{srv.Addr()}, 1))
		}
		t.Cleanup(func() { c.Close() })
		p := sim.NewProc("p")
		sess, err := c.Connect(p)
		if err != nil {
			t.Fatal(err)
		}
		data := runWorkload(t, p, sess)
		if err := sess.Close(p); err != nil {
			t.Fatal(err)
		}
		return p.Now(), data
	}
	directNow, directData := run(false)
	clusterNow, clusterData := run(true)
	if directNow != clusterNow {
		t.Fatalf("single-broker cluster charged %v, direct client %v", clusterNow, directNow)
	}
	if !bytes.Equal(directData, clusterData) {
		t.Fatal("single-broker cluster returned different data")
	}
}

// TestShardsSpreadAcrossBrokers writes one file per shard and expects
// every broker to end up serving its genesis share with no redirects
// (the cold route is the genesis assignment).
func TestShardsSpreadAcrossBrokers(t *testing.T) {
	sim := vtime.NewVirtual()
	_, _, c := newClusterServers(t, sim, 3, 6)
	p := sim.NewProc("p")
	sess, err := c.Connect(p)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close(p)
	wf := sess.(storage.WholeFiler)
	for s := 0; s < 6; s++ {
		path := pathForShard(t, s, 6)
		if err := wf.PutFile(p, path, storage.ModeCreate, []byte("x")); err != nil {
			t.Fatalf("shard %d put: %v", s, err)
		}
		if _, err := wf.GetFile(p, path); err != nil {
			t.Fatalf("shard %d get: %v", s, err)
		}
	}
	if redirects, failovers := c.ClusterStats(); redirects != 0 || failovers != 0 {
		t.Fatalf("genesis-aligned workload saw %d redirects, %d failovers", redirects, failovers)
	}
}

// TestRedirectFollowedAfterRebalance moves shards off a dead broker
// and expects the client's stale cold route to be corrected by one
// errWrongShard redirect per shard.
func TestRedirectFollowedAfterRebalance(t *testing.T) {
	sim := vtime.NewVirtual()
	cl, _, c := newClusterServers(t, sim, 3, 6)
	p := sim.NewProc("p")
	sess, err := c.Connect(p)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close(p)

	// Take broker 2 out of the cluster (its TCP server stays up — it
	// must answer with redirects, not silence) and rebalance its
	// shards onto the survivors.
	cl.Node(2).Kill()
	if err := cl.Rebalance(p); err != nil {
		t.Fatal(err)
	}

	// Shard 2's cold route is broker 2, but the rebalance moved it.
	path := pathForShard(t, 2, 6)
	wf := sess.(storage.WholeFiler)
	if err := wf.PutFile(p, path, storage.ModeCreate, []byte("moved")); err != nil {
		t.Fatal(err)
	}
	got, err := wf.GetFile(p, path)
	if err != nil || string(got) != "moved" {
		t.Fatalf("read-after-redirect = %q, %v", got, err)
	}
	redirects, _ := c.ClusterStats()
	if redirects == 0 {
		t.Fatal("stale route was never redirected")
	}
	// The redirect was cached: the same shard routes straight to the
	// owner now.
	before := redirects
	if _, err := wf.GetFile(p, path); err != nil {
		t.Fatal(err)
	}
	if after, _ := c.ClusterStats(); after != before {
		t.Fatalf("cached owner still redirected (%d → %d)", before, after)
	}
}

// bounceRouter refuses every path, always naming addr as the owner —
// the pathological flapping shard map.
type bounceRouter struct {
	mu   sync.Mutex
	addr string
}

func (b *bounceRouter) Route(time.Duration, string) (string, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.addr, false
}

// TestRedirectLoopCapped wires a router that redirects every request
// back to the same broker and expects the typed loop error instead of
// a spin.
func TestRedirectLoopCapped(t *testing.T) {
	sim := vtime.NewVirtual()
	broker := srb.NewBroker()
	be, err := remotedisk.New("sdsc-disk", memfs.New())
	if err != nil {
		t.Fatal(err)
	}
	if err := broker.Register(be); err != nil {
		t.Fatal(err)
	}
	broker.AddUser("shen", "nwu")
	bounce := &bounceRouter{}
	srv, err := Serve("127.0.0.1:0", broker, sim, WithShardRouter(bounce))
	if err != nil {
		t.Fatal(err)
	}
	srv.SetLogf(func(string, ...any) {})
	t.Cleanup(func() { srv.Close() })
	bounce.mu.Lock()
	bounce.addr = srv.Addr()
	bounce.mu.Unlock()

	c := NewClient(srv.Addr(), "shen", "nwu", "sdsc-disk", storage.KindRemoteDisk,
		WithCluster([]string{srv.Addr()}, 1))
	t.Cleanup(func() { c.Close() })
	p := sim.NewProc("p")
	sess, err := c.Connect(p)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close(p)
	if _, err := sess.Stat(p, "/loop/file"); !errors.Is(err, ErrRedirectLoop) {
		t.Fatalf("flapping router returned %v, want ErrRedirectLoop", err)
	}
}

// TestPlainClientSurfacesWrongShard checks a non-cluster client sees
// the typed redirect rather than an opaque failure.
func TestPlainClientSurfacesWrongShard(t *testing.T) {
	sim := vtime.NewVirtual()
	_, servers, _ := newClusterServers(t, sim, 3, 6)
	p := sim.NewProc("p")
	// Broker 1 does not own shard 0 at genesis.
	plain := NewClient(servers[1].Addr(), "shen", "nwu", "sdsc-disk", storage.KindRemoteDisk)
	t.Cleanup(func() { plain.Close() })
	sess, err := plain.Connect(p)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close(p)
	_, err = sess.Stat(p, pathForShard(t, 0, 6))
	if !errors.Is(err, ErrWrongShard) {
		t.Fatalf("err = %v, want ErrWrongShard", err)
	}
	var ws *WrongShardError
	if !errors.As(err, &ws) || ws.Addr != servers[0].Addr() {
		t.Fatalf("redirect does not name the owner: %v", err)
	}
}

// TestFailoverRotatesToSurvivors kills a broker (process and cluster
// membership) and expects a call routed at it to back off on the
// rank's clock, rotate to a survivor, and land once the lease-lapse
// election has moved the shard.
func TestFailoverRotatesToSurvivors(t *testing.T) {
	sim := vtime.NewVirtual()
	cl, servers, c := newClusterServers(t, sim, 3, 3)
	p := sim.NewProc("p")
	sess, err := c.Connect(p)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close(p)
	wf := sess.(storage.WholeFiler)

	// Warm every broker while the cluster is whole.
	for s := 0; s < 3; s++ {
		if err := wf.PutFile(p, pathForShard(t, s, 3), storage.ModeCreate, []byte("pre")); err != nil {
			t.Fatal(err)
		}
	}

	// Broker 0 dies for real: TCP listener down AND cluster node dead.
	// (Leader death: node 0 is the genesis leader.)
	servers[0].Close()
	cl.Node(0).Kill()

	path := pathForShard(t, 0, 3)
	if err := wf.PutFile(p, path, storage.ModeCreate, []byte("post-failover")); err != nil {
		t.Fatalf("failover put: %v", err)
	}
	got, err := wf.GetFile(p, path)
	if err != nil || string(got) != "post-failover" {
		t.Fatalf("failover get = %q, %v", got, err)
	}
	_, failovers := c.ClusterStats()
	if failovers == 0 {
		t.Fatal("no failover was counted")
	}
	// The dead broker's shard moved off it.
	if owner := cl.Ring().Owner(0); owner == 0 {
		t.Fatal("shard 0 still routed at the dead broker")
	}
}
