package srbnet

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/memfs"
	"repro/internal/remotedisk"
	"repro/internal/srb"
	"repro/internal/storage"
	"repro/internal/vtime"
)

// newChunkedServer is newServerOpts with a tiny streaming threshold on
// both sides, so whole-file transfers exercise the chunk protocol at
// test-sized payloads.
func newChunkedServer(t *testing.T, sim *vtime.Sim, chunk int, opts ...Option) (*Server, *Client) {
	t.Helper()
	broker := srb.NewBroker()
	be, err := remotedisk.New("sdsc-disk", memfs.New())
	if err != nil {
		t.Fatal(err)
	}
	if err := broker.Register(be); err != nil {
		t.Fatal(err)
	}
	broker.AddUser("shen", "nwu")
	srv, err := Serve("127.0.0.1:0", broker, sim, WithServerChunkBytes(chunk))
	if err != nil {
		t.Fatal(err)
	}
	srv.SetLogf(func(string, ...any) {})
	t.Cleanup(func() { srv.Close() })
	opts = append([]Option{WithChunkBytes(chunk)}, opts...)
	c := NewClient(srv.Addr(), "shen", "nwu", "sdsc-disk", storage.KindRemoteDisk, opts...)
	t.Cleanup(func() { c.Close() })
	return srv, c
}

// TestRequestFrameRoundTrip pins the v3 request layout: every field
// must survive encode → decode, with the bulk Data payload riding after
// the metadata sections (it is returned by encodeRequest for the
// writev rather than copied into the frame).
func TestRequestFrameRoundTrip(t *testing.T) {
	in := getRequest()
	in.Op, in.Flags, in.Tag = opReadV, flagChunked|flagLast, uint64(1)<<40
	in.Sess, in.PID = 9, 8
	in.Now = 12345 * time.Microsecond
	in.User, in.Secret, in.Resource = "shen", "nwu", "sdsc-disk"
	in.Path, in.Mode = "wire/file", storage.ModeCreate
	in.Handle, in.Off, in.N = 77, -1, 1<<20
	in.Data = []byte("payload")
	in.Vecs = []wireVec{{Off: 0, N: 3, Data: []byte("abc")}, {Off: 9, N: 5}}

	f := getFrame()
	payload := encodeRequest(f, in)
	if !bytes.Equal(payload, in.Data) {
		t.Fatalf("encodeRequest returned %q for the writev, want the Data payload", payload)
	}
	full := append(append([]byte(nil), f.b...), payload...)
	if got := binary.LittleEndian.Uint32(full[:4]); int(got) != len(full)-4 {
		t.Fatalf("length prefix declares %d bytes, body is %d", got, len(full)-4)
	}
	var out request
	if err := decodeRequest(full[4:], &out); err != nil {
		t.Fatal(err)
	}
	if out.Op != in.Op || out.Flags != in.Flags || out.Tag != in.Tag ||
		out.Sess != in.Sess || out.PID != in.PID || out.Now != in.Now ||
		out.User != in.User || out.Secret != in.Secret || out.Resource != in.Resource ||
		out.Path != in.Path || out.Mode != in.Mode || out.Handle != in.Handle ||
		out.Off != in.Off || out.N != in.N || !bytes.Equal(out.Data, in.Data) {
		t.Fatalf("request round trip mismatch:\n in=%+v\nout=%+v", in, out)
	}
	if len(out.Vecs) != 2 ||
		out.Vecs[0].Off != 0 || out.Vecs[0].N != 3 || !bytes.Equal(out.Vecs[0].Data, []byte("abc")) ||
		out.Vecs[1].Off != 9 || out.Vecs[1].N != 5 || len(out.Vecs[1].Data) != 0 {
		t.Fatalf("vec round trip mismatch: %+v", out.Vecs)
	}
}

// TestResponseFrameRoundTrip does the same for server→client frames,
// including the QoS RetryAfter hint and the chunk-stream Off field.
func TestResponseFrameRoundTrip(t *testing.T) {
	in := getResponse()
	in.Tag, in.Err, in.Flags = 42, errOverload, flagChunked
	in.ErrMsg = "busy"
	in.RetryAfterNs = int64(250 * time.Millisecond)
	in.Now = 99 * time.Second
	in.Sess, in.Handle = 3, 17
	in.N, in.Size, in.Off = 4096, 1<<30, 256<<10
	in.Data = []byte("chunk-bytes")
	in.Vecs = [][]byte{[]byte("vec0"), nil, []byte("vec2")}
	in.Info = storage.FileInfo{Path: "wire/file", Size: 12}
	in.Infos = []storage.FileInfo{{Path: "a", Size: 1}, {Path: "", Size: -1}}

	f := getFrame()
	payload := encodeResponse(f, in)
	if !bytes.Equal(payload, in.Data) {
		t.Fatalf("encodeResponse returned %q for the writev, want the Data payload", payload)
	}
	full := append(append([]byte(nil), f.b...), payload...)
	var out response
	if err := decodeResponse(full[4:], &out); err != nil {
		t.Fatal(err)
	}
	if out.Tag != in.Tag || out.Err != in.Err || out.Flags != in.Flags ||
		out.ErrMsg != in.ErrMsg || out.RetryAfterNs != in.RetryAfterNs ||
		out.Now != in.Now || out.Sess != in.Sess || out.Handle != in.Handle ||
		out.N != in.N || out.Size != in.Size || out.Off != in.Off ||
		!bytes.Equal(out.Data, in.Data) || out.Info != in.Info {
		t.Fatalf("response round trip mismatch:\n in=%+v\nout=%+v", in, out)
	}
	if len(out.Vecs) != 3 || !bytes.Equal(out.Vecs[0], []byte("vec0")) ||
		len(out.Vecs[1]) != 0 || !bytes.Equal(out.Vecs[2], []byte("vec2")) {
		t.Fatalf("vecs mismatch: %q", out.Vecs)
	}
	if len(out.Infos) != 2 || out.Infos[0] != in.Infos[0] || out.Infos[1] != in.Infos[1] {
		t.Fatalf("infos mismatch: %+v", out.Infos)
	}
	// The overload hint must reconstruct exactly as the QoS layer
	// expects it client-side.
	err := decodeRespErr(&out)
	if !errors.Is(err, storage.ErrOverload) {
		t.Fatalf("decoded error %v does not wrap ErrOverload", err)
	}
	var ra interface{ RetryAfter() time.Duration }
	if !errors.As(err, &ra) || ra.RetryAfter() != 250*time.Millisecond {
		t.Fatalf("RetryAfter hint lost across the v3 frame: %v", err)
	}
}

// TestDecodeRejectsCorruptBodies: truncated sections, hostile inner
// length fields and trailing junk must all return errFrameCorrupt —
// never panic, never allocate from the declared length.
func TestDecodeRejectsCorruptBodies(t *testing.T) {
	in := getRequest()
	in.Op, in.Tag, in.Path = opOpen, 5, "wire/file"
	f := getFrame()
	encodeRequest(f, in)
	body := append([]byte(nil), f.b[4:]...)

	var out request
	if err := decodeRequest(body[:len(body)-3], &out); !errors.Is(err, errFrameCorrupt) {
		t.Fatalf("truncated body: %v", err)
	}
	if err := decodeRequest(append(body, 0xEE), &out); !errors.Is(err, errFrameCorrupt) {
		t.Fatalf("trailing junk: %v", err)
	}
	// Blow up the Path length field (first string section is User at a
	// fixed offset: 2 + 8*3 + 8 + 8 + 8 + 8 + 8 = 66 bytes of fixed
	// header).
	hostile := append([]byte(nil), body...)
	binary.LittleEndian.PutUint32(hostile[66:], 0xFFFFFFF0)
	if err := decodeRequest(hostile, &out); !errors.Is(err, errFrameCorrupt) {
		t.Fatalf("hostile inner length: %v", err)
	}
	var resp response
	if err := decodeResponse(body[:8], &resp); !errors.Is(err, errFrameCorrupt) {
		t.Fatalf("short response body: %v", err)
	}
}

// TestReadFrameCapsDeclaredLength: a length prefix over the cap is
// rejected before any allocation.
func TestReadFrameCapsDeclaredLength(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(binary.LittleEndian.AppendUint32(nil, 1<<30))
	if _, err := readFrame(bufio.NewReader(&buf), 1<<20); !errors.Is(err, errFrameTooBig) {
		t.Fatalf("oversize frame accepted: %v", err)
	}
	// A truncated body is corruption, not a clean EOF.
	buf.Reset()
	buf.Write(binary.LittleEndian.AppendUint32(nil, 100))
	buf.Write([]byte{1, 2, 3})
	if _, err := readFrame(bufio.NewReader(&buf), 1<<20); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated frame: %v", err)
	}
}

// TestHotFrameCodecZeroAlloc pins the tentpole claim: the steady-state
// opWrite request + opRead response encode/decode cycle allocates
// nothing once the pools are warm.
func TestHotFrameCodecZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	data := bytes.Repeat([]byte{0xAB}, 4096)
	wreq := getRequest()
	wreq.Op, wreq.Tag, wreq.Sess, wreq.PID = opWrite, 7, 1, 2
	wreq.Handle, wreq.Off, wreq.Data = 3, 8192, data
	rresp := getResponse()
	rresp.Tag, rresp.N, rresp.Size = 7, 4096, 1<<20
	rresp.Data = data

	wire := make([]byte, 0, 16<<10)
	hot := func() {
		f := getFrame()
		payload := encodeRequest(f, wreq)
		wire = append(wire[:0], f.b[4:]...)
		wire = append(wire, payload...)
		out := getRequest()
		if decodeRequest(wire, out) != nil {
			panic("corrupt request frame")
		}
		putRequest(out)
		putFrame(f)

		f = getFrame()
		payload = encodeResponse(f, rresp)
		wire = append(wire[:0], f.b[4:]...)
		wire = append(wire, payload...)
		ro := getResponse()
		if decodeResponse(wire, ro) != nil {
			panic("corrupt response frame")
		}
		putResponse(ro)
		putFrame(f)
	}
	hot() // warm the pools
	if avg := testing.AllocsPerRun(200, hot); avg != 0 {
		t.Fatalf("hot opWrite/opRead frame codec: %v allocs/op, want 0", avg)
	}
}

// TestOversizeFramePoisonsServer: a raw v3 connection declaring a body
// over the server's cap is dropped before the server allocates for it.
func TestOversizeFramePoisonsServer(t *testing.T) {
	sim := vtime.NewVirtual()
	srv, _ := newChunkedServer(t, sim, 1024)
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write(wireMagic[:])
	conn.Write(binary.LittleEndian.AppendUint32(nil, DefaultMaxFrame+1))
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("server kept an oversize-frame connection open")
	}
}

// TestCorruptFramePoisonsServer: a well-framed but undecodable body
// poisons the connection exactly as a desynced gob stream did.
func TestCorruptFramePoisonsServer(t *testing.T) {
	sim := vtime.NewVirtual()
	srv, _ := newChunkedServer(t, sim, 1024)
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write(wireMagic[:])
	conn.Write(binary.LittleEndian.AppendUint32(nil, 10))
	conn.Write(bytes.Repeat([]byte{0xFF}, 10)) // too short for the fixed header
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("server kept a corrupt-frame connection open")
	}
}

// fakeV3Server accepts v3 connections and answers every request with
// reply(req) — the v3 mirror of the gob desync harness.
func fakeV3Server(t *testing.T, reply func(req *request) *response) net.Listener {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lis.Close() })
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				br := bufio.NewReader(conn)
				if _, err := io.ReadFull(br, make([]byte, len(wireMagic))); err != nil {
					return
				}
				for {
					fr, err := readFrame(br, DefaultMaxFrame)
					if err != nil {
						return
					}
					var req request
					if err := decodeRequest(fr.b, &req); err != nil {
						return
					}
					resp := reply(&req)
					if resp == nil {
						io.Copy(io.Discard, conn) // hold the conn open silently
						return
					}
					f := getFrame()
					data := encodeResponse(f, resp)
					conn.Write(f.b)
					conn.Write(data)
				}
			}(conn)
		}
	}()
	return lis
}

// TestV3DesyncPoisonsConnection: a response tag that was never issued
// poisons the pooled connection and fails the call.
func TestV3DesyncPoisonsConnection(t *testing.T) {
	lis := fakeV3Server(t, func(req *request) *response {
		return &response{Tag: req.Tag + 12345}
	})
	sim := vtime.NewVirtual()
	client := NewClient(lis.Addr().String(), "shen", "nwu", "r", storage.KindRemoteDisk)
	defer client.Close()
	if _, err := client.Connect(sim.NewProc("p")); err == nil {
		t.Fatal("connect through a desynced v3 stream succeeded")
	}
	client.mu.Lock()
	nconns := len(client.conns)
	client.mu.Unlock()
	if nconns != 0 {
		t.Fatalf("poisoned connection still pooled (%d conns)", nconns)
	}
}

// TestTruncatedFramePoisonsClient: a response frame that dies mid-body
// is corruption, not a clean close — the connection must be poisoned
// and the call must fail rather than hang.
func TestTruncatedFramePoisonsClient(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				br := bufio.NewReader(conn)
				io.ReadFull(br, make([]byte, len(wireMagic)))
				if _, err := readFrame(br, DefaultMaxFrame); err != nil {
					return
				}
				conn.Write(binary.LittleEndian.AppendUint32(nil, 100))
				conn.Write([]byte{1, 2, 3, 4, 5}) // declared 100, deliver 5
			}(conn)
		}
	}()
	sim := vtime.NewVirtual()
	client := NewClient(lis.Addr().String(), "shen", "nwu", "r", storage.KindRemoteDisk)
	defer client.Close()
	_, err = client.Connect(sim.NewProc("p"))
	if err == nil {
		t.Fatal("connect over a truncated v3 stream succeeded")
	}
	if !errors.Is(err, errConnFailed) {
		t.Fatalf("truncated frame error %v not classified as a transport failure", err)
	}
	client.mu.Lock()
	nconns := len(client.conns)
	client.mu.Unlock()
	if nconns != 0 {
		t.Fatalf("poisoned connection still pooled (%d conns)", nconns)
	}
}

// TestOversizeResponsePoisonsClient: the client applies the same
// declared-length cap as the server (WithMaxFrame), so a hostile
// server cannot make it allocate an arbitrary buffer.
func TestOversizeResponsePoisonsClient(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				br := bufio.NewReader(conn)
				io.ReadFull(br, make([]byte, len(wireMagic)))
				if _, err := readFrame(br, DefaultMaxFrame); err != nil {
					return
				}
				conn.Write(binary.LittleEndian.AppendUint32(nil, 1<<30))
				io.Copy(io.Discard, conn)
			}(conn)
		}
	}()
	sim := vtime.NewVirtual()
	client := NewClient(lis.Addr().String(), "shen", "nwu", "r", storage.KindRemoteDisk,
		WithMaxFrame(1<<20))
	defer client.Close()
	if _, err := client.Connect(sim.NewProc("p")); err == nil {
		t.Fatal("connect over an oversize-frame stream succeeded")
	}
}

// TestChunkedWholeFileRoundTrip drives PutFile/GetFile through the
// chunk-streaming protocol (1 KiB chunks, ~100 KiB payload — 100
// frames each way) and checks the bytes and the virtual clock.
func TestChunkedWholeFileRoundTrip(t *testing.T) {
	sim := vtime.NewVirtual()
	_, client := newChunkedServer(t, sim, 1024)
	p := sim.NewProc("p")
	sess, err := client.Connect(p)
	if err != nil {
		t.Fatal(err)
	}
	wf := sess.(storage.WholeFiler)

	data := make([]byte, 100_000)
	for i := range data {
		data[i] = byte(i*7 + i>>8)
	}
	before := p.Now()
	if err := wf.PutFile(p, "big/file", storage.ModeCreate, data); err != nil {
		t.Fatal(err)
	}
	if p.Now() <= before {
		t.Fatal("chunked PutFile charged no virtual time")
	}
	got, err := wf.GetFile(p, "big/file")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("chunked round trip corrupted the payload (%d bytes back, want %d)", len(got), len(data))
	}
	// A sub-threshold file must keep the single-frame path.
	small := []byte("small payload")
	if err := wf.PutFile(p, "small/file", storage.ModeCreate, small); err != nil {
		t.Fatal(err)
	}
	if got, err := wf.GetFile(p, "small/file"); err != nil || !bytes.Equal(got, small) {
		t.Fatalf("small-file round trip: %q, %v", got, err)
	}
	// The chunk streams must not have poisoned the pooled connection.
	client.mu.Lock()
	nconns := len(client.conns)
	client.mu.Unlock()
	if nconns == 0 {
		t.Fatal("connection pool empty after chunked transfers")
	}
	if err := sess.Close(p); err != nil {
		t.Fatal(err)
	}
}

// TestChunkedPutErrorDrainsStream: when the server rejects a streamed
// put (open failure), it must consume the remaining chunk frames so
// the connection's decode loop doesn't wedge — the session stays
// usable afterwards.
func TestChunkedPutErrorDrainsStream(t *testing.T) {
	sim := vtime.NewVirtual()
	_, client := newChunkedServer(t, sim, 1024)
	p := sim.NewProc("p")
	sess, err := client.Connect(p)
	if err != nil {
		t.Fatal(err)
	}
	wf := sess.(storage.WholeFiler)
	big := bytes.Repeat([]byte{0x5A}, 64<<10)
	// ModeRead on a nonexistent path: the server-side Open fails after
	// the client has already queued all 64 chunk frames.
	if err := wf.PutFile(p, "no/such/file", storage.ModeRead, big); err == nil {
		t.Fatal("streamed put with ModeRead succeeded")
	} else if errors.Is(err, errConnFailed) {
		t.Fatalf("server error came back as a transport failure: %v", err)
	}
	// The same connection must still serve requests.
	if err := wf.PutFile(p, "ok/file", storage.ModeCreate, big); err != nil {
		t.Fatal(err)
	}
	got, err := wf.GetFile(p, "ok/file")
	if err != nil || !bytes.Equal(got, big) {
		t.Fatalf("post-drain round trip: %d bytes, %v", len(got), err)
	}
}
