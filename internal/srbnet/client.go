package srbnet

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"

	"repro/internal/storage"
	"repro/internal/vtime"
)

// Client reaches a remote srbnet server.  It implements storage.Backend:
// Connect dials a fresh TCP connection, so each session maps to one
// server-side broker session.
type Client struct {
	addr     string
	user     string
	secret   string
	resource string
	kind     storage.Kind
	name     string
}

var _ storage.Backend = (*Client)(nil)

// NewClient returns a backend that connects to the named broker resource
// at addr with the given credentials.  kind should mirror the remote
// resource's class so the placement layer treats it correctly.
func NewClient(addr, user, secret, resource string, kind storage.Kind) *Client {
	return &Client{
		addr:     addr,
		user:     user,
		secret:   secret,
		resource: resource,
		kind:     kind,
		name:     "srb://" + addr + "/" + resource,
	}
}

// Name implements storage.Backend.
func (c *Client) Name() string { return c.name }

// Kind implements storage.Backend.
func (c *Client) Kind() storage.Kind { return c.kind }

// Capacity implements storage.Backend.  The wire protocol does not carry
// capacity queries; remote archives are treated as unlimited, matching
// the paper's assumption for the large remote stores.
func (c *Client) Capacity() (total, used int64) { return 0, 0 }

// Connect implements storage.Backend.
func (c *Client) Connect(p *vtime.Proc) (storage.Session, error) {
	conn, err := net.Dial("tcp", c.addr)
	if err != nil {
		return nil, fmt.Errorf("srbnet client: dial %s: %w", c.addr, err)
	}
	s := &clientSession{
		conn: conn,
		dec:  gob.NewDecoder(conn),
		enc:  gob.NewEncoder(conn),
	}
	_, err = s.call(p, &request{
		Op:       opConnect,
		User:     c.user,
		Secret:   c.secret,
		Resource: c.resource,
	})
	if err != nil {
		conn.Close()
		return nil, err
	}
	return s, nil
}

// clientSession is one wire session.  A mutex serializes frames; the
// virtual clock still charges concurrent callers correctly because the
// server replays each operation at the caller's logical instant.
type clientSession struct {
	mu     sync.Mutex
	conn   net.Conn
	dec    *gob.Decoder
	enc    *gob.Encoder
	closed bool
}

// call sends one request and decodes one response, advancing p's clock
// to the server-side completion time.
func (s *clientSession) call(p *vtime.Proc, req *request) (*response, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("srbnet client: %w", storage.ErrClosed)
	}
	req.Now = p.Now()
	if err := s.enc.Encode(req); err != nil {
		return nil, fmt.Errorf("srbnet client: send: %w", err)
	}
	var resp response
	if err := s.dec.Decode(&resp); err != nil {
		return nil, fmt.Errorf("srbnet client: recv: %w", err)
	}
	p.AdvanceTo(resp.Now)
	if resp.Err != errNone {
		return &resp, decodeErr(resp.Err, resp.ErrMsg)
	}
	return &resp, nil
}

// Open implements storage.Session.
func (s *clientSession) Open(p *vtime.Proc, name string, mode storage.AMode) (storage.Handle, error) {
	resp, err := s.call(p, &request{Op: opOpen, Path: name, Mode: mode})
	if err != nil {
		return nil, err
	}
	return &clientHandle{s: s, id: resp.Handle, path: name, size: resp.Size}, nil
}

// Remove implements storage.Session.
func (s *clientSession) Remove(p *vtime.Proc, name string) error {
	_, err := s.call(p, &request{Op: opRemove, Path: name})
	return err
}

// Stat implements storage.Session.
func (s *clientSession) Stat(p *vtime.Proc, name string) (storage.FileInfo, error) {
	resp, err := s.call(p, &request{Op: opStat, Path: name})
	if err != nil {
		return storage.FileInfo{}, err
	}
	return resp.Info, nil
}

// List implements storage.Session.
func (s *clientSession) List(p *vtime.Proc, prefix string) ([]storage.FileInfo, error) {
	resp, err := s.call(p, &request{Op: opList, Path: prefix})
	if err != nil {
		return nil, err
	}
	return resp.Infos, nil
}

// Close implements storage.Session and tears down the TCP connection.
func (s *clientSession) Close(p *vtime.Proc) error {
	_, err := s.call(p, &request{Op: opCloseSession})
	s.mu.Lock()
	s.closed = true
	s.conn.Close()
	s.mu.Unlock()
	return err
}

type clientHandle struct {
	s    *clientSession
	id   uint64
	path string

	mu   sync.Mutex
	size int64
}

var _ storage.Handle = (*clientHandle)(nil)

func (h *clientHandle) Path() string { return h.path }

// Size returns the last size observed from the server.
func (h *clientHandle) Size() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.size
}

func (h *clientHandle) setSize(n int64) {
	h.mu.Lock()
	h.size = n
	h.mu.Unlock()
}

// ReadAt implements storage.Handle.
func (h *clientHandle) ReadAt(p *vtime.Proc, b []byte, off int64) (int, error) {
	resp, err := h.s.call(p, &request{Op: opRead, Handle: h.id, Off: off, N: len(b)})
	if err != nil {
		return 0, err
	}
	h.setSize(resp.Size)
	n := copy(b, resp.Data)
	if n < len(b) {
		return n, fmt.Errorf("srbnet client: short read of %q at %d: n=%d", h.path, off, n)
	}
	return n, nil
}

// WriteAt implements storage.Handle.
func (h *clientHandle) WriteAt(p *vtime.Proc, b []byte, off int64) (int, error) {
	resp, err := h.s.call(p, &request{Op: opWrite, Handle: h.id, Off: off, Data: b})
	if err != nil {
		return 0, err
	}
	h.setSize(resp.Size)
	return resp.N, nil
}

// Close implements storage.Handle.
func (h *clientHandle) Close(p *vtime.Proc) error {
	_, err := h.s.call(p, &request{Op: opCloseHandle, Handle: h.id})
	return err
}
